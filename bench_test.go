// Package dwr's repository-root benchmarks regenerate every table and
// figure of the paper (one benchmark per artifact, delegating to
// internal/experiments) and time the ablations DESIGN.md calls out.
// Run them all with:
//
//	go test -bench=. -benchmem
package dwr

import (
	"fmt"
	"testing"
	"time"

	"dwr/internal/cache"
	"dwr/internal/experiments"
	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/randx"
	"dwr/internal/rank"
)

// runExperiment is the shared driver: regenerate the artifact b.N times
// and record its headline values as benchmark metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Run(id)
	}
	if r == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for k, v := range r.Values {
		b.ReportMetric(v, k)
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1Inventory(b *testing.B)     { runExperiment(b, "T1") }
func BenchmarkFigure1Partitioning(b *testing.B) { runExperiment(b, "F1") }
func BenchmarkFigure2BusyLoad(b *testing.B)     { runExperiment(b, "F2") }
func BenchmarkFigure5Availability(b *testing.B) { runExperiment(b, "F5") }
func BenchmarkFigure6Capacity(b *testing.B)     { runExperiment(b, "F6") }

func BenchmarkClaim1CapacityPlan(b *testing.B)        { runExperiment(b, "C1") }
func BenchmarkClaim2ConsistentHashing(b *testing.B)   { runExperiment(b, "C2") }
func BenchmarkClaim3URLExchange(b *testing.B)         { runExperiment(b, "C3") }
func BenchmarkClaim4DNSCache(b *testing.B)            { runExperiment(b, "C4") }
func BenchmarkClaim5Coverage(b *testing.B)            { runExperiment(b, "C5") }
func BenchmarkClaim6TermVsDoc(b *testing.B)           { runExperiment(b, "C6") }
func BenchmarkClaim7BinPacking(b *testing.B)          { runExperiment(b, "C7") }
func BenchmarkClaim8CollectionSelection(b *testing.B) { runExperiment(b, "C8") }
func BenchmarkClaim9GlobalStats(b *testing.B)         { runExperiment(b, "C9") }
func BenchmarkClaim10Caching(b *testing.B)            { runExperiment(b, "C10") }
func BenchmarkClaim11Replication(b *testing.B)        { runExperiment(b, "C11") }
func BenchmarkClaim12MultiSiteRouting(b *testing.B)   { runExperiment(b, "C12") }
func BenchmarkClaim13Incremental(b *testing.B)        { runExperiment(b, "C13") }
func BenchmarkClaim14IndexBuild(b *testing.B)         { runExperiment(b, "C14") }
func BenchmarkClaim15OnlineMaintenance(b *testing.B)  { runExperiment(b, "C15") }
func BenchmarkClaim16Drift(b *testing.B)              { runExperiment(b, "C16") }
func BenchmarkClaim17LanguageRouting(b *testing.B)    { runExperiment(b, "C17") }
func BenchmarkClaim18GeoCrawling(b *testing.B)        { runExperiment(b, "C18") }
func BenchmarkClaim19P2P(b *testing.B)                { runExperiment(b, "C19") }
func BenchmarkClaim20PhraseShipping(b *testing.B)     { runExperiment(b, "C20") }
func BenchmarkClaim21Personalization(b *testing.B)    { runExperiment(b, "C21") }
func BenchmarkClaim22FederatedVsOpen(b *testing.B)    { runExperiment(b, "C22") }
func BenchmarkClaim23Frontier(b *testing.B)           { runExperiment(b, "C23") }

// ---- Ablation benchmarks (design choices called out in DESIGN.md) ----

// benchCorpus builds a fixed corpus for the micro-ablations.
func benchCorpus() []index.Doc {
	rng := randx.New(99)
	z := randx.NewZipf(3000, 1.0)
	docs := make([]index.Doc, 1500)
	for i := range docs {
		n := 40 + rng.Intn(160)
		terms := make([]string, n)
		for j := range terms {
			terms[j] = fmt.Sprintf("w%04d", z.Draw(rng))
		}
		docs[i] = index.Doc{Ext: i, Terms: terms}
	}
	return docs
}

func buildWith(docs []index.Doc, opts index.Options) *index.Index {
	b := index.NewBuilder(opts)
	for _, d := range docs {
		b.AddDocument(d.Ext, d.Terms)
	}
	return index.MustBuild(b)
}

// BenchmarkAblationCompression compares index build + size with and
// without varint/delta compression.
func BenchmarkAblationCompression(b *testing.B) {
	docs := benchCorpus()
	for _, c := range []struct {
		name     string
		compress bool
	}{{"compressed", true}, {"fixed32", false}} {
		b.Run(c.name, func(b *testing.B) {
			opts := index.DefaultOptions()
			opts.Compress = c.compress
			var ix *index.Index
			for i := 0; i < b.N; i++ {
				ix = buildWith(docs, opts)
			}
			b.ReportMetric(float64(ix.SizeBytes()), "index_bytes")
		})
	}
}

// BenchmarkAblationSkipLists compares conjunctive evaluation across
// posting-block sizes: small blocks skip tighter, large blocks decode in
// bigger bursts.
func BenchmarkAblationSkipLists(b *testing.B) {
	docs := benchCorpus()
	for _, c := range []struct {
		name      string
		blockSize int
	}{{"block32", 32}, {"block128", 128}, {"block512", 512}} {
		b.Run(c.name, func(b *testing.B) {
			opts := index.DefaultOptions()
			opts.BlockSize = c.blockSize
			ix := buildWith(docs, opts)
			s := rank.NewScorer(rank.FromIndex(ix))
			// A rare term ANDed with a frequent one: the skip-friendly case.
			q := []string{"w2900", "w0001"}
			b.ResetTimer()
			var decoded int
			for i := 0; i < b.N; i++ {
				_, es := rank.EvaluateAND(ix, s, q, 10)
				decoded = es.PostingsDecoded
			}
			b.ReportMetric(float64(decoded), "postings_decoded")
		})
	}
}

// BenchmarkAblationPruning compares the exhaustive top-k evaluator
// against MaxScore and Block-Max pruning at k=10 and k=100: queries per
// second, allocations, and encoded posting bytes decoded per query. The
// rankings are identical (pinned by the Equivalence tests); only the
// work differs.
func BenchmarkAblationPruning(b *testing.B) {
	docs := benchCorpus()
	ix := buildWith(docs, index.DefaultOptions())
	s := rank.NewScorer(rank.FromIndex(ix))
	rng := randx.New(7)
	z := randx.NewZipf(3000, 1.0)
	queries := make([][]string, 64)
	for i := range queries {
		q := make([]string, 2+rng.Intn(3))
		for j := range q {
			q[j] = fmt.Sprintf("w%04d", z.Draw(rng))
		}
		queries[i] = q
	}
	for _, k := range []int{10, 100} {
		for _, m := range []struct {
			name string
			mode rank.Pruning
		}{
			{"exhaustive", rank.PruneNone},
			{"maxscore", rank.PruneMaxScore},
			{"blockmax", rank.PruneBlockMax},
		} {
			b.Run(fmt.Sprintf("%s/k%d", m.name, k), func(b *testing.B) {
				b.ReportAllocs()
				var bytesDecoded, postings int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, es := rank.EvaluateTopK(ix, s, queries[i%len(queries)], k, m.mode)
					bytesDecoded += es.BytesDecoded
					postings += int64(es.PostingsDecoded)
				}
				b.ReportMetric(float64(bytesDecoded)/float64(b.N), "bytes_decoded/query")
				b.ReportMetric(float64(postings)/float64(b.N), "postings/query")
			})
		}
	}
}

// BenchmarkAblationQueryEval compares disjunctive vs conjunctive
// evaluation cost on the same queries.
func BenchmarkAblationQueryEval(b *testing.B) {
	docs := benchCorpus()
	ix := buildWith(docs, index.DefaultOptions())
	s := rank.NewScorer(rank.FromIndex(ix))
	queries := [][]string{
		{"w0001", "w0050"}, {"w0010", "w0200", "w1500"}, {"w0002"},
	}
	b.Run("or", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				rank.EvaluateOR(ix, s, q, 10)
			}
		}
	})
	b.Run("and", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				rank.EvaluateAND(ix, s, q, 10)
			}
		}
	})
}

// BenchmarkAblationCachePolicy compares the three cache policies on one
// Zipf stream.
func BenchmarkAblationCachePolicy(b *testing.B) {
	z := randx.NewZipf(5000, 1.0)
	staticKeys := make([]string, 100)
	for i := range staticKeys {
		staticKeys[i] = fmt.Sprintf("q%d", i)
	}
	mk := map[string]func() cache.Cache[int]{
		"lru": func() cache.Cache[int] { return cache.NewLRU[int](200) },
		"lfu": func() cache.Cache[int] { return cache.NewLFU[int](200) },
		"sdc": func() cache.Cache[int] { return cache.NewSDC[int](staticKeys, 100) },
	}
	for _, name := range []string{"lru", "lfu", "sdc"} {
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				rng := randx.New(7)
				c := mk[name]()
				for j := 0; j < 50000; j++ {
					key := fmt.Sprintf("q%d", z.Draw(rng))
					if _, ok := c.Get(key); !ok {
						c.Put(key, 1, float64(j))
					}
				}
				ratio = cache.HitRatio(c)
			}
			b.ReportMetric(ratio, "hit_ratio")
		})
	}
}

// BenchmarkIndexBuilders times the four construction strategies on the
// same corpus.
func BenchmarkIndexBuilders(b *testing.B) {
	docs := benchCorpus()
	opts := index.DefaultOptions()
	b.Run("inverter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildWith(docs, opts)
		}
	})
	b.Run("sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sb := index.NewSortBuilder(opts)
			for _, d := range docs {
				sb.AddDocument(d.Ext, d.Terms)
			}
			index.MustBuild(sb)
		}
	})
	b.Run("spimi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp, err := index.NewSPIMIBuilder(opts, 1<<20, b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range docs {
				if err := sp.AddDocument(d.Ext, d.Terms); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sp.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mapreduce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.BuildMapReduce(opts, docs, 8, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.BuildPipeline(opts, docs, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Parallel scatter-gather benchmarks (wall-clock, not simulated) ----

// benchQueries draws a Zipf query stream over the benchCorpus vocabulary.
func benchQueries(n int) [][]string {
	rng := randx.New(17)
	z := randx.NewZipf(3000, 1.0)
	out := make([][]string, n)
	for i := range out {
		q := make([]string, 1+rng.Intn(3))
		for j := range q {
			q[j] = fmt.Sprintf("w%04d", z.Draw(rng))
		}
		out[i] = q
	}
	return out
}

func benchDocEngine(b *testing.B, docs []index.Doc, k int, options ...qproc.Option) *qproc.DocEngine {
	b.Helper()
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	e, err := qproc.NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, k), options...)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkParallelBroker times the same query replay through the serial
// broker (workers=1) and the parallel scatter-gather (workers=GOMAXPROCS)
// over 8 partitions. Results are identical by construction; only
// wall-clock differs. The "speedup" sub-benchmark times both inside one
// run and reports serial/parallel as a metric (≈1.0 on a single core,
// approaching min(8, cores) on a multi-core runner).
func BenchmarkParallelBroker(b *testing.B) {
	docs := benchCorpus()
	serialEng := benchDocEngine(b, docs, 8, qproc.WithWorkers(1))
	parEng := benchDocEngine(b, docs, 8, qproc.WithWorkers(0))
	queries := benchQueries(64)
	replay := func(e *qproc.DocEngine) {
		for _, q := range queries {
			e.Query(q, qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalTwoRound})
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replay(serialEng)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replay(parEng)
		}
	})
	b.Run("speedup", func(b *testing.B) {
		var serial, parallel time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			replay(serialEng)
			serial += time.Since(t0)
			t0 = time.Now()
			replay(parEng)
			parallel += time.Since(t0)
		}
		if parallel > 0 {
			b.ReportMetric(float64(serial)/float64(parallel), "speedup")
		}
	})
}

// BenchmarkParallelBuild times constructing the 8 partition indexes of a
// document-partitioned engine serially vs concurrently.
func BenchmarkParallelBuild(b *testing.B) {
	docs := benchCorpus()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchDocEngine(b, docs, 8, qproc.WithWorkers(1))
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchDocEngine(b, docs, 8, qproc.WithWorkers(0))
		}
	})
	b.Run("speedup", func(b *testing.B) {
		var serial, parallel time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			benchDocEngine(b, docs, 8, qproc.WithWorkers(1))
			serial += time.Since(t0)
			t0 = time.Now()
			benchDocEngine(b, docs, 8, qproc.WithWorkers(0))
			parallel += time.Since(t0)
		}
		if parallel > 0 {
			b.ReportMetric(float64(serial)/float64(parallel), "speedup")
		}
	})
}
