package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"dwr/internal/lint"
)

// chdirModuleRoot moves the test into the module root so CLI patterns
// and reported paths match what a developer (and CI) sees.
func chdirModuleRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
}

// runCLI invokes the CLI body and captures its streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCLICleanDirExitsZero(t *testing.T) {
	chdirModuleRoot(t)
	code, stdout, stderr := runCLI(t, "internal/lint/testdata/taint/clockutil")
	if code != 0 {
		t.Fatalf("exit %d on clean dir; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings: %q", stdout)
	}
}

func TestCLIViolationsExitOne(t *testing.T) {
	chdirModuleRoot(t)
	code, stdout, stderr := runCLI(t, "internal/lint/testdata/dwrserve/main.go")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout=%q", code, stdout)
	}
	if !strings.Contains(stdout, "internal/lint/testdata/dwrserve/main.go:") ||
		!strings.Contains(stdout, "[deadline]") {
		t.Errorf("finding line malformed: %q", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("summary missing from stderr: %q", stderr)
	}
}

func TestCLIRecursivePattern(t *testing.T) {
	chdirModuleRoot(t)
	code, stdout, _ := runCLI(t, "internal/lint/testdata/server/...")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout=%q", code, stdout)
	}
	if n := strings.Count(stdout, "\n"); n != 1 {
		t.Errorf("server/... printed %d findings, want 1: %q", n, stdout)
	}
}

func TestCLIJSONViolations(t *testing.T) {
	chdirModuleRoot(t)
	code, stdout, _ := runCLI(t, "-json", "internal/lint/testdata/dwrserve/main.go")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var findings []lint.Finding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(findings) != 1 || findings[0].Rule != "deadline" || findings[0].Line == 0 {
		t.Errorf("unexpected JSON findings: %+v", findings)
	}
}

func TestCLIJSONCleanIsEmptyArray(t *testing.T) {
	chdirModuleRoot(t)
	code, stdout, _ := runCLI(t, "-json", "internal/lint/testdata/taint/clockutil")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

func TestCLIFixlist(t *testing.T) {
	chdirModuleRoot(t)
	code, stdout, _ := runCLI(t, "-fixlist", "internal/lint/testdata/simweb")
	if code != 0 {
		t.Fatalf("-fixlist exit %d, want 0", code)
	}
	if n := strings.Count(stdout, "allowed:"); n != 2 {
		t.Errorf("fixlist printed %d sites, want 2: %q", n, stdout)
	}
	if !strings.Contains(stdout, "reporting-only timestamp") {
		t.Errorf("justification text lost: %q", stdout)
	}
}

func TestCLIFixgate(t *testing.T) {
	chdirModuleRoot(t)
	// At the gate: ok.
	code, stdout, _ := runCLI(t, "-fixgate", "2", "internal/lint/testdata/simweb")
	if code != 0 || !strings.Contains(stdout, "exemption surface ok (2 of 2") {
		t.Fatalf("fixgate at limit: exit %d, stdout=%q", code, stdout)
	}
	// Over the gate: the surface grew without raising the gate.
	code, _, stderr := runCLI(t, "-fixgate", "1", "internal/lint/testdata/simweb")
	if code != 1 {
		t.Fatalf("fixgate breach exit %d, want 1; stderr=%q", code, stderr)
	}
	if !strings.Contains(stderr, "grew to 2 sites (gate is 1)") {
		t.Errorf("breach message malformed: %q", stderr)
	}
}

func TestCLIBadPatternExitsTwo(t *testing.T) {
	chdirModuleRoot(t)
	code, _, stderr := runCLI(t, "internal/lint/testdata/no-such-dir")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "dwrlint:") {
		t.Errorf("error not reported: %q", stderr)
	}
}
