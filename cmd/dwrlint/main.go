// Command dwrlint runs the repository's static-analysis suite
// (internal/lint): a syntactic pass plus a type-aware, interprocedural
// module pass that together enforce the determinism, accounting,
// caching, API-hygiene, and deadline-discipline invariants the
// reproduction's experiments depend on.
//
// Usage:
//
//	go run ./cmd/dwrlint ./...                 # lint the module
//	go run ./cmd/dwrlint -json ./...           # machine-readable findings
//	go run ./cmd/dwrlint -fixlist ./...        # audit the exemption surface
//	go run ./cmd/dwrlint -fixgate 9 ./...      # CI: fail if the surface grows
//	go run ./cmd/dwrlint internal/lint/testdata/simweb  # lint one directory
//
// Findings print as "file:line: [rule] message" and the process exits
// nonzero if any non-exempted finding remains. -fixlist instead prints
// every //dwrlint:allow / //dwrlint:file-allow exempted site with its
// justification and always exits zero: it is the reviewers' one-command
// audit of everything the suite has been told to ignore. -fixgate N is
// the CI form of that audit: it fails when the exemption surface
// exceeds N sites or any exemption lacks a written justification, so
// new allows must both be justified and consciously raise the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dwr/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body; it returns the process exit code
// (0 clean, 1 findings or gate breach, 2 usage/IO error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dwrlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	fixlist := fs.Bool("fixlist", false, "print allowlisted sites with their justifications and exit 0")
	fixgate := fs.Int("fixgate", -1, "fail unless every exemption is justified and the exemption surface has at most N sites")
	fs.Usage = func() {
		fmt.Fprintf(stderr,
			"usage: dwrlint [-json] [-fixlist] [-fixgate N] [pattern ...]\n\npatterns: dir/... (recursive), dir, or file.go; default ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := os.Getwd()
	if err != nil {
		return fatal(stderr, err)
	}
	findings, err := lint.LintPatterns(root, patterns, lint.DefaultConfig())
	if err != nil {
		return fatal(stderr, err)
	}

	if *fixgate >= 0 {
		return gateFixlist(stdout, stderr, lint.Fixlist(findings), *fixgate)
	}

	if *fixlist {
		allowed := lint.Fixlist(findings)
		if *jsonOut {
			return emitJSON(stdout, stderr, allowed)
		}
		if len(allowed) == 0 {
			fmt.Fprintln(stdout, "no allowlisted sites")
			return 0
		}
		for _, f := range allowed {
			fmt.Fprintf(stdout, "%s:%d: [%s] allowed: %s\n", f.File, f.Line, f.Rule, f.Justification)
		}
		return 0
	}

	violations := lint.Violations(findings)
	if *jsonOut {
		if code := emitJSON(stdout, stderr, violations); code != 0 {
			return code
		}
	} else {
		for _, f := range violations {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(violations) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "dwrlint: %d finding(s)\n", len(violations))
		}
		return 1
	}
	return 0
}

// gateFixlist enforces the exemption-surface budget: at most max
// allowed sites, each carrying real justification text. Growing the
// surface means raising the gate in CI alongside the new directive —
// a conscious, reviewable act rather than silent drift.
func gateFixlist(stdout, stderr io.Writer, allowed []lint.Finding, max int) int {
	bad := 0
	for _, f := range allowed {
		if f.Justification == "" || strings.HasPrefix(f.Justification, "(") {
			fmt.Fprintf(stderr, "dwrlint: %s:%d: [%s] exemption without a written justification\n", f.File, f.Line, f.Rule)
			bad++
		}
	}
	if len(allowed) > max {
		fmt.Fprintf(stderr, "dwrlint: exemption surface grew to %d sites (gate is %d); justify the new allows and raise -fixgate deliberately\n",
			len(allowed), max)
		for _, f := range allowed {
			fmt.Fprintf(stderr, "  %s:%d: [%s] %s\n", f.File, f.Line, f.Rule, f.Justification)
		}
		return 1
	}
	if bad > 0 {
		return 1
	}
	fmt.Fprintf(stdout, "dwrlint: exemption surface ok (%d of %d sites, all justified)\n", len(allowed), max)
	return 0
}

// emitJSON writes findings as a JSON array (never null, so consumers
// can index unconditionally).
func emitJSON(stdout, stderr io.Writer, fs []lint.Finding) int {
	if fs == nil {
		fs = []lint.Finding{}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fs); err != nil {
		return fatal(stderr, err)
	}
	return 0
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "dwrlint:", err)
	return 2
}
