// Command dwrlint runs the repository's static-analysis suite
// (internal/lint): four analyzers that mechanically enforce the
// determinism, API-hygiene, and deadline-discipline invariants the
// reproduction's experiments depend on.
//
// Usage:
//
//	go run ./cmd/dwrlint ./...                 # lint the module
//	go run ./cmd/dwrlint -json ./...           # machine-readable findings
//	go run ./cmd/dwrlint -fixlist ./...        # audit the exemption surface
//	go run ./cmd/dwrlint internal/lint/testdata/simweb  # lint one directory
//
// Findings print as "file:line: [rule] message" and the process exits
// nonzero if any non-exempted finding remains. -fixlist instead prints
// every //dwrlint:allow / //dwrlint:file-allow exempted site with its
// justification and always exits zero: it is the reviewers' one-command
// audit of everything the suite has been told to ignore.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dwr/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	fixlist := flag.Bool("fixlist", false, "print allowlisted sites with their justifications and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dwrlint [-json] [-fixlist] [pattern ...]\n\npatterns: dir/... (recursive), dir, or file.go; default ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	findings, err := lint.LintPatterns(root, patterns, lint.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	if *fixlist {
		allowed := lint.Fixlist(findings)
		if *jsonOut {
			emitJSON(allowed)
			return
		}
		if len(allowed) == 0 {
			fmt.Println("no allowlisted sites")
			return
		}
		for _, f := range allowed {
			fmt.Printf("%s:%d: [%s] allowed: %s\n", f.File, f.Line, f.Rule, f.Justification)
		}
		return
	}

	violations := lint.Violations(findings)
	if *jsonOut {
		emitJSON(violations)
	} else {
		for _, f := range violations {
			fmt.Println(f)
		}
	}
	if len(violations) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "dwrlint: %d finding(s)\n", len(violations))
		}
		os.Exit(1)
	}
}

// emitJSON writes findings as a JSON array (never null, so consumers
// can index unconditionally).
func emitJSON(fs []lint.Finding) {
	if fs == nil {
		fs = []lint.Finding{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fs); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwrlint:", err)
	os.Exit(2)
}
