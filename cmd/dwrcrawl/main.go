// Command dwrcrawl runs a distributed crawl of a synthetic Web and
// prints the crawl report: coverage, politeness-bounded virtual
// duration, URL-exchange traffic, DNS load, failures, and the
// incremental re-crawl economics.
//
// Usage:
//
//	dwrcrawl -hosts 300 -agents 8 -assignment consistent -batch 64
package main

import (
	"flag"
	"fmt"
	"os"

	"dwr/internal/crawler"
	"dwr/internal/metrics"
	"dwr/internal/simweb"
)

func main() {
	hosts := flag.Int("hosts", 200, "number of Web servers to generate")
	agents := flag.Int("agents", 4, "crawling agents")
	assignment := flag.String("assignment", "consistent", "URL assignment: consistent | mod")
	batch := flag.Int("batch", 64, "URLs per exchange message")
	seedTop := flag.Int("seed-most-cited", 100, "most-cited URLs pre-seeded into all agents (0 = off)")
	seed := flag.Int64("seed", 1, "random seed")
	failAgent := flag.Int("fail-agent", -1, "fail this agent after its first drain (-1 = none)")
	recrawlDay := flag.Int("recrawl-day", 15, "virtual day of the incremental re-crawl (0 = skip)")
	flag.Parse()

	wcfg := simweb.DefaultConfig()
	wcfg.Seed = *seed
	wcfg.Hosts = *hosts
	web := simweb.New(wcfg)

	ccfg := crawler.DefaultConfig()
	ccfg.Seed = *seed
	ccfg.Agents = *agents
	ccfg.BatchSize = *batch
	ccfg.SeedMostCited = *seedTop
	switch *assignment {
	case "consistent":
		ccfg.Assignment = crawler.AssignConsistent
	case "mod":
		ccfg.Assignment = crawler.AssignMod
	default:
		fmt.Fprintf(os.Stderr, "dwrcrawl: unknown assignment %q\n", *assignment)
		os.Exit(2)
	}

	c := crawler.New(web, ccfg)
	var seeds []string
	for _, h := range web.Hosts {
		if len(h.Pages) > 0 {
			seeds = append(seeds, web.URL(h.Pages[0]))
		}
	}
	c.Seed(seeds)

	if *failAgent >= 0 {
		// Run one round, fail the agent, continue — exercising URL
		// re-allocation.
		c.Run()
		c.FailAgent(*failAgent)
	}
	st := c.Run()

	t := metrics.NewTable(fmt.Sprintf("crawl of %d hosts / %d pages with %d agents (%s)",
		*hosts, len(web.Pages), *agents, ccfg.Assignment),
		"metric", "value")
	t.AddRow("crawlable pages", web.CrawlablePages())
	t.AddRow("distinct pages fetched", st.DistinctPages)
	t.AddRow("coverage", st.Coverage)
	t.AddRow("total fetches", st.PagesFetched)
	t.AddRow("duplicate fetches", st.DuplicateFetches)
	t.AddRow("transient retries", st.TransientRetries)
	t.AddRow("permanent failures", st.FetchFailures)
	t.AddRow("robots.txt fetched", st.RobotsFetches)
	t.AddRow("robots-skipped URLs", st.RobotsSkipped)
	t.AddRow("URLs exchanged", st.URLsExchanged)
	t.AddRow("exchange messages", st.ExchangeMessages)
	t.AddRow("exchanges suppressed (seeding)", st.URLsSuppressed)
	t.AddRow("authoritative DNS queries", st.DNSQueries)
	t.AddRow("DNS cache hit ratio", st.DNSHitRatio)
	t.AddRow("bytes downloaded", st.BytesDownloaded)
	t.AddRow("virtual crawl seconds", st.VirtualSeconds)
	t.Render(os.Stdout)

	pa := metrics.NewTable("per-agent fetches", "agent", "pages")
	for i, n := range st.PerAgentFetches {
		pa.AddRow(i, n)
	}
	pa.Render(os.Stdout)

	if *recrawlDay > 0 {
		plain := c.Recrawl(*recrawlDay, false)
		maps := c.Recrawl(*recrawlDay+15, true)
		rc := metrics.NewTable("incremental re-crawl", "pass", "pages", "requests", "304", "refetched", "sitemap-skipped")
		rc.AddRow(fmt.Sprintf("day %d, If-Modified-Since", *recrawlDay),
			plain.Pages, plain.ConditionalRequests, plain.NotModified, plain.Refetched, plain.SkippedViaSitemap)
		rc.AddRow(fmt.Sprintf("day %d, + sitemaps", *recrawlDay+15),
			maps.Pages, maps.ConditionalRequests, maps.NotModified, maps.Refetched, maps.SkippedViaSitemap)
		rc.Render(os.Stdout)
	}
}
