// Command dwrsearch builds a complete distributed Web retrieval engine —
// synthetic Web, distributed crawl, partitioned index — and answers
// queries against it, either from the command line or interactively from
// stdin.
//
// Usage:
//
//	dwrsearch -partitions 8 -strategy query-driven "some query terms"
//	dwrsearch            # interactive: one query per line
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dwr/internal/core"
	"dwr/internal/qproc"
)

func main() {
	partitions := flag.Int("partitions", 4, "query processors")
	strategy := flag.String("strategy", "round-robin", "partitioning: random | round-robin | k-means | query-driven")
	selectN := flag.Int("select", 0, "contact only the best-N partitions per query (0 = all)")
	k := flag.Int("k", 10, "results per query")
	phrase := flag.Bool("phrase", false, "treat the query as an exact phrase")
	hosts := flag.Int("hosts", 80, "hosts in the synthetic web")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "broker fan-out and build concurrency (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
	cacheCap := flag.Int("cachecap", 0, "broker result-cache capacity in entries (0 = no result cache)")
	cacheTTL := flag.Int("cachettl", 0, "result-cache entry TTL in queries (0 = never expires)")
	cacheShards := flag.Int("cacheshards", 0, "result-cache lock shards (0 = 8)")
	cachePolicy := flag.String("cachepolicy", "sdc", "result-cache replacement: lru | lfu | sdc (sdc warms its static set from a query-log sample)")
	plCache := flag.Int64("plcache", 0, "per-partition posting-list cache budget in bytes of resident encoded blocks plus block metadata (0 = off)")
	flag.Parse()

	qproc.SetDefaultOptions(qproc.WithWorkers(*workers))
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Web.Seed = *seed
	cfg.Web.Hosts = *hosts
	cfg.Partitions = *partitions
	cfg.Workers = *workers
	policy, err := qproc.ParseCachePolicy(*cachePolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwrsearch: %v\n", err)
		os.Exit(2)
	}
	cfg.Cache = core.CacheConfig{
		Capacity:     *cacheCap,
		Shards:       *cacheShards,
		TTLQueries:   *cacheTTL,
		Policy:       policy,
		PostingBytes: *plCache,
	}
	switch *strategy {
	case "random":
		cfg.Strategy = core.PartitionRandom
	case "round-robin":
		cfg.Strategy = core.PartitionRoundRobin
	case "k-means":
		cfg.Strategy = core.PartitionKMeans
	case "query-driven":
		cfg.Strategy = core.PartitionQueryDriven
	default:
		fmt.Fprintf(os.Stderr, "dwrsearch: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "building engine (%d hosts, %d partitions, %s partitioning)...\n",
		*hosts, *partitions, cfg.Strategy)
	engine, err := core.Build(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwrsearch: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "crawled %d pages (coverage %.1f%%), indexed %d documents\n",
		engine.CrawlInfo.DistinctPages, engine.CrawlInfo.Coverage*100, len(engine.Docs))

	query := strings.Join(flag.Args(), " ")
	if query != "" {
		printResults(engine, query, *k, *selectN, *phrase)
		return
	}

	// Interactive loop. Suggest a few real terms so the user can see hits.
	fmt.Fprintf(os.Stderr, "example terms from the collection: %s\n",
		strings.Join(engine.Docs[0].Terms[:min(5, len(engine.Docs[0].Terms))], " "))
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("query> ")
	for sc.Scan() {
		q := strings.TrimSpace(sc.Text())
		if q == "" || q == "exit" || q == "quit" {
			break
		}
		printResults(engine, q, *k, *selectN, *phrase)
		fmt.Print("query> ")
	}
}

func printResults(e *core.Engine, query string, k, selectN int, phrase bool) {
	var rs []core.SearchResult
	if phrase {
		rs = e.SearchPhrase(query, k)
	} else {
		rs = e.Search(query, core.SearchOptions{K: k, SelectN: selectN})
	}
	if len(rs) == 0 {
		fmt.Println("no results")
		return
	}
	for i, r := range rs {
		fmt.Printf("%2d. %-40s doc=%d score=%.4f\n", i+1, r.URL, r.Doc, r.Score)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
