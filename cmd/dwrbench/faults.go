package main

import (
	"fmt"
	"io"
	"math"
	"strings"

	"dwr/internal/core"
	"dwr/internal/faultsim"
	"dwr/internal/metrics"
	"dwr/internal/qproc"
	"dwr/internal/querylog"
)

// faultScenario is one fault environment replayed against the same
// corpus, partition, and query log.
type faultScenario struct {
	name   string
	faults *core.FaultConfig // nil = no faults (baseline)
	note   string
	// predictFail, when > 0, prints the policy's replication-arithmetic
	// availability prediction for this per-attempt failure probability.
	predictFail float64
}

// runFaultScenarios builds one small end-to-end engine, then replays the
// same query log under a ladder of fault environments, reporting
// availability and tail latency for each. Everything derives from fixed
// seeds: rerunning prints byte-identical output (no wall-clock numbers).
func runFaultScenarios(w io.Writer, seed int64) error {
	cfg := core.DefaultConfig()
	cfg.Web.Hosts = 60
	base, err := core.Build(cfg)
	if err != nil {
		return err
	}
	lcfg := querylog.DefaultConfig()
	lcfg.Seed = cfg.Seed + 5
	lcfg.Total = 2000
	lcfg.Distinct = 400
	lg := querylog.Generate(base.Web, lcfg)

	parts := base.Query.K()
	failFast := qproc.DefaultFaultPolicy()
	failFast.Mode = qproc.FailFast
	failFast.DeadlineMs = 80
	scenarios := []faultScenario{
		{
			name: "baseline",
			note: "no faults injected; the robust path must match the plain engine exactly",
		},
		{
			name:        "flaky-10",
			faults:      &core.FaultConfig{Seed: seed, FlakyP: 0.10},
			note:        "every partition replica fails 10% of calls; default policy (2 replicas, 2 retries)",
			predictFail: 0.10,
		},
		{
			name:   "flaky-10-no-retry",
			faults: &core.FaultConfig{Seed: seed, FlakyP: 0.10, Policy: &qproc.FaultPolicy{MaxRetries: 0, Replicas: 1}},
			note:   "same fault schedule with retries disabled — the control",
		},
		{
			name: "crash-and-outage",
			faults: &core.FaultConfig{
				Seed:       seed,
				CrashParts: []int{0},
				Windows:    []faultsim.Window{{Unit: 1, Replica: 0, From: 500, To: 1000}},
			},
			note: "partition 0 dead on every replica; partition 1 primary out for ticks 500-1000",
		},
		{
			name:   "slow-30-hedged",
			faults: &core.FaultConfig{Seed: seed, SlowP: 0.30, SlowMeanMs: 25},
			note:   "30% of calls straggle (log-normal, mean 25ms); hedging at the partition p95",
		},
		{
			name:   "flaky-10-fail-fast",
			faults: &core.FaultConfig{Seed: seed, FlakyP: 0.10, Policy: &failFast},
			note:   "fail-fast mode with an 80ms deadline: partial answers are refused, not degraded",
		},
	}

	fmt.Fprintf(w, "fault-injection scenarios: %d partitions, %d queries, fault seed %d\n",
		parts, len(lg.Queries), seed)
	fmt.Fprintf(w, "(virtual-time simulation; output is deterministic for fixed seeds)\n\n")

	for _, sc := range scenarios {
		opts := []qproc.Option{qproc.WithWorkers(0)}
		if sc.faults != nil {
			pol := qproc.DefaultFaultPolicy()
			if sc.faults.Policy != nil {
				pol = *sc.faults.Policy
			}
			opts = append(opts,
				qproc.WithInjector(sc.faults.Injector()),
				qproc.WithFaultPolicy(pol))
		}
		eng, err := qproc.NewDocEngine(cfg.Index, base.Docs, base.Partition, opts...)
		if err != nil {
			return err
		}

		var lat metrics.Sample
		clean, degraded, failed := 0, 0, 0
		for _, q := range lg.Queries {
			qr := eng.QueryTopK(q.Terms, 10)
			lat.Add(qr.LatencyMs)
			switch {
			case qr.Err != nil:
				failed++
			case qr.Degraded:
				degraded++
			default:
				clean++
			}
		}
		st := eng.Stats()

		fmt.Fprintf(w, "== %s ==\n", sc.name)
		fmt.Fprintf(w, "   %s\n", sc.note)
		n := float64(len(lg.Queries))
		fmt.Fprintf(w, "   availability  %6.2f%% clean   %5.2f%% degraded   %5.2f%% failed\n",
			100*float64(clean)/n, 100*float64(degraded)/n, 100*float64(failed)/n)
		fmt.Fprintf(w, "   latency ms    p50=%.2f  p95=%.2f  p99=%.2f  max=%.2f\n",
			lat.Quantile(0.5), lat.Quantile(0.95), lat.Quantile(0.99), lat.Max())
		fmt.Fprintf(w, "   fault path    %s\n", st.Faults)
		if st.Latency != nil {
			var q95 []string
			for p := 0; p < st.Latency.Parts(); p++ {
				v := st.Latency.Quantile(p, 0.95)
				if math.IsInf(v, 1) {
					q95 = append(q95, "-")
					continue
				}
				q95 = append(q95, fmt.Sprintf("%.1f", v))
			}
			fmt.Fprintf(w, "   per-partition p95 (bucketed) [%s]\n", strings.Join(q95, " "))
		}
		if sc.predictFail > 0 && sc.faults != nil {
			pol := qproc.DefaultFaultPolicy()
			if sc.faults.Policy != nil {
				pol = *sc.faults.Policy
			}
			fmt.Fprintf(w, "   predicted per-partition availability at %.0f%% attempt failure: %.4f\n",
				100*sc.predictFail, pol.PredictedAvailability(sc.predictFail))
		}
		h := eng.Health()
		if h.Healthy() {
			fmt.Fprintf(w, "   health        %d/%d partitions up\n", h.Live(), h.Units)
		} else {
			fmt.Fprintf(w, "   health        %d/%d partitions up, down: %v\n", h.Live(), h.Units, h.Down)
		}
		fmt.Fprintln(w)
	}
	return nil
}
