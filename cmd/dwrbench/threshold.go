package main

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"time"

	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/randx"
	"dwr/internal/rank"
)

// thresholdOptions sizes the distributed threshold-sharing comparison.
type thresholdOptions struct {
	seed    int64
	docs    int
	queries int
	parts   int
	dir     string // BENCH_threshold.json destination ("" = don't write)
}

// thresholdRun is one (mode, k) measurement row of BENCH_threshold.json.
type thresholdRun struct {
	Mode                 string  `json:"mode"`
	K                    int     `json:"k"`
	QPS                  float64 `json:"qps"`
	P50Us                float64 `json:"p50_us"`
	P99Us                float64 `json:"p99_us"`
	BytesDecodedPerQuery float64 `json:"bytes_decoded_per_query"`
	PostingsPerQuery     float64 `json:"postings_per_query"`
	ContactedPerQuery    float64 `json:"contacted_per_query"`
	SkippedPerQuery      float64 `json:"skipped_per_query"`
	WavesPerQuery        float64 `json:"waves_per_query"`
	SpeedupVsBlockmax    float64 `json:"speedup_vs_blockmax"`
	BytesVsBlockmax      float64 `json:"bytes_vs_blockmax"`
	RankIdentical        bool    `json:"rank_identical"`
}

// thresholdReport is the full BENCH_threshold.json document.
type thresholdReport struct {
	Scenario string `json:"scenario"`
	Config   struct {
		Seed       int64 `json:"seed"`
		Docs       int   `json:"docs"`
		Queries    int   `json:"queries"`
		Partitions int   `json:"partitions"`
	} `json:"config"`
	Runs []thresholdRun `json:"runs"`
}

// runThresholdBench measures the bound-ordered wave schedule against the
// classic single-wave scatter on a document-partitioned engine: the
// broker seeds each later wave with its running k-th score, so low-bound
// partitions start with a live threshold (deeper block skipping) or are
// skipped outright when their score bound cannot be competitive. Every
// mode's ranking is checked bitwise-identical to the exhaustive answer.
// The blockmax row is the PR 6 single-wave dynamic-pruning baseline the
// threshold rows are judged against. Timing varies run to run; rankings,
// decode counts, skip counts, and wave counts do not.
func runThresholdBench(w io.Writer, o thresholdOptions) error {
	_, err := thresholdBench(w, o)
	return err
}

// thresholdBench is runThresholdBench returning the measured report, so
// -check can diff a fresh run against the committed artifact.
func thresholdBench(w io.Writer, o thresholdOptions) (thresholdReport, error) {
	docs, queries := thresholdWorkload(o)
	fmt.Fprintf(w, "distributed threshold sharing: %d docs over %d partitions, %d queries, seed %d\n",
		o.docs, o.parts, len(queries), o.seed)
	fmt.Fprintf(w, "every ranking is verified bitwise-identical to the exhaustive scatter-gather\n\n")
	fmt.Fprintf(w, "%-12s %4s %9s %9s %9s %12s %9s %8s %6s %8s %8s\n",
		"mode", "k", "qps", "p50us", "p99us", "bytes_dec/q", "parts/q", "skip/q", "waves", "speedup", "bytes%")

	rep := thresholdReport{Scenario: "threshold"}
	rep.Config.Seed = o.seed
	rep.Config.Docs = o.docs
	rep.Config.Queries = len(queries)
	rep.Config.Partitions = o.parts

	modes := []struct {
		name    string
		options []qproc.Option
	}{
		{"exhaustive", nil},
		{"blockmax", []qproc.Option{qproc.WithPruning(rank.PruneBlockMax)}},
		{"blockmax+ts", []qproc.Option{qproc.WithPruning(rank.PruneBlockMax), qproc.WithThresholdSharing(true)}},
	}
	engines := make([]*qproc.DocEngine, len(modes))
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	dp := partition.RoundRobinDocs(ids, o.parts)
	for i, m := range modes {
		e, err := qproc.NewDocEngine(index.DefaultOptions(), docs, dp, m.options...)
		if err != nil {
			return rep, err
		}
		engines[i] = e
	}

	for _, k := range []int{10, 100} {
		want := make([][]rank.Result, len(queries))
		for i, q := range queries {
			want[i] = engines[0].Query(q, qproc.DocQueryOptions{K: k, Stats: qproc.GlobalPrecomputed}).Results
		}
		kRuns := make([]thresholdRun, len(modes))
		var blockmax thresholdRun
		for mi, m := range modes {
			run, err := measureThreshold(engines[mi], queries, want, k, m.name)
			if err != nil {
				return rep, err
			}
			if m.name == "blockmax" {
				blockmax = run
			}
			kRuns[mi] = run
		}
		for _, run := range kRuns {
			run.SpeedupVsBlockmax = run.QPS / blockmax.QPS
			run.BytesVsBlockmax = run.BytesDecodedPerQuery / blockmax.BytesDecodedPerQuery
			rep.Runs = append(rep.Runs, run)
			fmt.Fprintf(w, "%-12s %4d %9.0f %9.1f %9.1f %12.1f %9.2f %8.2f %6.2f %7.2fx %7.1f%%\n",
				run.Mode, run.K, run.QPS, run.P50Us, run.P99Us, run.BytesDecodedPerQuery,
				run.ContactedPerQuery, run.SkippedPerQuery, run.WavesPerQuery,
				run.SpeedupVsBlockmax, 100*run.BytesVsBlockmax)
		}
	}

	if o.dir != "" {
		path, err := writeBenchJSON(o.dir, "threshold", rep)
		if err != nil {
			return rep, err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	return rep, nil
}

// thresholdWorkload builds the seeded Zipf corpus and query set shared
// by every mode (and by -check re-runs).
func thresholdWorkload(o thresholdOptions) ([]index.Doc, [][]string) {
	rng := randx.New(o.seed)
	z := randx.NewZipf(3000, 1.0)
	docs := make([]index.Doc, o.docs)
	for d := range docs {
		terms := make([]string, 40+rng.Intn(160))
		for i := range terms {
			terms[i] = fmt.Sprintf("w%04d", z.Draw(rng))
		}
		docs[d] = index.Doc{Ext: d, Terms: terms}
	}
	queries := make([][]string, o.queries)
	for i := range queries {
		q := make([]string, 2+rng.Intn(3))
		for j := range q {
			q[j] = fmt.Sprintf("w%04d", z.Draw(rng))
		}
		queries[i] = q
	}
	return docs, queries
}

// measureThreshold times one (engine, k) pass over the query set,
// checking each ranking against the exhaustive reference as it goes.
func measureThreshold(e *qproc.DocEngine, queries [][]string, want [][]rank.Result, k int, name string) (thresholdRun, error) {
	run := thresholdRun{Mode: name, K: k, RankIdentical: true}
	opt := qproc.DocQueryOptions{K: k, Stats: qproc.GlobalPrecomputed}
	// Warmup pass: fault in caches and steady-state the allocator so the
	// timed pass measures evaluation, not first-touch effects.
	for _, q := range queries {
		e.Query(q, opt)
	}
	lat := make([]float64, len(queries))
	var bytesDec, postings int64
	var contacted, skipped, waves int
	for i, q := range queries {
		t0 := time.Now()
		qr := e.Query(q, opt)
		lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
		bytesDec += qr.PostingBytesDecoded
		postings += int64(qr.PostingsDecoded)
		contacted += qr.ServersContacted
		skipped += qr.PartitionsSkipped
		waves += qr.Waves
		if !reflect.DeepEqual(qr.Results, want[i]) {
			run.RankIdentical = false
			return run, fmt.Errorf("%s k=%d: query %v diverged from the exhaustive ranking:\nexhaustive %v\ngot        %v",
				name, k, q, want[i], qr.Results)
		}
	}
	var totalUs float64
	for _, v := range lat {
		totalUs += v
	}
	sort.Float64s(lat)
	n := float64(len(queries))
	run.QPS = n / (totalUs / 1e6)
	run.P50Us = lat[len(lat)/2]
	run.P99Us = lat[min(len(lat)-1, len(lat)*99/100)]
	run.BytesDecodedPerQuery = float64(bytesDec) / n
	run.PostingsPerQuery = float64(postings) / n
	run.ContactedPerQuery = float64(contacted) / n
	run.SkippedPerQuery = float64(skipped) / n
	run.WavesPerQuery = float64(waves) / n
	return run, nil
}
