package main

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sort"
	"time"

	"dwr/internal/index"
	"dwr/internal/randx"
	"dwr/internal/rank"
)

// pruningOptions sizes the exhaustive-vs-pruned comparison.
type pruningOptions struct {
	seed    int64
	docs    int
	queries int
	dir     string // BENCH_pruning.json destination ("" = don't write)
}

// pruningRun is one (mode, k) measurement row of BENCH_pruning.json.
type pruningRun struct {
	Mode                 string  `json:"mode"`
	K                    int     `json:"k"`
	QPS                  float64 `json:"qps"`
	P50Us                float64 `json:"p50_us"`
	P99Us                float64 `json:"p99_us"`
	AllocsPerQuery       float64 `json:"allocs_per_query"`
	BytesDecodedPerQuery float64 `json:"bytes_decoded_per_query"`
	PostingsPerQuery     float64 `json:"postings_per_query"`
	SpeedupVsExhaustive  float64 `json:"speedup_vs_exhaustive"`
	RankIdentical        bool    `json:"rank_identical"`
}

// pruningReport is the full BENCH_pruning.json document.
type pruningReport struct {
	Scenario string `json:"scenario"`
	Config   struct {
		Seed    int64 `json:"seed"`
		Docs    int   `json:"docs"`
		Queries int   `json:"queries"`
	} `json:"config"`
	IndexBytes int64        `json:"index_bytes"`
	Runs       []pruningRun `json:"runs"`
}

// runPruningBench measures the dynamic-pruning evaluators against the
// exhaustive OR baseline on a seeded Zipf corpus: wall-clock QPS and
// latency quantiles, allocations per query, and the decode work the
// block metadata lets the pruned paths skip. Every pruned ranking is
// checked rank-identical (bitwise-equal scores) against the exhaustive
// answer before its numbers are reported. Timing varies run to run;
// rankings and decode counts do not.
func runPruningBench(w io.Writer, o pruningOptions) error {
	_, err := pruningBench(w, o)
	return err
}

// pruningBench is runPruningBench returning the measured report, so
// -check can diff a fresh run against the committed artifact.
func pruningBench(w io.Writer, o pruningOptions) (pruningReport, error) {
	rng := randx.New(o.seed)
	z := randx.NewZipf(3000, 1.0)
	b := index.NewBuilder(index.DefaultOptions())
	for d := 0; d < o.docs; d++ {
		terms := make([]string, 40+rng.Intn(160))
		for i := range terms {
			terms[i] = fmt.Sprintf("w%04d", z.Draw(rng))
		}
		b.AddDocument(d, terms)
	}
	ix := index.MustBuild(b)
	s := rank.NewScorer(rank.FromIndex(ix))
	queries := make([][]string, o.queries)
	for i := range queries {
		q := make([]string, 2+rng.Intn(3))
		for j := range q {
			q[j] = fmt.Sprintf("w%04d", z.Draw(rng))
		}
		queries[i] = q
	}

	fmt.Fprintf(w, "dynamic-pruning comparison: %d docs, %d queries, seed %d (index %d bytes)\n",
		o.docs, len(queries), o.seed, ix.SizeBytes())
	fmt.Fprintf(w, "every pruned ranking is verified bitwise-identical to the exhaustive top-k\n\n")
	fmt.Fprintf(w, "%-12s %4s %9s %9s %9s %10s %12s %10s %8s\n",
		"mode", "k", "qps", "p50us", "p99us", "allocs/q", "bytes_dec/q", "postings/q", "speedup")

	rep := pruningReport{Scenario: "pruning"}
	rep.Config.Seed = o.seed
	rep.Config.Docs = o.docs
	rep.Config.Queries = len(queries)
	rep.IndexBytes = ix.SizeBytes()

	modes := []struct {
		name string
		mode rank.Pruning
	}{
		{"exhaustive", rank.PruneNone},
		{"maxscore", rank.PruneMaxScore},
		{"blockmax", rank.PruneBlockMax},
	}
	for _, k := range []int{10, 100} {
		// Exhaustive baselines double as the equivalence reference.
		want := make([][]rank.Result, len(queries))
		for i, q := range queries {
			want[i], _ = rank.EvaluateTopK(ix, s, q, k, rank.PruneNone)
		}
		var exhaustiveQPS float64
		for _, m := range modes {
			run, err := measurePruning(ix, s, queries, want, k, m.name, m.mode)
			if err != nil {
				return rep, err
			}
			if m.mode == rank.PruneNone {
				exhaustiveQPS = run.QPS
			}
			run.SpeedupVsExhaustive = run.QPS / exhaustiveQPS
			rep.Runs = append(rep.Runs, run)
			fmt.Fprintf(w, "%-12s %4d %9.0f %9.1f %9.1f %10.1f %12.1f %10.1f %7.2fx\n",
				run.Mode, run.K, run.QPS, run.P50Us, run.P99Us,
				run.AllocsPerQuery, run.BytesDecodedPerQuery, run.PostingsPerQuery,
				run.SpeedupVsExhaustive)
		}
	}

	if o.dir != "" {
		path, err := writeBenchJSON(o.dir, "pruning", rep)
		if err != nil {
			return rep, err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	return rep, nil
}

// measurePruning times one (mode, k) pass over the query set, checking
// each ranking against the exhaustive reference as it goes.
func measurePruning(ix *index.Index, s *rank.Scorer, queries [][]string, want [][]rank.Result, k int, name string, mode rank.Pruning) (pruningRun, error) {
	run := pruningRun{Mode: name, K: k, RankIdentical: true}
	// Warmup pass: fault in caches and steady-state the allocator so the
	// timed pass measures evaluation, not first-touch effects.
	for _, q := range queries {
		rank.EvaluateTopK(ix, s, q, k, mode)
	}
	lat := make([]float64, len(queries))
	var bytesDec, postings int64
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i, q := range queries {
		t0 := time.Now()
		got, es := rank.EvaluateTopK(ix, s, q, k, mode)
		lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
		bytesDec += es.BytesDecoded
		postings += int64(es.PostingsDecoded)
		if !reflect.DeepEqual(got, want[i]) {
			run.RankIdentical = false
			return run, fmt.Errorf("%s k=%d: query %v diverged from the exhaustive ranking:\nexhaustive %v\npruned     %v",
				name, k, q, want[i], got)
		}
	}
	runtime.ReadMemStats(&ms1)
	var totalUs float64
	for _, v := range lat {
		totalUs += v
	}
	sort.Float64s(lat)
	n := float64(len(queries))
	run.QPS = n / (totalUs / 1e6)
	run.P50Us = lat[len(lat)/2]
	run.P99Us = lat[min(len(lat)-1, len(lat)*99/100)]
	run.AllocsPerQuery = float64(ms1.Mallocs-ms0.Mallocs) / n
	run.BytesDecodedPerQuery = float64(bytesDec) / n
	run.PostingsPerQuery = float64(postings) / n
	return run, nil
}
