package main

import (
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"dwr/internal/crawler"
	"dwr/internal/index"
	"dwr/internal/loadgen"
	"dwr/internal/metrics"
	"dwr/internal/qproc"
	"dwr/internal/querylog"
	"dwr/internal/simweb"
	"dwr/internal/textproc"
)

// freshOptions sizes the continuous-indexing scenario.
type freshOptions struct {
	seed    int64
	hosts   int
	parts   int
	segDocs int
	rate    float64 // query arrivals per virtual second during the crawl
	dir     string  // BENCH_fresh.json destination ("" = don't write)
}

// freshReport is the full BENCH_fresh.json document. Everything in it
// except WallMs is deterministic for a fixed config: the crawl order,
// the query schedule, segment seal points, and merge cascades all run
// on virtual time.
type freshReport struct {
	Scenario string `json:"scenario"`
	Config   struct {
		Seed    int64   `json:"seed"`
		Hosts   int     `json:"hosts"`
		Parts   int     `json:"parts"`
		SegDocs int     `json:"seg_docs"`
		RateQPS float64 `json:"rate_qps"`
	} `json:"config"`
	Pages           int     `json:"pages_crawled"`
	DocsIndexed     int     `json:"docs_indexed"`
	SegmentsSealed  int     `json:"segments_sealed"`
	Merges          int     `json:"merges"`
	FinalSegments   int     `json:"final_segments"`
	ManifestSwaps   float64 `json:"manifest_swaps"`
	CrawlVirtualS   float64 `json:"crawl_virtual_s"`
	QueriesServed   int     `json:"queries_served"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`
	FreshP50S       float64 `json:"fresh_p50_s"`
	FreshP99S       float64 `json:"fresh_p99_s"`
	FreshMaxS       float64 `json:"fresh_max_s"`
	ServeP50Ms      float64 `json:"serve_p50_ms"`
	ServeP99Ms      float64 `json:"serve_p99_ms"`
	ReplayIdentical bool    `json:"replay_identical"`
	WallMs          float64 `json:"wall_ms"`
}

// freshMetrics is one replay's measurement, plus the fingerprint of
// every served answer for the two-replay identity check.
type freshMetrics struct {
	pages, docsIndexed, sealed, merges, finalSegments int
	mergedDocs, tombstonesDropped                     int
	swaps                                             uint64
	crawlVirtualS                                     float64
	queriesServed                                     int
	cacheHitRatio                                     float64
	freshP50, freshP99, freshMax                      float64
	serveP50, serveP99                                float64
	fingerprint                                       uint64
}

// runFreshBench runs the crawl→index→serve pipeline end to end: crawler
// agents stream fetched pages into per-partition segment writers while
// a LiveEngine answers loadgen traffic over the same stores, all on one
// virtual clock. The scenario reports freshness lag — the virtual
// seconds between a page's download and the atomic manifest swap that
// makes it searchable — alongside serving latency quantiles, then runs
// the whole pipeline a second time and verifies the two replays served
// byte-identical answers.
func runFreshBench(w io.Writer, o freshOptions) error {
	_, err := freshBench(w, o)
	return err
}

// freshBench is runFreshBench returning the measured report, so -check
// can diff a fresh run against the committed artifact.
func freshBench(w io.Writer, o freshOptions) (freshReport, error) {
	fmt.Fprintf(w, "continuous indexing: crawl + index + serve on one virtual clock\n")
	fmt.Fprintf(w, "%d hosts, %d partitions, %d-doc segments, %.1f queries/virtual-second, seed %d\n\n",
		o.hosts, o.parts, o.segDocs, o.rate, o.seed)

	t0 := time.Now()
	m1 := freshReplay(o)
	m2 := freshReplay(o)
	wallMs := float64(time.Since(t0).Microseconds()) / 1000

	rep := freshReport{Scenario: "fresh"}
	rep.Config.Seed = o.seed
	rep.Config.Hosts = o.hosts
	rep.Config.Parts = o.parts
	rep.Config.SegDocs = o.segDocs
	rep.Config.RateQPS = o.rate
	rep.Pages = m1.pages
	rep.DocsIndexed = m1.docsIndexed
	rep.SegmentsSealed = m1.sealed
	rep.Merges = m1.merges
	rep.FinalSegments = m1.finalSegments
	rep.ManifestSwaps = float64(m1.swaps)
	rep.CrawlVirtualS = m1.crawlVirtualS
	rep.QueriesServed = m1.queriesServed
	rep.CacheHitRatio = m1.cacheHitRatio
	rep.FreshP50S = m1.freshP50
	rep.FreshP99S = m1.freshP99
	rep.FreshMaxS = m1.freshMax
	rep.ServeP50Ms = m1.serveP50
	rep.ServeP99Ms = m1.serveP99
	rep.ReplayIdentical = m1 == m2 // fingerprint and every counter
	rep.WallMs = wallMs

	fmt.Fprintf(w, "crawl:   %d pages in %.0f virtual s; %d docs indexed into %d partitions\n",
		rep.Pages, rep.CrawlVirtualS, rep.DocsIndexed, o.parts)
	fmt.Fprintf(w, "index:   %d segments sealed, %d merges (%d docs rewritten, %d tombstones dropped), %d final segments, %.0f manifest swaps\n",
		rep.SegmentsSealed, rep.Merges, m1.mergedDocs, m1.tombstonesDropped, rep.FinalSegments, rep.ManifestSwaps)
	fmt.Fprintf(w, "fresh:   crawl→searchable lag p50 %.1fs  p99 %.1fs  max %.1fs\n",
		rep.FreshP50S, rep.FreshP99S, rep.FreshMaxS)
	fmt.Fprintf(w, "serve:   %d queries, latency p50 %.3fms  p99 %.3fms, cache hit ratio %.2f\n",
		rep.QueriesServed, rep.ServeP50Ms, rep.ServeP99Ms, rep.CacheHitRatio)
	if rep.ReplayIdentical {
		fmt.Fprintf(w, "replay:  second run byte-identical (every answer and counter)\n")
	} else {
		fmt.Fprintf(w, "replay:  FAILED — second run diverged\n")
	}

	if o.dir != "" {
		path, err := writeBenchJSON(o.dir, "fresh", rep)
		if err != nil {
			return rep, err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	if !rep.ReplayIdentical {
		return rep, fmt.Errorf("fresh: two replays of seed %d diverged", o.seed)
	}
	return rep, nil
}

// freshReplay runs one full crawl→index→serve pass and measures it.
func freshReplay(o freshOptions) freshMetrics {
	wcfg := simweb.DefaultConfig()
	wcfg.Hosts = o.hosts
	wcfg.Seed = o.seed
	web := simweb.New(wcfg)
	lg := querylog.Generate(web, querylog.DefaultConfig())
	arrivals := loadgen.Open(lg, loadgen.OpenConfig{
		Seed: o.seed, Rate: o.rate, N: 20000, K: 10,
	}).Init()

	// One segment store per partition; a writer streams crawled pages
	// into each. Merges run inline: deterministic scheduling is what
	// makes the two-replay identity check meaningful (dwrserve -live is
	// the wall-clock mode with background merges).
	stores := make([]*index.SegmentStore, o.parts)
	writers := make([]*index.SegmentWriter, o.parts)
	for i := range stores {
		stores[i] = index.NewSegmentStore(index.DefaultOptions(), index.MergePolicy{Radix: 3})
		writers[i] = index.NewSegmentWriter(stores[i], o.segDocs)
	}
	eng, err := qproc.NewLiveEngine(stores, qproc.WithResultCache(qproc.ResultCacheConfig{
		Capacity: 512, Shards: 8,
	}))
	if err != nil {
		panic(err) // len(stores) > 0 by construction
	}

	type pendingDoc struct {
		ext, part int
		fetchedAt float64
	}
	var (
		m       freshMetrics
		pending []pendingDoc
		lag     metrics.Sample
		serveMs metrics.Sample
		clock   float64
		ai      int // next arrival index
		fp      = fnv.New64a()
	)
	serveDue := func() {
		for ai < len(arrivals) && arrivals[ai].At <= clock {
			qr := eng.Query(arrivals[ai].Req.Terms, arrivals[ai].Req.K)
			serveMs.Add(qr.LatencyMs)
			m.queriesServed++
			fmt.Fprintf(fp, "%v|%v|", qr.FromCache, qr.LatencyMs)
			for _, r := range qr.Results {
				fmt.Fprintf(fp, "%d:%v ", r.Doc, r.Score)
			}
			ai++
		}
	}
	drainSearchable := func() {
		kept := pending[:0]
		for _, p := range pending {
			if stores[p.part].Manifest().Contains(p.ext) {
				lag.Add(clock - p.fetchedAt)
			} else {
				kept = append(kept, p)
			}
		}
		pending = kept
	}

	ccfg := crawler.DefaultConfig()
	ccfg.Seed = o.seed
	c := crawler.New(web, ccfg)
	var seeds []string
	for _, h := range web.Hosts {
		if len(h.Pages) > 0 {
			seeds = append(seeds, web.URL(h.Pages[0]))
		}
	}
	c.Seed(seeds)
	c.OnPage(func(p *crawler.Page) {
		if p.FetchedAt > clock {
			clock = p.FetchedAt
		}
		serveDue()
		doc := textproc.ParseHTML(p.HTML)
		terms := textproc.Tokenize(doc.Text)
		if len(terms) == 0 {
			return
		}
		part := p.PageID % o.parts
		if err := writers[part].AddDocument(p.PageID, terms); err != nil {
			return // refetch of an already-indexed page
		}
		pending = append(pending, pendingDoc{ext: p.PageID, part: part, fetchedAt: clock})
		drainSearchable()
	})
	st := c.Run()
	m.pages = st.DistinctPages
	if st.VirtualSeconds > clock {
		clock = st.VirtualSeconds
	}
	serveDue()

	// End of crawl: seal every partial buffer so the tail of the crawl
	// becomes searchable, then serve a settle-phase against the complete
	// index (the next 200 scheduled arrivals, clock following them).
	for _, w := range writers {
		if err := w.Cut(); err != nil {
			panic(err)
		}
	}
	drainSearchable()
	for tail := 0; tail < 200 && ai < len(arrivals); tail++ {
		clock = arrivals[ai].At
		serveDue()
	}

	m.docsIndexed = eng.NumDocs()
	for _, s := range stores {
		ss := s.Stats()
		m.sealed += ss.Applied
		m.merges += ss.Merges
		m.mergedDocs += ss.MergedDocs
		m.tombstonesDropped += ss.TombstonesDropped
		m.finalSegments += ss.Segments
		m.swaps += ss.Gen
	}
	m.crawlVirtualS = st.VirtualSeconds
	m.cacheHitRatio = eng.Stats().ResultCache.HitRatio()
	m.freshP50 = lag.Quantile(0.5)
	m.freshP99 = lag.Quantile(0.99)
	m.freshMax = lag.Quantile(1)
	m.serveP50 = serveMs.Quantile(0.5)
	m.serveP99 = serveMs.Quantile(0.99)
	m.fingerprint = fp.Sum64()
	return m
}
