// Command dwrbench regenerates the paper's tables and figures (and the
// quantitative claims embedded in its prose) as terminal reports.
//
// Usage:
//
//	dwrbench            # run every experiment, in paper order
//	dwrbench -list      # list experiment IDs and titles
//	dwrbench -exp F2    # run one experiment (T1, F1, F2, F5, F6, C1..C14)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dwr/internal/experiments"
	"dwr/internal/qproc"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	exp := flag.String("exp", "all", "experiment ID to run, or 'all'")
	workers := flag.Int("workers", 0, "engine fan-out width (0 = GOMAXPROCS, 1 = serial); every experiment reports identical numbers at any value")
	flag.Parse()
	qproc.SetDefaultWorkers(*workers)

	if *list {
		for _, e := range experiments.Registry() {
			r := e.Run // do not run; IDs and titles only via a cheap call table
			_ = r
			fmt.Println(e.ID)
		}
		return
	}

	if *exp != "all" {
		r := experiments.Run(*exp)
		if r == nil {
			fmt.Fprintf(os.Stderr, "dwrbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Print(r.String())
		return
	}

	start := time.Now()
	for _, e := range experiments.Registry() {
		t0 := time.Now()
		r := e.Run()
		fmt.Print(r.String())
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("all experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
}
