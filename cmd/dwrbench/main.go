// Command dwrbench regenerates the paper's tables and figures (and the
// quantitative claims embedded in its prose) as terminal reports.
//
// Usage:
//
//	dwrbench            # run every experiment, in paper order
//	dwrbench -list      # list experiment IDs and titles
//	dwrbench -exp F2    # run one experiment (T1, F1, F2, F5, F6, C1..C14)
//	dwrbench -faults    # run the fault-injection scenario suite
//	dwrbench -serve     # run the serving front-end capacity sweep
//	dwrbench -pruning   # exhaustive vs MaxScore vs Block-Max top-k comparison
//	dwrbench -threshold # single-wave scatter vs threshold-sharing waves
//	dwrbench -fresh     # continuous indexing: crawl + index + serve on one virtual clock
//	dwrbench -federate  # federated mediation: collection selection on the serving path
//	dwrbench -check     # re-run scenarios against committed BENCH_*.json baselines
//
// The -serve, -pruning, -threshold, -fresh, and -federate scenarios also
// write machine-readable BENCH_<scenario>.json artifacts under -benchdir so
// the perf trajectory is tracked across commits instead of eyeballed
// from captured terminal output; -check closes the loop by failing when
// a fresh run drifts from the committed artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dwr/internal/experiments"
	"dwr/internal/qproc"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	exp := flag.String("exp", "all", "experiment ID to run, or 'all'")
	workers := flag.Int("workers", 0, "engine fan-out width (0 = GOMAXPROCS, 1 = serial); every experiment reports identical numbers at any value")
	cacheCap := flag.Int("cachecap", 0, "give every constructed engine a broker result cache of this many entries (0 = off, the default: cached answers change the latency numbers)")
	cacheTTL := flag.Int("cachettl", 0, "result-cache entry TTL in queries (0 = never expires)")
	cacheShards := flag.Int("cacheshards", 0, "result-cache lock shards (0 = 8)")
	cachePolicy := flag.String("cachepolicy", "lru", "result-cache replacement for -cachecap: lru | lfu")
	plCache := flag.Int64("plcache", 0, "per-server posting-list cache budget in bytes of resident encoded blocks plus block metadata (0 = off; results are identical, only decode work changes)")
	faults := flag.Bool("faults", false, "run the fault-injection scenario suite: availability and tail latency under crash/flaky/slow/outage schedules (deterministic for a fixed -faultseed)")
	faultSeed := flag.Int64("faultseed", 42, "fault-schedule seed for -faults")
	serve := flag.Bool("serve", false, "run the serving front-end capacity sweep: open-loop load at multiples of the G/G/c bound c/E[S], validating saturation and graceful degradation (deterministic for a fixed -serveseed)")
	serveC := flag.Int("servec", 150, "front-end worker pool width c for -serve (the paper's 150-thread Apache configuration)")
	serveN := flag.Int("serven", 6000, "arrivals per rate point for -serve")
	serveRates := flag.String("serverates", "0.3,0.6,0.9,1.1,1.5,2.0", "comma-separated multipliers of the capacity bound for -serve")
	serveSeed := flag.Int64("serveseed", 42, "workload seed for -serve")
	pruning := flag.Bool("pruning", false, "run the exhaustive-vs-pruned top-k comparison (full OR vs MaxScore vs Block-Max WAND), verifying rank-identical results while measuring QPS, latency quantiles, allocations, and decoded posting bytes")
	pruneSeed := flag.Int64("pruneseed", 42, "corpus and query seed for -pruning")
	pruneDocs := flag.Int("prunedocs", 8000, "corpus size in documents for -pruning")
	pruneQueries := flag.Int("prunequeries", 400, "query count for -pruning")
	threshold := flag.Bool("threshold", false, "run the distributed threshold-sharing comparison: single-wave scatter vs bound-ordered waves seeded with the broker's running k-th score, verifying rank-identical results while measuring QPS, latency quantiles, decoded posting bytes, skipped partitions, and waves")
	thresholdSeed := flag.Int64("thresholdseed", 42, "corpus and query seed for -threshold")
	thresholdDocs := flag.Int("thresholddocs", 24000, "corpus size in documents for -threshold")
	thresholdQueries := flag.Int("thresholdqueries", 200, "query count for -threshold")
	thresholdParts := flag.Int("thresholdparts", 8, "document partitions for -threshold")
	fresh := flag.Bool("fresh", false, "run the continuous-indexing scenario: crawler agents stream pages into per-partition segment writers while a live engine serves loadgen traffic over the same stores, reporting crawl→searchable freshness lag and serving latency; the whole pipeline is replayed twice and must answer byte-identically")
	freshSeed := flag.Int64("freshseed", 42, "web, crawl, and workload seed for -fresh")
	freshHosts := flag.Int("freshhosts", 100, "simulated web hosts for -fresh")
	freshParts := flag.Int("freshparts", 4, "index partitions (segment stores) for -fresh")
	freshSegDocs := flag.Int("freshsegdocs", 32, "documents per sealed segment for -fresh")
	freshRate := flag.Float64("freshrate", 2.0, "query arrivals per virtual second for -fresh")
	federate := flag.Bool("federate", false, "run the federated mediation scenario: a topical multi-site federation answers a mixed query stream with per-query collection selection (mediated) and with the classic exhaustive fan-out, under a rolling outage schedule; at least half the queries must be answered touching under half the sites at Recall@10 >= 0.95, and both modes must replay byte-identically")
	federateSeed := flag.Int64("federateseed", 42, "corpus, outage, and workload seed for -federate")
	federateSites := flag.Int("federatesites", 8, "federation sites for -federate")
	federateDocs := flag.Int("federatedocs", 300, "documents per site for -federate")
	federateQueries := flag.Int("federatequeries", 400, "query count for -federate")
	check := flag.Bool("check", false, "re-run the -pruning, -threshold, -fresh, and -federate scenarios against their committed BENCH_<scenario>.json baselines in -benchdir: deterministic work counters must match within 1%, speedups within -checktol, and every ranking must stay rank-identical (nonzero exit on violation)")
	checkTol := flag.Float64("checktol", 0.35, "allowed relative drift of wall-clock speedup ratios for -check (work counters are always held to 1%)")
	benchDir := flag.String("benchdir", "docs", "directory for machine-readable BENCH_<scenario>.json artifacts (empty = don't write)")
	flag.Parse()
	var defaults []qproc.Option
	defaults = append(defaults, qproc.WithWorkers(*workers))
	if *cacheCap > 0 {
		policy, err := qproc.ParseCachePolicy(*cachePolicy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dwrbench: %v\n", err)
			os.Exit(2)
		}
		defaults = append(defaults, qproc.WithResultCache(qproc.ResultCacheConfig{
			Capacity:   *cacheCap,
			Shards:     *cacheShards,
			TTLQueries: *cacheTTL,
			Policy:     policy,
		}))
	}
	if *plCache > 0 {
		defaults = append(defaults, qproc.WithPostingsCache(*plCache))
	}
	qproc.SetDefaultOptions(defaults...)

	if *faults {
		if err := runFaultScenarios(os.Stdout, *faultSeed); err != nil {
			fmt.Fprintf(os.Stderr, "dwrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serve {
		opts := serveOptions{c: *serveC, n: *serveN, rates: *serveRates, seed: *serveSeed, dir: *benchDir}
		if err := runServeSweep(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "dwrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *pruning {
		opts := pruningOptions{seed: *pruneSeed, docs: *pruneDocs, queries: *pruneQueries, dir: *benchDir}
		if err := runPruningBench(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "dwrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *threshold {
		opts := thresholdOptions{seed: *thresholdSeed, docs: *thresholdDocs, queries: *thresholdQueries, parts: *thresholdParts, dir: *benchDir}
		if err := runThresholdBench(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "dwrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fresh {
		opts := freshOptions{seed: *freshSeed, hosts: *freshHosts, parts: *freshParts,
			segDocs: *freshSegDocs, rate: *freshRate, dir: *benchDir}
		if err := runFreshBench(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "dwrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *federate {
		opts := federateOptions{seed: *federateSeed, sites: *federateSites,
			perSite: *federateDocs, queries: *federateQueries, dir: *benchDir}
		if err := runFederateBench(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "dwrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *check {
		if err := runBenchCheck(os.Stdout, *benchDir, *checkTol); err != nil {
			fmt.Fprintf(os.Stderr, "dwrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			r := e.Run // do not run; IDs and titles only via a cheap call table
			_ = r
			fmt.Println(e.ID)
		}
		return
	}

	if *exp != "all" {
		r := experiments.Run(*exp)
		if r == nil {
			fmt.Fprintf(os.Stderr, "dwrbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Print(r.String())
		return
	}

	start := time.Now()
	for _, e := range experiments.Registry() {
		t0 := time.Now()
		r := e.Run()
		fmt.Print(r.String())
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("all experiments completed in %v\n", time.Since(start).Round(time.Millisecond))
}
