package main

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// writeBenchJSON writes one machine-readable benchmark artifact as
// BENCH_<scenario>.json under dir and returns the path. Scenarios emit
// these alongside their terminal reports so the perf trajectory can be
// tracked (and diffed in CI) instead of eyeballed from captured text.
func writeBenchJSON(dir, scenario string, v any) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+scenario+".json")
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
