package main

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"dwr/internal/cluster"
	"dwr/internal/index"
	"dwr/internal/mediator"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/randx"
)

// federateOptions sizes the federated-mediation scenario.
type federateOptions struct {
	seed    int64
	sites   int
	perSite int
	queries int
	dir     string // BENCH_federate.json destination ("" = don't write)
}

// federateRun is one mode's measurement row of BENCH_federate.json.
// Every field is deterministic for a fixed seed: latencies are virtual
// WAN milliseconds, recall is measured against the exhaustive fan-out
// over the same up set, and the whole pipeline is replayed twice and
// must fingerprint identically.
type federateRun struct {
	Mode                   string  `json:"mode"`
	Queries                int     `json:"queries"`
	FracUnderHalf          float64 `json:"frac_under_half"`      // touched < 50% of sites
	FracUnderHalfGood      float64 `json:"frac_under_half_good"` // ...at recall@10 >= 0.95
	FracFullFanout         float64 `json:"frac_full_fanout"`
	MeanRecall             float64 `json:"mean_recall_at_10"`
	SitesContactedPerQuery float64 `json:"sites_contacted_per_query"`
	SitesSkippedPerQuery   float64 `json:"sites_skipped_per_query"`
	BytesPerQuery          float64 `json:"bytes_per_query"`
	LatencyP50Ms           float64 `json:"latency_p50_ms"`
	LatencyP99Ms           float64 `json:"latency_p99_ms"`
	Failures               int     `json:"failures"`
	Retries                int     `json:"retries"`
	ReplayIdentical        bool    `json:"replay_identical"`
}

// federateReport is the full BENCH_federate.json document.
type federateReport struct {
	Scenario string `json:"scenario"`
	Config   struct {
		Seed    int64 `json:"seed"`
		Sites   int   `json:"sites"`
		PerSite int   `json:"per_site_docs"`
		Queries int   `json:"queries"`
	} `json:"config"`
	Runs []federateRun `json:"runs"`
}

// runFederateBench measures collection selection on the serving path: a
// topical multi-site federation answers a mixed query stream once with
// the mediator deciding per query which sites to contact, and once with
// the classic exhaustive fan-out, under a rolling multi-site outage
// schedule. The mediated run must answer at least half the queries
// touching under half the sites while keeping Recall@10 >= 0.95 against
// the exhaustive reference, and both runs must replay byte-identically.
func runFederateBench(w io.Writer, o federateOptions) error {
	_, err := federateBench(w, o)
	return err
}

// federateBench is runFederateBench returning the measured report, so
// -check can diff a fresh run against the committed artifact.
func federateBench(w io.Writer, o federateOptions) (federateReport, error) {
	rep := federateReport{Scenario: "federate"}
	rep.Config.Seed = o.seed
	rep.Config.Sites = o.sites
	rep.Config.PerSite = o.perSite
	rep.Config.Queries = o.queries

	fmt.Fprintf(w, "federated query mediation: %d sites x %d docs, %d queries, seed %d\n",
		o.sites, o.perSite, o.queries, o.seed)
	fmt.Fprintf(w, "sites 1, 4, ... are down hours [6,12); recall is measured against the exhaustive fan-out over the same up set\n\n")
	fmt.Fprintf(w, "%-11s %8s %9s %9s %9s %8s %8s %9s %8s %8s %6s\n",
		"mode", "queries", "<half", "<half&ok", "fullfan", "recall", "sites/q", "bytes/q", "p50ms", "p99ms", "replay")

	for _, mode := range []string{"fullfanout", "mediated"} {
		run, fp1, err := federatePass(o, mode)
		if err != nil {
			return rep, err
		}
		_, fp2, err := federatePass(o, mode)
		if err != nil {
			return rep, err
		}
		run.ReplayIdentical = fp1 == fp2
		rep.Runs = append(rep.Runs, run)
		fmt.Fprintf(w, "%-11s %8d %8.1f%% %8.1f%% %8.1f%% %8.3f %8.2f %9.0f %8.1f %8.1f %6v\n",
			run.Mode, run.Queries, 100*run.FracUnderHalf, 100*run.FracUnderHalfGood,
			100*run.FracFullFanout, run.MeanRecall, run.SitesContactedPerQuery,
			run.BytesPerQuery, run.LatencyP50Ms, run.LatencyP99Ms, run.ReplayIdentical)
		if !run.ReplayIdentical {
			return rep, fmt.Errorf("federate %s: two replays diverged (fingerprints %x vs %x)", mode, fp1, fp2)
		}
		if run.Failures > 0 {
			return rep, fmt.Errorf("federate %s: %d queries failed despite healthy fallback sites", mode, run.Failures)
		}
		if mode == "mediated" {
			if run.FracUnderHalfGood < 0.5 {
				return rep, fmt.Errorf("federate mediated: only %.1f%% of queries were answered touching under half the sites at recall >= 0.95 (need >= 50%%)",
					100*run.FracUnderHalfGood)
			}
			if run.MeanRecall < 0.95 {
				return rep, fmt.Errorf("federate mediated: mean recall@10 %.3f < 0.95", run.MeanRecall)
			}
		}
	}

	if o.dir != "" {
		path, err := writeBenchJSON(o.dir, "federate", rep)
		if err != nil {
			return rep, err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	return rep, nil
}

// federateWorkload builds the seeded topical federation corpus (site s
// owns the "s<s>w*" vocabulary; a fifth of all words come from a shared
// pool every site holds) and the mixed query stream.
func federateWorkload(o federateOptions) ([][]index.Doc, [][]string) {
	rng := randx.New(o.seed)
	siteDocs := make([][]index.Doc, o.sites)
	for s := 0; s < o.sites; s++ {
		docs := make([]index.Doc, o.perSite)
		for d := 0; d < o.perSite; d++ {
			terms := make([]string, 20+rng.Intn(40))
			for j := range terms {
				if rng.Intn(5) == 0 {
					terms[j] = fmt.Sprintf("shared%02d", rng.Intn(30))
				} else {
					terms[j] = fmt.Sprintf("s%dw%02d", s, rng.Intn(60))
				}
			}
			docs[d] = index.Doc{Ext: s*100000 + d, Terms: terms}
		}
		siteDocs[s] = docs
	}
	queries := make([][]string, o.queries)
	for i := range queries {
		if rng.Intn(3) == 0 {
			queries[i] = []string{fmt.Sprintf("shared%02d", rng.Intn(30))}
			continue
		}
		s := rng.Intn(o.sites)
		q := []string{fmt.Sprintf("s%dw%02d", s, rng.Intn(60))}
		if rng.Intn(2) == 0 {
			q = append(q, fmt.Sprintf("s%dw%02d", s, rng.Intn(60)))
		}
		queries[i] = q
	}
	return siteDocs, queries
}

// federatePass builds a fresh federation and drives the full query
// stream through it once, returning the measured row and a fingerprint
// of every answer and counter (replays must match it exactly).
func federatePass(o federateOptions, mode string) (federateRun, uint64, error) {
	siteDocs, queries := federateWorkload(o)
	engines := make([]*qproc.DocEngine, o.sites)
	for s := 0; s < o.sites; s++ {
		ids := make([]int, len(siteDocs[s]))
		for i, d := range siteDocs[s] {
			ids[i] = d.Ext
		}
		e, err := qproc.NewDocEngine(index.DefaultOptions(), siteDocs[s], partition.RoundRobinDocs(ids, 2))
		if err != nil {
			return federateRun{}, 0, err
		}
		engines[s] = e
	}
	var msOpts []qproc.Option
	if mode == "mediated" {
		var srcs []mediator.StatsSource
		for _, e := range engines {
			srcs = append(srcs, mediator.EngineSource{Eng: e})
		}
		msOpts = append(msOpts, qproc.WithMediator(
			mediator.New(mediator.Config{SelectN: 2, MinConfidence: 0.3}, srcs...)))
	}
	ms := qproc.NewMultiSite(cluster.NewNetwork(o.seed, o.sites), qproc.RouteGeo, msOpts...)
	for s, e := range engines {
		site := qproc.NewSite(s, s, e, 64, 1_000_000)
		if s%3 == 1 {
			// Rolling multi-site outage: every third site is dark for a
			// quarter of each virtual day.
			site.Outages = []cluster.Outage{{Start: 6, End: 12}}
		}
		ms.Sites = append(ms.Sites, site)
	}

	run := federateRun{Mode: mode, Queries: len(queries)}
	h := fnv.New64a()
	var lat []float64
	var bytes int64
	var contacted, skipped, underHalf, underHalfGood, fullFan int
	var recallSum float64
	qrng := randx.New(o.seed + 1)
	for i, q := range queries {
		at := float64(i % 24)
		region := qrng.Intn(o.sites)
		r := ms.QueryFederated(q, qproc.NormalizeQueryKey(q), region, at, 10)
		if r.Failed {
			run.Failures++
		}
		if r.Retries > 0 {
			run.Retries += r.Retries
		}
		contacted += r.SitesContacted
		skipped += r.SitesSkipped
		bytes += r.BytesTransferred
		lat = append(lat, r.LatencyMs)
		rec := mediator.Recall(r.Results, ms.QueryExhaustiveResults(q, at, 10))
		recallSum += rec
		if r.FullFanout {
			fullFan++
		}
		if 2*r.SitesContacted < o.sites {
			underHalf++
			if rec >= 0.95 {
				underHalfGood++
			}
		}
		fmt.Fprintf(h, "q=%v at=%g region=%d cached=%v full=%v contacted=%d skipped=%d failed=%v degraded=%v lat=%.17g rec=%.17g\n",
			q, at, region, r.FromCache, r.FullFanout, r.SitesContacted, r.SitesSkipped,
			r.Failed, r.Degraded, r.LatencyMs, rec)
		for _, res := range r.Results {
			fmt.Fprintf(h, "%d:%.17g ", res.Doc, res.Score)
		}
		fmt.Fprintln(h)
	}
	st := ms.Stats()
	fmt.Fprintf(h, "sel=%s\n", st.Selection.String())

	n := float64(len(queries))
	run.FracUnderHalf = float64(underHalf) / n
	run.FracUnderHalfGood = float64(underHalfGood) / n
	run.FracFullFanout = float64(fullFan) / n
	run.MeanRecall = recallSum / n
	run.SitesContactedPerQuery = float64(contacted) / n
	run.SitesSkippedPerQuery = float64(skipped) / n
	run.BytesPerQuery = float64(bytes) / n
	sort.Float64s(lat)
	run.LatencyP50Ms = lat[len(lat)/2]
	run.LatencyP99Ms = lat[min(len(lat)-1, len(lat)*99/100)]
	return run, h.Sum64(), nil
}
