package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// workTol is the allowed relative drift of deterministic work counters
// (decoded bytes, postings, partitions contacted/skipped, waves) between
// a fresh run and the committed artifact. These counters are seeded and
// replay exactly, so the band only absorbs float formatting; any real
// drift means the evaluator or scheduler changed behavior without the
// artifact being regenerated.
const workTol = 0.01

// runBenchCheck re-runs the -pruning and -threshold scenarios with the
// configurations recorded in their committed BENCH_<scenario>.json
// artifacts under dir, and fails (nonzero exit via error) when a fresh
// run drifts: deterministic work counters beyond workTol, wall-clock
// speedup ratios beyond tol, or any ranking no longer rank-identical.
// This is the CI closing of the loop — a perf regression or a silent
// behavior change must update the artifact in the same commit.
func runBenchCheck(w io.Writer, dir string, tol float64) error {
	var violations []string
	checked := 0

	if base, err := loadBench[pruningReport](dir, "pruning"); err == nil {
		fmt.Fprintf(w, "check pruning: re-running committed config %+v\n", base.Config)
		fresh, err := pruningBench(w, pruningOptions{
			seed: base.Config.Seed, docs: base.Config.Docs, queries: base.Config.Queries,
		})
		if err != nil {
			return err
		}
		violations = append(violations, diffPruning(base, fresh, tol)...)
		checked++
		fmt.Fprintln(w)
	} else if !os.IsNotExist(err) {
		return err
	}

	if base, err := loadBench[thresholdReport](dir, "threshold"); err == nil {
		fmt.Fprintf(w, "check threshold: re-running committed config %+v\n", base.Config)
		fresh, err := thresholdBench(w, thresholdOptions{
			seed: base.Config.Seed, docs: base.Config.Docs,
			queries: base.Config.Queries, parts: base.Config.Partitions,
		})
		if err != nil {
			return err
		}
		violations = append(violations, diffThreshold(base, fresh, tol)...)
		checked++
		fmt.Fprintln(w)
	} else if !os.IsNotExist(err) {
		return err
	}

	if base, err := loadBench[freshReport](dir, "fresh"); err == nil {
		fmt.Fprintf(w, "check fresh: re-running committed config %+v\n", base.Config)
		fresh, err := freshBench(w, freshOptions{
			seed: base.Config.Seed, hosts: base.Config.Hosts, parts: base.Config.Parts,
			segDocs: base.Config.SegDocs, rate: base.Config.RateQPS,
		})
		if err != nil {
			return err
		}
		violations = append(violations, diffFresh(base, fresh)...)
		checked++
		fmt.Fprintln(w)
	} else if !os.IsNotExist(err) {
		return err
	}

	if base, err := loadBench[federateReport](dir, "federate"); err == nil {
		fmt.Fprintf(w, "check federate: re-running committed config %+v\n", base.Config)
		fresh, err := federateBench(w, federateOptions{
			seed: base.Config.Seed, sites: base.Config.Sites,
			perSite: base.Config.PerSite, queries: base.Config.Queries,
		})
		if err != nil {
			return err
		}
		violations = append(violations, diffFederate(base, fresh)...)
		checked++
		fmt.Fprintln(w)
	} else if !os.IsNotExist(err) {
		return err
	}

	if checked == 0 {
		return fmt.Errorf("no BENCH_pruning.json, BENCH_threshold.json, BENCH_fresh.json, or BENCH_federate.json baseline under %q", dir)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(w, "FAIL %s\n", v)
		}
		return fmt.Errorf("%d drift violation(s) against committed baselines", len(violations))
	}
	fmt.Fprintf(w, "check ok: %d scenario(s) match their committed baselines (work within %.0f%%, speedups within %.0f%%)\n",
		checked, 100*workTol, 100*tol)
	return nil
}

// loadBench parses dir/BENCH_<scenario>.json into the report type.
func loadBench[T any](dir, scenario string) (T, error) {
	var rep T
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_"+scenario+".json"))
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("BENCH_%s.json: %w", scenario, err)
	}
	return rep, nil
}

// drifted reports whether fresh has moved more than tol relative to
// base. A zero base only matches a zero fresh value.
func drifted(base, fresh, tol float64) bool {
	if base == 0 {
		return fresh != 0
	}
	return math.Abs(fresh-base)/math.Abs(base) > tol
}

func diffPruning(base, fresh pruningReport, tol float64) []string {
	var out []string
	if len(base.Runs) != len(fresh.Runs) {
		return []string{fmt.Sprintf("pruning: %d baseline rows vs %d fresh rows", len(base.Runs), len(fresh.Runs))}
	}
	for i, b := range base.Runs {
		f := fresh.Runs[i]
		id := fmt.Sprintf("pruning %s k=%d", b.Mode, b.K)
		if b.Mode != f.Mode || b.K != f.K {
			out = append(out, fmt.Sprintf("%s: fresh row is %s k=%d", id, f.Mode, f.K))
			continue
		}
		if !f.RankIdentical {
			out = append(out, id+": fresh run no longer rank-identical")
		}
		for _, c := range []struct {
			name        string
			base, fresh float64
		}{
			{"bytes_decoded_per_query", b.BytesDecodedPerQuery, f.BytesDecodedPerQuery},
			{"postings_per_query", b.PostingsPerQuery, f.PostingsPerQuery},
		} {
			if drifted(c.base, c.fresh, workTol) {
				out = append(out, fmt.Sprintf("%s: %s %.1f vs baseline %.1f (work counters must replay)", id, c.name, c.fresh, c.base))
			}
		}
		if drifted(b.SpeedupVsExhaustive, f.SpeedupVsExhaustive, tol) {
			out = append(out, fmt.Sprintf("%s: speedup_vs_exhaustive %.2f vs baseline %.2f (tol %.0f%%)",
				id, f.SpeedupVsExhaustive, b.SpeedupVsExhaustive, 100*tol))
		}
	}
	return out
}

// diffFresh holds every -fresh metric except wall-clock time to
// workTol: the scenario runs entirely on virtual time, so the crawl,
// the seal points, the merge cascades, and the query schedule replay
// exactly — any drift is a behavior change.
func diffFresh(base, fresh freshReport) []string {
	var out []string
	if !fresh.ReplayIdentical {
		out = append(out, "fresh: two replays of the pipeline no longer answer identically")
	}
	for _, c := range []struct {
		name        string
		base, fresh float64
	}{
		{"pages_crawled", float64(base.Pages), float64(fresh.Pages)},
		{"docs_indexed", float64(base.DocsIndexed), float64(fresh.DocsIndexed)},
		{"segments_sealed", float64(base.SegmentsSealed), float64(fresh.SegmentsSealed)},
		{"merges", float64(base.Merges), float64(fresh.Merges)},
		{"final_segments", float64(base.FinalSegments), float64(fresh.FinalSegments)},
		{"manifest_swaps", base.ManifestSwaps, fresh.ManifestSwaps},
		{"queries_served", float64(base.QueriesServed), float64(fresh.QueriesServed)},
		{"crawl_virtual_s", base.CrawlVirtualS, fresh.CrawlVirtualS},
		{"fresh_p50_s", base.FreshP50S, fresh.FreshP50S},
		{"fresh_p99_s", base.FreshP99S, fresh.FreshP99S},
		{"serve_p50_ms", base.ServeP50Ms, fresh.ServeP50Ms},
		{"serve_p99_ms", base.ServeP99Ms, fresh.ServeP99Ms},
		{"cache_hit_ratio", base.CacheHitRatio, fresh.CacheHitRatio},
	} {
		if drifted(c.base, c.fresh, workTol) {
			out = append(out, fmt.Sprintf("fresh: %s %.3f vs baseline %.3f (virtual-time metrics must replay)", c.name, c.fresh, c.base))
		}
	}
	return out
}

// diffFederate holds every -federate metric to workTol: the scenario's
// costs, latencies (virtual WAN milliseconds), recall, and fan-out
// counters all replay exactly for a fixed seed, so any drift is a
// behavior change in the mediator or the broker.
func diffFederate(base, fresh federateReport) []string {
	var out []string
	if len(base.Runs) != len(fresh.Runs) {
		return []string{fmt.Sprintf("federate: %d baseline rows vs %d fresh rows", len(base.Runs), len(fresh.Runs))}
	}
	for i, b := range base.Runs {
		f := fresh.Runs[i]
		id := "federate " + b.Mode
		if b.Mode != f.Mode {
			out = append(out, fmt.Sprintf("%s: fresh row is %s", id, f.Mode))
			continue
		}
		if !f.ReplayIdentical {
			out = append(out, id+": two replays no longer answer identically")
		}
		for _, c := range []struct {
			name        string
			base, fresh float64
		}{
			{"frac_under_half", b.FracUnderHalf, f.FracUnderHalf},
			{"frac_under_half_good", b.FracUnderHalfGood, f.FracUnderHalfGood},
			{"frac_full_fanout", b.FracFullFanout, f.FracFullFanout},
			{"mean_recall_at_10", b.MeanRecall, f.MeanRecall},
			{"sites_contacted_per_query", b.SitesContactedPerQuery, f.SitesContactedPerQuery},
			{"sites_skipped_per_query", b.SitesSkippedPerQuery, f.SitesSkippedPerQuery},
			{"bytes_per_query", b.BytesPerQuery, f.BytesPerQuery},
			{"latency_p50_ms", b.LatencyP50Ms, f.LatencyP50Ms},
			{"latency_p99_ms", b.LatencyP99Ms, f.LatencyP99Ms},
			{"failures", float64(b.Failures), float64(f.Failures)},
			{"retries", float64(b.Retries), float64(f.Retries)},
		} {
			if drifted(c.base, c.fresh, workTol) {
				out = append(out, fmt.Sprintf("%s: %s %.3f vs baseline %.3f (mediation metrics must replay)", id, c.name, c.fresh, c.base))
			}
		}
	}
	return out
}

func diffThreshold(base, fresh thresholdReport, tol float64) []string {
	var out []string
	if len(base.Runs) != len(fresh.Runs) {
		return []string{fmt.Sprintf("threshold: %d baseline rows vs %d fresh rows", len(base.Runs), len(fresh.Runs))}
	}
	for i, b := range base.Runs {
		f := fresh.Runs[i]
		id := fmt.Sprintf("threshold %s k=%d", b.Mode, b.K)
		if b.Mode != f.Mode || b.K != f.K {
			out = append(out, fmt.Sprintf("%s: fresh row is %s k=%d", id, f.Mode, f.K))
			continue
		}
		if !f.RankIdentical {
			out = append(out, id+": fresh run no longer rank-identical")
		}
		for _, c := range []struct {
			name        string
			base, fresh float64
		}{
			{"bytes_decoded_per_query", b.BytesDecodedPerQuery, f.BytesDecodedPerQuery},
			{"postings_per_query", b.PostingsPerQuery, f.PostingsPerQuery},
			{"contacted_per_query", b.ContactedPerQuery, f.ContactedPerQuery},
			{"skipped_per_query", b.SkippedPerQuery, f.SkippedPerQuery},
			{"waves_per_query", b.WavesPerQuery, f.WavesPerQuery},
			{"bytes_vs_blockmax", b.BytesVsBlockmax, f.BytesVsBlockmax},
		} {
			if drifted(c.base, c.fresh, workTol) {
				out = append(out, fmt.Sprintf("%s: %s %.2f vs baseline %.2f (work counters must replay)", id, c.name, c.fresh, c.base))
			}
		}
		if drifted(b.SpeedupVsBlockmax, f.SpeedupVsBlockmax, tol) {
			out = append(out, fmt.Sprintf("%s: speedup_vs_blockmax %.2f vs baseline %.2f (tol %.0f%%)",
				id, f.SpeedupVsBlockmax, b.SpeedupVsBlockmax, 100*tol))
		}
	}
	return out
}
