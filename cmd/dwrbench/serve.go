package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"dwr/internal/core"
	"dwr/internal/loadgen"
	"dwr/internal/metrics"
	"dwr/internal/querylog"
	"dwr/internal/queueing"
	"dwr/internal/server"
)

// serveOptions sizes the -serve sweep.
type serveOptions struct {
	c     int    // front-end worker pool width (G/G/c)
	n     int    // arrivals per rate point
	rates string // comma-separated multipliers of the capacity bound
	seed  int64  // workload + admission seed
	dir   string // BENCH_serve.json destination ("" = don't write)
}

// serveRun is one sweep row of BENCH_serve.json.
type serveRun struct {
	Load       string  `json:"load"`
	OfferedQPS float64 `json:"offered_qps"`
	GoodputQPS float64 `json:"goodput_qps"`
	ShedPct    float64 `json:"shed_pct"`
	UtilPct    float64 `json:"util_pct"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// runServeSweep validates the paper's G/G/c capacity bound λ < c/E[S]
// (Section 5, Figure 6) against a real engine: it measures E[S] on log
// traffic, computes the predicted bound, then drives the serving
// front-end (internal/server) at multiples of it with an open-loop
// generator, reporting goodput, shed rate, and latency quantiles per
// point — the hockey stick at the bound and graceful degradation past
// it. A closed-loop point and a serving-under-faults point close the
// section. Everything runs in virtual time off fixed seeds: rerunning
// prints byte-identical output.
func runServeSweep(w io.Writer, o serveOptions) error {
	mults, err := parseRates(o.rates)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Web.Hosts = 60
	base, err := core.Build(cfg)
	if err != nil {
		return err
	}
	lcfg := querylog.DefaultConfig()
	lcfg.Seed = cfg.Seed + 9
	lcfg.Total = 4000
	lcfg.Distinct = 600
	lg := querylog.Generate(base.Web, lcfg)

	// Probe E[S] on the head of the log: the mean virtual service time
	// of real engine evaluations is what the bound divides by.
	probe := len(lg.Queries)
	if probe > 500 {
		probe = 500
	}
	var svc metrics.Sample
	for _, q := range lg.Queries[:probe] {
		svc.Add(base.Query.QueryTopK(q.Terms, 10).LatencyMs)
	}
	meanMs := svc.Mean()
	bound := queueing.CapacityBound(o.c, meanMs/1000)

	fmt.Fprintf(w, "serving front-end capacity sweep: c=%d workers, %d arrivals/point, seed %d\n",
		o.c, o.n, o.seed)
	fmt.Fprintf(w, "measured E[S] = %.3f ms over %d probe queries (p95=%.2f p99=%.2f)\n",
		meanMs, probe, svc.Quantile(0.95), svc.Quantile(0.99))
	fmt.Fprintf(w, "G/G/%d capacity bound c/E[S] = %.0f qps; admission paced at 1.05x bound\n",
		o.c, bound)
	fmt.Fprintf(w, "(virtual-time simulation; output is deterministic for fixed seeds)\n\n")

	scfg := server.Config{
		Workers:    o.c,
		QueueCap:   2 * o.c,
		DeadlineMs: 50 * meanMs,
		AdmitRate:  1.05 * bound,
		Shed:       server.ShedConfig{TargetP99Ms: 10 * meanMs, Window: 200},
		Seed:       o.seed,
	}

	fmt.Fprintf(w, "%-9s %9s %9s %7s %7s %8s %8s %8s %6s\n",
		"load", "offered", "goodput", "shed%", "util", "p50ms", "p95ms", "p99ms", "level")
	var rows []serveRun
	var sat float64
	for _, m := range mults {
		src := loadgen.Open(lg, loadgen.OpenConfig{
			Seed: o.seed + int64(m*1000), Rate: m * bound, N: o.n, BatchFrac: 0.2,
		})
		rep := server.Run(base.Query, scfg, src)
		rows = append(rows, writeServeRow(w, fmt.Sprintf("%.2fx", m), rep))
		if rep.GoodputQPS > sat {
			sat = rep.GoodputQPS
		}
	}
	fmt.Fprintf(w, "\nsaturation: peak goodput %.0f qps = %.2fx the predicted bound %.0f qps\n\n",
		sat, sat/bound, bound)

	// Closed loop: a population 4x the pool saturates the workers but
	// self-limits to N/(E[R]+Z) — run with no admission limits to show
	// that, unlike the open-loop overload, nothing needs to be shed.
	ccfg := scfg
	ccfg.AdmitRate = 0
	ccfg.Shed = server.ShedConfig{}
	ccfg.DeadlineMs = 0
	ccfg.QueueCap = 4 * o.c
	closed := loadgen.Closed(lg, loadgen.ClosedConfig{
		Seed: o.seed + 7, Users: 4 * o.c, ThinkMeanSec: meanMs / 1000, N: o.n,
	})
	rep := server.Run(base.Query, ccfg, closed)
	fmt.Fprintf(w, "closed loop, %d users, think E[Z]=E[S], no admission limits:\n", 4*o.c)
	rows = append(rows, writeServeRow(w, "closed", rep))

	// Serving under faults: same sweep point (0.9x bound) against an
	// engine whose partitions flake and straggle, best-effort policy.
	fcfg := cfg
	fcfg.Faults = &core.FaultConfig{Seed: o.seed + 13, FlakyP: 0.05, SlowP: 0.10, SlowMeanMs: 3 * meanMs}
	faulty, err := core.Build(fcfg)
	if err != nil {
		return err
	}
	fsrc := loadgen.Open(lg, loadgen.OpenConfig{
		Seed: o.seed + 17, Rate: 0.9 * bound, N: o.n, BatchFrac: 0.2,
	})
	frep := server.Run(faulty.Query, scfg, fsrc)
	fmt.Fprintf(w, "\nserving under faults (5%% flaky, 10%% straggling partition calls) at 0.90x bound:\n")
	fmt.Fprintf(w, "(retries and hedges inflate E[S], shrinking the effective bound; the\n")
	fmt.Fprintf(w, " front-end sheds the difference instead of letting latency run away)\n")
	rows = append(rows, writeServeRow(w, "faulty", frep))
	fmt.Fprintf(w, "  engine outcomes: %d degraded, %d deadline, %d failed of %d offered\n",
		frep.Degraded, frep.EngineDeadline, frep.EngineFailed, frep.Offered)

	if o.dir != "" {
		doc := struct {
			Scenario string     `json:"scenario"`
			Seed     int64      `json:"seed"`
			Workers  int        `json:"workers"`
			BoundQPS float64    `json:"capacity_bound_qps"`
			Runs     []serveRun `json:"runs"`
		}{Scenario: "serve", Seed: o.seed, Workers: o.c, BoundQPS: bound, Runs: rows}
		path, err := writeBenchJSON(o.dir, "serve", doc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	return nil
}

// writeServeRow prints one sweep point and returns it as a JSON row.
func writeServeRow(w io.Writer, label string, r server.Report) serveRun {
	shed := r.ShedOverload + r.ShedAdmission + r.ShedQueueFull + r.EvictedDeadline
	it := r.Class[server.Interactive]
	row := serveRun{
		Load:       label,
		OfferedQPS: r.OfferedQPS,
		GoodputQPS: r.GoodputQPS,
		ShedPct:    100 * float64(shed) / float64(r.Offered),
		UtilPct:    100 * r.Utilization,
		P50Ms:      it.P50Ms,
		P95Ms:      it.P95Ms,
		P99Ms:      it.P99Ms,
	}
	fmt.Fprintf(w, "%-9s %9.0f %9.0f %6.1f%% %6.1f%% %8.2f %8.2f %8.2f %6.2f\n",
		label, r.OfferedQPS, r.GoodputQPS, row.ShedPct, row.UtilPct,
		it.P50Ms, it.P95Ms, it.P99Ms, r.FinalShedLevel)
	return row
}

// parseRates parses "0.3,0.6,..." into multipliers.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate multiplier %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rate multipliers in %q", s)
	}
	return out, nil
}
