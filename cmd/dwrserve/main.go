// Command dwrserve builds a complete distributed Web retrieval engine —
// synthetic Web, distributed crawl, partitioned index — and serves it
// over HTTP behind the full serving front-end: a bounded worker pool
// (the paper's G/G/c model), token-bucket admission control, a bounded
// wait queue with interactive/batch priorities, adaptive latency-SLO
// load shedding, and per-request deadlines propagated into the engine.
//
// Usage:
//
//	dwrserve                      # serve on :8080 with defaults
//	dwrserve -addr :9090 -c 150 -deadline 100 -shedtarget 50
//
// Endpoints:
//
//	GET /search?q=terms[&k=10][&class=batch]   ranked results (JSON)
//	GET /stats                                 front-end + engine counters
//	GET /healthz                               engine partition liveness
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"dwr/internal/core"
	"dwr/internal/qproc"
	"dwr/internal/server"
	"dwr/internal/textproc"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	c := flag.Int("c", 150, "worker pool width (the G/G/c 'c'; the paper's 150-thread Apache configuration)")
	queueCap := flag.Int("queuecap", 0, "wait queue bound across classes (0 = 2x workers, -1 = no queue)")
	deadline := flag.Float64("deadline", 0, "per-request deadline in ms, propagated into the engine (0 = none)")
	admitRate := flag.Float64("admitrate", 0, "token-bucket sustained admissions per second (0 = off)")
	admitBurst := flag.Float64("admitburst", 0, "token-bucket burst (0 = worker count)")
	shedTarget := flag.Float64("shedtarget", 0, "adaptive shedder p99 latency SLO in ms (0 = off)")
	shedWindow := flag.Int("shedwindow", 0, "completions per shed control period (0 = 200)")
	seed := flag.Int64("seed", 1, "build + admission seed")
	hosts := flag.Int("hosts", 80, "hosts in the synthetic web")
	partitions := flag.Int("partitions", 4, "query processors")
	workers := flag.Int("workers", 0, "engine scatter-gather fan-out (0 = GOMAXPROCS); distinct from -c, the front-end pool")
	cacheCap := flag.Int("cachecap", 0, "broker result-cache capacity in entries (0 = off)")
	flag.Parse()

	qproc.SetDefaultOptions(qproc.WithWorkers(*workers))
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Web.Seed = *seed
	cfg.Web.Hosts = *hosts
	cfg.Partitions = *partitions
	cfg.Workers = *workers
	cfg.Cache = core.CacheConfig{Capacity: *cacheCap}

	fmt.Printf("dwrserve: building engine (%d hosts, %d partitions)...\n", *hosts, *partitions)
	eng, err := core.Build(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwrserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dwrserve: %d documents indexed across %d partitions\n",
		len(eng.Docs), eng.Query.K())

	f := server.NewFrontend(eng.Query, server.Config{
		Workers:    *c,
		QueueCap:   *queueCap,
		DeadlineMs: *deadline,
		AdmitRate:  *admitRate,
		AdmitBurst: *admitBurst,
		Shed:       server.ShedConfig{TargetP99Ms: *shedTarget, Window: *shedWindow},
		Seed:       *seed,
	})
	f.Tokenize = textproc.Tokenize
	f.Resolve = eng.URLOf

	fmt.Printf("dwrserve: serving on %s (c=%d workers)\n", *addr, *c)
	if err := http.ListenAndServe(*addr, f.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "dwrserve: %v\n", err)
		os.Exit(1)
	}
}
