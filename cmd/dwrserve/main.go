// Command dwrserve builds a complete distributed Web retrieval engine —
// synthetic Web, distributed crawl, partitioned index — and serves it
// over HTTP behind the full serving front-end: a bounded worker pool
// (the paper's G/G/c model), token-bucket admission control, a bounded
// wait queue with interactive/batch priorities, adaptive latency-SLO
// load shedding, and per-request deadlines propagated into the engine.
//
// Usage:
//
//	dwrserve                      # serve on :8080 with defaults
//	dwrserve -addr :9090 -c 150 -deadline 100 -shedtarget 50
//	dwrserve -live                # serve WHILE crawling and indexing
//	dwrserve -federate -sites 4   # serve a mediated federation of sites
//
// With -federate the corpus is split across sites by Web host and a
// query mediator runs collection selection on the serving path: each
// query is routed to the site subset whose collection statistics say it
// can answer, with full fan-out as the low-confidence fallback. The
// /stats Selection counters report sites contacted/skipped and sampled
// Recall@k against the exhaustive fan-out.
//
// With -live the index is not built up front: the server comes up over
// empty per-partition segment stores and a crawl streams pages into
// segment writers while queries are being answered. Sealed segments
// become searchable through atomic manifest swaps, segment merges run
// on a bounded background pool, and the broker result cache is
// invalidated by the stores' change hooks — crawling, merging, and
// serving proceed simultaneously.
//
// Endpoints:
//
//	GET /search?q=terms[&k=10][&class=batch]   ranked results (JSON)
//	GET /stats                                 front-end + engine counters
//	GET /healthz                               engine partition liveness
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"dwr/internal/conc"
	"dwr/internal/core"
	"dwr/internal/crawler"
	"dwr/internal/index"
	"dwr/internal/qproc"
	"dwr/internal/server"
	"dwr/internal/simweb"
	"dwr/internal/textproc"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	c := flag.Int("c", 150, "worker pool width (the G/G/c 'c'; the paper's 150-thread Apache configuration)")
	queueCap := flag.Int("queuecap", 0, "wait queue bound across classes (0 = 2x workers, -1 = no queue)")
	deadline := flag.Float64("deadline", 0, "per-request deadline in ms, propagated into the engine (0 = none)")
	admitRate := flag.Float64("admitrate", 0, "token-bucket sustained admissions per second (0 = off)")
	admitBurst := flag.Float64("admitburst", 0, "token-bucket burst (0 = worker count)")
	shedTarget := flag.Float64("shedtarget", 0, "adaptive shedder p99 latency SLO in ms (0 = off)")
	shedWindow := flag.Int("shedwindow", 0, "completions per shed control period (0 = 200)")
	seed := flag.Int64("seed", 1, "build + admission seed")
	hosts := flag.Int("hosts", 80, "hosts in the synthetic web")
	partitions := flag.Int("partitions", 4, "query processors")
	workers := flag.Int("workers", 0, "engine scatter-gather fan-out (0 = GOMAXPROCS); distinct from -c, the front-end pool")
	cacheCap := flag.Int("cachecap", 0, "broker result-cache capacity in entries (0 = off)")
	live := flag.Bool("live", false, "serve while crawling: stream crawled pages into per-partition segment writers and answer queries over atomically swapped segment manifests, with merges on a background pool")
	segDocs := flag.Int("segdocs", 128, "documents per sealed segment for -live")
	mergeWorkers := flag.Int("mergeworkers", 2, "background merge pool width for -live")
	federate := flag.Bool("federate", false, "serve as a federation of sites with mediated collection selection: documents are split across -sites by Web host, and a query mediator decides per query which sites to contact (full fan-out on low confidence)")
	sites := flag.Int("sites", 4, "federation sites for -federate")
	sampleEvery := flag.Int("sampleevery", 16, "sample Recall@k of every Nth mediated answer against the exhaustive fan-out for -federate (0 = off)")
	flag.Parse()

	if *federate {
		if err := runFederate(federateServeOptions{
			addr: *addr, c: *c, queueCap: *queueCap, deadline: *deadline,
			admitRate: *admitRate, admitBurst: *admitBurst,
			shedTarget: *shedTarget, shedWindow: *shedWindow,
			seed: *seed, hosts: *hosts, partitions: *partitions,
			workers: *workers, cacheCap: *cacheCap,
			sites: *sites, sampleEvery: *sampleEvery,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "dwrserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *live {
		if err := runLive(liveOptions{
			addr: *addr, c: *c, queueCap: *queueCap, deadline: *deadline,
			admitRate: *admitRate, admitBurst: *admitBurst,
			shedTarget: *shedTarget, shedWindow: *shedWindow,
			seed: *seed, hosts: *hosts, partitions: *partitions,
			workers: *workers, cacheCap: *cacheCap,
			segDocs: *segDocs, mergeWorkers: *mergeWorkers,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "dwrserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	qproc.SetDefaultOptions(qproc.WithWorkers(*workers))
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Web.Seed = *seed
	cfg.Web.Hosts = *hosts
	cfg.Partitions = *partitions
	cfg.Workers = *workers
	cfg.Cache = core.CacheConfig{Capacity: *cacheCap}

	fmt.Printf("dwrserve: building engine (%d hosts, %d partitions)...\n", *hosts, *partitions)
	eng, err := core.Build(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwrserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dwrserve: %d documents indexed across %d partitions\n",
		len(eng.Docs), eng.Query.K())

	f := server.NewFrontend(eng.Query, server.Config{
		Workers:    *c,
		QueueCap:   *queueCap,
		DeadlineMs: *deadline,
		AdmitRate:  *admitRate,
		AdmitBurst: *admitBurst,
		Shed:       server.ShedConfig{TargetP99Ms: *shedTarget, Window: *shedWindow},
		Seed:       *seed,
	})
	f.Tokenize = textproc.Tokenize
	f.Resolve = eng.URLOf

	fmt.Printf("dwrserve: serving on %s (c=%d workers)\n", *addr, *c)
	if err := http.ListenAndServe(*addr, f.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "dwrserve: %v\n", err)
		os.Exit(1)
	}
}

// liveOptions carries the -live configuration.
type liveOptions struct {
	addr                  string
	c, queueCap           int
	deadline              float64
	admitRate, admitBurst float64
	shedTarget            float64
	shedWindow            int
	seed                  int64
	hosts, partitions     int
	workers, cacheCap     int
	segDocs, mergeWorkers int
}

// runLive brings the HTTP front-end up over empty segment stores and
// lets a crawl fill them while queries are served: the continuous
// crawl-index-serve pipeline on wall-clock time. The crawl goroutine is
// the single writer (segment writers are single-producer); queries read
// immutable manifest snapshots, so they never block on ingest or on the
// background merges.
func runLive(o liveOptions) error {
	wcfg := simweb.DefaultConfig()
	wcfg.Seed = o.seed
	wcfg.Hosts = o.hosts
	web := simweb.New(wcfg)

	pool := conc.NewPool(o.mergeWorkers)
	stores := make([]*index.SegmentStore, o.partitions)
	writers := make([]*index.SegmentWriter, o.partitions)
	for i := range stores {
		stores[i] = index.NewSegmentStore(index.DefaultOptions(), index.MergePolicy{Radix: 3})
		stores[i].Background(pool)
		writers[i] = index.NewSegmentWriter(stores[i], o.segDocs)
	}
	opts := []qproc.Option{qproc.WithWorkers(o.workers)}
	if o.cacheCap > 0 {
		opts = append(opts, qproc.WithResultCache(qproc.ResultCacheConfig{Capacity: o.cacheCap}))
	}
	eng, err := qproc.NewLiveEngine(stores, opts...)
	if err != nil {
		return err
	}

	go func() {
		ccfg := crawler.DefaultConfig()
		ccfg.Seed = o.seed
		cr := crawler.New(web, ccfg)
		var seeds []string
		for _, h := range web.Hosts {
			if len(h.Pages) > 0 {
				seeds = append(seeds, web.URL(h.Pages[0]))
			}
		}
		cr.Seed(seeds)
		indexed := 0
		cr.OnPage(func(p *crawler.Page) {
			doc := textproc.ParseHTML(p.HTML)
			terms := textproc.Tokenize(doc.Text)
			if len(terms) == 0 {
				return
			}
			if err := writers[p.PageID%o.partitions].AddDocument(p.PageID, terms); err != nil {
				return // refetch of an already-indexed page
			}
			indexed++
		})
		st := cr.Run()
		for _, w := range writers {
			if err := w.Cut(); err != nil {
				fmt.Fprintf(os.Stderr, "dwrserve: sealing final segment: %v\n", err)
			}
		}
		for _, s := range stores {
			s.Quiesce()
		}
		fmt.Printf("dwrserve: crawl finished — %d pages fetched, %d docs searchable\n",
			st.DistinctPages, indexed)
	}()

	f := server.NewFrontend(eng, server.Config{
		Workers:    o.c,
		QueueCap:   o.queueCap,
		DeadlineMs: o.deadline,
		AdmitRate:  o.admitRate,
		AdmitBurst: o.admitBurst,
		Shed:       server.ShedConfig{TargetP99Ms: o.shedTarget, Window: o.shedWindow},
		Seed:       o.seed,
	})
	f.Tokenize = textproc.Tokenize
	f.Resolve = web.URL

	fmt.Printf("dwrserve: serving LIVE on %s (c=%d workers, %d partitions filling as the crawl runs)\n",
		o.addr, o.c, o.partitions)
	return http.ListenAndServe(o.addr, f.Handler())
}
