package main

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"

	"dwr/internal/cluster"
	"dwr/internal/core"
	"dwr/internal/index"
	"dwr/internal/mediator"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/server"
	"dwr/internal/textproc"
)

// federateServeOptions carries the -federate configuration.
type federateServeOptions struct {
	addr                  string
	c, queueCap           int
	deadline              float64
	admitRate, admitBurst float64
	shedTarget            float64
	shedWindow            int
	seed                  int64
	hosts, partitions     int
	workers, cacheCap     int
	sites                 int
	sampleEvery           int
}

// runFederate serves the crawled corpus as a federation of sites with
// the query mediator on the serving path: documents are split across
// sites by Web host (the natural federation boundary — one site per
// group of hosts), a mediator maintains per-site collection statistics,
// and every query is routed to the mediator-selected site subset with
// full fan-out as the low-confidence fallback. The /stats endpoint's
// Selection counters report how many sites queries touched and the
// sampled Recall@k of mediated answers against the exhaustive fan-out.
func runFederate(o federateServeOptions) error {
	qproc.SetDefaultOptions(qproc.WithWorkers(o.workers))
	cfg := core.DefaultConfig()
	cfg.Seed = o.seed
	cfg.Web.Seed = o.seed
	cfg.Web.Hosts = o.hosts
	cfg.Partitions = o.partitions
	cfg.Workers = o.workers

	fmt.Printf("dwrserve: building federation corpus (%d hosts)...\n", o.hosts)
	eng, err := core.Build(cfg)
	if err != nil {
		return err
	}

	// Split the corpus across sites by host: every page of a host lands
	// at one site, so each site's collection has real topical identity
	// for the selector to exploit.
	siteDocs := make([][]index.Doc, o.sites)
	for _, d := range eng.Docs {
		s := hostSite(eng.URLOf(d.Ext), o.sites)
		siteDocs[s] = append(siteDocs[s], d)
	}

	engines := make([]*qproc.DocEngine, o.sites)
	var srcs []mediator.StatsSource
	for s := range engines {
		if len(siteDocs[s]) == 0 {
			return fmt.Errorf("site %d received no documents; use fewer sites or more hosts", s)
		}
		ids := make([]int, len(siteDocs[s]))
		for i, d := range siteDocs[s] {
			ids[i] = d.Ext
		}
		e, err := qproc.NewDocEngine(cfg.Index, siteDocs[s], partition.RoundRobinDocs(ids, o.partitions))
		if err != nil {
			return err
		}
		engines[s] = e
		srcs = append(srcs, mediator.EngineSource{Eng: e})
	}

	med := mediator.New(mediator.DefaultConfig(), srcs...)
	ms := qproc.NewMultiSite(cluster.NewNetwork(o.seed, o.sites), qproc.RouteGeo,
		qproc.WithMediator(med))
	if o.cacheCap > 0 {
		ms.CacheTTL = 24
	}
	for s, e := range engines {
		cap := o.cacheCap
		if cap <= 0 {
			cap = 1
		}
		ms.Sites = append(ms.Sites, qproc.NewSite(s, s, e, cap, 1_000_000))
		fmt.Printf("dwrserve: site %d holds %d documents\n", s, len(siteDocs[s]))
	}
	fed := mediator.NewFederation(ms)
	fed.SampleEvery = o.sampleEvery

	f := server.NewFrontend(fed, server.Config{
		Workers:    o.c,
		QueueCap:   o.queueCap,
		DeadlineMs: o.deadline,
		AdmitRate:  o.admitRate,
		AdmitBurst: o.admitBurst,
		Shed:       server.ShedConfig{TargetP99Ms: o.shedTarget, Window: o.shedWindow},
		Seed:       o.seed,
	})
	f.Tokenize = textproc.Tokenize
	f.Resolve = eng.URLOf

	fmt.Printf("dwrserve: serving FEDERATED on %s (c=%d workers, %d sites, mediated collection selection)\n",
		o.addr, o.c, o.sites)
	return http.ListenAndServe(o.addr, f.Handler())
}

// hostSite assigns a document's host to a site deterministically.
func hostSite(url string, sites int) int {
	host := strings.TrimPrefix(url, "http://")
	host = strings.TrimPrefix(host, "https://")
	if i := strings.IndexByte(host, '/'); i >= 0 {
		host = host[:i]
	}
	h := fnv.New32a()
	h.Write([]byte(host))
	return int(h.Sum32() % uint32(sites))
}
