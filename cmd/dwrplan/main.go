// Command dwrplan is the analytical model the paper's conclusion asks
// for: "given parameters such as data volume and query throughput, [it]
// can characterize a particular system in terms of response time, index
// size, hardware, network bandwidth, and maintenance cost."
//
// Usage:
//
//	dwrplan                               # the paper's 2007 scenario
//	dwrplan -pages 100e9 -qpd 500e6       # your scenario
//	dwrplan -project-pages 16.7 -project-queries 3   # growth projection
package main

import (
	"flag"
	"fmt"
	"os"

	"dwr/internal/capacity"
	"dwr/internal/metrics"
)

func main() {
	p := capacity.DefaultParams()
	pages := flag.Float64("pages", p.Pages, "indexed pages")
	bytesPerPage := flag.Float64("bytes-per-page", p.TextBytesPerPage, "text bytes per page")
	indexRatio := flag.Float64("index-ratio", p.IndexRatio, "index size / text size")
	ram := flag.Float64("ram", p.RAMBytesPerNode, "index RAM bytes per machine")
	clusterQPS := flag.Float64("cluster-qps", p.ClusterQPS, "queries/s one cluster sustains")
	qpd := flag.Float64("qpd", p.QueriesPerDay, "queries per day")
	peak := flag.Float64("peak", p.PeakFactor, "peak-to-average ratio")
	cost := flag.Float64("node-cost", p.CostPerNodeUSD, "US$ per machine")
	threads := flag.Int("threads", p.FrontEndThreads, "front-end worker threads (G/G/c)")
	service := flag.Float64("service", p.ServiceTimeSec, "front-end mean service time (s)")
	projPages := flag.Float64("project-pages", 1, "page growth factor for a projection row")
	projQueries := flag.Float64("project-queries", 1, "query growth factor for a projection row")
	flag.Parse()

	p.Pages = *pages
	p.TextBytesPerPage = *bytesPerPage
	p.IndexRatio = *indexRatio
	p.RAMBytesPerNode = *ram
	p.ClusterQPS = *clusterQPS
	p.QueriesPerDay = *qpd
	p.PeakFactor = *peak
	p.CostPerNodeUSD = *cost
	p.FrontEndThreads = *threads
	p.ServiceTimeSec = *service

	plan := capacity.Derive(p)
	t := metrics.NewTable("derived deployment", "quantity", "value")
	t.AddRow("text volume (TB)", plan.TextBytes/1e12)
	t.AddRow("index volume (TB)", plan.IndexBytes/1e12)
	t.AddRow("machines per cluster", plan.NodesPerCluster)
	t.AddRow("average load (q/s)", plan.AvgQPS)
	t.AddRow("peak load (q/s)", plan.PeakQPS)
	t.AddRow("cluster replicas", plan.Replicas)
	t.AddRow("total machines", plan.TotalNodes)
	t.AddRow("hardware cost (M$)", plan.CostUSD/1e6)
	t.AddRow("front-end capacity bound (q/s)", plan.FrontEndCapacity)
	t.AddRow("mean response at 70% load (ms)", plan.MeanResponseSec*1000)
	t.Render(os.Stdout)

	if *projPages != 1 || *projQueries != 1 {
		proj := capacity.Project(p, *projPages, *projQueries)
		fmt.Println()
		pt := metrics.NewTable(
			fmt.Sprintf("projection (pages ×%.3g, queries ×%.3g)", *projPages, *projQueries),
			"quantity", "value")
		pt.AddRow("machines per cluster", proj.NodesPerCluster)
		pt.AddRow("cluster replicas", proj.Replicas)
		pt.AddRow("total machines", proj.TotalNodes)
		pt.AddRow("hardware cost (M$)", proj.CostUSD/1e6)
		pt.Render(os.Stdout)
	}
}
