module dwr

go 1.22
