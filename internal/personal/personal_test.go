package personal

import (
	"testing"

	"dwr/internal/rank"
)

func TestProfileLifecycle(t *testing.T) {
	s := NewStore(3)
	p, err := s.Get("alice")
	if err != nil || p.Queries != 0 {
		t.Fatalf("fresh profile = %+v, %v", p, err)
	}
	for i := 0; i < 5; i++ {
		if err := s.RecordClick("alice", 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RecordClick("alice", 7); err != nil {
		t.Fatal(err)
	}
	p, err = s.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries != 6 || p.TopicClicks[2] != 5 || p.TopicClicks[7] != 1 {
		t.Fatalf("profile after clicks = %+v", p)
	}
	if p.Version != 6 {
		t.Fatalf("version = %d, want 6", p.Version)
	}
	if w := p.Weight(2); w < 0.82 || w > 0.84 {
		t.Fatalf("weight(2) = %v, want 5/6", w)
	}
	if p.Weight(99) != 0 {
		t.Fatal("unknown topic weight not 0")
	}
}

func TestProfileSurvivesPrimaryFailure(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 10; i++ {
		if err := s.RecordClick("bob", i%3); err != nil {
			t.Fatal(err)
		}
	}
	s.FailReplica(0) // primary crash
	p, err := s.Get("bob")
	if err != nil {
		t.Fatalf("profile lost after primary failure: %v", err)
	}
	if p.Queries != 10 {
		t.Fatalf("profile stale after failover: %+v", p)
	}
	// Updates continue against the promoted backup.
	if err := s.RecordClick("bob", 1); err != nil {
		t.Fatal(err)
	}
	p, _ = s.Get("bob")
	if p.Queries != 11 || p.Version != 11 {
		t.Fatalf("post-failover update lost: %+v", p)
	}
}

func TestUpdatesFailWithAllReplicasDown(t *testing.T) {
	s := NewStore(2)
	s.RecordClick("c", 0)
	s.FailReplica(0)
	s.FailReplica(1)
	if err := s.RecordClick("c", 0); err == nil {
		t.Fatal("update succeeded with no replicas")
	}
	s.RecoverReplica(1)
	if err := s.RecordClick("c", 0); err != nil {
		t.Fatalf("update after recovery failed: %v", err)
	}
}

func TestRerankPersonalizes(t *testing.T) {
	base := []rank.Result{{Doc: 1, Score: 1.0}, {Doc: 2, Score: 0.95}, {Doc: 3, Score: 0.9}}
	topicOf := func(doc int) int { return doc } // doc i has topic i
	sports := NewProfile("sports-fan")
	sports.TopicClicks[3] = 10 // loves topic 3
	news := NewProfile("news-fan")
	news.TopicClicks[1] = 10

	sr := Rerank(base, topicOf, sports, 0.5)
	nr := Rerank(base, topicOf, news, 0.5)
	if sr[0].Doc != 3 {
		t.Fatalf("sports fan ranking = %v, want doc 3 first", sr)
	}
	if nr[0].Doc != 1 {
		t.Fatalf("news fan ranking = %v, want doc 1 first", nr)
	}
	// Empty profile: order unchanged.
	er := Rerank(base, topicOf, NewProfile("new"), 0.5)
	for i := range base {
		if er[i].Doc != base[i].Doc {
			t.Fatal("empty profile changed the ranking")
		}
	}
	// Input must not be mutated.
	if base[0].Score != 1.0 {
		t.Fatal("Rerank mutated its input")
	}
}

func TestClientSideLayerEquivalence(t *testing.T) {
	// The "thin layer on the client-side": a profile held by the caller
	// produces exactly the same rankings as one fetched from the store.
	s := NewStore(3)
	for i := 0; i < 4; i++ {
		s.RecordClick("u", 5)
	}
	serverProfile, err := s.Get("u")
	if err != nil {
		t.Fatal(err)
	}
	clientProfile := NewProfile("u")
	for i := 0; i < 4; i++ {
		clientProfile.TopicClicks[5]++
		clientProfile.Queries++
	}
	base := []rank.Result{{Doc: 5, Score: 0.5}, {Doc: 6, Score: 0.6}}
	topicOf := func(doc int) int { return doc }
	a := Rerank(base, topicOf, serverProfile, 1)
	b := Rerank(base, topicOf, clientProfile, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("client-side and server-side personalization diverge")
		}
	}
}
