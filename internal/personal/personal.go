// Package personal implements the personalization layer of Section 5:
// "every user has its own state space containing variables that indicate
// its preferences, and potentially upon every query there is an update
// to such a user state. In such cases, it is necessary to guarantee that
// the state is consistent in every update, and that the user state is
// never lost."
//
// Profiles live in a replicated store built on primary-backup
// replication; the alternative the paper sketches — "a thin layer on the
// client-side" — is the same Profile value held by the caller and
// applied with Rerank, with no server state at all.
package personal

import (
	"encoding/json"
	"fmt"
	"sort"

	"dwr/internal/rank"
	"dwr/internal/replication"
)

// Profile is one user's preference state: how often the user engaged
// with each topic, plus a monotonically increasing version.
type Profile struct {
	User        string          `json:"user"`
	TopicClicks map[int]float64 `json:"topic_clicks"`
	Queries     int             `json:"queries"`
	Version     int64           `json:"version"`
}

// NewProfile returns an empty profile for user.
func NewProfile(user string) Profile {
	return Profile{User: user, TopicClicks: make(map[int]float64)}
}

// Weight returns the normalized preference for a topic in [0, 1].
func (p *Profile) Weight(topic int) float64 {
	total := 0.0
	for _, c := range p.TopicClicks {
		total += c
	}
	if total == 0 {
		return 0
	}
	return p.TopicClicks[topic] / total
}

// Store keeps profiles consistent and durable across replica failures.
type Store struct {
	pb *replication.PrimaryBackup
}

// NewStore creates a store replicated across n replicas.
func NewStore(replicas int) *Store {
	return &Store{pb: replication.NewPrimaryBackup(replicas)}
}

// Get loads a user's profile (an empty profile if the user is new).
func (s *Store) Get(user string) (Profile, error) {
	raw, err := s.pb.Read("profile/" + user)
	if err != nil {
		return Profile{}, fmt.Errorf("personal: reading profile: %w", err)
	}
	if raw == "" {
		return NewProfile(user), nil
	}
	var p Profile
	if err := json.Unmarshal([]byte(raw), &p); err != nil {
		return Profile{}, fmt.Errorf("personal: corrupt profile for %s: %w", user, err)
	}
	return p, nil
}

// Update applies fn to the user's profile under read-modify-write,
// bumping the version and replicating synchronously — the strong
// consistency the paper calls for.
func (s *Store) Update(user string, fn func(*Profile)) error {
	p, err := s.Get(user)
	if err != nil {
		return err
	}
	fn(&p)
	p.Version++
	raw, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("personal: encoding profile: %w", err)
	}
	if err := s.pb.Write("profile/"+user, string(raw)); err != nil {
		return fmt.Errorf("personal: writing profile: %w", err)
	}
	return nil
}

// RecordClick notes that user clicked a result of the given topic after
// a query — the paper's "upon every query there is an update".
func (s *Store) RecordClick(user string, topic int) error {
	return s.Update(user, func(p *Profile) {
		p.TopicClicks[topic]++
		p.Queries++
	})
}

// FailReplica and RecoverReplica expose the failure injection of the
// underlying replication group.
func (s *Store) FailReplica(i int)    { s.pb.Fail(i) }
func (s *Store) RecoverReplica(i int) { s.pb.Recover(i) }

// Rerank personalizes a ranking: each result's score is boosted by the
// user's preference for its topic (multiplicative 1 + boost·weight).
// It works identically whether the profile came from the replicated
// store or from a client-side layer.
func Rerank(results []rank.Result, topicOf func(doc int) int, p Profile, boost float64) []rank.Result {
	out := make([]rank.Result, len(results))
	for i, r := range results {
		w := p.Weight(topicOf(r.Doc))
		out[i] = rank.Result{Doc: r.Doc, Score: r.Score * (1 + boost*w)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}
