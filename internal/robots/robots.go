// Package robots implements the crawler-politeness substrate of
// Section 3: robots.txt parsing and the de facto operational standards
// ("a crawler should not open more than one connection at a time to each
// Web server, and should wait several seconds between repeated
// accesses").
package robots

import (
	"strconv"
	"strings"
	"sync"
)

// Rules is the parsed policy of one host's robots.txt for a particular
// user agent.
type Rules struct {
	disallow   []string
	allow      []string
	CrawlDelay float64 // seconds between accesses; 0 = unspecified
}

// Parse parses a robots.txt body for the given user agent. Parsing is
// tolerant: unknown directives, stray whitespace, missing colons, and
// comments are skipped. A nil-safe zero Rules allows everything.
func Parse(body, userAgent string) *Rules {
	r := &Rules{}
	applies := false
	for _, line := range strings.Split(body, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key := strings.ToLower(strings.TrimSpace(line[:colon]))
		val := strings.TrimSpace(line[colon+1:])
		switch key {
		case "user-agent":
			applies = val == "*" || strings.EqualFold(val, userAgent)
		case "disallow":
			if applies && val != "" {
				r.disallow = append(r.disallow, val)
			}
		case "allow":
			if applies && val != "" {
				r.allow = append(r.allow, val)
			}
		case "crawl-delay":
			if applies {
				if d, err := strconv.ParseFloat(val, 64); err == nil && d >= 0 {
					r.CrawlDelay = d
				}
			}
		}
	}
	return r
}

// Allowed reports whether the path may be fetched. Longest-match wins
// between Allow and Disallow, matching the common interpretation.
func (r *Rules) Allowed(path string) bool {
	if r == nil {
		return true
	}
	longestAllow, longestDis := -1, -1
	for _, p := range r.allow {
		if strings.HasPrefix(path, p) && len(p) > longestAllow {
			longestAllow = len(p)
		}
	}
	for _, p := range r.disallow {
		if strings.HasPrefix(path, p) && len(p) > longestDis {
			longestDis = len(p)
		}
	}
	return longestAllow >= longestDis
}

// Politeness enforces per-host access pacing on a virtual clock: at most
// one in-flight request per host, and at least minDelay (or the host's
// Crawl-delay) seconds between request starts.
type Politeness struct {
	mu       sync.Mutex
	minDelay float64
	next     map[string]float64 // host -> earliest next allowed start time
	inFlight map[string]bool
}

// NewPoliteness creates a politeness gate with a default inter-access
// delay in seconds.
func NewPoliteness(minDelay float64) *Politeness {
	return &Politeness{
		minDelay: minDelay,
		next:     make(map[string]float64),
		inFlight: make(map[string]bool),
	}
}

// EarliestStart returns the earliest virtual time ≥ now at which a
// request to host may start. It does not reserve the slot.
func (p *Politeness) EarliestStart(host string, now float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.next[host]; ok && t > now {
		return t
	}
	return now
}

// TryAcquire attempts to begin a request to host at virtual time now
// honouring crawlDelay (0 = use the default). It returns (true, now) on
// success, or (false, earliest) telling the caller when to retry.
func (p *Politeness) TryAcquire(host string, now, crawlDelay float64) (bool, float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inFlight[host] {
		// One connection per server: caller must wait for Release.
		t := p.next[host]
		if t < now {
			t = now + p.effectiveDelay(crawlDelay)
		}
		return false, t
	}
	if t, ok := p.next[host]; ok && t > now {
		return false, t
	}
	p.inFlight[host] = true
	return true, now
}

// Release ends a request to host that started at virtual time start and
// finished at virtual time end, scheduling the earliest next access.
func (p *Politeness) Release(host string, end, crawlDelay float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.inFlight, host)
	p.next[host] = end + p.effectiveDelay(crawlDelay)
}

func (p *Politeness) effectiveDelay(crawlDelay float64) float64 {
	if crawlDelay > p.minDelay {
		return crawlDelay
	}
	return p.minDelay
}
