package robots

import "testing"

func TestParseBasic(t *testing.T) {
	r := Parse("User-agent: *\nDisallow: /private/\nCrawl-delay: 2\n", "dwr")
	if r.Allowed("/private/x.html") {
		t.Fatal("disallowed path allowed")
	}
	if !r.Allowed("/public/x.html") {
		t.Fatal("allowed path disallowed")
	}
	if r.CrawlDelay != 2 {
		t.Fatalf("crawl delay = %v, want 2", r.CrawlDelay)
	}
}

func TestParseAgentSpecific(t *testing.T) {
	body := "User-agent: other\nDisallow: /\n\nUser-agent: dwr\nDisallow: /secret/\n"
	r := Parse(body, "dwr")
	if r.Allowed("/secret/a") {
		t.Fatal("agent-specific disallow ignored")
	}
	if !r.Allowed("/open/a") {
		t.Fatal("foreign agent's blanket disallow applied to us")
	}
}

func TestParseTolerant(t *testing.T) {
	// Comments, junk lines, missing colons, negative delays.
	body := "# hi\nUser-agent: *\njunk line\nDisallow /nope\nDisallow: /real/\nCrawl-delay: -5\nCrawl-delay: abc\n"
	r := Parse(body, "x")
	if r.Allowed("/real/a") {
		t.Fatal("valid disallow lost among junk")
	}
	if !r.Allowed("/nope") {
		t.Fatal("colon-less directive was applied")
	}
	if r.CrawlDelay != 0 {
		t.Fatalf("bad crawl delays accepted: %v", r.CrawlDelay)
	}
}

func TestAllowOverridesDisallowByLength(t *testing.T) {
	body := "User-agent: *\nDisallow: /dir/\nAllow: /dir/ok/\n"
	r := Parse(body, "x")
	if r.Allowed("/dir/no.html") {
		t.Fatal("/dir/no.html should be disallowed")
	}
	if !r.Allowed("/dir/ok/yes.html") {
		t.Fatal("/dir/ok/yes.html should be allowed (longer Allow match)")
	}
}

func TestNilRulesAllowEverything(t *testing.T) {
	var r *Rules
	if !r.Allowed("/anything") {
		t.Fatal("nil rules should allow")
	}
}

func TestEmptyBodyAllowsEverything(t *testing.T) {
	r := Parse("", "x")
	if !r.Allowed("/a") || !r.Allowed("/private/") {
		t.Fatal("empty robots.txt should allow everything")
	}
}

func TestPolitenessOneConnectionPerHost(t *testing.T) {
	p := NewPoliteness(1)
	ok, _ := p.TryAcquire("h", 0, 0)
	if !ok {
		t.Fatal("first acquire failed")
	}
	ok, _ = p.TryAcquire("h", 0, 0)
	if ok {
		t.Fatal("second concurrent acquire to same host succeeded")
	}
	// A different host is independent.
	ok, _ = p.TryAcquire("g", 0, 0)
	if !ok {
		t.Fatal("acquire to different host failed")
	}
}

func TestPolitenessDelayBetweenAccesses(t *testing.T) {
	p := NewPoliteness(1.5)
	ok, _ := p.TryAcquire("h", 0, 0)
	if !ok {
		t.Fatal("acquire failed")
	}
	p.Release("h", 2.0, 0) // finished at t=2
	ok, next := p.TryAcquire("h", 2.5, 0)
	if ok {
		t.Fatal("acquire inside delay window succeeded")
	}
	if next != 3.5 {
		t.Fatalf("earliest retry = %v, want 3.5 (end 2.0 + delay 1.5)", next)
	}
	ok, _ = p.TryAcquire("h", 3.5, 0)
	if !ok {
		t.Fatal("acquire at earliest allowed time failed")
	}
}

func TestPolitenessHonoursCrawlDelay(t *testing.T) {
	p := NewPoliteness(1)
	ok, _ := p.TryAcquire("h", 0, 10)
	if !ok {
		t.Fatal("acquire failed")
	}
	p.Release("h", 1, 10)
	if ok, next := p.TryAcquire("h", 5, 10); ok || next != 11 {
		t.Fatalf("crawl-delay not honoured: ok=%v next=%v, want false/11", ok, next)
	}
}

func TestEarliestStart(t *testing.T) {
	p := NewPoliteness(2)
	if got := p.EarliestStart("h", 7); got != 7 {
		t.Fatalf("EarliestStart fresh host = %v, want 7", got)
	}
	ok, _ := p.TryAcquire("h", 7, 0)
	if !ok {
		t.Fatal("acquire failed")
	}
	p.Release("h", 8, 0)
	if got := p.EarliestStart("h", 8); got != 10 {
		t.Fatalf("EarliestStart after release = %v, want 10", got)
	}
}
