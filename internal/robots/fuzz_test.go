package robots

import "testing"

func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"User-agent: *\nDisallow: /private/\n",
		"User-agent: x\nCrawl-delay: abc\nDisallow /no-colon\n# comment",
		"Disallow: /orphan-before-agent\nUser-agent: *\nAllow: /a\nDisallow: /a/b",
		"User-agent: *\nCrawl-delay: -1\nCrawl-delay: 1e308\n",
		"\x00\xff\nUser-agent: *\nDisallow: /\n",
	}
	for _, s := range seeds {
		f.Add(s, "dwr")
	}
	f.Fuzz(func(t *testing.T, body, agent string) {
		r := Parse(body, agent)
		// Contract: never panics, crawl delay never negative, Allowed is
		// total (answers for any path).
		if r.CrawlDelay < 0 {
			t.Fatalf("negative crawl delay %v", r.CrawlDelay)
		}
		_ = r.Allowed("/any/path")
		_ = r.Allowed("")
	})
}
