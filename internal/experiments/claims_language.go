package experiments

import (
	"strings"

	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/rank"
	"dwr/internal/textproc"
)

// Claim17LanguageRouting (C17) implements §5's language-based index
// partitioning and query routing: documents are partitioned by host
// language, query language is identified with the Cavnar–Trenkle n-gram
// classifier the paper cites, and queries are routed to the matching
// partition only. The experiment measures identification accuracy (the
// paper warns short queries "may introduce errors"), the routing win
// (one partition instead of all), and the cost of misrouting.
func Claim17LanguageRouting() *Result {
	f := sharedFixture()
	r := &Result{ID: "C17", Title: "Language-partitioned index and language-identified query routing"}

	langs := f.web.Config.Languages
	langIdx := make(map[string]int, len(langs))
	for i, l := range langs {
		langIdx[l] = i
	}

	// Partition documents by their host's language.
	dp := partition.DocPartition{K: len(langs), Parts: make([][]int, len(langs)), Assign: make(map[int]int)}
	for _, d := range f.docs {
		p := f.web.Pages[d.Ext]
		li := langIdx[f.web.Hosts[p.Host].Lang]
		dp.Parts[li] = append(dp.Parts[li], d.Ext)
		dp.Assign[d.Ext] = li
	}
	engine, err := qproc.NewDocEngine(index.DefaultOptions(), f.docs, dp)
	if err != nil {
		panic(err)
	}

	// Train the identifier on samples of each language's documents.
	byExt := make(map[int]index.Doc, len(f.docs))
	for _, d := range f.docs {
		byExt[d.Ext] = d
	}
	var profiles []*textproc.LangProfile
	for li, lang := range langs {
		var sample strings.Builder
		taken := 0
		for _, ext := range dp.Parts[li] {
			d := byExt[ext]
			sample.WriteString(strings.Join(d.Terms[:minInt(80, len(d.Terms))], " "))
			sample.WriteByte(' ')
			taken++
			if taken >= 8 {
				break
			}
		}
		profiles = append(profiles, textproc.NewLangProfile(lang, sample.String()))
	}
	li := textproc.NewLangIdentifier(profiles...)
	centralScorer := rank.NewScorer(rank.FromIndex(f.central))

	// Replay test queries: identify language, route to that partition
	// only, compare with broadcast.
	correct, total := 0, 0
	var recallRouted, recallWrong float64
	nRouted, nWrong := 0, 0
	var postRouted, postBroadcast int
	for i, q := range f.test.Queries {
		if i >= 1200 {
			break
		}
		text := strings.Join(q.Terms, " ")
		got := li.Identify(text)
		if got == "" {
			continue
		}
		total++
		if got == q.Lang {
			correct++
		}
		truth, _ := rank.EvaluateOR(f.central, centralScorer, q.Terms, 10)
		if len(truth) == 0 {
			continue
		}
		top := make([]int, len(truth))
		for j, res := range truth {
			top[j] = res.Doc
		}
		// Route to the identified partition only.
		routed := engine.Query(q.Terms, qproc.DocQueryOptions{
			K: 10, Stats: qproc.GlobalPrecomputed,
			Selector: staticSelector{order: rankFrom(langIdx[got], len(langs))}, SelectN: 1,
		})
		hit := 0
		for _, d := range top {
			if dp.Assign[d] == langIdx[got] {
				hit++
			}
		}
		rec := float64(hit) / float64(len(top))
		if got == q.Lang {
			recallRouted += rec
			nRouted++
		} else {
			recallWrong += rec
			nWrong++
		}
		postRouted += routed.PostingsDecoded
		broadcast := engine.Query(q.Terms, qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalPrecomputed})
		postBroadcast += broadcast.PostingsDecoded
	}
	if nRouted > 0 {
		recallRouted /= float64(nRouted)
	}
	if nWrong > 0 {
		recallWrong /= float64(nWrong)
	}

	t := metrics.NewTable("language identification and routing", "metric", "value")
	t.AddRow("languages / partitions", len(langs))
	t.AddRow("identification accuracy on queries", float64(correct)/float64(total))
	t.AddRow("recall@10 when routed to identified partition (correct ID)", recallRouted)
	t.AddRow("recall@10 under misidentification", recallWrong)
	t.AddRow("postings decoded, routed", postRouted)
	t.AddRow("postings decoded, broadcast", postBroadcast)
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"accuracy":       float64(correct) / float64(total),
		"recall_correct": recallRouted,
		"recall_wrong":   recallWrong,
		"post_routed":    float64(postRouted),
		"post_broadcast": float64(postBroadcast),
	}
	r.Notes = append(r.Notes,
		"paper: 'partitioning the index according to the language of queries is also a suitable approach ... such process may introduce errors' — misidentified queries lose almost all their relevant documents")
	return r
}

// staticSelector always proposes a fixed partition order.
type staticSelector struct{ order []int }

func (s staticSelector) Rank(terms []string) []int { return s.order }
func (s staticSelector) K() int                    { return len(s.order) }

// rankFrom returns the permutation [first, then the rest ascending].
func rankFrom(first, k int) []int {
	out := []int{first}
	for i := 0; i < k; i++ {
		if i != first {
			out = append(out, i)
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
