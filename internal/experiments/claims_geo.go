package experiments

import (
	"dwr/internal/crawler"
	"dwr/internal/metrics"
	"dwr/internal/simweb"
)

// Claim18GeoCrawling (C18) reproduces the §3 external-factors point the
// paper draws from Exposto et al.: distributing crawlers across
// geographic locations and assigning hosts to same-region agents keeps
// download traffic off the wide-area network, at no loss of coverage.
func Claim18GeoCrawling() *Result {
	r := &Result{ID: "C18", Title: "Geographic crawler placement: region-affinity vs region-blind assignment (6 agents, 3 regions)"}
	wcfg := simweb.DefaultConfig()
	wcfg.Hosts = 200
	web := simweb.New(wcfg)

	run := func(policy crawler.AssignmentPolicy) crawler.Stats {
		cfg := crawler.DefaultConfig()
		cfg.Agents = 6
		cfg.Regions = 3
		cfg.Assignment = policy
		c := crawler.New(web, cfg)
		var seeds []string
		for _, h := range web.Hosts {
			if len(h.Pages) > 0 {
				seeds = append(seeds, web.URL(h.Pages[0]))
			}
		}
		c.Seed(seeds)
		return c.Run()
	}
	blind := run(crawler.AssignMod)
	affinity := run(crawler.AssignRegionAffinity)

	t := metrics.NewTable("download traffic by assignment policy",
		"assignment", "bytes downloaded", "WAN (cross-region) bytes", "WAN fraction", "coverage")
	t.AddRow("mod-hash (region-blind)", blind.BytesDownloaded, blind.WANBytes,
		float64(blind.WANBytes)/float64(blind.BytesDownloaded), blind.Coverage)
	t.AddRow("region-affinity", affinity.BytesDownloaded, affinity.WANBytes,
		float64(affinity.WANBytes)/float64(affinity.BytesDownloaded), affinity.Coverage)
	r.Tables = append(r.Tables, t)

	// Load balance check: affinity must not starve agents.
	im := metrics.NewImbalance(intsToFloats(affinity.PerAgentFetches))
	bal := metrics.NewTable("per-agent fetch balance under region affinity", "metric", "value")
	bal.AddRow("max/mean", im.MaxOver)
	bal.AddRow("CV", im.CV)
	r.Tables = append(r.Tables, bal)

	r.Values = map[string]float64{
		"blind_wan_frac":    float64(blind.WANBytes) / float64(blind.BytesDownloaded),
		"affinity_wan_frac": float64(affinity.WANBytes) / float64(affinity.BytesDownloaded),
		"affinity_coverage": affinity.Coverage,
		"affinity_maxover":  im.MaxOver,
	}
	r.Notes = append(r.Notes,
		"paper: 'we can carefully distribute Web crawlers across distinct geographic locations ... including network costs at different locations and the cost of sending data back to the search engine'")
	return r
}

func intsToFloats(in []int) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}
