package experiments

import (
	"fmt"

	"dwr/internal/metrics"
	"dwr/internal/personal"
	"dwr/internal/rank"
)

// Claim21Personalization (C21) exercises §5's personalization
// discussion: per-user state reorders the same base ranking differently
// for different users; the state is updated on every query, survives a
// primary replica crash, and the client-side thin layer produces
// identical rankings without any server state.
func Claim21Personalization() *Result {
	f := sharedFixture()
	r := &Result{ID: "C21", Title: "Personalization: consistent per-user state and client-side alternative"}

	topicOf := func(doc int) int {
		if doc >= 0 && doc < len(f.web.Pages) {
			return f.web.Pages[doc].Topic
		}
		return 0
	}
	scorer := rank.NewScorer(rank.FromIndex(f.central))

	// Two users with opposite topic habits, built from simulated clicks
	// stored in a 3-replica store; the primary fails mid-stream.
	store := personal.NewStore(3)
	clicks := 0
	for i, q := range f.train.Queries {
		if clicks >= 400 {
			break
		}
		user := "alice"
		if q.Topic%2 == 1 {
			user = "bruno"
		}
		if err := store.RecordClick(user, q.Topic); err != nil {
			panic(err)
		}
		clicks++
		if i == 200 {
			store.FailReplica(0) // primary crash mid-stream
		}
	}
	alice, errA := store.Get("alice")
	bruno, errB := store.Get("bruno")
	if errA != nil || errB != nil {
		panic(fmt.Sprintf("profiles lost: %v %v", errA, errB))
	}

	// Personalize a set of query results and measure reordering.
	var tauAB metrics.Welford
	reordered := 0
	n := 0
	for _, q := range f.test.Queries[:200] {
		base, _ := rank.EvaluateOR(f.central, scorer, q.Terms, 10)
		if len(base) < 3 {
			continue
		}
		ra := personal.Rerank(base, topicOf, alice, 1.0)
		rb := personal.Rerank(base, topicOf, bruno, 1.0)
		tau := rank.KendallTau(ra, rb)
		tauAB.Add(tau)
		if ra[0].Doc != rb[0].Doc {
			reordered++
		}
		n++
	}

	t := metrics.NewTable("personalized reordering of identical base results", "metric", "value")
	t.AddRow("queries evaluated", n)
	t.AddRow("clicks recorded (with primary failover at #200)", clicks)
	t.AddRow("alice profile version", alice.Version)
	t.AddRow("bruno profile version", bruno.Version)
	t.AddRow("queries where the two users see different #1", reordered)
	t.AddRow("mean Kendall tau between the users' rankings", tauAB.Mean())
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"clicks":      float64(clicks),
		"versions":    float64(alice.Version + bruno.Version),
		"reordered":   float64(reordered) / float64(n),
		"tau_between": tauAB.Mean(),
	}
	r.Notes = append(r.Notes,
		"paper: 'it is necessary to guarantee that the state is consistent in every update, and that the user state is never lost'; no click was lost across the primary crash (versions sum to the click count)")
	return r
}
