package experiments

import (
	"sort"
	"time"

	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/querylog"
	"dwr/internal/randx"
	"dwr/internal/rank"
	"dwr/internal/selection"
)

// Claim6TermVsDoc (C6) reproduces the Webber et al. resource comparison:
// pipelined term partitioning touches fewer servers and reads fewer
// posting bytes per query, while document partitioning sustains higher
// throughput (modelled as the bottleneck server's busy time per query).
func Claim6TermVsDoc() *Result {
	f := sharedFixture()
	r := &Result{ID: "C6", Title: "Term vs document partitioning: disk, network, throughput (8 servers)"}
	const k = 8
	opts := index.DefaultOptions()
	de, err := qproc.NewDocEngine(opts, f.docs, partition.RoundRobinDocs(f.docIDs(), k))
	if err != nil {
		panic(err)
	}
	tp := partition.BinPackTerms(f.central.Terms(), func(t string) float64 {
		return float64(f.central.DF(t))
	}, k)
	te, err := qproc.NewTermEngine(opts, f.docs, tp)
	if err != nil {
		panic(err)
	}
	queries := queryTerms(f.test, 2000)
	var dSrv, tSrv int
	var dAcc, tAcc int
	var dBytes, tBytes int64
	var dXfer, tXfer int64
	for _, q := range queries {
		dq := de.Query(q, qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalPrecomputed})
		tq := te.Query(q, 10)
		dSrv += dq.ServersContacted
		tSrv += tq.ServersContacted
		dAcc += dq.ListsAccessed
		tAcc += tq.ListsAccessed
		dBytes += dq.PostingBytesRead
		tBytes += tq.PostingBytesRead
		dXfer += dq.BytesTransferred
		tXfer += tq.BytesTransferred
	}
	n := float64(len(queries))
	// Throughput model: with per-server busy time b_i accumulated over
	// the workload, the bottleneck server limits throughput to
	// queries / max_i(b_i).
	docBusy := metrics.NewImbalance(de.BusyMs())
	termBusy := metrics.NewImbalance(te.BusyMs())
	docThroughput := n / docBusy.Max * 1000 // queries per second of busy-bottleneck time
	termThroughput := n / termBusy.Max * 1000

	t := metrics.NewTable("per-query resource usage over the same workload",
		"system", "servers/query", "disk accesses/query", "posting KB read/query", "KB moved/query", "bottleneck throughput (q/s)")
	t.AddRow("document", float64(dSrv)/n, float64(dAcc)/n, float64(dBytes)/n/1024, float64(dXfer)/n/1024, docThroughput)
	t.AddRow("term (pipelined)", float64(tSrv)/n, float64(tAcc)/n, float64(tBytes)/n/1024, float64(tXfer)/n/1024, termThroughput)
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"doc_servers":     float64(dSrv) / n,
		"term_servers":    float64(tSrv) / n,
		"doc_accesses":    float64(dAcc) / n,
		"term_accesses":   float64(tAcc) / n,
		"doc_bytes":       float64(dBytes) / n,
		"term_bytes":      float64(tBytes) / n,
		"doc_throughput":  docThroughput,
		"term_throughput": termThroughput,
	}
	r.Notes = append(r.Notes, "paper (Webber et al.): term partitioning 'significantly reduces the number of disk accesses and the volume of data exchanged ... although document partitioning is still better in terms of throughput'")
	return r
}

// Claim7BinPacking (C7) compares term-partitioned load balance under
// random assignment, Moffat-style bin-packing (weight = query frequency ×
// posting length), and Lucchese-style co-occurrence-aware packing, and
// the servers contacted per query under each.
func Claim7BinPacking() *Result {
	f := sharedFixture()
	r := &Result{ID: "C7", Title: "Term-partitioned load balancing: random vs bin-packing vs co-occurrence-aware (8 servers)"}
	const k = 8
	qf := f.train.TermWeights()
	weight := func(t string) float64 {
		return float64(qf[t]) * float64(f.central.DF(t))
	}
	terms := f.central.Terms()
	co := f.train.CoOccurrence()

	rnd := partition.RandomTerms(randx.New(5), terms, k)
	bp := partition.BinPackTerms(terms, weight, k)
	cp := partition.CoOccurTerms(terms, weight, co, k, 0.25)

	queries := queryTerms(f.test, 3000)
	t := metrics.NewTable("load spread (weight = query-freq × posting length) and contacts",
		"assignment", "CV of load", "max/mean", "avg servers/query")
	for _, row := range []struct {
		name string
		tp   partition.TermPartition
	}{{"random", rnd}, {"bin-packing (Moffat)", bp}, {"co-occurrence (Lucchese)", cp}} {
		im := metrics.NewImbalance(row.tp.Loads(weight))
		t.AddRow(row.name, im.CV, im.MaxOver, row.tp.AvgPartsPerQuery(queries))
	}
	r.Tables = append(r.Tables, t)
	rndIm := metrics.NewImbalance(rnd.Loads(weight))
	bpIm := metrics.NewImbalance(bp.Loads(weight))
	cpIm := metrics.NewImbalance(cp.Loads(weight))
	r.Values = map[string]float64{
		"random_cv":     rndIm.CV,
		"binpack_cv":    bpIm.CV,
		"cooccur_cv":    cpIm.CV,
		"random_parts":  rnd.AvgPartsPerQuery(queries),
		"binpack_parts": bp.AvgPartsPerQuery(queries),
		"cooccur_parts": cp.AvgPartsPerQuery(queries),
	}
	r.Notes = append(r.Notes, "paper: bin-packing 'is able to distribute the load on each server more evenly'; co-occurrence packing also reduces 'the number of servers queried'")
	return r
}

// Claim8CollectionSelection (C8) reproduces the Puppin et al. result:
// query-driven co-clustering plus query-driven selection beats CORI and
// random selection on recall of the true top-20, and a large fraction of
// the collection is never recalled by training queries.
func Claim8CollectionSelection() *Result {
	f := sharedFixture()
	r := &Result{ID: "C8", Title: "Collection selection: query-driven vs CORI vs random (16 partitions)"}
	const k = 16
	rng := randx.New(9)
	scorer := rank.NewScorer(rank.FromIndex(f.central))

	// Training: the 600 most frequent distinct train queries → their true
	// top-10. Real logs concentrate on a popularity head, so this cap
	// keeps both the Web-scale property that much of the collection is
	// never recalled and high instance coverage of future traffic.
	freq := make(map[string]int)
	firstSeen := make(map[string]querylog.Query)
	for _, q := range f.train.Queries {
		freq[q.Key]++
		if _, ok := firstSeen[q.Key]; !ok {
			firstSeen[q.Key] = q
		}
	}
	keys := make([]string, 0, len(freq))
	for k2 := range freq {
		keys = append(keys, k2)
	}
	sort.Slice(keys, func(a, b int) bool {
		if freq[keys[a]] != freq[keys[b]] {
			return freq[keys[a]] > freq[keys[b]]
		}
		return keys[a] < keys[b]
	})
	if len(keys) > 600 {
		keys = keys[:600]
	}
	var train []partition.QueryDocs
	for _, key := range keys {
		q := firstSeen[key]
		rs, _ := rank.EvaluateOR(f.central, scorer, q.Terms, 10)
		docs := make([]int, len(rs))
		for i, res := range rs {
			docs[i] = res.Doc
		}
		train = append(train, partition.QueryDocs{Key: q.Key, Terms: q.Terms, Docs: docs})
	}
	cc := partition.CoClusterDocs(rng, train, f.docIDs(), k, 15)
	qd := selection.NewQueryDriven(cc, train)

	// CORI and random operate over the same query-driven partition so
	// only the selector differs.
	var stats []index.Stats
	perPart := make(map[int]*index.MemBuilder)
	for p := 0; p < k; p++ {
		perPart[p] = index.NewBuilder(index.DefaultOptions())
	}
	for _, d := range f.docs {
		if p, ok := cc.Partition.Assign[d.Ext]; ok {
			perPart[p].AddDocument(d.Ext, d.Terms)
		}
	}
	for p := 0; p < k; p++ {
		stats = append(stats, index.MustBuild(perPart[p]).LocalStats(nil))
	}
	cori := selection.NewCORI(stats)
	rnd := selection.NewRandom(10, k)

	// Test: recall@n of the true top-20 for unseen-day queries.
	evalRecall := func(sel selection.Selector, n int) float64 {
		sum, cnt := 0.0, 0
		for i, q := range f.test.Queries {
			if i >= 1500 {
				break
			}
			rs, _ := rank.EvaluateOR(f.central, scorer, q.Terms, 20)
			if len(rs) == 0 {
				continue
			}
			top := make([]int, len(rs))
			for j, res := range rs {
				top[j] = res.Doc
			}
			sum += selection.RecallAtN(sel, q.Terms, top, cc.Partition.Assign, n)
			cnt++
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}

	t := metrics.NewTable("mean recall of the true top-20 when querying only n of 16 partitions",
		"selector", "n=1", "n=2", "n=4", "n=8")
	sels := []struct {
		name string
		s    selection.Selector
	}{{"query-driven (Puppin)", qd}, {"CORI", cori}, {"random", rnd}}
	recalls := map[string][4]float64{}
	for _, e := range sels {
		var row [4]float64
		for i, n := range []int{1, 2, 4, 8} {
			row[i] = evalRecall(e.s, n)
		}
		recalls[e.name] = row
		t.AddRow(e.name, row[0], row[1], row[2], row[3])
	}
	r.Tables = append(r.Tables, t)

	never := float64(len(cc.NeverRecalled)) / float64(len(f.docs))
	nv := metrics.NewTable("never-recalled documents", "metric", "value")
	nv.AddRow("documents", len(f.docs))
	nv.AddRow("never recalled by training queries", len(cc.NeverRecalled))
	nv.AddRow("fraction", never)
	r.Tables = append(r.Tables, nv)
	r.Values = map[string]float64{
		"qd_recall1":     recalls["query-driven (Puppin)"][0],
		"cori_recall1":   recalls["CORI"][0],
		"rand_recall1":   recalls["random"][0],
		"qd_recall4":     recalls["query-driven (Puppin)"][2],
		"cori_recall4":   recalls["CORI"][2],
		"never_recalled": never,
	}
	r.Notes = append(r.Notes, "paper: query-driven partitioning 'outperform[s] the state-of-the-art model, namely CORI'; Puppin et al. found 53% of documents never recalled")
	return r
}

// Claim9GlobalStats (C9) quantifies the cost of scoring with local
// instead of global statistics: the two-round protocol reproduces the
// centralized ranking exactly; local-only statistics diverge, and the
// divergence shrinks as partitions get larger (fewer of them).
func Claim9GlobalStats() *Result {
	f := sharedFixture()
	r := &Result{ID: "C9", Title: "Global vs local statistics: result agreement with the centralized ranking"}
	scorer := rank.NewScorer(rank.FromIndex(f.central))
	queries := queryTerms(f.test, 400)

	t := metrics.NewTable("agreement with centralized top-10 (skewed contiguous partitions)",
		"partitions", "two-round overlap@10", "local-only overlap@10", "local-only Kendall tau")
	var overlap16 float64
	for _, k := range []int{4, 16} {
		// Contiguous chunks: maximal statistics skew.
		dp := partition.DocPartition{K: k, Parts: make([][]int, k), Assign: make(map[int]int)}
		ids := f.docIDs()
		for i, id := range ids {
			p := i * k / len(ids)
			dp.Parts[p] = append(dp.Parts[p], id)
			dp.Assign[id] = p
		}
		e, err := qproc.NewDocEngine(index.DefaultOptions(), f.docs, dp)
		if err != nil {
			panic(err)
		}
		var twoRound, localOnly, tau float64
		n := 0
		for _, q := range queries {
			want, _ := rank.EvaluateOR(f.central, scorer, q, 10)
			if len(want) == 0 {
				continue
			}
			g := e.Query(q, qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalTwoRound})
			l := e.Query(q, qproc.DocQueryOptions{K: 10, Stats: qproc.LocalOnly})
			twoRound += rank.Overlap(want, g.Results, 10)
			localOnly += rank.Overlap(want, l.Results, 10)
			tau += rank.KendallTau(want, l.Results)
			n++
		}
		t.AddRow(k, twoRound/float64(n), localOnly/float64(n), tau/float64(n))
		if k == 16 {
			overlap16 = localOnly / float64(n)
		}
		if k == 4 {
			r.Values = map[string]float64{
				"tworound_overlap": twoRound / float64(n),
				"local_overlap_4":  localOnly / float64(n),
			}
		}
	}
	r.Values["local_overlap_16"] = overlap16
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "paper: 'comparing the result set computed on the global statistics with the result set computed using only local statistics' is the proposed measure; the two-round protocol is exact by construction")
	return r
}

// Claim14IndexBuild (C14) verifies the four construction strategies
// produce identical indexes and reports their build times and the
// compression/skip ablation of the layout choices.
func Claim14IndexBuild() *Result {
	f := sharedFixture()
	r := &Result{ID: "C14", Title: "Index construction strategies and layout ablation"}
	opts := index.DefaultOptions()

	timeIt := func(fn func() *index.Index) (*index.Index, float64) {
		start := time.Now() //dwrlint:allow wallclock build-time measurement for the C14 table; the built indexes are compared byte-identically
		ix := fn()
		return ix, float64(time.Since(start).Milliseconds()) //dwrlint:allow wallclock build-time measurement for the C14 table; the built indexes are compared byte-identically
	}
	ref, refMs := timeIt(func() *index.Index {
		b := index.NewBuilder(opts)
		for _, d := range f.docs {
			b.AddDocument(d.Ext, d.Terms)
		}
		return index.MustBuild(b)
	})
	sortIx, sortMs := timeIt(func() *index.Index {
		b := index.NewSortBuilder(opts)
		for _, d := range f.docs {
			b.AddDocument(d.Ext, d.Terms)
		}
		return index.MustBuild(b)
	})
	spimiIx, spimiMs := timeIt(func() *index.Index {
		b, err := index.NewSPIMIBuilder(opts, 1<<20, "")
		if err != nil {
			panic(err)
		}
		for _, d := range f.docs {
			if err := b.AddDocument(d.Ext, d.Terms); err != nil {
				panic(err)
			}
		}
		ix, err := b.Build()
		if err != nil {
			panic(err)
		}
		return ix
	})
	mrIx, mrMs := timeIt(func() *index.Index {
		ix, err := index.BuildMapReduce(opts, f.docs, 8, 4)
		if err != nil {
			panic(err)
		}
		return ix
	})
	plIx, plMs := timeIt(func() *index.Index {
		ix, err := index.BuildPipeline(opts, f.docs, 4)
		if err != nil {
			panic(err)
		}
		return ix
	})
	segIx, segMs := timeIt(func() *index.Index {
		store := index.NewSegmentStore(opts, index.MergePolicy{Radix: 3})
		w := index.NewSegmentWriter(store, 256)
		for _, d := range f.docs {
			if err := w.AddDocument(d.Ext, d.Terms); err != nil {
				panic(err)
			}
		}
		return index.MustBuild(w)
	})

	t := metrics.NewTable("construction strategies (identical output verified)",
		"strategy", "build ms", "identical to reference")
	t.AddRow("in-memory inverter", refMs, "-")
	t.AddRow("sort-based (Witten)", sortMs, index.Equal(ref, sortIx))
	t.AddRow("single-pass + spill (Lester)", spimiMs, index.Equal(ref, spimiIx))
	t.AddRow("map-reduce 8×4 (Dean)", mrMs, index.Equal(ref, mrIx))
	t.AddRow("pipelined ×4 (Melink)", plMs, index.Equal(ref, plIx))
	t.AddRow("streaming LSM segments", segMs, index.Equal(ref, segIx))
	r.Tables = append(r.Tables, t)

	// Layout ablation: compression and positions.
	sizes := metrics.NewTable("layout ablation", "layout", "posting bytes", "bytes/posting")
	totalPostings := 0
	for _, term := range ref.Terms() {
		totalPostings += ref.DF(term)
	}
	for _, row := range []struct {
		name string
		o    index.Options
	}{
		{"compressed + positions", index.Options{Compress: true, StorePositions: true, BlockSize: 64}},
		{"compressed, no positions", index.Options{Compress: true, StorePositions: false, BlockSize: 64}},
		{"fixed-width + positions", index.Options{Compress: false, StorePositions: true, BlockSize: 64}},
	} {
		b := index.NewBuilder(row.o)
		for _, d := range f.docs {
			b.AddDocument(d.Ext, d.Terms)
		}
		ix := index.MustBuild(b)
		sizes.AddRow(row.name, ix.SizeBytes(), float64(ix.SizeBytes())/float64(totalPostings))
	}
	r.Tables = append(r.Tables, sizes)
	r.Values = map[string]float64{
		"all_equal": boolTo01(index.Equal(ref, sortIx) && index.Equal(ref, spimiIx) &&
			index.Equal(ref, mrIx) && index.Equal(ref, plIx) && index.Equal(ref, segIx)),
		"docs": float64(ref.NumDocs()),
	}
	return r
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
