package experiments

import (
	"fmt"

	"dwr/internal/cache"
	"dwr/internal/cluster"
	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/rank"
	"dwr/internal/replication"
)

// newMultiSite builds an n-site replica system over the fixture corpus.
func newFixtureMultiSite(n int, policy qproc.RoutingPolicy, ttl float64, hourlyCap int) *qproc.MultiSite {
	f := sharedFixture()
	m := &qproc.MultiSite{
		Net:              cluster.NewNetwork(1, n),
		Policy:           policy,
		CacheTTL:         ttl,
		OffloadThreshold: 0.7,
	}
	for s := 0; s < n; s++ {
		dp := partition.RoundRobinDocs(f.docIDs(), 4)
		e, err := qproc.NewDocEngine(index.DefaultOptions(), f.docs, dp)
		if err != nil {
			panic(err)
		}
		m.Sites = append(m.Sites, qproc.NewSite(s, s, e, 4096, hourlyCap))
	}
	return m
}

// Claim10Caching (C10) compares LRU, LFU, and SDC hit ratios on the
// Zipfian query log, and shows stale cache entries masking a total
// query-processor outage.
func Claim10Caching() *Result {
	f := sharedFixture()
	r := &Result{ID: "C10", Title: "Result caching: policy hit ratios and failure masking"}

	// Hit ratios on the full log replayed in arrival order; static keys
	// for SDC come from the training days' most popular queries.
	counts := make(map[string]int)
	for _, q := range f.train.Queries {
		counts[q.Key]++
	}
	type kc struct {
		k string
		c int
	}
	var pop []kc
	for k, c := range counts {
		pop = append(pop, kc{k, c})
	}
	for i := 1; i < len(pop); i++ { // insertion sort by count desc (small n)
		for j := i; j > 0 && (pop[j].c > pop[j-1].c || (pop[j].c == pop[j-1].c && pop[j].k < pop[j-1].k)); j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
	const capTotal = 400
	staticKeys := make([]string, 0, capTotal/2)
	for i := 0; i < len(pop) && i < capTotal/2; i++ {
		staticKeys = append(staticKeys, pop[i].k)
	}

	replay := func(c cache.Cache[int]) float64 {
		for i, q := range f.test.Queries {
			if _, ok := c.Get(q.Key); !ok {
				c.Put(q.Key, 1, float64(i))
			}
		}
		return cache.HitRatio(c)
	}
	lru := replay(cache.NewLRU[int](capTotal))
	lfu := replay(cache.NewLFU[int](capTotal))
	sdc := replay(cache.NewSDC[int](staticKeys, capTotal/2))

	t := metrics.NewTable(fmt.Sprintf("hit ratio on %d test queries (capacity %d)", len(f.test.Queries), capTotal),
		"policy", "hit ratio")
	t.AddRow("LRU", lru)
	t.AddRow("LFU", lfu)
	t.AddRow("SDC (static=train head)", sdc)
	r.Tables = append(r.Tables, t)

	// Failure masking: warm a multi-site cache, kill every processor,
	// measure answered fraction with and without stale serving.
	mask := func(ttl float64) (answered int) {
		m := newFixtureMultiSite(1, qproc.RouteGeo, ttl, 0)
		keys := make([]string, 0, 50)
		for _, q := range f.test.Queries[:50] {
			m.Submit(q.Terms, q.Key, 0, 1, 10)
			keys = append(keys, q.Key)
		}
		for p := 0; p < m.Sites[0].Engine.K(); p++ {
			m.Sites[0].Engine.SetDown(p, true)
		}
		for i, q := range f.test.Queries[:50] {
			res := m.Submit(q.Terms, keys[i], 0, 30, 10) // 29h later: stale
			if len(res.Results) > 0 {
				answered++
			}
		}
		return answered
	}
	withStale := mask(1) // TTL 1h: everything stale by hour 30, but kept
	noCache := mask(0)
	fm := metrics.NewTable("queries answered during a total processor outage (of 50 warm queries)",
		"configuration", "answered")
	fm.AddRow("no cache", noCache)
	fm.AddRow("stale-serving cache", withStale)
	r.Tables = append(r.Tables, fm)

	// Prefetching (Fagni et al., Lempel & Moran — the works the paper
	// cites alongside caching): when page 1 of a query's results is
	// computed, page 2 is prefetched into the cache. Measured on the
	// follow-up (page-2) requests that Zipf-popular queries generate.
	prefetchHit := func(prefetch bool) float64 {
		c := cache.NewLRU[int](capTotal)
		hits, total := 0, 0
		rng := 0
		for i, q := range f.test.Queries {
			if _, ok := c.Get(q.Key + "#p1"); !ok {
				c.Put(q.Key+"#p1", 1, float64(i))
				if prefetch {
					c.Put(q.Key+"#p2", 1, float64(i))
				}
			}
			// Every third query is followed by a page-2 request.
			rng++
			if rng%3 == 0 {
				total++
				if _, ok := c.Get(q.Key + "#p2"); ok {
					hits++
				} else {
					c.Put(q.Key+"#p2", 1, float64(i))
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}
	pf := metrics.NewTable("page-2 hit ratio with and without result prefetching", "configuration", "hit ratio")
	noPf := prefetchHit(false)
	withPf := prefetchHit(true)
	pf.AddRow("no prefetching", noPf)
	pf.AddRow("prefetch page 2 on page-1 computation", withPf)
	r.Tables = append(r.Tables, pf)

	r.Values = map[string]float64{
		"lru": lru, "lfu": lfu, "sdc": sdc,
		"masked":      float64(withStale),
		"unmasked":    float64(noCache),
		"prefetch":    withPf,
		"no_prefetch": noPf,
	}
	r.Notes = append(r.Notes, "paper: 'upon query processor failures, the system returns cached results'; SDC is the authors' static+dynamic design")
	return r
}

// Claim11Replication (C11) tabulates availability versus replication
// degree and exercises the three replication mechanisms under failures.
func Claim11Replication() *Result {
	r := &Result{ID: "C11", Title: "Replication degree vs availability, and mechanism behaviour under faults"}
	t := metrics.NewTable("availability of r replicas (per-replica availability a)",
		"a \\ r", "1", "2", "3", "4")
	for _, a := range []float64{0.9, 0.95, 0.99} {
		t.AddRow(fmt.Sprintf("%.2f", a),
			replication.Availability(a, 1), replication.Availability(a, 2),
			replication.Availability(a, 3), replication.Availability(a, 4))
	}
	r.Tables = append(r.Tables, t)

	// Mechanisms under a failure storm: write, fail minority, verify.
	pb := replication.NewPrimaryBackup(3)
	pb.Write("user", "v1")
	pb.Fail(0)
	pbVal, pbErr := pb.Read("user")

	q := replication.NewQuorum(3, 2, 2)
	q.Write("user", "v1")
	q.Fail(1)
	qVal, _, qErr := q.Read("user")

	l := replication.NewLog(5)
	l.Propose("op1")
	l.Fail(0)
	l.Fail(1)
	_, lErr := l.Propose("op2")

	m := metrics.NewTable("mechanism survival of minority failures",
		"mechanism", "failure injected", "state preserved", "still writable")
	m.AddRow("primary-backup (3)", "primary crash", pbErr == nil && pbVal == "v1", pb.Write("user", "v2") == nil)
	m.AddRow("quorum 2/2 of 3", "1 replica crash", qErr == nil && qVal == "v1", q.Write("user", "v2") == nil)
	m.AddRow("replicated log (5)", "2 replica crashes", len(l.Committed()) == 2, lErr == nil)
	r.Tables = append(r.Tables, m)
	r.Values = map[string]float64{
		"avail_90_3":   replication.Availability(0.9, 3),
		"pb_survived":  boolTo01(pbErr == nil && pbVal == "v1"),
		"q_survived":   boolTo01(qErr == nil && qVal == "v1"),
		"log_progress": boolTo01(lErr == nil),
	}
	r.Notes = append(r.Notes, "paper: 'having all query processors storing the same data ... achieves the best availability level possible ... also reducing the total storage capacity'")
	return r
}

// Claim12MultiSiteRouting (C12) measures geographic routing against
// region-blind routing, and hourly offloading of a peaking region.
func Claim12MultiSiteRouting() *Result {
	f := sharedFixture()
	r := &Result{ID: "C12", Title: "Multi-site routing: geographic proximity and peak-hour offloading (3 sites)"}

	// Geo vs round-robin on the real log (regions + hours).
	replay := func(policy qproc.RoutingPolicy) (mean float64) {
		m := newFixtureMultiSite(3, policy, 0, 0)
		var lat metrics.Welford
		for _, q := range f.test.Queries[:1200] {
			res := m.Submit(q.Terms, q.Key, q.Region%3, q.Time(), 10)
			if !res.Failed {
				lat.Add(res.LatencyMs)
			}
		}
		return lat.Mean()
	}
	geo := replay(qproc.RouteGeo)
	rr := replay(qproc.RouteRoundRobin)
	t := metrics.NewTable("mean query latency by routing policy", "policy", "mean latency (ms)")
	t.AddRow("geographic (nearest site)", geo)
	t.AddRow("round-robin (region-blind)", rr)
	r.Tables = append(r.Tables, t)

	// Offloading: replay a peak hour of region-0 queries against geo vs
	// load-aware routing with tight site capacity.
	peak := func(policy qproc.RoutingPolicy) (p99Queue float64, offloaded int) {
		m := newFixtureMultiSite(3, policy, 0, 300)
		var qd metrics.Sample
		for i, q := range f.test.Queries {
			if i >= 900 {
				break
			}
			res := m.Submit(q.Terms, q.Key, 0, 5.5, 10) // all in hour 5
			if res.Failed {
				continue
			}
			qd.Add(res.QueueMs)
			if res.Executor != res.Coordinator {
				offloaded++
			}
		}
		return qd.Quantile(0.99), offloaded
	}
	geoQ, geoOff := peak(qproc.RouteGeo)
	loadQ, loadOff := peak(qproc.RouteLoadAware)
	o := metrics.NewTable("peak-hour congestion (900 queries into one region, site capacity 300/h)",
		"policy", "p99 queue delay (ms)", "queries offloaded")
	o.AddRow("geographic", geoQ, geoOff)
	o.AddRow("load-aware offloading", loadQ, loadOff)
	r.Tables = append(r.Tables, o)

	// Broker hierarchy: with many partitions, a flat coordinator merges
	// every partition's top-k; a fanout-4 tree caps any single
	// coordinator's merge work — "a hierarchy of coordinators" (§5).
	const parts, k = 64, 10
	var lists [][]rank.Result
	for p := 0; p < parts; p++ {
		var l []rank.Result
		for i := 0; i < k; i++ {
			l = append(l, rank.Result{Doc: p*1000 + i, Score: float64((p*31+i*7)%100) / 100})
		}
		rank.SortResults(l)
		lists = append(lists, l)
	}
	flatRes := rank.MergeResults(k, lists...)
	treeRes, maxMerged := qproc.MergeTree(k, 4, lists)
	hb := metrics.NewTable("broker merge bottleneck (64 partitions, k=10)",
		"organization", "items merged at the bottleneck coordinator", "result identical")
	hb.AddRow("flat coordinator", qproc.FlatMergeCost(lists), "-")
	hb.AddRow("fanout-4 hierarchy", maxMerged, rank.Overlap(flatRes, treeRes, k) == 1)
	r.Tables = append(r.Tables, hb)
	r.Values = map[string]float64{
		"geo_latency": geo,
		"rr_latency":  rr,
		"geo_p99":     geoQ,
		"load_p99":    loadQ,
		"offloaded":   float64(loadOff),
	}
	r.Notes = append(r.Notes, "paper: 'it is also possible to offload a server from a busy area by re-routing some queries to query processors in less busy areas'")
	return r
}

// Claim13Incremental (C13) measures incremental query processing: first
// results arrive at the fastest site's latency; the final merged answer
// matches a full evaluation.
func Claim13Incremental() *Result {
	f := sharedFixture()
	r := &Result{ID: "C13", Title: "Incremental query processing across 3 sites"}
	m := newFixtureMultiSite(3, qproc.RouteGeo, 0, 0)
	var first, last metrics.Welford
	var converged int
	n := 0
	for _, q := range f.test.Queries[:300] {
		batches := m.QueryIncremental(q.Terms, q.Region%3, q.Time(), 10)
		if len(batches) == 0 {
			continue
		}
		n++
		first.Add(batches[0].AfterMs)
		last.Add(batches[len(batches)-1].AfterMs)
		direct := m.Sites[0].Engine.Query(q.Terms, qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalPrecomputed})
		if rank.Overlap(direct.Results, batches[len(batches)-1].Results, 10) == 1 {
			converged++
		}
	}
	t := metrics.NewTable("incremental delivery", "metric", "value")
	t.AddRow("queries", n)
	t.AddRow("mean first-batch latency (ms)", first.Mean())
	t.AddRow("mean final-batch latency (ms)", last.Mean())
	t.AddRow("speedup to first results", last.Mean()/first.Mean())
	t.AddRow("final answers equal to full evaluation", converged)
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"first_ms":  first.Mean(),
		"last_ms":   last.Mean(),
		"converged": float64(converged) / float64(n),
	}
	r.Notes = append(r.Notes, "paper: 'the faster query processors provide an initial set of results ... users continuously obtain new results'")
	return r
}
