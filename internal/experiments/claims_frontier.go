package experiments

import (
	"dwr/internal/crawler"
	"dwr/internal/metrics"
	"dwr/internal/simweb"
)

// Claim23FrontierPrioritization (C23) tackles the paper's first
// concluding open problem: "how to efficiently prioritize the crawling
// frontier under a dynamic scenario". The crawler's prioritized frontier
// reorders dynamically by accumulated citations (an OPIC-flavoured
// signal); quality is the fraction of total in-degree mass captured in
// each prefix of the crawl, compared against discovery-order (BFS)
// crawling.
func Claim23FrontierPrioritization() *Result {
	r := &Result{ID: "C23", Title: "Frontier prioritization: in-degree mass captured by crawl prefix"}
	wcfg := simweb.DefaultConfig()
	wcfg.Hosts = 150
	web := simweb.New(wcfg)

	// Seed a handful of linked pages so discovery order matters.
	var seeds []string
	for _, p := range web.Pages {
		if !p.Private && len(p.Links) >= 5 {
			seeds = append(seeds, web.URL(p.ID))
			if len(seeds) == 8 {
				break
			}
		}
	}
	run := func(priority bool) []int {
		cfg := crawler.DefaultConfig()
		cfg.Agents = 1
		cfg.PriorityFrontier = priority
		c := crawler.New(web, cfg)
		c.Seed(seeds)
		c.Run()
		return c.FetchOrder()
	}
	fifo := run(false)
	prio := run(true)

	massAt := func(order []int, frac float64) float64 {
		n := int(frac * float64(len(order)))
		sum, total := 0, 0
		for i, pid := range order {
			d := web.Pages[pid].InDegree
			total += d
			if i < n {
				sum += d
			}
		}
		if total == 0 {
			return 0
		}
		return float64(sum) / float64(total)
	}

	t := metrics.NewTable("fraction of total in-degree mass captured by crawl prefix",
		"prefix", "discovery order (BFS)", "prioritized frontier")
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75} {
		t.AddRow(metrics.FormatFloat(frac*100)+"%", massAt(fifo, frac), massAt(prio, frac))
	}
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"fifo_at25": massAt(fifo, 0.25),
		"prio_at25": massAt(prio, 0.25),
		"fifo_len":  float64(len(fifo)),
		"prio_len":  float64(len(prio)),
	}
	r.Notes = append(r.Notes,
		"paper (concluding remarks): open problems include 'how to efficiently prioritize the crawling frontier under a dynamic scenario'")
	return r
}
