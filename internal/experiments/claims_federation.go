package experiments

import (
	"fmt"

	"dwr/internal/metrics"
	"dwr/internal/qproc"
)

// Claim22FederatedVsOpen (C22) quantifies §5's Interaction axis: in a
// federated system the sites "behave in the best interest of the
// system", so peak-hour offloading works; in an open system the remote
// sites act from self-interest, re-prioritizing their own traffic, and
// the party that offloads "obtains" worse results — here, worse latency
// — from the same routing decision.
func Claim22FederatedVsOpen() *Result {
	r := &Result{ID: "C22", Title: "Federated vs open systems: the value of offloading under self-interest"}

	run := func(selfish bool) (p99Queue, meanLat float64, offloaded int) {
		f := sharedFixture()
		m := newFixtureMultiSite(3, qproc.RouteLoadAware, 0, 300)
		for _, s := range m.Sites {
			if s.ID != 0 {
				s.Selfish = selfish
				s.ForeignPenaltyMs = 400
			}
		}
		var q metrics.Sample
		var lat metrics.Welford
		for i := 0; i < 900; i++ {
			query := f.test.Queries[i%len(f.test.Queries)]
			res := m.Submit(query.Terms, fmt.Sprintf("q%d", i), 0, 2.5, 10)
			if res.Failed {
				continue
			}
			q.Add(res.QueueMs)
			lat.Add(res.LatencyMs)
			if res.Executor != res.Coordinator {
				offloaded++
			}
		}
		return q.Quantile(0.99), lat.Mean(), offloaded
	}
	fedQ, fedLat, fedOff := run(false)
	openQ, openLat, openOff := run(true)

	t := metrics.NewTable("peak-hour offloading (900 queries into one region, capacity 300/h)",
		"system", "p99 queue+penalty (ms)", "mean latency (ms)", "offloaded")
	t.AddRow("federated (cooperative sites)", fedQ, fedLat, fedOff)
	t.AddRow("open (self-interested remotes)", openQ, openLat, openOff)
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"fed_p99":   fedQ,
		"open_p99":  openQ,
		"fed_lat":   fedLat,
		"open_lat":  openLat,
		"offloaded": float64(fedOff),
	}
	r.Notes = append(r.Notes,
		"paper: in open systems 'parties may allocate resources in a self-interested fashion, thereby having a negative impact on the results a particular party obtains'")
	return r
}
