package experiments

import (
	"fmt"

	"dwr/internal/metrics"
	"dwr/internal/p2p"
)

// Claim19P2PArchitecture (C19) exercises Section 5's architecture
// classification: in a client/server system the serving capacity is
// fixed, so the supportable client population is bounded; in a
// peer-to-peer system every new client adds capacity, so utilization is
// flat in the population size — until free-riding erodes the serving
// fraction. Structured-overlay routing costs O(log n) hops.
func Claim19P2PArchitecture() *Result {
	r := &Result{ID: "C19", Title: "Client/server vs peer-to-peer: capacity scaling and overlay routing"}
	m := p2p.CapacityModel{ServeQPS: 100, DemandQPS: 5}

	// Capacity scaling.
	t := metrics.NewTable("offered load / capacity as the population grows (16 servers vs P2P)",
		"clients", "client/server utilization", "P2P utilization (no free-riding)")
	csCap := m.ClientServerSupportable(16) // constant capacity
	var csAt1000, p2pAt1000 float64
	for _, n := range []int{100, 320, 1000, 10000} {
		cs := float64(n) / csCap
		pp := m.P2PUtilization(n, 0)
		t.AddRow(n, cs, pp)
		if n == 1000 {
			csAt1000, p2pAt1000 = cs, pp
		}
	}
	r.Tables = append(r.Tables, t)

	// Free-riding sweep.
	fr := metrics.NewTable("P2P utilization vs free-riding fraction (1000 peers)",
		"free-riding", "utilization")
	var frBreak float64
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		u := m.P2PUtilization(1000, f)
		fr.AddRow(f, u)
		if u >= 1 && frBreak == 0 {
			frBreak = f
		}
	}
	r.Tables = append(r.Tables, fr)

	// Overlay routing: mean hops vs size.
	hops := metrics.NewTable("structured-overlay lookup cost", "peers", "mean hops", "log2(n)")
	var hops1024 float64
	for _, n := range []int{64, 256, 1024} {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("peer-%05d", i)
		}
		o := p2p.New(names)
		total := 0
		const lookups = 400
		for i := 0; i < lookups; i++ {
			_, h := o.Route(i%n, fmt.Sprintf("key%d", i))
			total += h
		}
		mean := float64(total) / lookups
		hops.AddRow(n, mean, log2(n))
		if n == 1024 {
			hops1024 = mean
		}
	}
	r.Tables = append(r.Tables, hops)

	r.Values = map[string]float64{
		"cs_util_1000":  csAt1000,
		"p2p_util_1000": p2pAt1000,
		"fr_break":      frBreak,
		"hops_1024":     hops1024,
	}
	r.Notes = append(r.Notes,
		"paper: 'in peer-to-peer systems ... the total amount of resources available for processing queries increases with the number of clients, assuming that free-riding is not prevalent'")
	return r
}

func log2(n int) float64 {
	l := 0.0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}
