package experiments

import (
	"fmt"

	"dwr/internal/cluster"
	"dwr/internal/core"
	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/queueing"
	"dwr/internal/randx"
)

// Table1Inventory (T1) prints the paper's Table 1 with the components of
// this repository implementing each cell, and records full coverage.
func Table1Inventory() *Result {
	r := &Result{ID: "T1", Title: "Main modules of a distributed Web retrieval system, and key issues for each module"}
	t := metrics.NewTable("module × issue coverage", "module", "issue", "paper topic", "implemented by")
	covered := 0
	for _, c := range core.Table1() {
		impl := ""
		for i, comp := range c.Components {
			if i > 0 {
				impl += "; "
			}
			impl += comp
		}
		t.AddRow(c.Module, c.Issue, c.PaperTopic, impl)
		if len(c.Components) > 0 {
			covered++
		}
	}
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{"cells": float64(len(core.Table1())), "covered": float64(covered)}
	return r
}

// Figure1Partitioning (F1) reproduces the two slicings of the T×D
// matrix: document (horizontal) and term (vertical) partitioning both
// tile the matrix exactly — no posting lost, none duplicated — while
// inducing very different per-query server contact patterns.
func Figure1Partitioning() *Result {
	f := sharedFixture()
	r := &Result{ID: "F1", Title: "Document vs term partitioning of the term-document matrix"}
	const k = 4
	opts := index.DefaultOptions()

	// Horizontal: split documents.
	dp := partition.RoundRobinDocs(f.docIDs(), k)
	de, err := qproc.NewDocEngine(opts, f.docs, dp)
	if err != nil {
		panic(err)
	}
	// Vertical: split terms.
	rng := randx.New(3)
	tp := partition.RandomTerms(rng, f.central.Terms(), k)
	te, err := qproc.NewTermEngine(opts, f.docs, tp)
	if err != nil {
		panic(err)
	}

	// Tiling check: total postings (df summed over terms) must match the
	// central matrix under both slicings.
	centralPostings := 0
	for _, t := range f.central.Terms() {
		centralPostings += f.central.DF(t)
	}
	docPostings := 0
	for p := 0; p < de.K(); p++ {
		ix := de.PartIndex(p)
		for _, t := range ix.Terms() {
			docPostings += ix.DF(t)
		}
	}
	// The term engine owns each term exactly once; count through the
	// partition against the central matrix.
	termPostings := 0
	for t := range tp.Assign {
		termPostings += f.central.DF(t)
	}

	// Contact patterns on the test queries.
	queries := queryTerms(f.test, 500)
	docContacts, termContacts := 0, 0
	for _, q := range queries {
		dq := de.Query(q, qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalPrecomputed})
		tq := te.Query(q, 10)
		docContacts += dq.ServersContacted
		termContacts += tq.ServersContacted
	}
	t := metrics.NewTable("matrix tiling and contact pattern (k=4)",
		"slicing", "postings covered", "avg servers/query")
	t.AddRow("central (reference)", centralPostings, "-")
	t.AddRow("document (horizontal)", docPostings, float64(docContacts)/float64(len(queries)))
	t.AddRow("term (vertical)", termPostings, float64(termContacts)/float64(len(queries)))
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"central_postings": float64(centralPostings),
		"doc_postings":     float64(docPostings),
		"term_postings":    float64(termPostings),
		"doc_avg_servers":  float64(docContacts) / float64(len(queries)),
		"term_avg_servers": float64(termContacts) / float64(len(queries)),
	}
	r.Notes = append(r.Notes,
		"both slicings cover the matrix exactly; document partitioning contacts every server, term partitioning only the owners of the query's terms")
	return r
}

// Figure2BusyLoad (F2) replays one query workload through an 8-server
// document-partitioned system and an 8-server pipelined term-partitioned
// system and reports the per-server busy load — the paper's Figure 2
// (from Webber et al.): flat near the mean for document partitioning,
// strongly imbalanced for pipelined term partitioning.
func Figure2BusyLoad() *Result {
	f := sharedFixture()
	r := &Result{ID: "F2", Title: "Average busy load per server: document vs pipelined term partitioning (8 servers)"}
	const k = 8
	opts := index.DefaultOptions()

	de, err := qproc.NewDocEngine(opts, f.docs, partition.RoundRobinDocs(f.docIDs(), k))
	if err != nil {
		panic(err)
	}
	tp := partition.RandomTerms(randx.New(7), f.central.Terms(), k)
	te, err := qproc.NewTermEngine(opts, f.docs, tp)
	if err != nil {
		panic(err)
	}
	queries := queryTerms(f.test, 2000)
	for _, q := range queries {
		de.Query(q, qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalPrecomputed})
		te.Query(q, 10)
	}
	docIm := metrics.NewImbalance(de.BusyMs())
	termIm := metrics.NewImbalance(te.BusyMs())

	t := metrics.NewTable("per-server busy load (normalized to the document system's mean)",
		"server", "doc-partitioned", "bar", "term-partitioned (pipelined)", "bar")
	for s := 0; s < k; s++ {
		d := docIm.Loads[s] / docIm.Mean
		tl := termIm.Loads[s] / termIm.Mean
		t.AddRow(fmt.Sprintf("s%d", s), d, metrics.Bar(d/2.5, 24), tl, metrics.Bar(tl/2.5, 24))
	}
	r.Tables = append(r.Tables, t)
	sum := metrics.NewTable("imbalance summary", "system", "CV", "max/mean")
	sum.AddRow("document", docIm.CV, docIm.MaxOver)
	sum.AddRow("term (pipelined)", termIm.CV, termIm.MaxOver)
	r.Tables = append(r.Tables, sum)
	r.Values = map[string]float64{
		"doc_cv":       docIm.CV,
		"term_cv":      termIm.CV,
		"doc_maxover":  docIm.MaxOver,
		"term_maxover": termIm.MaxOver,
	}
	r.Notes = append(r.Notes, "dashed line of the paper's figure = 1.0 in the normalized columns")
	return r
}

// Figure5Availability (F5) reproduces the BIRN site-unavailability
// histogram: 16 sites observed for 8 months; each bar is the average
// number of sites whose monthly availability fell below the threshold.
func Figure5Availability() *Result {
	r := &Result{ID: "F5", Title: "Site unavailability in a 16-site multi-site system (8 months)"}
	sites := cluster.NewSites(42, 16, 4, cluster.DefaultFailureModel(), 8*30*24)
	monthly := cluster.MonthlyAvailability(sites, 8)
	thresholds := []float64{1.0, 0.999, 0.995, 0.99, 0.98, 0.95}
	labels := []string{"<100%", "<99.9%", "<99.5%", "<99%", "<98%", "<95%"}
	bars := cluster.UnavailabilityHistogram(monthly, thresholds)
	t := metrics.NewTable("avg #sites with monthly availability below threshold",
		"threshold", "sites", "bar")
	for i := range bars {
		t.AddRow(labels[i], bars[i], metrics.Bar(bars[i]/16, 32))
	}
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"first_bar": bars[0],
		"last_bar":  bars[len(bars)-1],
	}
	r.Notes = append(r.Notes,
		"paper: 'on average 10 [of 16 sites] experience at least one outage in a given month'")
	return r
}

// Figure6Capacity (F6) regenerates the G/G/150 front-end capacity curve:
// the analytic bound c/E[S] across service times, validated by the
// discrete-event simulator on both sides of the bound.
func Figure6Capacity() *Result {
	r := &Result{ID: "F6", Title: "Maximum capacity of a front-end server, G/G/150 model"}
	const c = 150
	t := metrics.NewTable("capacity bound vs service time",
		"service (ms)", "bound (kqps)", "Kingman wait@95% load (ms)")
	for ms := 10; ms <= 100; ms += 10 {
		es := float64(ms) / 1000
		bound := queueing.CapacityBound(c, es)
		wait := queueing.KingmanWait(0.95*bound, c, es, 1, 1) * 1000
		t.AddRow(ms, bound/1000, wait)
	}
	r.Tables = append(r.Tables, t)

	// DES validation at the 50 ms midpoint.
	rng := randx.New(11)
	es := 0.05
	bound := queueing.CapacityBound(c, es)
	below := queueing.Simulate(rng, c, 60000, queueing.ExpArrivals(0.8*bound), queueing.LogNormalService(es, 1))
	above := queueing.Simulate(rng, c, 60000, queueing.ExpArrivals(1.2*bound), queueing.LogNormalService(es, 1))
	v := metrics.NewTable("DES validation at 50 ms service time",
		"arrival rate", "mean wait (ms)", "max queue")
	v.AddRow("0.8×bound", below.MeanWait*1000, below.MaxQueueLen)
	v.AddRow("1.2×bound", above.MeanWait*1000, above.MaxQueueLen)
	r.Tables = append(r.Tables, v)
	r.Values = map[string]float64{
		"bound_10ms_kqps":  queueing.CapacityBound(c, 0.01) / 1000,
		"bound_100ms_kqps": queueing.CapacityBound(c, 0.1) / 1000,
		"below_wait_ms":    below.MeanWait * 1000,
		"above_wait_ms":    above.MeanWait * 1000,
	}
	r.Notes = append(r.Notes, "paper: capacity 'drops from 15 to 2 as the average service time goes from 10ms to 100ms'")
	return r
}
