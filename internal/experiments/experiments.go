// Package experiments regenerates every table and figure of the paper,
// plus the quantitative claims embedded in its prose, as printable
// reports with machine-checkable headline values. cmd/dwrbench renders
// them; the repository-root benchmarks time them; EXPERIMENTS.md records
// paper-reported versus measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dwr/internal/metrics"
)

// Result is one regenerated experiment.
type Result struct {
	ID     string // e.g. "F2", "C7"
	Title  string
	Tables []*metrics.Table
	Notes  []string
	// Values holds the headline measurements, keyed by short names, so
	// tests and EXPERIMENTS.md can assert the reproduced shape.
	Values map[string]float64
}

// String renders the experiment report.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "===== %s — %s =====\n", r.ID, r.Title)
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("headline: ")
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s=%s", k, metrics.FormatFloat(r.Values[k]))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Registry lists every experiment in paper order.
func Registry() []struct {
	ID  string
	Run func() *Result
} {
	return []struct {
		ID  string
		Run func() *Result
	}{
		{"T1", Table1Inventory},
		{"F1", Figure1Partitioning},
		{"F2", Figure2BusyLoad},
		{"F5", Figure5Availability},
		{"F6", Figure6Capacity},
		{"C1", Claim1CapacityPlan},
		{"C2", Claim2ConsistentHashing},
		{"C3", Claim3URLExchange},
		{"C4", Claim4DNSCache},
		{"C5", Claim5Coverage},
		{"C6", Claim6TermVsDoc},
		{"C7", Claim7BinPacking},
		{"C8", Claim8CollectionSelection},
		{"C9", Claim9GlobalStats},
		{"C10", Claim10Caching},
		{"C11", Claim11Replication},
		{"C12", Claim12MultiSiteRouting},
		{"C13", Claim13Incremental},
		{"C14", Claim14IndexBuild},
		{"C15", Claim15OnlineMaintenance},
		{"C16", Claim16DriftReconfiguration},
		{"C17", Claim17LanguageRouting},
		{"C18", Claim18GeoCrawling},
		{"C19", Claim19P2PArchitecture},
		{"C20", Claim20PhraseShipping},
		{"C21", Claim21Personalization},
		{"C22", Claim22FederatedVsOpen},
		{"C23", Claim23FrontierPrioritization},
	}
}

// Run executes one experiment by ID, or returns nil for unknown IDs.
func Run(id string) *Result {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e.Run()
		}
	}
	return nil
}
