package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"dwr/internal/conc"
	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
)

// Claim15OnlineMaintenance (C15) quantifies the §4 online-maintenance
// discussion: a dynamic index (in-memory buffer + geometrically merged
// segments, per the paper's reference [15]) serves queries while being
// updated. The paper predicts a "lockout effect" from the update path's
// index lock; the snapshot-swap design (immutable segments behind an
// atomically swapped manifest) removes it, so query latency under a
// concurrent update stream stays flat and the table reports manifest
// swaps instead of lock-hold time. The paper's second observation —
// term partitioning amplifies update cost because "terms that require
// frequent updates might be spread across different servers" — is
// measured as the number of servers a single-document update must touch
// under each partitioning.
func Claim15OnlineMaintenance() *Result {
	f := sharedFixture()
	r := &Result{ID: "C15", Title: "Online index maintenance: lockout under concurrent updates"}

	// Phase 1: concurrent updates and queries against the dynamic index,
	// for two buffer sizes. Small buffers seal segments often (many
	// small swaps); large buffers seal rarely (few large swaps).
	run := func(bufferCap int) (p50, p99 float64, swaps uint64, segments int) {
		d := index.NewDynamic(index.DefaultOptions(), bufferCap, 3)
		var stop atomic.Bool
		var lat metrics.Sample
		var latMu sync.Mutex
		queries := queryTerms(f.test, 200)

		// Task 0 is the update stream, task 1 the query loop; the query
		// loop polls the stop flag the updater raises when it finishes.
		conc.Do(2, 2, func(task int) {
			if task == 0 {
				for _, doc := range f.docs[:1200] {
					if err := d.Add(doc.Ext, doc.Terms); err != nil {
						break
					}
				}
				stop.Store(true)
				return
			}
			i := 0
			for !stop.Load() {
				q := queries[i%len(queries)]
				i++
				t0 := time.Now() //dwrlint:allow wallclock measures real search latency under concurrent updates; ranked results stay deterministic
				d.Search(q, 10)
				ms := float64(time.Since(t0).Microseconds()) / 1000 //dwrlint:allow wallclock measures real search latency under concurrent updates; ranked results stay deterministic
				latMu.Lock()
				lat.Add(ms)
				latMu.Unlock()
			}
		})
		st := d.Maintenance()
		return lat.Quantile(0.5), lat.Quantile(0.99), st.Swaps, st.Segments
	}
	t := metrics.NewTable("query latency under a concurrent update stream (1,200 docs)",
		"buffer", "query p50 (ms)", "query p99 (ms)", "manifest swaps", "segments")
	small50, small99, smallSwaps, smallSeg := run(16)
	large50, large99, largeSwaps, largeSeg := run(256)
	t.AddRow("16 docs (frequent small swaps)", small50, small99, smallSwaps, smallSeg)
	t.AddRow("256 docs (rare large swaps)", large50, large99, largeSwaps, largeSeg)
	r.Tables = append(r.Tables, t)

	// Phase 2: lockout amplification under term partitioning. A single
	// document's update touches 1 partition in a document-partitioned
	// system, but every term server owning any of its terms in a
	// term-partitioned one.
	const k = 8
	tp := partition.BinPackTerms(f.central.Terms(), func(t string) float64 {
		return float64(f.central.DF(t))
	}, k)
	var w metrics.Welford
	for _, doc := range f.docs[:300] {
		servers := map[int]bool{}
		for _, term := range doc.Terms {
			if p, ok := tp.Assign[term]; ok {
				servers[p] = true
			}
		}
		w.Add(float64(len(servers)))
	}
	amp := metrics.NewTable("servers locked by a single-document update (8 servers)",
		"partitioning", "avg servers locked", "max")
	amp.AddRow("document", 1, 1)
	amp.AddRow("term", w.Mean(), w.Max())
	r.Tables = append(r.Tables, amp)

	r.Values = map[string]float64{
		"small_p99":         small99,
		"large_p99":         large99,
		"small_swaps":       float64(smallSwaps),
		"large_swaps":       float64(largeSwaps),
		"doc_lock_servers":  1,
		"term_lock_servers": w.Mean(),
	}
	r.Notes = append(r.Notes,
		"paper: the dynamic index 'constrains the capacity and the response time of the system since the update operation usually requires locking the index ... even more problematic in the case of term partitioned distributed IR systems'",
		"this implementation avoids the lockout: maintenance publishes immutable snapshots and readers never wait on the update path")
	return r
}
