package experiments

import (
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/querylog"
	"dwr/internal/randx"
	"dwr/internal/rank"
	"dwr/internal/selection"
)

// Claim16DriftReconfiguration (C16) reproduces the §5 external-factors
// claim (and the Cacheda et al. finding the paper cites): when the topic
// distribution of queries drifts, a query-driven routing model trained
// on old traffic degrades; detecting the drift online and retraining the
// model restores routing quality. The drift detector is the paper's
// open challenge "to determine online when users change their behavior
// significantly".
func Claim16DriftReconfiguration() *Result {
	f := sharedFixture()
	r := &Result{ID: "C16", Title: "User-model drift: routing degradation and automatic reconfiguration"}

	// A strongly drifting four-week log over the fixture web.
	lcfg := querylog.DefaultConfig()
	lcfg.Seed = 77
	lcfg.Days = 28
	lcfg.Total = 16000
	lcfg.Distinct = 1200
	lcfg.DriftAmp = 0.95
	lg := querylog.Generate(f.web, lcfg)

	scorer := rank.NewScorer(rank.FromIndex(f.central))
	const k = 16
	topDocs := func(terms []string, n int) []int {
		rs, _ := rank.EvaluateOR(f.central, scorer, terms, n)
		docs := make([]int, len(rs))
		for i, res := range rs {
			docs[i] = res.Doc
		}
		return docs
	}

	// train builds a query-driven partition + selector from a window of
	// query instances.
	train := func(queries []querylog.Query, seed int64) (partition.CoClusterResult, *selection.QueryDriven) {
		seen := map[string]bool{}
		var td []partition.QueryDocs
		for _, q := range queries {
			if seen[q.Key] || len(td) >= 500 {
				continue
			}
			seen[q.Key] = true
			td = append(td, partition.QueryDocs{Key: q.Key, Terms: q.Terms, Docs: topDocs(q.Terms, 10)})
		}
		cc := partition.CoClusterDocs(randx.New(seed), td, f.docIDs(), k, 12)
		return cc, selection.NewQueryDriven(cc, td)
	}

	// Initial model from week 1.
	var week1 []querylog.Query
	for _, q := range lg.Queries {
		if q.Day < 7 {
			week1 = append(week1, q)
		}
	}
	ccFixed, selFixed := train(week1, 5)
	ccAdapt, selAdapt := ccFixed, selFixed

	detector := querylog.NewDriftDetector(lg.Topics, 400, 0.25)
	var recent []querylog.Query

	// Replay weeks 2-4, measuring recall@2-of-16 per week for the fixed
	// and the adaptive model.
	type weekAcc struct {
		fixed, adapt float64
		n            int
	}
	weeks := map[int]*weekAcc{}
	retrained := 0
	for _, q := range lg.Queries {
		if q.Day < 7 {
			detector.Observe(q.Topic) // warm the reference on week 1
			continue
		}
		recent = append(recent, q)
		if len(recent) > 3000 {
			recent = recent[len(recent)-3000:]
		}
		if detector.Observe(q.Topic) {
			ccAdapt, selAdapt = train(recent, int64(100+retrained))
			retrained++
		}
		w := q.Day / 7
		acc := weeks[w]
		if acc == nil {
			acc = &weekAcc{}
			weeks[w] = acc
		}
		truth := topDocs(q.Terms, 10)
		acc.fixed += selection.RecallAtN(selFixed, q.Terms, truth, ccFixed.Partition.Assign, 2)
		acc.adapt += selection.RecallAtN(selAdapt, q.Terms, truth, ccAdapt.Partition.Assign, 2)
		acc.n++
	}

	t := metrics.NewTable("recall@2-of-16 by week (model trained on week 1)",
		"week", "fixed model", "adaptive (drift-triggered retraining)")
	var firstFixed, firstAdapt, lastFixed, lastAdapt float64
	for w := 1; w <= 3; w++ {
		acc := weeks[w]
		if acc == nil || acc.n == 0 {
			continue
		}
		fx := acc.fixed / float64(acc.n)
		ad := acc.adapt / float64(acc.n)
		t.AddRow(w+1, fx, ad) // weeks displayed 2..4
		if firstFixed == 0 {
			firstFixed, firstAdapt = fx, ad
		}
		lastFixed, lastAdapt = fx, ad
	}
	r.Tables = append(r.Tables, t)
	d := metrics.NewTable("drift detection", "metric", "value")
	d.AddRow("detections", detector.Detections)
	d.AddRow("retrainings", retrained)
	r.Tables = append(r.Tables, d)
	r.Values = map[string]float64{
		"fixed_week2": firstFixed,
		"adapt_week2": firstAdapt,
		"fixed_week4": lastFixed,
		"adapt_week4": lastAdapt,
		"retrainings": float64(retrained),
	}
	r.Notes = append(r.Notes,
		"paper: 'changes in the topic distribution of queries can adversely impact performance'; 'a possible solution ... is the automatic reconfiguration of the index partition, considering information from the query logs'")
	return r
}
