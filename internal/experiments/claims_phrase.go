package experiments

import (
	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/randx"
	"dwr/internal/rank"
)

// Claim20PhraseShipping (C20) reproduces §5's positional-search warning:
// "When position information is used for proximity or phrase search,
// however, the communication overhead between servers increases greatly
// ... the position information needs to be compressed". Document
// partitioning intersects positions locally; pipelined term partitioning
// ships candidate positions between servers, and delta+varint encoding
// cuts the bill.
func Claim20PhraseShipping() *Result {
	f := sharedFixture()
	r := &Result{ID: "C20", Title: "Phrase search: position shipping across the two partitionings"}
	const k = 8

	de, err := qproc.NewDocEngine(index.DefaultOptions(), f.docs, partition.RoundRobinDocs(f.docIDs(), k))
	if err != nil {
		panic(err)
	}
	tp := partition.RandomTerms(randx.New(17), f.central.Terms(), k)
	te, err := qproc.NewTermEngine(index.DefaultOptions(), f.docs, tp)
	if err != nil {
		panic(err)
	}

	// Phrase queries: consecutive word pairs sampled from documents (so
	// they actually occur).
	rng := randx.New(18)
	var phrases [][]string
	for len(phrases) < 150 {
		d := f.docs[rng.Intn(len(f.docs))]
		if len(d.Terms) < 3 {
			continue
		}
		i := rng.Intn(len(d.Terms) - 2)
		phrases = append(phrases, []string{d.Terms[i], d.Terms[i+1]})
	}

	gs := rank.NewScorer(rank.FromGlobal(de.GlobalStats()))
	var docBytes, rawBytes, compBytes int64
	matched := 0
	identical := 0
	for _, ph := range phrases {
		want, _ := rank.EvaluatePhrase(f.central, gs, ph, 10)
		dres := de.QueryPhrase(ph, 10)
		raw := te.QueryPhrase(ph, 10, false)
		comp := te.QueryPhrase(ph, 10, true)
		if len(want) > 0 {
			matched++
		}
		if sameDocs(want, dres.Results) && sameDocs(want, raw.Results) && sameDocs(want, comp.Results) {
			identical++
		}
		docBytes += dres.BytesTransferred
		rawBytes += raw.BytesTransferred
		compBytes += comp.BytesTransferred
	}
	n := float64(len(phrases))
	t := metrics.NewTable("bytes moved between servers per phrase query (avg over 150 phrases)",
		"system", "KB moved/query")
	t.AddRow("document-partitioned (positions stay local)", float64(docBytes)/n/1024)
	t.AddRow("term-partitioned, raw positions", float64(rawBytes)/n/1024)
	t.AddRow("term-partitioned, delta+varint positions", float64(compBytes)/n/1024)
	r.Tables = append(r.Tables, t)
	c := metrics.NewTable("correctness", "metric", "value")
	c.AddRow("phrases with ≥1 match", matched)
	c.AddRow("queries where all engines agree with central", identical)
	r.Tables = append(r.Tables, c)
	r.Values = map[string]float64{
		"doc_kb":    float64(docBytes) / n / 1024,
		"raw_kb":    float64(rawBytes) / n / 1024,
		"comp_kb":   float64(compBytes) / n / 1024,
		"agreement": float64(identical) / n,
		"matched":   float64(matched),
	}
	r.Notes = append(r.Notes,
		"doc partitioning ships only top-k results; the pipelined accumulator carries positions, compressed ≈3-4× by delta+varint")
	return r
}

// sameDocs compares two rankings by document set and order.
func sameDocs(a, b []rank.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc != b[i].Doc {
			return false
		}
	}
	return true
}
