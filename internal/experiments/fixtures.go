package experiments

import (
	"sort"
	"sync"

	"dwr/internal/index"
	"dwr/internal/querylog"
	"dwr/internal/simweb"
	"dwr/internal/textproc"
)

// fixture is the shared corpus most experiments replay: one synthetic
// Web, its tokenized documents, a central index, and a query log split
// into training and test days. It is built once and reused read-only.
type fixture struct {
	web     *simweb.Web
	docs    []index.Doc
	central *index.Index
	log     *querylog.Log
	train   *querylog.Log
	test    *querylog.Log
}

var (
	fixOnce sync.Once
	fix     *fixture
)

// sharedFixture builds (once) the standard experiment corpus.
func sharedFixture() *fixture {
	fixOnce.Do(func() {
		wcfg := simweb.DefaultConfig()
		wcfg.Hosts = 250
		wcfg.MinPages = 4
		wcfg.MaxPages = 150
		wcfg.VocabSize = 4000
		web := simweb.New(wcfg)

		// Documents come straight from page terms (the crawler's parse
		// path is exercised by C5; here we want the exact collection).
		var docs []index.Doc
		for _, p := range web.Pages {
			if p.Private {
				continue
			}
			h := web.Hosts[p.Host]
			vocab := web.Vocabs[h.Lang]
			terms := make([]string, len(p.Terms))
			for i, tid := range p.Terms {
				terms[i] = vocab.Word(int(tid))
			}
			docs = append(docs, index.Doc{Ext: p.ID, Terms: terms})
		}
		sort.Slice(docs, func(i, j int) bool { return docs[i].Ext < docs[j].Ext })

		b := index.NewBuilder(index.DefaultOptions())
		for _, d := range docs {
			b.AddDocument(d.Ext, d.Terms)
		}
		central := index.MustBuild(b)

		lcfg := querylog.DefaultConfig()
		lcfg.Distinct = 1500
		lcfg.Total = 15000
		lg := querylog.Generate(web, lcfg)
		train, test := lg.SplitByDay(10)

		fix = &fixture{web: web, docs: docs, central: central, log: lg, train: train, test: test}
	})
	return fix
}

// docIDs returns the external IDs of the fixture documents.
func (f *fixture) docIDs() []int {
	ids := make([]int, len(f.docs))
	for i, d := range f.docs {
		ids[i] = d.Ext
	}
	return ids
}

// queryTerms extracts the term slices of a log's instances, capped at n.
func queryTerms(lg *querylog.Log, n int) [][]string {
	if n > len(lg.Queries) {
		n = len(lg.Queries)
	}
	out := make([][]string, n)
	for i := 0; i < n; i++ {
		out[i] = lg.Queries[i].Terms
	}
	return out
}

// parseHTMLToDoc is used by crawl-path experiments to turn fetched HTML
// into an index document.
func parseHTMLToDoc(ext int, html string) index.Doc {
	d := textproc.ParseHTML(html)
	return index.Doc{Ext: ext, Terms: textproc.Tokenize(d.Text)}
}
