package experiments

import (
	"strings"
	"testing"
)

// These tests assert the reproduced SHAPE of every paper artifact: who
// wins, by roughly what factor, where crossovers fall. Absolute numbers
// are substrate-dependent and not asserted tightly.

func TestTable1Inventory(t *testing.T) {
	r := Table1Inventory()
	if r.Values["cells"] != 12 || r.Values["covered"] != 12 {
		t.Fatalf("Table 1 coverage %v/%v, want 12/12", r.Values["covered"], r.Values["cells"])
	}
}

func TestFigure1Shape(t *testing.T) {
	r := Figure1Partitioning()
	if r.Values["doc_postings"] != r.Values["central_postings"] {
		t.Fatalf("document slicing lost postings: %v vs %v", r.Values["doc_postings"], r.Values["central_postings"])
	}
	if r.Values["term_postings"] != r.Values["central_postings"] {
		t.Fatalf("term slicing lost postings: %v vs %v", r.Values["term_postings"], r.Values["central_postings"])
	}
	if r.Values["doc_avg_servers"] != 4 {
		t.Fatalf("document partitioning avg servers %v, want 4 (broadcast)", r.Values["doc_avg_servers"])
	}
	if r.Values["term_avg_servers"] >= r.Values["doc_avg_servers"] {
		t.Fatal("term partitioning did not reduce servers contacted")
	}
}

func TestFigure2Shape(t *testing.T) {
	r := Figure2BusyLoad()
	if r.Values["doc_cv"] >= r.Values["term_cv"] {
		t.Fatalf("doc CV %v not below term CV %v", r.Values["doc_cv"], r.Values["term_cv"])
	}
	if r.Values["doc_maxover"] > 1.4 {
		t.Fatalf("doc max/mean %v, want near 1 (flat like the figure's left panel)", r.Values["doc_maxover"])
	}
	if r.Values["term_maxover"] < 1.3 {
		t.Fatalf("term max/mean %v, want visible imbalance like the right panel", r.Values["term_maxover"])
	}
}

func TestFigure5Shape(t *testing.T) {
	r := Figure5Availability()
	if r.Values["first_bar"] < 6 || r.Values["first_bar"] > 16 {
		t.Fatalf("first bar %v sites, paper reports ≈10 of 16", r.Values["first_bar"])
	}
	if r.Values["last_bar"] >= r.Values["first_bar"] {
		t.Fatal("histogram must decrease toward lower thresholds")
	}
}

func TestFigure6Shape(t *testing.T) {
	r := Figure6Capacity()
	if r.Values["bound_10ms_kqps"] != 15 {
		t.Fatalf("bound at 10ms = %v kqps, want 15", r.Values["bound_10ms_kqps"])
	}
	if r.Values["bound_100ms_kqps"] != 1.5 {
		t.Fatalf("bound at 100ms = %v kqps, want 1.5", r.Values["bound_100ms_kqps"])
	}
	if r.Values["above_wait_ms"] < 20*r.Values["below_wait_ms"] {
		t.Fatalf("above-bound wait %vms not clearly unstable vs below-bound %vms",
			r.Values["above_wait_ms"], r.Values["below_wait_ms"])
	}
}

func TestClaim1Shape(t *testing.T) {
	r := Claim1CapacityPlan()
	if v := r.Values["nodes_per_cluster"]; v < 2500 || v > 3500 {
		t.Fatalf("nodes/cluster %v, want ≈3000", v)
	}
	if v := r.Values["total_nodes"]; v < 28000 || v > 40000 {
		t.Fatalf("total %v, want ≈30000", v)
	}
	if r.Values["cost_musd"] < 100 {
		t.Fatalf("cost %vM$, want >100", r.Values["cost_musd"])
	}
	if v := r.Values["total_2010"]; v < 1.3e6 || v > 1.8e6 {
		t.Fatalf("2010 total %v, want ≈1.5M", v)
	}
}

func TestClaim2Shape(t *testing.T) {
	r := Claim2ConsistentHashing()
	if r.Values["mod_join"] < 0.8 {
		t.Fatalf("mod-hash join churn %v, want ≈0.95", r.Values["mod_join"])
	}
	if r.Values["ring_join"] > 0.12 {
		t.Fatalf("consistent-hash join churn %v, want ≈1/21", r.Values["ring_join"])
	}
	if r.Values["ring_leave"] > 0.12 {
		t.Fatalf("consistent-hash leave churn %v, want ≈1/20", r.Values["ring_leave"])
	}
}

func TestClaim3Shape(t *testing.T) {
	r := Claim3URLExchange()
	if r.Values["messages_batch64"]*10 > r.Values["messages_batch1"] {
		t.Fatalf("batching cut messages only from %v to %v", r.Values["messages_batch1"], r.Values["messages_batch64"])
	}
	if r.Values["urls_seeded"] >= r.Values["urls_plain"] {
		t.Fatal("most-cited seeding did not reduce exchanged URLs")
	}
	if r.Values["suppressed"] == 0 {
		t.Fatal("seeding suppressed nothing")
	}
	if r.Values["exchange_fraction"] > 0.5 {
		t.Fatalf("exchange fraction %v; link locality should keep most links local", r.Values["exchange_fraction"])
	}
}

func TestClaim4Shape(t *testing.T) {
	r := Claim4DNSCache()
	if r.Values["queries_cache"]*2 > r.Values["queries_nocache"] {
		t.Fatalf("cache cut DNS queries only from %v to %v", r.Values["queries_nocache"], r.Values["queries_cache"])
	}
	if r.Values["hit_ratio"] < 0.5 {
		t.Fatalf("hit ratio %v", r.Values["hit_ratio"])
	}
}

func TestClaim5Shape(t *testing.T) {
	r := Claim5Coverage()
	if r.Values["coverage"] < 0.85 {
		t.Fatalf("coverage %v, want ≥0.85 despite flaky servers", r.Values["coverage"])
	}
	if r.Values["not_modified"] == 0 {
		t.Fatal("no 304s on re-crawl")
	}
}

func TestClaim6Shape(t *testing.T) {
	r := Claim6TermVsDoc()
	if r.Values["term_servers"] >= r.Values["doc_servers"] {
		t.Fatal("term partitioning did not reduce servers per query")
	}
	if r.Values["term_accesses"] >= r.Values["doc_accesses"] {
		t.Fatalf("term partitioning disk accesses/query %v not below document %v",
			r.Values["term_accesses"], r.Values["doc_accesses"])
	}
	if r.Values["doc_throughput"] <= r.Values["term_throughput"] {
		t.Fatal("document partitioning did not win on throughput")
	}
}

func TestClaim7Shape(t *testing.T) {
	r := Claim7BinPacking()
	if r.Values["binpack_cv"] >= r.Values["random_cv"] {
		t.Fatalf("bin-packing CV %v not below random %v", r.Values["binpack_cv"], r.Values["random_cv"])
	}
	if r.Values["cooccur_parts"] >= r.Values["random_parts"] {
		t.Fatalf("co-occurrence parts/query %v not below random %v", r.Values["cooccur_parts"], r.Values["random_parts"])
	}
}

func TestClaim8Shape(t *testing.T) {
	r := Claim8CollectionSelection()
	if r.Values["qd_recall1"] <= r.Values["cori_recall1"] {
		t.Fatalf("query-driven recall@1 %v not above CORI %v", r.Values["qd_recall1"], r.Values["cori_recall1"])
	}
	if r.Values["cori_recall1"] <= r.Values["rand_recall1"] {
		t.Fatalf("CORI recall@1 %v not above random %v", r.Values["cori_recall1"], r.Values["rand_recall1"])
	}
	// The paper reports ≈53%% never-recalled at Web scale; at this corpus
	// size training covers proportionally more of the collection, so we
	// assert only that the slice is substantial and bounded.
	if v := r.Values["never_recalled"]; v < 0.05 || v > 0.9 {
		t.Fatalf("never-recalled fraction %v; want a substantial slice (paper: ≈0.53 at Web scale)", v)
	}
}

func TestClaim9Shape(t *testing.T) {
	r := Claim9GlobalStats()
	if r.Values["tworound_overlap"] != 1 {
		t.Fatalf("two-round protocol overlap %v, must be exactly 1", r.Values["tworound_overlap"])
	}
	if r.Values["local_overlap_16"] >= 0.9999 {
		t.Fatal("local-only statistics never diverged; skew not exercised")
	}
	if r.Values["local_overlap_4"] <= r.Values["local_overlap_16"] {
		t.Fatalf("divergence should shrink with fewer, larger partitions: overlap@4parts %v vs @16parts %v",
			r.Values["local_overlap_4"], r.Values["local_overlap_16"])
	}
}

func TestClaim10Shape(t *testing.T) {
	r := Claim10Caching()
	if r.Values["sdc"] <= r.Values["lru"] {
		t.Fatalf("SDC hit ratio %v not above LRU %v", r.Values["sdc"], r.Values["lru"])
	}
	if r.Values["masked"] <= r.Values["unmasked"] {
		t.Fatalf("stale serving answered %v vs %v without cache", r.Values["masked"], r.Values["unmasked"])
	}
}

func TestClaim11Shape(t *testing.T) {
	r := Claim11Replication()
	if v := r.Values["avail_90_3"]; v < 0.998 || v > 1 {
		t.Fatalf("availability(0.9, 3) = %v, want 0.999", v)
	}
	for _, k := range []string{"pb_survived", "q_survived", "log_progress"} {
		if r.Values[k] != 1 {
			t.Fatalf("%s = %v, want 1", k, r.Values[k])
		}
	}
}

func TestClaim12Shape(t *testing.T) {
	r := Claim12MultiSiteRouting()
	if r.Values["geo_latency"] >= r.Values["rr_latency"] {
		t.Fatalf("geo latency %v not below round-robin %v", r.Values["geo_latency"], r.Values["rr_latency"])
	}
	if r.Values["load_p99"] >= r.Values["geo_p99"] {
		t.Fatalf("load-aware p99 %v not below geo %v", r.Values["load_p99"], r.Values["geo_p99"])
	}
	if r.Values["offloaded"] == 0 {
		t.Fatal("no queries offloaded at peak")
	}
}

func TestClaim13Shape(t *testing.T) {
	r := Claim13Incremental()
	if r.Values["first_ms"] >= r.Values["last_ms"] {
		t.Fatal("first incremental batch not earlier than last")
	}
	if r.Values["converged"] < 0.999 {
		t.Fatalf("only %v of final incremental answers matched full evaluation", r.Values["converged"])
	}
}

func TestClaim14Shape(t *testing.T) {
	r := Claim14IndexBuild()
	if r.Values["all_equal"] != 1 {
		t.Fatal("construction strategies diverged")
	}
	if r.Values["docs"] == 0 {
		t.Fatal("no documents indexed")
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		ids[e.ID] = true
	}
	for _, want := range []string{"T1", "F1", "F2", "F5", "F6", "C1", "C2", "C3", "C4", "C5",
		"C6", "C7", "C8", "C9", "C10", "C11", "C12", "C13", "C14"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
	if Run("f2") == nil {
		t.Error("Run is not case-insensitive")
	}
	if Run("nope") != nil {
		t.Error("Run returned a result for an unknown ID")
	}
}

func TestResultRendering(t *testing.T) {
	r := Table1Inventory()
	out := r.String()
	for _, want := range []string{"T1", "Crawling", "Indexing", "Querying", "headline:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered result missing %q", want)
		}
	}
}

func TestClaim15Shape(t *testing.T) {
	r := Claim15OnlineMaintenance()
	if r.Values["term_lock_servers"] <= 2 {
		t.Fatalf("term-partitioned update locks %v servers on average; the paper's amplification should be strong",
			r.Values["term_lock_servers"])
	}
	if r.Values["doc_lock_servers"] != 1 {
		t.Fatalf("document-partitioned update locks %v servers, want 1", r.Values["doc_lock_servers"])
	}
	if r.Values["small_swaps"] <= 0 || r.Values["large_swaps"] <= 0 {
		t.Fatal("no manifest swaps recorded; maintenance not exercised")
	}
	if r.Values["small_swaps"] <= r.Values["large_swaps"] {
		t.Fatalf("small buffer published %v swaps, large %v; smaller buffers must seal more often",
			r.Values["small_swaps"], r.Values["large_swaps"])
	}
}

func TestClaim16Shape(t *testing.T) {
	r := Claim16DriftReconfiguration()
	if r.Values["retrainings"] < 1 {
		t.Fatal("drift was never detected on a strongly drifting log")
	}
	if r.Values["adapt_week2"] <= r.Values["fixed_week2"] {
		t.Fatalf("adaptive recall %v not above fixed %v in the drifted week",
			r.Values["adapt_week2"], r.Values["fixed_week2"])
	}
}

func TestClaim17Shape(t *testing.T) {
	r := Claim17LanguageRouting()
	if r.Values["accuracy"] < 0.9 {
		t.Fatalf("language identification accuracy %v, want ≥0.9 on generated text", r.Values["accuracy"])
	}
	if r.Values["recall_correct"] < 0.95 {
		t.Fatalf("recall with correct identification %v, want ≈1 (languages partition the collection)", r.Values["recall_correct"])
	}
	if r.Values["recall_wrong"] > 0.2 {
		t.Fatalf("recall under misidentification %v; should collapse (wrong language partition)", r.Values["recall_wrong"])
	}
}

func TestClaim18Shape(t *testing.T) {
	r := Claim18GeoCrawling()
	if r.Values["affinity_wan_frac"] != 0 {
		t.Fatalf("region-affinity WAN fraction %v, want 0", r.Values["affinity_wan_frac"])
	}
	if r.Values["blind_wan_frac"] < 0.3 {
		t.Fatalf("region-blind WAN fraction %v; should be large with 3 regions", r.Values["blind_wan_frac"])
	}
	if r.Values["affinity_coverage"] < 0.85 {
		t.Fatalf("affinity coverage %v", r.Values["affinity_coverage"])
	}
}

func TestClaim19Shape(t *testing.T) {
	r := Claim19P2PArchitecture()
	if r.Values["cs_util_1000"] <= 1 {
		t.Fatalf("client/server at 1000 clients utilization %v; should be saturated", r.Values["cs_util_1000"])
	}
	if r.Values["p2p_util_1000"] >= 1 {
		t.Fatalf("P2P at 1000 peers utilization %v; capacity should grow with peers", r.Values["p2p_util_1000"])
	}
	if r.Values["fr_break"] < 0.9 {
		t.Fatalf("free-riding broke P2P at %v; with 20x headroom it should survive to ≥0.9", r.Values["fr_break"])
	}
	if r.Values["hops_1024"] > 10 {
		t.Fatalf("overlay hops at 1024 peers = %v, want ≤ log2(n)", r.Values["hops_1024"])
	}
}

func TestClaim20Shape(t *testing.T) {
	r := Claim20PhraseShipping()
	if r.Values["agreement"] != 1 {
		t.Fatalf("engines disagreed with central phrase evaluation: agreement %v", r.Values["agreement"])
	}
	if r.Values["raw_kb"] <= 10*r.Values["doc_kb"] {
		t.Fatalf("raw position shipping %v KB not ≫ document-partitioned %v KB", r.Values["raw_kb"], r.Values["doc_kb"])
	}
	if r.Values["comp_kb"] >= r.Values["raw_kb"] {
		t.Fatalf("compression did not reduce shipping: %v vs %v", r.Values["comp_kb"], r.Values["raw_kb"])
	}
}

func TestClaim21Shape(t *testing.T) {
	r := Claim21Personalization()
	if r.Values["versions"] != r.Values["clicks"] {
		t.Fatalf("profile versions %v != clicks %v: updates lost across failover", r.Values["versions"], r.Values["clicks"])
	}
	if r.Values["reordered"] <= 0 {
		t.Fatal("personalization never changed the top result")
	}
	if r.Values["tau_between"] >= 0.9999 {
		t.Fatal("two users with opposite habits got identical rankings")
	}
}

func TestClaim22Shape(t *testing.T) {
	r := Claim22FederatedVsOpen()
	if r.Values["open_p99"] <= r.Values["fed_p99"] {
		t.Fatalf("open-system p99 %v not above federated %v; self-interest must hurt",
			r.Values["open_p99"], r.Values["fed_p99"])
	}
	if r.Values["open_lat"] <= r.Values["fed_lat"] {
		t.Fatalf("open-system latency %v not above federated %v", r.Values["open_lat"], r.Values["fed_lat"])
	}
	if r.Values["offloaded"] == 0 {
		t.Fatal("no offloading occurred; peak not exercised")
	}
}

func TestClaim23Shape(t *testing.T) {
	r := Claim23FrontierPrioritization()
	if r.Values["prio_at25"] <= r.Values["fifo_at25"] {
		t.Fatalf("prioritized frontier captured %v of in-degree mass at 25%%, BFS %v; must front-load quality",
			r.Values["prio_at25"], r.Values["fifo_at25"])
	}
	if r.Values["prio_len"] < 0.9*r.Values["fifo_len"] {
		t.Fatalf("prioritized crawl coverage dropped: %v vs %v pages", r.Values["prio_len"], r.Values["fifo_len"])
	}
}
