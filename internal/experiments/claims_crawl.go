package experiments

import (
	"fmt"

	"dwr/internal/capacity"
	"dwr/internal/chash"
	"dwr/internal/crawler"
	"dwr/internal/metrics"
	"dwr/internal/simweb"
)

// Claim1CapacityPlan (C1) re-derives the Section 1 back-of-the-envelope
// arithmetic: 20 billion pages → ≈3,000 machines per cluster, ≈10
// replicas, ≈30,000 machines, >$100M; and the 2010 projection of
// ≈50,000-machine clusters and ≈1.5M machines overall.
func Claim1CapacityPlan() *Result {
	r := &Result{ID: "C1", Title: "Section 1 capacity arithmetic and 2010 projection"}
	p2007 := capacity.Derive(capacity.DefaultParams())
	p2010 := capacity.Project(capacity.DefaultParams(), 16.7, 3)
	t := metrics.NewTable("derived deployment plans",
		"scenario", "index (TB)", "nodes/cluster", "replicas", "total nodes", "cost (M$)")
	t.AddRow("2007 (paper §1)", p2007.IndexBytes/1e12, p2007.NodesPerCluster, p2007.Replicas, p2007.TotalNodes, p2007.CostUSD/1e6)
	t.AddRow("2010 projection", p2010.IndexBytes/1e12, p2010.NodesPerCluster, p2010.Replicas, p2010.TotalNodes, p2010.CostUSD/1e6)
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"nodes_per_cluster": float64(p2007.NodesPerCluster),
		"replicas":          float64(p2007.Replicas),
		"total_nodes":       float64(p2007.TotalNodes),
		"cost_musd":         p2007.CostUSD / 1e6,
		"total_2010":        float64(p2010.TotalNodes),
	}
	r.Notes = append(r.Notes, "paper: ≈3,000/cluster, ≥10 replicas, ≥30,000 machines, >$100M; 2010: 50,000-machine clusters, ≥1.5M machines")
	return r
}

// Claim2ConsistentHashing (C2) measures host reassignment churn when one
// crawling agent joins or leaves a pool of 20, under modulo hashing vs
// consistent hashing (UbiCrawler).
func Claim2ConsistentHashing() *Result {
	r := &Result{ID: "C2", Title: "URL assignment churn: modulo vs consistent hashing (20 agents, 50k hosts)"}
	const agents, hosts = 20, 50000
	keys := make([]string, hosts)
	for i := range keys {
		keys[i] = fmt.Sprintf("h%05d.example", i)
	}
	members := make([]string, agents)
	for i := range members {
		members[i] = fmt.Sprintf("agent%d", i)
	}

	modBefore := chash.NewModAssigner(members)
	modJoin := chash.NewModAssigner(append(append([]string(nil), members...), "agent20"))
	modLeave := chash.NewModAssigner(members[:agents-1])

	ring := func(ms []string) *chash.Ring {
		rg := chash.NewRing(128)
		for _, m := range ms {
			rg.Add(m)
		}
		return rg
	}
	ringBefore := ring(members)
	ringJoin := ring(append(append([]string(nil), members...), "agent20"))
	ringLeave := ring(members[:agents-1])

	t := metrics.NewTable("fraction of hosts reassigned on membership change",
		"event", "mod-hash", "consistent-hash", "ideal")
	join := [2]float64{
		float64(chash.Moved(modBefore, modJoin, keys)) / hosts,
		float64(chash.Moved(ringBefore, ringJoin, keys)) / hosts,
	}
	leave := [2]float64{
		float64(chash.Moved(modBefore, modLeave, keys)) / hosts,
		float64(chash.Moved(ringBefore, ringLeave, keys)) / hosts,
	}
	t.AddRow("agent joins (20→21)", join[0], join[1], 1.0/21)
	t.AddRow("agent leaves (20→19)", leave[0], leave[1], 1.0/20)
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"mod_join":   join[0],
		"ring_join":  join[1],
		"mod_leave":  leave[0],
		"ring_leave": leave[1],
	}
	r.Notes = append(r.Notes, "paper: 'with consistent hashing, new agents enter the crawling system without re-hashing all the server names'")
	return r
}

// crawlWeb builds the crawling experiment web (distinct from the query
// fixture: crawling wants more hosts, fewer pages each).
func crawlWeb() *simweb.Web {
	cfg := simweb.DefaultConfig()
	cfg.Hosts = 150
	cfg.MaxPages = 50
	cfg.VocabSize = 2000
	return simweb.New(cfg)
}

func seedAllHosts(w *simweb.Web, c *crawler.Crawler) {
	var urls []string
	for _, h := range w.Hosts {
		if len(h.Pages) > 0 {
			urls = append(urls, w.URL(h.Pages[0]))
		}
	}
	c.Seed(urls)
}

// Claim3URLExchange (C3) quantifies the three URL-exchange optimizations
// of Section 3: host-affinity assignment exploits link locality, batching
// cuts message count, and pre-seeding the most-cited URLs suppresses the
// power-law head of the exchange traffic.
func Claim3URLExchange() *Result {
	r := &Result{ID: "C3", Title: "URL exchange traffic: locality, batching, most-cited seeding (4 agents)"}
	w := crawlWeb()
	run := func(batch, seedTop int) crawler.Stats {
		cfg := crawler.DefaultConfig()
		cfg.BatchSize = batch
		cfg.SeedMostCited = seedTop
		c := crawler.New(w, cfg)
		seedAllHosts(w, c)
		return c.Run()
	}
	base := run(1, 0)
	batched := run(64, 0)
	seeded := run(64, 200)

	totalLinks := 0
	for _, p := range w.Pages {
		totalLinks += len(p.Links)
	}
	t := metrics.NewTable("exchange traffic per configuration",
		"configuration", "URLs exchanged", "messages", "suppressed by seeding")
	t.AddRow("batch=1", base.URLsExchanged, base.ExchangeMessages, base.URLsSuppressed)
	t.AddRow("batch=64", batched.URLsExchanged, batched.ExchangeMessages, batched.URLsSuppressed)
	t.AddRow("batch=64 + top-200 seeded", seeded.URLsExchanged, seeded.ExchangeMessages, seeded.URLsSuppressed)
	r.Tables = append(r.Tables, t)

	loc := metrics.NewTable("link locality leverage", "metric", "value")
	loc.AddRow("total links on the web", totalLinks)
	loc.AddRow("URLs exchanged (host-affinity assignment)", base.URLsExchanged)
	loc.AddRow("exchange fraction", float64(base.URLsExchanged)/float64(totalLinks))
	r.Tables = append(r.Tables, loc)
	r.Values = map[string]float64{
		"messages_batch1":   float64(base.ExchangeMessages),
		"messages_batch64":  float64(batched.ExchangeMessages),
		"urls_plain":        float64(batched.URLsExchanged),
		"urls_seeded":       float64(seeded.URLsExchanged),
		"suppressed":        float64(seeded.URLsSuppressed),
		"exchange_fraction": float64(base.URLsExchanged) / float64(totalLinks),
	}
	r.Notes = append(r.Notes, "host-level assignment means intra-host links (the majority) never cross agents; batching divides messages; seeding suppresses the most-cited URLs")
	return r
}

// Claim4DNSCache (C4) shows DNS as a crawler bottleneck and caching as
// the standard mitigation.
func Claim4DNSCache() *Result {
	r := &Result{ID: "C4", Title: "DNS load with and without a resolver cache"}
	w := crawlWeb()
	run := func(useCache bool) crawler.Stats {
		cfg := crawler.DefaultConfig()
		cfg.UseDNSCache = useCache
		c := crawler.New(w, cfg)
		seedAllHosts(w, c)
		return c.Run()
	}
	cached := run(true)
	uncached := run(false)
	t := metrics.NewTable("authoritative DNS queries during a full crawl",
		"configuration", "DNS queries", "hit ratio", "pages fetched")
	t.AddRow("no cache", uncached.DNSQueries, "-", uncached.PagesFetched)
	t.AddRow("TTL cache", cached.DNSQueries, cached.DNSHitRatio, cached.PagesFetched)
	r.Tables = append(r.Tables, t)
	r.Values = map[string]float64{
		"queries_nocache": float64(uncached.DNSQueries),
		"queries_cache":   float64(cached.DNSQueries),
		"hit_ratio":       cached.DNSHitRatio,
	}
	r.Notes = append(r.Notes, "paper: 'DNS is frequently a bottleneck ... a common solution is to cache DNS lookup results'")
	return r
}

// Claim5Coverage (C5) exercises the crawler against the open Web's
// hostility: flaky servers, broken markup, robots, politeness — and
// reports coverage, plus the freshness economics of conditional requests
// and sitemaps on re-crawl.
func Claim5Coverage() *Result {
	r := &Result{ID: "C5", Title: "Crawler robustness: coverage under failures, and re-crawl economics"}
	w := crawlWeb()
	c := crawler.New(w, crawler.DefaultConfig())
	seedAllHosts(w, c)
	st := c.Run()

	t := metrics.NewTable("full crawl", "metric", "value")
	t.AddRow("crawlable pages", w.CrawlablePages())
	t.AddRow("distinct pages fetched", st.DistinctPages)
	t.AddRow("coverage", st.Coverage)
	t.AddRow("transient retries", st.TransientRetries)
	t.AddRow("permanent failures", st.FetchFailures)
	t.AddRow("robots.txt fetches", st.RobotsFetches)
	t.AddRow("robots-skipped URLs", st.RobotsSkipped)
	t.AddRow("virtual crawl seconds", st.VirtualSeconds)
	r.Tables = append(r.Tables, t)

	plain := c.Recrawl(15, false)
	// Recrawl again from the updated state at a later day for sitemaps.
	maps := c.Recrawl(30, true)
	rc := metrics.NewTable("incremental re-crawl", "pass", "pages", "requests", "304s", "refetched", "skipped via sitemap")
	rc.AddRow("day 15, If-Modified-Since", plain.Pages, plain.ConditionalRequests, plain.NotModified, plain.Refetched, plain.SkippedViaSitemap)
	rc.AddRow("day 30, + sitemaps", maps.Pages, maps.ConditionalRequests, maps.NotModified, maps.Refetched, maps.SkippedViaSitemap)
	r.Tables = append(r.Tables, rc)
	r.Values = map[string]float64{
		"coverage":        st.Coverage,
		"retries":         float64(st.TransientRetries),
		"sitemap_skipped": float64(maps.SkippedViaSitemap),
		"not_modified":    float64(plain.NotModified),
	}
	r.Notes = append(r.Notes, "paper: crawlers must tolerate transient failures and slow links 'to be able to cover the Web to a large extent'")
	return r
}
