package crawler

import (
	"testing"

	"dwr/internal/simweb"
)

func testWeb() *simweb.Web {
	cfg := simweb.DefaultConfig()
	cfg.Hosts = 50
	cfg.MaxPages = 40
	cfg.VocabSize = 1500
	return simweb.New(cfg)
}

// seedAll seeds the crawl with every host's front page, giving full
// reachability regardless of link-graph connectivity.
func seedAll(w *simweb.Web, c *Crawler) {
	var urls []string
	for _, h := range w.Hosts {
		if len(h.Pages) > 0 {
			urls = append(urls, w.URL(h.Pages[0]))
		}
	}
	c.Seed(urls)
}

func TestCrawlCoverage(t *testing.T) {
	w := testWeb()
	c := New(w, DefaultConfig())
	seedAll(w, c)
	st := c.Run()
	if st.Coverage < 0.85 {
		t.Fatalf("coverage = %.2f, want ≥ 0.85 (crawl should reach almost all crawlable pages)", st.Coverage)
	}
	if st.DistinctPages == 0 || st.PagesFetched < st.DistinctPages {
		t.Fatalf("pages fetched %d < distinct %d", st.PagesFetched, st.DistinctPages)
	}
}

func TestCrawlRespectsRobots(t *testing.T) {
	w := testWeb()
	c := New(w, DefaultConfig())
	seedAll(w, c)
	c.Run()
	for pid := range c.Pages() {
		if w.Pages[pid].Private {
			t.Fatalf("crawler fetched robots-disallowed page %s", w.URL(pid))
		}
	}
}

func TestCrawlIgnoringRobotsFetchesPrivate(t *testing.T) {
	w := testWeb()
	cfg := DefaultConfig()
	cfg.RespectRobots = false
	c := New(w, cfg)
	// Seed every page directly so private ones are reachable even if no
	// public page links to them.
	var urls []string
	for pid := range w.Pages {
		urls = append(urls, w.URL(pid))
	}
	c.Seed(urls)
	c.Run()
	private := 0
	for pid := range c.Pages() {
		if w.Pages[pid].Private {
			private++
		}
	}
	if private == 0 {
		t.Fatal("robots-ignoring crawl fetched no private pages")
	}
}

func TestCrawlDeterministic(t *testing.T) {
	w := testWeb()
	run := func() Stats {
		c := New(w, DefaultConfig())
		seedAll(w, c)
		return c.Run()
	}
	a, b := run(), run()
	if a.PagesFetched != b.PagesFetched || a.URLsExchanged != b.URLsExchanged ||
		a.ExchangeMessages != b.ExchangeMessages || a.DistinctPages != b.DistinctPages {
		t.Fatalf("same-seed crawls differ: %+v vs %+v", a, b)
	}
}

func TestCrawlNoDuplicateFetchesWithoutFailures(t *testing.T) {
	w := testWeb()
	c := New(w, DefaultConfig())
	seedAll(w, c)
	st := c.Run()
	if st.DuplicateFetches != 0 {
		t.Fatalf("stable crawl produced %d duplicate fetches, want 0", st.DuplicateFetches)
	}
}

func TestBatchingReducesMessages(t *testing.T) {
	w := testWeb()
	run := func(batch int) Stats {
		cfg := DefaultConfig()
		cfg.BatchSize = batch
		c := New(w, cfg)
		seedAll(w, c)
		return c.Run()
	}
	small := run(1)
	large := run(64)
	if small.URLsExchanged == 0 {
		t.Skip("no cross-agent URLs in this configuration")
	}
	if large.ExchangeMessages >= small.ExchangeMessages {
		t.Fatalf("batch=64 sent %d messages, batch=1 sent %d; batching must reduce messages",
			large.ExchangeMessages, small.ExchangeMessages)
	}
}

func TestMostCitedSeedingSuppressesExchanges(t *testing.T) {
	w := testWeb()
	run := func(seeded int) Stats {
		cfg := DefaultConfig()
		cfg.SeedMostCited = seeded
		c := New(w, cfg)
		seedAll(w, c)
		return c.Run()
	}
	plain := run(0)
	seeded := run(100)
	if seeded.URLsSuppressed == 0 {
		t.Fatal("seeding most-cited URLs suppressed no exchanges")
	}
	if seeded.URLsExchanged >= plain.URLsExchanged {
		t.Fatalf("seeded crawl exchanged %d URLs, plain %d; seeding must reduce exchange",
			seeded.URLsExchanged, plain.URLsExchanged)
	}
}

func TestDNSCacheReducesQueries(t *testing.T) {
	w := testWeb()
	run := func(cache bool) Stats {
		cfg := DefaultConfig()
		cfg.UseDNSCache = cache
		c := New(w, cfg)
		seedAll(w, c)
		return c.Run()
	}
	cached := run(true)
	uncached := run(false)
	if cached.DNSQueries >= uncached.DNSQueries {
		t.Fatalf("cache: %d authoritative queries, no cache: %d", cached.DNSQueries, uncached.DNSQueries)
	}
	if cached.DNSHitRatio < 0.5 {
		t.Fatalf("DNS hit ratio %.2f, want ≥ 0.5 on a repeated-host workload", cached.DNSHitRatio)
	}
}

func TestAgentFailureRecovers(t *testing.T) {
	w := testWeb()
	cfg := DefaultConfig()
	cfg.Agents = 4
	c := New(w, cfg)
	seedAll(w, c)
	// Let agent 0 do its first drain, then fail it and finish the crawl.
	c.agents[0].drain()
	c.FailAgent(0)
	st := c.Run()
	if st.Coverage < 0.85 {
		t.Fatalf("coverage after agent failure = %.2f, want ≥ 0.85", st.Coverage)
	}
	if st.PerAgentFetches[0] != 0 {
		t.Fatalf("failed agent shows %d fetches in final stats", st.PerAgentFetches[0])
	}
}

func TestAddAgentTakesWork(t *testing.T) {
	w := testWeb()
	cfg := DefaultConfig()
	cfg.Agents = 2
	c := New(w, cfg)
	c.AddAgent(2)
	seedAll(w, c)
	st := c.Run()
	if st.PerAgentFetches[2] == 0 {
		t.Fatal("newly added agent fetched nothing")
	}
}

func TestPolitenessNeverViolated(t *testing.T) {
	// With one agent and one thread per agent, successive fetches against
	// the same host must be spaced by at least the politeness delay. We
	// verify indirectly: the virtual duration of crawling a single large
	// host must be at least (pages-1) × delay.
	w := testWeb()
	var big *simweb.Host
	for _, h := range w.Hosts {
		if !h.Flaky && (big == nil || len(h.Pages) > len(big.Pages)) {
			big = h
		}
	}
	if big == nil || len(big.Pages) < 5 {
		t.Skip("no suitable host")
	}
	cfg := DefaultConfig()
	cfg.Agents = 1
	cfg.PolitenessDelay = 2
	cfg.RespectRobots = false
	c := New(w, cfg)
	var urls []string
	for _, pid := range big.Pages {
		urls = append(urls, w.URL(pid))
	}
	c.Seed(urls)
	st := c.Run()
	fetchedFromBig := 0
	for pid := range c.Pages() {
		if w.Pages[pid].Host == big.ID {
			fetchedFromBig++
		}
	}
	minDuration := float64(fetchedFromBig-1) * cfg.PolitenessDelay
	if st.VirtualSeconds < minDuration {
		t.Fatalf("crawl of %d same-host pages took %.1fs virtual, politeness requires ≥ %.1fs",
			fetchedFromBig, st.VirtualSeconds, minDuration)
	}
}

func TestRecrawlConditionalRequests(t *testing.T) {
	w := testWeb()
	c := New(w, DefaultConfig())
	seedAll(w, c)
	c.Run()
	st := c.Recrawl(5, false)
	if st.Pages == 0 {
		t.Fatal("recrawl considered no pages")
	}
	if st.NotModified == 0 {
		t.Fatal("recrawl saw no 304s; conditional requests not working")
	}
	if st.ConditionalRequests != st.NotModified+st.Refetched+st.Failures {
		t.Fatalf("request accounting inconsistent: %+v", st)
	}
}

func TestRecrawlSitemapsSkipRequests(t *testing.T) {
	w := testWeb()
	c := New(w, DefaultConfig())
	seedAll(w, c)
	c.Run()
	plain := c.Recrawl(5, false)
	withMaps := c.Recrawl(5, true)
	if withMaps.SkippedViaSitemap == 0 {
		t.Skip("no sitemap hosts among crawled pages")
	}
	if withMaps.ConditionalRequests >= plain.ConditionalRequests {
		t.Fatalf("sitemaps did not reduce requests: %d vs %d",
			withMaps.ConditionalRequests, plain.ConditionalRequests)
	}
}

func TestRecrawlUpdatesChangedPages(t *testing.T) {
	w := testWeb()
	c := New(w, DefaultConfig())
	seedAll(w, c)
	c.Run()
	st := c.Recrawl(90, false) // long gap: most pages changed
	if st.Refetched == 0 {
		t.Fatal("no pages refetched after 89 virtual days")
	}
	for _, p := range c.Pages() {
		if p.Day != 90 && p.LastMod > 1 {
			// Pages whose content changed must have been updated.
			if w.LastModified(p.PageID, 90) > p.LastMod {
				t.Fatalf("page %s stale after recrawl: lastmod %d, actual %d",
					p.URL, p.LastMod, w.LastModified(p.PageID, 90))
			}
		}
	}
}

func TestConsistentVsModChurn(t *testing.T) {
	// The crawler-level variant of experiment C2: count hosts that change
	// owner when one agent leaves a pool of 8.
	w := testWeb()
	hosts := make([]string, len(w.Hosts))
	for i, h := range w.Hosts {
		hosts[i] = h.Name
	}
	countMoved := func(policy AssignmentPolicy) int {
		cfg := DefaultConfig()
		cfg.Agents = 8
		cfg.Assignment = policy
		c := New(w, cfg)
		before := make(map[string]int, len(hosts))
		for _, h := range hosts {
			before[h] = c.assign.owner(h)
		}
		c.assign.removeAgent(7)
		moved := 0
		for _, h := range hosts {
			if before[h] != c.assign.owner(h) && before[h] != 7 {
				moved++
			}
		}
		// Hosts owned by the departed agent must move; count separately.
		for _, h := range hosts {
			if before[h] == 7 {
				moved++
			}
		}
		return moved
	}
	consistent := countMoved(AssignConsistent)
	mod := countMoved(AssignMod)
	if consistent >= mod {
		t.Fatalf("consistent hashing moved %d hosts, mod moved %d; expected far fewer", consistent, mod)
	}
}

func TestEmptySeedRunsCleanly(t *testing.T) {
	w := testWeb()
	c := New(w, DefaultConfig())
	st := c.Run()
	if st.PagesFetched != 0 || st.Coverage != 0 {
		t.Fatalf("unseeded crawl fetched %d pages", st.PagesFetched)
	}
}

func TestFlakyHostsRetried(t *testing.T) {
	w := testWeb()
	c := New(w, DefaultConfig())
	seedAll(w, c)
	st := c.Run()
	if st.TransientRetries == 0 {
		t.Skip("no flaky hosts hit in this configuration")
	}
	// Retries should recover most transient failures: permanent failures
	// must stay well below retry volume.
	if st.FetchFailures > st.TransientRetries {
		t.Fatalf("failures %d exceed retries %d; retry logic ineffective", st.FetchFailures, st.TransientRetries)
	}
}

func TestRegionAffinityKeepsTrafficLocal(t *testing.T) {
	w := testWeb()
	run := func(policy AssignmentPolicy) Stats {
		cfg := DefaultConfig()
		cfg.Agents = 6
		cfg.Regions = 3
		cfg.Assignment = policy
		c := New(w, cfg)
		seedAll(w, c)
		return c.Run()
	}
	affinity := run(AssignRegionAffinity)
	blind := run(AssignMod)
	if affinity.WANBytes != 0 {
		t.Fatalf("region-affinity crawl moved %d bytes across regions, want 0", affinity.WANBytes)
	}
	if blind.WANBytes == 0 {
		t.Fatal("region-blind crawl moved no bytes across regions; accounting broken")
	}
	if affinity.Coverage < 0.85 {
		t.Fatalf("region-affinity coverage %.2f", affinity.Coverage)
	}
}

func TestRegionAffinityChurn(t *testing.T) {
	// Removing an agent must reassign its hosts within the same region.
	w := testWeb()
	cfg := DefaultConfig()
	cfg.Agents = 6
	cfg.Regions = 3
	cfg.Assignment = AssignRegionAffinity
	c := New(w, cfg)
	for _, h := range w.Hosts {
		owner := c.assign.owner(h.Name)
		if owner%3 != h.Region%3 {
			t.Fatalf("host %s (region %d) owned by agent %d (region %d)", h.Name, h.Region, owner, owner%3)
		}
	}
	c.assign.removeAgent(0) // region 0 still has agent 3
	for _, h := range w.Hosts {
		owner := c.assign.owner(h.Name)
		if owner == 0 {
			t.Fatal("removed agent still owns hosts")
		}
		if owner%3 != h.Region%3 {
			t.Fatalf("after churn: host %s (region %d) owned by out-of-region agent %d", h.Name, h.Region, owner)
		}
	}
}

func TestPriorityFrontierFrontLoadsQuality(t *testing.T) {
	// Seed a single page so discovery order matters: FIFO explores in
	// BFS order while the prioritized frontier follows citations.
	w := testWeb()
	var seeds []string
	for _, p := range w.Pages {
		if !p.Private && len(p.Links) >= 5 {
			seeds = append(seeds, w.URL(p.ID))
			if len(seeds) == 5 {
				break
			}
		}
	}
	run := func(priority bool) []int {
		cfg := DefaultConfig()
		cfg.Agents = 1 // one agent: a single global fetch order to compare
		cfg.PriorityFrontier = priority
		c := New(w, cfg)
		c.Seed(seeds)
		c.Run()
		return c.FetchOrder()
	}
	quality := func(order []int) float64 {
		// Total true in-degree captured in the first quarter of the crawl.
		n := len(order) / 4
		sum := 0
		for _, pid := range order[:n] {
			sum += w.Pages[pid].InDegree
		}
		return float64(sum)
	}
	fifo := run(false)
	prio := run(true)
	if len(fifo) == 0 || len(prio) == 0 {
		t.Fatal("empty crawls")
	}
	if quality(prio) <= quality(fifo) {
		t.Fatalf("priority frontier captured in-degree %.0f in its first quarter, FIFO %.0f; prioritization must front-load quality",
			quality(prio), quality(fifo))
	}
	// Coverage must not suffer.
	if len(prio) < len(fifo)*9/10 {
		t.Fatalf("priority crawl fetched %d pages, FIFO %d", len(prio), len(fifo))
	}
}

func TestPriorityHintsBoostSeeds(t *testing.T) {
	w := testWeb()
	cfg := DefaultConfig()
	cfg.Agents = 1
	cfg.PriorityFrontier = true
	c := New(w, cfg)
	// Hint a low-in-degree page to the front.
	var target int = -1
	for _, p := range w.Pages {
		if p.InDegree == 0 && !p.Private {
			target = p.ID
			break
		}
	}
	if target < 0 {
		t.Skip("no zero-indegree page")
	}
	c.SetPriorityHint(w.URL(target), 1e6)
	var urls []string
	for pid := range w.Pages {
		urls = append(urls, w.URL(pid))
	}
	c.Seed(urls)
	c.Run()
	order := c.FetchOrder()
	for i, pid := range order {
		if pid == target {
			if i > len(order)/10 {
				t.Fatalf("hinted page fetched at position %d of %d", i, len(order))
			}
			return
		}
	}
	t.Fatal("hinted page never fetched")
}
