package crawler

import (
	"container/heap"
	"math/rand"

	"dwr/internal/dnssim"
	"dwr/internal/randx"
	"dwr/internal/robots"
	"dwr/internal/simweb"
	"dwr/internal/textproc"
)

// frontierItem is one URL awaiting download.
type frontierItem struct {
	url      string
	readyAt  float64 // virtual seconds; politeness/backoff gate
	retries  int
	priority float64 // citations observed so far (priority mode)
	idx      int     // heap index, maintained by frontier.Swap
}

// frontier is a min-heap of frontierItems: by readyAt in FIFO-ish mode,
// or by descending priority (citation count at discovery) when the
// crawler runs a prioritized frontier — the paper's "prioritize
// high-quality objects". Progress under politeness is safe either way:
// a requeued item carries the earliest legal start time, and the thread
// clock advances to it.
type frontier struct {
	items      []*frontierItem
	byPriority bool
}

func (f frontier) Len() int { return len(f.items) }
func (f frontier) Less(i, j int) bool {
	a, b := f.items[i], f.items[j]
	if f.byPriority {
		if a.priority != b.priority {
			return a.priority > b.priority
		}
	}
	return a.readyAt < b.readyAt
}
func (f frontier) Swap(i, j int) {
	f.items[i], f.items[j] = f.items[j], f.items[i]
	f.items[i].idx = i
	f.items[j].idx = j
}
func (f *frontier) Push(x interface{}) {
	it := x.(*frontierItem)
	it.idx = len(f.items)
	f.items = append(f.items, it)
}
func (f *frontier) Pop() interface{} {
	old := f.items
	n := len(old)
	it := old[n-1]
	it.idx = -1
	f.items = old[:n-1]
	return it
}

// floatHeap is a min-heap of thread free-at times.
type floatHeap []float64

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// agent is one crawling process. It runs a private discrete-event loop:
// ThreadsPerAgent simulated connections drain the frontier under
// per-host politeness, advancing the agent's virtual clock.
type agent struct {
	id      int
	c       *Crawler
	rng     *rand.Rand
	clock   float64
	threads floatHeap
	front   frontier
	seen    map[string]bool // every URL ever enqueued here
	cites   map[string]int  // citations observed per URL (priority signal)
	inFront map[string]*frontierItem
	done    map[string]bool // URLs fetched successfully
	known   map[string]bool // most-cited URLs every agent starts with
	sent    map[string]bool // URLs already exchanged away
	outbox  map[int][]string
	polite  *robots.Politeness
	rules   map[string]*robots.Rules
	dns     *dnssim.Cache
	fetched int
}

func newAgent(id int, c *Crawler) *agent {
	a := &agent{
		id:      id,
		c:       c,
		rng:     randx.New(c.cfg.Seed*1000 + int64(id)),
		seen:    make(map[string]bool),
		cites:   make(map[string]int),
		inFront: make(map[string]*frontierItem),
		done:    make(map[string]bool),
		known:   make(map[string]bool),
		sent:    make(map[string]bool),
		outbox:  make(map[int][]string),
		polite:  robots.NewPoliteness(c.cfg.PolitenessDelay),
		rules:   make(map[string]*robots.Rules),
		dns:     dnssim.NewCache(c.resolver),
	}
	a.threads = make(floatHeap, c.cfg.ThreadsPerAgent)
	a.front.byPriority = c.cfg.PriorityFrontier
	heap.Init(&a.threads)
	heap.Init(&a.front)
	return a
}

// enqueue adds a URL to the frontier unless the agent has already seen
// it. It returns true if the URL was new.
func (a *agent) enqueue(url string, readyAt float64) bool {
	a.cites[url]++
	if a.seen[url] {
		// A repeat citation raises the queued item's priority in place —
		// the frontier reorders dynamically as evidence accumulates.
		if a.front.byPriority {
			if it, ok := a.inFront[url]; ok && it.idx >= 0 {
				it.priority++
				heap.Fix(&a.front, it.idx)
			}
		}
		return false
	}
	a.seen[url] = true
	it := &frontierItem{
		url: url, readyAt: readyAt,
		priority: float64(a.cites[url]) + a.c.seedPriority(url),
	}
	heap.Push(&a.front, it)
	if a.front.byPriority {
		a.inFront[url] = it
	}
	return true
}

// pending returns the frontier contents (used when the agent fails and
// its work must move to other agents).
func (a *agent) pending() []*frontierItem {
	out := make([]*frontierItem, len(a.front.items))
	copy(out, a.front.items)
	return out
}

// drain processes the frontier until it is empty. It returns true if at
// least one URL was processed.
func (a *agent) drain() bool {
	did := false
	for a.front.Len() > 0 {
		item := heap.Pop(&a.front).(*frontierItem)
		delete(a.inFront, item.url)
		a.process(item)
		did = true
	}
	return did
}

// process downloads one URL (or requeues it when politeness or transient
// failures demand), extracts links, and routes discoveries.
func (a *agent) process(item *frontierItem) {
	cfg := &a.c.cfg
	host, path, ok := simweb.SplitURL(item.url)
	if !ok {
		return
	}

	// Robots filtering happens before any fetch work.
	if cfg.RespectRobots {
		r := a.robotsFor(host)
		if !r.Allowed(path) {
			a.c.stats.RobotsSkipped++
			return
		}
	}

	threadFree := heap.Pop(&a.threads).(float64)
	start := threadFree
	if item.readyAt > start {
		start = item.readyAt
	}
	var crawlDelay float64
	if r := a.rules[host]; r != nil {
		crawlDelay = r.CrawlDelay
	}
	if acquired, earliest := a.polite.TryAcquire(host, start, crawlDelay); !acquired {
		// Host not yet accessible: requeue at the earliest legal time.
		item.readyAt = earliest
		heap.Push(&a.front, item)
		if a.front.byPriority {
			a.inFront[item.url] = item
		}
		heap.Push(&a.threads, threadFree)
		return
	}

	// DNS resolution (cached or authoritative).
	var dnsLat float64
	if cfg.UseDNSCache {
		_, dnsLat = a.dns.Lookup(host, start)
	} else {
		_, dnsLat = a.c.resolver.Lookup(host)
	}

	res := a.c.web.Fetch(a.rng, item.url, cfg.Day, -1)
	end := start + dnsLat/1000 + res.LatencyMs/1000
	a.polite.Release(host, end, crawlDelay)
	heap.Push(&a.threads, end)
	if end > a.clock {
		a.clock = end
	}

	switch res.Status {
	case simweb.StatusUnavailable:
		if item.retries < cfg.MaxRetries {
			item.retries++
			item.readyAt = end + cfg.RetryBackoff*float64(item.retries)
			a.c.stats.TransientRetries++
			heap.Push(&a.front, item)
			if a.front.byPriority {
				a.inFront[item.url] = item
			}
			return
		}
		a.c.stats.FetchFailures++
	case simweb.StatusNotFound:
		a.c.stats.FetchFailures++
	case simweb.StatusOK:
		a.handleFetched(item.url, res, end)
	}
}

// handleFetched records a successful download and routes extracted links.
func (a *agent) handleFetched(url string, res simweb.FetchResult, at float64) {
	c := a.c
	a.fetched++
	c.stats.PagesFetched++
	c.stats.BytesDownloaded += int64(len(res.HTML))
	a.done[url] = true

	// Geographic accounting: bytes an agent pulls from another region
	// cross the WAN (§3: "carefully distribute Web crawlers across
	// distinct geographic locations").
	if regions := c.cfg.Regions; regions > 1 {
		if host, _, ok := simweb.SplitURL(url); ok {
			if h := c.web.HostByName(host); h != nil && h.Region%regions != a.id%regions {
				c.stats.WANBytes += int64(len(res.HTML))
			}
		}
	}

	pid := c.web.PageByURL(url)
	if pid >= 0 {
		if _, dup := c.collected[pid]; dup {
			c.stats.DuplicateFetches++
		} else {
			c.fetchOrder = append(c.fetchOrder, pid)
		}
		c.collected[pid] = &Page{
			URL: url, PageID: pid, Agent: a.id,
			HTML: res.HTML, Day: c.cfg.Day, LastMod: res.LastModified,
			FetchedAt: at,
		}
		if c.onPage != nil {
			c.onPage(c.collected[pid])
		}
	}

	doc := textproc.ParseHTML(res.HTML)
	for _, href := range doc.Links {
		abs := simweb.ResolveLink(url, href)
		if abs == "" {
			continue
		}
		a.route(abs, at)
	}
}

// route sends a discovered URL to its owner: locally enqueued when this
// agent owns the host (link locality makes this the common case), or
// placed in the batched outbox otherwise. URLs in the shared most-cited
// seed set are never exchanged — the paper's power-law optimization.
func (a *agent) route(url string, at float64) {
	host, _, ok := simweb.SplitURL(url)
	if !ok {
		return
	}
	owner := a.c.assign.owner(host)
	if owner == a.id {
		a.enqueue(url, at)
		return
	}
	if a.known[url] {
		a.c.stats.URLsSuppressed++
		return
	}
	if a.sent[url] {
		return
	}
	a.sent[url] = true
	a.outbox[owner] = append(a.outbox[owner], url)
	if len(a.outbox[owner]) >= a.c.cfg.BatchSize {
		a.flush(owner)
	}
}

// flush sends one batched exchange message to the owner agent.
func (a *agent) flush(owner int) bool {
	batch := a.outbox[owner]
	if len(batch) == 0 {
		return false
	}
	a.outbox[owner] = nil
	a.c.stats.ExchangeMessages++
	a.c.stats.URLsExchanged += len(batch)
	delivered := false
	for _, u := range batch {
		if a.c.deliverNew(u, a.clock) {
			delivered = true
		}
	}
	return delivered
}

// flushAll flushes every outbox; it returns true if any receiver gained
// a URL it had not seen.
func (a *agent) flushAll() bool {
	delivered := false
	for owner := range a.outbox {
		if a.flush(owner) {
			delivered = true
		}
	}
	return delivered
}

// robotsFor returns (fetching and caching if necessary) the robots rules
// of a host. Fetching robots.txt is charged as one crawl request.
func (a *agent) robotsFor(host string) *robots.Rules {
	if r, ok := a.rules[host]; ok {
		return r
	}
	body := a.c.web.Robots(host)
	a.c.stats.RobotsFetches++
	r := robots.Parse(body, "dwr")
	a.rules[host] = r
	return r
}
