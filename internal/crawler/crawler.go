// Package crawler implements the distributed Web crawler of Section 3:
// multiple crawling agents, each owning a set of Web servers, fetching in
// parallel under politeness constraints, exchanging discovered URLs in
// batches, tolerating slow/flaky servers and agent failures, and
// scheduling re-crawls with If-Modified-Since and sitemaps.
//
// The crawl runs on virtual time: server latency, DNS latency, and
// politeness delays advance per-agent clocks, so Web-scale pacing rules
// ("wait several seconds between accesses") cost microseconds of wall
// time.
package crawler

import (
	"fmt"

	"dwr/internal/chash"
	"dwr/internal/dnssim"
	"dwr/internal/simweb"
)

// AssignmentPolicy selects how hosts are mapped to agents.
type AssignmentPolicy int

// Supported assignment policies (paper §3, Partitioning/Dependability).
const (
	// AssignMod hashes the host name modulo the agent count — the
	// "trivial, but reasonable" baseline. Cheap, balanced, but nearly all
	// hosts move when an agent joins or leaves.
	AssignMod AssignmentPolicy = iota
	// AssignConsistent uses a consistent-hashing ring (UbiCrawler),
	// moving only ~1/n of hosts on churn.
	AssignConsistent
	// AssignRegionAffinity assigns each host to an agent in the host's
	// own geographic region (hashing among that region's agents) — the
	// geographic partition of Exposto et al. the paper cites for
	// reducing wide-area download traffic. Agents live in region
	// id mod Config.Regions.
	AssignRegionAffinity
)

// String implements fmt.Stringer.
func (p AssignmentPolicy) String() string {
	switch p {
	case AssignMod:
		return "mod-hash"
	case AssignConsistent:
		return "consistent-hash"
	case AssignRegionAffinity:
		return "region-affinity"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config controls a distributed crawl.
type Config struct {
	Agents          int
	ThreadsPerAgent int // parallel connections per agent
	Assignment      AssignmentPolicy
	BatchSize       int     // URLs per exchange message
	SeedMostCited   int     // most-cited URLs pre-loaded into every agent
	PolitenessDelay float64 // default seconds between accesses to one host
	MaxRetries      int     // retries for transient (503) failures
	RetryBackoff    float64 // seconds added per retry
	UseDNSCache     bool
	DNSLatencyMs    float64
	RespectRobots   bool
	// PriorityFrontier orders each agent's frontier by the number of
	// citations a URL has accumulated so far (most-cited first) instead
	// of discovery order — the paper's "prioritize high-quality objects"
	// and its concluding open problem of frontier prioritization.
	PriorityFrontier bool
	Regions          int // agent regions for AssignRegionAffinity (0 = single region)
	Day              int // virtual day the crawl happens on
	Seed             int64
}

// DefaultConfig returns a reasonable crawl configuration for the
// experiments.
func DefaultConfig() Config {
	return Config{
		Agents:          4,
		ThreadsPerAgent: 64,
		Assignment:      AssignConsistent,
		BatchSize:       64,
		SeedMostCited:   0,
		PolitenessDelay: 2,
		MaxRetries:      3,
		RetryBackoff:    30,
		UseDNSCache:     true,
		DNSLatencyMs:    60,
		RespectRobots:   true,
		Day:             1,
		Seed:            1,
	}
}

// Stats summarizes a finished crawl.
type Stats struct {
	PagesFetched     int     // successful page downloads (incl. refetches after agent failure)
	DistinctPages    int     // distinct pages obtained
	FetchFailures    int     // fetch attempts that failed (503 after retries, 404)
	TransientRetries int     // 503 responses retried
	RobotsFetches    int     // robots.txt downloads
	RobotsSkipped    int     // URLs skipped because robots disallowed them
	URLsExchanged    int     // URLs sent between agents
	ExchangeMessages int     // batched exchange messages
	URLsSuppressed   int     // exchanges avoided thanks to most-cited seeding
	WANBytes         int64   // HTML bytes fetched by an agent outside the host's region
	DNSQueries       int     // authoritative DNS lookups
	DNSHitRatio      float64 // DNS cache hit ratio (0 when cache disabled)
	Coverage         float64 // distinct pages / crawlable pages
	VirtualSeconds   float64 // max agent clock at completion
	PerAgentFetches  []int   // successful fetches per agent
	DuplicateFetches int     // pages fetched more than once (agent failure re-crawl overlap)
	BytesDownloaded  int64   // total HTML bytes transferred
}

// Page is one crawled page as delivered to the indexing pipeline.
type Page struct {
	URL     string
	PageID  int // simweb global page ID (resolved for convenience)
	Agent   int
	HTML    string
	Day     int
	LastMod int
	// FetchedAt is the fetching agent's virtual clock (seconds) when the
	// download completed — the timestamp freshness lag is measured from
	// in the streaming crawl→index pipeline.
	FetchedAt float64
}

// Crawler coordinates a set of agents over a simulated Web.
type Crawler struct {
	cfg      Config
	web      *simweb.Web
	resolver *dnssim.Resolver
	agents   []*agent
	assign   assigner
	stats    Stats
	// collected holds fetch results keyed by page ID; refetches overwrite.
	collected map[int]*Page
	// fetchOrder records page IDs in the order they were first fetched —
	// the crawl prefix whose quality frontier prioritization improves.
	fetchOrder []int
	// priorityHints boosts seed URLs known to be important (e.g. from a
	// previous crawl's citation counts).
	priorityHints map[string]float64
	// onPage, when set, streams every successful download (including
	// refetches) to the indexing pipeline the moment it happens, in
	// deterministic crawl order.
	onPage func(*Page)
}

// OnPage registers a callback invoked synchronously for every
// successful page download, in the crawler's deterministic fetch order.
// This is the streaming hook that lets indexing run while the crawl is
// still in progress; the callback must not retain p.HTML beyond the
// call if it wants to keep memory bounded. Set before Run.
func (c *Crawler) OnPage(fn func(p *Page)) { c.onPage = fn }

// assigner abstracts the two assignment policies plus membership change.
type assigner interface {
	owner(host string) int
	addAgent(id int)
	removeAgent(id int)
}

type modAssign struct {
	ids []int
}

func (m *modAssign) owner(host string) int {
	if len(m.ids) == 0 {
		return -1
	}
	return m.ids[int(hashHost(host)%uint64(len(m.ids)))]
}
func (m *modAssign) addAgent(id int) { m.ids = append(m.ids, id) }
func (m *modAssign) removeAgent(id int) {
	for i, v := range m.ids {
		if v == id {
			m.ids = append(m.ids[:i], m.ids[i+1:]...)
			return
		}
	}
}

func hashHost(host string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(host); i++ {
		h ^= uint64(host[i])
		h *= 1099511628211
	}
	// splitmix-style finalize for spread
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

// regionAssign keeps each host's crawl traffic inside its region: the
// owner is drawn (by hash) from the agents of the host's region, falling
// back to the whole pool when that region has no agents.
type regionAssign struct {
	web     *simweb.Web
	regions int
	agents  map[int][]int // region -> agent IDs
	all     []int
}

func (r *regionAssign) owner(host string) int {
	if len(r.all) == 0 {
		return -1
	}
	candidates := r.all
	if h := r.web.HostByName(host); h != nil {
		if regional := r.agents[h.Region%r.regions]; len(regional) > 0 {
			candidates = regional
		}
	}
	return candidates[int(hashHost(host)%uint64(len(candidates)))]
}

func (r *regionAssign) addAgent(id int) {
	if r.agents == nil {
		r.agents = make(map[int][]int)
	}
	region := id % r.regions
	r.agents[region] = append(r.agents[region], id)
	r.all = append(r.all, id)
}

func (r *regionAssign) removeAgent(id int) {
	region := id % r.regions
	r.agents[region] = removeInt(r.agents[region], id)
	r.all = removeInt(r.all, id)
}

func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type ringAssign struct {
	ring *chash.Ring
}

func (r *ringAssign) owner(host string) int {
	m := r.ring.Assign(host)
	if m == "" {
		return -1
	}
	var id int
	fmt.Sscanf(m, "agent%d", &id)
	return id
}
func (r *ringAssign) addAgent(id int)    { r.ring.Add(fmt.Sprintf("agent%d", id)) }
func (r *ringAssign) removeAgent(id int) { r.ring.Remove(fmt.Sprintf("agent%d", id)) }

// New creates a crawler over web with the given configuration.
func New(web *simweb.Web, cfg Config) *Crawler {
	if cfg.Agents <= 0 {
		cfg.Agents = 1
	}
	if cfg.ThreadsPerAgent <= 0 {
		cfg.ThreadsPerAgent = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	c := &Crawler{
		cfg:       cfg,
		web:       web,
		resolver:  dnssim.NewResolver(cfg.Seed+1000, cfg.DNSLatencyMs),
		collected: make(map[int]*Page),
	}
	switch cfg.Assignment {
	case AssignConsistent:
		c.assign = &ringAssign{ring: chash.NewRing(128)}
	case AssignRegionAffinity:
		c.assign = &regionAssign{web: web, regions: max(1, cfg.Regions)}
	default:
		c.assign = &modAssign{}
	}
	for i := 0; i < cfg.Agents; i++ {
		c.assign.addAgent(i)
		c.agents = append(c.agents, newAgent(i, c))
	}
	return c
}

// Stats returns the crawl statistics accumulated so far.
func (c *Crawler) Stats() Stats {
	s := c.stats
	s.DistinctPages = len(c.collected)
	if n := c.web.CrawlablePages(); n > 0 {
		s.Coverage = float64(len(c.collected)) / float64(n)
	}
	s.PerAgentFetches = make([]int, len(c.agents))
	for i, a := range c.agents {
		if a != nil {
			s.PerAgentFetches[i] = a.fetched
		}
	}
	for _, a := range c.agents {
		if a != nil && a.clock > s.VirtualSeconds {
			s.VirtualSeconds = a.clock
		}
	}
	s.DNSQueries = c.resolver.Queries()
	if c.cfg.UseDNSCache {
		var hits, misses int
		for _, a := range c.agents {
			if a == nil {
				continue
			}
			h, m := a.dns.Stats()
			hits += h
			misses += m
		}
		if hits+misses > 0 {
			s.DNSHitRatio = float64(hits) / float64(hits+misses)
		}
	}
	return s
}

// Pages returns the crawled pages, keyed by simweb page ID.
func (c *Crawler) Pages() map[int]*Page { return c.collected }

// FetchOrder returns page IDs in first-fetch order.
func (c *Crawler) FetchOrder() []int {
	return append([]int(nil), c.fetchOrder...)
}

// SetPriorityHint boosts a URL's frontier priority (priority mode only),
// e.g. from a previous crawl's citation counts.
func (c *Crawler) SetPriorityHint(url string, boost float64) {
	if c.priorityHints == nil {
		c.priorityHints = make(map[string]float64)
	}
	c.priorityHints[url] = boost
}

// seedPriority returns the hint boost for a URL (0 if none).
func (c *Crawler) seedPriority(url string) float64 {
	return c.priorityHints[url]
}

// Seed injects starting URLs into their owning agents' frontiers.
func (c *Crawler) Seed(urls []string) {
	for _, u := range urls {
		c.deliverNew(u, 0)
	}
	if c.cfg.SeedMostCited > 0 {
		for _, pid := range c.web.MostCited(c.cfg.SeedMostCited) {
			u := c.web.URL(pid)
			c.deliverNew(u, 0)
			for _, a := range c.agents {
				if a != nil {
					a.known[u] = true
				}
			}
		}
	}
}

// deliverNew routes a URL to its owning agent's frontier; it returns
// true if the receiving agent had not seen the URL before.
func (c *Crawler) deliverNew(url string, readyAt float64) bool {
	host, _, ok := simweb.SplitURL(url)
	if !ok {
		return false
	}
	owner := c.assign.owner(host)
	if owner < 0 || owner >= len(c.agents) || c.agents[owner] == nil {
		return false
	}
	return c.agents[owner].enqueue(url, readyAt)
}

// Run executes the crawl to completion: agents drain their frontiers,
// exchange batched URLs, and repeat until no URLs remain anywhere.
func (c *Crawler) Run() Stats {
	for {
		progressed := false
		for _, a := range c.agents {
			if a == nil {
				continue
			}
			if a.drain() {
				progressed = true
			}
		}
		// Flush every agent's outboxes (end-of-round exchange).
		delivered := false
		for _, a := range c.agents {
			if a == nil {
				continue
			}
			if a.flushAll() {
				delivered = true
			}
		}
		if !progressed && !delivered {
			break
		}
	}
	return c.Stats()
}

// FailAgent removes agent id mid-crawl: its hosts are reassigned by the
// assignment policy and its pending frontier is re-delivered to the new
// owners (the paper: "it is then necessary to re-allocate the URLs of
// the faulty agent to others"). Already-crawled pages whose hosts moved
// may be fetched again by the new owner; Stats.DuplicateFetches counts
// those.
func (c *Crawler) FailAgent(id int) {
	if id < 0 || id >= len(c.agents) || c.agents[id] == nil {
		return
	}
	failed := c.agents[id]
	c.agents[id] = nil
	c.assign.removeAgent(id)
	// Re-deliver the failed agent's pending URLs and re-announce the URLs
	// it had crawled, so new owners can verify/refetch their hosts.
	for _, item := range failed.pending() {
		c.deliverNew(item.url, 0)
	}
	for u := range failed.done {
		c.deliverNew(u, 0)
	}
}

// AddAgent adds a new agent with the given id (which must not be in use)
// to the pool; subsequently discovered URLs for hosts it now owns flow to
// it.
func (c *Crawler) AddAgent(id int) {
	for id >= len(c.agents) {
		c.agents = append(c.agents, nil)
	}
	if c.agents[id] != nil {
		return
	}
	c.agents[id] = newAgent(id, c)
	c.assign.addAgent(id)
}
