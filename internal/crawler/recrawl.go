package crawler

import (
	"dwr/internal/randx"
	"dwr/internal/simweb"
)

// RecrawlStats summarizes an incremental re-crawl pass — the paper's
// freshness maintenance discussion (Section 3, Communication): the
// crawler polls for changes, If-Modified-Since reduces (but does not
// eliminate) the polling cost, and server-provided sitemaps eliminate
// even the conditional requests for unchanged pages.
type RecrawlStats struct {
	Pages               int   // pages considered for refresh
	ConditionalRequests int   // HTTP requests issued with If-Modified-Since
	NotModified         int   // 304 answers (request made, body saved)
	Refetched           int   // 200 answers (page actually changed, or server non-conforming)
	SkippedViaSitemap   int   // pages not even requested thanks to sitemap lastmod
	Failures            int   // transient failures during the pass
	BytesDownloaded     int64 // body bytes transferred
}

// Recrawl refreshes every collected page as of virtual day `day`. With
// useSitemaps, hosts that expose a sitemap are consulted first and
// unchanged pages are skipped without any HTTP request; all other pages
// get one conditional request each. The crawled copies are updated in
// place.
func (c *Crawler) Recrawl(day int, useSitemaps bool) RecrawlStats {
	var st RecrawlStats
	rng := randx.New(c.cfg.Seed + int64(day)*7919)

	// Group collected pages by host so sitemaps are fetched once.
	byHost := make(map[string][]*Page)
	for _, p := range c.collected {
		host, _, ok := simweb.SplitURL(p.URL)
		if !ok {
			continue
		}
		byHost[host] = append(byHost[host], p)
	}

	for host, pages := range byHost {
		var sitemapMod map[string]int
		if useSitemaps {
			if entries := c.web.Sitemap(host, day); entries != nil {
				sitemapMod = make(map[string]int, len(entries))
				for _, e := range entries {
					sitemapMod[e.URL] = e.LastMod
				}
			}
		}
		for _, p := range pages {
			st.Pages++
			if sitemapMod != nil {
				if lm, ok := sitemapMod[p.URL]; ok && lm <= p.LastMod {
					st.SkippedViaSitemap++
					continue
				}
			}
			st.ConditionalRequests++
			res := c.web.Fetch(rng, p.URL, day, p.LastMod)
			switch res.Status {
			case simweb.StatusNotModified:
				st.NotModified++
			case simweb.StatusOK:
				st.Refetched++
				st.BytesDownloaded += int64(len(res.HTML))
				p.HTML = res.HTML
				p.Day = day
				p.LastMod = res.LastModified
			default:
				st.Failures++
			}
		}
	}
	return st
}
