// Package conc provides the bounded worker-pool primitive underneath
// the parallel scatter-gather broker (internal/qproc) and concurrent
// index construction (internal/index).
//
// The design contract that keeps real parallelism compatible with the
// simulation's determinism: a task writes only state owned by its own
// index i (a per-item slot in a results slice), and the caller
// aggregates those slots serially after Do returns, in the same order
// the serial loop would have produced them. Integer counters, float
// accumulations, and RNG draws therefore happen in exactly the serial
// order, and results are byte-identical at any worker count.
package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested fan-out width: values <= 0 mean
// GOMAXPROCS, anything else is returned as-is.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Do runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns once every call has
// finished. workers <= 1 (after resolution) runs inline on the calling
// goroutine — the serial baseline. fn must only write state owned by
// item i; cross-item aggregation belongs in the caller, after Do.
func Do(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Work-stealing by atomic counter: cheap, and long items do not
	// stall the queue behind them.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
