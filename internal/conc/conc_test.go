package conc

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]int32, n)
			Do(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestDoSerialRunsInOrder(t *testing.T) {
	var order []int
	Do(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}
