package conc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]int32, n)
			Do(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestDoSerialRunsInOrder(t *testing.T) {
	var order []int
	Do(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do out of order: %v", order)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestPipelineOrderingPerStage(t *testing.T) {
	const n, stages = 50, 4
	seen := make([][]int, stages)
	done := make([][]bool, stages)
	for s := range done {
		done[s] = make([]bool, n)
	}
	var mu sync.Mutex
	Pipeline(n, stages, func(s, i int) {
		mu.Lock()
		defer mu.Unlock()
		if s > 0 && !done[s-1][i] {
			t.Errorf("stage %d saw item %d before stage %d finished it", s, i, s-1)
		}
		done[s][i] = true
		seen[s] = append(seen[s], i)
	})
	for s := 0; s < stages; s++ {
		if len(seen[s]) != n {
			t.Fatalf("stage %d ran %d items, want %d", s, len(seen[s]), n)
		}
		for i, v := range seen[s] {
			if v != i {
				t.Fatalf("stage %d processed items out of order: %v", s, seen[s])
			}
		}
	}
}

func TestPipelineSingleStageInline(t *testing.T) {
	var order []int
	Pipeline(8, 1, func(s, i int) {
		if s != 0 {
			t.Fatalf("stage %d in single-stage pipeline", s)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("single-stage pipeline out of order: %v", order)
		}
	}
}

func TestPipelineDegenerate(t *testing.T) {
	ran := false
	Pipeline(0, 3, func(s, i int) { ran = true })
	Pipeline(3, 0, func(s, i int) { ran = true })
	if ran {
		t.Fatal("degenerate Pipeline invoked fn")
	}
}
