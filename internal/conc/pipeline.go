package conc

import "sync"

// Pipeline runs fn(stage, item) for every (stage, item) pair with one
// goroutine per stage, preserving the pipeline ordering contract:
// stage s processes items strictly in order 0..n-1, and processes item
// i only after stage s-1 has finished item i. Equivalently, the calls
// observed by any single stage happen in the exact order a serial
//
//	for i { for s { fn(s, i) } }
//
// loop would issue them, so per-stage state (accumulators, postings
// being appended in document order) ends up byte-identical to the
// serial build while different stages overlap on different items.
//
// fn must only write state owned by its own stage; cross-stage
// aggregation belongs in the caller, after Pipeline returns. stages <=
// 1 runs the whole thing inline — the serial baseline.
func Pipeline(n, stages int, fn func(stage, item int)) {
	if n <= 0 || stages <= 0 {
		return
	}
	if stages == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Hand-off channels carry item indices stage to stage. Buffers are
	// sized n so a fast downstream stage never blocks a slow upstream
	// one; the indices are small and n is bounded by the corpus.
	in := make(chan int, n)
	for i := 0; i < n; i++ {
		in <- i
	}
	close(in)
	var wg sync.WaitGroup
	wg.Add(stages)
	for s := 0; s < stages; s++ {
		out := make(chan int, n)
		go func(s int, in <-chan int, out chan<- int) {
			defer wg.Done()
			for i := range in {
				fn(s, i)
				out <- i
			}
			close(out)
		}(s, in, out)
		in = out
	}
	wg.Wait()
}
