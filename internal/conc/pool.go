package conc

import "sync"

// Pool is a bounded background worker pool for maintenance work the
// caller must not block on — segment merges behind a live index being
// the motivating case. Unlike Do, submitted tasks are asynchronous:
// Submit returns immediately and the task runs on one of up to
// `workers` goroutines, so the pool bounds how much CPU maintenance can
// steal from serving.
//
// Background execution trades away the determinism contract of Do: task
// completion order depends on the scheduler. Use a Pool only for work
// whose *timing* is allowed to be nondeterministic (wall-clock serving
// modes); deterministic replays run the same work synchronously.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewPool creates a pool running at most workers tasks concurrently
// (workers <= 0 selects GOMAXPROCS).
func NewPool(workers int) *Pool {
	return &Pool{sem: make(chan struct{}, Workers(workers))}
}

// Submit schedules fn on a background goroutine. It never blocks the
// caller: the goroutine itself waits for a free slot, so bursts of
// submissions queue in the runtime rather than in the mutator's path.
func (p *Pool) Submit(fn func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		fn()
	}()
}

// Wait blocks until every task submitted so far has finished. Tests and
// shutdown paths use it to quiesce maintenance before inspecting state.
func (p *Pool) Wait() { p.wg.Wait() }
