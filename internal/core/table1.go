package core

// Table 1 of the paper organizes the system by module (crawling,
// indexing, querying) and cross-cutting issue (partitioning,
// communication, dependability, external factors). This registry maps
// every cell of that table to the components of this repository that
// implement it; the Table 1 experiment prints it, and a test asserts no
// cell is empty — i.e. the reproduction covers the paper's whole map.

// Table1Cell is one cell of the module × issue matrix.
type Table1Cell struct {
	Module     string
	Issue      string
	PaperTopic string   // the paper's wording for the cell
	Components []string // implementing packages/types in this repository
}

// Table1 returns the full module × issue coverage matrix.
func Table1() []Table1Cell {
	return []Table1Cell{
		{
			Module: "Crawling", Issue: "Partitioning",
			PaperTopic: "URL assignment",
			Components: []string{
				"crawler.AssignMod / crawler.AssignConsistent",
				"chash.Ring (consistent hashing)",
			},
		},
		{
			Module: "Crawling", Issue: "Communication",
			PaperTopic: "Re-crawling",
			Components: []string{
				"crawler.Crawler.Recrawl (If-Modified-Since, sitemaps)",
			},
		},
		{
			Module: "Crawling", Issue: "Dependability",
			PaperTopic: "URL exchanges",
			Components: []string{
				"crawler batched outboxes + most-cited seeding",
				"crawler.Crawler.FailAgent (re-allocation of a faulty agent's URLs)",
			},
		},
		{
			Module: "Crawling", Issue: "External factors",
			PaperTopic: "Web growth, content change, network topology, bandwidth, DNS, QoS of Web servers",
			Components: []string{
				"simweb (growth/change models, slow/flaky/non-conforming servers)",
				"dnssim (DNS latency + cache)",
				"robots (politeness, crawl-delay)",
				"textproc.ParseHTML (error tolerance)",
			},
		},
		{
			Module: "Indexing", Issue: "Partitioning",
			PaperTopic: "Document partitioning, term partitioning",
			Components: []string{
				"partition.RandomDocs/RoundRobinDocs/KMeansDocs/CoClusterDocs",
				"partition.RandomTerms/BinPackTerms/CoOccurTerms",
			},
		},
		{
			Module: "Indexing", Issue: "Communication",
			PaperTopic: "Re-indexing",
			Components: []string{
				"index.Merge (distributed merges)",
				"index.BuildMapReduce / index.BuildPipeline",
			},
		},
		{
			Module: "Indexing", Issue: "Dependability",
			PaperTopic: "Partial indexing, updating, merging",
			Components: []string{
				"index.SPIMIBuilder (spill runs + k-way merge)",
				"qproc.DocEngine.SetDown (answering without failed partitions)",
				"replication.LockService (index update locking)",
			},
		},
		{
			Module: "Indexing", Issue: "External factors",
			PaperTopic: "Web growth, content change, global statistics",
			Components: []string{
				"index.Stats / index.MergeStats (global vs local statistics)",
				"qproc.GlobalTwoRound (two-round protocol)",
			},
		},
		{
			Module: "Querying", Issue: "Partitioning",
			PaperTopic: "Query routing, collection selection, load balancing",
			Components: []string{
				"selection.CORI / selection.QueryDriven",
				"qproc.MultiSite routing (geo, load-aware)",
				"partition.BinPackTerms (load balancing)",
			},
		},
		{
			Module: "Querying", Issue: "Communication",
			PaperTopic: "Replication, caching",
			Components: []string{
				"replication.PrimaryBackup/Quorum/Log",
				"cache.LRU/LFU/SDC + stale serving",
			},
		},
		{
			Module: "Querying", Issue: "Dependability",
			PaperTopic: "Rank aggregation, personalization",
			Components: []string{
				"rank.MergeResults / qproc.MergeTree (broker hierarchies)",
				"replication.PrimaryBackup (consistent user state)",
			},
		},
		{
			Module: "Querying", Issue: "External factors",
			PaperTopic: "Changing user needs, user base growth, DNS",
			Components: []string{
				"querylog (topic drift, diurnal/regional patterns)",
				"queueing (G/G/c front-end capacity)",
				"capacity (growth projections)",
			},
		},
	}
}
