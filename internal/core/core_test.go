package core

import (
	"fmt"
	"strings"
	"testing"

	"dwr/internal/textproc"
)

// smallConfig returns a fast end-to-end configuration.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Web.Hosts = 40
	cfg.Web.MaxPages = 40
	cfg.Web.VocabSize = 1500
	cfg.TrainQueries = 800
	return cfg
}

func buildEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEndToEndBuildAndSearch(t *testing.T) {
	e := buildEngine(t, smallConfig())
	if e.CrawlInfo.Coverage < 0.8 {
		t.Fatalf("crawl coverage %.2f", e.CrawlInfo.Coverage)
	}
	if len(e.Docs) < 100 {
		t.Fatalf("only %d documents indexed", len(e.Docs))
	}
	// Query with a term drawn from a crawled document.
	term := e.Docs[0].Terms[len(e.Docs[0].Terms)/2]
	rs := e.Search(term, SearchOptions{K: 10})
	if len(rs) == 0 {
		t.Fatalf("no results for indexed term %q", term)
	}
	for _, r := range rs {
		if r.URL == "" || !strings.HasPrefix(r.URL, "http://") {
			t.Fatalf("result without URL: %+v", r)
		}
	}
	// Scores sorted descending.
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
}

func TestSearchFindsDocumentContainingTerm(t *testing.T) {
	e := buildEngine(t, smallConfig())
	d := e.Docs[len(e.Docs)/3]
	term := d.Terms[0]
	rs := e.Search(term, SearchOptions{K: 200})
	found := false
	for _, r := range rs {
		if r.Doc == d.Ext {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("document %d containing %q missing from its own term's results", d.Ext, term)
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	e := buildEngine(t, smallConfig())
	if rs := e.Search("   ...   ", SearchOptions{K: 10}); rs != nil {
		t.Fatalf("empty query returned %v", rs)
	}
}

func TestPartitionStrategies(t *testing.T) {
	for _, s := range []PartitionStrategy{PartitionRandom, PartitionRoundRobin, PartitionKMeans, PartitionQueryDriven} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Strategy = s
			e := buildEngine(t, cfg)
			if got := len(e.Partition.Assign); got != len(e.Docs) {
				t.Fatalf("%v partition covers %d of %d docs", s, got, len(e.Docs))
			}
			if e.Selector == nil {
				t.Fatalf("%v engine has no selector", s)
			}
			term := e.Docs[0].Terms[0]
			if rs := e.Search(term, SearchOptions{K: 5}); len(rs) == 0 {
				t.Fatalf("%v engine returned nothing for %q", s, term)
			}
			// Selective search contacts fewer partitions but still works.
			if rs := e.Search(term, SearchOptions{K: 5, SelectN: 2}); len(rs) == 0 {
				t.Fatalf("%v selective search returned nothing", s)
			}
		})
	}
}

func TestSearchDeterministic(t *testing.T) {
	a := buildEngine(t, smallConfig())
	b := buildEngine(t, smallConfig())
	term := a.Docs[0].Terms[0]
	ra := a.Search(term, SearchOptions{K: 10})
	rb := b.Search(term, SearchOptions{K: 10})
	if len(ra) != len(rb) {
		t.Fatal("same-seed engines differ in result count")
	}
	for i := range ra {
		if ra[i].Doc != rb[i].Doc {
			t.Fatalf("same-seed engines differ at rank %d", i)
		}
	}
}

func TestTable1FullyImplemented(t *testing.T) {
	cells := Table1()
	if len(cells) != 12 {
		t.Fatalf("Table 1 has %d cells, want 3 modules × 4 issues = 12", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if len(c.Components) == 0 {
			t.Errorf("cell %s/%s has no implementing components", c.Module, c.Issue)
		}
		if c.PaperTopic == "" {
			t.Errorf("cell %s/%s missing paper topic", c.Module, c.Issue)
		}
		seen[c.Module+"/"+c.Issue] = true
	}
	for _, m := range []string{"Crawling", "Indexing", "Querying"} {
		for _, i := range []string{"Partitioning", "Communication", "Dependability", "External factors"} {
			if !seen[m+"/"+i] {
				t.Errorf("missing cell %s/%s", m, i)
			}
		}
	}
}

func TestTokenizerAgreesWithQueryPath(t *testing.T) {
	// The search path must tokenize queries the same way documents were
	// tokenized, or matching silently breaks.
	raw := "The Quick? BROWN-fox"
	docTerms := textproc.Tokenize(raw)
	queryTerms := textproc.Tokenize(strings.ToLower(raw))
	if len(docTerms) != len(queryTerms) {
		t.Fatal("tokenizer asymmetry between document and query path")
	}
	for i := range docTerms {
		if docTerms[i] != queryTerms[i] {
			t.Fatal("tokenizer asymmetry between document and query path")
		}
	}
}

func TestRefreshPicksUpChanges(t *testing.T) {
	e := buildEngine(t, smallConfig())
	st, err := e.Refresh(60, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Refetched == 0 {
		t.Fatal("no pages changed over 59 virtual days; change model broken")
	}
	// A refetched page's revision token must now be searchable: rendered
	// titles carry "rev<lastmod>".
	found := false
	for _, p := range e.Crawler.Pages() {
		if p.Day != 60 || p.LastMod == 0 {
			continue
		}
		token := fmt.Sprintf("rev%d", p.LastMod)
		for _, r := range e.Search(token, SearchOptions{K: 100}) {
			if r.Doc == p.PageID {
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no refreshed page is findable by its new revision token")
	}
	// Engine still answers ordinary queries.
	if rs := e.Search(e.Docs[0].Terms[0], SearchOptions{K: 5}); len(rs) == 0 {
		t.Fatal("search broken after refresh")
	}
}

func TestSearchPhrase(t *testing.T) {
	e := buildEngine(t, smallConfig())
	// Every rendered page's visible text begins with its title words, so
	// a two-word prefix of some document is a guaranteed phrase.
	d := e.Docs[len(e.Docs)/2]
	if len(d.Terms) < 2 {
		t.Skip("short document")
	}
	phrase := d.Terms[0] + " " + d.Terms[1]
	rs := e.SearchPhrase(phrase, 50)
	found := false
	for _, r := range rs {
		if r.Doc == d.Ext {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("document %d not found for its own phrase %q", d.Ext, phrase)
	}
	// Reversed phrase should generally not match this document.
	if rs := e.SearchPhrase("zzzz yyyy", 10); len(rs) != 0 {
		t.Fatalf("nonsense phrase matched %d docs", len(rs))
	}
}
