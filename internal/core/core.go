// Package core wires the substrates into the complete distributed Web
// retrieval system the paper describes: a synthetic Web is crawled by
// distributed agents, the crawled pages are parsed and partitioned, the
// partitions are indexed, and queries are answered by a multi-site
// distributed query processor with caching and collection selection.
//
// It is the public facade the examples and command-line tools build on;
// the individual packages remain directly usable for finer-grained
// experiments.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dwr/internal/crawler"
	"dwr/internal/faultsim"
	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/querylog"
	"dwr/internal/randx"
	"dwr/internal/rank"
	"dwr/internal/selection"
	"dwr/internal/simweb"
	"dwr/internal/textproc"
)

// PartitionStrategy selects how crawled documents are split across query
// processors.
type PartitionStrategy int

// Document partitioning strategies (Section 4).
const (
	// PartitionRandom assigns documents uniformly at random.
	PartitionRandom PartitionStrategy = iota
	// PartitionRoundRobin deals documents out in turn (balanced sizes).
	PartitionRoundRobin
	// PartitionKMeans clusters documents by topic (k-means on term
	// vectors).
	PartitionKMeans
	// PartitionQueryDriven co-clusters documents by the training queries
	// that retrieve them (Puppin et al.) and enables query-driven
	// collection selection.
	PartitionQueryDriven
)

// String implements fmt.Stringer.
func (s PartitionStrategy) String() string {
	switch s {
	case PartitionRandom:
		return "random"
	case PartitionRoundRobin:
		return "round-robin"
	case PartitionKMeans:
		return "k-means"
	case PartitionQueryDriven:
		return "query-driven"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config assembles a full engine. Zero values fall back to defaults.
type Config struct {
	Seed       int64
	Web        simweb.Config
	Crawl      crawler.Config
	Index      index.Options
	Partitions int
	Strategy   PartitionStrategy
	// TrainQueries is the size of the training log used by
	// PartitionQueryDriven (ignored otherwise).
	TrainQueries int
	// Workers bounds the broker's scatter-gather fan-out: 1 = serial,
	// 0 = GOMAXPROCS. Any value produces identical results; only
	// wall-clock time changes. (Partition-build concurrency follows
	// the ambient qproc.SetDefaultOptions, which the CLIs set from the
	// same flag.)
	Workers int
	// Cache configures the two-level cache hierarchy (both levels
	// disabled at zero value).
	Cache CacheConfig
	// Faults, when non-nil, wires a deterministic fault-injection layer
	// and robustness policy under the query engine.
	Faults *FaultConfig
}

// FaultConfig describes the injected fault environment and the policy
// that answers it. All randomness derives from Seed, so a run is exactly
// reproducible.
type FaultConfig struct {
	Seed int64
	// FlakyP / SlowP / SlowMeanMs apply to every partition replica:
	// probabilistic error replies and log-normal latency spikes.
	FlakyP     float64
	SlowP      float64
	SlowMeanMs float64
	// CrashParts lists partitions whose every replica is permanently
	// dead.
	CrashParts []int
	// Windows adds partition-wide outage intervals keyed by query tick.
	Windows []faultsim.Window
	// Policy overrides qproc.DefaultFaultPolicy when non-nil.
	Policy *qproc.FaultPolicy
}

// Injector materializes the configured fault schedule.
func (f *FaultConfig) Injector() *faultsim.Injector {
	inj := faultsim.New(f.Seed)
	if f.FlakyP > 0 || f.SlowP > 0 {
		inj.Default(faultsim.Spec{FlakyP: f.FlakyP, SlowP: f.SlowP, SlowMeanMs: f.SlowMeanMs})
	}
	for _, p := range f.CrashParts {
		inj.Unit(p, faultsim.Spec{Crash: true})
	}
	for _, w := range f.Windows {
		inj.Window(w)
	}
	return inj
}

// CacheConfig sizes the engine's cache hierarchy: a broker-level result
// cache and per-partition posting-list caches.
type CacheConfig struct {
	// Capacity enables the broker result cache when > 0 (total entries).
	Capacity int
	// Shards is the result cache's lock-domain count (0 = 8).
	Shards int
	// TTLQueries expires result entries after this many cache lookups
	// (0 = never).
	TTLQueries int
	// Policy selects replacement. With qproc.CacheSDC the static set is
	// warmed from the popularity head of a generated query-log sample.
	Policy qproc.CachePolicy
	// WarmQueries is the query-log sample size used to pick the SDC
	// static set (0 picks 2000).
	WarmQueries int
	// PostingBytes enables per-partition posting-list caches when > 0
	// (bytes of decoded postings per partition server).
	PostingBytes int64
}

// DefaultConfig returns a laptop-scale end-to-end configuration.
func DefaultConfig() Config {
	web := simweb.DefaultConfig()
	web.Hosts = 80
	web.MaxPages = 60
	web.VocabSize = 3000
	return Config{
		Seed:         1,
		Web:          web,
		Crawl:        crawler.DefaultConfig(),
		Index:        index.DefaultOptions(),
		Partitions:   4,
		Strategy:     PartitionRoundRobin,
		TrainQueries: 4000,
	}
}

// Engine is a built distributed Web retrieval system.
type Engine struct {
	Config    Config
	Web       *simweb.Web
	Crawler   *crawler.Crawler
	CrawlInfo crawler.Stats
	Docs      []index.Doc
	Partition partition.DocPartition
	Query     *qproc.DocEngine
	Selector  selection.Selector // non-nil when Strategy supports selection
	urls      map[int]string     // doc ext ID -> URL
}

// Build runs the offline half of the paper's pipeline — crawl, parse,
// partition, index — and returns an engine ready to answer queries.
func Build(cfg Config) (*Engine, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	e := &Engine{Config: cfg, urls: make(map[int]string)}
	e.Web = simweb.New(cfg.Web)

	// Crawl: seed with every host's front page for full reachability.
	e.Crawler = crawler.New(e.Web, cfg.Crawl)
	var seeds []string
	for _, h := range e.Web.Hosts {
		if len(h.Pages) > 0 {
			seeds = append(seeds, e.Web.URL(h.Pages[0]))
		}
	}
	e.Crawler.Seed(seeds)
	e.CrawlInfo = e.Crawler.Run()

	// Parse crawled pages into tokenized documents.
	ids := make([]int, 0, len(e.Crawler.Pages()))
	for pid := range e.Crawler.Pages() {
		ids = append(ids, pid)
	}
	sort.Ints(ids)
	for _, pid := range ids {
		p := e.Crawler.Pages()[pid]
		doc := textproc.ParseHTML(p.HTML)
		terms := textproc.Tokenize(doc.Text)
		if len(terms) == 0 {
			continue
		}
		e.Docs = append(e.Docs, index.Doc{Ext: pid, Terms: terms})
		e.urls[pid] = p.URL
	}
	if len(e.Docs) == 0 {
		return nil, fmt.Errorf("core: crawl produced no indexable documents")
	}

	if err := e.partitionAndIndex(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) partitionAndIndex() error {
	cfg := e.Config
	rng := randx.New(cfg.Seed + 77)
	ids := make([]int, len(e.Docs))
	for i, d := range e.Docs {
		ids[i] = d.Ext
	}
	switch cfg.Strategy {
	case PartitionRandom:
		e.Partition = partition.RandomDocs(rng, ids, cfg.Partitions)
	case PartitionKMeans:
		e.Partition = partition.KMeansDocs(rng, e.docVectors(), cfg.Partitions, 15)
	case PartitionQueryDriven:
		res, train, err := e.trainQueryDriven(rng)
		if err != nil {
			return err
		}
		e.Partition = res.Partition
		e.Selector = selection.NewQueryDriven(res, train)
	default:
		e.Partition = partition.RoundRobinDocs(ids, cfg.Partitions)
	}
	q, err := qproc.NewDocEngine(cfg.Index, e.Docs, e.Partition, e.engineOptions()...)
	if err != nil {
		return err
	}
	e.Query = q
	if e.Selector == nil {
		var stats []index.Stats
		for p := 0; p < q.K(); p++ {
			stats = append(stats, q.PartIndex(p).LocalStats(nil))
		}
		e.Selector = selection.NewCORI(stats)
	}
	return nil
}

// engineOptions folds the Config into the qproc functional-options list
// the query engine is constructed with: fan-out width, the two-level
// cache hierarchy, and the fault environment. For SDC the static set is
// warmed offline: a query-log sample is generated against the same
// synthetic Web, and the most popular keys of its head become the
// cache's permanent slots — the Fagni et al. recipe, using history to
// pin what churn would otherwise evict.
func (e *Engine) engineOptions() []qproc.Option {
	cfg := e.Config
	opts := []qproc.Option{qproc.WithWorkers(cfg.Workers)}
	cc := cfg.Cache
	if cc.Capacity > 0 {
		rcfg := qproc.ResultCacheConfig{
			Capacity:   cc.Capacity,
			Shards:     cc.Shards,
			Policy:     cc.Policy,
			TTLQueries: cc.TTLQueries,
		}
		if cc.Policy == qproc.CacheSDC {
			rcfg.StaticKeys = e.warmStaticKeys(cc.Capacity / 2)
		}
		opts = append(opts, qproc.WithResultCache(rcfg))
	}
	if cc.PostingBytes > 0 {
		opts = append(opts, qproc.WithPostingsCache(cc.PostingBytes))
	}
	if f := cfg.Faults; f != nil {
		opts = append(opts, qproc.WithInjector(f.Injector()))
		pol := qproc.DefaultFaultPolicy()
		if f.Policy != nil {
			pol = *f.Policy
		}
		opts = append(opts, qproc.WithFaultPolicy(pol))
	}
	return opts
}

// warmStaticKeys picks up to n SDC static keys from the head of a
// query-log sample, rendered as the full cache keys Search produces
// (two-round stats, default k).
func (e *Engine) warmStaticKeys(n int) []string {
	if n <= 0 {
		return nil
	}
	lcfg := querylog.DefaultConfig()
	lcfg.Seed = e.Config.Seed + 29
	lcfg.Total = e.Config.Cache.WarmQueries
	if lcfg.Total <= 0 {
		lcfg.Total = 2000
	}
	lcfg.Distinct = lcfg.Total / 8
	if lcfg.Distinct < 50 {
		lcfg.Distinct = 50
	}
	lg := querylog.Generate(e.Web, lcfg)
	opt := qproc.DocQueryOptions{K: 10, Stats: qproc.GlobalTwoRound}
	keys := lg.TopKeys(n)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = qproc.DocCacheKey(strings.Fields(k), opt)
	}
	return out
}

// docVectors builds sparse term-ID vectors for k-means.
func (e *Engine) docVectors() []partition.DocVector {
	termID := make(map[string]int)
	vecs := make([]partition.DocVector, len(e.Docs))
	for i, d := range e.Docs {
		tf := make(map[int]float64)
		for _, t := range d.Terms {
			id, ok := termID[t]
			if !ok {
				id = len(termID)
				termID[t] = id
			}
			tf[id]++
		}
		vecs[i] = partition.DocVector{Ext: d.Ext, TF: tf}
	}
	return vecs
}

// trainQueryDriven generates a training log, evaluates it on a central
// index, and co-clusters documents by the queries that retrieve them.
func (e *Engine) trainQueryDriven(rng *rand.Rand) (partition.CoClusterResult, []partition.QueryDocs, error) {
	lcfg := querylog.DefaultConfig()
	lcfg.Seed = e.Config.Seed + 13
	lcfg.Total = e.Config.TrainQueries
	lcfg.Distinct = e.Config.TrainQueries / 8
	if lcfg.Distinct < 50 {
		lcfg.Distinct = 50
	}
	lg := querylog.Generate(e.Web, lcfg)

	b := index.NewBuilder(e.Config.Index)
	for _, d := range e.Docs {
		if err := b.AddDocument(d.Ext, d.Terms); err != nil {
			return partition.CoClusterResult{}, nil, err
		}
	}
	central, err := b.Build()
	if err != nil {
		return partition.CoClusterResult{}, nil, err
	}
	scorer := rank.NewScorer(rank.FromIndex(central))

	seen := make(map[string]bool)
	var train []partition.QueryDocs
	for _, q := range lg.Queries {
		if seen[q.Key] {
			continue
		}
		seen[q.Key] = true
		rs, _ := rank.EvaluateOR(central, scorer, q.Terms, 20)
		docs := make([]int, len(rs))
		for i, r := range rs {
			docs[i] = r.Doc
		}
		train = append(train, partition.QueryDocs{Key: q.Key, Terms: q.Terms, Docs: docs})
	}
	ids := make([]int, len(e.Docs))
	for i, d := range e.Docs {
		ids[i] = d.Ext
	}
	res := partition.CoClusterDocs(rng, train, ids, e.Config.Partitions, 15)
	return res, train, nil
}

// SearchResult is one answer to a user query.
type SearchResult struct {
	URL   string
	Doc   int
	Score float64
}

// SearchOptions tunes Search.
type SearchOptions struct {
	K       int
	SelectN int // contact only the best-N partitions (0 = all)
}

// Search answers a free-text query against the distributed engine using
// the two-round global-statistics protocol.
func (e *Engine) Search(query string, opt SearchOptions) []SearchResult {
	if opt.K <= 0 {
		opt.K = 10
	}
	terms := textproc.Tokenize(strings.ToLower(query))
	if len(terms) == 0 {
		return nil
	}
	qopt := qproc.DocQueryOptions{K: opt.K, Stats: qproc.GlobalTwoRound}
	if opt.SelectN > 0 {
		qopt.Selector = e.Selector
		qopt.SelectN = opt.SelectN
	}
	qr := e.Query.Query(terms, qopt)
	out := make([]SearchResult, len(qr.Results))
	for i, r := range qr.Results {
		out[i] = SearchResult{URL: e.urls[r.Doc], Doc: r.Doc, Score: r.Score}
	}
	return out
}

// URLOf resolves a document ID to its URL ("" if unknown).
func (e *Engine) URLOf(doc int) string { return e.urls[doc] }

// Refresh brings the engine's collection up to virtual day `day`: an
// incremental re-crawl (If-Modified-Since, optionally sitemaps) updates
// the stored pages, and the partition indexes are rebuilt — the paper's
// observation that "indexes are usually rebuilt from scratch after each
// update of the underlying document collection" (§4, Communication).
// The document partition is recomputed with the configured strategy.
func (e *Engine) Refresh(day int, useSitemaps bool) (crawler.RecrawlStats, error) {
	st := e.Crawler.Recrawl(day, useSitemaps)

	// Re-parse the (possibly updated) pages.
	e.Docs = e.Docs[:0]
	e.urls = make(map[int]string)
	ids := make([]int, 0, len(e.Crawler.Pages()))
	for pid := range e.Crawler.Pages() {
		ids = append(ids, pid)
	}
	sort.Ints(ids)
	for _, pid := range ids {
		p := e.Crawler.Pages()[pid]
		doc := textproc.ParseHTML(p.HTML)
		terms := textproc.Tokenize(doc.Text)
		if len(terms) == 0 {
			continue
		}
		e.Docs = append(e.Docs, index.Doc{Ext: pid, Terms: terms})
		e.urls[pid] = p.URL
	}
	if len(e.Docs) == 0 {
		return st, fmt.Errorf("core: refresh left no indexable documents")
	}
	e.Selector = nil // rebuilt by partitionAndIndex
	if err := e.partitionAndIndex(); err != nil {
		return st, err
	}
	return st, nil
}

// SearchPhrase answers an exact-phrase query: documents containing the
// query's tokens consecutively, ranked by phrase frequency. Positions
// never leave a partition (§5's argument for document partitioning under
// proximity search).
func (e *Engine) SearchPhrase(query string, k int) []SearchResult {
	if k <= 0 {
		k = 10
	}
	terms := textproc.Tokenize(strings.ToLower(query))
	if len(terms) == 0 {
		return nil
	}
	qr := e.Query.QueryPhrase(terms, k)
	out := make([]SearchResult, len(qr.Results))
	for i, r := range qr.Results {
		out[i] = SearchResult{URL: e.urls[r.Doc], Doc: r.Doc, Score: r.Score}
	}
	return out
}
