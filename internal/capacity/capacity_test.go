package capacity

import "testing"

func TestSection1Arithmetic(t *testing.T) {
	pl := Derive(DefaultParams())
	// 100 TB of text, 25 TB of index.
	if pl.TextBytes != 100e12 {
		t.Fatalf("text bytes = %g, want 1e14", pl.TextBytes)
	}
	if pl.IndexBytes != 25e12 {
		t.Fatalf("index bytes = %g, want 2.5e13", pl.IndexBytes)
	}
	// "we need approximately 3,000 of them in each cluster".
	if pl.NodesPerCluster < 2500 || pl.NodesPerCluster > 3500 {
		t.Fatalf("nodes/cluster = %d, want ≈3000", pl.NodesPerCluster)
	}
	// "around 10,000 per second on peak times".
	if pl.PeakQPS < 8000 || pl.PeakQPS > 12000 {
		t.Fatalf("peak qps = %.0f, want ≈10000", pl.PeakQPS)
	}
	// "we need to replicate the system at least 10 times".
	if pl.Replicas < 10 || pl.Replicas > 12 {
		t.Fatalf("replicas = %d, want ≈10", pl.Replicas)
	}
	// "at least 30,000 computers overall".
	if pl.TotalNodes < 28000 || pl.TotalNodes > 40000 {
		t.Fatalf("total nodes = %d, want ≈30000", pl.TotalNodes)
	}
	// "over 100 million US dollars".
	if pl.CostUSD < 100e6 {
		t.Fatalf("cost = %.0f, want > 1e8", pl.CostUSD)
	}
}

func TestProjection2010(t *testing.T) {
	// The paper's 2010 projection: clusters of ~50,000 and ≥1.5 million
	// machines overall. That corresponds to roughly 17× more data and a
	// proportionally larger workload (50000/3000 ≈ 16.7; 1.5M/50000 = 30
	// replicas ≈ 3× query growth over the 10 replicas of 2007).
	pl := Project(DefaultParams(), 16.7, 3)
	if pl.NodesPerCluster < 45000 || pl.NodesPerCluster > 55000 {
		t.Fatalf("2010 nodes/cluster = %d, want ≈50000", pl.NodesPerCluster)
	}
	if pl.TotalNodes < 1.3e6 || float64(pl.TotalNodes) > 1.8e6 {
		t.Fatalf("2010 total = %d, want ≈1.5M", pl.TotalNodes)
	}
}

func TestFrontEndModel(t *testing.T) {
	pl := Derive(DefaultParams())
	// 150 threads at 50 ms → 3,000 q/s bound.
	if pl.FrontEndCapacity != 3000 {
		t.Fatalf("front-end capacity = %v, want 3000", pl.FrontEndCapacity)
	}
	if pl.MeanResponseSec <= 0.05 || pl.MeanResponseSec > 0.2 {
		t.Fatalf("mean response = %v s, want slightly above the 50 ms service time", pl.MeanResponseSec)
	}
}

func TestZeroGuards(t *testing.T) {
	p := DefaultParams()
	p.RAMBytesPerNode = 0
	p.ClusterQPS = 0
	pl := Derive(p)
	if pl.NodesPerCluster != 0 || pl.Replicas != 0 || pl.TotalNodes != 0 {
		t.Fatalf("zero params produced nonzero plan: %+v", pl)
	}
}
