// Package capacity implements the back-of-the-envelope capacity model of
// Section 1 and the "analytical model" the paper's conclusion calls for:
// given data volume and query workload parameters, it derives cluster
// size, replication degree, total machine count, cost, and a response-
// time estimate via the G/G/c front-end model.
package capacity

import (
	"math"

	"dwr/internal/queueing"
)

// Params are the inputs of the model. DefaultParams reproduces the
// numbers worked in Section 1.
type Params struct {
	Pages            float64 // indexed pages
	TextBytesPerPage float64 // average text per page
	IndexRatio       float64 // index size as a fraction of text size
	RAMBytesPerNode  float64 // index RAM per machine
	ClusterQPS       float64 // sustained queries/s one cluster answers
	QueriesPerDay    float64
	PeakFactor       float64 // peak-to-average query rate ratio
	CostPerNodeUSD   float64
	// Front-end response-time model (Figure 6 parameters).
	FrontEndThreads int
	ServiceTimeSec  float64
	ServiceCV2      float64
}

// DefaultParams returns the paper's Section 1 scenario: 20 billion
// pages, 100 TB of text, a 25 TB index, ~8.5 GB of index RAM per
// machine, clusters that answer 1,000 queries/s, 173 million queries a
// day peaking around 10,000/s.
func DefaultParams() Params {
	return Params{
		Pages:            20e9,
		TextBytesPerPage: 5 * 1000, // 100 TB of text
		IndexRatio:       0.25,     // 25 TB index
		RAMBytesPerNode:  8.5e9,
		ClusterQPS:       1000,
		QueriesPerDay:    173e6,
		PeakFactor:       5, // ~2,000/s average → ~10,000/s peak
		CostPerNodeUSD:   3500,
		FrontEndThreads:  150,
		ServiceTimeSec:   0.05,
		ServiceCV2:       1,
	}
}

// Plan is the derived deployment.
type Plan struct {
	TextBytes        float64
	IndexBytes       float64
	NodesPerCluster  int
	PeakQPS          float64
	AvgQPS           float64
	Replicas         int
	TotalNodes       int
	CostUSD          float64
	FrontEndCapacity float64 // queries/s one front-end sustains (bound)
	MeanResponseSec  float64 // front-end response estimate at 70% load
}

// Derive computes the deployment plan from the parameters.
func Derive(p Params) Plan {
	var pl Plan
	pl.TextBytes = p.Pages * p.TextBytesPerPage
	pl.IndexBytes = pl.TextBytes * p.IndexRatio
	if p.RAMBytesPerNode > 0 {
		pl.NodesPerCluster = int(math.Ceil(pl.IndexBytes / p.RAMBytesPerNode))
	}
	pl.AvgQPS = p.QueriesPerDay / 86400
	pl.PeakQPS = pl.AvgQPS * p.PeakFactor
	if p.ClusterQPS > 0 {
		pl.Replicas = int(math.Ceil(pl.PeakQPS / p.ClusterQPS))
	}
	pl.TotalNodes = pl.NodesPerCluster * pl.Replicas
	pl.CostUSD = float64(pl.TotalNodes) * p.CostPerNodeUSD
	pl.FrontEndCapacity = queueing.CapacityBound(p.FrontEndThreads, p.ServiceTimeSec)
	wait := queueing.KingmanWait(0.7*pl.FrontEndCapacity, p.FrontEndThreads, p.ServiceTimeSec, 1, p.ServiceCV2)
	pl.MeanResponseSec = wait + p.ServiceTimeSec
	return pl
}

// Project scales the page count and query volume by the given growth
// factors (e.g. the paper's 2010 projection) and re-derives the plan.
func Project(p Params, pageGrowth, queryGrowth float64) Plan {
	p.Pages *= pageGrowth
	p.QueriesPerDay *= queryGrowth
	return Derive(p)
}
