package replication

import (
	"fmt"
	"testing"
)

func TestSelectorOrderPrimaryFirst(t *testing.T) {
	s := NewSelector(2, 3, 3)
	if got := fmt.Sprint(s.Order(0, nil)); got != "[0 1 2]" {
		t.Fatalf("initial order = %s", got)
	}
}

func TestSelectorDemotesAfterConsecutiveFailures(t *testing.T) {
	s := NewSelector(1, 2, 3)
	s.Report(0, 0, false)
	s.Report(0, 0, false)
	if s.Primary(0) != 0 {
		t.Fatal("demoted before threshold")
	}
	s.Report(0, 0, false)
	if s.Primary(0) != 1 {
		t.Fatalf("primary = %d after 3 consecutive failures, want 1", s.Primary(0))
	}
	if got := fmt.Sprint(s.Order(0, nil)); got != "[1 0]" {
		t.Fatalf("order after demotion = %s", got)
	}
}

func TestSelectorSuccessResetsRun(t *testing.T) {
	s := NewSelector(1, 2, 3)
	s.Report(0, 0, false)
	s.Report(0, 0, false)
	s.Report(0, 0, true)
	s.Report(0, 0, false)
	s.Report(0, 0, false)
	if s.Primary(0) != 0 {
		t.Fatal("interleaved success did not reset the failure run")
	}
}

func TestSelectorPromotionPrefersHealthiestLowestIndex(t *testing.T) {
	s := NewSelector(1, 3, 2)
	// Replica 1 has one failure, replica 2 is clean: demoting replica 0
	// must promote replica 2.
	s.Report(0, 1, false)
	s.Report(0, 0, false)
	s.Report(0, 0, false)
	if s.Primary(0) != 2 {
		t.Fatalf("primary = %d, want healthiest replica 2", s.Primary(0))
	}
}

func TestSelectorSingleReplicaStable(t *testing.T) {
	s := NewSelector(1, 1, 2)
	for i := 0; i < 10; i++ {
		s.Report(0, 0, false)
	}
	if s.Primary(0) != 0 {
		t.Fatal("single replica moved")
	}
	if got := fmt.Sprint(s.Order(0, nil)); got != "[0]" {
		t.Fatalf("order = %s", got)
	}
}

func TestSelectorIndependentPartitions(t *testing.T) {
	s := NewSelector(2, 2, 1)
	s.Report(0, 0, false)
	if s.Primary(0) != 1 || s.Primary(1) != 0 {
		t.Fatalf("partition isolation broken: primaries %d,%d", s.Primary(0), s.Primary(1))
	}
}
