package replication

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestAvailabilityFormula(t *testing.T) {
	if got := Availability(0.9, 1); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("A(0.9,1) = %v", got)
	}
	if got := Availability(0.9, 2); math.Abs(got-0.99) > 1e-12 {
		t.Fatalf("A(0.9,2) = %v", got)
	}
	if got := Availability(0.9, 0); got != 0 {
		t.Fatalf("A(.,0) = %v", got)
	}
	f := func(r uint8) bool {
		n := int(r%6) + 1
		return Availability(0.8, n+1) >= Availability(0.8, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrimaryBackupBasic(t *testing.T) {
	pb := NewPrimaryBackup(3)
	if err := pb.Write("user1", "prefs-v1"); err != nil {
		t.Fatal(err)
	}
	v, err := pb.Read("user1")
	if err != nil || v != "prefs-v1" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if pb.Messages() != 2 {
		t.Fatalf("messages = %d, want 2 backups copied", pb.Messages())
	}
}

func TestPrimaryBackupFailover(t *testing.T) {
	pb := NewPrimaryBackup(3)
	pb.Write("k", "v1")
	pb.Fail(0) // kill primary
	v, err := pb.Read("k")
	if err != nil || v != "v1" {
		t.Fatalf("read after failover = %q, %v — state lost", v, err)
	}
	if pb.Primary() == 0 {
		t.Fatal("failed primary still primary")
	}
	if err := pb.Write("k", "v2"); err != nil {
		t.Fatal(err)
	}
	pb.Fail(1)
	pb.Fail(2)
	if _, err := pb.Read("k"); err != ErrUnavailable {
		t.Fatalf("read with all replicas down = %v, want ErrUnavailable", err)
	}
	pb.Recover(1)
	if v, err := pb.Read("k"); err != nil || v != "v2" {
		t.Fatalf("read after recover = %q, %v", v, err)
	}
}

func TestPrimaryBackupRecoverCatchesUp(t *testing.T) {
	pb := NewPrimaryBackup(2)
	pb.Write("k", "v1")
	pb.Fail(1)
	pb.Write("k", "v2") // backup misses this
	pb.Recover(1)
	pb.Fail(0) // force promotion of the recovered backup
	if v, _ := pb.Read("k"); v != "v2" {
		t.Fatalf("recovered backup served stale %q", v)
	}
}

func TestQuorumStrictConsistency(t *testing.T) {
	q := NewQuorum(3, 2, 2) // r+w=4 > 3
	if !q.Strict() {
		t.Fatal("2+2 over 3 should be strict")
	}
	q.Write("k", "v1")
	q.Write("k", "v2")
	v, ok, err := q.Read("k")
	if err != nil || !ok || v != "v2" {
		t.Fatalf("read = %q %v %v", v, ok, err)
	}
	// Tolerates one failure.
	q.Fail(0)
	if err := q.Write("k", "v3"); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := q.Read("k"); v != "v3" {
		t.Fatalf("read after failure = %q", v)
	}
	// Two failures break quorums of size 2.
	q.Fail(1)
	if err := q.Write("k", "v4"); err != ErrUnavailable {
		t.Fatalf("write with 1 live replica = %v", err)
	}
	if _, _, err := q.Read("k"); err != ErrUnavailable {
		t.Fatalf("read with 1 live replica = %v", err)
	}
}

func TestQuorumWeakConfigurationCanReadStale(t *testing.T) {
	// w=1, r=1 over 3 replicas is not strict: after the replica that
	// took the write fails, readers may see nothing or stale data.
	q := NewQuorum(3, 1, 1)
	if q.Strict() {
		t.Fatal("1+1 over 3 must not be strict")
	}
	q.Write("k", "v1") // lands on replica 0 only
	q.Fail(0)
	_, ok, err := q.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("weak quorum read saw the value despite its only holder being down")
	}
}

func TestQuorumPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range [][3]int{{0, 1, 1}, {3, 0, 1}, {3, 4, 1}, {3, 1, 0}, {3, 1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQuorum(%v) did not panic", cfg)
				}
			}()
			NewQuorum(cfg[0], cfg[1], cfg[2])
		}()
	}
}

func TestQuorumUnknownKey(t *testing.T) {
	q := NewQuorum(3, 2, 2)
	if _, ok, err := q.Read("nope"); ok || err != nil {
		t.Fatalf("unknown key read = %v %v", ok, err)
	}
}

func TestLogMajorityCommit(t *testing.T) {
	l := NewLog(5)
	for i := 0; i < 3; i++ {
		if _, err := l.Propose(fmt.Sprintf("op%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Committed(); len(got) != 3 || got[0] != "op0" || got[2] != "op2" {
		t.Fatalf("committed = %v", got)
	}
	// Two failures out of five: still a majority.
	l.Fail(0)
	l.Fail(1)
	if !l.MajorityUp() {
		t.Fatal("3 of 5 up should be a majority")
	}
	if _, err := l.Propose("op3"); err != nil {
		t.Fatal(err)
	}
	// Third failure: no majority, no progress.
	l.Fail(2)
	if l.MajorityUp() {
		t.Fatal("2 of 5 up is not a majority")
	}
	if _, err := l.Propose("op4"); err != ErrUnavailable {
		t.Fatalf("propose without majority = %v", err)
	}
	// Recovery restores progress and the recovered replica catches up.
	l.Recover(2)
	if _, err := l.Propose("op4"); err != nil {
		t.Fatal(err)
	}
	if got := l.Committed(); len(got) != 5 || got[4] != "op4" {
		t.Fatalf("committed after recovery = %v", got)
	}
}

func TestLockServiceLeases(t *testing.T) {
	ls := NewLockService()
	if !ls.Acquire("index-update", "nodeA", 0, 10) {
		t.Fatal("fresh acquire failed")
	}
	if ls.Acquire("index-update", "nodeB", 5, 10) {
		t.Fatal("second owner acquired held lock")
	}
	// Re-acquire by the same owner extends the lease.
	if !ls.Acquire("index-update", "nodeA", 5, 10) {
		t.Fatal("owner re-acquire failed")
	}
	if got := ls.Holder("index-update", 12); got != "nodeA" {
		t.Fatalf("holder at 12 = %q (lease extended to 15)", got)
	}
	// Expiry: nodeA crashed; nodeB gets the lock after the lease runs out.
	if !ls.Acquire("index-update", "nodeB", 16, 10) {
		t.Fatal("acquire of expired lock failed")
	}
	if got := ls.Holder("index-update", 17); got != "nodeB" {
		t.Fatalf("holder = %q, want nodeB", got)
	}
}

func TestLockServiceRelease(t *testing.T) {
	ls := NewLockService()
	ls.Acquire("l", "a", 0, 100)
	if ls.Release("l", "b", 1) {
		t.Fatal("non-owner released the lock")
	}
	if !ls.Release("l", "a", 1) {
		t.Fatal("owner release failed")
	}
	if ls.Holder("l", 2) != "" {
		t.Fatal("released lock still held")
	}
	if got := len(ls.Holders(2)); got != 0 {
		t.Fatalf("holders = %d", got)
	}
}
