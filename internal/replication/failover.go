package replication

// Selector tracks per-replica health of partitioned query processors
// and yields the failover try order the broker's retry policy walks —
// the partition-level replica failover of Orlando/Perego/Silvestri's
// parallel engine design. Each partition has `replicas` identical
// copies; the current primary is tried first and demoted after a run of
// consecutive failures, so a crashed replica stops eating the first
// attempt (and its timeout) of every query.
//
// The engine reports outcomes from its serial gather point, so the
// selector's evolution is deterministic for a deterministic fault
// schedule. All methods are cheap; the zero threshold defaults to 3.
type Selector struct {
	replicas  int
	threshold int
	primary   []int
	fails     [][]int // consecutive failures per [partition][replica]
}

// NewSelector creates a selector for `parts` partitions of `replicas`
// copies each (minimum 1), demoting a primary after `threshold`
// consecutive failures (<= 0 picks 3).
func NewSelector(parts, replicas, threshold int) *Selector {
	if replicas < 1 {
		replicas = 1
	}
	if threshold <= 0 {
		threshold = 3
	}
	s := &Selector{
		replicas:  replicas,
		threshold: threshold,
		primary:   make([]int, parts),
		fails:     make([][]int, parts),
	}
	for p := range s.fails {
		s.fails[p] = make([]int, replicas)
	}
	return s
}

// Replicas returns the replication degree.
func (s *Selector) Replicas() int { return s.replicas }

// Primary returns partition p's current primary replica.
func (s *Selector) Primary(p int) int { return s.primary[p] }

// Order appends partition p's current try order to buf and returns it:
// the primary first, then the remaining replicas by ascending index.
// Retries and hedged requests walk this order.
func (s *Selector) Order(p int, buf []int) []int {
	buf = append(buf[:0], s.primary[p])
	for r := 0; r < s.replicas; r++ {
		if r != s.primary[p] {
			buf = append(buf, r)
		}
	}
	return buf
}

// Report records the outcome of one call to replica r of partition p.
// A success clears the replica's failure run; a failure extends it, and
// when the primary's run reaches the demotion threshold the replica
// with the shortest current failure run is promoted in its place
// (lowest index wins ties, so promotion is deterministic).
func (s *Selector) Report(p, r int, ok bool) {
	if r < 0 || r >= s.replicas {
		return
	}
	if ok {
		s.fails[p][r] = 0
		return
	}
	s.fails[p][r]++
	if r != s.primary[p] || s.fails[p][r] < s.threshold {
		return
	}
	best, bestRun := s.primary[p], s.fails[p][s.primary[p]]
	for cand := 0; cand < s.replicas; cand++ {
		if s.fails[p][cand] < bestRun {
			best, bestRun = cand, s.fails[p][cand]
		}
	}
	s.primary[p] = best
}
