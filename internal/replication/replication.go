// Package replication implements the fault-tolerance techniques
// Section 5 (Dependability) draws on: primary-backup replication,
// quorum-based replication with version numbers, majority-vote replicated
// logs (state-machine replication in the Paxos family), a lease-based
// lock service in the spirit of Chubby, and the availability arithmetic
// that relates replication degree to the probability some replica is
// reachable.
package replication

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Availability returns the probability at least one of r independent
// replicas with per-replica availability a is up: 1 - (1-a)^r. This is
// the quantitative heart of the paper's replication discussion: full
// replication maximizes it at maximal storage cost.
func Availability(a float64, r int) float64 {
	if r <= 0 {
		return 0
	}
	p := 1.0
	for i := 0; i < r; i++ {
		p *= 1 - a
	}
	return 1 - p
}

// StorageOverhead returns the storage multiplier of r-way replication.
func StorageOverhead(r int) float64 { return float64(r) }

// ErrUnavailable is returned when too few replicas are reachable for the
// requested operation.
var ErrUnavailable = errors.New("replication: not enough replicas available")

// replica is one copy of the user-state store (the paper's example is
// per-user personalization state, which "must be the latest state and be
// consistent across replicas").
type replica struct {
	up   bool
	data map[string]versioned
}

type versioned struct {
	value   string
	version int64
}

// PrimaryBackup is synchronous primary-backup replication: writes go to
// the primary, which propagates to every live backup before
// acknowledging; on primary failure the first live backup is promoted.
// Reads at the primary are linearizable.
type PrimaryBackup struct {
	mu       sync.Mutex
	replicas []*replica
	primary  int
	msgs     int
}

// NewPrimaryBackup creates an n-replica group (n ≥ 1), all up, replica 0
// primary.
func NewPrimaryBackup(n int) *PrimaryBackup {
	if n < 1 {
		n = 1
	}
	pb := &PrimaryBackup{}
	for i := 0; i < n; i++ {
		pb.replicas = append(pb.replicas, &replica{up: true, data: make(map[string]versioned)})
	}
	return pb
}

// Primary returns the current primary's index, or -1 if every replica is
// down.
func (pb *PrimaryBackup) Primary() int {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return pb.primaryLocked()
}

func (pb *PrimaryBackup) primaryLocked() int {
	if pb.primary < len(pb.replicas) && pb.replicas[pb.primary].up {
		return pb.primary
	}
	for i, r := range pb.replicas {
		if r.up {
			pb.primary = i
			return i
		}
	}
	return -1
}

// Write stores key=value through the primary, version-stamped, and
// synchronously copies it to all live backups.
func (pb *PrimaryBackup) Write(key, value string) error {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	p := pb.primaryLocked()
	if p < 0 {
		return ErrUnavailable
	}
	prim := pb.replicas[p]
	v := prim.data[key].version + 1
	for i, r := range pb.replicas {
		if !r.up {
			continue
		}
		r.data[key] = versioned{value: value, version: v}
		if i != p {
			pb.msgs++
		}
	}
	return nil
}

// Read returns the value at the primary.
func (pb *PrimaryBackup) Read(key string) (string, error) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	p := pb.primaryLocked()
	if p < 0 {
		return "", ErrUnavailable
	}
	return pb.replicas[p].data[key].value, nil
}

// Fail marks replica i down; Recover brings it back, copying state from
// the current primary (catch-up).
func (pb *PrimaryBackup) Fail(i int) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if i >= 0 && i < len(pb.replicas) {
		pb.replicas[i].up = false
	}
}

// Recover brings replica i back up and synchronizes it from the primary.
func (pb *PrimaryBackup) Recover(i int) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if i < 0 || i >= len(pb.replicas) {
		return
	}
	pb.replicas[i].up = true
	if p := pb.primaryLocked(); p >= 0 && p != i {
		fresh := make(map[string]versioned, len(pb.replicas[p].data))
		for k, v := range pb.replicas[p].data {
			fresh[k] = v
		}
		pb.replicas[i].data = fresh
		pb.msgs++
	}
}

// Messages returns replication messages sent (backup copies, catch-ups).
func (pb *PrimaryBackup) Messages() int {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return pb.msgs
}

// Quorum is quorum replication over n replicas with write quorum w and
// read quorum r: a write succeeds once w replicas store it; a read
// queries r replicas and returns the highest-versioned value. When
// r + w > n, reads see the latest completed write (strict quorum); the
// paper's "weaker consistency constraints" correspond to smaller r/w.
type Quorum struct {
	mu       sync.Mutex
	replicas []*replica
	w, r     int
	version  int64
	msgs     int
}

// NewQuorum creates an n-replica quorum store. It panics if w or r are
// out of (0, n].
func NewQuorum(n, w, r int) *Quorum {
	if n < 1 || w < 1 || w > n || r < 1 || r > n {
		panic(fmt.Sprintf("replication: invalid quorum config n=%d w=%d r=%d", n, w, r))
	}
	q := &Quorum{w: w, r: r}
	for i := 0; i < n; i++ {
		q.replicas = append(q.replicas, &replica{up: true, data: make(map[string]versioned)})
	}
	return q
}

// Strict reports whether the configuration guarantees read-your-writes
// (r + w > n).
func (q *Quorum) Strict() bool { return q.r+q.w > len(q.replicas) }

// Write stores key=value on the first w live replicas.
func (q *Quorum) Write(key, value string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.version++
	stored := 0
	for _, rep := range q.replicas {
		if !rep.up {
			continue
		}
		rep.data[key] = versioned{value: value, version: q.version}
		q.msgs++
		stored++
		if stored == q.w {
			return nil
		}
	}
	return ErrUnavailable
}

// Read queries the first r live replicas and returns the freshest value.
// ok is false if the key is unknown to all of them.
func (q *Quorum) Read(key string) (value string, ok bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	asked := 0
	best := versioned{version: -1}
	for _, rep := range q.replicas {
		if !rep.up {
			continue
		}
		q.msgs++
		if v, has := rep.data[key]; has && v.version > best.version {
			best = v
		}
		asked++
		if asked == q.r {
			break
		}
	}
	if asked < q.r {
		return "", false, ErrUnavailable
	}
	if best.version < 0 {
		return "", false, nil
	}
	return best.value, true, nil
}

// Fail marks replica i down. Recover brings it back (without catch-up:
// quorum reads repair staleness by version).
func (q *Quorum) Fail(i int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if i >= 0 && i < len(q.replicas) {
		q.replicas[i].up = false
	}
}

// Recover brings replica i back up.
func (q *Quorum) Recover(i int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if i >= 0 && i < len(q.replicas) {
		q.replicas[i].up = true
	}
}

// Messages returns replica messages exchanged.
func (q *Quorum) Messages() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.msgs
}

// Log is a majority-vote replicated log: the core of state-machine
// replication (Schneider; Lamport's Paxos). An entry commits when a
// majority of replicas accept it; committed entries are totally ordered
// and survive any minority of failures.
type Log struct {
	mu       sync.Mutex
	n        int
	up       []bool
	accepted [][]string // per-replica accepted entries
	commit   []string   // committed prefix
	msgs     int
}

// NewLog creates an n-replica log (n ≥ 1, odd values tolerate the most
// failures per replica).
func NewLog(n int) *Log {
	if n < 1 {
		n = 1
	}
	l := &Log{n: n, up: make([]bool, n), accepted: make([][]string, n)}
	for i := range l.up {
		l.up[i] = true
	}
	return l
}

// Propose appends value to the log if a majority of replicas is up; the
// committed index is returned.
func (l *Log) Propose(value string) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	acks := 0
	for i := range l.up {
		if l.up[i] {
			acks++
		}
	}
	if acks <= l.n/2 {
		return -1, ErrUnavailable
	}
	idx := len(l.commit)
	for i := range l.up {
		if l.up[i] {
			l.accepted[i] = append(l.accepted[i], value)
			l.msgs++
		}
	}
	l.commit = append(l.commit, value)
	return idx, nil
}

// Committed returns the committed entries.
func (l *Log) Committed() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.commit...)
}

// Fail marks replica i down; Recover brings it back and catches it up
// from the committed prefix.
func (l *Log) Fail(i int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i >= 0 && i < l.n {
		l.up[i] = false
	}
}

// Recover brings replica i back and replays the committed prefix to it.
func (l *Log) Recover(i int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= l.n {
		return
	}
	l.up[i] = true
	l.accepted[i] = append([]string(nil), l.commit...)
	l.msgs++
}

// MajorityUp reports whether a majority of replicas is currently up.
func (l *Log) MajorityUp() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	acks := 0
	for i := range l.up {
		if l.up[i] {
			acks++
		}
	}
	return acks > l.n/2
}

// Messages returns replica messages exchanged.
func (l *Log) Messages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.msgs
}

// LockService is a lease-based lock manager in the spirit of Chubby:
// locks are held under leases that expire at a virtual deadline, so a
// crashed holder cannot block the system forever.
type LockService struct {
	mu    sync.Mutex
	locks map[string]lease
}

type lease struct {
	owner   string
	expires float64
}

// NewLockService creates an empty lock service.
func NewLockService() *LockService {
	return &LockService{locks: make(map[string]lease)}
}

// Acquire attempts to take the named lock for owner until now+ttl. It
// succeeds if the lock is free, expired, or already held by owner (in
// which case the lease is extended).
func (ls *LockService) Acquire(name, owner string, now, ttl float64) bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	l, held := ls.locks[name]
	if held && l.expires > now && l.owner != owner {
		return false
	}
	ls.locks[name] = lease{owner: owner, expires: now + ttl}
	return true
}

// Release frees the lock if owner holds it.
func (ls *LockService) Release(name, owner string, now float64) bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	l, held := ls.locks[name]
	if !held || l.owner != owner || l.expires <= now {
		return false
	}
	delete(ls.locks, name)
	return true
}

// Holder returns the current live holder of the lock, or "".
func (ls *LockService) Holder(name string, now float64) string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if l, held := ls.locks[name]; held && l.expires > now {
		return l.owner
	}
	return ""
}

// Holders lists the names of currently held locks at virtual time now.
func (ls *LockService) Holders(now float64) []string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	var names []string
	for n, l := range ls.locks {
		if l.expires > now {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
