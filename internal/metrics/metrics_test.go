package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varc := 0.0
	for _, x := range xs {
		varc += (x - mean) * (x - mean)
	}
	varc /= float64(len(xs) - 1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-varc) > 1e-6 {
		t.Fatalf("var = %v, want %v", w.Var(), varc)
	}
}

func TestWelfordMinMaxAndEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("empty Welford not zero-valued")
	}
	w.Add(5)
	w.Add(-2)
	w.Add(9)
	if w.Min() != -2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want -2/9", w.Min(), w.Max())
	}
}

func TestWelfordCV(t *testing.T) {
	var w Welford
	for i := 0; i < 10; i++ {
		w.Add(4)
	}
	if w.CV() != 0 {
		t.Fatalf("CV of constant data = %v, want 0", w.CV())
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < 50; i++ {
			s.Add(rng.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty Sample should report zeros")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for _, v := range []float64{1, 10, 11, 20, 25, 31, 1000} {
		h.Add(v)
	}
	if got := h.Count(0); got != 2 { // 1, 10
		t.Errorf("bucket ≤10 = %d, want 2", got)
	}
	if got := h.Count(1); got != 2 { // 11, 20
		t.Errorf("bucket ≤20 = %d, want 2", got)
	}
	if got := h.Count(2); got != 1 { // 25
		t.Errorf("bucket ≤30 = %d, want 1", got)
	}
	if got := h.Overflow(); got != 2 { // 31, 1000
		t.Errorf("overflow = %d, want 2", got)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
	if got := h.CumulativeBelow(20); got != 4 {
		t.Errorf("CumulativeBelow(20) = %d, want 4", got)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {2, 2}, {3, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestImbalance(t *testing.T) {
	im := NewImbalance([]float64{1, 1, 1, 5})
	if im.Mean != 2 {
		t.Fatalf("mean = %v, want 2", im.Mean)
	}
	if im.Max != 5 || im.Min != 1 {
		t.Fatalf("max/min = %v/%v, want 5/1", im.Max, im.Min)
	}
	if math.Abs(im.MaxOver-2.5) > 1e-12 {
		t.Fatalf("MaxOver = %v, want 2.5", im.MaxOver)
	}
	balanced := NewImbalance([]float64{3, 3, 3})
	if balanced.MaxOver != 1 || balanced.CV != 0 {
		t.Fatalf("balanced load reported imbalance: %+v", balanced)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.0)
	tb.AddRow("b", 2.5)
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "2.500", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"}, {3.25, "3.250"}, {123.456, "123.5"}, {-7, "-7"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####" {
		t.Errorf("Bar(0.5, 10) = %q", got)
	}
	if got := Bar(-1, 10); got != "" {
		t.Errorf("Bar(-1, 10) = %q, want empty", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2, 4) = %q, want clamped full bar", got)
	}
}
