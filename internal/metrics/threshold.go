package metrics

import "fmt"

// ThresholdCounters tallies what the threshold-sharing broker schedule
// did: how many queries took the wave path, how many scatter waves they
// needed, and how the partition fan-out split between evaluated and
// skipped. Engines accumulate one instance at their serial gather point,
// so the totals are deterministic for a fixed query stream.
type ThresholdCounters struct {
	// Queries counts queries evaluated through the wave scheduler
	// (cache hits and single-wave queries are not counted).
	Queries int
	// Waves counts scatter waves dispatched across those queries.
	Waves int
	// PartitionsEvaluated counts partition evaluations actually
	// dispatched.
	PartitionsEvaluated int
	// PartitionsSkipped counts partitions never contacted because their
	// resident query upper bound could not beat the broker's running
	// k-th score.
	PartitionsSkipped int
	// PostingsDecoded / PostingBytesDecoded aggregate the evaluation
	// work of the dispatched partitions — the quantities threshold
	// seeding exists to shrink.
	PostingsDecoded     int
	PostingBytesDecoded int64
}

// Merge folds o into c.
func (c *ThresholdCounters) Merge(o ThresholdCounters) {
	c.Queries += o.Queries
	c.Waves += o.Waves
	c.PartitionsEvaluated += o.PartitionsEvaluated
	c.PartitionsSkipped += o.PartitionsSkipped
	c.PostingsDecoded += o.PostingsDecoded
	c.PostingBytesDecoded += o.PostingBytesDecoded
}

// String renders the counters in one report line.
func (c ThresholdCounters) String() string {
	return fmt.Sprintf("tsQueries=%d waves=%d partsEval=%d partsSkipped=%d postings=%d bytesDecoded=%d",
		c.Queries, c.Waves, c.PartitionsEvaluated, c.PartitionsSkipped, c.PostingsDecoded, c.PostingBytesDecoded)
}
