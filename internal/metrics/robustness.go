package metrics

import "fmt"

// FaultCounters tallies fault-handling events on a query path: what the
// robustness policy saw and what it did about it. Engines accumulate
// one instance at their gather point (serially, under the engine lock),
// so the totals are deterministic for a fixed fault schedule.
type FaultCounters struct {
	// FaultsSeen counts injected failures observed across all attempts:
	// error replies, silent crashes, and outage-window drops.
	FaultsSeen int
	// Retries counts re-dispatched attempts after a failed one.
	Retries int
	// Failovers counts answers ultimately obtained from a replica other
	// than the partition's current primary.
	Failovers int
	// Hedges counts backup requests fired because the primary attempt
	// exceeded the hedge latency threshold.
	Hedges int
	// HedgeWins counts hedged requests whose answer was the one used —
	// the primary was slower or never answered.
	HedgeWins int
	// Timeouts counts partition calls abandoned because the per-query
	// deadline or the retry budget ran out mid-flight.
	Timeouts int
	// Lost counts partition calls that produced no usable answer at all:
	// every attempt failed or timed out, so the partition contributed
	// nothing to the merged result.
	Lost int
}

// Merge folds o into c.
func (c *FaultCounters) Merge(o FaultCounters) {
	c.FaultsSeen += o.FaultsSeen
	c.Retries += o.Retries
	c.Failovers += o.Failovers
	c.Hedges += o.Hedges
	c.HedgeWins += o.HedgeWins
	c.Timeouts += o.Timeouts
	c.Lost += o.Lost
}

// String renders the counters in one report line.
func (c FaultCounters) String() string {
	return fmt.Sprintf("faults=%d retries=%d failovers=%d hedges=%d hedgeWins=%d timeouts=%d lost=%d",
		c.FaultsSeen, c.Retries, c.Failovers, c.Hedges, c.HedgeWins, c.Timeouts, c.Lost)
}

// DefaultLatencyBounds are histogram bucket upper bounds (milliseconds)
// that cover the query path's latency range: sub-millisecond cache hits
// through multi-second straggler and timeout tails.
func DefaultLatencyBounds() []float64 {
	return []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
}

// LatencyByPart is a per-partition latency histogram: one Histogram per
// partition/server/site, plus quantile lookups the hedging policy uses
// to decide when a partition call counts as a straggler. Callers
// synchronize externally (engines touch it only at their serial gather
// point).
type LatencyByPart struct {
	hists  []*Histogram
	bounds []float64
}

// NewLatencyByPart creates histograms for `parts` partitions with the
// given bucket upper bounds (nil picks DefaultLatencyBounds).
func NewLatencyByPart(parts int, bounds []float64) *LatencyByPart {
	if bounds == nil {
		bounds = DefaultLatencyBounds()
	}
	l := &LatencyByPart{bounds: append([]float64(nil), bounds...)}
	l.hists = make([]*Histogram, parts)
	for i := range l.hists {
		l.hists[i] = NewHistogram(l.bounds)
	}
	return l
}

// Parts returns the number of partitions tracked.
func (l *LatencyByPart) Parts() int { return len(l.hists) }

// Add records one observed call latency for partition p.
func (l *LatencyByPart) Add(p int, ms float64) {
	if p >= 0 && p < len(l.hists) {
		l.hists[p].Add(ms)
	}
}

// Hist exposes partition p's histogram (nil when out of range).
func (l *LatencyByPart) Hist(p int) *Histogram {
	if p < 0 || p >= len(l.hists) {
		return nil
	}
	return l.hists[p]
}

// Quantile returns the upper bound of the bucket containing partition
// p's q-quantile — a conservative (rounded-up) quantile estimate. It
// returns 0 when the partition has no observations yet, and +Inf when
// the quantile falls in the overflow bucket.
func (l *LatencyByPart) Quantile(p int, q float64) float64 {
	h := l.Hist(p)
	if h == nil {
		return 0
	}
	return h.Quantile(q)
}

// Totals returns the per-partition observation counts.
func (l *LatencyByPart) Totals() []int {
	out := make([]int, len(l.hists))
	for i, h := range l.hists {
		out[i] = h.Total()
	}
	return out
}
