package metrics

import "fmt"

// SelectionCounters tallies what the federated mediator did on the
// serving path: how many queries were mediated versus scattered to every
// site, how the site fan-out split between contacted and skipped, and
// the selection quality observed when a recall sample was taken against
// the exhaustive answer. Brokers accumulate one instance at their serial
// gather point, so the totals are deterministic for a fixed query
// stream.
type SelectionCounters struct {
	// Queries counts federated queries (mediated or full fan-out; cache
	// hits are not counted — they contact no site).
	Queries int
	// Mediated counts queries answered by a selected site subset.
	Mediated int
	// FullFanout counts queries that scattered to every up site: no
	// mediator, low selection confidence, or a fallback after the
	// selected subset could not answer.
	FullFanout int
	// SitesContacted / SitesSkipped split the per-query site fan-out:
	// sites the query was dispatched to versus up sites the mediator
	// pruned before dispatch.
	SitesContacted int
	SitesSkipped   int
	// RecallSum / RecallSamples accumulate Recall@k measurements of
	// mediated answers against exhaustive fan-out (fed by callers that
	// sample quality; zero when never sampled).
	RecallSum     float64
	RecallSamples int
}

// Merge folds o into c.
func (c *SelectionCounters) Merge(o SelectionCounters) {
	c.Queries += o.Queries
	c.Mediated += o.Mediated
	c.FullFanout += o.FullFanout
	c.SitesContacted += o.SitesContacted
	c.SitesSkipped += o.SitesSkipped
	c.RecallSum += o.RecallSum
	c.RecallSamples += o.RecallSamples
}

// MeanRecall returns the average sampled recall, 0 when never sampled.
func (c SelectionCounters) MeanRecall() float64 {
	if c.RecallSamples == 0 {
		return 0
	}
	return c.RecallSum / float64(c.RecallSamples)
}

// String renders the counters in one report line.
func (c SelectionCounters) String() string {
	return fmt.Sprintf("selQueries=%d mediated=%d fullFanout=%d sitesContacted=%d sitesSkipped=%d meanRecall=%.3f",
		c.Queries, c.Mediated, c.FullFanout, c.SitesContacted, c.SitesSkipped, c.MeanRecall())
}
