// Package metrics provides the measurement primitives shared by all
// experiments: streaming mean/variance, exact-quantile samples,
// histograms, load-imbalance statistics, and fixed-width table printers
// that render paper-style tables and figure series.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Welford accumulates a running mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations recorded.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean, or 0 if no observations were recorded.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (n-1 denominator), or 0 for n < 2.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation, or 0 if none were recorded.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 if none were recorded.
func (w *Welford) Max() float64 { return w.max }

// CV returns the coefficient of variation (std/mean), the paper-standard
// measure of load imbalance across servers; 0 when the mean is 0.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Std() / w.mean
}

// Sample stores observations for exact quantiles. Experiments in this
// repository are small enough (≤ a few million points) that exact
// quantiles are affordable and preferable to sketches.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank, or 0 if
// the sample is empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	i := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if i < 0 {
		i = 0
	}
	return s.xs[i]
}

// Mean returns the sample mean, or 0 if empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Max returns the largest observation, or 0 if empty.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	return s.xs[len(s.xs)-1]
}

// Histogram counts observations into caller-defined bucket upper bounds.
// An observation lands in the first bucket whose bound is ≥ the value;
// values above the last bound land in an implicit overflow bucket.
type Histogram struct {
	bounds []float64
	counts []int
	over   int
	total  int
}

// NewHistogram creates a histogram with the given ascending upper bounds.
// It panics if bounds is empty or not strictly ascending.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: NewHistogram with no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: NewHistogram bounds not strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int, len(b))}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	i := sort.SearchFloat64s(h.bounds, x)
	if i == len(h.bounds) {
		h.over++
		return
	}
	h.counts[i]++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Count returns the count in bucket i (bound h.Bounds()[i]).
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Overflow returns the count of observations above the last bound.
func (h *Histogram) Overflow() int { return h.over }

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Quantile returns the upper bound of the bucket containing the
// q-quantile — a conservative (rounded-up) quantile estimate, the form
// the hedging policy and the serving front-end's shedding controller
// consume. It returns 0 when the histogram is empty and +Inf when the
// quantile falls in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	need := int(math.Ceil(q * float64(h.total)))
	if need < 1 {
		need = 1
	}
	cum := 0
	for i, b := range h.bounds {
		cum += h.counts[i]
		if cum >= need {
			return b
		}
	}
	return math.Inf(1)
}

// CumulativeBelow returns how many observations were ≤ bound, where bound
// must be one of the configured bounds; it returns 0 for unknown bounds.
func (h *Histogram) CumulativeBelow(bound float64) int {
	sum := 0
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		sum += h.counts[i]
	}
	return sum
}

// Imbalance summarizes a per-server load vector the way Figure 2 of the
// paper does: each entry is one server's busy load, and the headline
// numbers are the mean (the dashed line in the figure), the max/mean ratio
// (how far the busiest server is above the line) and the coefficient of
// variation.
type Imbalance struct {
	Loads   []float64
	Mean    float64
	Max     float64
	Min     float64
	MaxOver float64 // Max / Mean; 1.0 is perfectly balanced
	CV      float64
}

// NewImbalance computes imbalance statistics for the given load vector.
func NewImbalance(loads []float64) Imbalance {
	var w Welford
	for _, l := range loads {
		w.Add(l)
	}
	im := Imbalance{
		Loads: append([]float64(nil), loads...),
		Mean:  w.Mean(),
		Max:   w.Max(),
		Min:   w.Min(),
		CV:    w.CV(),
	}
	if im.Mean > 0 {
		im.MaxOver = im.Max / im.Mean
	}
	return im
}

// Table renders paper-style fixed-width tables. Build one with NewTable,
// add rows, then write it with WriteTo or render it with String.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Ratio returns part/total, or 0 when total is 0 — the guard every
// hit-ratio and coverage computation repeats.
func Ratio(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return part / total
}

// FormatPercent renders a [0,1] fraction as a percentage with one
// decimal ("42.7%"), the house style for hit-ratio and coverage tables.
func FormatPercent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// FormatFloat renders a float compactly: integers without decimals,
// otherwise 3 significant-looking decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Render writes the rendered table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// Bar renders a crude horizontal bar of the given relative width (0..1)
// scaled to maxCols columns, used to sketch figures in terminal output.
func Bar(frac float64, maxCols int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(math.Round(frac * float64(maxCols)))
	return strings.Repeat("#", n)
}
