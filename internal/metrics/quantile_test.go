package metrics

import (
	"math"
	"testing"
)

// Edge cases of the bucketed quantile estimate. These matter beyond
// reporting: the serving front-end's shedding controller
// (internal/server) and the hedging policy (internal/qproc) both make
// control decisions from Histogram.Quantile, so the empty, single-
// sample, degenerate, and overflow behaviors are load-bearing.

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v; want 0", q, got)
		}
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Add(1.5) // bucket with bound 2
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 2 {
			t.Fatalf("single-sample Quantile(%v) = %v; want its bucket bound 2", q, got)
		}
	}
}

func TestHistogramQuantileAllEqual(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 1000; i++ {
		h.Add(3) // all in the bound-4 bucket
	}
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 4 {
			t.Fatalf("all-equal Quantile(%v) = %v; want 4", q, got)
		}
	}
}

func TestHistogramQuantileOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Add(0.5)
	h.Add(100) // above the last bound
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("Quantile(0.5) = %v; want 1", got)
	}
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Fatalf("Quantile(0.99) in the overflow bucket = %v; want +Inf", got)
	}
	// All overflow: every quantile is +Inf.
	h2 := NewHistogram([]float64{1})
	h2.Add(50)
	if got := h2.Quantile(0.01); !math.IsInf(got, 1) {
		t.Fatalf("all-overflow Quantile(0.01) = %v; want +Inf", got)
	}
}

func TestHistogramQuantileConservative(t *testing.T) {
	// The estimate is the bucket upper bound: never below the true
	// quantile of the recorded values.
	h := NewHistogram([]float64{1, 2, 4, 8, 16})
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) * 0.15) // 0.15 .. 15
	}
	if got := h.Quantile(0.5); got != 8 {
		// True p50 = 7.575; conservative estimate rounds up to bound 8.
		t.Fatalf("Quantile(0.5) = %v; want conservative bound 8", got)
	}
	if got := h.Quantile(0.05); got != 1 {
		t.Fatalf("Quantile(0.05) = %v; want 1", got)
	}
	if got := h.Quantile(1); got != 16 {
		t.Fatalf("Quantile(1) = %v; want 16", got)
	}
}

func TestHistogramQuantileClampsLowQ(t *testing.T) {
	// q <= 0 still needs at least one observation: the first non-empty
	// bucket answers.
	h := NewHistogram([]float64{1, 2})
	h.Add(1.5)
	if got := h.Quantile(-1); got != 2 {
		t.Fatalf("Quantile(-1) = %v; want first occupied bound 2", got)
	}
}

func TestLatencyByPartQuantileEdges(t *testing.T) {
	l := NewLatencyByPart(2, []float64{1, 2, 4})

	// Empty part: 0, matching the empty histogram.
	if got := l.Quantile(0, 0.95); got != 0 {
		t.Fatalf("empty part Quantile = %v; want 0", got)
	}
	// Out-of-range part: 0, not a panic.
	if got := l.Quantile(5, 0.95); got != 0 {
		t.Fatalf("out-of-range part Quantile = %v; want 0", got)
	}
	l.Add(1, 3)
	if got := l.Quantile(1, 0.95); got != 4 {
		t.Fatalf("single-sample part Quantile = %v; want 4", got)
	}
	l.Add(1, 1000)
	if got := l.Quantile(1, 0.99); !math.IsInf(got, 1) {
		t.Fatalf("overflow part Quantile = %v; want +Inf", got)
	}
	// Delegation: LatencyByPart.Quantile must agree with the underlying
	// histogram's own estimate.
	if a, b := l.Quantile(1, 0.5), l.Hist(1).Quantile(0.5); a != b {
		t.Fatalf("LatencyByPart %v != Histogram %v", a, b)
	}
}
