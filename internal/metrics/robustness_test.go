package metrics

import (
	"math"
	"testing"
)

func TestFaultCountersMerge(t *testing.T) {
	a := FaultCounters{FaultsSeen: 1, Retries: 2, Failovers: 3, Hedges: 4, HedgeWins: 5, Timeouts: 6, Lost: 7}
	b := FaultCounters{FaultsSeen: 10, Retries: 20, Failovers: 30, Hedges: 40, HedgeWins: 50, Timeouts: 60, Lost: 70}
	a.Merge(b)
	want := FaultCounters{FaultsSeen: 11, Retries: 22, Failovers: 33, Hedges: 44, HedgeWins: 55, Timeouts: 66, Lost: 77}
	if a != want {
		t.Fatalf("merge = %+v, want %+v", a, want)
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestLatencyByPartQuantile(t *testing.T) {
	l := NewLatencyByPart(2, []float64{1, 10, 100})
	// Partition 0: 90 fast, 10 slow.
	for i := 0; i < 90; i++ {
		l.Add(0, 0.5)
	}
	for i := 0; i < 10; i++ {
		l.Add(0, 50)
	}
	if q := l.Quantile(0, 0.5); q != 1 {
		t.Fatalf("p50 = %v, want bucket bound 1", q)
	}
	if q := l.Quantile(0, 0.95); q != 100 {
		t.Fatalf("p95 = %v, want bucket bound 100", q)
	}
	// Empty partition: no estimate yet.
	if q := l.Quantile(1, 0.99); q != 0 {
		t.Fatalf("empty partition quantile = %v, want 0", q)
	}
	// Overflow tail.
	l.Add(1, 1e6)
	if q := l.Quantile(1, 0.99); !math.IsInf(q, 1) {
		t.Fatalf("overflow quantile = %v, want +Inf", q)
	}
	if tot := l.Totals(); tot[0] != 100 || tot[1] != 1 {
		t.Fatalf("totals = %v", tot)
	}
}

func TestLatencyByPartDefaults(t *testing.T) {
	l := NewLatencyByPart(3, nil)
	if l.Parts() != 3 {
		t.Fatalf("parts = %d", l.Parts())
	}
	l.Add(2, 3.0)
	if l.Hist(2).Total() != 1 {
		t.Fatal("Add did not land")
	}
	// Out-of-range adds and lookups are safe no-ops.
	l.Add(-1, 1)
	l.Add(99, 1)
	if l.Hist(99) != nil || l.Quantile(99, 0.5) != 0 {
		t.Fatal("out-of-range access not guarded")
	}
}
