package server

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dwr/internal/metrics"
	"dwr/internal/qproc"
	"dwr/internal/randx"
)

// Status is the front-end's verdict on one request.
type Status int

// Statuses, in the order a request meets the pipeline stages.
const (
	StatusOK            Status = iota
	StatusShedOverload         // adaptive shedder (latency SLO defense)
	StatusShedAdmission        // token bucket
	StatusShedQueueFull        // bounded wait queue overflowed
	StatusTimeout              // deadline expired while queued or serving
	StatusFailed               // engine refused (fault policy, all units down)
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusShedOverload:
		return "shed-overload"
	case StatusShedAdmission:
		return "shed-admission"
	case StatusShedQueueFull:
		return "shed-queue-full"
	case StatusTimeout:
		return "timeout"
	default:
		return "failed"
	}
}

// HTTPCode maps a status to its HTTP response code: shed responses are
// 429 (admission pacing — retry later) or 503 (overload — back off),
// and deadline misses are 504.
func (s Status) HTTPCode() int {
	switch s {
	case StatusOK:
		return http.StatusOK
	case StatusShedAdmission:
		return http.StatusTooManyRequests
	case StatusTimeout:
		return http.StatusGatewayTimeout
	case StatusFailed:
		return http.StatusBadGateway
	default:
		return http.StatusServiceUnavailable
	}
}

// Frontend is the wall-clock realization of the serving pipeline: the
// same admission bucket, bounded queue, and adaptive shedder as Run,
// but over real goroutines — the worker pool is a semaphore of
// Config.Workers slots and queued requests are goroutines blocked on
// it. It is safe for concurrent use; the wrapped engine must be safe
// for concurrent queries (DocEngine and TermEngine are; MultiSite is
// not).
type Frontend struct {
	// Tokenize turns free text into query terms (set before serving;
	// defaults to lower-cased whitespace splitting).
	Tokenize func(string) []string
	// Resolve maps a result document ID to a URL for /search responses
	// (optional).
	Resolve func(doc int) string

	eng qproc.Engine
	dq  qproc.DeadlineQuerier
	cfg Config

	start   time.Time
	slots   chan struct{}
	waiting atomic.Int64

	mu     sync.Mutex // guards bucket, shed, rng, lat
	bucket *TokenBucket
	shed   *Shedder
	rng    *rand.Rand
	lat    *metrics.Histogram

	offered  atomic.Int64
	served   atomic.Int64
	statuses [6]atomic.Int64
}

// NewFrontend wraps engine behind the serving pipeline described by
// cfg.
func NewFrontend(eng qproc.Engine, cfg Config) *Frontend {
	cfg = cfg.withDefaults()
	f := &Frontend{
		eng:    eng,
		cfg:    cfg,
		start:  time.Now(),
		slots:  make(chan struct{}, cfg.Workers),
		bucket: NewTokenBucket(cfg.AdmitRate, cfg.AdmitBurst),
		shed:   NewShedder(cfg.Shed),
		rng:    randx.New(cfg.Seed),
		lat:    metrics.NewHistogram(metrics.DefaultLatencyBounds()),
		Tokenize: func(s string) []string {
			return strings.Fields(strings.ToLower(s))
		},
	}
	if dq, ok := eng.(qproc.DeadlineQuerier); ok {
		f.dq = dq
	}
	return f
}

// Serve runs one request through admission, the queue, and a worker.
// On StatusOK the QueryResult carries the answer; on any other status
// the result is zero.
func (f *Frontend) Serve(ctx context.Context, req Request) (qproc.QueryResult, Status) {
	arrived := time.Now()
	f.offered.Add(1)

	f.mu.Lock()
	dropped := !f.shed.Admit(req.Class, f.rng.Float64())
	admitted := dropped || f.bucket.Allow(time.Since(f.start).Seconds())
	f.mu.Unlock()
	if dropped {
		return f.done(qproc.QueryResult{}, StatusShedOverload, arrived)
	}
	if !admitted {
		return f.done(qproc.QueryResult{}, StatusShedAdmission, arrived)
	}

	// The wait queue: goroutines blocked on the worker semaphore,
	// bounded by QueueCap.
	if f.waiting.Add(1) > int64(f.cfg.QueueCap) {
		f.waiting.Add(-1)
		return f.done(qproc.QueryResult{}, StatusShedQueueFull, arrived)
	}
	if f.cfg.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, arrived.Add(time.Duration(f.cfg.DeadlineMs*float64(time.Millisecond))))
		defer cancel()
	}
	select {
	case f.slots <- struct{}{}:
		f.waiting.Add(-1)
	case <-ctx.Done():
		f.waiting.Add(-1)
		return f.done(qproc.QueryResult{}, StatusTimeout, arrived)
	}
	defer func() { <-f.slots }()

	k := req.K
	if k <= 0 {
		k = f.cfg.DefaultK
	}
	var qr qproc.QueryResult
	remaining := 0.0
	if f.cfg.DeadlineMs > 0 {
		remaining = f.cfg.DeadlineMs - float64(time.Since(arrived))/float64(time.Millisecond)
		if remaining <= 0 {
			return f.done(qproc.QueryResult{}, StatusTimeout, arrived)
		}
	}
	if remaining > 0 && f.dq != nil {
		qr = f.dq.QueryTopKWithin(req.Terms, k, remaining)
	} else {
		//dwrlint:allow deadline engine is not a DeadlineQuerier or no deadline is configured; there is no budget to propagate
		qr = f.eng.QueryTopK(req.Terms, k)
	}
	switch {
	case qr.Err == nil:
		return f.done(qr, StatusOK, arrived)
	case errors.Is(qr.Err, qproc.ErrDeadlineExceeded):
		return f.done(qr, StatusTimeout, arrived)
	default:
		return f.done(qr, StatusFailed, arrived)
	}
}

// done accounts the outcome: every terminal latency feeds the shedding
// controller, so queue delay and engine slowness both push the level.
func (f *Frontend) done(qr qproc.QueryResult, st Status, arrived time.Time) (qproc.QueryResult, Status) {
	latMs := float64(time.Since(arrived)) / float64(time.Millisecond)
	f.statuses[st].Add(1)
	if st == StatusOK {
		f.served.Add(1)
	}
	f.mu.Lock()
	f.shed.Observe(latMs)
	f.lat.Add(latMs)
	f.mu.Unlock()
	return qr, st
}

// FrontStats is the /stats snapshot.
type FrontStats struct {
	Offered       int64   `json:"offered"`
	Served        int64   `json:"served"`
	ShedOverload  int64   `json:"shed_overload"`
	ShedAdmission int64   `json:"shed_admission"`
	ShedQueueFull int64   `json:"shed_queue_full"`
	Timeout       int64   `json:"timeout"`
	Failed        int64   `json:"failed"`
	Queued        int64   `json:"queued"`
	ShedLevel     float64 `json:"shed_level"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`

	EngineQueries  int `json:"engine_queries"`
	EngineDegraded int `json:"engine_degraded"`
	EngineFailed   int `json:"engine_failed"`
	UnitsLive      int `json:"units_live"`
	Units          int `json:"units"`

	// Selection is present when the engine runs a query mediator
	// (collection selection on the serving path).
	Selection *SelectionStats `json:"selection,omitempty"`
}

// SelectionStats is the /stats view of the engine's collection-selection
// counters: how many queries were pruned to a site subset, the fan-out
// saved, and the sampled Recall@k of mediated answers against the
// exhaustive fan-out.
type SelectionStats struct {
	Queries        int     `json:"queries"`
	Mediated       int     `json:"mediated"`
	FullFanout     int     `json:"full_fanout"`
	SitesContacted int     `json:"sites_contacted"`
	SitesSkipped   int     `json:"sites_skipped"`
	RecallSamples  int     `json:"recall_samples"`
	MeanRecall     float64 `json:"mean_recall"`
}

// Stats snapshots the front-end and engine counters.
func (f *Frontend) Stats() FrontStats {
	st := FrontStats{
		Offered:       f.offered.Load(),
		Served:        f.served.Load(),
		ShedOverload:  f.statuses[StatusShedOverload].Load(),
		ShedAdmission: f.statuses[StatusShedAdmission].Load(),
		ShedQueueFull: f.statuses[StatusShedQueueFull].Load(),
		Timeout:       f.statuses[StatusTimeout].Load(),
		Failed:        f.statuses[StatusFailed].Load(),
		Queued:        f.waiting.Load(),
	}
	f.mu.Lock()
	st.ShedLevel = f.shed.Level()
	st.P50Ms = f.lat.Quantile(0.50)
	st.P95Ms = f.lat.Quantile(0.95)
	st.P99Ms = f.lat.Quantile(0.99)
	f.mu.Unlock()
	es := f.eng.Stats()
	st.EngineQueries = es.Queries
	st.EngineDegraded = es.Degraded
	st.EngineFailed = es.Failed
	if es.Selection.Queries > 0 {
		st.Selection = &SelectionStats{
			Queries:        es.Selection.Queries,
			Mediated:       es.Selection.Mediated,
			FullFanout:     es.Selection.FullFanout,
			SitesContacted: es.Selection.SitesContacted,
			SitesSkipped:   es.Selection.SitesSkipped,
			RecallSamples:  es.Selection.RecallSamples,
			MeanRecall:     es.Selection.MeanRecall(),
		}
	}
	h := f.eng.Health()
	st.UnitsLive = h.Live()
	st.Units = h.Units
	return st
}

// Handler returns the HTTP surface: /search, /stats, /healthz.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", f.handleSearch)
	mux.HandleFunc("/stats", f.handleStats)
	mux.HandleFunc("/healthz", f.handleHealthz)
	return mux
}

type searchHit struct {
	Doc   int     `json:"doc"`
	Score float64 `json:"score"`
	URL   string  `json:"url,omitempty"`
}

type searchResponse struct {
	Status    string      `json:"status"`
	Results   []searchHit `json:"results,omitempty"`
	LatencyMs float64     `json:"latency_ms"`
	Degraded  bool        `json:"degraded,omitempty"`
	FromCache bool        `json:"from_cache,omitempty"`
}

// handleSearch answers GET /search?q=terms[&k=10][&class=batch].
func (f *Frontend) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	terms := f.Tokenize(q.Get("q"))
	if len(terms) == 0 {
		http.Error(w, `{"error":"missing or empty q parameter"}`, http.StatusBadRequest)
		return
	}
	req := Request{Terms: terms, Key: strings.Join(terms, " ")}
	if q.Get("class") == "batch" {
		req.Class = Batch
	}
	if ks := q.Get("k"); ks != "" {
		k, err := strconv.Atoi(ks)
		if err != nil || k <= 0 {
			http.Error(w, `{"error":"k must be a positive integer"}`, http.StatusBadRequest)
			return
		}
		req.K = k
	}
	qr, st := f.Serve(r.Context(), req)
	resp := searchResponse{Status: st.String(), LatencyMs: qr.LatencyMs,
		Degraded: qr.Degraded, FromCache: qr.FromCache}
	for _, res := range qr.Results {
		hit := searchHit{Doc: res.Doc, Score: res.Score}
		if f.Resolve != nil {
			hit.URL = f.Resolve(res.Doc)
		}
		resp.Results = append(resp.Results, hit)
	}
	writeJSON(w, st.HTTPCode(), resp)
}

func (f *Frontend) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, f.Stats())
}

func (f *Frontend) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := f.eng.Health()
	code := http.StatusOK
	if !h.Healthy() {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]interface{}{
		"healthy": h.Healthy(),
		"live":    h.Live(),
		"units":   h.Units,
		"down":    h.Down,
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// The status is already committed; an encode failure here means the
	// client went away, which the server loop handles.
	_ = json.NewEncoder(w).Encode(v)
}
