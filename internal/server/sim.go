package server

import (
	"container/heap"
	"errors"
	"math/rand"

	"dwr/internal/metrics"
	"dwr/internal/qproc"
	"dwr/internal/randx"
)

// Run drives engine through the admission → queue → workers pipeline in
// virtual time: a discrete-event loop over the source's arrivals and
// the worker pool's completions. Every admitted request performs a real
// engine evaluation (the answer is genuinely computed), and its service
// time on the worker is the engine's virtual latency — so the measured
// saturation point is the G/G/c bound of the engine's actual service
// distribution, not of an assumed one.
//
// The loop is single-goroutine and all randomness is seeded
// (Config.Seed plus whatever the source was built with), so a run is
// exactly reproducible.
func Run(eng qproc.Engine, cfg Config, src Source) Report {
	cfg = cfg.withDefaults()
	s := &simState{
		eng:      eng,
		cfg:      cfg,
		src:      src,
		bucket:   NewTokenBucket(cfg.AdmitRate, cfg.AdmitBurst),
		shed:     NewShedder(cfg.Shed),
		rng:      randx.New(cfg.Seed),
		firstArr: -1,
	}
	if dq, ok := eng.(qproc.DeadlineQuerier); ok {
		s.dq = dq
	}
	for _, a := range src.Init() {
		s.push(event{t: a.At, kind: evArrival, a: a})
	}
	for len(s.events) > 0 {
		ev := s.pop()
		if ev.t > s.lastT {
			s.lastT = ev.t
		}
		switch ev.kind {
		case evArrival:
			s.arrive(ev.a, ev.t)
		case evDone:
			s.complete(ev.job, ev.t)
		}
	}
	return s.report()
}

// Event kinds, in tie-break order at equal times: completions release
// workers before a simultaneous arrival is classified, matching a real
// front-end where the dispatch loop runs ahead of the accept loop.
const (
	evDone = iota
	evArrival
)

type event struct {
	t    float64
	kind int
	seq  int64 // insertion order, the final tie-break
	a    Arrival
	job  *job
}

// job is one admitted request occupying a worker.
type job struct {
	a       Arrival
	service float64 // seconds on the worker
	qr      qproc.QueryResult
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

type simState struct {
	eng qproc.Engine
	dq  qproc.DeadlineQuerier // eng, when it accepts deadlines
	cfg Config
	src Source

	events eventHeap
	seq    int64

	bucket *TokenBucket
	shed   *Shedder
	rng    *rand.Rand

	queues [numClasses][]Arrival
	qhead  [numClasses]int
	qlen   int
	busy   int // workers occupied

	firstArr float64
	lastT    float64
	busySec  float64
	started  int

	rep     Report
	latency [numClasses]metrics.Sample
}

func (s *simState) push(ev event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

func (s *simState) pop() event { return heap.Pop(&s.events).(event) }

// finish hands a terminal outcome back to the source, scheduling the
// follow-up arrival a closed-loop user issues after thinking.
func (s *simState) finish(a Arrival, at float64) {
	next, ok := s.src.OnDone(a, at)
	if !ok {
		return
	}
	if next.At < at {
		next.At = at
	}
	s.push(event{t: next.At, kind: evArrival, a: next})
}

// arrive classifies one arrival: shed, start service, or queue.
func (s *simState) arrive(a Arrival, t float64) {
	if s.firstArr < 0 {
		s.firstArr = t
	}
	s.rep.Offered++
	s.rep.Class[a.Req.Class].Offered++
	switch {
	case !s.shed.Admit(a.Req.Class, s.rng.Float64()):
		s.rep.ShedOverload++
		s.rep.Class[a.Req.Class].Shed++
		s.finish(a, t)
	case !s.bucket.Allow(t):
		s.rep.ShedAdmission++
		s.rep.Class[a.Req.Class].Shed++
		s.finish(a, t)
	case s.busy < s.cfg.Workers:
		s.rep.Admitted++
		s.start(a, t)
	case s.qlen >= s.cfg.QueueCap:
		s.rep.ShedQueueFull++
		s.rep.Class[a.Req.Class].Shed++
		s.finish(a, t)
	default:
		s.rep.Admitted++
		s.queues[a.Req.Class] = append(s.queues[a.Req.Class], a)
		s.qlen++
		if s.qlen > s.rep.MaxQueueLen {
			s.rep.MaxQueueLen = s.qlen
		}
	}
}

// start runs the engine evaluation and occupies a worker for its
// virtual duration, propagating the request's remaining deadline budget
// into the engine when it accepts one.
func (s *simState) start(a Arrival, t float64) {
	k := a.Req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	var qr qproc.QueryResult
	remaining := 0.0
	if s.cfg.DeadlineMs > 0 {
		remaining = s.cfg.DeadlineMs - (t-a.At)*1000
	}
	if remaining > 0 && s.dq != nil {
		qr = s.dq.QueryTopKWithin(a.Req.Terms, k, remaining)
	} else {
		//dwrlint:allow deadline engine is not a DeadlineQuerier or no deadline is configured; there is no budget to propagate
		qr = s.eng.QueryTopK(a.Req.Terms, k)
	}
	j := &job{a: a, service: qr.LatencyMs / 1000, qr: qr}
	s.busy++
	s.started++
	s.busySec += j.service
	s.push(event{t: t + j.service, kind: evDone, job: j})
}

// complete releases the worker, accounts the outcome, and dispatches
// queued work.
func (s *simState) complete(j *job, t float64) {
	s.busy--
	latMs := (t - j.a.At) * 1000
	s.shed.Observe(latMs)
	switch {
	case j.qr.Err == nil:
		s.rep.Served++
		s.rep.Class[j.a.Req.Class].Served++
		if j.qr.Degraded {
			s.rep.Degraded++
		}
		s.latency[j.a.Req.Class].Add(latMs)
	case errors.Is(j.qr.Err, qproc.ErrDeadlineExceeded):
		s.rep.EngineDeadline++
		s.rep.Class[j.a.Req.Class].Shed++
	default:
		s.rep.EngineFailed++
		s.rep.Class[j.a.Req.Class].Shed++
	}
	s.finish(j.a, t)
	s.dispatch(t)
}

// dispatch starts queued requests on free workers, interactive first,
// evicting entries whose deadline already passed while they waited.
func (s *simState) dispatch(t float64) {
	for s.busy < s.cfg.Workers && s.qlen > 0 {
		var a Arrival
		found := false
		for c := 0; c < int(numClasses); c++ {
			if s.qhead[c] < len(s.queues[c]) {
				a = s.queues[c][s.qhead[c]]
				s.queues[c][s.qhead[c]] = Arrival{} // release for GC
				s.qhead[c]++
				if s.qhead[c] == len(s.queues[c]) {
					s.queues[c] = s.queues[c][:0]
					s.qhead[c] = 0
				}
				found = true
				break
			}
		}
		if !found {
			return
		}
		s.qlen--
		if s.cfg.DeadlineMs > 0 && (t-a.At)*1000 >= s.cfg.DeadlineMs {
			s.rep.EvictedDeadline++
			s.rep.Class[a.Req.Class].Shed++
			s.finish(a, t)
			continue
		}
		s.start(a, t)
	}
}

func (s *simState) report() Report {
	r := s.rep
	r.Workers = s.cfg.Workers
	r.FinalShedLevel = s.shed.Level()
	if s.firstArr >= 0 && s.lastT > s.firstArr {
		r.MakespanSec = s.lastT - s.firstArr
		r.OfferedQPS = float64(r.Offered) / r.MakespanSec
		r.GoodputQPS = float64(r.Served) / r.MakespanSec
		r.Utilization = s.busySec / (float64(s.cfg.Workers) * r.MakespanSec)
	}
	if s.started > 0 {
		r.MeanServiceMs = s.busySec * 1000 / float64(s.started)
	}
	for c := range r.Class {
		cl := &r.Class[c]
		sm := &s.latency[c]
		if sm.N() == 0 {
			continue
		}
		cl.P50Ms = sm.Quantile(0.50)
		cl.P95Ms = sm.Quantile(0.95)
		cl.P99Ms = sm.Quantile(0.99)
		cl.MaxMs = sm.Max()
		cl.MeanMs = sm.Mean()
	}
	return r
}
