package server

import (
	"math"
	"testing"
)

func TestTokenBucketPacesToRate(t *testing.T) {
	b := NewTokenBucket(100, 10) // 100/s sustained, 10 burst
	admitted := 0
	// 2000 arrivals over 5 seconds = 400/s offered.
	for i := 0; i < 2000; i++ {
		if b.Allow(float64(i) * 5.0 / 2000) {
			admitted++
		}
	}
	// ~500 sustained plus the 10-token burst.
	if admitted < 480 || admitted > 540 {
		t.Fatalf("admitted %d of 2000 at 4x overload; want ≈510", admitted)
	}
}

func TestTokenBucketBurstThenDeny(t *testing.T) {
	b := NewTokenBucket(1, 5)
	for i := 0; i < 5; i++ {
		if !b.Allow(0) {
			t.Fatalf("burst admission %d denied on a full bucket", i)
		}
	}
	if b.Allow(0) {
		t.Fatal("6th instantaneous arrival admitted past a burst of 5")
	}
	// One second refills one token.
	if !b.Allow(1) {
		t.Fatal("arrival after refill denied")
	}
	if b.Allow(1) {
		t.Fatal("second arrival after a single-token refill admitted")
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	b := NewTokenBucket(0, 5)
	for i := 0; i < 100; i++ {
		if !b.Allow(0) {
			t.Fatal("disabled bucket denied an arrival")
		}
	}
	var nilBucket *TokenBucket
	if !nilBucket.Allow(0) {
		t.Fatal("nil bucket denied an arrival")
	}
}

func TestShedderNilSafe(t *testing.T) {
	s := NewShedder(ShedConfig{}) // disabled
	if s != nil {
		t.Fatal("disabled config built a shedder")
	}
	s.Observe(1e9)
	if s.Level() != 0 || s.DropProb(Batch) != 0 {
		t.Fatal("nil shedder sheds")
	}
	if !s.Admit(Interactive, 0) || !s.Admit(Batch, 0) {
		t.Fatal("nil shedder denied an arrival")
	}
}

func TestShedderRampsAndRecovers(t *testing.T) {
	s := NewShedder(ShedConfig{TargetP99Ms: 100, Window: 50})
	// Latencies far past the SLO push the level up window by window.
	for i := 0; i < 500; i++ {
		s.Observe(1000)
	}
	high := s.Level()
	if high <= 0.4 {
		t.Fatalf("level %.3f after sustained 10x-SLO latency; want substantial", high)
	}
	if high > maxShedLevel+1e-12 {
		t.Fatalf("level %.3f exceeds the %.2f cap", high, maxShedLevel)
	}
	// Recovery: latencies far below the SLO decay the level back.
	for i := 0; i < 2000; i++ {
		s.Observe(1)
	}
	if lv := s.Level(); lv >= high/4 {
		t.Fatalf("level %.3f after sustained recovery (was %.3f); want decay", lv, high)
	}
}

func TestShedderDropsBatchFirst(t *testing.T) {
	s := NewShedder(ShedConfig{TargetP99Ms: 100, Window: 10})
	prevB, prevI := 0.0, 0.0
	for step := 0; step < 60; step++ {
		for i := 0; i < 10; i++ {
			s.Observe(800)
		}
		b, iv := s.DropProb(Batch), s.DropProb(Interactive)
		if b < iv {
			t.Fatalf("level %.3f: batch drop %.3f below interactive %.3f", s.Level(), b, iv)
		}
		if b < prevB-1e-12 || iv < prevI-1e-12 {
			t.Fatalf("drop probabilities fell while latency stayed high")
		}
		prevB, prevI = b, iv
	}
	// At the cap: all batch shed, but interactive keeps a trickle.
	if prevB != 1 {
		t.Fatalf("batch drop %.3f at cap; want 1", prevB)
	}
	if prevI >= 1 {
		t.Fatal("interactive fully shed; the cap must keep a trickle")
	}
	// Half-level boundary semantics: level 0.5 sheds all batch, no
	// interactive.
	s2 := &Shedder{level: 0.5}
	if s2.DropProb(Batch) != 1 || s2.DropProb(Interactive) != 0 {
		t.Fatalf("level 0.5: batch %.3f interactive %.3f; want 1 and 0",
			s2.DropProb(Batch), s2.DropProb(Interactive))
	}
}

func TestShedderInfiniteQuantileBounded(t *testing.T) {
	s := NewShedder(ShedConfig{TargetP99Ms: 10, Window: 10})
	// Every observation overflows the last bucket: the +Inf p99 must be
	// treated as a finite push, never poisoning the level.
	for i := 0; i < 100; i++ {
		s.Observe(1e12)
	}
	if lv := s.Level(); math.IsNaN(lv) || math.IsInf(lv, 0) || lv > maxShedLevel {
		t.Fatalf("level %v after overflow observations", lv)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers != 150 {
		t.Fatalf("default workers %d; want the paper's 150", c.Workers)
	}
	if c.QueueCap != 300 {
		t.Fatalf("default queue cap %d; want 2x workers", c.QueueCap)
	}
	if c.DefaultK != 10 || c.AdmitBurst != 150 {
		t.Fatalf("defaults k=%d burst=%v", c.DefaultK, c.AdmitBurst)
	}
	if c = (Config{QueueCap: -1}).withDefaults(); c.QueueCap != 0 {
		t.Fatalf("QueueCap -1 resolved to %d; want 0 (no queue)", c.QueueCap)
	}
}
