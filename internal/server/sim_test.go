package server_test

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dwr/internal/index"
	"dwr/internal/loadgen"
	"dwr/internal/partition"
	"dwr/internal/qproc"
	"dwr/internal/querylog"
	"dwr/internal/queueing"
	"dwr/internal/randx"
	"dwr/internal/rank"
	"dwr/internal/server"
	"dwr/internal/simweb"
)

// benchEngine builds a small real DocEngine plus a query log matching
// its corpus, the integration fixture for serving tests.
func benchEngine(t *testing.T) (*qproc.DocEngine, *querylog.Log) {
	t.Helper()
	wcfg := simweb.DefaultConfig()
	wcfg.Hosts = 60
	wcfg.MaxPages = 40
	wcfg.VocabSize = 1500
	web := simweb.New(wcfg)

	var docs []index.Doc
	for _, p := range web.Pages {
		if p.Private {
			continue
		}
		h := web.Hosts[p.Host]
		vocab := web.Vocabs[h.Lang]
		terms := make([]string, len(p.Terms))
		for i, tid := range p.Terms {
			terms[i] = vocab.Word(int(tid))
		}
		docs = append(docs, index.Doc{Ext: p.ID, Terms: terms})
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Ext < docs[j].Ext })
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	eng, err := qproc.NewDocEngine(index.DefaultOptions(), docs,
		partition.RoundRobinDocs(ids, 4))
	if err != nil {
		t.Fatal(err)
	}

	lcfg := querylog.DefaultConfig()
	lcfg.Distinct = 300
	lcfg.Total = 2000
	return eng, querylog.Generate(web, lcfg)
}

// stubEngine answers every query with a seeded lognormal virtual
// latency, so sim tests control E[S] exactly without index cost. Calls
// happen in deterministic event order, so the draw sequence — and the
// whole run — replays for a fixed seed.
type stubEngine struct {
	rng     *rand.Rand
	mu      float64 // lognormal location of the service time in ms
	sigma   float64
	queries int
}

func newStubEngine(seed int64, meanMs, sigma float64) *stubEngine {
	// E[lognormal] = exp(mu + sigma^2/2); solve mu for the wanted mean.
	return &stubEngine{
		rng:   randx.New(seed),
		mu:    math.Log(meanMs) - sigma*sigma/2,
		sigma: sigma,
	}
}

func (e *stubEngine) draw() float64 { return randx.LogNormal(e.rng, e.mu, e.sigma) }

func (e *stubEngine) QueryTopK(terms []string, k int) qproc.QueryResult {
	e.queries++
	return qproc.QueryResult{
		LatencyMs: e.draw(),
		Results:   []rank.Result{{Doc: len(terms), Score: 1}},
	}
}

func (e *stubEngine) QueryTopKWithin(terms []string, k int, deadlineMs float64) qproc.QueryResult {
	qr := e.QueryTopK(terms, k)
	if deadlineMs > 0 && qr.LatencyMs > deadlineMs {
		qr.Err = qproc.ErrDeadlineExceeded
		qr.Results = nil
		qr.LatencyMs = deadlineMs
	}
	return qr
}

func (e *stubEngine) K() int                   { return 1 }
func (e *stubEngine) Stats() qproc.EngineStats { return qproc.EngineStats{Queries: e.queries} }
func (e *stubEngine) Health() qproc.Health     { return qproc.Health{Units: 1} }

// openStub is a minimal open-loop source: n Poisson arrivals at rate
// qps, all interactive except batchFrac.
func openStub(seed int64, qps float64, n int, batchFrac float64) server.Source {
	rng := randx.New(seed)
	arr := make([]server.Arrival, n)
	t := 0.0
	for i := range arr {
		t += randx.Exp(rng, 1/qps)
		cl := server.Interactive
		if randx.Bernoulli(rng, batchFrac) {
			cl = server.Batch
		}
		arr[i] = server.Arrival{At: t, User: i, Req: server.Request{
			Terms: []string{"a"}, Key: "a", Class: cl}}
	}
	return sliceSource(arr)
}

type sliceSource []server.Arrival

func (s sliceSource) Init() []server.Arrival { return s }
func (sliceSource) OnDone(server.Arrival, float64) (server.Arrival, bool) {
	return server.Arrival{}, false
}

const (
	stubMeanMs = 2.0
	stubC      = 20
)

func stubBound() float64 { return queueing.CapacityBound(stubC, stubMeanMs/1000) }

// TestRunBelowBoundStable: at 70% of the G/G/c bound, everything is
// served, nothing shed, latency stays near pure service time.
func TestRunBelowBoundStable(t *testing.T) {
	eng := newStubEngine(1, stubMeanMs, 0.5)
	rep := server.Run(eng, server.Config{Workers: stubC, Seed: 2},
		openStub(3, 0.7*stubBound(), 6000, 0))
	if rep.Served != rep.Offered {
		t.Fatalf("below bound: served %d of %d", rep.Served, rep.Offered)
	}
	if rep.ShedOverload+rep.ShedAdmission+rep.ShedQueueFull != 0 {
		t.Fatalf("below bound: shed %+v", rep)
	}
	it := rep.Class[server.Interactive]
	if it.P99Ms > 10*stubMeanMs {
		t.Fatalf("below bound: p99 %.2f ms for E[S]=%v ms", it.P99Ms, stubMeanMs)
	}
	if rep.Utilization < 0.5 || rep.Utilization > 0.85 {
		t.Fatalf("utilization %.3f at 70%% load", rep.Utilization)
	}
	if d := rep.MeanServiceMs/stubMeanMs - 1; d > 0.1 || d < -0.1 {
		t.Fatalf("measured E[S] %.3f ms; want ≈%v", rep.MeanServiceMs, stubMeanMs)
	}
}

// TestRunOverloadDegradesGracefully: at 2x the bound with admission
// control and shedding on, goodput holds near the bound, the excess is
// shed, and admitted-query latency stays bounded — the paper's
// graceful-degradation story instead of queue collapse.
func TestRunOverloadDegradesGracefully(t *testing.T) {
	eng := newStubEngine(4, stubMeanMs, 0.5)
	bound := stubBound()
	cfg := server.Config{
		Workers:    stubC,
		QueueCap:   2 * stubC,
		AdmitRate:  1.05 * bound,
		DeadlineMs: 50 * stubMeanMs,
		Shed:       server.ShedConfig{TargetP99Ms: 20 * stubMeanMs, Window: 200},
		Seed:       5,
	}
	rep := server.Run(eng, cfg, openStub(6, 2*bound, 20000, 0))

	shed := rep.ShedOverload + rep.ShedAdmission + rep.ShedQueueFull + rep.EvictedDeadline
	if shed < rep.Offered/4 {
		t.Fatalf("2x overload shed only %d of %d", shed, rep.Offered)
	}
	if rep.GoodputQPS < 0.75*bound {
		t.Fatalf("goodput %.0f qps collapsed under overload (bound %.0f)", rep.GoodputQPS, bound)
	}
	it := rep.Class[server.Interactive]
	if it.P99Ms > cfg.DeadlineMs {
		t.Fatalf("admitted p99 %.1f ms exceeds the %v ms deadline", it.P99Ms, cfg.DeadlineMs)
	}
	if rep.MaxQueueLen > cfg.QueueCap {
		t.Fatalf("queue grew to %d past its cap %d", rep.MaxQueueLen, cfg.QueueCap)
	}
}

// TestRunDeterministic: identical seeds replay to a deep-equal Report.
func TestRunDeterministic(t *testing.T) {
	run := func() server.Report {
		eng := newStubEngine(7, stubMeanMs, 0.8)
		return server.Run(eng, server.Config{
			Workers:   stubC,
			AdmitRate: stubBound(),
			Shed:      server.ShedConfig{TargetP99Ms: 10 * stubMeanMs},
			Seed:      8,
		}, openStub(9, 1.5*stubBound(), 5000, 0.3))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seeds, different reports:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRunShedsBatchFirst: under overload with both classes offered, the
// batch class is shed at a higher rate and interactive keeps better
// latency.
func TestRunShedsBatchFirst(t *testing.T) {
	eng := newStubEngine(10, stubMeanMs, 0.5)
	// The queue is deep enough that completion latency blows through the
	// SLO — the adaptive shedder, not queue overflow, must do the work.
	rep := server.Run(eng, server.Config{
		Workers:  stubC,
		QueueCap: 50 * stubC,
		Shed:     server.ShedConfig{TargetP99Ms: 10 * stubMeanMs, Window: 100},
		Seed:     11,
	}, openStub(12, 3*stubBound(), 20000, 0.5))

	it, ba := rep.Class[server.Interactive], rep.Class[server.Batch]
	if it.Offered == 0 || ba.Offered == 0 {
		t.Fatalf("classes not both offered: %+v %+v", it, ba)
	}
	shedRate := func(c server.ClassReport) float64 { return float64(c.Shed) / float64(c.Offered) }
	if shedRate(ba) <= shedRate(it) {
		t.Fatalf("batch shed rate %.3f not above interactive %.3f",
			shedRate(ba), shedRate(it))
	}
	if rep.FinalShedLevel == 0 {
		t.Fatal("3x overload never raised the shed level")
	}
}

// TestRunClosedLoopSelfLimits: a closed-loop population larger than the
// pool saturates it but cannot build unbounded overload — every request
// is eventually served without shedding when no limits are set.
func TestRunClosedLoopSelfLimits(t *testing.T) {
	eng := newStubEngine(13, stubMeanMs, 0.5)
	src := closedStub(14, 3*stubC, 4000)
	rep := server.Run(eng, server.Config{Workers: stubC, QueueCap: 10 * stubC, Seed: 15}, src)
	if rep.Offered != 4000 {
		t.Fatalf("closed loop issued %d of 4000", rep.Offered)
	}
	if rep.Served != rep.Offered {
		t.Fatalf("closed loop: served %d of %d", rep.Served, rep.Offered)
	}
	if rep.Utilization < 0.6 {
		t.Fatalf("population 3x the pool left utilization at %.3f", rep.Utilization)
	}
}

// closedStub is a minimal closed-loop source with near-zero think time.
type closedStubSrc struct {
	rng    *rand.Rand
	users  int
	n      int
	issued int
}

func closedStub(seed int64, users, n int) server.Source {
	return &closedStubSrc{rng: randx.New(seed), users: users, n: n}
}

func (s *closedStubSrc) req() server.Request {
	return server.Request{Terms: []string{"a"}, Key: "a"}
}

func (s *closedStubSrc) Init() []server.Arrival {
	n := s.users
	if n > s.n {
		n = s.n
	}
	out := make([]server.Arrival, n)
	for u := range out {
		out[u] = server.Arrival{At: randx.Exp(s.rng, 1e-4), User: u, Req: s.req()}
		s.issued++
	}
	return out
}

func (s *closedStubSrc) OnDone(a server.Arrival, at float64) (server.Arrival, bool) {
	if s.issued >= s.n {
		return server.Arrival{}, false
	}
	s.issued++
	return server.Arrival{At: at + randx.Exp(s.rng, 1e-4), User: a.User, Req: s.req()}, true
}

// noDeadlineEngine hides the stub's DeadlineQuerier so the front-end
// must enforce budgets alone (queue eviction).
type noDeadlineEngine struct{ e *stubEngine }

func (n noDeadlineEngine) QueryTopK(terms []string, k int) qproc.QueryResult {
	return n.e.QueryTopK(terms, k)
}
func (n noDeadlineEngine) K() int                   { return n.e.K() }
func (n noDeadlineEngine) Stats() qproc.EngineStats { return n.e.Stats() }
func (n noDeadlineEngine) Health() qproc.Health     { return n.e.Health() }

// TestRunDeadlineEnforcement: one slow worker, 10x overload, tight
// deadline. A deadline-blind engine forces queue-side eviction; a
// deadline-aware engine converts the backlog into engine-side deadline
// failures and keeps every served latency inside the budget.
func TestRunDeadlineEnforcement(t *testing.T) {
	cfg := server.Config{Workers: 1, QueueCap: 1000, DeadlineMs: 150, Seed: 17}

	t.Run("engine-blind", func(t *testing.T) {
		rep := server.Run(noDeadlineEngine{newStubEngine(16, 100, 0.2)}, cfg,
			openStub(18, 100, 500, 0)) // 100 qps at ~10/s capacity
		if rep.EvictedDeadline == 0 {
			t.Fatalf("tight deadline evicted nothing: %+v", rep)
		}
		if rep.Served+rep.EvictedDeadline+rep.EngineDeadline != rep.Offered {
			t.Fatalf("taxonomy does not add up: %+v", rep)
		}
	})

	t.Run("engine-aware", func(t *testing.T) {
		rep := server.Run(newStubEngine(16, 100, 0.2), cfg, openStub(18, 100, 500, 0))
		if rep.EngineDeadline == 0 {
			t.Fatalf("deadline-aware engine busted no budget: %+v", rep)
		}
		it := rep.Class[server.Interactive]
		if it.MaxMs > cfg.DeadlineMs+1e-9 {
			t.Fatalf("served request took %.1f ms past a %v ms deadline", it.MaxMs, cfg.DeadlineMs)
		}
		if rep.Served+rep.EvictedDeadline+rep.EngineDeadline != rep.Offered {
			t.Fatalf("taxonomy does not add up: %+v", rep)
		}
	})
}

// TestRunAgainstRealEngineWithLoadgen wires the full stack: querylog
// traffic through loadgen into Run over a real DocEngine, twice, and
// requires identical reports — end-to-end determinism of the tentpole.
func TestRunAgainstRealEngineWithLoadgen(t *testing.T) {
	run := func() server.Report {
		eng, lg := benchEngine(t)
		src := loadgen.Open(lg, loadgen.OpenConfig{
			Seed: 19, Rate: 2000, N: 1500, BatchFrac: 0.2,
		})
		return server.Run(eng, server.Config{
			Workers:    4,
			DeadlineMs: 50,
			Shed:       server.ShedConfig{TargetP99Ms: 25, Window: 100},
			Seed:       20,
		}, src)
	}
	a := run()
	if a.Served == 0 {
		t.Fatalf("real engine served nothing: %+v", a)
	}
	if a.Served+a.ShedOverload+a.ShedAdmission+a.ShedQueueFull+
		a.EvictedDeadline+a.EngineDeadline+a.EngineFailed != a.Offered {
		t.Fatalf("outcome taxonomy does not partition offered: %+v", a)
	}
	if b := run(); !reflect.DeepEqual(a, b) {
		t.Fatal("real-engine run not deterministic across rebuilds")
	}
}
