package server

import (
	"math"

	"dwr/internal/metrics"
)

// TokenBucket is the admission controller: admissions are paced at a
// sustained rate with a bounded burst. Time is the caller's clock in
// seconds (virtual under Run, wall-relative under Frontend); the caller
// also provides synchronization.
type TokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   float64
	primed bool
}

// NewTokenBucket creates a bucket admitting ratePerSec sustained with
// up to burst back-to-back admissions. ratePerSec <= 0 disables the
// bucket (Allow always true); burst <= 0 picks 1. The bucket starts
// full.
func NewTokenBucket(ratePerSec, burst float64) *TokenBucket {
	if burst <= 0 {
		burst = 1
	}
	return &TokenBucket{rate: ratePerSec, burst: burst, tokens: burst}
}

// Allow reports whether an arrival at time now (seconds, nondecreasing
// across calls) is admitted, consuming one token if so.
func (b *TokenBucket) Allow(now float64) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	if b.primed {
		if dt := now - b.last; dt > 0 {
			b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		}
	}
	b.last = now
	b.primed = true
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// ShedConfig tunes the adaptive load shedder.
type ShedConfig struct {
	// TargetP99Ms is the p99 latency SLO the shedder defends: when the
	// observed p99 of completed requests exceeds it, the shed level
	// rises; when latency recovers, the level decays. <= 0 disables
	// adaptive shedding.
	TargetP99Ms float64
	// Window is the number of completions per control period
	// (<= 0 picks 200).
	Window int
	// Step is the proportional controller gain (<= 0 picks 0.15).
	Step float64
}

// maxShedLevel caps the shed level so some interactive traffic is
// always admitted: with no admitted requests there would be no
// completions, and a controller fed only by completions could never
// observe the recovery that lets it back off.
const maxShedLevel = 0.9

// Shedder is the adaptive load-shedding controller: it watches the
// latency of completed requests through a bucketed histogram
// (metrics.Histogram), and once per window compares the conservative
// p99 estimate (Histogram.Quantile) against the SLO, moving a shed
// level in [0, maxShedLevel]. The level maps to per-class drop
// probabilities that sacrifice batch traffic first:
//
//	batch:       min(1, 2·level)
//	interactive: max(0, 2·level − 1)
//
// so level 0.5 sheds all batch and no interactive load, and the cap
// keeps a trickle of interactive admissions flowing even at the top.
// The caller provides synchronization and the admission coin flips.
type Shedder struct {
	cfg    ShedConfig
	bounds []float64
	hist   *metrics.Histogram
	level  float64
}

// NewShedder creates a shedder for cfg; nil-safe to use when
// cfg.TargetP99Ms <= 0 (never sheds).
func NewShedder(cfg ShedConfig) *Shedder {
	if cfg.TargetP99Ms <= 0 {
		return nil
	}
	if cfg.Window <= 0 {
		cfg.Window = 200
	}
	if cfg.Step <= 0 {
		cfg.Step = 0.15
	}
	// Geometric buckets centred on the target so the p99 estimate is
	// sharp where the control decision happens.
	t := cfg.TargetP99Ms
	bounds := []float64{t / 16, t / 8, t / 4, t / 2, t * 0.75, t, t * 1.5, t * 2, t * 4, t * 8, t * 16}
	return &Shedder{cfg: cfg, bounds: bounds, hist: metrics.NewHistogram(bounds)}
}

// Observe records one completed request's latency (ms, arrival to
// completion) and, at window boundaries, runs the control step.
func (s *Shedder) Observe(latencyMs float64) {
	if s == nil {
		return
	}
	s.hist.Add(latencyMs)
	if s.hist.Total() < s.cfg.Window {
		return
	}
	p99 := s.hist.Quantile(0.99)
	if math.IsInf(p99, 1) {
		// The quantile fell past the last bucket (16× target): treat as
		// that bound — a strong but finite push upward.
		p99 = s.bounds[len(s.bounds)-1]
	}
	s.level += s.cfg.Step * (p99/s.cfg.TargetP99Ms - 1)
	if s.level < 0 {
		s.level = 0
	}
	if s.level > maxShedLevel {
		s.level = maxShedLevel
	}
	s.hist = metrics.NewHistogram(s.bounds)
}

// Level returns the current shed level in [0, maxShedLevel].
func (s *Shedder) Level() float64 {
	if s == nil {
		return 0
	}
	return s.level
}

// DropProb returns the probability an arrival of class c is shed at the
// current level.
func (s *Shedder) DropProb(c Class) float64 {
	if s == nil {
		return 0
	}
	if c == Batch {
		return math.Min(1, 2*s.level)
	}
	return math.Max(0, 2*s.level-1)
}

// Admit decides one arrival given a uniform variate u in [0, 1) from
// the caller's seeded RNG (passing the variate in keeps the decision
// deterministic and the Shedder clock- and rand-free).
func (s *Shedder) Admit(c Class, u float64) bool {
	return u >= s.DropProb(c)
}
