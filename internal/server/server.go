// Package server is the serving front-end the paper's Section 5
// capacity model describes: queries from an open population of users
// arrive at a front-end whose c worker threads form a G/G/c system, and
// the sustainable arrival rate is bounded by λ < c/E[S]
// (queueing.CapacityBound). Where internal/queueing reproduces that
// claim analytically, this package actually serves load: it wraps any
// qproc.Engine behind a bounded worker pool with
//
//   - a token-bucket admission controller (sustained rate + burst),
//   - a bounded FIFO wait queue with two priority classes (interactive
//     before batch) and deadline-aware eviction, and
//   - an adaptive load shedder driven by observed latency quantiles
//     (metrics.Histogram.Quantile), so that beyond saturation the
//     front-end degrades gracefully — bounded latency for admitted
//     queries, rising shed rate — instead of collapsing under an
//     unbounded queue.
//
// The pipeline exists in two harnesses over the same policy components:
// Run (sim.go) is a deterministic virtual-time discrete-event loop used
// by dwrbench to validate the G/G/c bound against real engines, and
// Frontend (http.go) is a wall-clock concurrent front-end served over
// HTTP by cmd/dwrserve.
package server

// Class is a request priority class. Interactive traffic (a user
// waiting at a search box) is queued and served before Batch traffic
// (prefetchers, analytics replays), and the adaptive
// shedder drops batch load first.
type Class int

// Priority classes, highest priority first.
const (
	Interactive Class = iota
	Batch
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "interactive"
}

// Request is one query presented to the front-end.
type Request struct {
	Terms []string
	Key   string // canonical query text, for stats and logs
	Class Class
	K     int // top-k to return (<= 0 picks Config.DefaultK)
}

// Arrival is one request arriving at a point in time, as produced by an
// internal/loadgen source. At is in seconds since the run start —
// virtual seconds under Run, wall-clock seconds under Frontend replay.
type Arrival struct {
	At   float64
	User int
	Req  Request
}

// Source feeds a workload to the serving loop. Open-loop sources
// (arrivals independent of completions) return their whole schedule
// from Init; closed-loop sources (each user waits for an answer, thinks,
// then asks again) seed one arrival per user and chain the rest through
// OnDone.
type Source interface {
	// Init returns the workload's initial arrivals.
	Init() []Arrival
	// OnDone reacts to the terminal outcome — served, shed, or timed
	// out — of a previously issued arrival at time `at`, optionally
	// issuing that user's next request (which must not be earlier than
	// `at`).
	OnDone(a Arrival, at float64) (Arrival, bool)
}

// Config sizes the serving pipeline. Zero values pick the defaults
// documented per field.
type Config struct {
	// Workers is c, the G/G/c worker pool width (<= 0 picks 150, the
	// paper's "typical configuration of an Apache server").
	Workers int
	// QueueCap bounds the wait queue, all classes together (< 0 means
	// no queue at all; 0 picks 2×Workers). A full queue sheds.
	QueueCap int
	// DeadlineMs is the per-request latency budget: requests still
	// queued past it are evicted, and the remaining budget is propagated
	// into the engine call (qproc.DeadlineQuerier). <= 0 disables.
	DeadlineMs float64
	// AdmitRate is the token bucket's sustained admission rate per
	// second (<= 0 disables admission control).
	AdmitRate float64
	// AdmitBurst is the bucket depth (<= 0 picks Workers).
	AdmitBurst float64
	// Shed configures the adaptive latency-quantile shedder.
	Shed ShedConfig
	// DefaultK is the top-k used when a request does not name one
	// (<= 0 picks 10).
	DefaultK int
	// Seed drives the shedder's admission coin flips.
	Seed int64
}

// withDefaults resolves the documented zero-value defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 150
	}
	if c.QueueCap == 0 {
		c.QueueCap = 2 * c.Workers
	}
	if c.QueueCap < 0 {
		c.QueueCap = 0
	}
	if c.AdmitBurst <= 0 {
		c.AdmitBurst = float64(c.Workers)
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	return c
}

// ClassReport summarizes one priority class's fate in a Report.
type ClassReport struct {
	Offered int
	Served  int
	Shed    int // all shed reasons plus deadline evictions
	// Latency quantiles of served requests, milliseconds, arrival to
	// completion.
	P50Ms, P95Ms, P99Ms, MaxMs, MeanMs float64
}

// Report is the outcome of one Run: the measured side of the G/G/c
// capacity story.
type Report struct {
	Workers int

	Offered  int // arrivals presented to the front-end
	Admitted int // passed shedding + admission control (queued or served)
	Served   int // answered successfully within budget

	// Shed and failure taxonomy, disjoint.
	ShedOverload    int // adaptive shedder (latency SLO defense)
	ShedAdmission   int // token bucket
	ShedQueueFull   int // bounded queue overflow
	EvictedDeadline int // queued past the deadline, never started
	EngineDeadline  int // started, but the engine busted the propagated budget
	EngineFailed    int // engine refused (fail-fast fault policy, all sites down)

	Degraded int // served, but with partitions missing

	MakespanSec    float64 // first arrival to last event
	OfferedQPS     float64
	GoodputQPS     float64 // Served / MakespanSec
	MeanServiceMs  float64 // E[S] actually measured on the worker pool
	Utilization    float64 // busy worker-time / (Workers × makespan)
	MaxQueueLen    int
	FinalShedLevel float64

	Class [numClasses]ClassReport
}
