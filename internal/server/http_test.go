package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dwr/internal/qproc"
	"dwr/internal/rank"
	"dwr/internal/server"
)

// blockingEngine parks every query until released, so tests can fill
// the worker pool and the wait queue deterministically.
type blockingEngine struct {
	release chan struct{}
	calls   atomic.Int64
}

func (e *blockingEngine) QueryTopK(terms []string, k int) qproc.QueryResult {
	e.calls.Add(1)
	<-e.release
	return qproc.QueryResult{LatencyMs: 1, Results: []rank.Result{{Doc: 7, Score: 1}}}
}
func (e *blockingEngine) K() int                   { return 1 }
func (e *blockingEngine) Stats() qproc.EngineStats { return qproc.EngineStats{} }
func (e *blockingEngine) Health() qproc.Health     { return qproc.Health{Units: 1} }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFrontendQueueFull: with one worker busy and one request queued, a
// third arrival overflows the bounded queue.
func TestFrontendQueueFull(t *testing.T) {
	eng := &blockingEngine{release: make(chan struct{})}
	f := server.NewFrontend(eng, server.Config{Workers: 1, QueueCap: 1})
	req := server.Request{Terms: []string{"a"}}

	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			_, st := f.Serve(context.Background(), req)
			if st != server.StatusOK {
				t.Errorf("parked request finished %v", st)
			}
		}()
	}
	// One on the worker, one in the queue.
	waitFor(t, "worker occupancy", func() bool { return eng.calls.Load() == 1 })
	waitFor(t, "queue occupancy", func() bool { return f.Stats().Queued == 1 })

	_, st := f.Serve(context.Background(), req)
	if st != server.StatusShedQueueFull {
		t.Fatalf("third arrival got %v; want queue-full shed", st)
	}

	close(eng.release)
	wg.Wait()
	if s := f.Stats(); s.Served != 2 || s.ShedQueueFull != 1 || s.Offered != 3 {
		t.Fatalf("stats %+v", s)
	}
}

// TestFrontendTimeout: a queued request whose deadline expires before a
// worker frees up times out instead of waiting forever.
func TestFrontendTimeout(t *testing.T) {
	eng := &blockingEngine{release: make(chan struct{})}
	f := server.NewFrontend(eng, server.Config{Workers: 1, QueueCap: 5, DeadlineMs: 30})
	req := server.Request{Terms: []string{"a"}}

	done := make(chan server.Status, 1)
	go func() {
		_, st := f.Serve(context.Background(), req)
		done <- st
	}()
	waitFor(t, "worker occupancy", func() bool { return eng.calls.Load() == 1 })

	if _, st := f.Serve(context.Background(), req); st != server.StatusTimeout {
		t.Fatalf("queued request got %v; want timeout", st)
	}

	close(eng.release)
	if st := <-done; st != server.StatusTimeout {
		// The parked request also carried the 30 ms deadline and the
		// worker never freed within it — but it raced the release, so
		// accept OK too.
		if st != server.StatusOK {
			t.Fatalf("parked request finished %v", st)
		}
	}
}

// TestFrontendHTTP drives the real handler over httptest against a real
// engine: /search answers with ranked hits, /stats counts it, /healthz
// is green.
func TestFrontendHTTP(t *testing.T) {
	eng, lg := benchEngine(t)
	f := server.NewFrontend(eng, server.Config{Workers: 4, DeadlineMs: 5000})
	f.Resolve = func(doc int) string { return fmt.Sprintf("http://site/%d", doc) }
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	q := lg.Queries[0]
	resp, err := http.Get(srv.URL + "/search?k=5&q=" + url.QueryEscape(q.Key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search returned %d", resp.StatusCode)
	}
	var sr struct {
		Status  string `json:"status"`
		Results []struct {
			Doc int    `json:"doc"`
			URL string `json:"url"`
		} `json:"results"`
		LatencyMs float64 `json:"latency_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Status != "ok" {
		t.Fatalf("status %q", sr.Status)
	}
	if len(sr.Results) == 0 || len(sr.Results) > 5 {
		t.Fatalf("%d results for k=5", len(sr.Results))
	}
	if sr.Results[0].URL == "" {
		t.Fatal("Resolve not applied to hits")
	}

	// Bad requests are 400, not engine calls.
	for _, path := range []string{"/search", "/search?q=foo&k=-1"} {
		r2, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s returned %d; want 400", path, r2.StatusCode)
		}
	}

	r3, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.FrontStats
	if err := json.NewDecoder(r3.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if st.Offered != 1 || st.Served != 1 {
		t.Fatalf("stats offered=%d served=%d; want 1/1", st.Offered, st.Served)
	}

	r4, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", r4.StatusCode)
	}
}

// TestFrontendConcurrentLoad hammers Serve from many goroutines over a
// real engine — the -race exercise for the whole pipeline, plus the
// accounting identity under concurrency.
func TestFrontendConcurrentLoad(t *testing.T) {
	eng, lg := benchEngine(t)
	f := server.NewFrontend(eng, server.Config{
		Workers:    4,
		QueueCap:   8,
		DeadlineMs: 5000,
		AdmitRate:  1e6,
		Shed:       server.ShedConfig{TargetP99Ms: 5000},
	})
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				q := lg.Queries[(g*each+i)%len(lg.Queries)]
				cl := server.Interactive
				if i%3 == 0 {
					cl = server.Batch
				}
				f.Serve(context.Background(), server.Request{Terms: q.Terms, Key: q.Key, Class: cl})
			}
		}(g)
	}
	wg.Wait()
	st := f.Stats()
	if st.Offered != goroutines*each {
		t.Fatalf("offered %d; want %d", st.Offered, goroutines*each)
	}
	if total := st.Served + st.ShedOverload + st.ShedAdmission + st.ShedQueueFull +
		st.Timeout + st.Failed; total != st.Offered {
		t.Fatalf("outcomes %d do not partition offered %d: %+v", total, st.Offered, st)
	}
	if st.Served == 0 {
		t.Fatal("nothing served under plain load")
	}
}
