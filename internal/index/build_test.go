package index

import (
	"math/rand"
	"testing"
)

// allBuilderIndexes builds the same document set with every construction
// strategy and returns the results keyed by strategy name.
func allBuilderIndexes(t *testing.T, docs []Doc, opts Options) map[string]*Index {
	t.Helper()
	out := make(map[string]*Index)

	ref := NewBuilder(opts)
	for _, d := range docs {
		ref.AddDocument(d.Ext, d.Terms)
	}
	out["builder"] = MustBuild(ref)

	sb := NewSortBuilder(opts)
	for _, d := range docs {
		sb.AddDocument(d.Ext, d.Terms)
	}
	out["sort"] = MustBuild(sb)

	sp, err := NewSPIMIBuilder(opts, 16<<10, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := sp.AddDocument(d.Ext, d.Terms); err != nil {
			t.Fatal(err)
		}
	}
	spIx, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Spills() < 2 {
		t.Fatalf("SPIMI spilled only %d runs; budget too large to exercise merging", sp.Spills())
	}
	out["spimi"] = spIx

	mr, err := BuildMapReduce(opts, docs, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["mapreduce"] = mr

	pl, err := BuildPipeline(opts, docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	out["pipeline"] = pl

	return out
}

func TestAllBuildersProduceIdenticalIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	docs := randomDocs(rng, 300, 80)
	for _, opts := range []Options{
		DefaultOptions(),
		{Compress: false, StorePositions: true, BlockSize: 32},
		{Compress: true, StorePositions: false, BlockSize: 0},
	} {
		ixs := allBuilderIndexes(t, docs, opts)
		ref := ixs["builder"]
		for name, ix := range ixs {
			if !Equal(ref, ix) {
				t.Fatalf("opts %+v: %s index differs from reference", opts, name)
			}
		}
	}
}

func TestMergePartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := randomDocs(rng, 200, 50)
	opts := DefaultOptions()

	// Reference: single index over all docs (in ext order — randomDocs
	// already emits ascending ext IDs).
	ref := NewBuilder(opts)
	for _, d := range docs {
		ref.AddDocument(d.Ext, d.Terms)
	}
	refIx := MustBuild(ref)

	// Partition docs modulo 3 and merge.
	builders := []*MemBuilder{NewBuilder(opts), NewBuilder(opts), NewBuilder(opts)}
	for i, d := range docs {
		builders[i%3].AddDocument(d.Ext, d.Terms)
	}
	parts := make([]*Index, 3)
	for i, b := range builders {
		parts[i] = MustBuild(b)
	}
	merged, err := Merge(opts, parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(refIx, merged) {
		t.Fatal("merged index differs from single-pass reference")
	}
}

func TestMergeRejectsDuplicateDocs(t *testing.T) {
	opts := DefaultOptions()
	a := NewBuilder(opts)
	a.AddDocument(1, []string{"x"})
	b := NewBuilder(opts)
	b.AddDocument(1, []string{"y"})
	if _, err := Merge(opts, MustBuild(a), MustBuild(b)); err == nil {
		t.Fatal("Merge accepted overlapping document sets")
	}
}

func TestMapReduceRejectsDuplicates(t *testing.T) {
	docs := []Doc{{Ext: 1, Terms: []string{"a"}}, {Ext: 1, Terms: []string{"b"}}}
	if _, err := BuildMapReduce(DefaultOptions(), docs, 2, 2); err == nil {
		t.Fatal("BuildMapReduce accepted duplicate documents")
	}
	if _, err := BuildPipeline(DefaultOptions(), docs, 2); err == nil {
		t.Fatal("BuildPipeline accepted duplicate documents")
	}
}

func TestMapReduceWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	docs := randomDocs(rng, 100, 30)
	opts := DefaultOptions()
	ref, err := BuildMapReduce(opts, docs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mw := range []int{2, 5, 16} {
		for _, rw := range []int{1, 4} {
			ix, err := BuildMapReduce(opts, docs, mw, rw)
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(ref, ix) {
				t.Fatalf("mapreduce with %d/%d workers differs", mw, rw)
			}
		}
	}
}

func TestPipelineStageCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	docs := randomDocs(rng, 100, 30)
	opts := DefaultOptions()
	ref, err := BuildPipeline(opts, docs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 3, 8} {
		ix, err := BuildPipeline(opts, docs, s)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(ref, ix) {
			t.Fatalf("pipeline with %d stages differs", s)
		}
	}
}

func TestBuildersEmptyInput(t *testing.T) {
	opts := DefaultOptions()
	if ix, err := BuildMapReduce(opts, nil, 3, 3); err != nil || ix.NumDocs() != 0 {
		t.Fatalf("empty mapreduce: %v, %d docs", err, ix.NumDocs())
	}
	if ix, err := BuildPipeline(opts, nil, 3); err != nil || ix.NumDocs() != 0 {
		t.Fatalf("empty pipeline: %v, %d docs", err, ix.NumDocs())
	}
	sp, err := NewSPIMIBuilder(opts, 1024, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := sp.Build()
	if err != nil || ix.NumDocs() != 0 {
		t.Fatalf("empty spimi: %v, %d docs", err, ix.NumDocs())
	}
}

func TestSPIMIDuplicateDocError(t *testing.T) {
	sp, err := NewSPIMIBuilder(DefaultOptions(), 1024, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.AddDocument(5, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := sp.AddDocument(5, []string{"b"}); err == nil {
		t.Fatal("SPIMI accepted duplicate document")
	}
}
