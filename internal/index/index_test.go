package index

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// buildTiny builds a small index with known contents.
func buildTiny(opts Options) *Index {
	b := NewBuilder(opts)
	b.AddDocument(10, []string{"apple", "banana", "apple"})
	b.AddDocument(20, []string{"banana", "cherry"})
	b.AddDocument(30, []string{"apple", "cherry", "cherry", "date"})
	return MustBuild(b)
}

func TestIndexBasics(t *testing.T) {
	ix := buildTiny(DefaultOptions())
	if ix.NumDocs() != 3 || ix.NumTerms() != 4 {
		t.Fatalf("docs=%d terms=%d, want 3/4", ix.NumDocs(), ix.NumTerms())
	}
	if ix.DF("apple") != 2 || ix.DF("banana") != 2 || ix.DF("cherry") != 2 || ix.DF("date") != 1 {
		t.Fatal("document frequencies wrong")
	}
	if ix.CF("apple") != 3 || ix.CF("cherry") != 3 {
		t.Fatal("collection frequencies wrong")
	}
	if ix.DF("missing") != 0 || ix.CF("missing") != 0 {
		t.Fatal("missing term should have zero frequencies")
	}
	if ix.TotalLen() != 9 || ix.AvgDocLen() != 3 {
		t.Fatalf("total=%d avg=%v", ix.TotalLen(), ix.AvgDocLen())
	}
	if ix.ExtID(0) != 10 || ix.ExtID(2) != 30 {
		t.Fatal("external ID mapping wrong")
	}
	if ix.InternalID(20) != 1 || ix.InternalID(99) != -1 {
		t.Fatal("internal ID mapping wrong")
	}
	if ix.DocLen(2) != 4 {
		t.Fatalf("DocLen(2) = %d, want 4", ix.DocLen(2))
	}
}

func TestPostingsIteration(t *testing.T) {
	ix := buildTiny(DefaultOptions())
	it := ix.Postings("apple")
	if it == nil {
		t.Fatal("nil iterator for present term")
	}
	var got []Posting
	for it.Next() {
		got = append(got, it.Posting())
	}
	if len(got) != 2 || got[0].Doc != 0 || got[0].TF != 2 || got[1].Doc != 2 || got[1].TF != 1 {
		t.Fatalf("apple postings = %+v", got)
	}
	if ix.Postings("missing") != nil {
		t.Fatal("non-nil iterator for absent term")
	}
}

func TestPositions(t *testing.T) {
	ix := buildTiny(DefaultOptions())
	it := ix.PostingsWithPositions("apple")
	it.Next()
	p := it.Posting()
	if !reflect.DeepEqual(p.Pos, []int32{0, 2}) {
		t.Fatalf("apple positions in doc 0 = %v, want [0 2]", p.Pos)
	}
	// Plain iterator does not materialize positions.
	it2 := ix.Postings("apple")
	it2.Next()
	if it2.Posting().Pos != nil {
		t.Fatal("plain iterator materialized positions")
	}
}

func TestCompressedAndFixedAgree(t *testing.T) {
	optsC := DefaultOptions()
	optsF := DefaultOptions()
	optsF.Compress = false
	a, b := buildTiny(optsC), buildTiny(optsF)
	if !Equal(a, b) {
		t.Fatal("compressed and fixed-width indexes differ in content")
	}
}

func TestCompressionShrinksIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	docs := randomDocs(rng, 200, 500)
	build := func(compress bool) *Index {
		opts := DefaultOptions()
		opts.Compress = compress
		b := NewBuilder(opts)
		for _, d := range docs {
			b.AddDocument(d.Ext, d.Terms)
		}
		return MustBuild(b)
	}
	c, f := build(true), build(false)
	if c.SizeBytes() >= f.SizeBytes() {
		t.Fatalf("compressed %d bytes ≥ fixed %d bytes", c.SizeBytes(), f.SizeBytes())
	}
}

func TestSkipToMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	docs := randomDocs(rng, 400, 60)
	opts := DefaultOptions()
	opts.BlockSize = 16
	b := NewBuilder(opts)
	for _, d := range docs {
		b.AddDocument(d.Ext, d.Terms)
	}
	ix := MustBuild(b)

	for _, term := range ix.Terms()[:10] {
		// Collect all docs by linear scan.
		var all []int32
		it := ix.Postings(term)
		for it.Next() {
			all = append(all, it.Posting().Doc)
		}
		if len(all) == 0 {
			continue
		}
		// For a sample of targets, SkipTo must land on the first doc >= target.
		for _, target := range []int32{all[0], all[len(all)/2], all[len(all)-1], all[len(all)-1] + 1, 0} {
			it := ix.Postings(term)
			want := int32(-1)
			for _, d := range all {
				if d >= target {
					want = d
					break
				}
			}
			ok := it.SkipTo(target)
			if want == -1 {
				if ok {
					t.Fatalf("term %q SkipTo(%d) = true, want false", term, target)
				}
				continue
			}
			if !ok || it.Posting().Doc != want {
				t.Fatalf("term %q SkipTo(%d) = %v doc %d, want doc %d", term, target, ok, it.Posting().Doc, want)
			}
		}
	}
}

func TestSkipToThenNextContinues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	docs := randomDocs(rng, 300, 40)
	b := NewBuilder(DefaultOptions())
	for _, d := range docs {
		b.AddDocument(d.Ext, d.Terms)
	}
	ix := MustBuild(b)
	term := ix.Terms()[0]
	var all []int32
	it := ix.Postings(term)
	for it.Next() {
		all = append(all, it.Posting().Doc)
	}
	if len(all) < 3 {
		t.Skip("list too short")
	}
	it = ix.Postings(term)
	it.SkipTo(all[1])
	if !it.Next() || it.Posting().Doc != all[2] {
		t.Fatalf("Next after SkipTo(doc[1]) gave %d, want %d", it.Posting().Doc, all[2])
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64, compress bool, positions bool) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := Options{Compress: compress, StorePositions: positions, BlockSize: 8}
		n := 1 + rng.Intn(200)
		ps := make([]Posting, n)
		doc := int32(0)
		for i := range ps {
			doc += int32(1 + rng.Intn(50))
			np := 1 + rng.Intn(5)
			poss := make([]int32, np)
			pos := int32(0)
			for j := range poss {
				pos += int32(1 + rng.Intn(100))
				poss[j] = pos
			}
			ps[i] = Posting{Doc: doc, TF: int32(np)}
			if positions {
				ps[i].Pos = poss
			}
		}
		pl := encodePostings(ps, opts, encodeStats{})
		got := pl.decodeAll(opts)
		if len(got) != len(ps) {
			return false
		}
		for i := range ps {
			if got[i].Doc != ps[i].Doc || got[i].TF != ps[i].TF {
				return false
			}
			if positions && !reflect.DeepEqual(got[i].Pos, ps[i].Pos) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePanicsOnUnsortedPostings(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("encodePostings accepted unsorted input")
		}
	}()
	encodePostings([]Posting{{Doc: 5, TF: 1}, {Doc: 3, TF: 1}}, DefaultOptions(), encodeStats{})
}

func TestDuplicateDocumentErrors(t *testing.T) {
	b := NewBuilder(DefaultOptions())
	if err := b.AddDocument(1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocument(1, []string{"b"}); err == nil {
		t.Fatal("duplicate AddDocument did not error")
	}
}

func TestLocalStatsAndMerge(t *testing.T) {
	ix := buildTiny(DefaultOptions())
	st := ix.LocalStats(nil)
	if st.NumDocs != 3 || st.DF["apple"] != 2 || st.CF["cherry"] != 3 {
		t.Fatalf("LocalStats = %+v", st)
	}
	st2 := ix.LocalStats([]string{"apple", "missing"})
	if st2.DF["apple"] != 2 || len(st2.DF) != 1 {
		t.Fatalf("restricted LocalStats = %+v", st2)
	}
	g := MergeStats(st, st)
	if g.NumDocs != 6 || g.DF["apple"] != 4 || g.CF["cherry"] != 6 {
		t.Fatalf("MergeStats = %+v", g)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := MustBuild(NewBuilder(DefaultOptions()))
	if ix.NumDocs() != 0 || ix.NumTerms() != 0 || ix.AvgDocLen() != 0 {
		t.Fatal("empty index not empty")
	}
	if ix.Postings("x") != nil {
		t.Fatal("empty index returned an iterator")
	}
}

// randomDocs generates n docs with up to maxLen terms from a small vocab.
func randomDocs(rng *rand.Rand, n, maxLen int) []Doc {
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"eta", "theta", "iota", "kappa", "lambda", "mu", "nu", "xi", "omicron"}
	docs := make([]Doc, n)
	for i := range docs {
		l := 1 + rng.Intn(maxLen)
		terms := make([]string, l)
		for j := range terms {
			terms[j] = vocab[rng.Intn(len(vocab))]
		}
		docs[i] = Doc{Ext: i*3 + 1, Terms: terms}
	}
	return docs
}
