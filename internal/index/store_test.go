package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dwr/internal/conc"
)

// buildSegment turns a document slice into one immutable segment.
func buildSegment(t *testing.T, docs []Doc) *Index {
	t.Helper()
	b := NewBuilder(DefaultOptions())
	for _, d := range docs {
		if err := b.AddDocument(d.Ext, d.Terms); err != nil {
			t.Fatal(err)
		}
	}
	return MustBuild(b)
}

func TestSegmentStoreLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	docs := randomDocs(rng, 400, 40)
	s := NewSegmentStore(DefaultOptions(), MergePolicy{Radix: 3})
	for i := 0; i < len(docs); i += 50 {
		end := i + 50
		if end > len(docs) {
			end = len(docs)
		}
		if err := s.Apply(buildSegment(t, docs[i:end])); err != nil {
			t.Fatal(err)
		}
	}
	man := s.Manifest()
	if man.NumDocs() != len(docs) {
		t.Fatalf("manifest has %d docs, want %d", man.NumDocs(), len(docs))
	}
	st := s.Stats()
	if st.Applied != 8 || st.Merges == 0 {
		t.Fatalf("unexpected maintenance activity: %+v", st)
	}
	// Geometric invariant: the cascade keeps the segment count small.
	if man.NumSegments() > 6 {
		t.Fatalf("%d segments for 8 applies at radix 3; cascade not merging", man.NumSegments())
	}
	// Compact produces the same index as a single-shot build.
	got, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(buildSegment(t, docs), got) {
		t.Fatal("compacted store differs from single-shot build of the same documents")
	}
}

func TestSegmentStoreDeleteAndTombstoneGC(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	docs := randomDocs(rng, 200, 40)
	s := NewSegmentStore(DefaultOptions(), MergePolicy{Radix: 3})
	for i := 0; i < len(docs); i += 40 {
		if err := s.Apply(buildSegment(t, docs[i:i+40])); err != nil {
			t.Fatal(err)
		}
	}
	deleted := map[int]bool{}
	for i := 0; i < len(docs); i += 7 {
		if !s.Delete(docs[i].Ext) {
			t.Fatalf("Delete(%d) found nothing", docs[i].Ext)
		}
		deleted[docs[i].Ext] = true
	}
	if s.Delete(docs[0].Ext) {
		t.Fatal("second Delete of the same doc reported success")
	}
	man := s.Manifest()
	if man.NumDocs() != len(docs)-len(deleted) {
		t.Fatalf("live docs %d, want %d", man.NumDocs(), len(docs)-len(deleted))
	}
	// Tombstoned docs never surface in results.
	for _, r := range man.Search(docs[0].Terms[:1], len(docs)) {
		if deleted[r.Doc] {
			t.Fatalf("tombstoned doc %d returned from Search", r.Doc)
		}
	}
	// Compaction physically removes tombstones and clears the map.
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TombstonesDropped != len(deleted) {
		t.Fatalf("compaction dropped %d tombstones, want %d", st.TombstonesDropped, len(deleted))
	}
	if s.Manifest().Tombstones() != 0 {
		t.Fatal("tombstones survived compaction")
	}
	// A compacted-away ID can be indexed again.
	if err := s.Apply(buildSegment(t, []Doc{{Ext: docs[0].Ext, Terms: docs[0].Terms}})); err != nil {
		t.Fatalf("re-adding a compacted-away doc: %v", err)
	}
}

func TestSegmentStoreRejectsCrossSegmentDuplicate(t *testing.T) {
	s := NewSegmentStore(DefaultOptions(), MergePolicy{})
	if err := s.Apply(buildSegment(t, []Doc{{Ext: 1, Terms: []string{"a"}}})); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(buildSegment(t, []Doc{{Ext: 1, Terms: []string{"b"}}})); err == nil {
		t.Fatal("duplicate external ID accepted across segments")
	}
}

func TestSegmentWriterStreamsToReferenceIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	docs := randomDocs(rng, 333, 40)
	s := NewSegmentStore(DefaultOptions(), MergePolicy{Radix: 3})
	w := NewSegmentWriter(s, 32)
	for _, d := range docs {
		if err := w.AddDocument(d.Ext, d.Terms); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentsSealed() != len(docs)/32 {
		t.Fatalf("sealed %d segments, want %d", w.SegmentsSealed(), len(docs)/32)
	}
	if w.Buffered() != len(docs)%32 {
		t.Fatalf("buffered %d docs, want %d", w.Buffered(), len(docs)%32)
	}
	// Buffered docs are not yet searchable — that gap is the freshness
	// lag the -fresh scenario measures.
	if s.Manifest().NumDocs() != len(docs)-w.Buffered() {
		t.Fatalf("manifest has %d docs before Cut, want %d", s.Manifest().NumDocs(), len(docs)-w.Buffered())
	}
	got, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(buildSegment(t, docs), got) {
		t.Fatal("streamed segment index differs from single-shot build")
	}
}

// TestManifestSnapshotSurvivesSwaps pins the mid-swap contract: a query
// holding a manifest snapshot keeps answering from exactly that view no
// matter how many applies, deletes, and merge swaps happen meanwhile.
func TestManifestSnapshotSurvivesSwaps(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	docs := randomDocs(rng, 300, 40)
	d := NewDynamic(DefaultOptions(), 16, 3)
	for _, doc := range docs[:150] {
		if err := d.Add(doc.Ext, doc.Terms); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	man := d.Store().Manifest()
	q := docs[0].Terms[:2]
	before := fmt.Sprintf("%+v", func() []SearchResult { r, _ := man.SearchScanned(q, 50); return r }())

	// Swap storm: more adds (seals + merge cascades) and deletes.
	for _, doc := range docs[150:] {
		if err := d.Add(doc.Ext, doc.Terms); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 150; i += 5 {
		d.Delete(docs[i].Ext)
	}
	after := fmt.Sprintf("%+v", func() []SearchResult { r, _ := man.SearchScanned(q, 50); return r }())
	if before != after {
		t.Fatalf("snapshot answer changed across manifest swaps:\nbefore: %s\nafter:  %s", before, after)
	}
	if man.Gen() == d.Store().Manifest().Gen() {
		t.Fatal("no swaps happened; the test exercised nothing")
	}
}

// TestDynamicConcurrentSearchUpdateDelete runs a deterministic
// add/delete schedule against concurrent searchers under -race. Every
// answer must be internally consistent (no duplicates, no unknown
// docs); the final state must match the schedule.
func TestDynamicConcurrentSearchUpdateDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	docs := randomDocs(rng, 600, 40)
	d := NewDynamic(DefaultOptions(), 16, 3)

	known := map[int]bool{}
	for _, doc := range docs {
		known[doc.Ext] = true
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			queries := [][]string{docs[r].Terms[:1], docs[r+1].Terms[:2], docs[r+2].Terms[:1]}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rs := d.Search(queries[i%len(queries)], 100)
				seen := map[int]bool{}
				for _, res := range rs {
					if !known[res.Doc] {
						t.Errorf("search returned unknown doc %d", res.Doc)
						return
					}
					if seen[res.Doc] {
						t.Errorf("search returned doc %d twice in one answer", res.Doc)
						return
					}
					seen[res.Doc] = true
				}
			}
		}(r)
	}

	liveCount := 0
	for i, doc := range docs {
		if err := d.Add(doc.Ext, doc.Terms); err != nil {
			t.Error(err)
			break
		}
		liveCount++
		// Delete every 6th doc 12 adds after it arrived: the targets are
		// distinct, always resident, some still buffered and some sealed.
		if i%6 == 3 && i >= 12 {
			d.Delete(docs[i-12].Ext)
			liveCount--
		}
	}
	close(stop)
	wg.Wait()
	if d.NumDocs() != liveCount {
		t.Fatalf("final live docs %d, want %d", d.NumDocs(), liveCount)
	}
}

// TestSegmentStoreBackgroundMerges exercises the bounded background
// merge pool under -race: one writer applies segments and tombstones
// deletes while readers take manifest snapshots and search them.
func TestSegmentStoreBackgroundMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	docs := randomDocs(rng, 480, 40)
	s := NewSegmentStore(DefaultOptions(), MergePolicy{Radix: 3})
	s.Background(conc.NewPool(2))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := docs[r].Terms[:1]
			for {
				select {
				case <-stop:
					return
				default:
				}
				man := s.Manifest()
				rs, _ := man.SearchScanned(q, 50)
				for _, res := range rs {
					if man.Deleted(res.Doc) {
						t.Errorf("tombstoned doc %d surfaced mid-merge", res.Doc)
						return
					}
				}
			}
		}(r)
	}

	deleted := 0
	for i := 0; i < len(docs); i += 24 {
		if err := s.Apply(buildSegment(t, docs[i:i+24])); err != nil {
			t.Error(err)
			break
		}
		if i >= 48 {
			if s.Delete(docs[i-48].Ext) {
				deleted++
			}
		}
	}
	close(stop)
	s.Quiesce()
	wg.Wait()
	if got, want := s.Manifest().NumDocs(), len(docs)-deleted; got != want {
		t.Fatalf("final live docs %d, want %d", got, want)
	}
	if s.Stats().Merges == 0 {
		t.Fatal("background pool performed no merges")
	}
}
