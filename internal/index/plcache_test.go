package index

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func plcacheIndex(t *testing.T) *Index {
	t.Helper()
	b := NewBuilder(DefaultOptions())
	for d := 0; d < 200; d++ {
		terms := []string{"common"}
		if d%3 == 0 {
			terms = append(terms, "third", fmt.Sprintf("u%d", d))
		}
		if d%7 == 0 {
			terms = append(terms, "seventh", "common")
		}
		b.AddDocument(d, terms)
	}
	return MustBuild(b)
}

func TestCachedPostingsMatchesIndex(t *testing.T) {
	ix := plcacheIndex(t)
	pc := NewPostingsCache(1 << 20)
	for _, term := range []string{"common", "third", "seventh", "u21", "absent"} {
		for round := 0; round < 2; round++ { // miss path, then hit path
			cp := pc.Bind(ix)
			var a, b Iterator
			direct := ix.PostingsInto(&a, term)
			cached := cp.PostingsInto(&b, term)
			if (direct == nil) != (cached == nil) {
				t.Fatalf("term %q round %d: presence mismatch", term, round)
			}
			if direct == nil {
				continue
			}
			if direct.Count() != cached.Count() {
				t.Fatalf("term %q: count %d vs %d", term, direct.Count(), cached.Count())
			}
			for direct.Next() {
				if !cached.Next() {
					t.Fatalf("term %q: cached iterator ended early", term)
				}
				if !reflect.DeepEqual(direct.Posting(), cached.Posting()) {
					t.Fatalf("term %q: posting %+v vs %+v", term, direct.Posting(), cached.Posting())
				}
			}
			if cached.Next() {
				t.Fatalf("term %q: cached iterator ran long", term)
			}
		}
	}
	h, m, used := pc.Stats()
	if h == 0 || m == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", h, m)
	}
	if used <= 0 {
		t.Fatalf("used bytes = %d", used)
	}
}

func TestCachedPostingsSkipToMatches(t *testing.T) {
	ix := plcacheIndex(t)
	pc := NewPostingsCache(1 << 20)
	cp := pc.Bind(ix)
	var warm Iterator
	cp.PostingsInto(&warm, "common") // populate so the walk below is a hit
	for _, target := range []int32{0, 1, 50, 63, 64, 65, 150, 199, 500} {
		var a, b Iterator
		direct := ix.PostingsInto(&a, "common")
		cached := cp.PostingsInto(&b, "common")
		okD := direct.SkipTo(target)
		okC := cached.SkipTo(target)
		if okD != okC {
			t.Fatalf("SkipTo(%d): ok %v vs %v", target, okD, okC)
		}
		if okD && !reflect.DeepEqual(direct.Posting(), cached.Posting()) {
			t.Fatalf("SkipTo(%d): %+v vs %+v", target, direct.Posting(), cached.Posting())
		}
		// Interleave Next after the skip.
		for i := 0; i < 3; i++ {
			nd, nc := direct.Next(), cached.Next()
			if nd != nc {
				t.Fatalf("Next after SkipTo(%d): %v vs %v", target, nd, nc)
			}
			if nd && !reflect.DeepEqual(direct.Posting(), cached.Posting()) {
				t.Fatalf("Next after SkipTo(%d): postings differ", target)
			}
		}
	}
	if cp.Hits == 0 {
		t.Fatal("SkipTo walk never hit the cache")
	}
}

func TestPostingsCacheBudget(t *testing.T) {
	ix := plcacheIndex(t)
	// Budget fits the one-posting tail list but not "common" (200
	// postings): size the budget from the actual encoded bytes.
	small, big := ix.EncodedListBytes("u21"), ix.EncodedListBytes("common")
	if small <= 0 || big <= small {
		t.Fatalf("unexpected encoded sizes: u21=%d common=%d", small, big)
	}
	budget := small + (big-small)/2
	pc := NewPostingsCache(budget)
	cp := pc.Bind(ix)
	var it Iterator
	if cp.PostingsInto(&it, "common") == nil {
		t.Fatal("oversized list must still be served, just not cached")
	}
	cp2 := pc.Bind(ix)
	cp2.PostingsInto(&it, "common")
	if cp2.Hits != 0 {
		t.Fatal("oversized list was admitted past the byte budget")
	}
	cp2.PostingsInto(&it, "u21") // 1 posting: fits
	cp3 := pc.Bind(ix)
	cp3.PostingsInto(&it, "u21")
	if cp3.Hits != 1 {
		t.Fatal("small list not cached")
	}
	if _, _, used := pc.Stats(); used > budget {
		t.Fatalf("used %d exceeds budget %d", used, budget)
	}
}

// TestPostingsCacheChargesEncodedBytes pins the cache's cost accounting
// to the real resident size of an entry: encoded data bytes plus
// BlockMetaBytes per block, exactly what Index.EncodedListBytes reports.
func TestPostingsCacheChargesEncodedBytes(t *testing.T) {
	ix := plcacheIndex(t)
	terms := []string{"common", "third", "u21"}
	pc := NewPostingsCache(1 << 20)
	cp := pc.Bind(ix)
	var want int64
	for _, term := range terms {
		var it Iterator
		if cp.PostingsInto(&it, term) == nil {
			t.Fatalf("term %q missing", term)
		}
		enc := ix.EncodedListBytes(term)
		if enc != int64(ix.PostingBytes(term))+int64(it.NumBlocks())*BlockMetaBytes {
			t.Fatalf("term %q: EncodedListBytes %d inconsistent with data %d + %d blocks",
				term, enc, ix.PostingBytes(term), it.NumBlocks())
		}
		want += enc
	}
	if _, _, used := pc.Stats(); used != want {
		t.Fatalf("cache charges %d bytes, actual resident encoded size is %d", used, want)
	}
}

func TestPostingsCacheConcurrent(t *testing.T) {
	ix := plcacheIndex(t)
	pc := NewPostingsCache(1 << 16)
	terms := []string{"common", "third", "seventh", "u21", "u42", "u63"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				cp := pc.Bind(ix)
				term := terms[(g+i)%len(terms)]
				var it Iterator
				r := cp.PostingsInto(&it, term)
				if r == nil {
					t.Errorf("term %q vanished", term)
					return
				}
				prev := int32(-1)
				for r.Next() {
					if r.Posting().Doc <= prev {
						t.Errorf("term %q: postings out of order", term)
						return
					}
					prev = r.Posting().Doc
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDynamicOnChangeHooks(t *testing.T) {
	d := NewDynamic(DefaultOptions(), 4, 3)
	var mu sync.Mutex
	fired := 0
	d.OnChange(func() { mu.Lock(); fired++; mu.Unlock() })
	if err := d.Add(1, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after Add, want 1", fired)
	}
	d.Delete(1)
	if fired != 2 {
		t.Fatalf("fired = %d after Delete, want 2", fired)
	}
	d.Delete(99) // no-op delete must not fire
	if fired != 2 {
		t.Fatalf("fired = %d after no-op Delete, want 2", fired)
	}
	d.Flush() // empty buffer: no-op
	if fired != 2 {
		t.Fatalf("fired = %d after empty Flush, want 2", fired)
	}
	if err := d.Add(2, []string{"c"}); err != nil {
		t.Fatal(err)
	}
	d.Flush()
	if fired != 4 {
		t.Fatalf("fired = %d after Add+Flush, want 4", fired)
	}
	// A hook that queries the index back must not deadlock (hooks run
	// outside the write lock).
	d.OnChange(func() { _ = d.NumDocs() })
	if err := d.Add(3, []string{"d"}); err != nil {
		t.Fatal(err)
	}
}
