package index

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Dynamic is an online-maintained index for collections whose updates
// are too frequent for rebuild-from-scratch — the paper's news/blogs
// case (§4, Communication): "there is usually some kind of online index
// maintenance strategy. This dynamic index structure constrains the
// capacity and the response time of the system since the update
// operation usually requires locking the index."
//
// Structure: newly added documents accumulate in an in-memory buffer
// that is searchable by scan; when the buffer fills it is sealed into
// an immutable segment of a SegmentStore, whose tiered size-ratio
// policy merges segments geometrically (Lester, Moffat & Zobel —
// reference [15] of the paper), so there are at most O(log n) segments
// and each document is re-merged O(log n) times.
//
// Unlike the paper's pessimistic locking story, readers here never wait
// for maintenance: every mutation publishes a fresh immutable snapshot
// (buffer + segment manifest) behind one pointer, segment builds and
// merges run with no lock held, and Search evaluates entirely against
// the snapshot it grabbed. The historical "lockout effect" experiment
// (C15) now measures the absence of reader stalls rather than their
// cost.
type Dynamic struct {
	opts      Options
	bufferCap int

	store *SegmentStore

	// maint serializes mutators (Add, Delete, Flush, Build). Readers
	// never take it.
	maint    sync.Mutex
	bufByExt map[int]bool // guarded by maint

	// mu guards only the snapshot pointer; it is held for pointer swaps,
	// never across builds or merges.
	mu   sync.RWMutex
	snap *dynSnapshot

	// onChange hooks run after every completed mutation (Add, Delete,
	// Flush), outside all locks. Result caches register here so an index
	// update invalidates their entries (generation bump) without the
	// index knowing about caching.
	hookMu   sync.Mutex
	onChange []func()
}

// dynSnapshot is one immutable published view: the unflushed buffer
// plus the segment manifest, swapped together so a query can never see
// a document both in a fresh segment and still in the buffer.
type dynSnapshot struct {
	buffer []Doc
	man    *Manifest
}

// NewDynamic creates a dynamic index sealing a segment every bufferCap
// documents and merging segments with the given radix (>= 2).
func NewDynamic(opts Options, bufferCap, radix int) *Dynamic {
	if bufferCap < 1 {
		bufferCap = 64
	}
	store := NewSegmentStore(opts, MergePolicy{Radix: radix})
	return &Dynamic{
		opts:      opts,
		bufferCap: bufferCap,
		store:     store,
		bufByExt:  make(map[int]bool),
		snap:      &dynSnapshot{man: store.Manifest()},
	}
}

// Store exposes the underlying segment store (manifest snapshots, merge
// statistics). Structural mutation must keep going through the Dynamic.
func (d *Dynamic) Store() *SegmentStore { return d.store }

// OnChange registers fn to run after every completed mutation (Add,
// Delete, Flush). Hooks fire outside the index's locks and must be fast
// and non-blocking; the intended use is bumping a result cache's
// generation counter.
func (d *Dynamic) OnChange(fn func()) {
	d.hookMu.Lock()
	d.onChange = append(d.onChange, fn)
	d.hookMu.Unlock()
}

// notifyChange runs the registered hooks. Callers must NOT hold d.mu or
// d.maint — a hook that queries the index back would deadlock
// otherwise.
func (d *Dynamic) notifyChange() {
	d.hookMu.Lock()
	hooks := d.onChange
	d.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// snapshot returns the current published view.
func (d *Dynamic) snapshot() *dynSnapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.snap
}

// publish swaps in a new view.
func (d *Dynamic) publish(s *dynSnapshot) {
	d.mu.Lock()
	d.snap = s
	d.mu.Unlock()
}

// Add indexes a document online. Duplicate IDs are rejected; so are
// re-adds of a deleted document whose tombstoned copy still resides in a
// segment (clearing the tombstone would resurrect the stale copy —
// updates are modelled as delete + add under a fresh ID, the common
// practice for immutable-segment indexes).
func (d *Dynamic) Add(ext int, terms []string) error {
	d.maint.Lock()
	snap := d.snapshot()
	if d.bufByExt[ext] {
		d.maint.Unlock()
		return fmt.Errorf("index: document %d already present", ext)
	}
	if snap.man.Contains(ext) {
		tombstoned := snap.man.Deleted(ext)
		d.maint.Unlock()
		if tombstoned {
			return fmt.Errorf("index: document %d is tombstoned but still resident in a segment; re-add under a new ID", ext)
		}
		return fmt.Errorf("index: document %d already present", ext)
	}
	buf := make([]Doc, 0, len(snap.buffer)+1)
	buf = append(buf, snap.buffer...)
	buf = append(buf, Doc{Ext: ext, Terms: terms})
	d.bufByExt[ext] = true
	if len(buf) >= d.bufferCap {
		d.sealBuffer(buf)
	} else {
		d.publish(&dynSnapshot{buffer: buf, man: snap.man})
	}
	d.maint.Unlock()
	d.notifyChange()
	return nil
}

// Delete tombstones a document; it disappears from searches immediately
// and is physically dropped at the next merge touching its segment.
func (d *Dynamic) Delete(ext int) {
	d.maint.Lock()
	snap := d.snapshot()
	removed := false
	if d.bufByExt[ext] {
		buf := make([]Doc, 0, len(snap.buffer)-1)
		for _, doc := range snap.buffer {
			if doc.Ext != ext {
				buf = append(buf, doc)
			}
		}
		delete(d.bufByExt, ext)
		d.publish(&dynSnapshot{buffer: buf, man: snap.man})
		removed = true
	} else if d.store.Delete(ext) {
		d.publish(&dynSnapshot{buffer: snap.buffer, man: d.store.Manifest()})
		removed = true
	}
	d.maint.Unlock()
	if removed {
		d.notifyChange()
	}
}

// Flush forces the buffer into a segment (e.g. before serving a
// freshness-critical query).
func (d *Dynamic) Flush() {
	d.maint.Lock()
	snap := d.snapshot()
	flushed := len(snap.buffer) > 0
	if flushed {
		d.sealBuffer(snap.buffer)
	}
	d.maint.Unlock()
	if flushed {
		d.notifyChange()
	}
}

// sealBuffer builds a segment from buf, applies it to the store (which
// runs the merge cascade), and publishes the post-flush snapshot.
// Caller holds d.maint — but NOT d.mu, so concurrent searches proceed
// against the pre-flush snapshot for the whole build and swap in one
// pointer move at the end. This is the off-lock merge the PR 5 audit
// flagged the old implementation for: the write lock used to be held
// across the entire build-and-merge cascade.
func (d *Dynamic) sealBuffer(buf []Doc) {
	b := NewBuilder(d.opts)
	for _, doc := range buf {
		if err := b.AddDocument(doc.Ext, doc.Terms); err != nil {
			// Add dedupes against the buffer, so this is unreachable.
			panic(err)
		}
	}
	if err := d.store.Apply(b.BuildParallel(1)); err != nil {
		// Add dedupes against the store, so this is unreachable.
		panic(err)
	}
	d.publish(&dynSnapshot{man: d.store.Manifest()})
	for _, doc := range buf {
		delete(d.bufByExt, doc.Ext)
	}
}

// Segments returns the current number of sealed segments.
func (d *Dynamic) Segments() int {
	return d.snapshot().man.NumSegments()
}

// NumDocs returns the number of live documents (buffer + segments −
// tombstones).
func (d *Dynamic) NumDocs() int {
	s := d.snapshot()
	return len(s.buffer) + s.man.NumDocs()
}

// AddDocument implements Builder (it is Add under the uniform
// construction-surface name).
func (d *Dynamic) AddDocument(ext int, terms []string) error {
	return d.Add(ext, terms)
}

// Build implements Builder: the end-of-stream handoff that seals the
// buffer, compacts every segment into one (dropping tombstones), and
// returns the immutable result. The Dynamic remains usable afterwards —
// the compacted segment stays resident as its single segment.
func (d *Dynamic) Build() (*Index, error) {
	d.Flush()
	d.maint.Lock()
	ix, err := d.store.Compact()
	if err == nil {
		d.publish(&dynSnapshot{man: d.store.Manifest()})
	}
	d.maint.Unlock()
	d.notifyChange()
	return ix, err
}

// MaintenanceStats reports flush/merge/tombstone activity and manifest
// churn.
type MaintenanceStats struct {
	Flushes           int    // buffer seals
	Merges            int    // segment merges
	MergedDocs        int    // documents written by merges
	TombstonesDropped int    // tombstoned documents physically removed
	Swaps             uint64 // manifest generations published by the store
	Segments          int    // sealed segments currently resident
}

// Maintenance returns the accumulated maintenance statistics.
func (d *Dynamic) Maintenance() MaintenanceStats {
	st := d.store.Stats()
	return MaintenanceStats{
		Flushes:           st.Applied,
		Merges:            st.Merges,
		MergedDocs:        st.MergedDocs,
		TombstonesDropped: st.TombstonesDropped,
		Swaps:             st.Gen,
		Segments:          st.Segments,
	}
}

// SearchResult is one hit from Dynamic.Search.
type SearchResult struct {
	Doc   int
	Score float64
}

// Search evaluates a disjunctive query across all segments and the
// in-memory buffer and returns the top k by BM25-like scoring, using
// statistics aggregated over the live collection. It grabs one snapshot
// and evaluates with no lock held: a concurrent flush, merge, or delete
// swaps the snapshot pointer but never mutates what this query sees.
func (d *Dynamic) Search(terms []string, k int) []SearchResult {
	s := d.snapshot()
	rs, _ := searchView(s.man.segments, s.man.deleted, s.buffer, terms, k)
	return rs
}

// SearchScanned is Search plus the number of postings scanned — the
// work counter latency cost models are driven by.
func (d *Dynamic) SearchScanned(terms []string, k int) ([]SearchResult, int64) {
	s := d.snapshot()
	return searchView(s.man.segments, s.man.deleted, s.buffer, terms, k)
}

func bm25IDF(n, df int) float64 {
	idf := math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
	if idf < 1e-6 {
		idf = 1e-6
	}
	return idf
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func sortSearchResults(rs []SearchResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Doc < rs[j].Doc
	})
}

// reconstructTerms rebuilds a document's token sequence from positional
// postings (or an order-insensitive bag when positions are off). Merging
// via re-indexing keeps the implementation simple and exactly correct.
func reconstructTerms(ix *Index, doc int32) []string {
	length := ix.DocLen(doc)
	terms := make([]string, length)
	filled := 0
	for _, t := range ix.termList {
		it := newIterator(&t.pl, ix.opts, true)
		if !it.SkipTo(doc) || it.Posting().Doc != doc {
			continue
		}
		p := it.Posting()
		if ix.opts.StorePositions {
			for _, pos := range p.Pos {
				if int(pos) < length && terms[pos] == "" {
					terms[pos] = t.term
					filled++
				}
			}
		} else {
			for k := int32(0); k < p.TF && filled < length; k++ {
				terms[filled] = t.term
				filled++
			}
		}
	}
	// Positions may have holes if the doc was built without positions;
	// compact empties.
	if filled < length {
		out := terms[:0]
		for _, s := range terms {
			if s != "" {
				out = append(out, s)
			}
		}
		return out
	}
	return terms
}

// reconstructAllDocs rebuilds every document's token sequence in one
// pass over the lexicon, walking each posting list exactly once —
// O(total postings), where calling reconstructTerms per document is
// O(docs × lexicon). Produces identical sequences: both fill positional
// slots (or append TF repeats) in the same lexicon order.
func reconstructAllDocs(ix *Index) [][]string {
	n := ix.NumDocs()
	terms := make([][]string, n)
	filled := make([]int, n)
	for doc := 0; doc < n; doc++ {
		terms[doc] = make([]string, ix.DocLen(int32(doc)))
	}
	for ti := range ix.termList {
		t := &ix.termList[ti]
		it := newIterator(&t.pl, ix.opts, true)
		for it.Next() {
			p := it.Posting()
			buf := terms[p.Doc]
			if ix.opts.StorePositions {
				for _, pos := range p.Pos {
					if int(pos) < len(buf) && buf[pos] == "" {
						buf[pos] = t.term
						filled[p.Doc]++
					}
				}
			} else {
				for k := int32(0); k < p.TF && filled[p.Doc] < len(buf); k++ {
					buf[filled[p.Doc]] = t.term
					filled[p.Doc]++
				}
			}
		}
	}
	for d := range terms {
		if filled[d] < len(terms[d]) {
			out := terms[d][:0]
			for _, s := range terms[d] {
				if s != "" {
					out = append(out, s)
				}
			}
			terms[d] = out
		}
	}
	return terms
}
