package index

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Dynamic is an online-maintained index for collections whose updates
// are too frequent for rebuild-from-scratch — the paper's news/blogs
// case (§4, Communication): "there is usually some kind of online index
// maintenance strategy. This dynamic index structure constrains the
// capacity and the response time of the system since the update
// operation usually requires locking the index."
//
// Structure: newly added documents accumulate in an in-memory buffer
// that is searchable by scan; when the buffer fills it is flushed to an
// immutable segment, and segments are merged geometrically (Lester,
// Moffat & Zobel's geometric partitioning — reference [15] of the
// paper), so there are at most O(log n) segments and each document is
// re-merged O(log n) times.
//
// Readers take the read lock; flushes and merges take the write lock —
// the "lockout effect" is therefore measurable as reader wait time, and
// experiment C15 quantifies it.
type Dynamic struct {
	mu        sync.RWMutex
	opts      Options
	bufferCap int
	radix     int

	buffer   []Doc
	bufByExt map[int]bool
	segments []*Index // sorted by level; segments[i] holds ~bufferCap*radix^i docs
	deleted  map[int]bool

	// Maintenance accounting.
	flushes    int
	merges     int
	mergedDocs int
	lockHeldMs float64 // total wall time the write lock was held

	// onChange hooks run after every completed mutation (Add, Delete,
	// Flush), outside the write lock. Result caches register here so an
	// index update invalidates their entries (generation bump) without
	// the index knowing about caching.
	hookMu   sync.Mutex
	onChange []func()
}

// NewDynamic creates a dynamic index flushing every bufferCap documents
// and merging segments with the given radix (≥2).
func NewDynamic(opts Options, bufferCap, radix int) *Dynamic {
	if bufferCap < 1 {
		bufferCap = 64
	}
	if radix < 2 {
		radix = 3
	}
	return &Dynamic{
		opts:      opts,
		bufferCap: bufferCap,
		radix:     radix,
		bufByExt:  make(map[int]bool),
		deleted:   make(map[int]bool),
	}
}

// OnChange registers fn to run after every completed mutation (Add,
// Delete, Flush). Hooks fire outside the index's write lock and must be
// fast and non-blocking; the intended use is bumping a result cache's
// generation counter.
func (d *Dynamic) OnChange(fn func()) {
	d.hookMu.Lock()
	d.onChange = append(d.onChange, fn)
	d.hookMu.Unlock()
}

// notifyChange runs the registered hooks. Callers must NOT hold d.mu —
// a hook that queries the index back would deadlock otherwise.
func (d *Dynamic) notifyChange() {
	d.hookMu.Lock()
	hooks := d.onChange
	d.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Add indexes a document online. Duplicate IDs are rejected; so are
// re-adds of a deleted document whose tombstoned copy still resides in a
// segment (clearing the tombstone would resurrect the stale copy —
// updates are modelled as delete + add under a fresh ID, the common
// practice for immutable-segment indexes).
func (d *Dynamic) Add(ext int, terms []string) error {
	d.mu.Lock()
	if d.bufByExt[ext] {
		d.mu.Unlock()
		return fmt.Errorf("index: document %d already present", ext)
	}
	if d.segmentContainsLocked(ext) {
		tombstoned := d.deleted[ext]
		d.mu.Unlock()
		if tombstoned {
			return fmt.Errorf("index: document %d is tombstoned but still resident in a segment; re-add under a new ID", ext)
		}
		return fmt.Errorf("index: document %d already present", ext)
	}
	d.buffer = append(d.buffer, Doc{Ext: ext, Terms: terms})
	d.bufByExt[ext] = true
	if len(d.buffer) >= d.bufferCap {
		d.flushLocked()
	}
	d.mu.Unlock()
	d.notifyChange()
	return nil
}

// Delete tombstones a document; it disappears from searches immediately
// and is physically dropped at the next merge touching its segment.
func (d *Dynamic) Delete(ext int) {
	d.mu.Lock()
	removed := false
	if d.bufByExt[ext] {
		for i, doc := range d.buffer {
			if doc.Ext == ext {
				d.buffer = append(d.buffer[:i], d.buffer[i+1:]...)
				break
			}
		}
		delete(d.bufByExt, ext)
		removed = true
	} else if d.segmentContainsLocked(ext) {
		d.deleted[ext] = true
		removed = true
	}
	d.mu.Unlock()
	if removed {
		d.notifyChange()
	}
}

// Flush forces the buffer into a segment (e.g. before serving a
// freshness-critical query).
func (d *Dynamic) Flush() {
	d.mu.Lock()
	flushed := len(d.buffer) > 0
	d.flushLocked()
	d.mu.Unlock()
	if flushed {
		d.notifyChange()
	}
}

func (d *Dynamic) segmentContainsLocked(ext int) bool {
	for _, s := range d.segments {
		if s.InternalID(ext) >= 0 {
			return true
		}
	}
	return false
}

// flushLocked builds a segment from the buffer and runs the geometric
// merge cascade. Caller holds the write lock.
func (d *Dynamic) flushLocked() {
	if len(d.buffer) == 0 {
		return
	}
	start := time.Now() //dwrlint:allow wallclock lockHeldMs is reported wall-clock lock-hold time, not replayed behavior
	b := NewBuilder(d.opts)
	for _, doc := range d.buffer {
		b.AddDocument(doc.Ext, doc.Terms)
	}
	d.segments = append(d.segments, b.Build())
	d.buffer = d.buffer[:0]
	d.bufByExt = make(map[int]bool)
	d.flushes++

	// Geometric cascade: while the last two segments are within a radix
	// factor, merge them (dropping tombstoned docs).
	for len(d.segments) >= 2 {
		a := d.segments[len(d.segments)-2]
		c := d.segments[len(d.segments)-1]
		if a.NumDocs() >= d.radix*c.NumDocs() {
			break
		}
		merged := d.mergeSegmentsLocked(a, c)
		d.segments = d.segments[:len(d.segments)-2]
		d.segments = append(d.segments, merged)
		d.merges++
		d.mergedDocs += merged.NumDocs()
	}
	d.lockHeldMs += float64(time.Since(start).Microseconds()) / 1000 //dwrlint:allow wallclock lockHeldMs is reported wall-clock lock-hold time, not replayed behavior
}

// mergeSegmentsLocked merges two segments, dropping tombstones.
func (d *Dynamic) mergeSegmentsLocked(a, b *Index) *Index {
	nb := NewBuilder(d.opts)
	for _, src := range []*Index{a, b} {
		for doc := int32(0); doc < int32(src.NumDocs()); doc++ {
			ext := src.ExtID(doc)
			if d.deleted[ext] {
				delete(d.deleted, ext)
				continue
			}
			nb.AddDocument(ext, reconstructTerms(src, doc))
		}
	}
	return nb.Build()
}

// reconstructTerms rebuilds a document's token sequence from positional
// postings (or an order-insensitive bag when positions are off). Merging
// via re-indexing keeps the implementation simple and exactly correct.
func reconstructTerms(ix *Index, doc int32) []string {
	length := ix.DocLen(doc)
	terms := make([]string, length)
	filled := 0
	for _, t := range ix.termList {
		it := newIterator(&t.pl, ix.opts, true)
		if !it.SkipTo(doc) || it.Posting().Doc != doc {
			continue
		}
		p := it.Posting()
		if ix.opts.StorePositions {
			for _, pos := range p.Pos {
				if int(pos) < length && terms[pos] == "" {
					terms[pos] = t.term
					filled++
				}
			}
		} else {
			for k := int32(0); k < p.TF && filled < length; k++ {
				terms[filled] = t.term
				filled++
			}
		}
	}
	// Positions may have holes if the doc was built without positions;
	// compact empties.
	if filled < length {
		out := terms[:0]
		for _, s := range terms {
			if s != "" {
				out = append(out, s)
			}
		}
		return out
	}
	return terms
}

// Segments returns the current number of on-"disk" segments.
func (d *Dynamic) Segments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.segments)
}

// NumDocs returns the number of live documents (buffer + segments −
// tombstones).
func (d *Dynamic) NumDocs() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := len(d.buffer)
	for _, s := range d.segments {
		n += s.NumDocs()
	}
	return n - len(d.deleted)
}

// MaintenanceStats reports flush/merge activity and total write-lock
// hold time.
type MaintenanceStats struct {
	Flushes    int
	Merges     int
	MergedDocs int
	LockHeldMs float64
	Segments   int
}

// Maintenance returns the accumulated maintenance statistics.
func (d *Dynamic) Maintenance() MaintenanceStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return MaintenanceStats{
		Flushes:    d.flushes,
		Merges:     d.merges,
		MergedDocs: d.mergedDocs,
		LockHeldMs: d.lockHeldMs,
		Segments:   len(d.segments),
	}
}

// SearchResult is one hit from Dynamic.Search.
type SearchResult struct {
	Doc   int
	Score float64
}

// Search evaluates a disjunctive query across all segments and the
// in-memory buffer under the read lock, using statistics aggregated over
// the live collection, and returns the top k by BM25-like scoring.
// (Scoring duplicates a little of internal/rank to avoid an import
// cycle; the formulas match.)
func (d *Dynamic) Search(terms []string, k int) []SearchResult {
	d.mu.RLock()
	defer d.mu.RUnlock()

	// Aggregate statistics.
	numDocs := len(d.buffer)
	var totalLen int64
	df := make(map[string]int, len(terms))
	uniq := make([]string, 0, len(terms))
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			uniq = append(uniq, t)
		}
	}
	for _, s := range d.segments {
		numDocs += s.NumDocs()
		totalLen += s.TotalLen()
		for _, t := range uniq {
			df[t] += s.DF(t)
		}
	}
	for _, doc := range d.buffer {
		totalLen += int64(len(doc.Terms))
		for _, t := range uniq {
			for _, w := range doc.Terms {
				if w == t {
					df[t]++
					break
				}
			}
		}
	}
	numDocs -= len(d.deleted)
	if numDocs <= 0 {
		return nil
	}
	avgLen := float64(totalLen) / float64(numDocs)

	scores := make(map[int]float64)
	addScore := func(ext int, tf int32, docLen int, idf float64) {
		if d.deleted[ext] {
			return
		}
		const k1, b = 1.2, 0.75
		norm := 1 - b + b*float64(docLen)/maxf(avgLen, 1)
		scores[ext] += idf * float64(tf) * (k1 + 1) / (float64(tf) + k1*norm)
	}
	for _, t := range uniq {
		idf := bm25IDF(numDocs, df[t])
		for _, s := range d.segments {
			it := s.Postings(t)
			if it == nil {
				continue
			}
			for it.Next() {
				p := it.Posting()
				addScore(s.ExtID(p.Doc), p.TF, s.DocLen(p.Doc), idf)
			}
		}
		for _, doc := range d.buffer {
			tf := int32(0)
			for _, w := range doc.Terms {
				if w == t {
					tf++
				}
			}
			if tf > 0 {
				addScore(doc.Ext, tf, len(doc.Terms), idf)
			}
		}
	}

	out := make([]SearchResult, 0, len(scores))
	for doc, score := range scores {
		out = append(out, SearchResult{Doc: doc, Score: score})
	}
	sortSearchResults(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func bm25IDF(n, df int) float64 {
	idf := math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
	if idf < 1e-6 {
		idf = 1e-6
	}
	return idf
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func sortSearchResults(rs []SearchResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Doc < rs[j].Doc
	})
}
