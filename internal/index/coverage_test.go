package index

import (
	"path/filepath"
	"testing"
)

// Targeted tests for paths the main suites exercise only indirectly.

func TestAddDocumentFilteredKeepsFullLength(t *testing.T) {
	b := NewBuilder(DefaultOptions())
	terms := []string{"keep", "drop", "keep", "drop", "drop"}
	b.AddDocumentFiltered(9, terms, func(t string) bool { return t == "keep" })
	ix := MustBuild(b)
	// Only the kept term is indexed...
	if ix.DF("keep") != 1 || ix.DF("drop") != 0 {
		t.Fatalf("df keep=%d drop=%d", ix.DF("keep"), ix.DF("drop"))
	}
	// ...but the document's true length (for BM25 normalization) is the
	// full token count.
	if ix.DocLen(0) != 5 {
		t.Fatalf("DocLen = %d, want 5", ix.DocLen(0))
	}
	// Positions are the original token positions.
	it := ix.PostingsWithPositions("keep")
	it.Next()
	p := it.Posting()
	if p.TF != 2 || p.Pos[0] != 0 || p.Pos[1] != 2 {
		t.Fatalf("posting = %+v, want tf=2 pos=[0 2]", p)
	}
}

func TestAddDocumentFilteredDuplicateErrors(t *testing.T) {
	b := NewBuilder(DefaultOptions())
	if err := b.AddDocumentFiltered(1, []string{"a"}, func(string) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocumentFiltered(1, []string{"b"}, func(string) bool { return true }); err == nil {
		t.Fatal("duplicate AddDocumentFiltered did not error")
	}
}

func TestBuilderNumDocs(t *testing.T) {
	b := NewBuilder(DefaultOptions())
	if b.NumDocs() != 0 {
		t.Fatal("fresh builder not empty")
	}
	b.AddDocument(1, []string{"x"})
	b.AddDocument(2, []string{"y"})
	if b.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d", b.NumDocs())
	}
}

func TestPostingBytes(t *testing.T) {
	ix := buildTiny(DefaultOptions())
	if ix.PostingBytes("apple") <= 0 {
		t.Fatal("present term has no posting bytes")
	}
	if ix.PostingBytes("missing") != 0 {
		t.Fatal("absent term has posting bytes")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	mk := func(tfB int32) *Index {
		b := NewBuilder(DefaultOptions())
		terms := []string{"a"}
		for i := int32(0); i < tfB; i++ {
			terms = append(terms, "b")
		}
		b.AddDocument(1, terms)
		return MustBuild(b)
	}
	if Equal(mk(1), mk(2)) {
		t.Fatal("Equal missed a TF difference")
	}
	// Different doc sets.
	a := NewBuilder(DefaultOptions())
	a.AddDocument(1, []string{"x"})
	c := NewBuilder(DefaultOptions())
	c.AddDocument(2, []string{"x"})
	if Equal(MustBuild(a), MustBuild(c)) {
		t.Fatal("Equal missed a document-ID difference")
	}
	// Different lexicons, same sizes.
	d := NewBuilder(DefaultOptions())
	d.AddDocument(1, []string{"y"})
	if Equal(MustBuild(a), MustBuild(d)) {
		t.Fatal("Equal missed a lexicon difference")
	}
}

func TestNewDynamicClampsArguments(t *testing.T) {
	d := NewDynamic(DefaultOptions(), 0, 0)
	// Defaults applied: must still work end to end.
	for i := 0; i < 70; i++ {
		if err := d.Add(i, []string{"w"}); err != nil {
			t.Fatal(err)
		}
	}
	if d.NumDocs() != 70 {
		t.Fatalf("NumDocs = %d", d.NumDocs())
	}
}

func TestDynamicDeleteUnknownNoop(t *testing.T) {
	d := NewDynamic(DefaultOptions(), 4, 2)
	d.Add(1, []string{"a"})
	d.Delete(999) // unknown: no effect, no panic
	if d.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d after deleting unknown doc", d.NumDocs())
	}
}

func TestReconstructTermsWithoutPositions(t *testing.T) {
	opts := Options{Compress: true, StorePositions: false, BlockSize: 0}
	b := NewBuilder(opts)
	b.AddDocument(3, []string{"x", "y", "x"})
	ix := MustBuild(b)
	got := reconstructTerms(ix, 0)
	if len(got) != 3 {
		t.Fatalf("reconstructed %d terms, want 3 (bag form)", len(got))
	}
	counts := map[string]int{}
	for _, g := range got {
		counts[g]++
	}
	if counts["x"] != 2 || counts["y"] != 1 {
		t.Fatalf("bag = %v", counts)
	}
}

func TestWriteFileToUnwritablePath(t *testing.T) {
	ix := buildTiny(DefaultOptions())
	err := ix.WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.idx"))
	if err == nil {
		t.Fatal("writing into a missing directory succeeded")
	}
}

func TestNewSPIMIBuilderBadDir(t *testing.T) {
	if _, err := NewSPIMIBuilder(DefaultOptions(), 1024, filepath.Join(t.TempDir(), "missing", "deep")); err == nil {
		t.Fatal("SPIMI accepted an uncreatable spill dir")
	}
}

func TestSPIMIDefaultBudget(t *testing.T) {
	sp, err := NewSPIMIBuilder(DefaultOptions(), 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.AddDocument(1, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	ix, err := sp.Build()
	if err != nil || ix.NumDocs() != 1 {
		t.Fatalf("build: %v, docs %d", err, ix.NumDocs())
	}
}
