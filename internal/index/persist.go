package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// On-disk index format (little-endian):
//
//	magic "DWRIX3\n\x00"                     8 bytes
//	options: compress, positions (2 bytes) + blockSize (uvarint)
//	numDocs (uvarint), then per doc: ext (uvarint), length (uvarint)
//	numTerms (uvarint), then per term:
//	    len(term) (uvarint), term bytes,
//	    count (uvarint), cf (uvarint),
//	    maxTF (uvarint), minLen (uvarint),
//	    satScale (float64 bits, uvarint), quantAvg (float64 bits, uvarint),
//	    len(data) (uvarint), data bytes,
//	    numBlocks (uvarint), per block: lastDoc (uvarint), maxTF (uvarint),
//	        minLen (uvarint), maxQ (1 byte), offset (uvarint)
//	crc32 (IEEE) of everything after the magic   4 bytes
//
// The format exists so a deployment can build an index offline, ship the
// file to query processors, and swap it in — the paper's "halt a part of
// the index, substitute it and re-initiate". Version 2 replaced the flat
// skip table with skip-aligned blocks plus block-max metadata; version 3
// added the resident per-term score-bound aggregates (maxTF, minLen)
// the threshold-sharing broker prunes partitions with. Older DWRIX
// versions are rejected (rebuild the index).

var persistMagic = [8]byte{'D', 'W', 'R', 'I', 'X', '3', '\n', 0}

// WriteFile writes the index to path atomically (write temp + rename).
func (ix *Index) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("index: creating %s: %w", tmp, err)
	}
	w := bufio.NewWriter(f)
	if err := ix.Write(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("index: flushing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: renaming %s: %w", tmp, err)
	}
	return nil
}

// ReadFile loads an index written by WriteFile.
func ReadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: opening %s: %w", path, err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

// crcWriter hashes bytes as they stream through.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

// Write serializes the index to w.
func (ix *Index) Write(w io.Writer) error {
	if _, err := w.Write(persistMagic[:]); err != nil {
		return fmt.Errorf("index: writing magic: %w", err)
	}
	cw := &crcWriter{w: w}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := cw.Write(buf[:n])
		return err
	}
	putBool := func(b bool) error {
		v := byte(0)
		if b {
			v = 1
		}
		_, err := cw.Write([]byte{v})
		return err
	}

	if err := putBool(ix.opts.Compress); err != nil {
		return err
	}
	if err := putBool(ix.opts.StorePositions); err != nil {
		return err
	}
	if err := putUvarint(uint64(ix.opts.BlockSize)); err != nil {
		return err
	}

	if err := putUvarint(uint64(len(ix.docs))); err != nil {
		return err
	}
	for _, d := range ix.docs {
		if err := putUvarint(uint64(d.ext)); err != nil {
			return err
		}
		if err := putUvarint(uint64(d.length)); err != nil {
			return err
		}
	}

	if err := putUvarint(uint64(len(ix.termList))); err != nil {
		return err
	}
	for i := range ix.termList {
		e := &ix.termList[i]
		if err := putUvarint(uint64(len(e.term))); err != nil {
			return err
		}
		if _, err := cw.Write([]byte(e.term)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.pl.count)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.pl.cf)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.pl.maxTF)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.pl.minLen)); err != nil {
			return err
		}
		if err := putUvarint(math.Float64bits(e.pl.satScale)); err != nil {
			return err
		}
		if err := putUvarint(math.Float64bits(e.pl.quantAvg)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(e.pl.data))); err != nil {
			return err
		}
		if _, err := cw.Write(e.pl.data); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(e.pl.blocks))); err != nil {
			return err
		}
		for _, b := range e.pl.blocks {
			if err := putUvarint(uint64(b.lastDoc)); err != nil {
				return err
			}
			if err := putUvarint(uint64(b.maxTF)); err != nil {
				return err
			}
			if err := putUvarint(uint64(b.minLen)); err != nil {
				return err
			}
			if _, err := cw.Write([]byte{b.maxQ}); err != nil {
				return err
			}
			if err := putUvarint(uint64(b.offset)); err != nil {
				return err
			}
		}
	}
	var crcBytes [4]byte
	binary.LittleEndian.PutUint32(crcBytes[:], cw.crc)
	if _, err := w.Write(crcBytes[:]); err != nil {
		return fmt.Errorf("index: writing checksum: %w", err)
	}
	return nil
}

// crcReader hashes bytes as they are read.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (cr *crcReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(cr.r, b[:]); err != nil {
		return 0, err
	}
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, b[:])
	return b[0], nil
}

// Read deserializes an index written by Write, verifying the checksum.
func Read(r io.Reader) (*Index, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if magic != persistMagic {
		if string(magic[:5]) == "DWRIX" {
			return nil, fmt.Errorf("index: unsupported index format %q (want %q): rebuild the index", magic[:6], persistMagic[:6])
		}
		return nil, fmt.Errorf("index: bad magic %q: not a dwr index file", magic[:])
	}
	cr := &crcReader{r: r}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(cr) }
	readBool := func() (bool, error) {
		b, err := cr.ReadByte()
		return b != 0, err
	}

	ix := &Index{terms: make(map[string]int), docByExt: make(map[int]int)}
	var err error
	if ix.opts.Compress, err = readBool(); err != nil {
		return nil, fmt.Errorf("index: reading options: %w", err)
	}
	if ix.opts.StorePositions, err = readBool(); err != nil {
		return nil, fmt.Errorf("index: reading options: %w", err)
	}
	bs, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("index: reading options: %w", err)
	}
	ix.opts.BlockSize = int(bs)

	nDocs, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("index: reading doc count: %w", err)
	}
	const maxEntities = 1 << 31
	if nDocs > maxEntities {
		return nil, fmt.Errorf("index: implausible doc count %d", nDocs)
	}
	ix.docs = make([]docEntry, nDocs)
	for i := range ix.docs {
		ext, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading doc %d: %w", i, err)
		}
		length, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading doc %d: %w", i, err)
		}
		ix.docs[i] = docEntry{ext: int(ext), length: int(length)}
		ix.docByExt[int(ext)] = i
		ix.totalLen += int64(length)
	}

	nTerms, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("index: reading term count: %w", err)
	}
	if nTerms > maxEntities {
		return nil, fmt.Errorf("index: implausible term count %d", nTerms)
	}
	ix.termList = make([]termEntry, nTerms)
	for i := range ix.termList {
		tl, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d: %w", i, err)
		}
		if tl > 1<<20 {
			return nil, fmt.Errorf("index: implausible term length %d", tl)
		}
		tb := make([]byte, tl)
		if _, err := io.ReadFull(cr, tb); err != nil {
			return nil, fmt.Errorf("index: reading term %d: %w", i, err)
		}
		count, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d postings: %w", i, err)
		}
		cf, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d cf: %w", i, err)
		}
		maxTF, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d score bounds: %w", i, err)
		}
		minLen, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d score bounds: %w", i, err)
		}
		satBits, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d quantization: %w", i, err)
		}
		avgBits, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d quantization: %w", i, err)
		}
		dl, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d data: %w", i, err)
		}
		if dl > 1<<33 {
			return nil, fmt.Errorf("index: implausible posting data length %d", dl)
		}
		data := make([]byte, dl)
		if _, err := io.ReadFull(cr, data); err != nil {
			return nil, fmt.Errorf("index: reading term %d data: %w", i, err)
		}
		nBlocks, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: reading term %d blocks: %w", i, err)
		}
		if nBlocks > maxEntities {
			return nil, fmt.Errorf("index: implausible block count %d", nBlocks)
		}
		blocks := make([]blockMeta, nBlocks)
		for b := range blocks {
			lastDoc, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("index: reading block: %w", err)
			}
			maxTF, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("index: reading block: %w", err)
			}
			minLen, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("index: reading block: %w", err)
			}
			maxQ, err := cr.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("index: reading block: %w", err)
			}
			off, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("index: reading block: %w", err)
			}
			blocks[b] = blockMeta{
				lastDoc: int32(lastDoc), maxTF: int32(maxTF),
				minLen: int32(minLen), maxQ: maxQ, offset: uint32(off),
			}
		}
		term := string(tb)
		ix.terms[term] = i
		ix.termList[i] = termEntry{term: term, pl: postingList{
			count: int(count), cf: int64(cf), data: data, blocks: blocks,
			maxTF: int32(maxTF), minLen: int32(minLen),
			satScale: math.Float64frombits(satBits),
			quantAvg: math.Float64frombits(avgBits),
		}}
	}

	wantCRC := cr.crc
	var crcBytes [4]byte
	if _, err := io.ReadFull(r, crcBytes[:]); err != nil {
		return nil, fmt.Errorf("index: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBytes[:]); got != wantCRC {
		return nil, fmt.Errorf("index: checksum mismatch: file %08x, computed %08x (corrupt index)", got, wantCRC)
	}
	return ix, nil
}
