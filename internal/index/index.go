package index

import (
	"sort"
)

// Index is an immutable inverted index over a set of documents. Build
// one with a Builder (or one of the distributed build strategies) and
// query it through Postings, DF, CF, and the document accessors.
//
// Reader-safety invariant: once a builder returns an Index, no method
// mutates it — there is no lazily-populated cache, no memoized
// statistic, no internal cursor. Every accessor is therefore safe for
// any number of concurrent readers with no locking, which is what lets
// the scatter-gather broker of internal/qproc evaluate partitions on
// parallel goroutines. (Per-iteration state lives in the Iterator
// values handed out by Postings; each call returns a fresh one.)
// Anything that would break this invariant must go through a new type
// (see Dynamic for the mutable, lock-guarded variant).
type Index struct {
	opts     Options
	terms    map[string]int
	termList []termEntry
	docs     []docEntry
	docByExt map[int]int
	totalLen int64
}

type termEntry struct {
	term string
	pl   postingList
}

type docEntry struct {
	ext    int // external document ID (e.g. simweb page ID)
	length int // tokens in the document
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.docs) }

// NumTerms returns the number of distinct terms.
func (ix *Index) NumTerms() int { return len(ix.termList) }

// TotalLen returns the total token count across documents.
func (ix *Index) TotalLen() int64 { return ix.totalLen }

// AvgDocLen returns the mean document length, or 0 for an empty index.
func (ix *Index) AvgDocLen() float64 {
	if len(ix.docs) == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(len(ix.docs))
}

// DocLen returns the token count of internal document doc.
func (ix *Index) DocLen(doc int32) int { return ix.docs[doc].length }

// ExtID maps an internal document ordinal to its external ID.
func (ix *Index) ExtID(doc int32) int { return ix.docs[doc].ext }

// InternalID maps an external document ID to the internal ordinal, or
// -1 if the document is not in this index.
func (ix *Index) InternalID(ext int) int32 {
	if i, ok := ix.docByExt[ext]; ok {
		return int32(i)
	}
	return -1
}

// DF returns the document frequency of term in this index (0 if absent).
func (ix *Index) DF(term string) int {
	if i, ok := ix.terms[term]; ok {
		return ix.termList[i].pl.count
	}
	return 0
}

// CF returns the collection frequency (total occurrences) of term.
func (ix *Index) CF(term string) int64 {
	if i, ok := ix.terms[term]; ok {
		return ix.termList[i].pl.cf
	}
	return 0
}

// Postings returns an iterator over term's posting list (without
// materializing positions), or nil if the term is absent.
func (ix *Index) Postings(term string) *Iterator {
	return ix.postings(term, false)
}

// PostingsWithPositions returns an iterator that materializes positions,
// for phrase and proximity matching. The paper notes pipelined term-
// partitioned systems pay heavily to ship these (Section 5).
func (ix *Index) PostingsWithPositions(term string) *Iterator {
	return ix.postings(term, true)
}

func (ix *Index) postings(term string, withPos bool) *Iterator {
	i, ok := ix.terms[term]
	if !ok {
		return nil
	}
	return newIterator(&ix.termList[i].pl, ix.opts, withPos)
}

// PostingsInto is Postings with caller-owned iterator storage: it
// re-initializes *it over term's posting list (without positions) and
// returns it, or returns nil — leaving *it untouched — when the term is
// absent. Evaluation loops that score many lists per query use this
// with pooled Iterator values to keep the hot path allocation-free.
func (ix *Index) PostingsInto(it *Iterator, term string) *Iterator {
	i, ok := ix.terms[term]
	if !ok {
		return nil
	}
	it.reset(&ix.termList[i].pl, ix.opts, false)
	return it
}

// postingList returns the internal encoded list for term, or nil if the
// term is absent. The posting-list cache shares these pointers rather
// than copying: postingList values are immutable once built.
func (ix *Index) postingList(term string) *postingList {
	if i, ok := ix.terms[term]; ok {
		return &ix.termList[i].pl
	}
	return nil
}

// TermScoreMeta is the resident per-term score-bound summary a broker
// prunes partitions with: the aggregates of the block-max metadata over
// the whole list (max tf, min document length) plus the quantized
// saturation bound and the average document length it assumes. All four
// live in the dictionary — reading them touches no posting bytes.
type TermScoreMeta struct {
	MaxTF    int32   // largest tf in the list
	MinLen   int32   // shortest document in the list (0 = unknown; bound stays safe)
	SatBound float64 // max BM25 saturation over the list at default constants (0 = none)
	QuantAvg float64 // average document length SatBound was computed against
}

// MergeTermScoreMeta folds two score-bound summaries of the same term
// (from different segments or partitions) into one summary that remains
// a safe upper bound for the union of the two posting lists: MaxTF takes
// the max and MinLen the min (0 = unknown stays 0, the loosest and
// therefore safest length). The quantized saturation bound survives only
// when both sides carry one: SatBound takes the max and QuantAvg the min,
// so the merged validity condition (scorer average ≤ QuantAvg) implies
// each side's condition and the max dominates both.
func MergeTermScoreMeta(a, b TermScoreMeta) TermScoreMeta {
	m := TermScoreMeta{MaxTF: a.MaxTF, MinLen: a.MinLen}
	if b.MaxTF > m.MaxTF {
		m.MaxTF = b.MaxTF
	}
	if b.MinLen < m.MinLen || m.MinLen == 0 {
		m.MinLen = b.MinLen
	}
	if a.MinLen == 0 || b.MinLen == 0 {
		m.MinLen = 0
	}
	if a.SatBound > 0 && b.SatBound > 0 {
		m.SatBound = a.SatBound
		if b.SatBound > m.SatBound {
			m.SatBound = b.SatBound
		}
		m.QuantAvg = a.QuantAvg
		if b.QuantAvg < m.QuantAvg {
			m.QuantAvg = b.QuantAvg
		}
	}
	return m
}

// TermScoreMeta returns term's score-bound summary; ok is false when the
// term is absent from this partition.
func (ix *Index) TermScoreMeta(term string) (TermScoreMeta, bool) {
	i, ok := ix.terms[term]
	if !ok {
		return TermScoreMeta{}, false
	}
	pl := &ix.termList[i].pl
	return TermScoreMeta{MaxTF: pl.maxTF, MinLen: pl.minLen, SatBound: pl.satScale, QuantAvg: pl.quantAvg}, true
}

// EncodedListBytes returns the resident size of term's posting list as
// the posting-list cache budgets it: encoded data bytes plus per-block
// metadata overhead. 0 if the term is absent.
func (ix *Index) EncodedListBytes(term string) int64 {
	if i, ok := ix.terms[term]; ok {
		return ix.termList[i].pl.memBytes()
	}
	return 0
}

// PostingBytes returns the encoded size in bytes of term's posting list,
// the disk/network cost unit used by the Webber experiments (C6).
func (ix *Index) PostingBytes(term string) int {
	if i, ok := ix.terms[term]; ok {
		return len(ix.termList[i].pl.data)
	}
	return 0
}

// SizeBytes returns the total encoded posting data size.
func (ix *Index) SizeBytes() int64 {
	var n int64
	for i := range ix.termList {
		n += int64(len(ix.termList[i].pl.data))
	}
	return n
}

// Terms returns the lexicon in sorted order.
func (ix *Index) Terms() []string {
	out := make([]string, len(ix.termList))
	for i := range ix.termList {
		out[i] = ix.termList[i].term
	}
	sort.Strings(out)
	return out
}

// Options returns the layout options the index was built with.
func (ix *Index) Options() Options { return ix.opts }

// Stats are the per-partition statistics exchanged by the two-round
// global-statistics protocol of Section 4 (External factors): enough to
// reconstruct global DF/CF and collection size at the broker.
type Stats struct {
	NumDocs  int
	TotalLen int64
	DF       map[string]int
	CF       map[string]int64
}

// LocalStats extracts the statistics of this index restricted to the
// given terms (nil = all terms).
func (ix *Index) LocalStats(terms []string) Stats {
	st := Stats{
		NumDocs:  ix.NumDocs(),
		TotalLen: ix.totalLen,
		DF:       make(map[string]int),
		CF:       make(map[string]int64),
	}
	if terms == nil {
		for i := range ix.termList {
			e := &ix.termList[i]
			st.DF[e.term] = e.pl.count
			st.CF[e.term] = e.pl.cf
		}
		return st
	}
	for _, t := range terms {
		if df := ix.DF(t); df > 0 {
			st.DF[t] = df
			st.CF[t] = ix.CF(t)
		}
	}
	return st
}

// MergeStats aggregates per-partition statistics into global statistics,
// the broker-side half of the two-round protocol.
func MergeStats(parts ...Stats) Stats {
	g := Stats{DF: make(map[string]int), CF: make(map[string]int64)}
	for _, p := range parts {
		g.NumDocs += p.NumDocs
		g.TotalLen += p.TotalLen
		for t, df := range p.DF {
			g.DF[t] += df
		}
		for t, cf := range p.CF {
			g.CF[t] += cf
		}
	}
	return g
}
