package index

import (
	"fmt"
	"sync"

	"dwr/internal/conc"
)

// MergePolicy is the tiered size-ratio policy of a SegmentStore:
// whenever the second-newest segment holds fewer than Radix times the
// newest segment's documents, the two are merged — Lester, Moffat &
// Zobel's geometric partitioning (reference [15] of the paper), which
// bounds the store at O(log n) segments and re-merges each document
// O(log n) times.
type MergePolicy struct {
	// Radix is the size ratio between adjacent tiers (>= 2; values < 2
	// default to 3).
	Radix int
}

func (p MergePolicy) normalized() MergePolicy {
	if p.Radix < 2 {
		p.Radix = 3
	}
	return p
}

// SegmentStats summarizes a store's maintenance activity.
type SegmentStats struct {
	Applied           int    // segments applied (flushes/seals)
	Merges            int    // segment merges performed
	MergedDocs        int    // documents written by merges
	TombstonesDropped int    // tombstoned documents physically removed
	Segments          int    // segments currently resident
	Gen               uint64 // current manifest generation
}

// SegmentStore owns an LSM-style set of immutable segments behind an
// atomically swapped Manifest. Writers apply sealed segments and
// tombstone deletes; the merge policy compacts segments either inline
// (the deterministic default — merge timing is then a pure function of
// the apply/delete sequence, which virtual-time replays require) or on
// a bounded background pool (wall-clock serving, where ingest must not
// stall behind a large merge).
//
// Concurrency contract: any number of goroutines may call Manifest,
// Stats, and the Manifest's read methods at any time. Structural
// mutation (Apply, Delete, Compact) must come from one writer at a
// time; background merges scheduled by the store itself are internally
// serialized and safe against a concurrent writer.
type SegmentStore struct {
	opts Options
	pol  MergePolicy

	// mu guards only the manifest pointer and the counters; it is held
	// for pointer swaps, never across index builds.
	mu    sync.RWMutex
	man   *Manifest
	stats SegmentStats

	// maint serializes merge cascades (inline or background).
	maint   sync.Mutex
	pool    *conc.Pool
	pending sync.WaitGroup

	hookMu   sync.Mutex
	onChange []func()
}

// NewSegmentStore creates an empty store with inline (deterministic)
// merge scheduling.
func NewSegmentStore(opts Options, pol MergePolicy) *SegmentStore {
	return &SegmentStore{opts: opts, pol: pol.normalized(), man: emptyManifest()}
}

// Background switches the store to background merge scheduling on pool:
// Apply publishes the new segment immediately and the merge cascade
// runs on a pool goroutine. Call before the first Apply. Background
// merges surrender replay determinism — merge timing (and therefore the
// exact moment tombstoned documents stop counting toward collection
// statistics) depends on the scheduler — so this mode is for wall-clock
// serving only.
func (s *SegmentStore) Background(pool *conc.Pool) { s.pool = pool }

// Manifest returns the current manifest snapshot. The snapshot is
// immutable; queries evaluated against it are unaffected by concurrent
// swaps.
func (s *SegmentStore) Manifest() *Manifest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man
}

// Stats returns the accumulated maintenance counters.
func (s *SegmentStore) Stats() SegmentStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Segments = len(s.man.segments)
	st.Gen = s.man.gen
	return st
}

// OnChange registers fn to run after every published manifest swap
// (apply, merge, delete, compaction). Hooks fire outside all store
// locks and must be fast and non-blocking; the intended use is bumping
// a result cache's generation counter.
func (s *SegmentStore) OnChange(fn func()) {
	s.hookMu.Lock()
	s.onChange = append(s.onChange, fn)
	s.hookMu.Unlock()
}

func (s *SegmentStore) notify() {
	s.hookMu.Lock()
	hooks := s.onChange
	s.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Apply publishes seg as the newest segment and runs (or schedules) the
// merge cascade. It rejects segments holding a document already
// resident in the store — cross-segment duplicates would corrupt
// scoring, and the upstream writers (SegmentWriter, Dynamic) dedupe
// before sealing, so a duplicate here is a pipeline bug.
func (s *SegmentStore) Apply(seg *Index) error {
	if seg == nil || seg.NumDocs() == 0 {
		return nil
	}
	man := s.Manifest()
	for doc := int32(0); doc < int32(seg.NumDocs()); doc++ {
		if ext := seg.ExtID(doc); man.Contains(ext) {
			return fmt.Errorf("index: segment holds document %d already resident in the store", ext)
		}
	}
	s.mu.Lock()
	cur := s.man
	segs := make([]*Index, 0, len(cur.segments)+1)
	segs = append(segs, cur.segments...)
	segs = append(segs, seg)
	s.man = &Manifest{gen: cur.gen + 1, segments: segs, deleted: cur.deleted}
	s.stats.Applied++
	s.mu.Unlock()
	if s.pool != nil {
		s.pending.Add(1)
		s.pool.Submit(func() {
			defer s.pending.Done()
			if s.maintain() {
				s.notify()
			}
		})
	} else {
		s.maintain()
	}
	s.notify()
	return nil
}

// Delete tombstones ext. It reports whether the document was resident
// and not already tombstoned; the document disappears from searches at
// the very next Manifest call and is physically dropped by the next
// merge touching its segment.
func (s *SegmentStore) Delete(ext int) bool {
	man := s.Manifest()
	if !man.Contains(ext) || man.Deleted(ext) {
		return false
	}
	s.mu.Lock()
	cur := s.man
	del := make(map[int]bool, len(cur.deleted)+1)
	for k, v := range cur.deleted {
		del[k] = v
	}
	del[ext] = true
	s.man = &Manifest{gen: cur.gen + 1, segments: cur.segments, deleted: del}
	s.mu.Unlock()
	s.notify()
	return true
}

// maintain runs the geometric merge cascade until the policy is
// satisfied, building each merged segment off-lock and swapping it in
// under a short write lock. It reports whether any merge happened.
// Safe against concurrent Apply/Delete: merges identify their inputs by
// segment identity at swap time, and appends only ever extend the tail
// behind them.
func (s *SegmentStore) maintain() bool {
	s.maint.Lock()
	defer s.maint.Unlock()
	did := false
	for {
		man := s.Manifest()
		n := len(man.segments)
		if n < 2 {
			return did
		}
		a, c := man.segments[n-2], man.segments[n-1]
		if a.NumDocs() >= s.pol.Radix*c.NumDocs() {
			return did
		}
		// Build the merged segment with no store lock held: readers keep
		// searching the pre-merge manifest, writers keep applying.
		merged, dropped := mergeSegments(s.opts, []*Index{a, c}, man.deleted)

		s.mu.Lock()
		cur := s.man
		i := segmentIndex(cur.segments, a)
		segs := make([]*Index, 0, len(cur.segments)-1)
		segs = append(segs, cur.segments[:i]...)
		segs = append(segs, merged)
		segs = append(segs, cur.segments[i+2:]...)
		del := cur.deleted
		if len(dropped) > 0 {
			del = make(map[int]bool, len(cur.deleted))
			for k, v := range cur.deleted {
				del[k] = v
			}
			for _, ext := range dropped {
				delete(del, ext)
			}
		}
		s.man = &Manifest{gen: cur.gen + 1, segments: segs, deleted: del}
		s.stats.Merges++
		s.stats.MergedDocs += merged.NumDocs()
		s.stats.TombstonesDropped += len(dropped)
		s.mu.Unlock()
		did = true
	}
}

// segmentIndex locates seg by identity. Only the maintenance path
// removes segments and it is serialized, so a merge input is always
// still present (though possibly no longer at the tail, if a writer
// applied new segments while the merge was building).
func segmentIndex(segs []*Index, seg *Index) int {
	for i, s := range segs {
		if s == seg {
			return i
		}
	}
	panic("index: merge input segment vanished from the manifest")
}

// Quiesce blocks until every scheduled background merge has finished.
// Inline-mode stores return immediately.
func (s *SegmentStore) Quiesce() { s.pending.Wait() }

// Compact merges every segment into one (dropping all tombstones),
// publishes the single-segment manifest, and returns the merged index —
// the end-of-stream step that turns a streaming store into the
// immutable artifact the offline pipeline produces.
func (s *SegmentStore) Compact() (*Index, error) {
	s.Quiesce()
	s.maint.Lock()
	defer s.maint.Unlock()
	man := s.Manifest()
	if len(man.segments) == 0 {
		return NewBuilder(s.opts).BuildParallel(1), nil
	}
	merged, dropped := mergeSegments(s.opts, man.segments, man.deleted)
	s.mu.Lock()
	cur := s.man
	s.man = &Manifest{gen: cur.gen + 1, segments: []*Index{merged}, deleted: make(map[int]bool)}
	if len(man.segments) > 1 {
		s.stats.Merges++
		s.stats.MergedDocs += merged.NumDocs()
	}
	s.stats.TombstonesDropped += len(dropped)
	s.mu.Unlock()
	s.notify()
	return merged, nil
}

// mergeSegments re-indexes the live documents of parts (in segment
// order) into one fresh segment, returning it plus the tombstoned
// external IDs that were physically dropped. Merging via re-indexing
// keeps the implementation simple and exactly correct (positions
// included); see reconstructTerms.
func mergeSegments(opts Options, parts []*Index, deleted map[int]bool) (*Index, []int) {
	nb := NewBuilder(opts)
	var dropped []int
	for _, src := range parts {
		terms := reconstructAllDocs(src)
		for doc := int32(0); doc < int32(src.NumDocs()); doc++ {
			ext := src.ExtID(doc)
			if deleted[ext] {
				dropped = append(dropped, ext)
				continue
			}
			if err := nb.AddDocument(ext, terms[doc]); err != nil {
				// Apply rejects cross-segment duplicates, so this is
				// unreachable without a corrupted manifest.
				panic(err)
			}
		}
	}
	return nb.BuildParallel(1), dropped
}
