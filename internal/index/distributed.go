package index

import (
	"fmt"
	"sort"

	"dwr/internal/conc"
)

// Doc is one tokenized input document for the distributed builders.
type Doc struct {
	Ext   int
	Terms []string
}

// BuildMapReduce constructs an index with the map-reduce strategy of
// Dean & Ghemawat that the paper cites for distributed index
// construction (§4): mappers invert disjoint document chunks in
// parallel, reducers own disjoint term ranges and merge the partial
// posting lists, and the shuffled result is assembled into one index.
func BuildMapReduce(opts Options, docs []Doc, mappers, reducers int) (*Index, error) {
	if mappers <= 0 {
		mappers = 1
	}
	if reducers <= 0 {
		reducers = 1
	}
	if err := checkDuplicates(docs); err != nil {
		return nil, err
	}

	// Map phase: chunk documents contiguously, invert each chunk in
	// parallel with the reference builder.
	chunks := make([][]Doc, mappers)
	per := (len(docs) + mappers - 1) / mappers
	for i := 0; i < mappers; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(docs) {
			lo = len(docs)
		}
		if hi > len(docs) {
			hi = len(docs)
		}
		chunks[i] = docs[lo:hi]
	}
	partials := make([]*Index, mappers)
	conc.Do(mappers, mappers, func(i int) {
		b := NewBuilder(opts)
		for _, d := range chunks[i] {
			b.AddDocument(d.Ext, d.Terms)
		}
		partials[i] = b.BuildParallel(1)
	})

	// Global document table, sorted by external ID, shared by reducers.
	ix, remap := mergeDocTables(opts, partials)
	st := lengthsOf(ix.docs, ix.totalLen)

	// Shuffle: assign terms to reducers by hash; each reducer merges its
	// terms' postings from every partial.
	termSet := make(map[string]bool)
	for _, p := range partials {
		for i := range p.termList {
			termSet[p.termList[i].term] = true
		}
	}
	allTerms := make([]string, 0, len(termSet))
	for t := range termSet {
		allTerms = append(allTerms, t)
	}
	sort.Strings(allTerms)

	byReducer := make([][]string, reducers)
	for _, t := range allTerms {
		r := int(stringHash(t) % uint64(reducers))
		byReducer[r] = append(byReducer[r], t)
	}

	type reducedTerm struct {
		term string
		pl   postingList
	}
	results := make([][]reducedTerm, reducers)
	conc.Do(reducers, reducers, func(r int) {
		out := make([]reducedTerm, 0, len(byReducer[r]))
		for _, t := range byReducer[r] {
			var merged []Posting
			for pi, p := range partials {
				i, ok := p.terms[t]
				if !ok {
					continue
				}
				for _, post := range p.termList[i].pl.decodeAll(p.opts) {
					post.Doc = remap[pi][post.Doc]
					merged = append(merged, post)
				}
			}
			sort.Slice(merged, func(i, j int) bool { return merged[i].Doc < merged[j].Doc })
			out = append(out, reducedTerm{term: t, pl: encodePostings(merged, opts, st)})
		}
		results[r] = out
	})

	var flat []reducedTerm
	for _, rs := range results {
		flat = append(flat, rs...)
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].term < flat[j].term })
	for _, rt := range flat {
		ix.terms[rt.term] = len(ix.termList)
		ix.termList = append(ix.termList, termEntry{term: rt.term, pl: rt.pl})
	}
	return ix, nil
}

// BuildPipeline constructs an index with the pipelined organization of
// Melink et al. (§4): documents stream through a chain of stage workers,
// each owning a contiguous lexicographic term range and inverting only
// the occurrences in its range; the per-stage partial indexes are merged
// at the end of the pipe.
func BuildPipeline(opts Options, docs []Doc, stages int) (*Index, error) {
	if stages <= 0 {
		stages = 1
	}
	if err := checkDuplicates(docs); err != nil {
		return nil, err
	}

	// Determine term-range boundaries from a sample of the vocabulary so
	// stages get comparable work.
	vocab := make(map[string]bool)
	for _, d := range docs {
		for _, t := range d.Terms {
			vocab[t] = true
		}
	}
	terms := make([]string, 0, len(vocab))
	for t := range vocab {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	if len(terms) == 0 {
		stages = 1
	}
	bounds := make([]string, stages-1) // stage s handles [bounds[s-1], bounds[s])
	for s := 1; s < stages; s++ {
		bounds[s-1] = terms[len(terms)*s/stages]
	}
	stageOf := func(t string) int {
		return sort.SearchStrings(bounds, t+"\x00")
	}

	// Build the shared document table first, in external-ID order, so
	// internal ordinals match the other builders; the pipeline stages
	// then stream the same ordered documents through the stage chain.
	sorted := append([]Doc(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Ext < sorted[j].Ext })
	ix := &Index{opts: opts, terms: make(map[string]int), docByExt: make(map[int]int)}
	for li, d := range sorted {
		ix.docs = append(ix.docs, docEntry{ext: d.Ext, length: len(d.Terms)})
		ix.docByExt[d.Ext] = li
		ix.totalLen += int64(len(d.Terms))
	}

	// The pipeline: each stage owns its partial posting map and inverts
	// only occurrences in its term range, seeing documents in ordinal
	// order (conc.Pipeline's ordering contract), so posting lists come
	// out already document-ordered like the serial builder's.
	partialPost := make([]map[string][]Posting, stages)
	for s := range partialPost {
		partialPost[s] = make(map[string][]Posting)
	}
	conc.Pipeline(len(sorted), stages, func(s, li int) {
		d := sorted[li]
		occ := make(map[string][]int32)
		for i, t := range d.Terms {
			if stageOf(t) == s {
				occ[t] = append(occ[t], int32(i))
			}
		}
		for t, poss := range occ {
			p := Posting{Doc: int32(li), TF: int32(len(poss))}
			if opts.StorePositions {
				p.Pos = poss
			}
			partialPost[s][t] = append(partialPost[s][t], p)
		}
	})

	// Collect stage outputs: term ranges are disjoint, so simple union.
	st := lengthsOf(ix.docs, ix.totalLen)
	var all []string
	for s := 0; s < stages; s++ {
		for t := range partialPost[s] {
			all = append(all, t)
		}
	}
	sort.Strings(all)
	for _, t := range all {
		ps := partialPost[stageOf(t)][t]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Doc < ps[j].Doc })
		ix.terms[t] = len(ix.termList)
		ix.termList = append(ix.termList, termEntry{term: t, pl: encodePostings(ps, opts, st)})
	}
	return ix, nil
}

// mergeDocTables builds the shell of a merged index (documents only,
// sorted by external ID) plus per-part document remap tables.
func mergeDocTables(opts Options, parts []*Index) (*Index, [][]int32) {
	type srcDoc struct {
		ext, length, part int
		local             int32
	}
	var all []srcDoc
	for pi, p := range parts {
		for li, d := range p.docs {
			all = append(all, srcDoc{ext: d.ext, length: d.length, part: pi, local: int32(li)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ext < all[j].ext })
	ix := &Index{opts: opts, terms: make(map[string]int), docByExt: make(map[int]int, len(all))}
	remap := make([][]int32, len(parts))
	for pi, p := range parts {
		remap[pi] = make([]int32, len(p.docs))
	}
	for gi, d := range all {
		ix.docs = append(ix.docs, docEntry{ext: d.ext, length: d.length})
		ix.docByExt[d.ext] = gi
		ix.totalLen += int64(d.length)
		remap[d.part][d.local] = int32(gi)
	}
	return ix, remap
}

func checkDuplicates(docs []Doc) error {
	seen := make(map[int]bool, len(docs))
	for _, d := range docs {
		if seen[d.Ext] {
			return fmt.Errorf("index: duplicate document %d", d.Ext)
		}
		seen[d.Ext] = true
	}
	return nil
}

func stringHash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
