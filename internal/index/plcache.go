package index

import (
	"sync"

	"dwr/internal/cache"
)

// PostingsCache is the second cache level of the hierarchy in Section 5:
// a per-partition-server cache of *encoded* posting lists (block data
// plus block metadata), sized in resident bytes rather than entry count
// (one stop-word list can outweigh ten thousand tail terms). It lives
// outside Index — Index stays immutable and safely shareable — and is
// bound to a concrete index per evaluation via Bind. Replacement is
// least-frequently-used with LRU tiebreak over the byte budget; lists
// larger than the whole budget are served but never admitted.
//
// Entries are the index's own immutable postingList values, so a hit
// costs a map lookup and an iterator reset: decoding stays lazy, one
// block at a time, through the ordinary Iterator/SkipTo path, and the
// byte budget reflects real resident memory (len(data) plus
// BlockMetaBytes per block) instead of a decoded-slice estimate.
type PostingsCache struct {
	mu sync.Mutex
	c  *cache.SizedLFU[*postingList]
}

// NewPostingsCache creates a posting-list cache holding at most
// budgetBytes of encoded posting data plus block-metadata overhead.
func NewPostingsCache(budgetBytes int64) *PostingsCache {
	return &PostingsCache{
		c: cache.NewSizedLFU[*postingList](budgetBytes, func(pl *postingList) int64 {
			return pl.memBytes()
		}),
	}
}

// Stats returns accumulated hits, misses, and the bytes currently held.
func (pc *PostingsCache) Stats() (hits, misses int, usedBytes int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	h, m := pc.c.Stats()
	return h, m, pc.c.UsedCost()
}

// Bind returns a view of the cache over one concrete index. The view is
// cheap (allocate one per evaluation); its Hits/Misses fields count only
// this evaluation's lookups, so engines can attribute cache behaviour to
// individual queries. A PostingsCache must only ever be bound to the
// same logical index — entries are keyed by term alone.
func (pc *PostingsCache) Bind(ix *Index) *CachedPostings {
	return &CachedPostings{pc: pc, ix: ix}
}

// CachedPostings adapts a PostingsCache + Index pair to the postings-
// provider shape rank evaluation consumes: PostingsInto serves encoded
// lists from the cache and falls through to (and populates from) the
// index on a miss.
type CachedPostings struct {
	pc     *PostingsCache
	ix     *Index
	Hits   int
	Misses int
}

// PostingsInto re-initializes *it over term's postings, from the cache
// when possible. Absent terms return nil without touching *it or the
// counters, matching Index.PostingsInto.
func (cp *CachedPostings) PostingsInto(it *Iterator, term string) *Iterator {
	cp.pc.mu.Lock()
	e, ok := cp.pc.c.Get(term)
	cp.pc.mu.Unlock()
	if ok {
		cp.Hits++
		it.reset(e.Value, cp.ix.opts, false)
		return it
	}
	pl := cp.ix.postingList(term)
	if pl == nil {
		return nil
	}
	cp.Misses++
	cp.pc.mu.Lock()
	cp.pc.c.Put(term, pl, 0)
	cp.pc.mu.Unlock()
	it.reset(pl, cp.ix.opts, false)
	return it
}

// DecodedPostings materializes term's posting list without positions
// (the evaluation-path decode), or nil if the term is absent.
func (ix *Index) DecodedPostings(term string) []Posting {
	pl := ix.postingList(term)
	if pl == nil {
		return nil
	}
	out := make([]Posting, 0, pl.count)
	it := newIterator(pl, ix.opts, false)
	for it.Next() {
		out = append(out, it.cur)
	}
	return out
}
