package index

import (
	"sync"

	"dwr/internal/cache"
)

// PostingMemBytes approximates the in-memory weight of one decoded
// Posting (Doc + TF + the unused Pos slice header). The posting-list
// cache budgets in these units so its capacity flag reads as bytes.
const PostingMemBytes = 32

// PostingsCache is the second cache level of the hierarchy in Section 5:
// a per-partition-server cache of *decoded* posting lists, sized in
// bytes of postings rather than entry count (one stop-word list can
// outweigh ten thousand tail terms). It lives outside Index — Index
// stays immutable and safely shareable — and is bound to a concrete
// index per evaluation via Bind. Replacement is least-frequently-used
// with LRU tiebreak over the byte budget; lists larger than the whole
// budget are served decoded but never admitted.
//
// A hit hands evaluation an Iterator in decoded mode: no varint
// decoding, and SkipTo becomes a binary search over the slice. The
// decoded slices are immutable after insertion, so one cached decode can
// back any number of concurrent evaluations.
type PostingsCache struct {
	mu sync.Mutex
	c  *cache.SizedLFU[[]Posting]
}

// NewPostingsCache creates a posting-list cache holding at most
// budgetBytes worth of decoded postings (PostingMemBytes each).
func NewPostingsCache(budgetBytes int64) *PostingsCache {
	return &PostingsCache{
		c: cache.NewSizedLFU[[]Posting](budgetBytes, func(ps []Posting) int64 {
			return int64(len(ps)) * PostingMemBytes
		}),
	}
}

// Stats returns accumulated hits, misses, and the bytes currently held.
func (pc *PostingsCache) Stats() (hits, misses int, usedBytes int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	h, m := pc.c.Stats()
	return h, m, pc.c.UsedCost()
}

// Bind returns a view of the cache over one concrete index. The view is
// cheap (allocate one per evaluation); its Hits/Misses fields count only
// this evaluation's lookups, so engines can attribute cache behaviour to
// individual queries. A PostingsCache must only ever be bound to the
// same logical index — entries are keyed by term alone.
func (pc *PostingsCache) Bind(ix *Index) *CachedPostings {
	return &CachedPostings{pc: pc, ix: ix}
}

// CachedPostings adapts a PostingsCache + Index pair to the postings-
// provider shape rank evaluation consumes: PostingsInto serves decoded
// slices from the cache and falls through to (and populates from) the
// index on a miss.
type CachedPostings struct {
	pc     *PostingsCache
	ix     *Index
	Hits   int
	Misses int
}

// PostingsInto re-initializes *it over term's postings, from the cache
// when possible. Absent terms return nil without touching *it or the
// counters, matching Index.PostingsInto.
func (cp *CachedPostings) PostingsInto(it *Iterator, term string) *Iterator {
	cp.pc.mu.Lock()
	e, ok := cp.pc.c.Get(term)
	cp.pc.mu.Unlock()
	if ok {
		cp.Hits++
		return resetDecoded(it, e.Value)
	}
	ps := cp.ix.DecodedPostings(term)
	if ps == nil {
		return nil
	}
	cp.Misses++
	cp.pc.mu.Lock()
	cp.pc.c.Put(term, ps, 0)
	cp.pc.mu.Unlock()
	return resetDecoded(it, ps)
}

// DecodedPostings materializes term's posting list without positions
// (the evaluation-path decode), or nil if the term is absent.
func (ix *Index) DecodedPostings(term string) []Posting {
	i, ok := ix.terms[term]
	if !ok {
		return nil
	}
	pl := &ix.termList[i].pl
	out := make([]Posting, 0, pl.count)
	it := newIterator(pl, ix.opts, false)
	for it.Next() {
		out = append(out, it.cur)
	}
	return out
}
