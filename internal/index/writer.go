package index

import "fmt"

// SegmentWriter turns a bounded stream of documents into immutable
// segments applied to a SegmentStore — the ingestion half of the
// streaming crawl→index→serve pipeline. Documents accumulate in an
// in-memory builder and are sealed into an immutable segment every
// SegDocs documents (or on Cut/Build); sealed segments become
// searchable through the store's manifest, and the store's merge policy
// compacts them inline or in the background. Documents still in the
// unsealed buffer are NOT searchable — the gap between fetch and seal
// is exactly the freshness lag dwrbench -fresh measures.
//
// A SegmentWriter is a single-goroutine producer; concurrent searches
// go through the store's Manifest.
type SegmentWriter struct {
	store   *SegmentStore
	segDocs int
	buf     *MemBuilder
	added   int
	sealed  int
}

// NewSegmentWriter creates a writer sealing a segment into store every
// segDocs documents (<= 0 defaults to 512).
func NewSegmentWriter(store *SegmentStore, segDocs int) *SegmentWriter {
	if segDocs <= 0 {
		segDocs = 512
	}
	return &SegmentWriter{store: store, segDocs: segDocs, buf: NewBuilder(store.opts)}
}

// AddDocument buffers one tokenized document, sealing a segment when
// the buffer reaches the writer's segment size. Documents already
// resident in the store (tombstoned or not) are rejected: updates are
// modelled as delete + add under a fresh ID, as everywhere in the
// immutable-segment design.
func (w *SegmentWriter) AddDocument(ext int, terms []string) error {
	if man := w.store.Manifest(); man.Contains(ext) {
		if man.Deleted(ext) {
			return fmt.Errorf("index: document %d is tombstoned but still resident in a segment; re-add under a new ID", ext)
		}
		return fmt.Errorf("index: document %d already present", ext)
	}
	if err := w.buf.AddDocument(ext, terms); err != nil {
		return err
	}
	w.added++
	if w.buf.NumDocs() >= w.segDocs {
		return w.Cut()
	}
	return nil
}

// NumDocs returns how many documents have been added (sealed or not).
func (w *SegmentWriter) NumDocs() int { return w.added }

// Buffered returns how many added documents are not yet sealed (and so
// not yet searchable).
func (w *SegmentWriter) Buffered() int { return w.buf.NumDocs() }

// SegmentsSealed returns how many segments this writer has sealed into
// the store.
func (w *SegmentWriter) SegmentsSealed() int { return w.sealed }

// Cut seals the current buffer into the store as one segment, making
// its documents searchable. A no-op on an empty buffer.
func (w *SegmentWriter) Cut() error {
	if w.buf.NumDocs() == 0 {
		return nil
	}
	seg := w.buf.BuildParallel(1)
	w.buf = NewBuilder(w.store.opts)
	if err := w.store.Apply(seg); err != nil {
		return err
	}
	w.sealed++
	return nil
}

// Build implements Builder: it seals the remaining buffer and compacts
// the store into one immutable index — the end-of-stream handoff that
// makes the streaming path interchangeable with the offline builders.
func (w *SegmentWriter) Build() (*Index, error) {
	if err := w.Cut(); err != nil {
		return nil, err
	}
	return w.store.Compact()
}
