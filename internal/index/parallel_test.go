package index

import (
	"math/rand"
	"sync"
	"testing"
)

// twinBuilders returns two builders fed the identical document stream.
func twinBuilders(opts Options, docs []Doc) (*MemBuilder, *MemBuilder) {
	a, b := NewBuilder(opts), NewBuilder(opts)
	for _, d := range docs {
		a.AddDocument(d.Ext, d.Terms)
		b.AddDocument(d.Ext, d.Terms)
	}
	return a, b
}

func TestBuildParallelEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	docs := randomDocs(rng, 500, 80)
	for _, opts := range []Options{DefaultOptions(), {Compress: false, BlockSize: 8}} {
		a, b := twinBuilders(opts, docs)
		serial := MustBuild(a)
		par := b.BuildParallel(8)
		if !Equal(serial, par) {
			t.Fatalf("opts %+v: parallel build differs from serial", opts)
		}
	}
}

func TestBuildAllEqualsIndividualBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	docs := randomDocs(rng, 400, 60)
	const k = 5
	mk := func() []*MemBuilder {
		bs := make([]*MemBuilder, k)
		for i := range bs {
			bs[i] = NewBuilder(DefaultOptions())
		}
		for j, d := range docs {
			bs[j%k].AddDocument(d.Ext, d.Terms)
		}
		return bs
	}
	serialBuilders, parBuilders := mk(), mk()
	serial := make([]*Index, k)
	for i, b := range serialBuilders {
		serial[i] = MustBuild(b)
	}
	par := BuildAll(parBuilders, 8)
	for i := range serial {
		if !Equal(serial[i], par[i]) {
			t.Fatalf("partition %d: BuildAll result differs from serial build", i)
		}
	}
}

// TestSkipToRepeatedCallsMatchLinear drives a forward-only sequence of
// SkipTo calls on one iterator — the access pattern of conjunctive
// evaluation — and checks every landing against a linear-scan reference.
// BlockSize 4 forces frequent block-boundary crossings and the binary
// search over the block metadata.
func TestSkipToRepeatedCallsMatchLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	docs := randomDocs(rng, 600, 30)
	opts := DefaultOptions()
	opts.BlockSize = 4
	b := NewBuilder(opts)
	for _, d := range docs {
		b.AddDocument(d.Ext, d.Terms)
	}
	ix := MustBuild(b)

	for _, term := range ix.Terms() {
		var all []int32
		it := ix.Postings(term)
		for it.Next() {
			all = append(all, it.Posting().Doc)
		}
		if len(all) < 8 {
			continue
		}
		it = ix.Postings(term)
		cur := int32(-1)
		for step := 0; ; step++ {
			// Jump ahead by a varying stride so targets fall on, between,
			// and past skip boundaries.
			target := cur + 1 + int32(step%7)
			want := int32(-1)
			for _, d := range all {
				if d >= target {
					want = d
					break
				}
			}
			ok := it.SkipTo(target)
			if want == -1 {
				if ok {
					t.Fatalf("term %q SkipTo(%d) = true past the end", term, target)
				}
				break
			}
			if !ok || it.Posting().Doc != want {
				t.Fatalf("term %q step %d SkipTo(%d): got ok=%v doc=%d, want %d",
					term, step, target, ok, it.Posting().Doc, want)
			}
			cur = want
		}
	}
}

// TestConcurrentReaders hammers one Index from many goroutines; run
// under -race this pins the immutable-after-Build reader-safety
// invariant that the parallel broker relies on.
func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	docs := randomDocs(rng, 300, 40)
	b := NewBuilder(DefaultOptions())
	for _, d := range docs {
		b.AddDocument(d.Ext, d.Terms)
	}
	ix := MustBuild(b)
	terms := ix.Terms()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for _, tm := range terms {
					it := ix.Postings(tm)
					n := 0
					for it.Next() {
						_ = it.Posting()
						n++
					}
					if n != ix.DF(tm) {
						t.Errorf("goroutine %d: term %q decoded %d postings, DF=%d", g, tm, n, ix.DF(tm))
						return
					}
					_ = ix.LocalStats([]string{tm})
				}
			}
		}(g)
	}
	wg.Wait()
}
