package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func dynDocs(n int) []Doc {
	rng := rand.New(rand.NewSource(31))
	return randomDocs(rng, n, 30)
}

func TestDynamicSearchMatchesStatic(t *testing.T) {
	docs := dynDocs(300)
	d := NewDynamic(DefaultOptions(), 32, 3)
	b := NewBuilder(DefaultOptions())
	for _, doc := range docs {
		if err := d.Add(doc.Ext, doc.Terms); err != nil {
			t.Fatal(err)
		}
		b.AddDocument(doc.Ext, doc.Terms)
	}
	static := MustBuild(b)
	if d.NumDocs() != static.NumDocs() {
		t.Fatalf("dynamic has %d docs, static %d", d.NumDocs(), static.NumDocs())
	}
	// Dynamic search (segments + buffer, aggregated stats) must find the
	// same documents as the static index for single-term queries; scores
	// use the same BM25 so the match sets are identical.
	for _, term := range []string{"alpha", "kappa", "omicron"} {
		dres := d.Search([]string{term}, 1000)
		it := static.Postings(term)
		want := 0
		if it != nil {
			want = it.Count()
		}
		if len(dres) != want {
			t.Fatalf("term %q: dynamic found %d docs, static has %d postings", term, len(dres), want)
		}
	}
}

func TestDynamicFlushAndMergeKeepSegmentsLogarithmic(t *testing.T) {
	docs := dynDocs(500)
	d := NewDynamic(DefaultOptions(), 16, 3)
	for _, doc := range docs {
		if err := d.Add(doc.Ext, doc.Terms); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Maintenance()
	if st.Flushes == 0 || st.Merges == 0 {
		t.Fatalf("no maintenance activity: %+v", st)
	}
	// Geometric invariant: segment count stays logarithmic (here: small).
	if d.Segments() > 8 {
		t.Fatalf("%d segments for 500 docs with radix 3; cascade not merging", d.Segments())
	}
}

func TestDynamicDelete(t *testing.T) {
	d := NewDynamic(DefaultOptions(), 4, 3)
	for i := 0; i < 20; i++ {
		if err := d.Add(i, []string{"zz", fmt.Sprintf("unique%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := len(d.Search([]string{"zz"}, 100))
	if before != 20 {
		t.Fatalf("found %d docs before delete", before)
	}
	d.Delete(5)  // in a segment by now
	d.Delete(19) // most recent: likely in buffer
	after := d.Search([]string{"zz"}, 100)
	if len(after) != 18 {
		t.Fatalf("found %d docs after deleting 2", len(after))
	}
	for _, r := range after {
		if r.Doc == 5 || r.Doc == 19 {
			t.Fatalf("deleted doc %d still returned", r.Doc)
		}
	}
	if d.NumDocs() != 18 {
		t.Fatalf("NumDocs = %d, want 18", d.NumDocs())
	}
}

func TestDynamicTombstonesCompactedOnMerge(t *testing.T) {
	d := NewDynamic(DefaultOptions(), 4, 2)
	for i := 0; i < 8; i++ {
		if err := d.Add(i, []string{"w"}); err != nil {
			t.Fatal(err)
		}
	}
	d.Delete(1)
	// Force enough flush/merge traffic to compact the tombstone away.
	for i := 8; i < 40; i++ {
		if err := d.Add(i, []string{"w"}); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	if got := len(d.Search([]string{"w"}, 100)); got != 39 {
		t.Fatalf("found %d docs, want 39", got)
	}
}

func TestDynamicDuplicateRejected(t *testing.T) {
	d := NewDynamic(DefaultOptions(), 4, 3)
	if err := d.Add(1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(1, []string{"b"}); err == nil {
		t.Fatal("duplicate in buffer accepted")
	}
	d.Flush()
	if err := d.Add(1, []string{"b"}); err == nil {
		t.Fatal("duplicate in segment accepted")
	}
	d.Delete(1)
	if err := d.Add(1, []string{"b"}); err == nil {
		t.Fatal("re-add of tombstoned segment-resident doc accepted")
	}
}

func TestDynamicConcurrentReadersAndWriter(t *testing.T) {
	d := NewDynamic(DefaultOptions(), 8, 3)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One writer streaming documents.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			if err := d.Add(i, []string{"shared", fmt.Sprintf("t%d", i%50)}); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	// Several readers querying concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rs := d.Search([]string{"shared"}, 10)
				for i := 1; i < len(rs); i++ {
					if rs[i-1].Score < rs[i].Score {
						t.Error("unsorted results under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := d.NumDocs(); got != 400 {
		t.Fatalf("NumDocs = %d after concurrent load, want 400", got)
	}
	if got := len(d.Search([]string{"shared"}, 1000)); got != 400 {
		t.Fatalf("search finds %d docs, want 400", got)
	}
}

func TestReconstructTermsExact(t *testing.T) {
	b := NewBuilder(DefaultOptions())
	orig := []string{"the", "quick", "fox", "the", "end"}
	b.AddDocument(7, orig)
	ix := MustBuild(b)
	got := reconstructTerms(ix, 0)
	if len(got) != len(orig) {
		t.Fatalf("reconstructed %d terms, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("position %d: %q, want %q", i, got[i], orig[i])
		}
	}
}

func TestDynamicEmptySearch(t *testing.T) {
	d := NewDynamic(DefaultOptions(), 4, 3)
	if rs := d.Search([]string{"x"}, 10); rs != nil {
		t.Fatalf("empty dynamic index returned %v", rs)
	}
}
