package index

import (
	"fmt"
	"sort"
)

// Merge combines partial indexes over disjoint document sets into one
// index — the "distributed merge operations" of Section 4. Documents are
// reordered by external ID so the result is independent of how documents
// were split across the parts, and postings are remapped accordingly.
// Merge returns an error if two parts contain the same external ID.
func Merge(opts Options, parts ...*Index) (*Index, error) {
	type srcDoc struct {
		ext    int
		length int
		part   int
		local  int32
	}
	var all []srcDoc
	for pi, p := range parts {
		for li, d := range p.docs {
			all = append(all, srcDoc{ext: d.ext, length: d.length, part: pi, local: int32(li)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ext < all[j].ext })
	for i := 1; i < len(all); i++ {
		if all[i].ext == all[i-1].ext {
			return nil, fmt.Errorf("index: document %d present in multiple partitions", all[i].ext)
		}
	}

	ix := &Index{
		opts:     opts,
		terms:    make(map[string]int),
		docByExt: make(map[int]int, len(all)),
	}
	// remap[part][local] = global internal ID
	remap := make([][]int32, len(parts))
	for pi, p := range parts {
		remap[pi] = make([]int32, len(p.docs))
	}
	for gi, d := range all {
		ix.docs = append(ix.docs, docEntry{ext: d.ext, length: d.length})
		ix.docByExt[d.ext] = gi
		ix.totalLen += int64(d.length)
		remap[d.part][d.local] = int32(gi)
	}

	// Union lexicon.
	termSet := make(map[string]bool)
	for _, p := range parts {
		for i := range p.termList {
			termSet[p.termList[i].term] = true
		}
	}
	terms := make([]string, 0, len(termSet))
	for t := range termSet {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	st := lengthsOf(ix.docs, ix.totalLen)
	for _, t := range terms {
		var merged []Posting
		for pi, p := range parts {
			i, ok := p.terms[t]
			if !ok {
				continue
			}
			for _, post := range p.termList[i].pl.decodeAll(p.opts) {
				post.Doc = remap[pi][post.Doc]
				if !opts.StorePositions {
					post.Pos = nil
				}
				merged = append(merged, post)
			}
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i].Doc < merged[j].Doc })
		ix.terms[t] = len(ix.termList)
		ix.termList = append(ix.termList, termEntry{term: t, pl: encodePostings(merged, opts, st)})
	}
	return ix, nil
}
