package index

import (
	"bufio"
	"container/heap"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SPIMIBuilder implements single-pass in-memory indexing with spill runs
// (Lester, Moffat & Zobel; paper §4: "single-pass algorithms are
// efficient in several scenarios where indexing of a large amount of
// data is performed with limited resources"). Postings accumulate in
// memory until a budget is exceeded, are flushed to a sorted on-disk
// run, and the runs are k-way merged into the final index.
type SPIMIBuilder struct {
	opts      Options
	memBudget int
	dir       string
	cur       map[string][]Posting
	curBytes  int
	runs      []string
	docs      []docEntry
	byExt     map[int]int
	total     int64
	spills    int
}

// runEntry is the on-disk record of one term's postings within a run.
type runEntry struct {
	Term     string
	Postings []Posting
}

// NewSPIMIBuilder creates a single-pass builder that spills to temporary
// files under dir (or the OS temp dir when dir is empty) whenever the
// in-memory posting buffer exceeds memBudget bytes (approximate).
func NewSPIMIBuilder(opts Options, memBudget int, dir string) (*SPIMIBuilder, error) {
	if memBudget <= 0 {
		memBudget = 1 << 20
	}
	tmp, err := os.MkdirTemp(dir, "spimi-")
	if err != nil {
		return nil, fmt.Errorf("index: creating spill dir: %w", err)
	}
	return &SPIMIBuilder{
		opts:      opts,
		memBudget: memBudget,
		dir:       tmp,
		cur:       make(map[string][]Posting),
		byExt:     make(map[int]int),
	}, nil
}

// AddDocument indexes one tokenized document, spilling to disk if the
// memory budget is exceeded.
func (b *SPIMIBuilder) AddDocument(ext int, terms []string) error {
	if _, dup := b.byExt[ext]; dup {
		return fmt.Errorf("index: duplicate document %d", ext)
	}
	doc := int32(len(b.docs))
	b.byExt[ext] = int(doc)
	b.docs = append(b.docs, docEntry{ext: ext, length: len(terms)})
	b.total += int64(len(terms))

	occ := make(map[string][]int32)
	for i, t := range terms {
		occ[t] = append(occ[t], int32(i))
	}
	for t, poss := range occ {
		p := Posting{Doc: doc, TF: int32(len(poss))}
		cost := 12 + len(t)
		if b.opts.StorePositions {
			p.Pos = poss
			cost += 4 * len(poss)
		}
		b.cur[t] = append(b.cur[t], p)
		b.curBytes += cost
	}
	if b.curBytes >= b.memBudget {
		return b.spill()
	}
	return nil
}

// Spills returns how many runs were written to disk so far.
func (b *SPIMIBuilder) Spills() int { return b.spills }

// NumDocs returns how many documents have been added.
func (b *SPIMIBuilder) NumDocs() int { return len(b.docs) }

// spill writes the in-memory buffer as one sorted run file.
func (b *SPIMIBuilder) spill() error {
	if len(b.cur) == 0 {
		return nil
	}
	terms := make([]string, 0, len(b.cur))
	for t := range b.cur {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	path := filepath.Join(b.dir, fmt.Sprintf("run-%04d.gob", b.spills))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: creating run file: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := gob.NewEncoder(w)
	for _, t := range terms {
		if err := enc.Encode(runEntry{Term: t, Postings: b.cur[t]}); err != nil {
			f.Close()
			return fmt.Errorf("index: writing run: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("index: flushing run: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("index: closing run: %w", err)
	}
	b.runs = append(b.runs, path)
	b.spills++
	b.cur = make(map[string][]Posting)
	b.curBytes = 0
	return nil
}

// runReader streams runEntries from one spill file.
type runReader struct {
	f    *os.File
	dec  *gob.Decoder
	cur  runEntry
	done bool
	seq  int // run ordinal; later runs hold later documents
}

func (r *runReader) next() error {
	var e runEntry
	if err := r.dec.Decode(&e); err != nil {
		if err == io.EOF {
			r.done = true
			return nil
		}
		return err
	}
	r.cur = e
	return nil
}

// readerHeap orders run readers by (current term, run ordinal); the run
// ordinal tiebreak keeps postings in document order because documents
// only ever move forward across spills.
type readerHeap []*runReader

func (h readerHeap) Len() int { return len(h) }
func (h readerHeap) Less(i, j int) bool {
	if h[i].cur.Term != h[j].cur.Term {
		return h[i].cur.Term < h[j].cur.Term
	}
	return h[i].seq < h[j].seq
}
func (h readerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readerHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *readerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Build spills any remaining buffer, k-way merges the runs, deletes the
// spill directory, and returns the final index.
func (b *SPIMIBuilder) Build() (*Index, error) {
	if err := b.spill(); err != nil {
		return nil, err
	}
	defer os.RemoveAll(b.dir)

	ix := &Index{
		opts:     b.opts,
		terms:    make(map[string]int),
		docs:     b.docs,
		docByExt: b.byExt,
		totalLen: b.total,
	}

	var h readerHeap
	for seq, path := range b.runs {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("index: opening run: %w", err)
		}
		defer f.Close()
		r := &runReader{f: f, dec: gob.NewDecoder(bufio.NewReader(f)), seq: seq}
		if err := r.next(); err != nil {
			return nil, fmt.Errorf("index: reading run: %w", err)
		}
		if !r.done {
			h = append(h, r)
		}
	}
	heap.Init(&h)

	st := lengthsOf(b.docs, b.total)
	var curTerm string
	var curPostings []Posting
	flushTerm := func() {
		if curTerm == "" && len(curPostings) == 0 {
			return
		}
		ix.terms[curTerm] = len(ix.termList)
		ix.termList = append(ix.termList, termEntry{term: curTerm, pl: encodePostings(curPostings, b.opts, st)})
		curPostings = nil
	}
	first := true
	for h.Len() > 0 {
		r := h[0]
		if first || r.cur.Term != curTerm {
			if !first {
				flushTerm()
			}
			curTerm = r.cur.Term
			first = false
		}
		curPostings = append(curPostings, r.cur.Postings...)
		if err := r.next(); err != nil {
			return nil, fmt.Errorf("index: reading run: %w", err)
		}
		if r.done {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	if !first {
		flushTerm()
	}
	return ix, nil
}
