// Package index implements the distributed indexing module of Section 4:
// an inverted index (lexicon + posting lists) with positional postings,
// block-compressed posting lists with block-max metadata for dynamic
// pruning, plus the index construction strategies the paper surveys —
// sort-based (Witten et al.), single-pass with spill runs (Lester et
// al.), map-reduce (Dean & Ghemawat), and pipelined (Melink et al.) —
// and index merging with document-ID remapping.
package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Posting is one term occurrence record: the internal document ordinal,
// the term frequency, and optionally the positions of the occurrences.
type Posting struct {
	Doc int32
	TF  int32
	Pos []int32 // nil unless positions are stored
}

// Default BM25 parameters. The per-block quantized max-score metadata is
// computed against these at encode time; rank.NewScorer uses the same
// constants so the quantized fast path engages for default scorers.
const (
	DefaultBM25K1 = 1.2
	DefaultBM25B  = 0.75
)

// defaultBlockSize is the posting count per skip-aligned block when
// Options.BlockSize is zero.
const defaultBlockSize = 128

// Options configures index layout.
type Options struct {
	StorePositions bool // keep within-document positions (phrase/proximity search)
	Compress       bool // group-varint/varint encode postings (false = fixed 32-bit, for ablation)
	BlockSize      int  // postings per skip-aligned block; 0 = 128
}

// DefaultOptions returns the production layout: compressed, positional,
// 128 postings per block.
func DefaultOptions() Options {
	return Options{StorePositions: true, Compress: true, BlockSize: defaultBlockSize}
}

func (o Options) blockSize() int {
	if o.BlockSize > 0 {
		return o.BlockSize
	}
	return defaultBlockSize
}

// blockMeta is the per-block skip-and-prune record: enough to jump over
// the block without decoding it (lastDoc, offset) and to bound every
// score inside it (maxTF, minLen, maxQ). A block's first gap is encoded
// relative to the previous block's lastDoc, so any block can be decoded
// independently given the metadata of its predecessor.
type blockMeta struct {
	lastDoc int32  // last document ordinal in the block
	maxTF   int32  // maximum term frequency in the block
	minLen  int32  // minimum document length among the block's docs (0 = unknown)
	maxQ    uint8  // round-up quantized default-ranker saturation bound
	offset  uint32 // byte offset of the block's first section in data
}

// BlockMetaBytes is the budgeted in-memory weight of one blockMeta entry
// (fields plus struct padding). The posting-list cache charges this per
// block on top of the encoded data bytes.
const BlockMetaBytes = 24

// postingList is one term's block-encoded postings plus block metadata.
type postingList struct {
	count    int
	cf       int64 // collection frequency: total TF over all docs
	data     []byte
	blocks   []blockMeta
	satScale float64 // dequantization scale: sat = maxQ * satScale / 255
	quantAvg float64 // average document length the quantized bounds assume
	// List-wide aggregates of the block metadata (max over maxTF, min
	// over minLen), kept resident and persisted so a broker can bound a
	// whole partition's score for a term without opening the list.
	maxTF  int32
	minLen int32
}

// memBytes is the resident size the posting-list cache budgets against:
// actual encoded bytes plus block-metadata overhead.
func (pl *postingList) memBytes() int64 {
	return int64(len(pl.data)) + int64(len(pl.blocks))*BlockMetaBytes
}

// encodeStats supplies the document statistics encodePostings bakes into
// block metadata. The zero value means "lengths unknown": minLen is
// recorded as 0, which makes every bound fall back to the BM25 norm
// floor (1-b) — looser pruning, never unsafe.
type encodeStats struct {
	docLen func(doc int32) int32
	avgLen float64
}

// lengthsOf builds encodeStats from a completed document table.
func lengthsOf(docs []docEntry, total int64) encodeStats {
	avg := 0.0
	if len(docs) > 0 {
		avg = float64(total) / float64(len(docs))
	}
	return encodeStats{
		docLen: func(d int32) int32 { return int32(docs[d].length) },
		avgLen: avg,
	}
}

// bm25Sat is the document-length-aware saturation bound of the default
// ranker: an upper bound on tf*(k1+1)/(tf+k1*norm(dl)) over every
// posting in a block with term frequency <= maxTF and document length
// >= minLen. It mirrors rank.Scorer.Term exactly (including the
// max(avg,1) guard) so the quantized and analytic paths agree.
func bm25Sat(maxTF, minLen int32, avg float64) float64 {
	norm := 1 - DefaultBM25B + DefaultBM25B*float64(minLen)/math.Max(avg, 1)
	tf := float64(maxTF)
	return tf * (DefaultBM25K1 + 1) / (tf + DefaultBM25K1*norm)
}

// encodePostings serializes postings (which must be sorted by Doc,
// strictly increasing) into skip-aligned blocks according to opts.
// Within a block (compressed layout) doc-gaps are group-varint encoded,
// term frequencies are varint encoded, and positions (when stored) are
// delta-varint encoded in a trailing section the iterator can skip
// wholesale. st supplies document lengths for the block-max metadata.
func encodePostings(ps []Posting, opts Options, st encodeStats) postingList {
	var pl postingList
	pl.count = len(ps)
	pl.quantAvg = st.avgLen
	if len(ps) == 0 {
		return pl
	}
	bs := opts.blockSize()
	var prevDoc int32
	gaps := make([]uint32, 0, bs)
	for start := 0; start < len(ps); start += bs {
		end := start + bs
		if end > len(ps) {
			end = len(ps)
		}
		block := ps[start:end]
		meta := blockMeta{offset: uint32(len(pl.data)), minLen: math.MaxInt32}
		// Doc section.
		gaps = gaps[:0]
		for i, p := range block {
			if (start > 0 || i > 0) && p.Doc <= prevDoc {
				panic(fmt.Sprintf("index: postings not strictly increasing: %d after %d", p.Doc, prevDoc))
			}
			gaps = append(gaps, uint32(p.Doc-prevDoc))
			prevDoc = p.Doc
			if p.TF > meta.maxTF {
				meta.maxTF = p.TF
			}
			if st.docLen != nil {
				if l := st.docLen(p.Doc); l < meta.minLen {
					meta.minLen = l
				}
			}
			pl.cf += int64(p.TF)
		}
		if st.docLen == nil {
			meta.minLen = 0
		}
		meta.lastDoc = prevDoc
		if opts.Compress {
			pl.data = appendGroupVarint(pl.data, gaps)
		} else {
			for _, p := range block {
				pl.data = appendFixed32(pl.data, uint32(p.Doc))
			}
		}
		// TF section.
		for _, p := range block {
			if opts.Compress {
				pl.data = appendUvarint(pl.data, uint64(p.TF))
			} else {
				pl.data = appendFixed32(pl.data, uint32(p.TF))
			}
		}
		// Positions section.
		if opts.StorePositions {
			for _, p := range block {
				if opts.Compress {
					pl.data = appendUvarint(pl.data, uint64(len(p.Pos)))
					var prevPos int32
					for _, pos := range p.Pos {
						pl.data = appendUvarint(pl.data, uint64(pos-prevPos))
						prevPos = pos
					}
				} else {
					pl.data = appendFixed32(pl.data, uint32(len(p.Pos)))
					for _, pos := range p.Pos {
						pl.data = appendFixed32(pl.data, uint32(pos))
					}
				}
			}
		}
		pl.blocks = append(pl.blocks, meta)
	}
	// Quantize per-block max scores (round-up, so dequantized values stay
	// upper bounds) against the list's largest saturation value, and fold
	// the block metadata into the list-wide score-bound aggregates.
	pl.minLen = math.MaxInt32
	for i := range pl.blocks {
		if s := bm25Sat(pl.blocks[i].maxTF, pl.blocks[i].minLen, pl.quantAvg); s > pl.satScale {
			pl.satScale = s
		}
		if pl.blocks[i].maxTF > pl.maxTF {
			pl.maxTF = pl.blocks[i].maxTF
		}
		if pl.blocks[i].minLen < pl.minLen {
			pl.minLen = pl.blocks[i].minLen
		}
	}
	if pl.satScale > 0 {
		for i := range pl.blocks {
			m := &pl.blocks[i]
			q := math.Ceil(bm25Sat(m.maxTF, m.minLen, pl.quantAvg) / pl.satScale * 255)
			if q > 255 {
				q = 255
			}
			m.maxQ = uint8(q)
		}
	}
	return pl
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendFixed32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

// appendGroupVarint appends gap values in groups of four sharing one tag
// byte (two bits per value = encoded byte count minus one), followed by
// the values' little-endian bytes; a tail of fewer than four gaps is
// encoded as plain uvarints.
func appendGroupVarint(dst []byte, vals []uint32) []byte {
	i := 0
	for ; i+4 <= len(vals); i += 4 {
		tagPos := len(dst)
		dst = append(dst, 0)
		var tag byte
		for j := 0; j < 4; j++ {
			v := vals[i+j]
			n := byteLen32(v)
			tag |= byte(n-1) << (2 * j)
			for k := 0; k < n; k++ {
				dst = append(dst, byte(v))
				v >>= 8
			}
		}
		dst[tagPos] = tag
	}
	for ; i < len(vals); i++ {
		dst = appendUvarint(dst, uint64(vals[i]))
	}
	return dst
}

func byteLen32(v uint32) int {
	switch {
	case v < 1<<8:
		return 1
	case v < 1<<16:
		return 2
	case v < 1<<24:
		return 3
	default:
		return 4
	}
}

// decodeGroupVarint decodes n values written by appendGroupVarint from
// data starting at pos into out[:n], returning the next byte position.
func decodeGroupVarint(data []byte, pos, n int, out []uint32) int {
	i := 0
	for ; i+4 <= n; i += 4 {
		tag := data[pos]
		pos++
		for j := 0; j < 4; j++ {
			l := int(tag>>(2*j))&3 + 1
			var v uint32
			for k := 0; k < l; k++ {
				v |= uint32(data[pos]) << (8 * k)
				pos++
			}
			out[i+j] = v
		}
	}
	for ; i < n; i++ {
		v, w := binary.Uvarint(data[pos:])
		pos += w
		out[i] = uint32(v)
	}
	return pos
}

// Iterator walks a posting list in document order, decoding one block at
// a time. Use Next to advance one posting and SkipTo to jump forward via
// the block metadata; blocks the cursor jumps over are never decoded.
// The block accessors (NumBlocks, BlockLastDoc, BlockMaxTF, ...) expose
// the metadata dynamic-pruning evaluators skip non-competitive blocks
// with.
type Iterator struct {
	pl      *postingList
	opts    Options
	withPos bool
	bs      int // postings per block
	bi      int // index of the decoded block; -1 before any decode
	n       int // postings in the decoded block
	j       int // next undelivered posting within the block
	docs    []int32
	tfs     []int32
	gaps    []uint32 // group-varint decode scratch
	posOff  int      // byte cursor into the positions section
	posIdx  int      // posting ordinal within the block whose positions begin at posOff
	bytes   int64    // encoded bytes decoded so far
	cur     Posting
	valid   bool
}

// reset re-initializes *it over pl, preserving its decode buffers so
// pooled iterators stay allocation-free across queries.
func (it *Iterator) reset(pl *postingList, opts Options, withPos bool) {
	docs, tfs, gaps := it.docs, it.tfs, it.gaps
	*it = Iterator{
		pl: pl, opts: opts, withPos: withPos && opts.StorePositions,
		bs: opts.blockSize(), bi: -1,
		docs: docs, tfs: tfs, gaps: gaps,
	}
}

// newIterator starts an iterator over pl.
func newIterator(pl *postingList, opts Options, withPos bool) *Iterator {
	it := &Iterator{}
	it.reset(pl, opts, withPos)
	return it
}

// decodeBlock materializes block b's doc and TF arrays into the
// iterator's scratch buffers. The positions section is located but not
// decoded; positions() walks it lazily per posting.
func (it *Iterator) decodeBlock(b int) {
	pl := it.pl
	m := &pl.blocks[b]
	start := b * it.bs
	n := it.bs
	if start+n > pl.count {
		n = pl.count - start
	}
	if cap(it.docs) < n {
		it.docs = make([]int32, n)
		it.tfs = make([]int32, n)
		it.gaps = make([]uint32, n)
	}
	docs, tfs := it.docs[:n], it.tfs[:n]
	pos := int(m.offset)
	var base int32
	if b > 0 {
		base = pl.blocks[b-1].lastDoc
	}
	if it.opts.Compress {
		gaps := it.gaps[:n]
		pos = decodeGroupVarint(pl.data, pos, n, gaps)
		d := base
		for i, g := range gaps {
			d += int32(g)
			docs[i] = d
		}
		for i := range tfs {
			v, w := binary.Uvarint(pl.data[pos:])
			pos += w
			tfs[i] = int32(v)
		}
	} else {
		for i := range docs {
			docs[i] = int32(binary.LittleEndian.Uint32(pl.data[pos:]))
			pos += 4
		}
		for i := range tfs {
			tfs[i] = int32(binary.LittleEndian.Uint32(pl.data[pos:]))
			pos += 4
		}
	}
	it.bi, it.n, it.j = b, n, 0
	it.posOff, it.posIdx = pos, 0
	// Charge the bytes this decode actually touched: doc+TF sections, plus
	// the positions section only when positions are materialized.
	if it.withPos {
		end := len(pl.data)
		if b+1 < len(pl.blocks) {
			end = int(pl.blocks[b+1].offset)
		}
		it.bytes += int64(end - int(m.offset))
	} else {
		it.bytes += int64(pos - int(m.offset))
	}
}

// serve delivers posting j of the decoded block as the current posting.
func (it *Iterator) serve() {
	var poss []int32
	if it.withPos {
		poss = it.positions(it.j)
	}
	it.cur = Posting{Doc: it.docs[it.j], TF: it.tfs[it.j], Pos: poss}
	it.j++
	it.valid = true
}

// positions decodes posting j's positions, walking the block's positions
// section forward from the last decoded posting (j never decreases
// within a block).
func (it *Iterator) positions(j int) []int32 {
	data := it.pl.data
	if it.opts.Compress {
		for it.posIdx < j {
			np, w := binary.Uvarint(data[it.posOff:])
			it.posOff += w
			for k := uint64(0); k < np; k++ {
				_, w := binary.Uvarint(data[it.posOff:])
				it.posOff += w
			}
			it.posIdx++
		}
		np, w := binary.Uvarint(data[it.posOff:])
		it.posOff += w
		out := make([]int32, np)
		var prev int32
		for k := range out {
			d, w := binary.Uvarint(data[it.posOff:])
			it.posOff += w
			prev += int32(d)
			out[k] = prev
		}
		it.posIdx = j + 1
		return out
	}
	for it.posIdx < j {
		np := int(binary.LittleEndian.Uint32(data[it.posOff:]))
		it.posOff += 4 + 4*np
		it.posIdx++
	}
	np := int(binary.LittleEndian.Uint32(data[it.posOff:]))
	it.posOff += 4
	out := make([]int32, np)
	for k := range out {
		out[k] = int32(binary.LittleEndian.Uint32(data[it.posOff:]))
		it.posOff += 4
	}
	it.posIdx = j + 1
	return out
}

// Next advances to the next posting; it returns false at the end.
func (it *Iterator) Next() bool {
	if it.j >= it.n {
		b := it.bi + 1
		if b >= len(it.pl.blocks) {
			it.valid = false
			return false
		}
		it.decodeBlock(b)
	}
	it.serve()
	return true
}

// Posting returns the current posting. Valid only after Next or SkipTo
// returned true.
func (it *Iterator) Posting() Posting { return it.cur }

// Count returns the total number of postings in the underlying list.
func (it *Iterator) Count() int { return it.pl.count }

// SkipTo advances to the first posting with Doc >= target, using the
// block metadata to jump over (and never decode) non-containing blocks.
// It returns false if no such posting exists.
func (it *Iterator) SkipTo(target int32) bool {
	if it.valid && it.cur.Doc >= target {
		return true
	}
	blocks := it.pl.blocks
	// Within the already-decoded block?
	if it.bi >= 0 && it.bi < len(blocks) && target <= blocks[it.bi].lastDoc && it.j < it.n {
		rest := it.docs[it.j:it.n]
		k := sort.Search(len(rest), func(i int) bool { return rest[i] >= target })
		if k < len(rest) {
			it.j += k
			it.serve()
			return true
		}
	}
	// Find the first not-yet-visited block whose lastDoc reaches target.
	lo := it.bi + 1
	if lo > len(blocks) {
		lo = len(blocks)
	}
	tail := blocks[lo:]
	b := sort.Search(len(tail), func(i int) bool { return tail[i].lastDoc >= target })
	if b == len(tail) {
		it.bi, it.n, it.j = len(blocks), 0, 0
		it.valid = false
		return false
	}
	it.decodeBlock(lo + b)
	docs := it.docs[:it.n]
	k := sort.Search(len(docs), func(i int) bool { return docs[i] >= target })
	it.j = k // k < n: the block's lastDoc >= target
	it.serve()
	return true
}

// BytesDecoded returns the encoded bytes this iterator has decoded so
// far — the per-query cost unit dynamic pruning exists to reduce.
func (it *Iterator) BytesDecoded() int64 { return it.bytes }

// NumBlocks returns the number of skip-aligned blocks in the list.
func (it *Iterator) NumBlocks() int { return len(it.pl.blocks) }

// CurrentBlock returns the index of the block holding the current
// posting. Valid only after Next or SkipTo returned true.
func (it *Iterator) CurrentBlock() int { return it.bi }

// BlockLastDoc returns the last document ordinal of block b — readable
// without decoding the block.
func (it *Iterator) BlockLastDoc(b int) int32 { return it.pl.blocks[b].lastDoc }

// BlockMaxTF returns the maximum term frequency within block b.
func (it *Iterator) BlockMaxTF(b int) int32 { return it.pl.blocks[b].maxTF }

// BlockMinDocLen returns the minimum document length among block b's
// documents (0 when lengths were unknown at encode time).
func (it *Iterator) BlockMinDocLen(b int) int32 { return it.pl.blocks[b].minLen }

// BlockMaxSat returns the dequantized per-block max-score saturation
// bound for the default ranker: an upper bound (quantization rounds up)
// on tf*(k1+1)/(tf+k1*norm) over the block's postings, valid when
// QuantValidFor holds for the evaluating scorer. Multiply by the term's
// IDF to bound any score in the block.
func (it *Iterator) BlockMaxSat(b int) float64 {
	return float64(it.pl.blocks[b].maxQ) * it.pl.satScale / 255
}

// QuantValidFor reports whether the quantized block bounds are upper
// bounds under a scorer with the given BM25 parameters and average
// document length. When false (non-default parameters, or statistics
// differing from the ones baked in at encode time), evaluators must
// bound blocks analytically from BlockMaxTF/BlockMinDocLen instead.
func (it *Iterator) QuantValidFor(k1, b, avg float64) bool {
	return k1 == DefaultBM25K1 && b == DefaultBM25B &&
		avg == it.pl.quantAvg && it.pl.satScale > 0
}

// decodeAll materializes a posting list; used by merging.
func (pl *postingList) decodeAll(opts Options) []Posting {
	out := make([]Posting, 0, pl.count)
	it := newIterator(pl, opts, true)
	for it.Next() {
		out = append(out, it.Posting())
	}
	return out
}
