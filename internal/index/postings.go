// Package index implements the distributed indexing module of Section 4:
// an inverted index (lexicon + posting lists) with positional postings,
// delta/varint compression and skip pointers, plus the index construction
// strategies the paper surveys — sort-based (Witten et al.), single-pass
// with spill runs (Lester et al.), map-reduce (Dean & Ghemawat), and
// pipelined (Melink et al.) — and index merging with document-ID
// remapping.
package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Posting is one term occurrence record: the internal document ordinal,
// the term frequency, and optionally the positions of the occurrences.
type Posting struct {
	Doc int32
	TF  int32
	Pos []int32 // nil unless positions are stored
}

// Options configures index layout.
type Options struct {
	StorePositions bool // keep within-document positions (phrase/proximity search)
	Compress       bool // delta+varint encode postings (false = fixed 32-bit, for ablation)
	SkipInterval   int  // emit a skip pointer every N postings; 0 disables skips
}

// DefaultOptions returns the production layout: compressed, positional,
// skip pointer every 64 postings.
func DefaultOptions() Options {
	return Options{StorePositions: true, Compress: true, SkipInterval: 64}
}

// skipEntry lets SkipTo jump over blocks of encoded postings.
type skipEntry struct {
	doc    int32 // last doc ID covered before this offset
	offset int   // byte offset of the next posting
	index  int   // posting ordinal at offset
}

// postingList is one term's encoded postings plus skip table.
type postingList struct {
	count int
	data  []byte
	skips []skipEntry
	cf    int64 // collection frequency: total TF over all docs
}

// encodePostings serializes postings (which must be sorted by Doc,
// strictly increasing) according to opts.
func encodePostings(ps []Posting, opts Options) postingList {
	var pl postingList
	pl.count = len(ps)
	var prevDoc int32
	for i, p := range ps {
		if i > 0 && p.Doc <= prevDoc {
			panic(fmt.Sprintf("index: postings not strictly increasing: %d after %d", p.Doc, prevDoc))
		}
		if opts.SkipInterval > 0 && i > 0 && i%opts.SkipInterval == 0 {
			pl.skips = append(pl.skips, skipEntry{doc: prevDoc, offset: len(pl.data), index: i})
		}
		if opts.Compress {
			pl.data = appendUvarint(pl.data, uint64(p.Doc-prevDoc))
			pl.data = appendUvarint(pl.data, uint64(p.TF))
			if opts.StorePositions {
				pl.data = appendUvarint(pl.data, uint64(len(p.Pos)))
				var prevPos int32
				for _, pos := range p.Pos {
					pl.data = appendUvarint(pl.data, uint64(pos-prevPos))
					prevPos = pos
				}
			}
		} else {
			pl.data = appendFixed32(pl.data, uint32(p.Doc))
			pl.data = appendFixed32(pl.data, uint32(p.TF))
			if opts.StorePositions {
				pl.data = appendFixed32(pl.data, uint32(len(p.Pos)))
				for _, pos := range p.Pos {
					pl.data = appendFixed32(pl.data, uint32(pos))
				}
			}
		}
		pl.cf += int64(p.TF)
		prevDoc = p.Doc
	}
	return pl
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendFixed32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

// Iterator walks a posting list in document order. Use Next to advance
// one posting and SkipTo to jump forward using the skip table.
type Iterator struct {
	pl      *postingList
	opts    Options
	pos     int // byte position in data
	i       int // posting ordinal about to be decoded
	prevDoc int32
	cur     Posting
	valid   bool
	// withPos controls whether decoded positions are materialized.
	withPos bool
	// decoded, when non-nil, switches the iterator to decoded mode: it
	// walks this pre-materialized slice (a posting-cache hit) instead of
	// decoding pl.data, and SkipTo binary-searches the slice directly.
	decoded []Posting
}

// resetDecoded re-initializes *it over a pre-decoded posting slice
// (sorted by Doc). The iterator never mutates the slice, so one cached
// decode can back any number of concurrent iterators.
func resetDecoded(it *Iterator, ps []Posting) *Iterator {
	*it = Iterator{decoded: ps}
	return it
}

// newIterator starts an iterator over pl.
func newIterator(pl *postingList, opts Options, withPos bool) *Iterator {
	return &Iterator{pl: pl, opts: opts, withPos: withPos && opts.StorePositions}
}

// Next advances to the next posting; it returns false at the end.
func (it *Iterator) Next() bool {
	if it.decoded != nil {
		if it.i >= len(it.decoded) {
			it.valid = false
			return false
		}
		it.cur = it.decoded[it.i]
		it.i++
		it.valid = true
		return true
	}
	if it.i >= it.pl.count {
		it.valid = false
		return false
	}
	it.decodeOne()
	return true
}

// Posting returns the current posting. Valid only after Next or SkipTo
// returned true.
func (it *Iterator) Posting() Posting { return it.cur }

// Count returns the total number of postings in the underlying list.
func (it *Iterator) Count() int {
	if it.decoded != nil {
		return len(it.decoded)
	}
	return it.pl.count
}

// SkipTo advances to the first posting with Doc >= target, using skip
// pointers to avoid decoding intervening postings. It returns false if
// no such posting exists.
func (it *Iterator) SkipTo(target int32) bool {
	if it.valid && it.cur.Doc >= target {
		return true
	}
	if it.decoded != nil {
		rest := it.decoded[it.i:]
		j := sort.Search(len(rest), func(k int) bool { return rest[k].Doc >= target })
		if j == len(rest) {
			it.i = len(it.decoded)
			it.valid = false
			return false
		}
		it.cur = rest[j]
		it.i += j + 1
		it.valid = true
		return true
	}
	// Jump via the skip table: the entries' doc fields are strictly
	// increasing, so binary-search for the last entry with doc < target
	// (O(log S) instead of a linear scan from the end). If that entry is
	// not ahead of the current decode position, no earlier one is either
	// — entry indexes increase with doc — and we decode forward from
	// where we are.
	if skips := it.pl.skips; len(skips) > 0 {
		s := sort.Search(len(skips), func(i int) bool { return skips[i].doc >= target }) - 1
		if s >= 0 && skips[s].index > it.i {
			e := skips[s]
			it.pos = e.offset
			it.i = e.index
			it.prevDoc = e.doc
		}
	}
	for it.Next() {
		if it.cur.Doc >= target {
			return true
		}
	}
	return false
}

func (it *Iterator) decodeOne() {
	data := it.pl.data
	if it.opts.Compress {
		delta, n := binary.Uvarint(data[it.pos:])
		it.pos += n
		doc := it.prevDoc + int32(delta)
		tf, n := binary.Uvarint(data[it.pos:])
		it.pos += n
		var poss []int32
		if it.opts.StorePositions {
			np, n := binary.Uvarint(data[it.pos:])
			it.pos += n
			if it.withPos {
				poss = make([]int32, np)
			}
			var prev int32
			for k := uint64(0); k < np; k++ {
				d, n := binary.Uvarint(data[it.pos:])
				it.pos += n
				prev += int32(d)
				if it.withPos {
					poss[k] = prev
				}
			}
		}
		it.cur = Posting{Doc: doc, TF: int32(tf), Pos: poss}
		it.prevDoc = doc
	} else {
		doc := int32(binary.LittleEndian.Uint32(data[it.pos:]))
		it.pos += 4
		tf := int32(binary.LittleEndian.Uint32(data[it.pos:]))
		it.pos += 4
		var poss []int32
		if it.opts.StorePositions {
			np := int(binary.LittleEndian.Uint32(data[it.pos:]))
			it.pos += 4
			if it.withPos {
				poss = make([]int32, np)
				for k := 0; k < np; k++ {
					poss[k] = int32(binary.LittleEndian.Uint32(data[it.pos:]))
					it.pos += 4
				}
			} else {
				it.pos += 4 * np
			}
		}
		it.cur = Posting{Doc: doc, TF: tf, Pos: poss}
		it.prevDoc = doc
	}
	it.i++
	it.valid = true
}

// decodeAll materializes a posting list; used by merging.
func (pl *postingList) decodeAll(opts Options) []Posting {
	out := make([]Posting, 0, pl.count)
	it := newIterator(pl, opts, true)
	for it.Next() {
		out = append(out, it.Posting())
	}
	return out
}
