package index

import (
	"fmt"
	"sort"

	"dwr/internal/conc"
)

// Builder is the uniform index-construction surface: every strategy in
// the package — the in-memory reference inverter (MemBuilder), the
// sort-based builder (SortBuilder), single-pass spill-run indexing
// (SPIMIBuilder), the streaming segment pipeline (SegmentWriter), and
// the online-maintained index's flush path (Dynamic) — feeds tokenized
// documents in and hands one immutable Index back. Callers that only
// construct (cmd/*, examples, fixtures) program against this interface
// and swap strategies without touching the call sites.
type Builder interface {
	// AddDocument indexes one tokenized document under external ID ext.
	// Duplicate IDs are rejected with an error: the indexing pipeline
	// deduplicates upstream, so a duplicate here is a bug.
	AddDocument(ext int, terms []string) error
	// NumDocs returns how many documents have been added so far.
	NumDocs() int
	// Build finalizes construction and returns the immutable index.
	Build() (*Index, error)
}

// Interface conformance, checked at compile time.
var (
	_ Builder = (*MemBuilder)(nil)
	_ Builder = (*SortBuilder)(nil)
	_ Builder = (*SPIMIBuilder)(nil)
	_ Builder = (*SegmentWriter)(nil)
	_ Builder = (*Dynamic)(nil)
)

// MustBuild drives b to completion and panics on error — the
// construction helper for fixtures, examples, and tests, where a build
// error is a bug in the caller rather than a runtime condition.
func MustBuild(b Builder) *Index {
	ix, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("index: build failed: %v", err))
	}
	return ix
}

// MemBuilder constructs an Index incrementally in memory: the vanilla
// inverter that keeps a growing posting buffer per term. It is the
// reference implementation the other construction strategies are checked
// against.
type MemBuilder struct {
	opts    Options
	posting map[string][]Posting
	docs    []docEntry
	byExt   map[int]int
	total   int64
}

// NewBuilder creates an in-memory builder with the given layout options.
func NewBuilder(opts Options) *MemBuilder {
	return &MemBuilder{
		opts:    opts,
		posting: make(map[string][]Posting),
		byExt:   make(map[int]int),
	}
}

// AddDocument indexes one tokenized document under external ID ext,
// rejecting duplicate IDs.
func (b *MemBuilder) AddDocument(ext int, terms []string) error {
	if _, dup := b.byExt[ext]; dup {
		return fmt.Errorf("index: duplicate document %d", ext)
	}
	doc := int32(len(b.docs))
	b.byExt[ext] = int(doc)
	b.docs = append(b.docs, docEntry{ext: ext, length: len(terms)})
	b.total += int64(len(terms))

	// Group positions per term for this document.
	occ := make(map[string][]int32)
	for i, t := range terms {
		occ[t] = append(occ[t], int32(i))
	}
	for t, poss := range occ {
		p := Posting{Doc: doc, TF: int32(len(poss))}
		if b.opts.StorePositions {
			p.Pos = poss
		}
		b.posting[t] = append(b.posting[t], p)
	}
	return nil
}

// AddDocumentFiltered indexes only the terms of the document for which
// keep returns true, while recording the document's full length and the
// original token positions. Term-partitioned servers use this to hold
// complete postings for their term range with correct BM25 length
// normalization.
func (b *MemBuilder) AddDocumentFiltered(ext int, terms []string, keep func(string) bool) error {
	if _, dup := b.byExt[ext]; dup {
		return fmt.Errorf("index: duplicate document %d", ext)
	}
	doc := int32(len(b.docs))
	b.byExt[ext] = int(doc)
	b.docs = append(b.docs, docEntry{ext: ext, length: len(terms)})
	b.total += int64(len(terms))

	occ := make(map[string][]int32)
	for i, t := range terms {
		if keep(t) {
			occ[t] = append(occ[t], int32(i))
		}
	}
	for t, poss := range occ {
		p := Posting{Doc: doc, TF: int32(len(poss))}
		if b.opts.StorePositions {
			p.Pos = poss
		}
		b.posting[t] = append(b.posting[t], p)
	}
	return nil
}

// NumDocs returns how many documents have been added.
func (b *MemBuilder) NumDocs() int { return len(b.docs) }

// Build freezes the builder into an immutable Index. The builder must
// not be used afterwards. The error is always nil (pure in-memory
// construction cannot fail); it exists to satisfy Builder.
func (b *MemBuilder) Build() (*Index, error) {
	return b.BuildParallel(1), nil
}

// BuildParallel is Build with the per-term posting-list encoding fanned
// out over up to workers goroutines (0 = GOMAXPROCS). Each worker owns
// a disjoint set of lexicon slots, so the resulting index is identical
// to Build's at any worker count.
func (b *MemBuilder) BuildParallel(workers int) *Index {
	ix := &Index{
		opts:     b.opts,
		terms:    make(map[string]int, len(b.posting)),
		docs:     b.docs,
		docByExt: b.byExt,
		totalLen: b.total,
	}
	terms := make([]string, 0, len(b.posting))
	for t := range b.posting {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	ix.termList = make([]termEntry, len(terms))
	for i, t := range terms {
		ix.terms[t] = i
	}
	st := lengthsOf(b.docs, b.total)
	conc.Do(len(terms), workers, func(i int) {
		t := terms[i]
		ix.termList[i] = termEntry{term: t, pl: encodePostings(b.posting[t], b.opts, st)}
	})
	return ix
}

// BuildAll freezes a set of builders concurrently — the construction
// path of the partitioned query engines, where K partition indexes are
// independent and a serial loop would leave all but one core idle.
// workers bounds the builder-level fan-out (0 = GOMAXPROCS); each
// builder additionally parallelizes its own posting encoding, which
// matters when K is smaller than the machine.
func BuildAll(builders []*MemBuilder, workers int) []*Index {
	out := make([]*Index, len(builders))
	conc.Do(len(builders), workers, func(i int) {
		out[i] = builders[i].BuildParallel(workers)
	})
	return out
}

// SortBuilder implements classic sort-based index construction
// (Witten, Moffat & Bell, "Managing Gigabytes"; paper §4): it records
// one (term, doc, position) triple per occurrence, sorts the triples at
// the end, and emits postings from the sorted run.
type SortBuilder struct {
	opts  Options
	recs  []occRecord
	docs  []docEntry
	byExt map[int]int
	total int64
}

type occRecord struct {
	term string
	doc  int32
	pos  int32
}

// NewSortBuilder creates a sort-based builder.
func NewSortBuilder(opts Options) *SortBuilder {
	return &SortBuilder{opts: opts, byExt: make(map[int]int)}
}

// AddDocument records the occurrence triples of one document, rejecting
// duplicate IDs.
func (b *SortBuilder) AddDocument(ext int, terms []string) error {
	if _, dup := b.byExt[ext]; dup {
		return fmt.Errorf("index: duplicate document %d", ext)
	}
	doc := int32(len(b.docs))
	b.byExt[ext] = int(doc)
	b.docs = append(b.docs, docEntry{ext: ext, length: len(terms)})
	b.total += int64(len(terms))
	for i, t := range terms {
		b.recs = append(b.recs, occRecord{term: t, doc: doc, pos: int32(i)})
	}
	return nil
}

// NumDocs returns how many documents have been added.
func (b *SortBuilder) NumDocs() int { return len(b.docs) }

// Build sorts the occurrence records and assembles the index. The error
// is always nil; it exists to satisfy Builder.
func (b *SortBuilder) Build() (*Index, error) {
	sort.Slice(b.recs, func(i, j int) bool {
		a, c := b.recs[i], b.recs[j]
		if a.term != c.term {
			return a.term < c.term
		}
		if a.doc != c.doc {
			return a.doc < c.doc
		}
		return a.pos < c.pos
	})
	ix := &Index{
		opts:     b.opts,
		terms:    make(map[string]int),
		docs:     b.docs,
		docByExt: b.byExt,
		totalLen: b.total,
	}
	st := lengthsOf(b.docs, b.total)
	i := 0
	for i < len(b.recs) {
		term := b.recs[i].term
		var ps []Posting
		for i < len(b.recs) && b.recs[i].term == term {
			doc := b.recs[i].doc
			var poss []int32
			for i < len(b.recs) && b.recs[i].term == term && b.recs[i].doc == doc {
				poss = append(poss, b.recs[i].pos)
				i++
			}
			p := Posting{Doc: doc, TF: int32(len(poss))}
			if b.opts.StorePositions {
				p.Pos = poss
			}
			ps = append(ps, p)
		}
		ix.terms[term] = len(ix.termList)
		ix.termList = append(ix.termList, termEntry{term: term, pl: encodePostings(ps, b.opts, st)})
	}
	return ix, nil
}

// Equal reports whether two indexes contain the same documents, lexicon,
// and postings (including positions when both store them). It is the
// cross-checking oracle for the different construction strategies.
func Equal(a, b *Index) bool {
	if a.NumDocs() != b.NumDocs() || a.NumTerms() != b.NumTerms() || a.totalLen != b.totalLen {
		return false
	}
	for i := range a.docs {
		if a.docs[i] != b.docs[i] {
			return false
		}
	}
	for i := range a.termList {
		ta := &a.termList[i]
		tb, ok := b.terms[ta.term]
		if !ok {
			return false
		}
		pa := ta.pl.decodeAll(a.opts)
		pb := b.termList[tb].pl.decodeAll(b.opts)
		if len(pa) != len(pb) {
			return false
		}
		for j := range pa {
			if pa[j].Doc != pb[j].Doc || pa[j].TF != pb[j].TF {
				return false
			}
			if a.opts.StorePositions && b.opts.StorePositions {
				for k := range pa[j].Pos {
					if pa[j].Pos[k] != pb[j].Pos[k] {
						return false
					}
				}
			}
		}
	}
	return true
}
