package index

import (
	"math/rand"
	"reflect"
	"testing"
)

// randPostings draws a posting list with the given gap profile: small
// gaps make dense multi-block lists, large gaps stress the group-varint
// width selection, mixed gaps cross byte-length boundaries mid-group.
func randPostings(rng *rand.Rand, n, maxGap int, withPos bool) []Posting {
	ps := make([]Posting, n)
	doc := int32(0)
	for i := range ps {
		doc += int32(1 + rng.Intn(maxGap))
		tf := int32(1 + rng.Intn(7))
		p := Posting{Doc: doc, TF: tf}
		if withPos {
			pos := int32(0)
			p.Pos = make([]int32, tf)
			for j := range p.Pos {
				pos += int32(1 + rng.Intn(50))
				p.Pos[j] = pos
			}
		}
		ps[i] = p
	}
	return ps
}

// TestBlockIteratorAgainstLinearScan is the seeded property test of the
// block codec: for randomized lists across gap distributions, block
// sizes, Compress on/off, and positions on/off, Iterator.Next must
// reproduce the raw postings exactly and Iterator.SkipTo must agree with
// a linear scan for adversarial targets — block boundaries, the exact
// last document of each block, present and absent documents, and targets
// past the end.
func TestBlockIteratorAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		opts := Options{
			Compress:       trial%2 == 0,
			StorePositions: (trial/2)%2 == 0,
			BlockSize:      []int{0, 1, 4, 7, 128}[trial%5],
		}
		n := rng.Intn(400) // includes empty and single-block lists
		maxGap := []int{1, 3, 1000, 1 << 18}[rng.Intn(4)]
		ps := randPostings(rng, n, maxGap, opts.StorePositions)
		pl := encodePostings(ps, opts, encodeStats{})

		// Full forward decode == raw postings.
		got := pl.decodeAll(opts)
		want := ps
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, append([]Posting(nil), want...)) {
			t.Fatalf("trial %d opts %+v: decodeAll diverges (n=%d)", trial, opts, n)
		}

		// Adversarial SkipTo targets.
		targets := []int32{0, 1}
		bs := opts.blockSize()
		for b := 0; b*bs < len(ps); b++ {
			last := ps[min((b+1)*bs, len(ps))-1].Doc
			targets = append(targets, last, last+1, ps[b*bs].Doc) // exact block last, just past, block first
		}
		if len(ps) > 0 {
			final := ps[len(ps)-1].Doc
			targets = append(targets, final, final+1, final+1000)
			for i := 0; i < 10; i++ {
				targets = append(targets, int32(rng.Intn(int(final)+2)))
			}
		}
		for _, target := range targets {
			it := newIterator(&pl, opts, opts.StorePositions)
			var want *Posting
			for i := range ps {
				if ps[i].Doc >= target {
					want = &ps[i]
					break
				}
			}
			ok := it.SkipTo(target)
			if (want != nil) != ok {
				t.Fatalf("trial %d opts %+v: SkipTo(%d) = %v, want %v", trial, opts, target, ok, want != nil)
			}
			if ok && !reflect.DeepEqual(it.Posting(), *want) {
				t.Fatalf("trial %d opts %+v: SkipTo(%d) landed on %+v, want %+v", trial, opts, target, it.Posting(), *want)
			}
		}

		// Forward-only interleaved SkipTo/Next walk against the raw list.
		it := newIterator(&pl, opts, opts.StorePositions)
		i := 0
		for i < len(ps) {
			if rng.Intn(2) == 0 {
				if !it.Next() {
					t.Fatalf("trial %d: Next exhausted at %d/%d", trial, i, len(ps))
				}
			} else {
				jump := ps[min(i+rng.Intn(2*bs), len(ps)-1)].Doc
				if !it.SkipTo(jump) {
					t.Fatalf("trial %d: SkipTo(%d) exhausted at %d/%d", trial, jump, i, len(ps))
				}
				for ps[i].Doc < jump {
					i++
				}
			}
			if !reflect.DeepEqual(it.Posting(), ps[i]) {
				t.Fatalf("trial %d: walk diverged at %d: %+v vs %+v", trial, i, it.Posting(), ps[i])
			}
			i++
		}
		if it.Next() {
			t.Fatalf("trial %d: iterator ran past the end", trial)
		}
	}
}

// TestBlockMetadataInvariants checks the per-block prune metadata: every
// posting is bounded by its block's maxTF / minLen, lastDoc is exact,
// and the dequantized max score is a true upper bound of the default
// ranker's saturation for every posting in the block (quantization must
// round up, never down).
func TestBlockMetadataInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	b := NewBuilder(DefaultOptions())
	for d := 0; d < 500; d++ {
		terms := make([]string, 5+rng.Intn(120))
		for i := range terms {
			terms[i] = string(rune('a' + rng.Intn(20)))
		}
		b.AddDocument(d, terms)
	}
	ix := MustBuild(b)
	avg := ix.AvgDocLen()
	for _, term := range ix.Terms() {
		it := ix.Postings(term)
		if !it.QuantValidFor(DefaultBM25K1, DefaultBM25B, avg) {
			t.Fatalf("term %q: quantized bounds invalid for the index's own stats", term)
		}
		ps := ix.DecodedPostings(term)
		bs := ix.Options().blockSize()
		for bi := 0; bi < it.NumBlocks(); bi++ {
			lo, hi := bi*bs, min((bi+1)*bs, len(ps))
			if it.BlockLastDoc(bi) != ps[hi-1].Doc {
				t.Fatalf("term %q block %d: lastDoc %d, want %d", term, bi, it.BlockLastDoc(bi), ps[hi-1].Doc)
			}
			for _, p := range ps[lo:hi] {
				if p.TF > it.BlockMaxTF(bi) {
					t.Fatalf("term %q block %d: tf %d exceeds maxTF %d", term, bi, p.TF, it.BlockMaxTF(bi))
				}
				if l := int32(ix.DocLen(p.Doc)); l < it.BlockMinDocLen(bi) {
					t.Fatalf("term %q block %d: docLen %d below minLen %d", term, bi, l, it.BlockMinDocLen(bi))
				}
				sat := bm25Sat(p.TF, int32(ix.DocLen(p.Doc)), avg)
				if sat > it.BlockMaxSat(bi)+1e-12 {
					t.Fatalf("term %q block %d: saturation %g exceeds quantized bound %g", term, bi, sat, it.BlockMaxSat(bi))
				}
			}
		}
	}
}

// TestIteratorBytesDecodedCharges pins the decode accounting SkipTo's
// savings are measured in: a full walk charges every data byte (or just
// the doc+TF sections when positions are skipped), while a SkipTo into
// the last block charges only the blocks actually decoded.
func TestIteratorBytesDecodedCharges(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	opts := DefaultOptions()
	opts.BlockSize = 16
	ps := randPostings(rng, 160, 5, true)
	pl := encodePostings(ps, opts, encodeStats{})

	it := newIterator(&pl, opts, true)
	for it.Next() {
	}
	if it.BytesDecoded() != int64(len(pl.data)) {
		t.Fatalf("positional full walk decoded %d bytes, data is %d", it.BytesDecoded(), len(pl.data))
	}

	it = newIterator(&pl, opts, false)
	for it.Next() {
	}
	full := it.BytesDecoded()
	if full <= 0 || full >= int64(len(pl.data)) {
		t.Fatalf("doc+TF walk decoded %d bytes, want within (0, %d)", full, len(pl.data))
	}

	it = newIterator(&pl, opts, false)
	if !it.SkipTo(ps[len(ps)-1].Doc) {
		t.Fatal("SkipTo(last) failed")
	}
	if it.BytesDecoded() >= full/2 {
		t.Fatalf("SkipTo to the last block decoded %d bytes; full walk is %d — blocks were not skipped", it.BytesDecoded(), full)
	}
}
