package index

// Manifest is an immutable snapshot of an LSM-style segment set: the
// ordered immutable segments (oldest first), the tombstone set, and a
// generation number that increments with every published change. A
// Manifest is never mutated after publication — a reader that grabs one
// evaluates queries against a frozen, internally consistent view while
// the owning SegmentStore swaps successors in behind it. This is the
// atomicity unit of the streaming pipeline: no query ever observes a
// half-applied flush, merge, or delete, because the only shared mutable
// state is a single pointer.
type Manifest struct {
	gen      uint64
	segments []*Index
	deleted  map[int]bool
}

func emptyManifest() *Manifest {
	return &Manifest{deleted: make(map[int]bool)}
}

// Gen returns the manifest's generation: 0 for the empty store, +1 for
// every published segment apply, merge, delete, or compaction.
func (m *Manifest) Gen() uint64 { return m.gen }

// NumSegments returns the number of resident segments.
func (m *Manifest) NumSegments() int { return len(m.segments) }

// NumDocs returns the number of live documents: resident minus
// tombstoned.
func (m *Manifest) NumDocs() int {
	n := 0
	for _, s := range m.segments {
		n += s.NumDocs()
	}
	return n - len(m.deleted)
}

// Tombstones returns the number of tombstoned documents still
// physically resident in some segment (they vanish at the next merge
// that touches their segment).
func (m *Manifest) Tombstones() int { return len(m.deleted) }

// Contains reports whether ext is physically resident in some segment,
// tombstoned or not.
func (m *Manifest) Contains(ext int) bool {
	for _, s := range m.segments {
		if s.InternalID(ext) >= 0 {
			return true
		}
	}
	return false
}

// Deleted reports whether ext is tombstoned.
func (m *Manifest) Deleted(ext int) bool { return m.deleted[ext] }

// CollectionStats returns the manifest's aggregated collection
// statistics (over every term) plus the merged per-term score-bound
// summaries — the inputs a federated mediator keeps fresh per site. The
// numbers are aggregated over all resident segments: NumDocs matches
// NumDocs() (tombstones subtracted), while DF/CF/TotalLen still count
// tombstoned documents until a merge reclaims them, making them safe
// upper bounds for selection. The manifest is immutable, so the call is
// a pure function of the snapshot.
func (m *Manifest) CollectionStats() (Stats, map[string]TermScoreMeta) {
	parts := make([]Stats, len(m.segments))
	for i, s := range m.segments {
		parts[i] = s.LocalStats(nil)
	}
	st := MergeStats(parts...)
	st.NumDocs -= len(m.deleted)
	bounds := make(map[string]TermScoreMeta)
	for _, s := range m.segments {
		for i := range s.termList {
			e := &s.termList[i]
			tm := TermScoreMeta{MaxTF: e.pl.maxTF, MinLen: e.pl.minLen,
				SatBound: e.pl.satScale, QuantAvg: e.pl.quantAvg}
			if old, ok := bounds[e.term]; ok {
				tm = MergeTermScoreMeta(old, tm)
			}
			bounds[e.term] = tm
		}
	}
	return st, bounds
}

// Search evaluates a disjunctive query over the manifest's live
// documents and returns the top k by BM25-like scoring, with collection
// statistics aggregated across all segments. The manifest is immutable,
// so Search is safe from any number of goroutines and needs no lock.
func (m *Manifest) Search(terms []string, k int) []SearchResult {
	rs, _ := searchView(m.segments, m.deleted, nil, terms, k)
	return rs
}

// SearchScanned is Search plus the number of postings scanned — the
// work counter latency cost models are driven by.
func (m *Manifest) SearchScanned(terms []string, k int) ([]SearchResult, int64) {
	return searchView(m.segments, m.deleted, nil, terms, k)
}

// searchView is the shared scorer behind Manifest.Search and
// Dynamic.Search: a disjunctive BM25-like evaluation over immutable
// segments plus an optional in-memory buffer of unflushed documents,
// with document frequencies and lengths aggregated over the whole view.
// (Scoring duplicates a little of internal/rank to avoid an import
// cycle; the formulas match.) The returned int64 counts postings
// scanned, including buffer term matches.
func searchView(segments []*Index, deleted map[int]bool, buffer []Doc, terms []string, k int) ([]SearchResult, int64) {
	numDocs := len(buffer)
	var totalLen int64
	df := make(map[string]int, len(terms))
	uniq := make([]string, 0, len(terms))
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			uniq = append(uniq, t)
		}
	}
	for _, s := range segments {
		numDocs += s.NumDocs()
		totalLen += s.TotalLen()
		for _, t := range uniq {
			df[t] += s.DF(t)
		}
	}
	for _, doc := range buffer {
		totalLen += int64(len(doc.Terms))
		for _, t := range uniq {
			for _, w := range doc.Terms {
				if w == t {
					df[t]++
					break
				}
			}
		}
	}
	numDocs -= len(deleted)
	if numDocs <= 0 {
		return nil, 0
	}
	avgLen := float64(totalLen) / float64(numDocs)

	var scanned int64
	scores := make(map[int]float64)
	addScore := func(ext int, tf int32, docLen int, idf float64) {
		if deleted[ext] {
			return
		}
		const k1, b = 1.2, 0.75
		norm := 1 - b + b*float64(docLen)/maxf(avgLen, 1)
		scores[ext] += idf * float64(tf) * (k1 + 1) / (float64(tf) + k1*norm)
	}
	for _, t := range uniq {
		idf := bm25IDF(numDocs, df[t])
		for _, s := range segments {
			it := s.Postings(t)
			if it == nil {
				continue
			}
			for it.Next() {
				p := it.Posting()
				scanned++
				addScore(s.ExtID(p.Doc), p.TF, s.DocLen(p.Doc), idf)
			}
		}
		for _, doc := range buffer {
			tf := int32(0)
			for _, w := range doc.Terms {
				if w == t {
					tf++
				}
			}
			if tf > 0 {
				scanned++
				addScore(doc.Ext, tf, len(doc.Terms), idf)
			}
		}
	}

	out := make([]SearchResult, 0, len(scores))
	for doc, score := range scores {
		out = append(out, SearchResult{Doc: doc, Score: score})
	}
	sortSearchResults(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, scanned
}
