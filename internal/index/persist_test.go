package index

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	docs := randomDocs(rng, 300, 60)
	for _, opts := range []Options{
		DefaultOptions(),
		{Compress: false, StorePositions: true, BlockSize: 16},
		{Compress: true, StorePositions: false, BlockSize: 0},
	} {
		b := NewBuilder(opts)
		for _, d := range docs {
			b.AddDocument(d.Ext, d.Terms)
		}
		ix := MustBuild(b)

		path := filepath.Join(t.TempDir(), "test.idx")
		if err := ix.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(ix, got) {
			t.Fatalf("opts %+v: round-tripped index differs", opts)
		}
		if got.Options() != opts {
			t.Fatalf("options %+v round-tripped as %+v", opts, got.Options())
		}
		// Block metadata must survive: SkipTo still works and the block
		// bounds match the rebuilt index.
		term := got.Terms()[0]
		it := got.Postings(term)
		if it.Count() > 2 {
			if !it.SkipTo(0) {
				t.Fatal("SkipTo failed on loaded index")
			}
		}
		ref := ix.Postings(term)
		if it.NumBlocks() != ref.NumBlocks() {
			t.Fatalf("block count %d round-tripped as %d", ref.NumBlocks(), it.NumBlocks())
		}
		for bi := 0; bi < ref.NumBlocks(); bi++ {
			if it.BlockLastDoc(bi) != ref.BlockLastDoc(bi) ||
				it.BlockMaxTF(bi) != ref.BlockMaxTF(bi) ||
				it.BlockMinDocLen(bi) != ref.BlockMinDocLen(bi) ||
				it.BlockMaxSat(bi) != ref.BlockMaxSat(bi) {
				t.Fatalf("block %d metadata differs after round trip", bi)
			}
		}
		// The resident score-bound aggregates must survive for every term
		// (the broker's partition pruning reads them without postings).
		for _, tm := range ix.Terms() {
			want, ok1 := ix.TermScoreMeta(tm)
			have, ok2 := got.TermScoreMeta(tm)
			if !ok1 || !ok2 || want != have {
				t.Fatalf("opts %+v term %q: score metadata %+v round-tripped as %+v (ok %v %v)",
					opts, tm, want, have, ok1, ok2)
			}
		}
	}
}

// TestPersistRejectsOldVersion: a DWRIX2 (pre score-bound aggregates)
// file is refused with a rebuild hint rather than misparsed.
func TestPersistRejectsOldVersion(t *testing.T) {
	b := NewBuilder(DefaultOptions())
	b.AddDocument(1, []string{"alpha", "beta"})
	var buf bytes.Buffer
	if err := MustBuild(b).Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5] = '2' // rewrite the version byte of the magic
	_, err := Read(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("old format version accepted")
	}
	if !strings.Contains(err.Error(), "rebuild") {
		t.Fatalf("version error %q carries no rebuild hint", err)
	}
}

func TestPersistEmptyIndex(t *testing.T) {
	ix := MustBuild(NewBuilder(DefaultOptions()))
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != 0 || got.NumTerms() != 0 {
		t.Fatal("empty index round-trip not empty")
	}
}

func TestPersistRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTANIDX........."))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestPersistRejectsCorruption(t *testing.T) {
	b := NewBuilder(DefaultOptions())
	b.AddDocument(1, []string{"alpha", "beta", "alpha"})
	b.AddDocument(2, []string{"beta", "gamma"})
	ix := MustBuild(b)
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit in the middle of the payload: the checksum must catch it.
	corrupted := append([]byte(nil), raw...)
	corrupted[len(corrupted)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("corrupted index accepted")
	}
	// Truncation must also fail cleanly.
	if _, err := Read(bytes.NewReader(raw[:len(raw)-10])); err == nil {
		t.Fatal("truncated index accepted")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	b := NewBuilder(DefaultOptions())
	b.AddDocument(1, []string{"x"})
	ix := MustBuild(b)
	path := filepath.Join(t.TempDir(), "atomic.idx")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	// Overwrite with a different index: readers must see either version,
	// never a partial file (atomicity via rename).
	b2 := NewBuilder(DefaultOptions())
	b2.AddDocument(2, []string{"y", "z"})
	if err := MustBuild(b2).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != 1 || got.InternalID(2) < 0 {
		t.Fatal("overwritten index wrong")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.idx")); err == nil {
		t.Fatal("missing file accepted")
	}
}
