// Package selection implements collection selection (query routing) for
// partitioned indexes — Section 4's "challenging problem usually known as
// collection selection": given a query, rank the document partitions by
// how likely they are to hold relevant results so only a subset of
// servers is contacted.
//
// Three strategies are provided: CORI (Callan), the best-known
// content-based selector the paper names as state of the art; the
// query-driven selector built from the Puppin et al. co-clustering model
// that the paper reports outperforming CORI; and a random baseline.
package selection

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/randx"
)

// Selector ranks partitions for a query, best first. Every selector
// returns a permutation of [0, K).
type Selector interface {
	Rank(terms []string) []int
	K() int
}

// ScoredPart is a partition with its selection score, as exposed by
// selectors that can justify their ranking (RankScored). Callers that
// budget the cutoff by score mass — mediators deciding how many sites a
// query really needs — consume these instead of the bare permutation.
type ScoredPart struct {
	Part  int
	Score float64
}

// ScoredRanker is implemented by selectors that expose their scores
// alongside the ranking. The returned slice is ordered best-first with
// the same deterministic tie-break as Rank (ascending partition ID).
type ScoredRanker interface {
	RankScored(terms []string) []ScoredPart
}

// scored is a partition with a selection score.
type scored struct {
	part  int
	score float64
}

func sortScoredParts(s []scored) []ScoredPart {
	sort.Slice(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score > s[j].score
		}
		return s[i].part < s[j].part
	})
	out := make([]ScoredPart, len(s))
	for i, e := range s {
		out[i] = ScoredPart{Part: e.part, Score: e.score}
	}
	return out
}

func sortScored(s []scored) []int {
	sp := sortScoredParts(s)
	out := make([]int, len(sp))
	for i, e := range sp {
		out[i] = e.Part
	}
	return out
}

// CORI ranks collections with the CORI inference-network formula,
// using only per-partition statistics (df, collection word counts).
type CORI struct {
	df    []map[string]int // per-partition document frequencies
	cw    []float64        // per-partition total word counts
	avgCW float64
}

// NewCORI builds a CORI selector from per-partition index statistics.
func NewCORI(stats []index.Stats) *CORI {
	c := &CORI{}
	for _, st := range stats {
		df := make(map[string]int, len(st.DF))
		for t, v := range st.DF {
			df[t] = v
		}
		c.df = append(c.df, df)
		c.cw = append(c.cw, float64(st.TotalLen))
	}
	for _, w := range c.cw {
		c.avgCW += w
	}
	if len(c.cw) > 0 {
		c.avgCW /= float64(len(c.cw))
	}
	return c
}

// K returns the number of partitions.
func (c *CORI) K() int { return len(c.df) }

// Update replaces (or, when part == K(), appends) one partition's
// statistics and refolds the collection-wide averages — the incremental
// refresh path a mediator drives from the dynamic index's change hooks,
// instead of rebuilding the whole selector. It panics on a gap
// (part > K()), which indicates a programming error.
func (c *CORI) Update(part int, st index.Stats) {
	if part > len(c.df) {
		panic("selection: CORI.Update beyond K()")
	}
	df := make(map[string]int, len(st.DF))
	for t, v := range st.DF {
		df[t] = v
	}
	if part == len(c.df) {
		c.df = append(c.df, df)
		c.cw = append(c.cw, float64(st.TotalLen))
	} else {
		c.df[part] = df
		c.cw[part] = float64(st.TotalLen)
	}
	c.avgCW = 0
	for _, w := range c.cw {
		c.avgCW += w
	}
	if len(c.cw) > 0 {
		c.avgCW /= float64(len(c.cw))
	}
}

// Rank orders partitions by CORI belief for the query terms.
func (c *CORI) Rank(terms []string) []int {
	sp := c.RankScored(terms)
	out := make([]int, len(sp))
	for i, e := range sp {
		out[i] = e.Part
	}
	return out
}

// RankScored is Rank with the CORI beliefs attached (ScoredRanker).
func (c *CORI) RankScored(terms []string) []ScoredPart {
	const (
		b  = 0.4
		k  = 50.0
		kb = 150.0
	)
	nColl := float64(len(c.df))
	s := make([]scored, len(c.df))
	for p := range s {
		s[p].part = p
	}
	for _, t := range terms {
		// cf: number of collections containing t.
		cf := 0.0
		for p := range c.df {
			if c.df[p][t] > 0 {
				cf++
			}
		}
		if cf == 0 {
			continue
		}
		icf := math.Log((nColl+0.5)/cf) / math.Log(nColl+1.0)
		for p := range c.df {
			df := float64(c.df[p][t])
			if df == 0 {
				continue
			}
			tw := df / (df + k + kb*c.cw[p]/math.Max(c.avgCW, 1))
			s[p].score += b + (1-b)*tw*icf
		}
	}
	if n := float64(len(terms)); n > 0 {
		for p := range s {
			s[p].score /= n
		}
	}
	return sortScoredParts(s)
}

// QueryDriven selects partitions with the query-log model of Puppin et
// al.: an exact hit on a training query uses that query's observed
// result distribution; otherwise the query backs off to a term-level
// aggregation of the distributions of training queries sharing its
// terms; with no evidence at all it falls back to partition sizes.
type QueryDriven struct {
	k        int
	byKey    map[string][]float64
	byTerm   map[string][]float64
	fallback []float64 // partition sizes, normalized
}

// NewQueryDriven builds the selector from a co-clustering result and the
// training log it was derived from.
func NewQueryDriven(res partition.CoClusterResult, train []partition.QueryDocs) *QueryDriven {
	k := res.Partition.K
	qd := &QueryDriven{
		k:      k,
		byKey:  res.QueryPart,
		byTerm: make(map[string][]float64),
	}
	// Term-level backoff evidence, weighted by how discriminative each
	// term is: a term appearing in many training queries carries little
	// routing signal, so its contribution is divided by its training
	// query frequency (IDF-style).
	termQueries := make(map[string]int)
	for _, q := range train {
		if _, ok := res.QueryPart[q.Key]; !ok {
			continue
		}
		for _, t := range q.Terms {
			termQueries[t]++
		}
	}
	seenKey := make(map[string]bool)
	for _, q := range train {
		dist, ok := res.QueryPart[q.Key]
		if !ok || seenKey[q.Key] {
			continue
		}
		seenKey[q.Key] = true
		for _, t := range q.Terms {
			acc := qd.byTerm[t]
			if acc == nil {
				acc = make([]float64, k)
				qd.byTerm[t] = acc
			}
			w := 1 / float64(termQueries[t])
			for p, v := range dist {
				acc[p] += v * w
			}
		}
	}
	sizes := res.Partition.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	qd.fallback = make([]float64, k)
	for p, s := range sizes {
		if total > 0 {
			qd.fallback[p] = float64(s) / float64(total)
		}
	}
	return qd
}

// K returns the number of partitions.
func (qd *QueryDriven) K() int { return qd.k }

// Rank orders partitions for the query terms.
func (qd *QueryDriven) Rank(terms []string) []int {
	sp := qd.RankScored(terms)
	out := make([]int, len(sp))
	for i, e := range sp {
		out[i] = e.Part
	}
	return out
}

// RankScored is Rank with the routing distribution attached
// (ScoredRanker).
func (qd *QueryDriven) RankScored(terms []string) []ScoredPart {
	key := canonicalKey(terms)
	s := make([]scored, qd.k)
	for p := range s {
		s[p].part = p
	}
	if dist, ok := qd.byKey[key]; ok {
		for p, v := range dist {
			s[p].score = v
		}
		return sortScoredParts(s)
	}
	hit := false
	for _, t := range terms {
		if dist, ok := qd.byTerm[t]; ok {
			hit = true
			for p, v := range dist {
				s[p].score += v
			}
		}
	}
	if !hit {
		for p, v := range qd.fallback {
			s[p].score = v
		}
	}
	return sortScoredParts(s)
}

func canonicalKey(terms []string) string {
	ts := append([]string(nil), terms...)
	sort.Strings(ts)
	return strings.Join(ts, " ")
}

// Random is the baseline selector: a random permutation per query.
type Random struct {
	k   int
	rng *rand.Rand
}

// NewRandom creates a random selector over k partitions. The RNG is
// derived from the seed via internal/randx so the permutation stream is
// reproducible and never touches global math/rand state.
func NewRandom(seed int64, k int) *Random { return &Random{k: k, rng: randx.New(seed)} }

// K returns the number of partitions.
func (r *Random) K() int { return r.k }

// Rank returns a fresh random permutation.
func (r *Random) Rank(terms []string) []int { return r.rng.Perm(r.k) }

// BySize ranks partitions by document count, a static popularity
// baseline.
type BySize struct {
	order []int
}

// NewBySize builds a selector that always proposes the largest
// partitions first.
func NewBySize(sizes []int) *BySize {
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if sizes[order[a]] != sizes[order[b]] {
			return sizes[order[a]] > sizes[order[b]]
		}
		return order[a] < order[b]
	})
	return &BySize{order: order}
}

// K returns the number of partitions.
func (s *BySize) K() int { return len(s.order) }

// Rank returns the static size ordering.
func (s *BySize) Rank(terms []string) []int {
	return append([]int(nil), s.order...)
}

// RecallAtN measures selection quality the way the collection-selection
// literature does: the fraction of the true top documents (trueTop,
// from a centralized evaluation) that live in the first n partitions
// proposed by the selector, given the document→partition assignment.
func RecallAtN(sel Selector, terms []string, trueTop []int, assign map[int]int, n int) float64 {
	if len(trueTop) == 0 {
		return 1
	}
	ranked := sel.Rank(terms)
	if n > len(ranked) {
		n = len(ranked)
	}
	chosen := make(map[int]bool, n)
	for _, p := range ranked[:n] {
		chosen[p] = true
	}
	hit := 0
	for _, d := range trueTop {
		if chosen[assign[d]] {
			hit++
		}
	}
	return float64(hit) / float64(len(trueTop))
}
