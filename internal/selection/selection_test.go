package selection

import (
	"fmt"
	"math/rand"
	"testing"

	"dwr/internal/index"
	"dwr/internal/partition"
)

// buildPartitionedIndexes creates 3 partitions with disjoint vocabularies
// so selection is unambiguous: partition p owns terms "p<p>t<j>".
func buildPartitionedIndexes(t *testing.T) []index.Stats {
	t.Helper()
	var stats []index.Stats
	for p := 0; p < 3; p++ {
		b := index.NewBuilder(index.DefaultOptions())
		for d := 0; d < 50; d++ {
			terms := make([]string, 0, 12)
			for j := 0; j < 12; j++ {
				terms = append(terms, fmt.Sprintf("p%dt%d", p, j%6))
			}
			b.AddDocument(p*1000+d, terms)
		}
		stats = append(stats, index.MustBuild(b).LocalStats(nil))
	}
	return stats
}

func TestCORIPicksOwningPartition(t *testing.T) {
	c := NewCORI(buildPartitionedIndexes(t))
	if c.K() != 3 {
		t.Fatalf("K = %d", c.K())
	}
	for p := 0; p < 3; p++ {
		got := c.Rank([]string{fmt.Sprintf("p%dt0", p), fmt.Sprintf("p%dt1", p)})
		if got[0] != p {
			t.Fatalf("query for partition %d terms ranked %v", p, got)
		}
		if len(got) != 3 {
			t.Fatalf("rank returned %d partitions", len(got))
		}
	}
}

func TestCORIUnknownTermsStillRanksAll(t *testing.T) {
	c := NewCORI(buildPartitionedIndexes(t))
	got := c.Rank([]string{"zzz"})
	if len(got) != 3 {
		t.Fatalf("rank = %v", got)
	}
	seen := map[int]bool{}
	for _, p := range got {
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Fatalf("rank not a permutation: %v", got)
	}
}

func trainData() (partition.CoClusterResult, []partition.QueryDocs) {
	rng := rand.New(rand.NewSource(1))
	all := make([]int, 300)
	for i := range all {
		all[i] = i
	}
	var train []partition.QueryDocs
	for q := 0; q < 60; q++ {
		topic := q % 3
		var docs []int
		for j := 0; j < 8; j++ {
			docs = append(docs, topic*100+rng.Intn(100))
		}
		train = append(train, partition.QueryDocs{
			Key:   fmt.Sprintf("topic%d query%d", topic, q),
			Terms: []string{fmt.Sprintf("topic%d", topic), fmt.Sprintf("query%d", q)},
			Docs:  docs,
		})
	}
	res := partition.CoClusterDocs(rng, train, all, 3, 20)
	return res, train
}

func TestQueryDrivenExactHit(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	q := train[0]
	ranked := qd.Rank(q.Terms)
	// The top-ranked partition must hold the plurality of q's docs.
	counts := make([]int, 3)
	for _, d := range q.Docs {
		counts[res.Partition.Assign[d]]++
	}
	best := 0
	for p, c := range counts {
		if c > counts[best] {
			best = p
		}
	}
	if ranked[0] != best {
		t.Fatalf("exact-hit rank %v, plurality partition %d (counts %v)", ranked, best, counts)
	}
}

func TestQueryDrivenTermBackoff(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	// Unseen query sharing the topic term should still route to the
	// topic's partitions.
	ranked := qd.Rank([]string{"topic1", "neverseenbefore"})
	// Compare against the average distribution of topic-1 training queries.
	avg := make([]float64, 3)
	n := 0
	for _, q := range train {
		if q.Terms[0] == "topic1" {
			for p, v := range res.QueryPart[q.Key] {
				avg[p] += v
			}
			n++
		}
	}
	best := 0
	for p := range avg {
		if avg[p] > avg[best] {
			best = p
		}
	}
	if ranked[0] != best {
		t.Fatalf("term backoff ranked %v, want %d first (avg %v)", ranked, best, avg)
	}
}

func TestQueryDrivenFallback(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	ranked := qd.Rank([]string{"utterly", "unknown"})
	if len(ranked) != 3 {
		t.Fatalf("fallback rank = %v", ranked)
	}
	// Must rank largest partition first.
	sizes := res.Partition.Sizes()
	best := 0
	for p, s := range sizes {
		if s > sizes[best] {
			best = p
		}
	}
	if ranked[0] != best {
		t.Fatalf("fallback ranked %v, largest partition is %d (%v)", ranked, best, sizes)
	}
}

func TestRandomSelectorPermutation(t *testing.T) {
	r := NewRandom(rand.New(rand.NewSource(2)), 5)
	for i := 0; i < 20; i++ {
		got := r.Rank([]string{"x"})
		seen := map[int]bool{}
		for _, p := range got {
			if p < 0 || p >= 5 || seen[p] {
				t.Fatalf("not a permutation: %v", got)
			}
			seen[p] = true
		}
	}
}

func TestBySize(t *testing.T) {
	s := NewBySize([]int{10, 50, 30})
	got := s.Rank(nil)
	if got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("BySize rank = %v", got)
	}
}

func TestRecallAtN(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	q := train[3]
	// Perfect recall when selecting all partitions.
	r3 := RecallAtN(qd, q.Terms, q.Docs, res.Partition.Assign, 3)
	if r3 != 1 {
		t.Fatalf("recall@3 = %v, want 1", r3)
	}
	r1 := RecallAtN(qd, q.Terms, q.Docs, res.Partition.Assign, 1)
	if r1 < 0 || r1 > 1 {
		t.Fatalf("recall@1 = %v out of range", r1)
	}
	if RecallAtN(qd, q.Terms, nil, res.Partition.Assign, 1) != 1 {
		t.Fatal("empty truth should give recall 1")
	}
}

func TestQueryDrivenBeatsRandomOnTraining(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	rnd := NewRandom(rand.New(rand.NewSource(3)), 3)
	var qdSum, rndSum float64
	for _, q := range train {
		qdSum += RecallAtN(qd, q.Terms, q.Docs, res.Partition.Assign, 1)
		rndSum += RecallAtN(rnd, q.Terms, q.Docs, res.Partition.Assign, 1)
	}
	if qdSum <= rndSum {
		t.Fatalf("query-driven recall %v not above random %v", qdSum, rndSum)
	}
}
