package selection

import (
	"fmt"
	"math/rand"
	"testing"

	"dwr/internal/index"
	"dwr/internal/partition"
)

// buildPartitionedIndexes creates 3 partitions with disjoint vocabularies
// so selection is unambiguous: partition p owns terms "p<p>t<j>".
func buildPartitionedIndexes(t *testing.T) []index.Stats {
	t.Helper()
	var stats []index.Stats
	for p := 0; p < 3; p++ {
		b := index.NewBuilder(index.DefaultOptions())
		for d := 0; d < 50; d++ {
			terms := make([]string, 0, 12)
			for j := 0; j < 12; j++ {
				terms = append(terms, fmt.Sprintf("p%dt%d", p, j%6))
			}
			b.AddDocument(p*1000+d, terms)
		}
		stats = append(stats, index.MustBuild(b).LocalStats(nil))
	}
	return stats
}

func TestCORIPicksOwningPartition(t *testing.T) {
	c := NewCORI(buildPartitionedIndexes(t))
	if c.K() != 3 {
		t.Fatalf("K = %d", c.K())
	}
	for p := 0; p < 3; p++ {
		got := c.Rank([]string{fmt.Sprintf("p%dt0", p), fmt.Sprintf("p%dt1", p)})
		if got[0] != p {
			t.Fatalf("query for partition %d terms ranked %v", p, got)
		}
		if len(got) != 3 {
			t.Fatalf("rank returned %d partitions", len(got))
		}
	}
}

func TestCORIUnknownTermsStillRanksAll(t *testing.T) {
	c := NewCORI(buildPartitionedIndexes(t))
	got := c.Rank([]string{"zzz"})
	if len(got) != 3 {
		t.Fatalf("rank = %v", got)
	}
	seen := map[int]bool{}
	for _, p := range got {
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Fatalf("rank not a permutation: %v", got)
	}
}

func trainData() (partition.CoClusterResult, []partition.QueryDocs) {
	rng := rand.New(rand.NewSource(1))
	all := make([]int, 300)
	for i := range all {
		all[i] = i
	}
	var train []partition.QueryDocs
	for q := 0; q < 60; q++ {
		topic := q % 3
		var docs []int
		for j := 0; j < 8; j++ {
			docs = append(docs, topic*100+rng.Intn(100))
		}
		train = append(train, partition.QueryDocs{
			Key:   fmt.Sprintf("topic%d query%d", topic, q),
			Terms: []string{fmt.Sprintf("topic%d", topic), fmt.Sprintf("query%d", q)},
			Docs:  docs,
		})
	}
	res := partition.CoClusterDocs(rng, train, all, 3, 20)
	return res, train
}

func TestQueryDrivenExactHit(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	q := train[0]
	ranked := qd.Rank(q.Terms)
	// The top-ranked partition must hold the plurality of q's docs.
	counts := make([]int, 3)
	for _, d := range q.Docs {
		counts[res.Partition.Assign[d]]++
	}
	best := 0
	for p, c := range counts {
		if c > counts[best] {
			best = p
		}
	}
	if ranked[0] != best {
		t.Fatalf("exact-hit rank %v, plurality partition %d (counts %v)", ranked, best, counts)
	}
}

func TestQueryDrivenTermBackoff(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	// Unseen query sharing the topic term should still route to the
	// topic's partitions.
	ranked := qd.Rank([]string{"topic1", "neverseenbefore"})
	// Compare against the average distribution of topic-1 training queries.
	avg := make([]float64, 3)
	n := 0
	for _, q := range train {
		if q.Terms[0] == "topic1" {
			for p, v := range res.QueryPart[q.Key] {
				avg[p] += v
			}
			n++
		}
	}
	best := 0
	for p := range avg {
		if avg[p] > avg[best] {
			best = p
		}
	}
	if ranked[0] != best {
		t.Fatalf("term backoff ranked %v, want %d first (avg %v)", ranked, best, avg)
	}
}

func TestQueryDrivenFallback(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	ranked := qd.Rank([]string{"utterly", "unknown"})
	if len(ranked) != 3 {
		t.Fatalf("fallback rank = %v", ranked)
	}
	// Must rank largest partition first.
	sizes := res.Partition.Sizes()
	best := 0
	for p, s := range sizes {
		if s > sizes[best] {
			best = p
		}
	}
	if ranked[0] != best {
		t.Fatalf("fallback ranked %v, largest partition is %d (%v)", ranked, best, sizes)
	}
}

func TestRandomSelectorPermutation(t *testing.T) {
	r := NewRandom(2, 5)
	for i := 0; i < 20; i++ {
		got := r.Rank([]string{"x"})
		seen := map[int]bool{}
		for _, p := range got {
			if p < 0 || p >= 5 || seen[p] {
				t.Fatalf("not a permutation: %v", got)
			}
			seen[p] = true
		}
	}
}

func TestBySize(t *testing.T) {
	s := NewBySize([]int{10, 50, 30})
	got := s.Rank(nil)
	if got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("BySize rank = %v", got)
	}
}

func TestRecallAtN(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	q := train[3]
	// Perfect recall when selecting all partitions.
	r3 := RecallAtN(qd, q.Terms, q.Docs, res.Partition.Assign, 3)
	if r3 != 1 {
		t.Fatalf("recall@3 = %v, want 1", r3)
	}
	r1 := RecallAtN(qd, q.Terms, q.Docs, res.Partition.Assign, 1)
	if r1 < 0 || r1 > 1 {
		t.Fatalf("recall@1 = %v out of range", r1)
	}
	if RecallAtN(qd, q.Terms, nil, res.Partition.Assign, 1) != 1 {
		t.Fatal("empty truth should give recall 1")
	}
}

// TestCORIRankDeterministicAcrossReplays is the seeded determinism
// property: two independently built CORI selectors over the same
// statistics rank an identical query stream identically, scores and
// tie-breaks included.
func TestCORIRankDeterministicAcrossReplays(t *testing.T) {
	queries := [][]string{
		{"p0t0"}, {"p1t2", "p2t3"}, {"zzz"}, {"p0t1", "p0t2", "p1t0"}, {"p2t5"},
	}
	run := func() []string {
		c := NewCORI(buildPartitionedIndexes(t))
		var out []string
		for _, q := range queries {
			out = append(out, fmt.Sprintf("%v", c.RankScored(q)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestQueryDrivenRankDeterministicAcrossReplays replays the same
// training log through two independent builds; the derived selectors
// must agree on every query, including backoff and fallback paths.
func TestQueryDrivenRankDeterministicAcrossReplays(t *testing.T) {
	queries := [][]string{
		{"topic0", "query1"}, {"topic2", "neverseen"}, {"utterly", "unknown"}, {"topic1"},
	}
	run := func() []string {
		res, train := trainData()
		qd := NewQueryDriven(res, train)
		var out []string
		for _, q := range queries {
			out = append(out, fmt.Sprintf("%v", qd.RankScored(q)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestScoredTieBreakAscending: all-equal scores must come back in
// ascending partition order — the stable tie-break both brokers and
// mediators rely on for replay identity.
func TestScoredTieBreakAscending(t *testing.T) {
	// Identical statistics in every partition force exact score ties.
	b := index.NewBuilder(index.DefaultOptions())
	for d := 0; d < 20; d++ {
		b.AddDocument(d, []string{"same", "words", "everywhere"})
	}
	st := index.MustBuild(b).LocalStats(nil)
	c := NewCORI([]index.Stats{st, st, st, st})
	for _, q := range [][]string{{"same"}, {"words", "everywhere"}, {"zzz"}} {
		sp := c.RankScored(q)
		for i := range sp {
			if sp[i].Part != i {
				t.Fatalf("query %v: tied ranks not ascending: %v", q, sp)
			}
			if i > 0 && sp[i].Score != sp[i-1].Score {
				t.Fatalf("query %v: fixture scores not tied: %v", q, sp)
			}
		}
	}
}

// TestRandomSeededDeterminism: Random draws its RNG from internal/randx,
// so two selectors with one seed emit identical permutation streams and
// different seeds diverge.
func TestRandomSeededDeterminism(t *testing.T) {
	a, b, c := NewRandom(42, 6), NewRandom(42, 6), NewRandom(43, 6)
	same, diff := true, false
	for i := 0; i < 30; i++ {
		pa, pb, pc := a.Rank(nil), b.Rank(nil), c.Rank(nil)
		if fmt.Sprint(pa) != fmt.Sprint(pb) {
			same = false
		}
		if fmt.Sprint(pa) != fmt.Sprint(pc) {
			diff = true
		}
	}
	if !same {
		t.Fatal("equal seeds diverged")
	}
	if !diff {
		t.Fatal("distinct seeds never diverged in 30 draws")
	}
}

// TestCORIUpdateMatchesRebuild: the incremental refresh path must land
// on exactly the state a from-scratch build produces.
func TestCORIUpdateMatchesRebuild(t *testing.T) {
	stats := buildPartitionedIndexes(t)
	c := NewCORI(stats)
	// Mutate partition 1's statistics: new vocabulary, different size.
	b := index.NewBuilder(index.DefaultOptions())
	for d := 0; d < 80; d++ {
		b.AddDocument(5000+d, []string{"p1new0", "p1new1", "p1new2"})
	}
	stats[1] = index.MustBuild(b).LocalStats(nil)
	c.Update(1, stats[1])
	fresh := NewCORI(stats)
	for _, q := range [][]string{{"p1new0"}, {"p0t0", "p1new1"}, {"p2t2"}} {
		if got, want := fmt.Sprint(c.RankScored(q)), fmt.Sprint(fresh.RankScored(q)); got != want {
			t.Fatalf("query %v: updated %s, rebuilt %s", q, got, want)
		}
	}
	// Appending at part == K() grows the selector.
	c.Update(3, stats[0])
	if c.K() != 4 {
		t.Fatalf("K after append = %d", c.K())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("gapped update did not panic")
		}
	}()
	c.Update(9, stats[0])
}

// TestRecallAtNEdgeCases: empty training set, n larger than the number
// of partitions, and all-equal selection scores must all stay in range
// and well-defined.
func TestRecallAtNEdgeCases(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	q := train[2]
	// n far beyond K clamps to selecting everything: perfect recall.
	if r := RecallAtN(qd, q.Terms, q.Docs, res.Partition.Assign, 99); r != 1 {
		t.Fatalf("recall@99 = %v, want 1 (n clamps to K)", r)
	}
	// n = 0 selects nothing.
	if r := RecallAtN(qd, q.Terms, q.Docs, res.Partition.Assign, 0); r != 0 {
		t.Fatalf("recall@0 = %v, want 0", r)
	}
	// Empty training set: the selector degrades to the size fallback but
	// stays usable.
	empty := NewQueryDriven(partition.CoClusterResult{
		Partition: res.Partition,
		QueryPart: map[string][]float64{},
	}, nil)
	ranked := empty.Rank(q.Terms)
	if len(ranked) != 3 {
		t.Fatalf("empty-train rank = %v", ranked)
	}
	if r := RecallAtN(empty, q.Terms, q.Docs, res.Partition.Assign, 3); r != 1 {
		t.Fatalf("empty-train recall@K = %v, want 1", r)
	}
	// All-equal scores (unknown terms, equal-size partitions would tie):
	// recall must still be deterministic and in range.
	r1 := RecallAtN(qd, []string{"zzz"}, q.Docs, res.Partition.Assign, 1)
	r2 := RecallAtN(qd, []string{"zzz"}, q.Docs, res.Partition.Assign, 1)
	if r1 != r2 {
		t.Fatalf("tied-score recall not deterministic: %v vs %v", r1, r2)
	}
	if r1 < 0 || r1 > 1 {
		t.Fatalf("recall out of range: %v", r1)
	}
}

func TestQueryDrivenBeatsRandomOnTraining(t *testing.T) {
	res, train := trainData()
	qd := NewQueryDriven(res, train)
	rnd := NewRandom(3, 3)
	var qdSum, rndSum float64
	for _, q := range train {
		qdSum += RecallAtN(qd, q.Terms, q.Docs, res.Partition.Assign, 1)
		rndSum += RecallAtN(rnd, q.Terms, q.Docs, res.Partition.Assign, 1)
	}
	if qdSum <= rndSum {
		t.Fatalf("query-driven recall %v not above random %v", qdSum, rndSum)
	}
}
