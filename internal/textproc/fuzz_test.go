package textproc

import "testing"

// Fuzz targets: the crawler feeds these parsers whatever the Web throws
// at it, so they must never panic and must keep their basic contracts on
// arbitrary input. `go test` runs the seed corpus; `go test -fuzz=Fuzz...`
// explores further.

func FuzzParseHTML(f *testing.F) {
	seeds := []string{
		"",
		"<html><body>hello</body></html>",
		"<p>one<p>two<b>three",
		"<a href=broken>x",
		"x <!-- never closed",
		"<script>evil()</script>visible",
		"<A HREF='a'>t</A><a href=\"b\">u</a><a href=c>v</a>",
		"\x00\xff<title>bin</title>",
		"&amp;&nosuch;&",
		"<><<>><tag attr==val>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		doc := ParseHTML(raw)
		for _, l := range doc.Links {
			if l == "" {
				t.Fatal("empty link extracted")
			}
		}
	})
}

func FuzzTokenize(f *testing.F) {
	for _, s := range []string{"", "hello world", "ÄÖÜ ß 日本語", "a1b2c3", "....", "\x00\xff"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		for _, tok := range Tokenize(raw) {
			if tok == "" {
				t.Fatal("empty token")
			}
			if len(tok) > 64 {
				t.Fatalf("token longer than cap: %d bytes", len(tok))
			}
		}
	})
}
