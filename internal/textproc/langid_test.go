package textproc

import "testing"

const englishSample = `the quick brown fox jumps over the lazy dog and then
runs through the forest with great speed while the hunter watches from the
hill and thinks about what to have for dinner this evening with his family
which is waiting at home near the fire in the old wooden house by the river`

const spanishSample = `el rapido zorro marron salta sobre el perro perezoso y
luego corre por el bosque con gran velocidad mientras el cazador observa desde
la colina y piensa en que cenar esta noche con su familia que espera en casa
cerca del fuego en la vieja casa de madera junto al rio`

const italianSample = `la volpe veloce salta sopra il cane pigro e poi corre
attraverso la foresta con grande velocita mentre il cacciatore guarda dalla
collina e pensa a cosa mangiare per cena questa sera con la sua famiglia che
aspetta a casa vicino al fuoco nella vecchia casa di legno presso il fiume`

func newTestIdentifier() *LangIdentifier {
	return NewLangIdentifier(
		NewLangProfile("en", englishSample),
		NewLangProfile("es", spanishSample),
		NewLangProfile("it", italianSample),
	)
}

func TestIdentifyLongText(t *testing.T) {
	li := newTestIdentifier()
	cases := []struct{ text, want string }{
		{"the hunter runs through the forest with the dog", "en"},
		{"el cazador corre por el bosque con el perro", "es"},
		{"il cacciatore corre attraverso la foresta con il cane", "it"},
	}
	for _, c := range cases {
		if got := li.Identify(c.text); got != c.want {
			t.Errorf("Identify(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}

func TestIdentifySelfSamples(t *testing.T) {
	li := newTestIdentifier()
	for _, c := range []struct{ text, want string }{
		{englishSample, "en"}, {spanishSample, "es"}, {italianSample, "it"},
	} {
		if got := li.Identify(c.text); got != c.want {
			t.Errorf("self-sample identified as %q, want %q", got, c.want)
		}
	}
}

func TestIdentifyEmptyAndNoProfiles(t *testing.T) {
	li := newTestIdentifier()
	if got := li.Identify("..."); got != "" {
		t.Errorf("Identify(no ngrams) = %q, want empty", got)
	}
	empty := NewLangIdentifier()
	if got := empty.Identify("hello world"); got != "" {
		t.Errorf("Identify with no profiles = %q, want empty", got)
	}
}

func TestIdentifyShortQueryReturnsSomething(t *testing.T) {
	// The paper notes short queries are hard; we only require a decision
	// from the known set, not correctness.
	li := newTestIdentifier()
	got := li.Identify("fox")
	if got != "en" && got != "es" && got != "it" {
		t.Errorf("Identify(short) = %q, not a known language", got)
	}
}
