package textproc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"x2 y3", []string{"x2", "y3"}},
		{"", nil},
		{"...---...", nil},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
		{"don't stop", []string{"don", "t", "stop"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestTokenizeTruncatesMonsters(t *testing.T) {
	monster := strings.Repeat("a", 500)
	got := Tokenize(monster)
	if len(got) != 1 || len(got[0]) != 64 {
		t.Fatalf("monster token not truncated to 64: got %d tokens, len %d", len(got), len(got[0]))
	}
}

func TestTokenizeAllLowercase(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok != strings.ToLower(tok) || tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || IsStopword("zebra") {
		t.Fatal("stopword membership wrong")
	}
	got := RemoveStopwords([]string{"the", "quick", "fox", "of", "doom"})
	want := []string{"quick", "fox", "doom"}
	if len(got) != len(want) {
		t.Fatalf("RemoveStopwords = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RemoveStopwords[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTermFreq(t *testing.T) {
	tf := TermFreq([]string{"a", "b", "a", "a"})
	if tf["a"] != 3 || tf["b"] != 1 || len(tf) != 2 {
		t.Fatalf("TermFreq = %v", tf)
	}
}
