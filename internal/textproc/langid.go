package textproc

import (
	"sort"
	"strings"
)

// LangProfile is a character n-gram frequency profile of a language,
// following Cavnar & Trenkle's "N-gram-based text categorization" — the
// technique the paper cites for identifying the language of documents and
// queries when partitioning the index by language (Section 5).
type LangProfile struct {
	Lang string
	rank map[string]int // n-gram -> rank (0 = most frequent)
}

// maxProfileNgrams bounds profile size; Cavnar–Trenkle use the top 300.
const maxProfileNgrams = 300

// ngramSizes are the n-gram lengths mixed into each profile.
var ngramSizes = []int{1, 2, 3}

// ngrams extracts padded character n-grams from text.
func ngrams(text string) []string {
	text = strings.ToLower(text)
	words := Tokenize(text)
	var out []string
	for _, w := range words {
		padded := "_" + w + "_"
		for _, n := range ngramSizes {
			for i := 0; i+n <= len(padded); i++ {
				out = append(out, padded[i:i+n])
			}
		}
	}
	return out
}

// NewLangProfile trains a profile for lang from sample text.
func NewLangProfile(lang, sample string) *LangProfile {
	counts := make(map[string]int)
	for _, g := range ngrams(sample) {
		counts[g]++
	}
	type gc struct {
		g string
		c int
	}
	all := make([]gc, 0, len(counts))
	for g, c := range counts {
		all = append(all, gc{g, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].g < all[j].g
	})
	if len(all) > maxProfileNgrams {
		all = all[:maxProfileNgrams]
	}
	rank := make(map[string]int, len(all))
	for i, e := range all {
		rank[e.g] = i
	}
	return &LangProfile{Lang: lang, rank: rank}
}

// distance computes the Cavnar–Trenkle out-of-place distance between this
// profile and the n-gram ranks of a text.
func (p *LangProfile) distance(textRank map[string]int) int {
	const outOfPlace = maxProfileNgrams
	d := 0
	for g, tr := range textRank {
		pr, ok := p.rank[g]
		if !ok {
			d += outOfPlace
			continue
		}
		diff := tr - pr
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}

// LangIdentifier classifies text against a set of trained profiles.
type LangIdentifier struct {
	profiles []*LangProfile
}

// NewLangIdentifier creates an identifier over the given profiles.
func NewLangIdentifier(profiles ...*LangProfile) *LangIdentifier {
	return &LangIdentifier{profiles: profiles}
}

// Identify returns the best-matching language for text, or "" if the
// identifier has no profiles or the text yields no n-grams (e.g. a very
// short query — the paper notes query language identification "may
// introduce errors" precisely because of this).
func (li *LangIdentifier) Identify(text string) string {
	if len(li.profiles) == 0 {
		return ""
	}
	counts := make(map[string]int)
	for _, g := range ngrams(text) {
		counts[g]++
	}
	if len(counts) == 0 {
		return ""
	}
	type gc struct {
		g string
		c int
	}
	all := make([]gc, 0, len(counts))
	for g, c := range counts {
		all = append(all, gc{g, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].g < all[j].g
	})
	if len(all) > maxProfileNgrams {
		all = all[:maxProfileNgrams]
	}
	textRank := make(map[string]int, len(all))
	for i, e := range all {
		textRank[e.g] = i
	}
	best, bestDist := "", int(^uint(0)>>1)
	for _, p := range li.profiles {
		if d := p.distance(textRank); d < bestDist {
			best, bestDist = p.Lang, d
		}
	}
	return best
}
