package textproc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseHTMLBasic(t *testing.T) {
	doc := ParseHTML(`<html><head><title>My Page</title></head>
<body><h1>Hello</h1><p>Some <b>bold</b> text.</p>
<a href="http://a.example/x">link one</a>
<a href='/relative'>link two</a></body></html>`)
	if doc.Title != "My Page" {
		t.Errorf("title = %q, want %q", doc.Title, "My Page")
	}
	for _, want := range []string{"Hello", "Some", "bold", "text", "link one"} {
		if !strings.Contains(doc.Text, want) {
			t.Errorf("text missing %q: %q", want, doc.Text)
		}
	}
	if len(doc.Links) != 2 || doc.Links[0] != "http://a.example/x" || doc.Links[1] != "/relative" {
		t.Errorf("links = %v", doc.Links)
	}
}

func TestParseHTMLMalformed(t *testing.T) {
	// Each of these is a class of real-world breakage the parser must
	// survive (paper §3: parsers must tolerate "all sort of errors").
	cases := []struct {
		name string
		in   string
	}{
		{"unclosed tags", "<p>one<p>two<b>three"},
		{"bare ampersand", "fish & chips & more"},
		{"truncated entity", "a &am b &nbsp c"},
		{"stray lt", "3 < 4 and 5 <6"},
		{"unterminated tag", "hello <a href="},
		{"unterminated comment", "x <!-- never closed"},
		{"attribute soup", `<a href = broken.html other="'">t</a>`},
		{"nested quotes", `<a href="a'b.html">t</a>`},
		{"empty", ""},
		{"only tags", "<html><body></body></html>"},
		{"binary junk", "\x00\x01\xff<p>ok</p>\xfe"},
		{"uppercase tags", "<P>UPPER <A HREF=UP.HTML>CASE</A></P>"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Must not panic, and must return something sensible.
			doc := ParseHTML(c.in)
			_ = doc
		})
	}
}

func TestParseHTMLMalformedStillExtracts(t *testing.T) {
	doc := ParseHTML("<p>one<p>two<b>three")
	for _, w := range []string{"one", "two", "three"} {
		if !strings.Contains(doc.Text, w) {
			t.Errorf("text missing %q: %q", w, doc.Text)
		}
	}
	doc = ParseHTML("<P>UPPER <A HREF=up.html>CASE</A>")
	if len(doc.Links) != 1 || doc.Links[0] != "up.html" {
		t.Errorf("unquoted uppercase href not extracted: %v", doc.Links)
	}
}

func TestParseHTMLSkipsScriptAndStyle(t *testing.T) {
	doc := ParseHTML(`<p>visible</p><script>var hidden = "secret";</script><style>.x{color:red}</style><p>more</p>`)
	if strings.Contains(doc.Text, "secret") || strings.Contains(doc.Text, "color") {
		t.Errorf("script/style leaked into text: %q", doc.Text)
	}
	if !strings.Contains(doc.Text, "visible") || !strings.Contains(doc.Text, "more") {
		t.Errorf("visible text lost: %q", doc.Text)
	}
}

func TestParseHTMLComments(t *testing.T) {
	doc := ParseHTML("before<!-- hidden <a href=x>no</a> -->after")
	if strings.Contains(doc.Text, "hidden") {
		t.Errorf("comment leaked into text: %q", doc.Text)
	}
	if len(doc.Links) != 0 {
		t.Errorf("links found inside comment: %v", doc.Links)
	}
	if !strings.Contains(doc.Text, "before") || !strings.Contains(doc.Text, "after") {
		t.Errorf("text around comment lost: %q", doc.Text)
	}
}

func TestParseHTMLNeverPanics(t *testing.T) {
	f := func(s string) bool {
		ParseHTML(s) // success == not panicking
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a &amp; b", "a & b"},
		{"&lt;tag&gt;", "<tag>"},
		{"&quot;q&quot;", `"q"`},
		{"no entities", "no entities"},
		{"&unknown;", "&unknown;"},
		{"&toolongentityname;", "&toolongentityname;"},
		{"trailing &", "trailing &"},
		{"&nbsp;x", " x"},
	}
	for _, c := range cases {
		if got := DecodeEntities(c.in); got != c.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAttrValue(t *testing.T) {
	cases := []struct {
		attrs, name, want string
		ok                bool
	}{
		{`href="x.html"`, "href", "x.html", true},
		{`href='x.html'`, "href", "x.html", true},
		{`href=x.html`, "href", "x.html", true},
		{`class="c" href="y"`, "href", "y", true},
		{`href = "spaced"`, "href", "spaced", true},
		{`xhref="no"`, "href", "", false},
		{`nothing="here"`, "href", "", false},
		{`href="unterminated`, "href", "unterminated", true},
	}
	for _, c := range cases {
		got, ok := attrValue(c.attrs, c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("attrValue(%q, %q) = (%q, %v), want (%q, %v)", c.attrs, c.name, got, ok, c.want, c.ok)
		}
	}
}
