package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase word tokens. Letters and digits
// form tokens; everything else separates them. Tokens longer than 64
// bytes are truncated — real crawls meet pathological "words" (base64
// blobs, minified code) that would bloat the lexicon otherwise.
func Tokenize(text string) []string {
	const maxToken = 64
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if b.Len() < maxToken {
				b.WriteRune(unicode.ToLower(r))
			}
			continue
		}
		flush()
	}
	flush()
	return out
}

// stopwords is a small English stopword list. The synthetic vocabulary in
// simweb embeds these words at the head of its Zipf distribution so that
// stopping has the same effect it has on real text.
var stopwords = map[string]bool{
	"the": true, "of": true, "and": true, "a": true, "to": true, "in": true,
	"is": true, "it": true, "that": true, "for": true, "on": true, "was": true,
	"with": true, "as": true, "at": true, "by": true, "be": true, "this": true,
	"are": true, "or": true, "an": true, "from": true, "not": true, "but": true,
}

// IsStopword reports whether token is on the built-in stopword list.
func IsStopword(token string) bool { return stopwords[token] }

// RemoveStopwords filters stopwords out of tokens, returning a new slice.
func RemoveStopwords(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// TermFreq counts token occurrences.
func TermFreq(tokens []string) map[string]int {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	return tf
}
