// Package textproc implements the text-processing substrate the paper's
// crawler and indexer depend on: an error-tolerant HTML parser (Section 3
// notes that "it is very important that the HTML parser is tolerant to
// all sort of errors in the crawled pages"), a tokenizer, and an n-gram
// language identifier used for language-based query routing (Section 5).
package textproc

import (
	"strings"
)

// Document is the result of parsing an HTML page: the visible text, the
// title, and the outgoing links. Parsing never fails — malformed markup
// degrades gracefully into text.
type Document struct {
	Title string
	Text  string
	Links []string
}

// ParseHTML extracts text, title, and links from raw HTML. The parser is
// deliberately forgiving: unclosed tags, bare ampersands, attribute soup,
// truncated entities, stray '<' characters, and script/style content are
// all handled without error, because a Web-scale crawler sees all of them.
func ParseHTML(raw string) Document {
	var doc Document
	var text strings.Builder
	var title strings.Builder

	i := 0
	n := len(raw)
	inTitle := false
	skipUntil := "" // closing tag name that ends a skipped element (script/style)

	for i < n {
		c := raw[i]
		if c != '<' {
			// Accumulate character data until the next tag.
			j := strings.IndexByte(raw[i:], '<')
			var chunk string
			if j < 0 {
				chunk = raw[i:]
				i = n
			} else {
				chunk = raw[i : i+j]
				i += j
			}
			if skipUntil == "" {
				decoded := DecodeEntities(chunk)
				if inTitle {
					title.WriteString(decoded)
				}
				text.WriteString(decoded)
			}
			continue
		}
		// At a '<'. Find the closing '>'. A missing '>' means a truncated
		// page: treat the rest as junk and stop.
		end := strings.IndexByte(raw[i:], '>')
		if end < 0 {
			break
		}
		tag := raw[i+1 : i+end]
		i += end + 1

		name, attrs, closing := splitTag(tag)
		if name == "" {
			// Stray "<>", "< " or comment-like garbage: emit nothing.
			continue
		}
		if strings.HasPrefix(name, "!--") {
			// Comment; splitTag keeps the raw form. Find the comment end.
			// If it never ends, the rest of the page is a comment.
			endc := strings.Index(raw[i:], "-->")
			if endc < 0 {
				break
			}
			i += endc + 3
			continue
		}
		if skipUntil != "" {
			if closing && name == skipUntil {
				skipUntil = ""
			}
			continue
		}
		switch name {
		case "script", "style":
			if !closing {
				skipUntil = name
			}
		case "title":
			inTitle = !closing
		case "a":
			if !closing {
				if href, ok := attrValue(attrs, "href"); ok && href != "" {
					doc.Links = append(doc.Links, href)
				}
			}
		case "p", "br", "div", "td", "tr", "li", "h1", "h2", "h3", "h4", "h5", "h6":
			// Block-level separators become whitespace so words do not fuse.
			text.WriteByte(' ')
		}
	}

	doc.Title = strings.TrimSpace(collapseSpace(title.String()))
	doc.Text = strings.TrimSpace(collapseSpace(text.String()))
	return doc
}

// splitTag separates a raw tag body into its lowercase name, attribute
// remainder, and whether it is a closing tag. It tolerates whitespace,
// self-closing slashes, and attribute junk.
func splitTag(tag string) (name, attrs string, closing bool) {
	tag = strings.TrimSpace(tag)
	if tag == "" {
		return "", "", false
	}
	if tag[0] == '/' {
		closing = true
		tag = strings.TrimSpace(tag[1:])
	}
	if strings.HasPrefix(tag, "!--") {
		return "!--", "", false
	}
	sp := strings.IndexAny(tag, " \t\r\n")
	if sp < 0 {
		name = tag
	} else {
		name = tag[:sp]
		attrs = tag[sp+1:]
	}
	name = strings.ToLower(strings.TrimSuffix(name, "/"))
	return name, attrs, closing
}

// attrValue extracts the value of the named attribute from an attribute
// string, tolerating single quotes, double quotes, and no quotes at all.
func attrValue(attrs, name string) (string, bool) {
	lower := strings.ToLower(attrs)
	idx := 0
	for idx < len(lower) {
		pos := strings.Index(lower[idx:], name)
		if pos < 0 {
			return "", false
		}
		pos += idx
		// Must be a word boundary before, and an '=' (possibly spaced) after.
		if pos > 0 {
			prev := lower[pos-1]
			if prev != ' ' && prev != '\t' && prev != '\n' && prev != '\r' && prev != '\'' && prev != '"' {
				idx = pos + len(name)
				continue
			}
		}
		rest := attrs[pos+len(name):]
		rest = strings.TrimLeft(rest, " \t\r\n")
		if !strings.HasPrefix(rest, "=") {
			idx = pos + len(name)
			continue
		}
		rest = strings.TrimLeft(rest[1:], " \t\r\n")
		if rest == "" {
			return "", true
		}
		switch rest[0] {
		case '"':
			if end := strings.IndexByte(rest[1:], '"'); end >= 0 {
				return rest[1 : 1+end], true
			}
			return rest[1:], true // unterminated quote: take the rest
		case '\'':
			if end := strings.IndexByte(rest[1:], '\''); end >= 0 {
				return rest[1 : 1+end], true
			}
			return rest[1:], true
		default:
			if end := strings.IndexAny(rest, " \t\r\n"); end >= 0 {
				return rest[:end], true
			}
			return rest, true
		}
	}
	return "", false
}

// entities maps the handful of HTML entities that matter for text
// extraction. Unknown entities are passed through verbatim, as a tolerant
// parser must not lose data over a typo like "&nbp;".
var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'", "nbsp": " ",
}

// DecodeEntities replaces known HTML entities in s; unknown or truncated
// entities are kept verbatim.
func DecodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 8 {
			b.WriteByte(c) // bare ampersand
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		if rep, ok := entities[strings.ToLower(ent)]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

// collapseSpace replaces runs of whitespace with single spaces.
func collapseSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		b.WriteByte(c)
	}
	return b.String()
}
