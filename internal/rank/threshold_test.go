package rank

import (
	"math/rand"
	"reflect"
	"testing"

	"dwr/internal/index"
)

// TestSeededEquivalence pins the threshold-seeding safety contract: for
// any true lower bound `seed` on the k-th score a broker cares about,
// the seeded evaluation returns every document scoring at least seed
// with a bitwise-identical score — seeding can only drop documents that
// provably lose against the seed.
func TestSeededEquivalence(t *testing.T) {
	ix := pruneCorpus(41, index.DefaultOptions())
	s := NewScorer(FromIndex(ix))
	rng := rand.New(rand.NewSource(42))
	queries := pruneQueries(rng, ix, 120)
	filter := func(rs []Result, seed float64) []Result {
		out := []Result{}
		for _, r := range rs {
			if r.Score >= seed {
				out = append(out, r)
			}
		}
		return out
	}
	for _, mode := range []Pruning{PruneMaxScore, PruneBlockMax} {
		for _, k := range []int{1, 5, 10} {
			for qi, q := range queries {
				exh, _ := EvaluateOR(ix, s, q, k)
				seeds := []float64{0}
				if len(exh) > 0 {
					kth := exh[len(exh)-1].Score
					seeds = append(seeds, kth/2, kth, exh[0].Score)
				}
				for _, seed := range seeds {
					got, es := EvaluateTopKSeeded(ix, s, q, k, mode, seed)
					want := filter(exh, seed)
					if !reflect.DeepEqual(want, filter(got, seed)) {
						t.Fatalf("mode=%d k=%d query %d %v seed=%g:\nexhaustive(≥seed) %v\nseeded(≥seed)     %v",
							mode, k, qi, q, seed, want, filter(got, seed))
					}
					if len(exh) >= k && es.FinalThreshold < exh[len(exh)-1].Score {
						t.Fatalf("mode=%d k=%d query %v seed=%g: FinalThreshold %g below k-th score %g",
							mode, k, q, seed, es.FinalThreshold, exh[len(exh)-1].Score)
					}
					if seed > 0 && es.FinalThreshold < seed {
						t.Fatalf("FinalThreshold %g below seed %g", es.FinalThreshold, seed)
					}
				}
			}
		}
	}
}

// TestSeedZeroMatchesUnseeded: seed 0 (and negative seeds) must leave
// the evaluation byte-identical to the unseeded entry points.
func TestSeedZeroMatchesUnseeded(t *testing.T) {
	ix := pruneCorpus(43, index.DefaultOptions())
	s := NewScorer(FromIndex(ix))
	rng := rand.New(rand.NewSource(44))
	for _, q := range pruneQueries(rng, ix, 60) {
		for _, mode := range []Pruning{PruneNone, PruneMaxScore, PruneBlockMax} {
			want, wes := EvaluateTopK(ix, s, q, 10, mode)
			for _, seed := range []float64{0, -1} {
				got, ges := EvaluateTopKSeeded(ix, s, q, 10, mode, seed)
				if !reflect.DeepEqual(want, got) || wes != ges {
					t.Fatalf("mode=%d query %v seed=%g: unseeded %v %+v, seeded %v %+v",
						mode, q, seed, want, wes, got, ges)
				}
			}
		}
	}
}

// TestTopKMerger: incremental wave merging equals one-shot MergeResults
// regardless of list order, and Threshold reports exactly the running
// k-th best score.
func TestTopKMerger(t *testing.T) {
	ix := pruneCorpus(45, index.DefaultOptions())
	s := NewScorer(FromIndex(ix))
	rng := rand.New(rand.NewSource(46))
	for _, q := range pruneQueries(rng, ix, 40) {
		full, _ := EvaluateOR(ix, s, q, 50)
		// Slice the result list into uneven "partitions".
		var lists [][]Result
		for i := 0; i < len(full); {
			n := 1 + rng.Intn(7)
			if i+n > len(full) {
				n = len(full) - i
			}
			lists = append(lists, full[i:i+n])
			i += n
		}
		rng.Shuffle(len(lists), func(i, j int) { lists[i], lists[j] = lists[j], lists[i] })
		k := 10
		m := NewTopKMerger(k)
		for _, l := range lists {
			m.Add(l)
		}
		want := MergeResults(k, lists...)
		if got := m.Results(); !reflect.DeepEqual(want, got) {
			t.Fatalf("query %v: merger %v, MergeResults %v", q, got, want)
		}
		thr, ok := m.Threshold()
		if len(full) >= k {
			if !ok || thr != want[k-1].Score {
				t.Fatalf("query %v: threshold %g ok=%v, want k-th score %g", q, thr, ok, want[k-1].Score)
			}
		} else if ok {
			t.Fatalf("query %v: threshold reported with only %d results", q, len(full))
		}
	}
	if _, ok := NewTopKMerger(0).Threshold(); ok {
		t.Fatal("k=0 merger reported a threshold")
	}
}

// TestTermUpperBoundDominates: the resident per-term bound must dominate
// every real posting's score contribution, for the default scorer
// (quantized bound valid), a scorer with a smaller global average
// (quantized bound still valid by monotonicity), and scorers where only
// the analytic bound applies (larger average, non-default constants).
func TestTermUpperBoundDominates(t *testing.T) {
	ix := pruneCorpus(47, index.DefaultOptions())
	local := FromIndex(ix)
	smaller, larger := local, local
	smaller.AvgDocLen *= 0.7
	larger.AvgDocLen *= 1.5
	scorers := []*Scorer{
		NewScorer(local),
		NewScorer(smaller),
		NewScorer(larger),
		{K1: 0.9, B: 0.4, Stats: local},
	}
	for _, term := range ix.Terms() {
		m, ok := ix.TermScoreMeta(term)
		if !ok {
			t.Fatalf("term %q has no score metadata", term)
		}
		for si, s := range scorers {
			idf := s.IDF(term)
			ub := s.TermUpperBound(idf, m)
			// The quantized bound may differ from a real score by one ulp
			// of rounding (different operation association), which is
			// exactly what the evaluators' pruneSlack tolerance absorbs:
			// the safety property is that no real score makes the bound
			// non-competitive, i.e. a partition holding that document is
			// never skipped.
			for it := ix.Postings(term); it.Next(); {
				p := it.Posting()
				if got := s.Term(p.TF, ix.DocLen(p.Doc), idf); !Competitive(ub, got) {
					t.Fatalf("scorer %d term %q doc %d: score %g beats bound %g beyond slack", si, term, p.Doc, got, ub)
				}
			}
		}
	}
	// QueryBound dominates every document's disjunctive score.
	rng := rand.New(rand.NewSource(48))
	for _, q := range pruneQueries(rng, ix, 60) {
		for si, s := range scorers {
			qb := QueryBound(ix, s, q)
			rs, _ := EvaluateOR(ix, s, q, 1)
			if len(rs) > 0 && !Competitive(qb, rs[0].Score) {
				t.Fatalf("scorer %d query %v: best score %g beats query bound %g beyond slack", si, q, rs[0].Score, qb)
			}
		}
	}
	if qb := QueryBound(ix, NewScorer(local), []string{"absent", "alsoabsent"}); qb != 0 {
		t.Fatalf("query bound %g for absent terms, want 0", qb)
	}
}

// TestCompetitive: bounds at or slack-close-below the threshold stay
// competitive; clearly lower bounds do not.
func TestCompetitive(t *testing.T) {
	if !Competitive(10, 10) {
		t.Fatal("bound equal to threshold must be competitive")
	}
	if !Competitive(10*(1-1e-12), 10) {
		t.Fatal("bound within slack of threshold must be competitive")
	}
	if Competitive(9, 10) {
		t.Fatal("bound clearly below threshold must not be competitive")
	}
	if !Competitive(0, 0) {
		t.Fatal("zero threshold must keep every bound competitive")
	}
}
