package rank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dwr/internal/index"
)

func buildIndex() *index.Index {
	b := index.NewBuilder(index.DefaultOptions())
	b.AddDocument(1, []string{"apple", "banana", "apple", "fig"})
	b.AddDocument(2, []string{"banana", "cherry"})
	b.AddDocument(3, []string{"apple", "cherry", "cherry"})
	b.AddDocument(4, []string{"date", "fig", "fig", "fig"})
	return index.MustBuild(b)
}

func TestEvaluateORBasics(t *testing.T) {
	ix := buildIndex()
	s := NewScorer(FromIndex(ix))
	rs, es := EvaluateOR(ix, s, []string{"apple"}, 10)
	if len(rs) != 2 {
		t.Fatalf("apple matched %d docs, want 2", len(rs))
	}
	// Doc 1 has tf=2 in a length-4 doc; doc 3 tf=1 length-3: doc 1 wins.
	if rs[0].Doc != 1 || rs[1].Doc != 3 {
		t.Fatalf("apple ranking = %+v", rs)
	}
	if es.PostingsDecoded == 0 || es.BytesRead == 0 {
		t.Fatal("evaluation stats not recorded")
	}
}

func TestEvaluateORMissingTerm(t *testing.T) {
	ix := buildIndex()
	s := NewScorer(FromIndex(ix))
	rs, _ := EvaluateOR(ix, s, []string{"nonexistent"}, 10)
	if rs != nil {
		t.Fatalf("missing term returned %v", rs)
	}
	rs, _ = EvaluateOR(ix, s, []string{"apple", "nonexistent"}, 10)
	if len(rs) != 2 {
		t.Fatalf("partial match returned %d docs, want 2", len(rs))
	}
}

func TestEvaluateANDSemantics(t *testing.T) {
	ix := buildIndex()
	s := NewScorer(FromIndex(ix))
	rs, _ := EvaluateAND(ix, s, []string{"apple", "cherry"}, 10)
	if len(rs) != 1 || rs[0].Doc != 3 {
		t.Fatalf("apple AND cherry = %+v, want doc 3 only", rs)
	}
	rs, _ = EvaluateAND(ix, s, []string{"apple", "nonexistent"}, 10)
	if rs != nil {
		t.Fatalf("AND with missing term returned %v", rs)
	}
}

func TestANDSubsetOfOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := index.NewBuilder(index.DefaultOptions())
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	for d := 0; d < 200; d++ {
		n := 2 + rng.Intn(20)
		terms := make([]string, n)
		for i := range terms {
			terms[i] = vocab[rng.Intn(len(vocab))]
		}
		b.AddDocument(d, terms)
	}
	ix := index.MustBuild(b)
	s := NewScorer(FromIndex(ix))
	query := []string{"a", "b"}
	orRes, _ := EvaluateOR(ix, s, query, 1000)
	andRes, _ := EvaluateAND(ix, s, query, 1000)
	orDocs := map[int]float64{}
	for _, r := range orRes {
		orDocs[r.Doc] = r.Score
	}
	for _, r := range andRes {
		sc, ok := orDocs[r.Doc]
		if !ok {
			t.Fatalf("AND result doc %d missing from OR results", r.Doc)
		}
		if diff := sc - r.Score; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("doc %d scored %v in AND but %v in OR", r.Doc, r.Score, sc)
		}
	}
}

func TestTopKTruncation(t *testing.T) {
	ix := buildIndex()
	s := NewScorer(FromIndex(ix))
	rs, _ := EvaluateOR(ix, s, []string{"apple", "banana", "cherry", "date", "fig"}, 2)
	if len(rs) != 2 {
		t.Fatalf("k=2 returned %d results", len(rs))
	}
	full, _ := EvaluateOR(ix, s, []string{"apple", "banana", "cherry", "date", "fig"}, 10)
	if rs[0] != full[0] || rs[1] != full[1] {
		t.Fatalf("top-2 %v != head of full ranking %v", rs, full[:2])
	}
}

func TestIDFDecreasesWithDF(t *testing.T) {
	s := NewScorer(StatsSource{NumDocs: 1000, AvgDocLen: 10, DF: map[string]int{"rare": 2, "common": 900}})
	if s.IDF("rare") <= s.IDF("common") {
		t.Fatal("IDF not decreasing in document frequency")
	}
	if s.IDF("common") <= 0 {
		t.Fatal("IDF must stay positive")
	}
}

func TestMergeResultsEqualsCentral(t *testing.T) {
	// Partition the collection, evaluate per partition with GLOBAL
	// statistics, merge — must equal the centralized ranking. This is
	// the correctness core of the two-round protocol (C9).
	rng := rand.New(rand.NewSource(8))
	vocab := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	docs := make([]index.Doc, 300)
	for i := range docs {
		n := 3 + rng.Intn(25)
		terms := make([]string, n)
		for j := range terms {
			terms[j] = vocab[rng.Intn(len(vocab))]
		}
		docs[i] = index.Doc{Ext: i, Terms: terms}
	}
	opts := index.DefaultOptions()
	central := index.NewBuilder(opts)
	parts := []*index.MemBuilder{index.NewBuilder(opts), index.NewBuilder(opts), index.NewBuilder(opts)}
	for i, d := range docs {
		central.AddDocument(d.Ext, d.Terms)
		parts[i%3].AddDocument(d.Ext, d.Terms)
	}
	cIx := index.MustBuild(central)
	gScorer := NewScorer(FromIndex(cIx))

	var partIx []*index.Index
	var stats []index.Stats
	for _, p := range parts {
		ix := index.MustBuild(p)
		partIx = append(partIx, ix)
		stats = append(stats, ix.LocalStats(nil))
	}
	global := FromGlobal(index.MergeStats(stats...))
	gs := NewScorer(global)

	query := []string{"w1", "w5"}
	want, _ := EvaluateOR(cIx, gScorer, query, 10)
	var lists [][]Result
	for _, ix := range partIx {
		rs, _ := EvaluateOR(ix, gs, query, 10)
		lists = append(lists, rs)
	}
	got := MergeResults(10, lists...)
	if len(got) != len(want) {
		t.Fatalf("merged %d results, central %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Doc != want[i].Doc {
			t.Fatalf("rank %d: merged doc %d, central doc %d", i, got[i].Doc, want[i].Doc)
		}
		if d := got[i].Score - want[i].Score; d > 1e-9 || d < -1e-9 {
			t.Fatalf("rank %d: score %v vs %v", i, got[i].Score, want[i].Score)
		}
	}
}

func TestOverlap(t *testing.T) {
	a := []Result{{1, 9}, {2, 8}, {3, 7}}
	b := []Result{{1, 9}, {3, 8}, {4, 7}}
	if got := Overlap(a, b, 3); got < 0.66 || got > 0.67 {
		t.Fatalf("Overlap = %v, want 2/3", got)
	}
	if got := Overlap(a, a, 3); got != 1 {
		t.Fatalf("self overlap = %v", got)
	}
	if got := Overlap(nil, b, 3); got != 0 {
		t.Fatalf("empty overlap = %v", got)
	}
}

func TestKendallTau(t *testing.T) {
	a := []Result{{1, 4}, {2, 3}, {3, 2}, {4, 1}}
	rev := []Result{{4, 4}, {3, 3}, {2, 2}, {1, 1}}
	if got := KendallTau(a, a); got != 1 {
		t.Fatalf("tau(self) = %v", got)
	}
	if got := KendallTau(a, rev); got != -1 {
		t.Fatalf("tau(reversed) = %v", got)
	}
	if got := KendallTau(a, nil); got != 1 {
		t.Fatalf("tau(no common) = %v, want 1 by convention", got)
	}
}

func TestSortResultsDeterministicTies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := make([]Result, 20)
		for i := range rs {
			rs[i] = Result{Doc: rng.Intn(10), Score: float64(rng.Intn(3))}
		}
		SortResults(rs)
		for i := 1; i < len(rs); i++ {
			if rs[i-1].Score < rs[i].Score {
				return false
			}
			if rs[i-1].Score == rs[i].Score && rs[i-1].Doc > rs[i].Doc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKZero(t *testing.T) {
	ix := buildIndex()
	s := NewScorer(FromIndex(ix))
	rs, _ := EvaluateOR(ix, s, []string{"apple"}, 0)
	if len(rs) != 0 {
		t.Fatalf("k=0 returned %d results", len(rs))
	}
}
