package rank

import "dwr/internal/index"

// TermUpperBound bounds the score contribution of one term for every
// document in the partition summarized by m, from resident metadata
// alone (no posting bytes are touched). Two bounds are available:
//
//   - The analytic bound Term(maxTF, minLen, idf): Scorer.Term is
//     monotone increasing in tf and decreasing in docLen, so the list's
//     largest tf scored at its shortest document dominates every real
//     posting under any BM25 parameterization.
//   - The quantized bound idf·SatBound, valid when the scorer uses the
//     default constants and its average document length is at most the
//     one the bounds were quantized against: BM25 saturation is monotone
//     increasing in the average (a larger avg shrinks the length norm),
//     so a bound computed at QuantAvg stays an upper bound for any
//     smaller scorer average.
//
// The tighter (smaller) of the valid bounds is returned.
func (s *Scorer) TermUpperBound(idf float64, m index.TermScoreMeta) float64 {
	ub := s.Term(m.MaxTF, int(m.MinLen), idf)
	if s.K1 == index.DefaultBM25K1 && s.B == index.DefaultBM25B &&
		s.Stats.AvgDocLen <= m.QuantAvg && m.SatBound > 0 {
		if q := idf * m.SatBound; q < ub {
			ub = q
		}
	}
	return ub
}

// QueryBound bounds the disjunctive score of any single document in ix
// for the query terms, using only the resident per-term metadata — the
// broker-side estimate a threshold-sharing scheduler orders and skips
// partitions by. Terms absent from the partition contribute nothing; a
// bound of 0 therefore means no query term occurs in the partition.
func QueryBound(ix *index.Index, s *Scorer, terms []string) float64 {
	sum := 0.0
	for _, t := range dedup(terms) {
		m, ok := ix.TermScoreMeta(t)
		if !ok {
			continue
		}
		sum += s.TermUpperBound(s.IDF(t), m)
	}
	return sum
}
