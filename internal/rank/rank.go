// Package rank implements scoring and result aggregation for the
// distributed query processing of Sections 4–5: BM25 ranking driven by
// either global or per-partition (local) statistics, disjunctive and
// conjunctive document-at-a-time evaluation, top-k result heaps, result
// merging at the broker, and the agreement metrics (overlap@k, Kendall
// tau) used to quantify how much local statistics distort the global
// ranking (experiment C9).
package rank

import (
	"container/heap"
	"math"
	"sort"
	"sync"

	"dwr/internal/index"
)

// Result is one ranked document: the external document ID and its score.
type Result struct {
	Doc   int
	Score float64
}

// StatsSource supplies the collection statistics that parameterize BM25.
// It abstracts over "this partition's local statistics" and "global
// statistics aggregated by the two-round broker protocol".
type StatsSource struct {
	NumDocs   int
	AvgDocLen float64
	DF        map[string]int
}

// FromIndex builds a StatsSource from a single index's own statistics.
func FromIndex(ix *index.Index) StatsSource {
	st := ix.LocalStats(nil)
	return StatsSource{NumDocs: st.NumDocs, AvgDocLen: ix.AvgDocLen(), DF: st.DF}
}

// FromGlobal builds a StatsSource from merged partition statistics.
func FromGlobal(st index.Stats) StatsSource {
	avg := 0.0
	if st.NumDocs > 0 {
		avg = float64(st.TotalLen) / float64(st.NumDocs)
	}
	return StatsSource{NumDocs: st.NumDocs, AvgDocLen: avg, DF: st.DF}
}

// Scorer computes BM25 scores.
type Scorer struct {
	K1, B float64
	Stats StatsSource
}

// NewScorer returns a BM25 scorer with the standard parameters
// (k1 = 1.2, b = 0.75) over the given statistics. These are the same
// constants the index bakes its quantized block-max metadata against, so
// a default scorer gets the fast quantized bounds in pruned evaluation.
func NewScorer(stats StatsSource) *Scorer {
	return &Scorer{K1: index.DefaultBM25K1, B: index.DefaultBM25B, Stats: stats}
}

// IDF returns the BM25 inverse document frequency of term, floored at a
// small positive value so very common terms still contribute.
func (s *Scorer) IDF(term string) float64 {
	df := s.Stats.DF[term]
	n := s.Stats.NumDocs
	idf := math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
	if idf < 1e-6 {
		idf = 1e-6
	}
	return idf
}

// Term scores one term occurrence: tf within a document of length
// docLen, with precomputed idf.
func (s *Scorer) Term(tf int32, docLen int, idf float64) float64 {
	k1, b := s.K1, s.B
	norm := 1 - b + b*float64(docLen)/math.Max(s.Stats.AvgDocLen, 1)
	return idf * float64(tf) * (k1 + 1) / (float64(tf) + k1*norm)
}

// EvalStats records the resource usage of one evaluation — the units the
// Webber term-vs-document partitioning comparison is measured in (C6).
type EvalStats struct {
	PostingsDecoded int   // postings touched
	ListsAccessed   int   // posting lists opened (disk seeks in the paper's terms)
	BytesRead       int64 // encoded posting bytes of the lists accessed
	BytesDecoded    int64 // encoded bytes actually decoded (blocks touched)
	// FinalThreshold is the score floor the evaluation ended with: the
	// k-th best score found, or the seed threshold it was started from if
	// nothing beat that. 0 when the evaluation held fewer than k results
	// and was unseeded. A broker can feed it forward as the seed of later
	// partition evaluations (see EvaluateTopKSeeded).
	FinalThreshold float64
}

// evalCursor pairs a posting iterator with its term's precomputed IDF.
type evalCursor struct {
	it  *index.Iterator
	idf float64
}

// orHead tracks one cursor's current document in the OR merge.
type orHead struct {
	doc int32
	i   int
}

// evalScratch is the pooled per-evaluation working set: iterator
// storage, cursor and merge-head slices, the dedup set, and the top-k
// heap buffer. The broker evaluates partitions on parallel goroutines
// and every query allocates these afresh otherwise, so reuse here cuts
// most of the per-query garbage on the hot path. Nothing handed back to
// callers may alias the scratch (topK.results copies).
type evalScratch struct {
	its     []index.Iterator
	cursors []evalCursor
	heads   []orHead
	seen    map[string]bool
	uniq    []string
	heap    resultHeap
	// Pruned-evaluation working set (see prune.go).
	pcs    []pruneCursor
	tfs    []int32
	order  []int
	prefix []float64
}

var evalPool = sync.Pool{New: func() interface{} {
	return &evalScratch{seen: make(map[string]bool)}
}}

// dedup keeps the first occurrence of each term, in query order, in the
// scratch's reusable buffer.
func (sc *evalScratch) dedup(terms []string) []string {
	clear(sc.seen)
	sc.uniq = sc.uniq[:0]
	for _, t := range terms {
		if !sc.seen[t] {
			sc.seen[t] = true
			sc.uniq = append(sc.uniq, t)
		}
	}
	return sc.uniq
}

// iters returns n stable Iterator slots. Allocating up-front (never
// appending afterwards) keeps the *Iterator pointers held by cursors
// valid for the whole evaluation.
func (sc *evalScratch) iters(n int) []index.Iterator {
	if cap(sc.its) < n {
		sc.its = make([]index.Iterator, n)
	}
	return sc.its[:n]
}

// PostingsProvider supplies posting iterators for evaluation. Index
// satisfies it directly; index.CachedPostings satisfies it backed by a
// partition-level posting-list cache. Implementations must match
// Index.PostingsInto semantics exactly — same postings in the same
// order, nil (with *it untouched) for absent terms — so that cached and
// uncached evaluation produce byte-identical results.
type PostingsProvider interface {
	PostingsInto(it *index.Iterator, term string) *index.Iterator
}

// EvaluateOR scores the disjunction of the query terms over ix
// (document-at-a-time) and returns the top k results by score. Ties
// break by ascending external ID so rankings are deterministic.
func EvaluateOR(ix *index.Index, s *Scorer, terms []string, k int) ([]Result, EvalStats) {
	return EvaluateORFrom(ix, ix, s, terms, k)
}

// EvaluateORFrom is EvaluateOR with the posting lists served by pp —
// which may be the index itself or a posting-list cache over it — while
// statistics (DocLen, ExtID, PostingBytes) always come from ix. The
// EvalStats accounting charges the same costs either way: a cache hit
// changes where bytes come from, not what the query logically touched.
func EvaluateORFrom(pp PostingsProvider, ix *index.Index, s *Scorer, terms []string, k int) ([]Result, EvalStats) {
	var es EvalStats
	sc := evalPool.Get().(*evalScratch)
	defer evalPool.Put(sc)
	uniq := sc.dedup(terms)
	its := sc.iters(len(uniq))
	sc.cursors = sc.cursors[:0]
	for _, t := range uniq {
		it := pp.PostingsInto(&its[len(sc.cursors)], t)
		if it == nil {
			continue
		}
		es.BytesRead += int64(ix.PostingBytes(t))
		es.ListsAccessed++
		sc.cursors = append(sc.cursors, evalCursor{it: it, idf: s.IDF(t)})
	}
	cursors := sc.cursors
	if len(cursors) == 0 {
		return nil, es
	}
	// Advance all iterators merging by doc.
	sc.heads = sc.heads[:0]
	for i := range cursors {
		if cursors[i].it.Next() {
			es.PostingsDecoded++
			sc.heads = append(sc.heads, orHead{doc: cursors[i].it.Posting().Doc, i: i})
		}
	}
	tk := &topK{k: k, rs: sc.heap[:0]}
	heads := sc.heads
	for len(heads) > 0 {
		// Find minimum doc among heads.
		minDoc := heads[0].doc
		for _, h := range heads[1:] {
			if h.doc < minDoc {
				minDoc = h.doc
			}
		}
		// Score minDoc and compact the surviving heads in place; the
		// write index trails the read index, so order is preserved and
		// no per-round slice is allocated.
		score := 0.0
		w := 0
		for _, h := range heads {
			c := &cursors[h.i]
			if h.doc == minDoc {
				score += s.Term(c.it.Posting().TF, ix.DocLen(minDoc), c.idf)
				if c.it.Next() {
					es.PostingsDecoded++
					heads[w] = orHead{doc: c.it.Posting().Doc, i: h.i}
					w++
				}
			} else {
				heads[w] = h
				w++
			}
		}
		tk.offer(Result{Doc: ix.ExtID(minDoc), Score: score})
		heads = heads[:w]
	}
	for i := range cursors {
		es.BytesDecoded += cursors[i].it.BytesDecoded()
	}
	sc.heap = tk.rs[:0]
	return tk.results(), es
}

// EvaluateAND scores the conjunction of the query terms, using SkipTo on
// the rarest list to drive the others — the access pattern whose cost
// skip pointers exist to reduce.
func EvaluateAND(ix *index.Index, s *Scorer, terms []string, k int) ([]Result, EvalStats) {
	return EvaluateANDFrom(ix, ix, s, terms, k)
}

// EvaluateANDFrom is EvaluateAND over a PostingsProvider; see
// EvaluateORFrom for the contract.
func EvaluateANDFrom(pp PostingsProvider, ix *index.Index, s *Scorer, terms []string, k int) ([]Result, EvalStats) {
	var es EvalStats
	sc := evalPool.Get().(*evalScratch)
	defer evalPool.Put(sc)
	uniq := sc.dedup(terms)
	its := sc.iters(len(uniq))
	sc.cursors = sc.cursors[:0]
	for _, t := range uniq {
		it := pp.PostingsInto(&its[len(sc.cursors)], t)
		if it == nil {
			return nil, es // one missing term empties a conjunction
		}
		es.BytesRead += int64(ix.PostingBytes(t))
		es.ListsAccessed++
		sc.cursors = append(sc.cursors, evalCursor{it: it, idf: s.IDF(t)})
	}
	cursors := sc.cursors
	if len(cursors) == 0 {
		return nil, es
	}
	// Rarest list first minimizes skips.
	sort.Slice(cursors, func(i, j int) bool { return cursors[i].it.Count() < cursors[j].it.Count() })
	driver := cursors[0]
	tk := &topK{k: k, rs: sc.heap[:0]}
	finish := func() []Result {
		for i := range cursors {
			es.BytesDecoded += cursors[i].it.BytesDecoded()
		}
		sc.heap = tk.rs[:0]
		return tk.results()
	}
	if !driver.it.Next() {
		return finish(), es
	}
	es.PostingsDecoded++
	for {
		doc := driver.it.Posting().Doc
		match := true
		for i := 1; i < len(cursors); i++ {
			if !cursors[i].it.SkipTo(doc) {
				return finish(), es
			}
			es.PostingsDecoded++
			if cursors[i].it.Posting().Doc != doc {
				match = false
				break
			}
		}
		if match {
			score := 0.0
			for i := range cursors {
				score += s.Term(cursors[i].it.Posting().TF, ix.DocLen(doc), cursors[i].idf)
			}
			tk.offer(Result{Doc: ix.ExtID(doc), Score: score})
		}
		if !driver.it.Next() {
			return finish(), es
		}
		es.PostingsDecoded++
	}
}

func dedup(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	out := terms[:0:0]
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// topK keeps the k best results (max score, tie: min doc).
type topK struct {
	k  int
	rs resultHeap
}

type resultHeap []Result

// Less orders the heap as a min-heap on (score, then descending doc) so
// the worst kept result is at the root.
func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) offer(r Result) {
	if t.k <= 0 {
		return
	}
	if len(t.rs) < t.k {
		heap.Push(&t.rs, r)
		return
	}
	worst := t.rs[0]
	if r.Score > worst.Score || (r.Score == worst.Score && r.Doc < worst.Doc) {
		t.rs[0] = r
		heap.Fix(&t.rs, 0)
	}
}

func (t *topK) results() []Result {
	out := make([]Result, len(t.rs))
	copy(out, t.rs)
	SortResults(out)
	return out
}

// SortResults orders results by descending score, ascending doc.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Doc < rs[j].Doc
	})
}

// MergeResults merges per-partition result lists into a global top k —
// the broker's merge step in a document-partitioned system. Scores must
// be comparable across lists (i.e. computed from the same statistics)
// for the merge to equal a centralized ranking; comparing the two is
// exactly experiment C9.
func MergeResults(k int, lists ...[]Result) []Result {
	tk := newTopK(k)
	for _, l := range lists {
		for _, r := range l {
			tk.offer(r)
		}
	}
	return tk.results()
}

// TopKMerger is an incremental MergeResults for brokers that gather
// partition answers in waves: results are offered as they arrive and the
// running k-th best score is readable between waves as a threshold seed.
// Because topK.offer implements a total order (score desc, doc asc) and
// document partitions are disjoint, the final Results are identical to a
// single MergeResults over all lists regardless of Add order.
type TopKMerger struct {
	tk topK
}

// NewTopKMerger returns a merger keeping the k best results.
func NewTopKMerger(k int) *TopKMerger { return &TopKMerger{tk: topK{k: k}} }

// Add offers one partition's result list to the merge.
func (m *TopKMerger) Add(rs []Result) {
	for _, r := range rs {
		m.tk.offer(r)
	}
}

// Threshold returns the current k-th best score. ok is false until k
// results have been merged — before that there is no safe lower bound on
// the global k-th score.
func (m *TopKMerger) Threshold() (float64, bool) {
	if m.tk.k <= 0 || len(m.tk.rs) < m.tk.k {
		return 0, false
	}
	return m.tk.rs[0].Score, true
}

// Results returns the merged top k (score desc, doc asc). The merger
// remains usable afterwards.
func (m *TopKMerger) Results() []Result { return m.tk.results() }

// MergeResultsDedup merges result lists that may contain the SAME
// document (replicas of one collection), keeping each document's best
// score once. Use MergeResults for disjoint document partitions.
func MergeResultsDedup(k int, lists ...[]Result) []Result {
	best := make(map[int]float64)
	for _, l := range lists {
		for _, r := range l {
			if s, ok := best[r.Doc]; !ok || r.Score > s {
				best[r.Doc] = r.Score
			}
		}
	}
	tk := newTopK(k)
	for doc, score := range best {
		tk.offer(Result{Doc: doc, Score: score})
	}
	return tk.results()
}

// Overlap returns |A∩B| / k for the top-k documents of two rankings —
// the result-set agreement measure the paper proposes for quantifying
// the local-vs-global statistics effect.
func Overlap(a, b []Result, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(a) {
		k = len(a)
	}
	if k > len(b) {
		k = len(b)
	}
	if k == 0 {
		return 0
	}
	seen := make(map[int]bool, k)
	for _, r := range a[:k] {
		seen[r.Doc] = true
	}
	inter := 0
	for _, r := range b[:k] {
		if seen[r.Doc] {
			inter++
		}
	}
	return float64(inter) / float64(k)
}

// KendallTau computes Kendall's tau-a between two rankings restricted to
// their common documents. 1 = identical order, -1 = reversed. It returns
// 1 when fewer than two documents are shared.
func KendallTau(a, b []Result) float64 {
	posA := make(map[int]int, len(a))
	for i, r := range a {
		posA[r.Doc] = i
	}
	var common []int // positions in a, ordered by b
	for _, r := range b {
		if p, ok := posA[r.Doc]; ok {
			common = append(common, p)
		}
	}
	n := len(common)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if common[i] < common[j] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	return float64(concordant-discordant) / float64(n*(n-1)/2)
}
