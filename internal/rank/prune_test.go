package rank

import (
	"math/rand"
	"reflect"
	"testing"

	"dwr/internal/index"
)

// pruneCorpus builds a seeded Zipf-ish corpus large enough that dynamic
// pruning actually skips blocks: 2000 docs over a 600-term vocabulary
// with frequency rank t appearing roughly 1/t as often.
func pruneCorpus(seed int64, opts index.Options) *index.Index {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.4, 1.0, 599)
	b := index.NewBuilder(opts)
	for d := 0; d < 2000; d++ {
		n := 20 + rng.Intn(60)
		terms := make([]string, n)
		for i := range terms {
			terms[i] = "t" + string(rune('a'+int(z.Uint64())%26)) + string(rune('a'+int(z.Uint64())%26))
		}
		b.AddDocument(d, terms)
	}
	return index.MustBuild(b)
}

func pruneQueries(rng *rand.Rand, ix *index.Index, n int) [][]string {
	terms := ix.Terms()
	qs := make([][]string, n)
	for i := range qs {
		q := make([]string, 1+rng.Intn(4))
		for j := range q {
			q[j] = terms[rng.Intn(len(terms))]
		}
		qs[i] = q
	}
	return qs
}

// TestPrunedEquivalenceExhaustive pins the rank-identity guarantee: for
// every pruning mode, block size, and k, the pruned top-k equals the
// exhaustive top-k exactly — same documents, same order, bitwise-equal
// scores (survivor scores are recomputed in term order; see pruneSlack).
func TestPrunedEquivalenceExhaustive(t *testing.T) {
	for _, bs := range []int{0, 8, 64} {
		opts := index.DefaultOptions()
		opts.BlockSize = bs
		ix := pruneCorpus(11, opts)
		s := NewScorer(FromIndex(ix))
		rng := rand.New(rand.NewSource(12))
		queries := pruneQueries(rng, ix, 150)
		for _, mode := range []Pruning{PruneMaxScore, PruneBlockMax} {
			for _, k := range []int{1, 3, 10, 100} {
				for qi, q := range queries {
					want, _ := EvaluateOR(ix, s, q, k)
					got, _ := EvaluateTopK(ix, s, q, k, mode)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("bs=%d mode=%d k=%d query %d %v:\nexhaustive %v\npruned     %v",
							bs, mode, k, qi, q, want, got)
					}
				}
			}
		}
	}
}

// TestPrunedEquivalenceNonDefaultScorer exercises the analytic-bound
// fallback: a scorer with non-default BM25 parameters (and with global
// statistics whose average document length differs from the build-time
// one) invalidates the quantized block bounds, so pruning must bound
// blocks from maxTF/minLen and still match the exhaustive ranking.
func TestPrunedEquivalenceNonDefaultScorer(t *testing.T) {
	ix := pruneCorpus(13, index.DefaultOptions())
	rng := rand.New(rand.NewSource(14))
	queries := pruneQueries(rng, ix, 100)
	st := FromIndex(ix)
	st.AvgDocLen *= 1.5 // simulates global stats differing from local
	scorers := []*Scorer{
		{K1: 0.9, B: 0.4, Stats: FromIndex(ix)},
		{K1: index.DefaultBM25K1, B: index.DefaultBM25B, Stats: st},
	}
	for si, s := range scorers {
		for _, mode := range []Pruning{PruneMaxScore, PruneBlockMax} {
			for _, q := range queries {
				want, _ := EvaluateOR(ix, s, q, 10)
				got, _ := EvaluateTopK(ix, s, q, 10, mode)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("scorer %d mode=%d query %v:\nexhaustive %v\npruned     %v",
						si, mode, q, want, got)
				}
			}
		}
	}
}

// TestPrunedEquivalenceWithCache runs the same equivalence through a
// posting-list cache provider: cached encoded blocks must not change the
// ranking, and repeated evaluation must hit the cache.
func TestPrunedEquivalenceWithCache(t *testing.T) {
	ix := pruneCorpus(15, index.DefaultOptions())
	s := NewScorer(FromIndex(ix))
	rng := rand.New(rand.NewSource(16))
	queries := pruneQueries(rng, ix, 80)
	pc := index.NewPostingsCache(1 << 22)
	hits := 0
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			cp := pc.Bind(ix)
			want, _ := EvaluateORFrom(ix, ix, s, q, 10)
			got, _ := EvaluateTopKFrom(cp, ix, s, q, 10, PruneBlockMax)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("query %v: cached pruned differs:\n%v\n%v", q, want, got)
			}
			hits += cp.Hits
		}
	}
	if hits == 0 {
		t.Fatal("pruned evaluation never hit the posting cache")
	}
}

// TestPrunedEquivalenceFallbacks: PruneNone and k<=0 route to the
// exhaustive evaluator; empty, missing-term, and single-term queries
// behave identically across modes.
func TestPrunedEquivalenceFallbacks(t *testing.T) {
	ix := pruneCorpus(17, index.DefaultOptions())
	s := NewScorer(FromIndex(ix))
	term := ix.Terms()[0]
	for _, q := range [][]string{nil, {"absent"}, {term}, {term, term, "absent"}} {
		want, _ := EvaluateOR(ix, s, q, 10)
		for _, mode := range []Pruning{PruneNone, PruneMaxScore, PruneBlockMax} {
			got, _ := EvaluateTopK(ix, s, q, 10, mode)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("mode %d query %v: %v vs %v", mode, q, want, got)
			}
		}
	}
	if rs, _ := EvaluateTopK(ix, s, []string{term}, 0, PruneBlockMax); len(rs) != 0 {
		t.Fatalf("k=0 returned %v", rs)
	}
}

// TestPrunedDecodesFewerBytes is the point of the whole exercise: on
// top-10 queries the block-max evaluator must decode strictly fewer
// posting bytes than the exhaustive one, without changing results.
func TestPrunedDecodesFewerBytes(t *testing.T) {
	ix := pruneCorpus(19, index.DefaultOptions())
	s := NewScorer(FromIndex(ix))
	rng := rand.New(rand.NewSource(20))
	var exhaustive, pruned int64
	for _, q := range pruneQueries(rng, ix, 200) {
		_, e1 := EvaluateOR(ix, s, q, 10)
		_, e2 := EvaluateTopK(ix, s, q, 10, PruneBlockMax)
		exhaustive += e1.BytesDecoded
		pruned += e2.BytesDecoded
	}
	if exhaustive == 0 {
		t.Fatal("exhaustive evaluation decoded nothing")
	}
	if pruned >= exhaustive {
		t.Fatalf("block-max decoded %d bytes, exhaustive %d — no savings", pruned, exhaustive)
	}
	t.Logf("decoded bytes: exhaustive %d, block-max %d (%.1f%%)",
		exhaustive, pruned, 100*float64(pruned)/float64(exhaustive))
}
