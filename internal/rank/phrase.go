package rank

import (
	"dwr/internal/index"
)

// Phrase search (Section 5, Communication): matching "terms appearing
// consecutively" requires within-document positions. In a
// document-partitioned system positions never leave a server; in a
// pipelined term-partitioned system the candidate positions travel with
// the accumulator, which is the communication blow-up the paper warns
// about ("the position information needs to be compressed").

// PhraseMatches returns, for every document containing the terms as a
// consecutive phrase, the phrase-start positions. The intersection is
// commutative: candidate starts = ∩ᵢ (positions(termᵢ) − i), which is
// what lets a pipelined engine process terms in server order rather than
// phrase order.
func PhraseMatches(ix *index.Index, terms []string) (map[int][]int32, EvalStats) {
	var es EvalStats
	if len(terms) == 0 {
		return nil, es
	}
	var starts map[int][]int32 // ext doc -> candidate phrase starts
	for i, t := range terms {
		it := ix.PostingsWithPositions(t)
		if it == nil {
			return nil, es
		}
		es.ListsAccessed++
		es.BytesRead += int64(ix.PostingBytes(t))
		cur := make(map[int][]int32)
		for it.Next() {
			es.PostingsDecoded++
			p := it.Posting()
			ext := ix.ExtID(p.Doc)
			if starts != nil {
				if _, ok := starts[ext]; !ok {
					continue // doc already eliminated
				}
			}
			adj := make([]int32, 0, len(p.Pos))
			for _, pos := range p.Pos {
				s := pos - int32(i)
				if s >= 0 {
					adj = append(adj, s)
				}
			}
			if len(adj) > 0 {
				cur[ext] = adj
			}
		}
		if starts == nil {
			starts = cur
			continue
		}
		starts = intersectStarts(starts, cur)
		if len(starts) == 0 {
			return map[int][]int32{}, es
		}
	}
	return starts, es
}

// intersectStarts keeps, per document, the start positions present in
// both maps (both sides sorted ascending, as positions are).
func intersectStarts(a, b map[int][]int32) map[int][]int32 {
	out := make(map[int][]int32)
	for doc, as := range a {
		bs, ok := b[doc]
		if !ok {
			continue
		}
		var merged []int32
		i, j := 0, 0
		for i < len(as) && j < len(bs) {
			switch {
			case as[i] == bs[j]:
				merged = append(merged, as[i])
				i++
				j++
			case as[i] < bs[j]:
				i++
			default:
				j++
			}
		}
		if len(merged) > 0 {
			out[doc] = merged
		}
	}
	return out
}

// EvaluatePhrase ranks documents containing the exact phrase. The phrase
// is scored as a pseudo-term: tf = number of phrase occurrences, idf =
// the rarest constituent term's idf (a standard surrogate, exact enough
// for cross-engine comparison because every engine uses the same rule).
func EvaluatePhrase(ix *index.Index, s *Scorer, terms []string, k int) ([]Result, EvalStats) {
	starts, es := PhraseMatches(ix, terms)
	if len(starts) == 0 {
		return nil, es
	}
	idf := phraseIDF(s, terms)
	tk := newTopK(k)
	for ext, ss := range starts {
		doc := ix.InternalID(ext)
		if doc < 0 {
			continue
		}
		score := s.Term(int32(len(ss)), ix.DocLen(doc), idf)
		tk.offer(Result{Doc: ext, Score: score})
	}
	return tk.results(), es
}

// phraseIDF returns the idf of the phrase's rarest constituent.
func phraseIDF(s *Scorer, terms []string) float64 {
	best := 0.0
	for _, t := range terms {
		if idf := s.IDF(t); idf > best {
			best = idf
		}
	}
	return best
}

// EncodedPositionsSize returns the byte size of delta+varint encoding
// the (sorted) position list — the compressed wire format the paper
// suggests for shipped positions. Raw size is 4 bytes per position.
func EncodedPositionsSize(positions []int32) int {
	size := 0
	var prev int32
	for _, p := range positions {
		size += uvarintLen(uint64(p - prev))
		prev = p
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
