package rank

import (
	"math"

	"dwr/internal/index"
)

// Pruning selects the top-k evaluation strategy for disjunctive queries.
type Pruning int

const (
	// PruneNone evaluates every candidate document exhaustively.
	PruneNone Pruning = iota
	// PruneMaxScore partitions lists into essential and non-essential by
	// score upper bound (Turtle & Flood): documents appearing only in
	// non-essential lists are never scored once the top-k threshold
	// exceeds their combined bound, and non-essential probes abandon
	// early.
	PruneMaxScore
	// PruneBlockMax is PruneMaxScore plus block-level skipping (Ding &
	// Suel's Block-Max WAND idea): when the current candidates' per-block
	// upper bounds cannot beat the threshold, the evaluator skips past
	// whole blocks without decoding them.
	PruneBlockMax
)

// pruneSlack is the relative score tolerance of the pruned evaluators: a
// document is abandoned only when its upper bound is below threshold ×
// (1 − pruneSlack). Survivor scores are recomputed in original term
// order, so every returned score is bitwise-identical to the exhaustive
// evaluator's; the slack only guards the skip decisions against
// accumulation-order rounding (~1e-16 relative) in the partial sums the
// bounds are built from. Documents whose true score lies within
// pruneSlack of the running threshold are therefore always scored, never
// pruned — this is the documented tolerance of the rank-identity
// guarantee.
const pruneSlack = 1e-9

// pruneCursor is one term's posting cursor plus the precomputed bounds
// dynamic pruning decides with.
type pruneCursor struct {
	it    *index.Iterator
	idf   float64
	ub    float64 // list-wide score upper bound
	doc   int32   // current document, valid while !done
	tf    int32
	quant bool // quantized block bounds valid for this scorer
	done  bool
}

// blockUB bounds every score in the cursor's current block: the
// quantized bound when the scorer matches the constants the index was
// encoded with, otherwise the analytic bound from the block's maxTF and
// minimum document length (Scorer.Term is monotone increasing in tf and
// decreasing in docLen, so this is exact for any parameterization).
func (c *pruneCursor) blockUB(s *Scorer, b int) float64 {
	if c.quant {
		return c.idf * c.it.BlockMaxSat(b)
	}
	return s.Term(c.it.BlockMaxTF(b), int(c.it.BlockMinDocLen(b)), c.idf)
}

// listUB bounds every score in the list: the maximum block bound.
func (c *pruneCursor) listUB(s *Scorer) float64 {
	var ub float64
	for b := 0; b < c.it.NumBlocks(); b++ {
		if u := c.blockUB(s, b); u > ub {
			ub = u
		}
	}
	return ub
}

// Competitive reports whether a score upper bound can still beat a
// running top-k threshold under the evaluators' documented pruneSlack
// tolerance. Brokers use it to decide whether a partition (bounded by
// its query upper bound) can contribute to the global top k at all.
func Competitive(bound, threshold float64) bool {
	return bound >= threshold-pruneSlack*math.Abs(threshold)
}

// EvaluateTopK scores the disjunction of the query terms over ix and
// returns the top k results by score, using the selected dynamic-pruning
// strategy. Results are rank-identical to EvaluateOR (see pruneSlack for
// the tolerance argument); only the work done differs.
func EvaluateTopK(ix *index.Index, s *Scorer, terms []string, k int, mode Pruning) ([]Result, EvalStats) {
	return EvaluateTopKSeededFrom(ix, ix, s, terms, k, mode, 0)
}

// EvaluateTopKFrom is EvaluateTopK over a PostingsProvider; see
// EvaluateORFrom for the provider contract.
func EvaluateTopKFrom(pp PostingsProvider, ix *index.Index, s *Scorer, terms []string, k int, mode Pruning) ([]Result, EvalStats) {
	return EvaluateTopKSeededFrom(pp, ix, s, terms, k, mode, 0)
}

// EvaluateTopKSeeded is EvaluateTopK started from a seed threshold; see
// EvaluateTopKSeededFrom.
func EvaluateTopKSeeded(ix *index.Index, s *Scorer, terms []string, k int, mode Pruning, seed float64) ([]Result, EvalStats) {
	return EvaluateTopKSeededFrom(ix, ix, s, terms, k, mode, seed)
}

// EvaluateTopKSeededFrom is EvaluateTopKFrom with the pruning threshold
// seeded at seed instead of -Inf (seed <= 0 means unseeded; BM25 scores
// are strictly positive). The caller must guarantee seed is a true lower
// bound on the global k-th best score — a distributed broker's running
// k-th merged score qualifies. Safety: the evaluator only abandons
// documents whose score upper bound is below threshold×(1−pruneSlack),
// so a document scoring exactly seed still survives (its bound is ≥ seed
// > seed−slack) and every pruned document scores strictly below the
// global k-th — it could never enter the global top k. Documents this
// partition does return keep scores bitwise-identical to exhaustive
// evaluation; the list may hold fewer than k entries when the partition
// has fewer than k seed-beating documents, which a merging broker by
// construction never misses.
func EvaluateTopKSeededFrom(pp PostingsProvider, ix *index.Index, s *Scorer, terms []string, k int, mode Pruning, seed float64) ([]Result, EvalStats) {
	if mode == PruneNone || k <= 0 {
		rs, es := EvaluateORFrom(pp, ix, s, terms, k)
		if len(rs) >= k && k > 0 {
			es.FinalThreshold = rs[k-1].Score
		}
		return rs, es
	}
	seedThr := math.Inf(-1)
	if seed > 0 {
		seedThr = seed - pruneSlack*seed
	}
	var es EvalStats
	sc := evalPool.Get().(*evalScratch)
	defer evalPool.Put(sc)
	uniq := sc.dedup(terms)
	its := sc.iters(len(uniq))
	sc.pcs = sc.pcs[:0]
	for _, t := range uniq {
		it := pp.PostingsInto(&its[len(sc.pcs)], t)
		if it == nil {
			continue
		}
		es.BytesRead += int64(ix.PostingBytes(t))
		es.ListsAccessed++
		c := pruneCursor{it: it, idf: s.IDF(t)}
		c.quant = it.QuantValidFor(s.K1, s.B, s.Stats.AvgDocLen)
		c.ub = c.listUB(s)
		sc.pcs = append(sc.pcs, c)
	}
	cursors := sc.pcs
	finish := func(tk *topK) ([]Result, EvalStats) {
		for i := range cursors {
			es.BytesDecoded += cursors[i].it.BytesDecoded()
		}
		if seed > 0 {
			es.FinalThreshold = seed
		}
		if len(tk.rs) >= k && tk.rs[0].Score > es.FinalThreshold {
			es.FinalThreshold = tk.rs[0].Score
		}
		sc.heap = tk.rs[:0]
		return tk.results(), es
	}
	tk := &topK{k: k, rs: sc.heap[:0]}
	if len(cursors) == 0 {
		if seed > 0 {
			es.FinalThreshold = seed
		}
		return nil, es
	}
	for i := range cursors {
		if cursors[i].it.Next() {
			es.PostingsDecoded++
			p := cursors[i].it.Posting()
			cursors[i].doc, cursors[i].tf = p.Doc, p.TF
		} else {
			cursors[i].done = true
		}
	}

	// Cursor indices ordered by ascending list upper bound (index
	// tiebreak keeps the order deterministic); prefix[j] bounds the total
	// contribution of the j+1 lowest-impact lists. Both are fixed for the
	// whole evaluation — only the essential/non-essential boundary m moves
	// as the threshold rises.
	if cap(sc.order) < len(cursors) {
		sc.order = make([]int, len(cursors))
		sc.prefix = make([]float64, len(cursors))
		sc.tfs = make([]int32, len(cursors))
	}
	order, prefix, tfs := sc.order[:len(cursors)], sc.prefix[:len(cursors)], sc.tfs[:len(cursors)]
	for i := range order {
		order[i] = i
	}
	for swapped := true; swapped; { // tiny n: insertion-ordered bubble pass
		swapped = false
		for i := 1; i < len(order); i++ {
			a, b := order[i-1], order[i]
			if cursors[a].ub > cursors[b].ub || (cursors[a].ub == cursors[b].ub && a > b) {
				order[i-1], order[i] = b, a
				swapped = true
			}
		}
	}
	sum := 0.0
	for j, i := range order {
		sum += cursors[i].ub
		prefix[j] = sum
	}

	m := 0 // cursors order[:m] are non-essential
	for {
		// The threshold is the tighter of the heap floor and the caller's
		// seed, both widened by pruneSlack (the heap floor overtakes the
		// seed once k locally-found documents beat it).
		thr := seedThr
		if len(tk.rs) >= k {
			t := tk.rs[0].Score
			if ht := t - pruneSlack*math.Abs(t); ht > thr {
				thr = ht
			}
		}
		for m < len(order) && prefix[m] < thr {
			m++
		}
		if m == len(order) {
			// Even all lists together cannot reach the threshold.
			return finish(tk)
		}
		// Candidate: minimum current document over essential cursors.
		d := int32(math.MaxInt32)
		alive := false
		for _, i := range order[m:] {
			if c := &cursors[i]; !c.done {
				alive = true
				if c.doc < d {
					d = c.doc
				}
			}
		}
		if !alive {
			return finish(tk)
		}

		if mode == PruneBlockMax && !math.IsInf(thr, -1) {
			// Block-level check: bound the candidate by the current blocks
			// of the essential cursors positioned at it. If non-competitive,
			// every document up to the nearest of (a) those blocks' last
			// documents and (b) the next essential cursor's document is
			// equally bounded, so skip the whole range without decoding.
			bound := 0.0
			if m > 0 {
				bound = prefix[m-1]
			}
			blockLast := int32(math.MaxInt32)
			next := int32(math.MaxInt32)
			for _, i := range order[m:] {
				c := &cursors[i]
				if c.done {
					continue
				}
				if c.doc == d {
					bound += c.blockUB(s, c.it.CurrentBlock())
					if l := c.it.BlockLastDoc(c.it.CurrentBlock()); l < blockLast {
						blockLast = l
					}
				} else if c.doc < next {
					next = c.doc
				}
			}
			if bound < thr {
				target := blockLast + 1
				if next < target {
					target = next
				}
				if target <= d {
					target = d + 1
				}
				for _, i := range order[m:] {
					c := &cursors[i]
					if c.done || c.doc != d {
						continue
					}
					if c.it.SkipTo(target) {
						es.PostingsDecoded++
						p := c.it.Posting()
						c.doc, c.tf = p.Doc, p.TF
					} else {
						c.done = true
					}
				}
				continue
			}
		}

		// Score the candidate: essential contributions first, then probe
		// non-essential lists in descending bound order, abandoning as soon
		// as the remaining bound cannot lift the partial sum past the
		// threshold.
		docLen := ix.DocLen(d)
		for i := range tfs {
			tfs[i] = 0
		}
		partial := 0.0
		for _, i := range order[m:] {
			if c := &cursors[i]; !c.done && c.doc == d {
				tfs[i] = c.tf
				partial += s.Term(c.tf, docLen, c.idf)
			}
		}
		abandoned := false
		for j := m - 1; j >= 0; j-- {
			if partial+prefix[j] < thr {
				abandoned = true
				break
			}
			c := &cursors[order[j]]
			if c.done {
				continue
			}
			if c.doc < d {
				if !c.it.SkipTo(d) {
					c.done = true
					continue
				}
				es.PostingsDecoded++
				p := c.it.Posting()
				c.doc, c.tf = p.Doc, p.TF
			}
			if c.doc == d {
				tfs[order[j]] = c.tf
				partial += s.Term(c.tf, docLen, c.idf)
			}
		}
		if !abandoned {
			// Recompute the survivor's score in original term order so it is
			// bitwise-identical to the exhaustive evaluator's sum.
			score := 0.0
			for i := range cursors {
				if tfs[i] > 0 {
					score += s.Term(tfs[i], docLen, cursors[i].idf)
				}
			}
			tk.offer(Result{Doc: ix.ExtID(d), Score: score})
		}
		for _, i := range order[m:] {
			c := &cursors[i]
			if c.done || c.doc != d {
				continue
			}
			if c.it.Next() {
				es.PostingsDecoded++
				p := c.it.Posting()
				c.doc, c.tf = p.Doc, p.TF
			} else {
				c.done = true
			}
		}
	}
}
