package rank

import (
	"testing"

	"dwr/internal/index"
)

func phraseIndex() *index.Index {
	b := index.NewBuilder(index.DefaultOptions())
	b.AddDocument(1, []string{"the", "quick", "brown", "fox"})
	b.AddDocument(2, []string{"quick", "brown", "quick", "brown", "cat"})
	b.AddDocument(3, []string{"brown", "quick"}) // reversed: no match
	b.AddDocument(4, []string{"quick", "x", "brown"})
	return index.MustBuild(b)
}

func TestPhraseMatches(t *testing.T) {
	ix := phraseIndex()
	starts, es := PhraseMatches(ix, []string{"quick", "brown"})
	if len(starts) != 2 {
		t.Fatalf("matched %d docs, want 2 (docs 1 and 2): %v", len(starts), starts)
	}
	if got := starts[1]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("doc 1 starts = %v, want [1]", got)
	}
	if got := starts[2]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("doc 2 starts = %v, want [0 2]", got)
	}
	if es.PostingsDecoded == 0 || es.ListsAccessed != 2 {
		t.Fatalf("stats not recorded: %+v", es)
	}
}

func TestPhraseRepeatedTerm(t *testing.T) {
	b := index.NewBuilder(index.DefaultOptions())
	b.AddDocument(1, []string{"a", "b", "a"})
	b.AddDocument(2, []string{"a", "b", "c"})
	ix := index.MustBuild(b)
	starts, _ := PhraseMatches(ix, []string{"a", "b", "a"})
	if len(starts) != 1 || len(starts[1]) != 1 || starts[1][0] != 0 {
		t.Fatalf("phrase 'a b a' matches = %v, want doc 1 at 0", starts)
	}
}

func TestPhraseMissingTerm(t *testing.T) {
	ix := phraseIndex()
	starts, _ := PhraseMatches(ix, []string{"quick", "zzz"})
	if len(starts) != 0 {
		t.Fatalf("phrase with unknown term matched %v", starts)
	}
	rs, _ := EvaluatePhrase(ix, NewScorer(FromIndex(ix)), []string{"quick", "zzz"}, 10)
	if rs != nil {
		t.Fatalf("EvaluatePhrase returned %v", rs)
	}
}

func TestEvaluatePhraseRanking(t *testing.T) {
	ix := phraseIndex()
	s := NewScorer(FromIndex(ix))
	rs, _ := EvaluatePhrase(ix, s, []string{"quick", "brown"}, 10)
	if len(rs) != 2 {
		t.Fatalf("phrase results = %v", rs)
	}
	// Doc 2 has two phrase occurrences in length 5; doc 1 one in length 4:
	// doc 2 must rank first (higher tf dominates).
	if rs[0].Doc != 2 {
		t.Fatalf("ranking = %v, want doc 2 first", rs)
	}
}

func TestPhraseSingleTerm(t *testing.T) {
	ix := phraseIndex()
	starts, _ := PhraseMatches(ix, []string{"quick"})
	if len(starts) != 4 {
		t.Fatalf("single-term phrase matched %d docs, want 4", len(starts))
	}
}

func TestEncodedPositionsSize(t *testing.T) {
	// Small deltas: one byte each.
	if got := EncodedPositionsSize([]int32{1, 2, 3, 4}); got != 4 {
		t.Fatalf("size = %d, want 4", got)
	}
	// Raw would be 16 bytes; compression must win on sorted positions.
	if got := EncodedPositionsSize([]int32{10, 300, 301, 305}); got >= 16 {
		t.Fatalf("size = %d, want < 16", got)
	}
	if got := EncodedPositionsSize(nil); got != 0 {
		t.Fatalf("empty size = %d", got)
	}
}
