package rank

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dwr/internal/index"
)

// bigIndex builds an index large enough that evaluation cycles the
// pooled scratch through realloc/reuse paths.
func bigIndex(seed int64, n, v int) *index.Index {
	rng := rand.New(rand.NewSource(seed))
	b := index.NewBuilder(index.DefaultOptions())
	for d := 0; d < n; d++ {
		l := 10 + rng.Intn(40)
		terms := make([]string, l)
		for j := range terms {
			terms[j] = fmt.Sprintf("t%03d", rng.Intn(v))
		}
		b.AddDocument(d, terms)
	}
	return index.MustBuild(b)
}

// TestPooledScratchReuseDeterministic re-runs the same query mix many
// times: pooled scratch must never leak state between evaluations, so
// every repetition returns the identical answer.
func TestPooledScratchReuseDeterministic(t *testing.T) {
	ix := bigIndex(9, 400, 120)
	s := NewScorer(FromIndex(ix))
	queries := [][]string{
		{"t001"},
		{"t001", "t002", "t003"},
		{"t005", "t005", "t005"}, // duplicates exercise the dedup map
		{"t010", "missing", "t011"},
		{"t020", "t021", "t022", "t023", "t024"},
	}
	type key struct {
		q    int
		conj bool
	}
	want := make(map[key][]Result)
	for qi, q := range queries {
		rsOR, _ := EvaluateOR(ix, s, q, 10)
		rsAND, _ := EvaluateAND(ix, s, q, 10)
		want[key{qi, false}] = rsOR
		want[key{qi, true}] = rsAND
	}
	for rep := 0; rep < 50; rep++ {
		for qi, q := range queries {
			rsOR, _ := EvaluateOR(ix, s, q, 10)
			if !reflect.DeepEqual(want[key{qi, false}], rsOR) {
				t.Fatalf("rep %d query %v OR diverged after scratch reuse", rep, q)
			}
			rsAND, _ := EvaluateAND(ix, s, q, 10)
			if !reflect.DeepEqual(want[key{qi, true}], rsAND) {
				t.Fatalf("rep %d query %v AND diverged after scratch reuse", rep, q)
			}
		}
	}
}

// TestConcurrentEvaluation runs OR and AND evaluation from many
// goroutines against one index; under -race this pins that the pooled
// scratch is goroutine-local and the index read path is lock-free safe.
func TestConcurrentEvaluation(t *testing.T) {
	ix := bigIndex(13, 500, 100)
	s := NewScorer(FromIndex(ix))
	queries := make([][]string, 40)
	rng := rand.New(rand.NewSource(14))
	for i := range queries {
		n := 1 + rng.Intn(4)
		q := make([]string, n)
		for j := range q {
			q[j] = fmt.Sprintf("t%03d", rng.Intn(100))
		}
		queries[i] = q
	}
	want := make([][]Result, len(queries))
	for i, q := range queries {
		want[i], _ = EvaluateOR(ix, s, q, 10)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				for i, q := range queries {
					rs, _ := EvaluateOR(ix, s, q, 10)
					if !reflect.DeepEqual(want[i], rs) {
						t.Errorf("concurrent OR of %v diverged", q)
						return
					}
					EvaluateAND(ix, s, q, 10)
				}
			}
		}()
	}
	wg.Wait()
}
