package queueing

import (
	"math"
	"math/rand"
	"testing"

	"dwr/internal/randx"
)

func TestCapacityBoundFigure6(t *testing.T) {
	// The exact numbers behind Figure 6: with c=150 threads, capacity is
	// 15,000 req/s at a 10 ms service time and 1,500 req/s at 100 ms —
	// "it drops from 15 to 2 [thousand] as the average service time goes
	// from 10ms to 100ms".
	if got := CapacityBound(150, 0.010); got != 15000 {
		t.Fatalf("bound(150, 10ms) = %v, want 15000", got)
	}
	if got := CapacityBound(150, 0.100); got != 1500 {
		t.Fatalf("bound(150, 100ms) = %v, want 1500", got)
	}
	prev := math.Inf(1)
	for s := 0.01; s <= 0.1; s += 0.01 {
		b := CapacityBound(150, s)
		if b >= prev {
			t.Fatal("capacity bound not decreasing in service time")
		}
		prev = b
	}
	if !math.IsInf(CapacityBound(10, 0), 1) {
		t.Fatal("zero service time should give infinite bound")
	}
}

func TestErlangC(t *testing.T) {
	// M/M/1 sanity: P(wait) = rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); math.Abs(got-rho) > 1e-9 {
			t.Fatalf("ErlangC(1, %v) = %v, want %v", rho, got, rho)
		}
	}
	if got := ErlangC(10, 10); got != 1 {
		t.Fatalf("saturated ErlangC = %v, want 1", got)
	}
	if got := ErlangC(10, 12); got != 1 {
		t.Fatalf("oversaturated ErlangC = %v, want 1", got)
	}
	// More servers at the same load factor wait less.
	if ErlangC(2, 1.0) <= ErlangC(10, 5.0) {
		// rho = 0.5 in both; pooled capacity should reduce waiting...
		// note: ErlangC(2,1.0) is rho=0.5 with 2 servers, ErlangC(10,5)
		// rho=0.5 with 10: the latter must be smaller.
		t.Fatal("Erlang C did not decrease with server pooling")
	}
}

func TestKingmanMatchesMMcSimulation(t *testing.T) {
	// M/M/c: ca2 = cs2 = 1, so Kingman reduces to exact M/M/c waiting.
	rng := randx.New(1)
	const (
		c      = 4
		lambda = 30.0
		es     = 0.1 // rho = 0.75
	)
	pred := KingmanWait(lambda, c, es, 1, 1)
	sim := Simulate(rng, c, 200000, ExpArrivals(lambda), ExpService(es))
	if sim.MeanWait < pred*0.85 || sim.MeanWait > pred*1.15 {
		t.Fatalf("simulated wait %.4fs vs Kingman %.4fs (>15%% off)", sim.MeanWait, pred)
	}
}

func TestKingmanSaturation(t *testing.T) {
	if !math.IsInf(KingmanWait(100, 1, 0.02, 1, 1), 1) {
		t.Fatal("Kingman at rho=2 should be infinite")
	}
}

func TestSimulationStableBelowBound(t *testing.T) {
	rng := randx.New(2)
	c := 50
	es := 0.02
	bound := CapacityBound(c, es) // 2500/s
	res := Simulate(rng, c, 50000, ExpArrivals(bound*0.7), LogNormalService(es, 2))
	if res.MeanWait > es {
		t.Fatalf("stable system mean wait %.4fs exceeds a service time", res.MeanWait)
	}
	if res.Utilization < 0.5 || res.Utilization > 0.85 {
		t.Fatalf("utilization %.2f, want ≈0.7", res.Utilization)
	}
}

func TestSimulationUnstableAboveBound(t *testing.T) {
	rng := randx.New(3)
	c := 50
	es := 0.02
	bound := CapacityBound(c, es)
	stable := Simulate(rng, c, 30000, ExpArrivals(bound*0.7), ExpService(es))
	unstable := Simulate(rng, c, 30000, ExpArrivals(bound*1.3), ExpService(es))
	if unstable.MeanWait < 10*stable.MeanWait {
		t.Fatalf("above-bound wait %.4fs not clearly worse than below-bound %.4fs",
			unstable.MeanWait, stable.MeanWait)
	}
	if unstable.MaxQueueLen < 10*stable.MaxQueueLen {
		t.Fatalf("above-bound queue %d not clearly deeper than below-bound %d",
			unstable.MaxQueueLen, stable.MaxQueueLen)
	}
}

func TestSimulateSingleServerFIFO(t *testing.T) {
	// Deterministic check: arrivals every 1s, service 0.4s, c=1 → no
	// waiting at all.
	rng := randx.New(4)
	res := Simulate(rng, 1, 1000,
		func(*rand.Rand) float64 { return 1 }, func(*rand.Rand) float64 { return 0.4 })
	if res.MeanWait != 0 {
		t.Fatalf("D/D/1 under capacity waited %.4fs", res.MeanWait)
	}
	// Service 1.5s > interarrival: every job waits more than the last.
	res = Simulate(rng, 1, 100,
		func(*rand.Rand) float64 { return 1 }, func(*rand.Rand) float64 { return 1.5 })
	if res.MeanWait <= 0 || res.MaxQueueLen == 0 {
		t.Fatalf("over-capacity D/D/1 shows no queueing: %+v", res)
	}
}

func TestLogNormalServiceMean(t *testing.T) {
	rng := randx.New(5)
	gen := LogNormalService(0.05, 2)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += gen(rng)
	}
	if mean := sum / n; mean < 0.045 || mean > 0.055 {
		t.Fatalf("log-normal service mean %.4f, want 0.05", mean)
	}
}
