// Package queueing implements the queueing-theoretic front-end model of
// Section 5 (Figure 6): a front-end server is a G/G/c system whose c
// servers are the worker threads (c = 150 for a typical Apache); the
// maximum sustainable query arrival rate is bounded by c divided by the
// mean per-request service time, which collapses from 15,000 req/s at a
// 10 ms service time to 1,500 req/s at 100 ms. The analytic bound is
// accompanied by an Erlang-C/Kingman waiting-time approximation and a
// discrete-event G/G/c simulator that verifies stability on either side
// of the bound.
package queueing

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"dwr/internal/metrics"
	"dwr/internal/randx"
)

// CapacityBound returns the maximum arrival rate (requests per second) a
// G/G/c system with c servers and the given mean service time (seconds)
// can sustain: λ < c / E[S]. Above it the queue grows without bound.
func CapacityBound(c int, meanServiceSec float64) float64 {
	if meanServiceSec <= 0 {
		return math.Inf(1)
	}
	return float64(c) / meanServiceSec
}

// ErlangC returns the probability an arriving job waits in an M/M/c
// queue with offered load a = λ·E[S] and c servers. It returns 1 when
// the system is at or beyond saturation.
func ErlangC(c int, a float64) float64 {
	if a >= float64(c) {
		return 1
	}
	// Compute via the stable iterative form of the Erlang B recursion,
	// then convert to Erlang C.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// KingmanWait approximates the mean queueing delay (seconds, excluding
// service) of a G/G/c queue with arrival rate lambda, mean service time
// es, and squared coefficients of variation ca2 (inter-arrival) and cs2
// (service): the Allen–Cunneen formula. It returns +Inf at or beyond
// saturation.
func KingmanWait(lambda float64, c int, es, ca2, cs2 float64) float64 {
	rho := lambda * es / float64(c)
	if rho >= 1 {
		return math.Inf(1)
	}
	a := lambda * es
	pWait := ErlangC(c, a)
	wqMMc := pWait * es / (float64(c) * (1 - rho))
	return wqMMc * (ca2 + cs2) / 2
}

// SimResult summarizes a G/G/c simulation run.
type SimResult struct {
	Completed   int
	MeanWait    float64 // mean time in queue (s)
	P99Wait     float64
	MeanInSys   float64 // wait + service
	Utilization float64 // busy server-time / total server-time
	MaxQueueLen int
}

// Simulate runs a FIFO G/G/c discrete-event simulation over n arrivals.
// interarrival and service draw successive random variates in seconds.
func Simulate(rng *rand.Rand, c, n int, interarrival, service func(*rand.Rand) float64) SimResult {
	if c < 1 {
		c = 1
	}
	free := make(serverHeap, c) // all free at t=0
	heap.Init(&free)

	var res SimResult
	var wait, inSys metrics.Sample
	busy := 0.0
	t := 0.0
	var lastDepart float64

	arrivals := make([]float64, n)
	for i := range arrivals {
		t += interarrival(rng)
		arrivals[i] = t
	}
	maxQ := 0
	// Jobs start in arrival order on the earliest-free server. With FIFO
	// dispatch the start times are nondecreasing, which the queue-length
	// binary search below relies on.
	starts := make([]float64, n)
	for i, at := range arrivals {
		sf := free[0]
		start := at
		if sf > start {
			start = sf
		}
		s := service(rng)
		starts[i] = start
		free[0] = start + s
		heap.Fix(&free, 0)
		w := start - at
		wait.Add(w)
		inSys.Add(w + s)
		busy += s
		if start+s > lastDepart {
			lastDepart = start + s
		}
		// Queue length at this arrival: earlier jobs not yet started.
		idx := sort.SearchFloat64s(starts[:i], at)
		for idx < i && starts[idx] <= at {
			idx++
		}
		if q := i - idx; q > maxQ {
			maxQ = q
		}
	}
	res.Completed = n
	res.MeanWait = wait.Mean()
	res.P99Wait = wait.Quantile(0.99)
	res.MeanInSys = inSys.Mean()
	if lastDepart > 0 {
		res.Utilization = busy / (lastDepart * float64(c))
	}
	res.MaxQueueLen = maxQ
	return res
}

// serverHeap is a min-heap of server free-at times.
type serverHeap []float64

func (h serverHeap) Len() int            { return len(h) }
func (h serverHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h serverHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *serverHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *serverHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// ExpArrivals returns an exponential inter-arrival generator for rate
// lambda (per second). Draws go through internal/randx so every
// simulator input comes from the same seeded-sampler family the rest of
// the system uses.
func ExpArrivals(lambda float64) func(*rand.Rand) float64 {
	return func(rng *rand.Rand) float64 { return randx.Exp(rng, 1/lambda) }
}

// ExpService returns an exponential service-time generator with the
// given mean (seconds).
func ExpService(mean float64) func(*rand.Rand) float64 {
	return func(rng *rand.Rand) float64 { return randx.Exp(rng, mean) }
}

// LogNormalService returns a log-normal service generator with the given
// mean and squared coefficient of variation — service times in search
// front-ends are heavier-tailed than exponential.
func LogNormalService(mean, cs2 float64) func(*rand.Rand) float64 {
	sigma2 := math.Log(1 + cs2)
	mu := math.Log(mean) - sigma2/2
	sigma := math.Sqrt(sigma2)
	return func(rng *rand.Rand) float64 {
		return randx.LogNormal(rng, mu, sigma)
	}
}
