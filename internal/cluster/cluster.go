// Package cluster provides the simulated multi-site distributed system
// underneath the query-processing experiments of Section 5: sites in
// geographic regions connected by a wide-area network, LAN-connected
// servers within a site, per-link latency models, message and byte
// accounting, and a renewal-process failure injector whose output
// reproduces the availability behaviour of Figure 5 (the BIRN multi-site
// measurements).
//
// Time is virtual throughout: latencies are in milliseconds of simulated
// time, outages in hours, so month-scale availability studies run in
// milliseconds of wall time.
package cluster

import (
	"math/rand"
	"sort"

	"dwr/internal/randx"
)

// Network models communication latency. Within a site messages take
// LAN-scale delays (hundreds of microseconds, per the paper); across
// sites they take WAN-scale delays (tens to hundreds of milliseconds)
// that grow with region distance.
type Network struct {
	LANMeanMs  float64 // mean intra-site latency
	WANBaseMs  float64 // base inter-site latency (same region)
	WANPerHop  float64 // added per unit of region distance
	Regions    int
	rng        *rand.Rand
	msgs       int
	bytesMoved int64
}

// NewNetwork creates a network model with typical values: 0.3 ms LAN,
// 40 ms WAN base, +35 ms per region distance.
func NewNetwork(seed int64, regions int) *Network {
	return &Network{
		LANMeanMs: 0.3,
		WANBaseMs: 40,
		WANPerHop: 35,
		Regions:   regions,
		rng:       randx.New(seed),
	}
}

// Latency draws the latency in milliseconds of one message between two
// sites' regions, recording the message and its payload size.
func (n *Network) Latency(fromRegion, toRegion int, bytes int) float64 {
	n.msgs++
	n.bytesMoved += int64(bytes)
	if fromRegion == toRegion {
		return n.LANMeanMs * randx.LogNormal(n.rng, 0, 0.3)
	}
	d := fromRegion - toRegion
	if d < 0 {
		d = -d
	}
	base := n.WANBaseMs + n.WANPerHop*float64(d)
	return base * randx.LogNormal(n.rng, 0, 0.2)
}

// Messages returns the number of messages sent so far.
func (n *Network) Messages() int { return n.msgs }

// BytesMoved returns the total payload bytes transferred.
func (n *Network) BytesMoved() int64 { return n.bytesMoved }

// Outage is one interval during which a site is unreachable, in hours
// from the start of the observation.
type Outage struct {
	Start, End float64
}

// FailureModel is a renewal process for site outages: exponential time
// between failures, log-normal repair durations (short blips are common,
// long outages rare — the heavy tail that makes Figure 5's sub-99% bars
// non-empty).
type FailureModel struct {
	MTBFHours   float64 // mean time between failures
	RepairMu    float64 // log-normal location of repair hours
	RepairSigma float64 // log-normal scale of repair hours
}

// DefaultFailureModel matches the BIRN-like behaviour of Figure 5: a
// failure roughly every 2–3 weeks and repairs averaging a few hours with
// a heavy tail.
func DefaultFailureModel() FailureModel {
	return FailureModel{MTBFHours: 400, RepairMu: 0.7, RepairSigma: 1.2}
}

// GenOutages draws the outage intervals of one site over horizonHours.
func GenOutages(rng *rand.Rand, m FailureModel, horizonHours float64) []Outage {
	var out []Outage
	t := randx.Exp(rng, m.MTBFHours)
	for t < horizonHours {
		repair := randx.LogNormal(rng, m.RepairMu, m.RepairSigma)
		end := t + repair
		if end > horizonHours {
			end = horizonHours
		}
		out = append(out, Outage{Start: t, End: end})
		t = end + randx.Exp(rng, m.MTBFHours)
	}
	return out
}

// Availability returns the fraction of [from, to) during which a site
// with the given outages was up.
func Availability(outages []Outage, from, to float64) float64 {
	if to <= from {
		return 1
	}
	down := 0.0
	for _, o := range outages {
		s, e := o.Start, o.End
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			down += e - s
		}
	}
	return 1 - down/(to-from)
}

// UpAt reports whether a site with the given outages is up at hour t.
func UpAt(outages []Outage, t float64) bool {
	// Outages are sorted by construction; binary search the candidates.
	i := sort.Search(len(outages), func(i int) bool { return outages[i].End > t })
	return i >= len(outages) || outages[i].Start > t
}

// Site is one group of collocated servers.
type Site struct {
	ID      int
	Region  int
	Outages []Outage
}

// NewSites creates n sites spread round-robin over the network's regions,
// each with independently drawn outages over horizonHours.
func NewSites(seed int64, n, regions int, m FailureModel, horizonHours float64) []*Site {
	sites := make([]*Site, n)
	for i := range sites {
		rng := randx.New(seed + int64(i)*101)
		sites[i] = &Site{
			ID:      i,
			Region:  i % regions,
			Outages: GenOutages(rng, m, horizonHours),
		}
	}
	return sites
}

// MonthlyAvailability returns per-site availability for each 30-day
// month within the horizon — the measurement underlying Figure 5.
func MonthlyAvailability(sites []*Site, months int) [][]float64 {
	const hoursPerMonth = 30 * 24
	out := make([][]float64, months)
	for mth := 0; mth < months; mth++ {
		from := float64(mth) * hoursPerMonth
		to := from + hoursPerMonth
		row := make([]float64, len(sites))
		for i, s := range sites {
			row[i] = Availability(s.Outages, from, to)
		}
		out[mth] = row
	}
	return out
}

// UnavailabilityHistogram reproduces Figure 5's bars: for each
// availability threshold, the average (over months) number of sites
// whose monthly availability fell strictly below the threshold.
func UnavailabilityHistogram(monthly [][]float64, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	if len(monthly) == 0 {
		return out
	}
	for ti, th := range thresholds {
		total := 0
		for _, row := range monthly {
			for _, a := range row {
				if a < th {
					total++
				}
			}
		}
		out[ti] = float64(total) / float64(len(monthly))
	}
	return out
}
