package cluster

import (
	"testing"
	"testing/quick"

	"dwr/internal/randx"
)

func TestNetworkLatencyScales(t *testing.T) {
	n := NewNetwork(1, 3)
	var lan, wan1, wan2 float64
	const reps = 500
	for i := 0; i < reps; i++ {
		lan += n.Latency(0, 0, 100)
		wan1 += n.Latency(0, 1, 100)
		wan2 += n.Latency(0, 2, 100)
	}
	lan, wan1, wan2 = lan/reps, wan1/reps, wan2/reps
	if lan >= wan1 || wan1 >= wan2 {
		t.Fatalf("latency ordering broken: lan=%.2f wan1=%.2f wan2=%.2f", lan, wan1, wan2)
	}
	if lan > 1 {
		t.Fatalf("LAN latency %.2f ms, want sub-millisecond", lan)
	}
	if wan1 < 10 {
		t.Fatalf("WAN latency %.2f ms, want tens of ms", wan1)
	}
	if n.Messages() != 3*reps {
		t.Fatalf("messages = %d, want %d", n.Messages(), 3*reps)
	}
	if n.BytesMoved() != int64(3*reps*100) {
		t.Fatalf("bytes = %d", n.BytesMoved())
	}
}

func TestGenOutagesWithinHorizon(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		outages := GenOutages(rng, DefaultFailureModel(), 1000)
		prevEnd := 0.0
		for _, o := range outages {
			if o.Start < prevEnd || o.End <= o.Start || o.End > 1000 {
				return false
			}
			prevEnd = o.End
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAvailability(t *testing.T) {
	outages := []Outage{{Start: 10, End: 20}, {Start: 50, End: 55}}
	if got := Availability(outages, 0, 100); got != 0.85 {
		t.Fatalf("availability = %v, want 0.85", got)
	}
	if got := Availability(outages, 30, 40); got != 1 {
		t.Fatalf("availability of clean window = %v", got)
	}
	if got := Availability(outages, 10, 20); got != 0 {
		t.Fatalf("availability inside outage = %v", got)
	}
	if got := Availability(nil, 0, 100); got != 1 {
		t.Fatalf("no outages availability = %v", got)
	}
	if got := Availability(outages, 50, 50); got != 1 {
		t.Fatalf("degenerate window = %v", got)
	}
}

func TestUpAt(t *testing.T) {
	outages := []Outage{{Start: 10, End: 20}, {Start: 50, End: 55}}
	cases := []struct {
		t    float64
		want bool
	}{{5, true}, {15, false}, {25, true}, {52, false}, {60, true}}
	for _, c := range cases {
		if got := UpAt(outages, c.t); got != c.want {
			t.Errorf("UpAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	// 16 sites, 8 months, BIRN-like failure model: the first bar
	// (availability < 100%) should cover most of the 16 sites, and the
	// bars must be monotonically decreasing in the threshold.
	sites := NewSites(42, 16, 4, DefaultFailureModel(), 8*30*24)
	monthly := MonthlyAvailability(sites, 8)
	thresholds := []float64{1.0, 0.999, 0.995, 0.99, 0.98, 0.95}
	bars := UnavailabilityHistogram(monthly, thresholds)
	if bars[0] < 6 || bars[0] > 16 {
		t.Fatalf("first bar (availability<100%%) = %.1f sites, want most of 16", bars[0])
	}
	for i := 1; i < len(bars); i++ {
		if bars[i] > bars[i-1] {
			t.Fatalf("bars not decreasing: %v", bars)
		}
	}
	if bars[len(bars)-1] >= bars[0] {
		t.Fatalf("histogram flat: %v", bars)
	}
}

func TestMonthlyAvailabilityDimensions(t *testing.T) {
	sites := NewSites(1, 5, 2, DefaultFailureModel(), 3*30*24)
	monthly := MonthlyAvailability(sites, 3)
	if len(monthly) != 3 || len(monthly[0]) != 5 {
		t.Fatalf("dimensions %dx%d, want 3x5", len(monthly), len(monthly[0]))
	}
	for _, row := range monthly {
		for _, a := range row {
			if a < 0 || a > 1 {
				t.Fatalf("availability %v out of range", a)
			}
		}
	}
}

func TestUnavailabilityHistogramEmpty(t *testing.T) {
	out := UnavailabilityHistogram(nil, []float64{1.0})
	if out[0] != 0 {
		t.Fatal("empty input should give zeros")
	}
}

func TestSitesRegionsRoundRobin(t *testing.T) {
	sites := NewSites(1, 6, 3, DefaultFailureModel(), 100)
	for i, s := range sites {
		if s.Region != i%3 {
			t.Fatalf("site %d region %d", i, s.Region)
		}
	}
}
