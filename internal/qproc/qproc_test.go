package qproc

import (
	"fmt"
	"math/rand"
	"testing"

	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/randx"
	"dwr/internal/rank"
	"dwr/internal/selection"
)

// corpus builds n docs over a Zipf vocabulary of v terms.
func corpus(seed int64, n, v int) []index.Doc {
	rng := rand.New(rand.NewSource(seed))
	z := randx.NewZipf(v, 1.0)
	docs := make([]index.Doc, n)
	for i := range docs {
		l := 20 + rng.Intn(80)
		terms := make([]string, l)
		for j := range terms {
			terms[j] = fmt.Sprintf("w%04d", z.Draw(rng))
		}
		docs[i] = index.Doc{Ext: i, Terms: terms}
	}
	return docs
}

// zipfQueries builds q queries of 1-3 terms from the same distribution.
func zipfQueries(seed int64, q, v int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	z := randx.NewZipf(v, 1.0)
	out := make([][]string, q)
	for i := range out {
		n := 1 + rng.Intn(3)
		terms := make([]string, n)
		for j := range terms {
			terms[j] = fmt.Sprintf("w%04d", z.Draw(rng))
		}
		out[i] = terms
	}
	return out
}

func centralIndex(docs []index.Doc) *index.Index {
	b := index.NewBuilder(index.DefaultOptions())
	for _, d := range docs {
		b.AddDocument(d.Ext, d.Terms)
	}
	return index.MustBuild(b)
}

func newDocEngine(t *testing.T, docs []index.Doc, k int, options ...Option) *DocEngine {
	t.Helper()
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	dp := partition.RoundRobinDocs(ids, k)
	e, err := NewDocEngine(index.DefaultOptions(), docs, dp, options...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sameRanking(t *testing.T, a, b []rank.Result, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Doc != b[i].Doc {
			t.Fatalf("%s: rank %d doc %d vs %d", label, i, a[i].Doc, b[i].Doc)
		}
		if d := a[i].Score - b[i].Score; d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s: rank %d score %v vs %v", label, i, a[i].Score, b[i].Score)
		}
	}
}

func TestDocEngineTwoRoundEqualsCentral(t *testing.T) {
	docs := corpus(1, 400, 300)
	central := centralIndex(docs)
	cs := rank.NewScorer(rank.FromIndex(central))
	e := newDocEngine(t, docs, 4)
	for _, q := range zipfQueries(2, 40, 300) {
		want, _ := rank.EvaluateOR(central, cs, q, 10)
		got := e.Query(q, DocQueryOptions{K: 10, Stats: GlobalTwoRound})
		sameRanking(t, want, got.Results, fmt.Sprintf("query %v", q))
		if got.Rounds != 2 {
			t.Fatalf("two-round protocol reported %d rounds", got.Rounds)
		}
	}
}

func TestDocEnginePrecomputedEqualsTwoRound(t *testing.T) {
	docs := corpus(3, 300, 200)
	e := newDocEngine(t, docs, 4)
	for _, q := range zipfQueries(4, 30, 200) {
		a := e.Query(q, DocQueryOptions{K: 10, Stats: GlobalTwoRound})
		b := e.Query(q, DocQueryOptions{K: 10, Stats: GlobalPrecomputed})
		sameRanking(t, a.Results, b.Results, fmt.Sprintf("query %v", q))
		if b.Rounds != 1 {
			t.Fatalf("precomputed stats took %d rounds", b.Rounds)
		}
	}
}

func TestDocEngineLocalStatsDiverge(t *testing.T) {
	// With small skewed partitions, local DF differs from global DF and
	// some rankings must change — the C9 phenomenon. We use a topically
	// clustered partition to amplify the skew.
	docs := corpus(5, 400, 100)
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	// Contiguous chunks rather than round-robin: more DF skew.
	dp := partition.DocPartition{K: 4, Parts: make([][]int, 4), Assign: make(map[int]int)}
	for i, id := range ids {
		p := i * 4 / len(ids)
		dp.Parts[p] = append(dp.Parts[p], id)
		dp.Assign[id] = p
	}
	e, err := NewDocEngine(index.DefaultOptions(), docs, dp)
	if err != nil {
		t.Fatal(err)
	}
	sumOverlap, n := 0.0, 0
	for _, q := range zipfQueries(6, 60, 100) {
		g := e.Query(q, DocQueryOptions{K: 10, Stats: GlobalTwoRound})
		l := e.Query(q, DocQueryOptions{K: 10, Stats: LocalOnly})
		if len(g.Results) == 0 {
			continue
		}
		sumOverlap += rank.Overlap(g.Results, l.Results, 10)
		n++
	}
	if n == 0 {
		t.Fatal("no queries evaluated")
	}
	avg := sumOverlap / float64(n)
	if avg >= 0.9999 {
		t.Fatalf("local-only ranking identical to global (overlap %.4f); statistics skew not exercised", avg)
	}
	if avg < 0.3 {
		t.Fatalf("local-only overlap %.3f implausibly low", avg)
	}
}

func TestTermEngineEqualsCentral(t *testing.T) {
	docs := corpus(7, 300, 200)
	central := centralIndex(docs)
	cs := rank.NewScorer(rank.FromIndex(central))
	terms := central.Terms()
	tp := partition.BinPackTerms(terms, func(t string) float64 {
		return float64(central.DF(t))
	}, 4)
	e, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range zipfQueries(8, 40, 200) {
		want, _ := rank.EvaluateOR(central, cs, q, 10)
		got := e.Query(q, 10)
		sameRanking(t, want, got.Results, fmt.Sprintf("query %v", q))
	}
}

func TestTermEngineContactsOnlyOwningServers(t *testing.T) {
	docs := corpus(9, 200, 150)
	central := centralIndex(docs)
	tp := partition.BinPackTerms(central.Terms(), func(t string) float64 { return 1 }, 8)
	e, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range zipfQueries(10, 30, 150) {
		got := e.Query(q, 10)
		if got.ServersContacted > len(q) {
			t.Fatalf("query %v contacted %d servers (> #terms)", q, got.ServersContacted)
		}
	}
	// Document engine in broadcast mode always contacts all 8.
	de := newDocEngine(t, docs, 8)
	qr := de.Query([]string{"w0001"}, DocQueryOptions{K: 10})
	if qr.ServersContacted != 8 {
		t.Fatalf("doc engine broadcast contacted %d of 8", qr.ServersContacted)
	}
}

func TestFigure2BusyLoadShape(t *testing.T) {
	// Replay the same Zipf workload through both architectures. The
	// document-partitioned engine's per-server busy load should be near
	// flat; the pipelined term-partitioned engine's should be visibly
	// imbalanced (Figure 2).
	docs := corpus(11, 600, 400)
	queries := zipfQueries(12, 400, 400)
	central := centralIndex(docs)

	de := newDocEngine(t, docs, 8)
	tp := partition.RandomTerms(rand.New(rand.NewSource(1)), central.Terms(), 8)
	te, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		de.Query(q, DocQueryOptions{K: 10})
		te.Query(q, 10)
	}
	docIm := metrics.NewImbalance(de.BusyMs())
	termIm := metrics.NewImbalance(te.BusyMs())
	if docIm.CV >= termIm.CV {
		t.Fatalf("doc-partitioned CV %.3f not below term-partitioned CV %.3f", docIm.CV, termIm.CV)
	}
	if docIm.MaxOver > 1.4 {
		t.Fatalf("doc-partitioned MaxOver %.3f; should hug the mean line", docIm.MaxOver)
	}
	if termIm.MaxOver < 1.3 {
		t.Fatalf("term-partitioned MaxOver %.3f; expected visible imbalance", termIm.MaxOver)
	}
}

func TestWebberResourceShape(t *testing.T) {
	// C6: term partitioning reads fewer posting bytes per query (only
	// the query's terms, once) than document partitioning (every
	// partition reads its slice of every term).
	docs := corpus(13, 400, 300)
	central := centralIndex(docs)
	queries := zipfQueries(14, 200, 300)

	de := newDocEngine(t, docs, 8)
	tp := partition.BinPackTerms(central.Terms(), func(t string) float64 {
		return float64(central.DF(t))
	}, 8)
	te, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	var docServers, termServers int
	for _, q := range queries {
		d := de.Query(q, DocQueryOptions{K: 10})
		tr := te.Query(q, 10)
		docServers += d.ServersContacted
		termServers += tr.ServersContacted
	}
	if termServers >= docServers {
		t.Fatalf("term engine used %d server-contacts vs doc %d; expected fewer", termServers, docServers)
	}
}

func TestDocEngineSelectionReducesWork(t *testing.T) {
	docs := corpus(15, 400, 200)
	e := newDocEngine(t, docs, 8)
	var stats []index.Stats
	for p := 0; p < e.K(); p++ {
		stats = append(stats, e.PartIndex(p).LocalStats(nil))
	}
	sel := selection.NewCORI(stats)
	q := []string{"w0003", "w0010"}
	full := e.Query(q, DocQueryOptions{K: 10, Stats: GlobalPrecomputed})
	selected := e.Query(q, DocQueryOptions{K: 10, Stats: GlobalPrecomputed, Selector: sel, SelectN: 3})
	if selected.ServersContacted != 3 {
		t.Fatalf("selection contacted %d servers, want 3", selected.ServersContacted)
	}
	if selected.PostingsDecoded >= full.PostingsDecoded {
		t.Fatalf("selection decoded %d postings, broadcast %d", selected.PostingsDecoded, full.PostingsDecoded)
	}
	// Selected results must be a subset of the full ranking's documents'
	// scores (same global stats, fewer partitions).
	fullScores := map[int]float64{}
	for _, r := range full.Results {
		fullScores[r.Doc] = r.Score
	}
	for _, r := range selected.Results {
		if s, ok := fullScores[r.Doc]; ok {
			if d := s - r.Score; d > 1e-9 || d < -1e-9 {
				t.Fatalf("doc %d scored differently under selection", r.Doc)
			}
		}
	}
}

func TestDocEngineFailedProcessorDegrades(t *testing.T) {
	docs := corpus(17, 300, 200)
	e := newDocEngine(t, docs, 4)
	q := []string{"w0001"}
	full := e.Query(q, DocQueryOptions{K: 50, Stats: GlobalPrecomputed})
	e.SetDown(2, true)
	deg := e.Query(q, DocQueryOptions{K: 50, Stats: GlobalPrecomputed})
	if !deg.Degraded {
		t.Fatal("query with a down processor not flagged degraded")
	}
	if deg.ServersContacted != 3 {
		t.Fatalf("contacted %d servers with one down", deg.ServersContacted)
	}
	if len(deg.Results) >= len(full.Results) && len(full.Results) > 0 {
		// Partition 2's docs are missing, so the degraded answer should
		// not contain any doc assigned to partition 2.
		for _, r := range deg.Results {
			if e.Partition().Assign[r.Doc] == 2 {
				t.Fatalf("degraded answer contains doc %d from the failed partition", r.Doc)
			}
		}
	}
	e.SetDown(2, false)
	restored := e.Query(q, DocQueryOptions{K: 50, Stats: GlobalPrecomputed})
	if restored.Degraded {
		t.Fatal("recovered engine still degraded")
	}
	sameRanking(t, full.Results, restored.Results, "after recovery")
}

func TestMergeTreeEqualsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var lists [][]rank.Result
	for p := 0; p < 16; p++ {
		var l []rank.Result
		for i := 0; i < 10; i++ {
			l = append(l, rank.Result{Doc: p*100 + i, Score: rng.Float64()})
		}
		rank.SortResults(l)
		lists = append(lists, l)
	}
	flat := rank.MergeResults(10, lists...)
	tree, maxMerged := MergeTree(10, 4, lists)
	sameRanking(t, flat, tree, "tree vs flat")
	if flatCost := FlatMergeCost(lists); maxMerged >= flatCost {
		t.Fatalf("hierarchy bottleneck %d not below flat %d", maxMerged, flatCost)
	}
}

func TestMergeTreeEdgeCases(t *testing.T) {
	if r, m := MergeTree(10, 4, nil); r != nil || m != 0 {
		t.Fatalf("empty merge = %v, %d", r, m)
	}
	single := [][]rank.Result{{{Doc: 1, Score: 2}}}
	r, _ := MergeTree(10, 4, single)
	if len(r) != 1 || r[0].Doc != 1 {
		t.Fatalf("single-list merge = %v", r)
	}
}

// phraseCorpus builds docs with a controlled phrase.
func phraseCorpus() []index.Doc {
	docs := corpus(23, 250, 150)
	// Inject a known phrase into some documents.
	for i := 0; i < len(docs); i += 7 {
		docs[i].Terms = append(docs[i].Terms, "exact", "phrase", "here")
	}
	return docs
}

func TestPhraseEnginesMatchCentral(t *testing.T) {
	docs := phraseCorpus()
	central := centralIndex(docs)
	query := []string{"exact", "phrase", "here"}

	de := newDocEngine(t, docs, 4)
	gs := rank.NewScorer(rank.FromGlobal(de.GlobalStats()))
	want, _ := rank.EvaluatePhrase(central, gs, query, 10)
	if len(want) == 0 {
		t.Fatal("central phrase evaluation found nothing; corpus broken")
	}

	dres := de.QueryPhrase(query, 10)
	sameRanking(t, want, dres.Results, "doc-partitioned phrase")

	tp := partition.BinPackTerms(central.Terms(), func(s string) float64 {
		return float64(central.DF(s))
	}, 4)
	te, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	tres := te.QueryPhrase(query, 10, true)
	sameRanking(t, want, tres.Results, "term-partitioned phrase")
}

func TestPhrasePositionShippingCost(t *testing.T) {
	docs := phraseCorpus()
	central := centralIndex(docs)
	query := []string{"exact", "phrase", "here"}

	de := newDocEngine(t, docs, 4)
	// Force the phrase terms onto distinct servers so positions must ship.
	tp := partition.TermPartition{K: 4, Assign: map[string]int{}}
	for i, term := range central.Terms() {
		tp.Assign[term] = i % 4
	}
	tp.Assign["exact"], tp.Assign["phrase"], tp.Assign["here"] = 0, 1, 2
	te, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	dres := de.QueryPhrase(query, 10)
	raw := te.QueryPhrase(query, 10, false)
	compressed := te.QueryPhrase(query, 10, true)
	sameRanking(t, raw.Results, compressed.Results, "compression must not change results")
	if raw.BytesTransferred <= dres.BytesTransferred {
		t.Fatalf("term-partitioned phrase shipped %d bytes, doc-partitioned %d; positions should dominate",
			raw.BytesTransferred, dres.BytesTransferred)
	}
	if compressed.BytesTransferred >= raw.BytesTransferred {
		t.Fatalf("compressed shipping %d not below raw %d", compressed.BytesTransferred, raw.BytesTransferred)
	}
}

func TestPhraseNoMatchAcrossEngines(t *testing.T) {
	docs := phraseCorpus()
	central := centralIndex(docs)
	de := newDocEngine(t, docs, 4)
	tp := partition.RandomTerms(rand.New(rand.NewSource(2)), central.Terms(), 4)
	te, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	query := []string{"here", "phrase", "exact"} // reversed order: no doc has it
	if res := de.QueryPhrase(query, 10); len(res.Results) != 0 {
		t.Fatalf("doc engine matched reversed phrase: %v", res.Results)
	}
	if res := te.QueryPhrase(query, 10, true); len(res.Results) != 0 {
		t.Fatalf("term engine matched reversed phrase: %v", res.Results)
	}
}
