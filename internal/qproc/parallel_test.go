package qproc

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"dwr/internal/index"
	"dwr/internal/partition"
)

// The parallel broker's contract: at any worker count the results AND
// the full accounting (QueryResult counters, per-server busy load) are
// byte-identical to the serial broker. These tests pin that contract
// across seeds, partition counts, down-server patterns, statistics
// modes, and evaluation modes; run them under -race to also exercise
// the memory-safety half of the claim.

// enginePair builds two engines over the same corpus and partition, one
// forced serial and one with a wide worker pool.
func enginePair(t *testing.T, docs []index.Doc, k int) (serial, par *DocEngine) {
	t.Helper()
	serial = newDocEngine(t, docs, k, WithWorkers(1))
	par = newDocEngine(t, docs, k, WithWorkers(8))
	return serial, par
}

func sameBusy(t *testing.T, serial, par []float64, label string) {
	t.Helper()
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("%s: busy load diverged\nserial: %v\nparallel: %v", label, serial, par)
	}
}

func TestParallelBrokerMatchesSerial(t *testing.T) {
	downPatterns := [][]int{nil, {0}, {0, -1}} // -1 = last partition
	for _, seed := range []int64{1, 42} {
		docs := corpus(seed, 400, 250)
		queries := zipfQueries(seed+100, 60, 250)
		for _, k := range []int{1, 3, 8} {
			serial, par := enginePair(t, docs, k)
			for di, downs := range downPatterns {
				for _, p := range downs {
					if p == -1 {
						p = k - 1
					}
					serial.SetDown(p, true)
					par.SetDown(p, true)
				}
				for _, mode := range []StatsMode{GlobalTwoRound, GlobalPrecomputed, LocalOnly} {
					for _, conj := range []bool{false, true} {
						serial.ResetBusy()
						par.ResetBusy()
						for qi, q := range queries {
							opt := DocQueryOptions{K: 10, Stats: mode, Conjunctive: conj}
							want := serial.Query(q, opt)
							got := par.Query(q, opt)
							if !reflect.DeepEqual(want, got) {
								t.Fatalf("seed=%d k=%d downs=%d mode=%d conj=%v query %d %v:\nserial:   %+v\nparallel: %+v",
									seed, k, di, mode, conj, qi, q, want, got)
							}
						}
						sameBusy(t, serial.BusyMs(), par.BusyMs(),
							fmt.Sprintf("seed=%d k=%d downs=%d mode=%d conj=%v", seed, k, di, mode, conj))
					}
				}
				for p := 0; p < k; p++ {
					serial.SetDown(p, false)
					par.SetDown(p, false)
				}
			}
		}
	}
}

func TestParallelPhraseBrokerMatchesSerial(t *testing.T) {
	docs := corpus(5, 300, 120)
	serial, par := enginePair(t, docs, 4)
	serial.SetDown(2, true)
	par.SetDown(2, true)
	for _, q := range zipfQueries(6, 40, 120) {
		if len(q) < 2 {
			q = append(q, q[0])
		}
		want := serial.QueryPhrase(q, 10)
		got := par.QueryPhrase(q, 10)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("phrase %v:\nserial:   %+v\nparallel: %+v", q, want, got)
		}
	}
	sameBusy(t, serial.BusyMs(), par.BusyMs(), "phrase")
}

func TestParallelTermEngineMatchesSerial(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		docs := corpus(seed, 350, 200)
		central := centralIndex(docs)
		for _, k := range []int{2, 6} {
			tp := partition.BinPackTerms(central.Terms(), func(t string) float64 {
				return float64(central.DF(t))
			}, k)
			serial, err := NewTermEngine(index.DefaultOptions(), docs, tp, WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewTermEngine(index.DefaultOptions(), docs, tp, WithWorkers(8))
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range zipfQueries(seed+9, 50, 200) {
				want := serial.Query(q, 10)
				got := par.Query(q, 10)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed=%d k=%d query %d %v:\nserial:   %+v\nparallel: %+v",
						seed, k, qi, q, want, got)
				}
			}
			sameBusy(t, serial.BusyMs(), par.BusyMs(), fmt.Sprintf("seed=%d k=%d", seed, k))
		}
	}
}

func TestParallelIncrementalMatchesSerial(t *testing.T) {
	// Two identical multi-site systems: the WAN latency model consumes a
	// seeded RNG, so identical construction means identical draws as long
	// as the parallel gather preserves the serial draw order.
	serial := newMultiSite(t, RouteGeo, 0)
	serial.Workers = 1
	par := newMultiSite(t, RouteGeo, 0)
	par.Workers = 4
	for qi, q := range zipfQueries(33, 30, 200) {
		want := serial.QueryIncremental(q, qi%3, float64(qi), 10)
		got := par.QueryIncremental(q, qi%3, float64(qi), 10)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %d %v: incremental batches diverged", qi, q)
		}
	}
}

func TestConcurrentQueriesSafe(t *testing.T) {
	// The same engine serving many in-flight queries: each caller must
	// see exactly the answer the quiet engine would give. Busy-load
	// totals are compared with a tolerance because concurrent queries
	// fold their service times in arrival order (float addition across
	// queries is not associative).
	docs := corpus(77, 400, 250)
	queries := zipfQueries(78, 80, 250)
	e := newDocEngine(t, docs, 6, WithWorkers(4))

	want := make([]QueryResult, len(queries))
	for i, q := range queries {
		want[i] = e.Query(q, DocQueryOptions{K: 10, Stats: GlobalTwoRound})
	}
	wantBusy := e.BusyMs()
	e.ResetBusy()

	var wg sync.WaitGroup
	errs := make([]string, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got := e.Query(queries[i], DocQueryOptions{K: 10, Stats: GlobalTwoRound})
			if !reflect.DeepEqual(want[i], got) {
				errs[i] = fmt.Sprintf("query %d %v diverged under concurrency", i, queries[i])
			}
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Fatal(e)
		}
	}
	gotBusy := e.BusyMs()
	for p := range wantBusy {
		if d := gotBusy[p] - wantBusy[p]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("partition %d busy %v vs %v", p, gotBusy[p], wantBusy[p])
		}
	}
}

// TestParallelConstructionMatchesSerial pins that concurrent partition
// builds produce the same indexes as serial construction.
func TestParallelConstructionMatchesSerial(t *testing.T) {
	docs := corpus(55, 300, 150)
	serial := newDocEngine(t, docs, 5, WithWorkers(1))
	par := newDocEngine(t, docs, 5, WithWorkers(0))
	for p := 0; p < 5; p++ {
		if !index.Equal(serial.PartIndex(p), par.PartIndex(p)) {
			t.Fatalf("partition %d index diverged between serial and parallel build", p)
		}
	}
	if !reflect.DeepEqual(serial.GlobalStats(), par.GlobalStats()) {
		t.Fatalf("global stats diverged")
	}
}
