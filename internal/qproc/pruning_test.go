package qproc

import (
	"reflect"
	"testing"

	"dwr/internal/rank"
)

// TestDocEnginePrunedEquivalence pins the tentpole guarantee end to end:
// a DocEngine with dynamic pruning enabled returns rank-identical top-k
// (bitwise-equal scores) to an exhaustive engine, at every broker width,
// with and without the per-partition posting-list caches, across stats
// modes and k. Run under -race in CI.
func TestDocEnginePrunedEquivalence(t *testing.T) {
	docs := corpus(31, 800, 1500)
	queries := zipfQueries(32, 60, 1500)
	parts := 4
	cases := []DocQueryOptions{
		{K: 10, Stats: GlobalPrecomputed},
		{K: 3, Stats: GlobalTwoRound},
		{K: 10, Stats: LocalOnly},
	}
	base := newDocEngine(t, docs, parts, WithWorkers(1))
	want := make([][][]rank.Result, len(cases))
	for ci, opt := range cases {
		want[ci] = make([][]rank.Result, len(queries))
		for qi, q := range queries {
			want[ci][qi] = base.Query(q, opt).Results
		}
	}
	for _, workers := range []int{1, 4, 16} {
		for _, cacheBytes := range []int64{0, 1 << 21} {
			for _, mode := range []rank.Pruning{rank.PruneMaxScore, rank.PruneBlockMax} {
				e := newDocEngine(t, docs, parts,
					WithWorkers(workers),
					WithPostingsCache(cacheBytes),
					WithPruning(mode))
				for ci, opt := range cases {
					for qi, q := range queries {
						got := e.Query(q, opt)
						if !reflect.DeepEqual(want[ci][qi], got.Results) {
							t.Fatalf("workers=%d cache=%d mode=%d stats=%d k=%d query %d %v:\nexhaustive %v\npruned     %v",
								workers, cacheBytes, mode, opt.Stats, opt.K, qi, q, want[ci][qi], got.Results)
						}
					}
				}
			}
		}
	}
}

// TestDocEnginePrunedDecodesFewerBytes checks the accounting plumbing:
// PostingBytesDecoded is reported, and block-max pruning decodes fewer
// posting bytes than exhaustive evaluation over a query batch.
func TestDocEnginePrunedDecodesFewerBytes(t *testing.T) {
	docs := corpus(33, 1200, 1500)
	queries := zipfQueries(34, 150, 1500)
	exh := newDocEngine(t, docs, 4)
	prn := newDocEngine(t, docs, 4, WithPruning(rank.PruneBlockMax))
	var exhBytes, prnBytes int64
	for _, q := range queries {
		a := exh.Query(q, DocQueryOptions{K: 10})
		b := prn.Query(q, DocQueryOptions{K: 10})
		exhBytes += a.PostingBytesDecoded
		prnBytes += b.PostingBytesDecoded
	}
	if exhBytes == 0 {
		t.Fatal("exhaustive path reported no decoded bytes")
	}
	if prnBytes >= exhBytes {
		t.Fatalf("pruned decoded %d bytes, exhaustive %d — no savings", prnBytes, exhBytes)
	}
}

// TestDocEnginePruningOptionPlumbing: per-query Pruning overrides the
// engine default, and the pruning mode is part of the result-cache key
// so differently-evaluated answers don't collide.
func TestDocEnginePruningOptionPlumbing(t *testing.T) {
	docs := corpus(35, 300, 800)
	e := newDocEngine(t, docs, 2, WithPruning(rank.PruneBlockMax))
	q := []string{"w0003", "w0011"}
	def := e.Query(q, DocQueryOptions{K: 5})
	per := e.Query(q, DocQueryOptions{K: 5, Pruning: rank.PruneMaxScore})
	if !reflect.DeepEqual(def.Results, per.Results) {
		t.Fatalf("per-query override changed the ranking: %v vs %v", def.Results, per.Results)
	}
	a := DocCacheKey(q, DocQueryOptions{K: 5})
	b := DocCacheKey(q, DocQueryOptions{K: 5, Pruning: rank.PruneMaxScore})
	if a == b {
		t.Fatal("cache key ignores the pruning mode")
	}
}
