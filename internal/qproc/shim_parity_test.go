package qproc

import (
	"fmt"
	"testing"

	"dwr/internal/index"
)

// These tests pin the deprecation contract: every deprecated setter shim
// (package-level construction defaults and post-construction engine
// setters) configures an engine identically to the functional option
// that replaced it — same answers byte-for-byte, same cache accounting —
// so call sites can migrate in either direction without a behavior diff.

// resetAmbientDefaults restores the package-level construction state the
// shims mutate; tests in this package otherwise share it.
func resetAmbientDefaults(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		SetDefaultWorkers(0)
		SetDefaultResultCache(nil)
		SetDefaultPostingsCacheBytes(0)
		SetDefaultOptions()
	})
}

// engineFingerprint replays queries twice (cold then warm, so cache
// replacement and TTL behavior is exercised) and folds in the cache
// counters.
func engineFingerprint(e Engine, queries [][]string) string {
	fp1, _ := replay(e, queries)
	fp2, _ := replay(e, queries)
	st := e.Stats()
	return fp1 + fp2 + fmt.Sprintf("rc=%+v pl=%+v", st.ResultCache, st.Postings)
}

func TestShimParityDefaultWorkers(t *testing.T) {
	resetAmbientDefaults(t)
	docs := corpus(31, 300, 200)
	queries := zipfQueries(32, 80, 200)

	for _, n := range []int{1, 3, 8} {
		opt := buildDocEngine(t, docs, 4, WithWorkers(n))
		want := engineFingerprint(opt, queries)

		SetDefaultWorkers(n)
		shim := buildDocEngine(t, docs, 4)
		SetDefaultWorkers(0)
		if got := engineFingerprint(shim, queries); got != want {
			t.Fatalf("SetDefaultWorkers(%d) diverged from WithWorkers(%d)", n, n)
		}
	}
}

func TestShimParityDefaultResultCache(t *testing.T) {
	resetAmbientDefaults(t)
	docs := corpus(33, 300, 200)
	queries := zipfQueries(34, 150, 200)
	cfg := ResultCacheConfig{Capacity: 64, Shards: 2, TTLQueries: 100}

	opt := buildDocEngine(t, docs, 4, WithResultCache(cfg))
	want := engineFingerprint(opt, queries)

	SetDefaultResultCache(&cfg)
	shim := buildDocEngine(t, docs, 4)
	SetDefaultResultCache(nil)
	if got := engineFingerprint(shim, queries); got != want {
		t.Fatal("SetDefaultResultCache diverged from WithResultCache")
	}

	// The per-call option overrides the ambient shim default.
	SetDefaultResultCache(&ResultCacheConfig{Capacity: 1})
	overridden := buildDocEngine(t, docs, 4, WithResultCache(cfg))
	SetDefaultResultCache(nil)
	if got := engineFingerprint(overridden, queries); got != want {
		t.Fatal("per-call WithResultCache did not override the ambient default")
	}
}

func TestShimParityDefaultPostingsCache(t *testing.T) {
	resetAmbientDefaults(t)
	docs := corpus(35, 300, 200)
	queries := zipfQueries(36, 120, 200)
	const bytes = 64 << 10

	opt := buildDocEngine(t, docs, 4, WithPostingsCache(bytes))
	want := engineFingerprint(opt, queries)

	SetDefaultPostingsCacheBytes(bytes)
	shim := buildDocEngine(t, docs, 4)
	SetDefaultPostingsCacheBytes(0)
	if got := engineFingerprint(shim, queries); got != want {
		t.Fatal("SetDefaultPostingsCacheBytes diverged from WithPostingsCache")
	}

	// The cached engine answers byte-identically to an uncached one
	// (only FromCache accounting may differ — compare rankings).
	plain := buildDocEngine(t, docs, 4)
	for _, q := range queries {
		a := plain.QueryTopK(q, 10)
		b := opt.QueryTopK(q, 10)
		sameRanking(t, a.Results, b.Results, fmt.Sprintf("postings-cached %v", q))
	}
}

func TestShimParityPostConstructionSetters(t *testing.T) {
	resetAmbientDefaults(t)
	docs := corpus(37, 300, 200)
	queries := zipfQueries(38, 150, 200)
	cfg := ResultCacheConfig{Capacity: 64, Shards: 2}
	const plBytes = 32 << 10

	for _, workers := range []int{1, 4} {
		opt := buildDocEngine(t, docs, 4,
			WithWorkers(workers), WithResultCache(cfg), WithPostingsCache(plBytes))
		want := engineFingerprint(opt, queries)

		shim := buildDocEngine(t, docs, 4)
		shim.SetWorkers(workers)
		shim.SetResultCache(NewResultCache(cfg))
		shim.SetPostingsCache(plBytes)
		if got := engineFingerprint(shim, queries); got != want {
			t.Fatalf("post-construction setters diverged from options at workers=%d", workers)
		}
	}
}

func TestShimParityTermEngineSetters(t *testing.T) {
	resetAmbientDefaults(t)
	docs := corpus(39, 300, 200)
	queries := zipfQueries(40, 120, 200)
	central := centralIndex(docs)
	tp := binPack4(central)
	cfg := ResultCacheConfig{Capacity: 64, Shards: 2}

	opt, err := NewTermEngine(index.DefaultOptions(), docs, tp,
		WithWorkers(3), WithResultCache(cfg), WithPostingsCache(32<<10))
	if err != nil {
		t.Fatal(err)
	}
	want := engineFingerprint(opt, queries)

	shim, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	shim.SetWorkers(3)
	shim.SetResultCache(NewResultCache(cfg))
	shim.SetPostingsCache(32 << 10)
	if got := engineFingerprint(shim, queries); got != want {
		t.Fatal("TermEngine setters diverged from functional options")
	}
}

// TestSetDefaultWorkersAppliesToNewEngines is the regression test for
// the package-level default shim itself: it must reach engines built
// after the call and leave earlier engines alone. (It lives in this
// file because driving the deprecated surface is its whole point.)
func TestSetDefaultWorkersAppliesToNewEngines(t *testing.T) {
	resetAmbientDefaults(t)
	SetDefaultWorkers(1)
	docs := corpus(2, 100, 80)
	e := newDocEngine(t, docs, 2)
	if e.Workers() != 1 {
		t.Fatalf("workers = %d, want 1", e.Workers())
	}
	SetDefaultWorkers(0)
	e = newDocEngine(t, docs, 2)
	if e.Workers() != 0 {
		t.Fatalf("workers = %d, want 0 (GOMAXPROCS)", e.Workers())
	}
}
