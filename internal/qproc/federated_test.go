package qproc

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"dwr/internal/cluster"
	"dwr/internal/faultsim"
	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/selection"
)

// topicalDocs builds nSites disjoint sub-collections: site s owns docs
// whose vocabulary is "s<s>w<j>" plus a shared tail of "shared<j>"
// terms, so collection selection has real signal.
func topicalDocs(seed int64, nSites, perSite int) [][]index.Doc {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]index.Doc, nSites)
	for s := 0; s < nSites; s++ {
		docs := make([]index.Doc, perSite)
		for d := 0; d < perSite; d++ {
			l := 15 + rng.Intn(30)
			terms := make([]string, l)
			for j := range terms {
				if rng.Intn(5) == 0 {
					terms[j] = fmt.Sprintf("shared%02d", rng.Intn(20))
				} else {
					terms[j] = fmt.Sprintf("s%dw%02d", s, rng.Intn(40))
				}
			}
			docs[d] = index.Doc{Ext: s*10000 + d, Terms: terms}
		}
		out[s] = docs
	}
	return out
}

// newFederatedMultiSite builds nSites sites in distinct regions, each
// holding its own topical sub-collection (NOT replicas), plus per-site
// stats for building selectors. msOpts configure the multi-site broker,
// engOpts the per-site engines.
func newFederatedMultiSite(t *testing.T, seed int64, nSites int, cacheTTL float64, msOpts, engOpts []Option) (*MultiSite, []index.Stats) {
	t.Helper()
	siteDocs := topicalDocs(seed, nSites, 120)
	m := NewMultiSite(cluster.NewNetwork(1, nSites), RouteGeo, msOpts...)
	m.CacheTTL = cacheTTL
	var stats []index.Stats
	for s := 0; s < nSites; s++ {
		ids := make([]int, len(siteDocs[s]))
		for i, d := range siteDocs[s] {
			ids[i] = d.Ext
		}
		dp := partition.RoundRobinDocs(ids, 2)
		e, err := NewDocEngine(index.DefaultOptions(), siteDocs[s], dp, engOpts...)
		if err != nil {
			t.Fatal(err)
		}
		m.Sites = append(m.Sites, NewSite(s, s, e, 64, 1000))
		stats = append(stats, e.GlobalStats())
	}
	return m, stats
}

// coriTestMediator is a minimal qproc.Mediator over selection.CORI used
// by these tests (the full implementation lives in internal/mediator,
// which tests integration separately — importing it here would cycle).
// Like the real mediator, it only prunes when the selection score mass
// concentrates on the chosen subset: shared-vocabulary queries whose
// matches spread evenly over the sites fall back to full fan-out.
type coriTestMediator struct {
	c *selection.CORI
	n int
}

func (m coriTestMediator) Decide(terms []string, up []int) MediatorDecision {
	upSet := make(map[int]bool, len(up))
	for _, s := range up {
		upSet[s] = true
	}
	var sites []int
	total, share := 0.0, 0.0
	for _, sp := range m.c.RankScored(terms) {
		if sp.Score <= 0 || !upSet[sp.Part] {
			continue
		}
		total += sp.Score
		if len(sites) < m.n {
			sites = append(sites, sp.Part)
			share += sp.Score
		}
	}
	if len(sites) == 0 || len(sites) >= len(up) || total <= 0 {
		return MediatorDecision{FullFanout: true}
	}
	base := float64(len(sites)) / float64(len(up))
	conf := (share/total - base) / (1 - base)
	if conf < 0.5 {
		return MediatorDecision{FullFanout: true, Confidence: conf}
	}
	// Ascending, as the contract asks.
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && sites[j] < sites[j-1]; j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
	return MediatorDecision{Sites: sites, Confidence: conf}
}

// topicalTestQueries mixes single-site topical queries with shared-term
// queries that touch every site.
func topicalTestQueries(seed int64, n, nSites int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, n)
	for i := range out {
		if rng.Intn(4) == 0 {
			out[i] = []string{fmt.Sprintf("shared%02d", rng.Intn(20))}
			continue
		}
		s := rng.Intn(nSites)
		q := []string{fmt.Sprintf("s%dw%02d", s, rng.Intn(40))}
		if rng.Intn(2) == 0 {
			q = append(q, fmt.Sprintf("s%dw%02d", s, rng.Intn(40)))
		}
		out[i] = q
	}
	return out
}

// TestFederatedFullFanoutMatchesIncremental pins the contract that a
// federated query with no mediator merges exactly like
// QueryIncremental's final batch.
func TestFederatedFullFanoutMatchesIncremental(t *testing.T) {
	a, _ := newFederatedMultiSite(t, 7, 4, 0, nil, nil)
	b, _ := newFederatedMultiSite(t, 7, 4, 0, nil, nil)
	for _, q := range topicalTestQueries(8, 40, 4) {
		fr := a.QueryFederated(q, NormalizeQueryKey(q), 0, 1, 10)
		batches := b.QueryIncremental(q, 0, 1, 10)
		if len(batches) == 0 {
			t.Fatalf("no incremental batches for %v", q)
		}
		want := batches[len(batches)-1].Results
		if len(fr.Results) != len(want) {
			t.Fatalf("query %v: federated %d results, incremental %d", q, len(fr.Results), len(want))
		}
		for i := range want {
			if fr.Results[i] != want[i] {
				t.Fatalf("query %v rank %d: federated %+v, incremental %+v", q, i, fr.Results[i], want[i])
			}
		}
		if !fr.FullFanout || fr.SitesSkipped != 0 {
			t.Fatalf("query %v: no-mediator query not a full fan-out: %+v", q, fr)
		}
	}
}

// fingerprintFederated replays a fixed query stream on a fresh mediated
// multi-site system and fingerprints every result and counter.
func fingerprintFederated(t *testing.T, workers, cacheCap int, cacheTTL float64) uint64 {
	t.Helper()
	msOpts := []Option{WithWorkers(workers)}
	engOpts := []Option{WithWorkers(workers)}
	if cacheCap > 0 {
		engOpts = append(engOpts, WithResultCache(ResultCacheConfig{Capacity: cacheCap}))
	}
	m, stats := newFederatedMultiSite(t, 7, 4, cacheTTL, msOpts, engOpts)
	m.mediator = coriTestMediator{c: selection.NewCORI(stats), n: 2}
	h := fnv.New64a()
	for hour, q := range topicalTestQueries(9, 60, 4) {
		r := m.QueryFederated(q, NormalizeQueryKey(q), 0, float64(hour%24), 10)
		fmt.Fprintf(h, "q=%v cached=%v full=%v contacted=%d skipped=%d failed=%v\n",
			q, r.FromCache, r.FullFanout, r.SitesContacted, r.SitesSkipped, r.Failed)
		for _, res := range r.Results {
			fmt.Fprintf(h, "%d:%.17g ", res.Doc, res.Score)
		}
		fmt.Fprintln(h)
	}
	st := m.Stats()
	fmt.Fprintf(h, "sel=%s\n", st.Selection.String())
	return h.Sum64()
}

// TestFederatedDeterministicAcrossWorkersAndReplays is the mediated
// equivalence test at workers {1,4,16} with both cache levels: every
// configuration, replayed twice, must produce byte-identical results
// and counters.
func TestFederatedDeterministicAcrossWorkersAndReplays(t *testing.T) {
	for _, cache := range []struct {
		cap int
		ttl float64
	}{{0, 0}, {256, 24}} {
		var want uint64
		for i, workers := range []int{1, 4, 16, 1} { // trailing 1 = replay
			got := fingerprintFederated(t, workers, cache.cap, cache.ttl)
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("cache=%+v workers=%d: fingerprint %x != %x", cache, workers, got, want)
			}
		}
	}
}

// TestFederatedMediatedVsExhaustive checks quality directly: topical
// queries answered by a 2-of-4 site subset must recall the exhaustive
// top-10 perfectly (their terms live at one site), and shared-term
// queries must fall back to full fan-out (CORI spreads their score mass
// over every site — but the test mediator prunes at a fixed budget, so
// here we only require the exhaustive merge to dominate).
func TestFederatedMediatedVsExhaustive(t *testing.T) {
	m, stats := newFederatedMultiSite(t, 7, 4, 0, nil, nil)
	m.mediator = coriTestMediator{c: selection.NewCORI(stats), n: 2}
	mediatedUnderHalf := 0
	n := 0
	for hour, q := range topicalTestQueries(9, 60, 4) {
		r := m.QueryFederated(q, NormalizeQueryKey(q), 0, float64(hour%24), 10)
		exh := m.QueryExhaustiveResults(q, float64(hour%24), 10)
		n++
		if !r.FullFanout {
			if r.SitesContacted*2 < len(m.Sites)+1 {
				mediatedUnderHalf++
			}
			// Recall of the mediated answer against the exhaustive one.
			in := make(map[int]bool, len(r.Results))
			for _, res := range r.Results {
				in[res.Doc] = true
			}
			hit := 0
			for _, res := range exh {
				if in[res.Doc] {
					hit++
				}
			}
			if len(exh) > 0 && float64(hit)/float64(len(exh)) < 0.99 {
				t.Fatalf("query %v: mediated recall %d/%d", q, hit, len(exh))
			}
		} else {
			// Full fan-out must BE the exhaustive answer.
			if len(r.Results) != len(exh) {
				t.Fatalf("query %v: full fan-out %d results, exhaustive %d", q, len(r.Results), len(exh))
			}
			for i := range exh {
				if r.Results[i] != exh[i] {
					t.Fatalf("query %v rank %d: %+v != %+v", q, i, r.Results[i], exh[i])
				}
			}
		}
	}
	if mediatedUnderHalf == 0 {
		t.Fatal("no query was answered touching under half the sites")
	}
	st := m.Stats()
	if st.Selection.Mediated == 0 || st.Selection.SitesSkipped == 0 {
		t.Fatalf("selection counters not accumulated: %s", st.Selection.String())
	}
	if st.Selection.Queries != n {
		t.Fatalf("selection counted %d queries, drove %d", st.Selection.Queries, n)
	}
}

// TestFederatedOutageFallsBackToFullFanout: when the mediator's chosen
// site is inside an outage window it never enters the up set, and the
// query widens to the remaining sites instead of failing.
func TestFederatedOutageFallsBackToFullFanout(t *testing.T) {
	m, stats := newFederatedMultiSite(t, 7, 4, 0, nil, nil)
	m.mediator = coriTestMediator{c: selection.NewCORI(stats), n: 1}
	m.Sites[2].Outages = []cluster.Outage{{Start: 0, End: 100}}
	q := []string{"s2w01"} // lives only at the down site
	r := m.QueryFederated(q, NormalizeQueryKey(q), 0, 5, 10)
	if r.Failed {
		t.Fatalf("query failed instead of falling back: %+v", r)
	}
	if r.SitesContacted == 0 {
		t.Fatalf("no sites contacted: %+v", r)
	}
	// Site 2 being down, its docs are unreachable — the answer comes
	// from shared-term overlap or is empty, but the query must not fail.
	for _, res := range r.Results {
		if res.Doc >= 20000 && res.Doc < 30000 {
			t.Fatalf("result %d came from the down site", res.Doc)
		}
	}
}

// TestFederatedInjectedFaultRetriesFullFanout: when injected faults
// kill every selected site, the query retries once as a full fan-out
// (fault-schedule attempt 1) and degrades instead of failing.
func TestFederatedInjectedFaultRetriesFullFanout(t *testing.T) {
	inj := faultsim.New(4).Unit(0, faultsim.Spec{Crash: true})
	m, stats := newFederatedMultiSite(t, 7, 4, 0, []Option{WithInjector(inj)}, nil)
	m.mediator = coriTestMediator{c: selection.NewCORI(stats), n: 1}
	q := []string{"s0w01"} // CORI selects site 0, which always crashes
	r := m.QueryFederated(q, NormalizeQueryKey(q), 0, 1, 10)
	if r.Failed {
		t.Fatalf("query failed despite three healthy sites: %+v", r)
	}
	if !r.FullFanout || r.Retries == 0 {
		t.Fatalf("expected a full fan-out retry, got %+v", r)
	}
	if !r.Degraded {
		t.Fatal("losing the owning site should degrade the answer")
	}
	st := m.Stats()
	if st.Selection.FullFanout == 0 {
		t.Fatalf("fallback not counted: %s", st.Selection.String())
	}
}

// TestFederatedCacheKeyEncodesSelection: answers computed from
// different site subsets must not collide in the coordinator cache.
func TestFederatedCacheKeyEncodesSelection(t *testing.T) {
	a := FederatedCacheKey("w1 w2", 10, []int{0, 2}, false)
	b := FederatedCacheKey("w1 w2", 10, []int{0, 3}, false)
	c := FederatedCacheKey("w1 w2", 10, nil, true)
	if a == b || a == c || b == c {
		t.Fatalf("cache keys collide: %q %q %q", a, b, c)
	}
}

// TestFederatedCachedReplayIdentical: with the coordinator cache on,
// repeat queries serve from cache and remain byte-identical to the
// first answer.
func TestFederatedCachedReplayIdentical(t *testing.T) {
	m, stats := newFederatedMultiSite(t, 7, 4, 24, nil, nil)
	m.mediator = coriTestMediator{c: selection.NewCORI(stats), n: 2}
	q := []string{"s1w03"}
	first := m.QueryFederated(q, NormalizeQueryKey(q), 0, 1, 10)
	second := m.QueryFederated(q, NormalizeQueryKey(q), 0, 2, 10)
	if !second.FromCache {
		t.Fatalf("repeat query missed the cache: %+v", second)
	}
	if len(first.Results) != len(second.Results) {
		t.Fatalf("cached answer differs in length")
	}
	for i := range first.Results {
		if first.Results[i] != second.Results[i] {
			t.Fatalf("rank %d: %+v != %+v", i, first.Results[i], second.Results[i])
		}
	}
}
