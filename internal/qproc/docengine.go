package qproc

import (
	"fmt"

	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/rank"
	"dwr/internal/selection"
)

// DocEngine is a document-partitioned query processing cluster: K query
// processors each hold an inverted index over a sub-collection, and a
// broker scatters queries, optionally after collection selection, then
// merges the per-partition top-k lists.
type DocEngine struct {
	cost  CostModel
	lanMs float64
	parts []*index.Index
	// global statistics of the whole collection, available when the
	// broker runs the two-round protocol or precomputes them offline.
	global    index.Stats
	busyMs    []float64
	downs     []bool
	queries   int
	partition partition.DocPartition
}

// NewDocEngine builds per-partition indexes from docs according to the
// document partition. Documents not present in the partition assignment
// are dropped.
func NewDocEngine(opts index.Options, docs []index.Doc, dp partition.DocPartition) (*DocEngine, error) {
	builders := make([]*index.Builder, dp.K)
	for i := range builders {
		builders[i] = index.NewBuilder(opts)
	}
	for _, d := range docs {
		p, ok := dp.Assign[d.Ext]
		if !ok {
			continue
		}
		builders[p].AddDocument(d.Ext, d.Terms)
	}
	e := &DocEngine{
		cost:      DefaultCostModel(),
		lanMs:     0.3,
		busyMs:    make([]float64, dp.K),
		downs:     make([]bool, dp.K),
		partition: dp,
	}
	var stats []index.Stats
	for _, b := range builders {
		ix := b.Build()
		e.parts = append(e.parts, ix)
		stats = append(stats, ix.LocalStats(nil))
	}
	e.global = index.MergeStats(stats...)
	if e.global.NumDocs == 0 {
		return nil, fmt.Errorf("qproc: document partition covers no documents")
	}
	return e, nil
}

// K returns the number of partitions.
func (e *DocEngine) K() int { return len(e.parts) }

// Partition returns the underlying document partition.
func (e *DocEngine) Partition() partition.DocPartition { return e.partition }

// PartIndex exposes partition p's index (for stats and selection setup).
func (e *DocEngine) PartIndex(p int) *index.Index { return e.parts[p] }

// GlobalStats returns the precomputed whole-collection statistics.
func (e *DocEngine) GlobalStats() index.Stats { return e.global }

// SetDown marks a query processor as failed (true) or recovered (false);
// the broker skips failed processors and flags the answer Degraded — the
// paper's "the system might still be able to answer queries without
// using all the sub-collections".
func (e *DocEngine) SetDown(p int, down bool) { e.downs[p] = down }

// BusyMs returns accumulated per-processor busy time — the Figure 2
// measurement.
func (e *DocEngine) BusyMs() []float64 {
	return append([]float64(nil), e.busyMs...)
}

// ResetBusy clears the busy-load accounting.
func (e *DocEngine) ResetBusy() {
	for i := range e.busyMs {
		e.busyMs[i] = 0
	}
	e.queries = 0
}

// StatsMode selects which statistics drive scoring (experiment C9).
type StatsMode int

// Statistics modes.
const (
	// GlobalTwoRound runs the paper's two-round protocol: round one
	// collects per-partition statistics for the query terms, round two
	// evaluates with the merged global statistics piggybacked on the
	// query. Rankings equal a centralized evaluation.
	GlobalTwoRound StatsMode = iota
	// GlobalPrecomputed uses engine-wide statistics computed at indexing
	// time (one round, exact, but stale under index updates).
	GlobalPrecomputed
	// LocalOnly scores each partition with its own statistics (one
	// round, no stats traffic, rankings may diverge from centralized).
	LocalOnly
)

// DocQueryOptions configures one query evaluation.
type DocQueryOptions struct {
	K           int
	Stats       StatsMode
	Selector    selection.Selector // nil = contact every partition
	SelectN     int                // partitions to contact when Selector is set
	Conjunctive bool
}

// Query evaluates terms and returns the merged top-k with full resource
// accounting.
func (e *DocEngine) Query(terms []string, opt DocQueryOptions) QueryResult {
	if opt.K <= 0 {
		opt.K = 10
	}
	e.queries++
	var qr QueryResult

	// Choose target partitions.
	targets := make([]int, 0, len(e.parts))
	if opt.Selector != nil && opt.SelectN > 0 {
		ranked := opt.Selector.Rank(terms)
		n := opt.SelectN
		if n > len(ranked) {
			n = len(ranked)
		}
		targets = append(targets, ranked[:n]...)
	} else {
		for p := range e.parts {
			targets = append(targets, p)
		}
	}
	live := targets[:0]
	for _, p := range targets {
		if e.downs[p] {
			qr.Degraded = true
			continue
		}
		live = append(live, p)
	}
	targets = live
	qr.ServersContacted = len(targets)
	if len(targets) == 0 {
		return qr
	}

	// Round 1 (two-round protocol only): gather local stats per term.
	var scorers []*rank.Scorer
	var round1Max float64
	switch opt.Stats {
	case GlobalTwoRound:
		qr.Rounds = 2
		var parts []index.Stats
		for _, p := range targets {
			parts = append(parts, e.parts[p].LocalStats(terms))
			// Stats messages are tiny; the round still costs a LAN RTT.
			qr.BytesTransferred += int64(16 * len(terms))
		}
		// Collection-wide doc count and lengths come from every
		// partition regardless of term presence.
		merged := index.MergeStats(parts...)
		// NumDocs/TotalLen must cover the full engine, not just the
		// contacted partitions' term stats: recompute from all parts.
		merged.NumDocs = 0
		merged.TotalLen = 0
		for _, ix := range e.parts {
			merged.NumDocs += ix.NumDocs()
			merged.TotalLen += ix.TotalLen()
		}
		s := rank.NewScorer(rank.FromGlobal(merged))
		for range targets {
			scorers = append(scorers, s)
		}
		round1Max = e.lanMs
	case GlobalPrecomputed:
		qr.Rounds = 1
		s := rank.NewScorer(rank.FromGlobal(e.global))
		for range targets {
			scorers = append(scorers, s)
		}
	default: // LocalOnly
		qr.Rounds = 1
		for _, p := range targets {
			scorers = append(scorers, rank.NewScorer(rank.FromIndex(e.parts[p])))
		}
	}

	// Round 2: evaluate on each partition; the broker waits for the
	// slowest (the paper: "the response time ... depends on the response
	// time of its slowest component").
	var lists [][]rank.Result
	var slowest float64
	for i, p := range targets {
		var rs []rank.Result
		var es rank.EvalStats
		if opt.Conjunctive {
			rs, es = rank.EvaluateAND(e.parts[p], scorers[i], terms, opt.K)
		} else {
			rs, es = rank.EvaluateOR(e.parts[p], scorers[i], terms, opt.K)
		}
		service := e.cost.ServiceMs(es.PostingsDecoded)
		e.busyMs[p] += service
		if t := e.lanMs + service; t > slowest {
			slowest = t
		}
		qr.PostingsDecoded += es.PostingsDecoded
		qr.ListsAccessed += es.ListsAccessed
		qr.PostingBytesRead += es.BytesRead
		qr.BytesTransferred += resultBytes(len(rs))
		lists = append(lists, rs)
	}
	qr.Results = rank.MergeResults(opt.K, lists...)
	qr.LatencyMs = round1Max + slowest + e.lanMs // stats round + eval + reply
	return qr
}
