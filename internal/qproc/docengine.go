package qproc

import (
	"fmt"
	"sort"
	"sync"

	"dwr/internal/conc"
	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
	"dwr/internal/rank"
	"dwr/internal/selection"
)

// DocEngine is a document-partitioned query processing cluster: K query
// processors each hold an inverted index over a sub-collection, and a
// broker scatters queries, optionally after collection selection, then
// merges the per-partition top-k lists.
//
// The scatter-gather is real: partition evaluations fan out over a
// bounded worker pool (WithWorkers; default GOMAXPROCS) and the broker
// aggregates per-partition results serially at the gather point, so
// results and all accounting are byte-identical to the serial broker
// (workers=1). The engine is safe for concurrent Query calls: the
// partition indexes are immutable concurrent-reader structures and the
// busy-load accounting is guarded by a mutex taken only at the gather.
type DocEngine struct {
	cost  CostModel
	lanMs float64
	parts []*index.Index
	// global statistics of the whole collection, available when the
	// broker runs the two-round protocol or precomputes them offline.
	global    index.Stats
	workers   int // broker fan-out width; <=0 = GOMAXPROCS, 1 = serial
	mu        sync.Mutex
	busyMs    []float64
	downs     []bool
	queries   int
	degraded  int
	failed    int
	partition partition.DocPartition
	// rcache is the broker-level result cache (level 1); pcaches are the
	// per-partition-server posting-list caches (level 2). Both nil by
	// default; configure at construction (WithResultCache /
	// WithPostingsCache).
	rcache  *ResultCache
	pcaches []*index.PostingsCache
	// rb is the robustness runtime (deadline/retry/hedge policy over the
	// fault-injection layer); nil unless fault options were given, in
	// which case partition calls route through it at the gather point.
	rb *robustness
	// pruning is the default top-k strategy for disjunctive queries
	// (WithPruning); DocQueryOptions.Pruning overrides per query.
	pruning rank.Pruning
	// threshold enables the bound-ordered wave schedule by default
	// (WithThresholdSharing); DocQueryOptions.Threshold overrides per
	// query. tsc accumulates what the scheduler did (guarded by mu).
	threshold bool
	tsc       metrics.ThresholdCounters
	// topkOpts are the per-query options QueryTopK (the uniform Engine
	// surface) uses; K is overridden per call.
	topkOpts DocQueryOptions
}

// NewDocEngine builds per-partition indexes from docs according to the
// document partition; the K partition indexes are constructed
// concurrently. Documents not present in the partition assignment are
// dropped. Configuration is by functional options — e.g.
//
//	NewDocEngine(opts, docs, dp,
//	    WithWorkers(8),
//	    WithResultCache(ResultCacheConfig{Capacity: 4096}),
//	    WithFaultPolicy(DefaultFaultPolicy()),
//	    WithInjector(inj))
//
// — applied on top of the ambient defaults (SetDefaultOptions).
func NewDocEngine(opts index.Options, docs []index.Doc, dp partition.DocPartition, options ...Option) (*DocEngine, error) {
	eo := resolveOptions(options)
	builders := make([]*index.MemBuilder, dp.K)
	for i := range builders {
		builders[i] = index.NewBuilder(opts)
	}
	for _, d := range docs {
		p, ok := dp.Assign[d.Ext]
		if !ok {
			continue
		}
		builders[p].AddDocument(d.Ext, d.Terms)
	}
	e := &DocEngine{
		cost:      DefaultCostModel(),
		lanMs:     0.3,
		workers:   eo.workers,
		busyMs:    make([]float64, dp.K),
		downs:     make([]bool, dp.K),
		partition: dp,
		topkOpts:  DocQueryOptions{Stats: GlobalPrecomputed},
	}
	e.parts = index.BuildAll(builders, e.workers)
	stats := make([]index.Stats, len(e.parts))
	conc.Do(len(e.parts), e.workers, func(i int) {
		stats[i] = e.parts[i].LocalStats(nil)
	})
	e.global = index.MergeStats(stats...)
	if e.global.NumDocs == 0 {
		return nil, fmt.Errorf("qproc: document partition covers no documents")
	}
	e.rcache = eo.resultCache()
	e.installPostingsCache(eo.plBytes)
	e.rb = eo.robust(dp.K)
	e.pruning = eo.pruning
	e.threshold = eo.threshold
	if eo.docDefault != nil {
		e.topkOpts = *eo.docDefault
	}
	return e, nil
}

// K returns the number of partitions.
func (e *DocEngine) K() int { return len(e.parts) }

// Partition returns the underlying document partition.
func (e *DocEngine) Partition() partition.DocPartition { return e.partition }

// PartIndex exposes partition p's index (for stats and selection setup).
func (e *DocEngine) PartIndex(p int) *index.Index { return e.parts[p] }

// GlobalStats returns the precomputed whole-collection statistics.
func (e *DocEngine) GlobalStats() index.Stats { return e.global }

// Workers reports the configured fan-out width (0 = GOMAXPROCS).
func (e *DocEngine) Workers() int { return e.workers }

// SetDown marks a query processor as failed (true) or recovered (false);
// the broker skips failed processors and flags the answer Degraded — the
// paper's "the system might still be able to answer queries without
// using all the sub-collections". Topology changes invalidate the result
// cache: entries computed against the old liveness would otherwise mask
// the change (recovered servers' documents missing, etc.). For dynamic
// failure scenarios prefer WithInjector and faultsim outage windows
// (faultsim.Window); SetDown remains for static topology experiments.
func (e *DocEngine) SetDown(p int, down bool) {
	e.mu.Lock()
	e.downs[p] = down
	e.mu.Unlock()
	if e.rcache != nil {
		e.rcache.Invalidate()
	}
}

// ResultCache returns the installed result cache (nil if none).
func (e *DocEngine) ResultCache() *ResultCache { return e.rcache }

// installPostingsCache materializes the WithPostingsCache option.
func (e *DocEngine) installPostingsCache(bytesPerPartition int64) {
	if bytesPerPartition <= 0 {
		e.pcaches = nil
		return
	}
	e.pcaches = make([]*index.PostingsCache, len(e.parts))
	for i := range e.pcaches {
		e.pcaches[i] = index.NewPostingsCache(bytesPerPartition)
	}
}

// PostingsCacheStats aggregates hit/miss/occupancy over the partition
// servers' posting-list caches (zero value if disabled).
func (e *DocEngine) PostingsCacheStats() PostingsCacheStats {
	var out PostingsCacheStats
	for _, pc := range e.pcaches {
		h, m, b := pc.Stats()
		out.Hits += h
		out.Misses += m
		out.UsedBytes += b
	}
	return out
}

// BusyMs returns accumulated per-processor busy time — the Figure 2
// measurement.
func (e *DocEngine) BusyMs() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]float64(nil), e.busyMs...)
}

// ResetBusy clears the busy-load accounting.
func (e *DocEngine) ResetBusy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.busyMs {
		e.busyMs[i] = 0
	}
	e.queries = 0
}

// StatsMode selects which statistics drive scoring (experiment C9).
type StatsMode int

// Statistics modes.
const (
	// GlobalTwoRound runs the paper's two-round protocol: round one
	// collects per-partition statistics for the query terms, round two
	// evaluates with the merged global statistics piggybacked on the
	// query. Rankings equal a centralized evaluation.
	GlobalTwoRound StatsMode = iota
	// GlobalPrecomputed uses engine-wide statistics computed at indexing
	// time (one round, exact, but stale under index updates).
	GlobalPrecomputed
	// LocalOnly scores each partition with its own statistics (one
	// round, no stats traffic, rankings may diverge from centralized).
	LocalOnly
)

// ThresholdMode selects how the broker schedules the evaluation scatter
// of one query.
type ThresholdMode int

const (
	// ThresholdDefault (the zero value) defers to the engine's
	// WithThresholdSharing setting: ThresholdShared on an engine
	// configured with sharing, otherwise single-wave.
	ThresholdDefault ThresholdMode = iota
	// ThresholdShared evaluates partitions in waves ordered by their
	// resident query score upper bound: the first wave runs unseeded,
	// every later wave is seeded with the broker's running k-th merged
	// score, and partitions whose bound cannot beat it are skipped
	// without being contacted. Rank-identical to ThresholdSingleWave.
	ThresholdShared
	// ThresholdSingleWave scatters one wave over all target partitions
	// at threshold 0 — the classic scatter-gather.
	ThresholdSingleWave
)

// thresholdFirstWave is the size of the first (unseeded) wave of a
// shared-threshold schedule; later waves double. Small enough that the
// highest-bound partitions establish a threshold before the long tail is
// touched, fixed regardless of worker width so the schedule — and with
// it every skip decision — is deterministic.
const thresholdFirstWave = 2

// DocQueryOptions configures one query evaluation.
type DocQueryOptions struct {
	K           int
	Stats       StatsMode
	Selector    selection.Selector // nil = contact every partition
	SelectN     int                // partitions to contact when Selector is set
	Conjunctive bool
	// Pruning selects the disjunctive top-k strategy for this query;
	// rank.PruneNone (the zero value) defers to the engine's WithPruning
	// default. Rankings are identical across strategies — only the decode
	// work (and thus PostingBytesDecoded) changes.
	Pruning rank.Pruning
	// Threshold selects the scatter schedule for this query;
	// ThresholdDefault defers to the engine's WithThresholdSharing
	// default. Conjunctive queries always run a single wave (the AND
	// evaluator drives by intersection, not by threshold).
	Threshold ThresholdMode
	// DeadlineMs, when > 0, is the query's latency budget: it tightens
	// the fault policy's per-call deadline on every partition call, and
	// an answer that would still arrive later than the budget is dropped
	// (Err = ErrDeadlineExceeded) rather than delivered late. It does
	// not change which results a within-budget answer contains, so it is
	// deliberately not part of the result-cache key.
	DeadlineMs float64
}

// partEval is one partition's contribution, produced by a worker and
// consumed serially at the gather point.
type partEval struct {
	rs []rank.Result
	es rank.EvalStats
}

// Query evaluates terms and returns the merged top-k with full resource
// accounting.
func (e *DocEngine) Query(terms []string, opt DocQueryOptions) QueryResult {
	if opt.K <= 0 {
		opt.K = 10
	}
	if opt.Pruning == rank.PruneNone {
		opt.Pruning = e.pruning
	}
	// Resolve the engine default before the cache key is computed (same
	// pattern as Pruning): an engine whose default is single-wave leaves
	// the zero value in place, so externally computed DocCacheKeys (SDC
	// warming, log analysis) agree with the engine's own.
	if opt.Threshold == ThresholdDefault && e.threshold {
		opt.Threshold = ThresholdShared
	}
	var ckey string
	if e.rcache != nil {
		ckey = DocCacheKey(terms, opt)
		if hit, ok := e.rcache.Get(ckey); ok {
			// A hit answers at the broker: same ranked results, no
			// fan-out, so the work counters are genuinely zero and the
			// latency is one local lookup.
			qr := QueryResult{Results: hit.Results, FromCache: true, LatencyMs: e.cost.CacheHitMs}
			enforceDeadline(&qr, opt.DeadlineMs)
			return qr
		}
	}
	var qr QueryResult

	// Choose target partitions.
	targets := make([]int, 0, len(e.parts))
	if opt.Selector != nil && opt.SelectN > 0 {
		ranked := opt.Selector.Rank(terms)
		n := opt.SelectN
		if n > len(ranked) {
			n = len(ranked)
		}
		targets = append(targets, ranked[:n]...)
	} else {
		for p := range e.parts {
			targets = append(targets, p)
		}
	}
	e.mu.Lock()
	e.queries++
	// tick is the fault-schedule clock: decision i of the injector's
	// timeline. Captured under the lock so every query sees a distinct,
	// reproducible tick regardless of worker interleaving.
	tick := int64(e.queries)
	live := targets[:0]
	for _, p := range targets {
		if e.downs[p] {
			qr.Degraded = true
			continue
		}
		live = append(live, p)
	}
	e.mu.Unlock()
	targets = live
	qr.ServersContacted = len(targets)
	if len(targets) == 0 {
		if e.rb != nil && e.rb.policy.Mode == FailFast && qr.Degraded {
			qr.Err = fmt.Errorf("all selected partitions down: %w", ErrUnavailable)
		}
		e.noteOutcome(&qr)
		return qr
	}

	// Round 1 (two-round protocol only): gather local stats per term,
	// one scatter over the worker pool.
	scorers := make([]*rank.Scorer, len(targets))
	var round1Max float64
	switch opt.Stats {
	case GlobalTwoRound:
		qr.Rounds = 2
		parts := make([]index.Stats, len(targets))
		conc.Do(len(targets), e.workers, func(i int) {
			parts[i] = e.parts[targets[i]].LocalStats(terms)
		})
		// Stats messages are tiny; the round still costs a LAN RTT.
		qr.BytesTransferred += int64(16 * len(terms) * len(targets))
		merged := index.MergeStats(parts...)
		// NumDocs/TotalLen must cover the full engine, not just the
		// contacted partitions' term stats: reuse the engine-wide
		// figures precomputed at construction instead of re-walking
		// every partition on every query.
		merged.NumDocs = e.global.NumDocs
		merged.TotalLen = e.global.TotalLen
		s := rank.NewScorer(rank.FromGlobal(merged))
		for i := range scorers {
			scorers[i] = s
		}
		round1Max = e.lanMs
	case GlobalPrecomputed:
		qr.Rounds = 1
		s := rank.NewScorer(rank.FromGlobal(e.global))
		for i := range scorers {
			scorers[i] = s
		}
	default: // LocalOnly
		qr.Rounds = 1
		conc.Do(len(targets), e.workers, func(i int) {
			scorers[i] = rank.NewScorer(rank.FromIndex(e.parts[targets[i]]))
		})
	}

	// Round 2: scatter the evaluation in waves. The classic single-wave
	// path is the degenerate schedule — one wave holding every target,
	// nothing skipped, threshold 0 — so both paths share the scatter and
	// gather code below. Under ThresholdShared, partitions are visited in
	// descending resident query-bound order in doubling waves; every wave
	// after the first is seeded with the broker's running k-th merged
	// score and partitions whose bound cannot beat it (rank.Competitive)
	// are skipped without being contacted.
	shared := opt.Threshold == ThresholdShared && !opt.Conjunctive && len(targets) > 1
	order := make([]int, len(targets))
	for i := range order {
		order[i] = i
	}
	var bounds []float64
	if shared {
		bounds = make([]float64, len(targets))
		conc.Do(len(targets), e.workers, func(i int) {
			bounds[i] = rank.QueryBound(e.parts[targets[i]], scorers[i], terms)
		})
		// Descending bound; ties by ascending partition index keep the
		// schedule deterministic at any worker width.
		sort.Slice(order, func(a, b int) bool {
			i, j := order[a], order[b]
			if bounds[i] != bounds[j] {
				return bounds[i] > bounds[j]
			}
			return targets[i] < targets[j]
		})
	}

	// Each worker writes only its own evals slot; every wave's gather
	// aggregates serially in schedule order under the engine lock, so
	// results and accounting are identical to the serial broker.
	evals := make([]partEval, len(targets))
	merger := rank.NewTopKMerger(opt.K)
	var slowest float64 // summed per-wave slowest-call latencies
	lost, dispatched := 0, 0
	waveSize := len(targets)
	if shared {
		waveSize = thresholdFirstWave
	}
	ws := make([]int, 0, waveSize)
	for next := 0; next < len(order); {
		seed := 0.0
		if shared {
			if t, ok := merger.Threshold(); ok {
				seed = t
			}
		}
		ws = ws[:0]
		for next < len(order) && len(ws) < waveSize {
			i := order[next]
			next++
			// A zero bound means no query term occurs in the partition; a
			// non-competitive bound proves it holds no global top-k
			// document. Either way the broker never contacts it.
			if shared && (bounds[i] <= 0 || (seed > 0 && !rank.Competitive(bounds[i], seed))) {
				qr.PartitionsSkipped++
				continue
			}
			ws = append(ws, i)
		}
		if len(ws) == 0 {
			continue
		}
		qr.Waves++
		dispatched += len(ws)
		waveSeed := seed
		conc.Do(len(ws), e.workers, func(j int) {
			i := ws[j]
			p := targets[i]
			ix := e.parts[p]
			// Level 2: serve encoded posting lists from the partition
			// server's cache when configured. The provider contract keeps
			// results and accounting byte-identical either way.
			var pp rank.PostingsProvider = ix
			if e.pcaches != nil {
				pp = e.pcaches[p].Bind(ix)
			}
			if opt.Conjunctive {
				evals[i].rs, evals[i].es = rank.EvaluateANDFrom(pp, ix, scorers[i], terms, opt.K)
			} else {
				evals[i].rs, evals[i].es = rank.EvaluateTopKSeededFrom(pp, ix, scorers[i], terms, opt.K, opt.Pruning, waveSeed)
			}
		})
		var waveSlowest float64
		e.mu.Lock()
		for _, i := range ws {
			p := targets[i]
			es := evals[i].es
			service := e.cost.ServiceMs(es.PostingsDecoded)
			if e.rb != nil {
				// Robust path: the call's fate (retries, hedges, failover,
				// latency, or loss) is simulated deterministically from the
				// engine tick. A clean call costs exactly lanMs+service, so
				// with zero faults injected this path is byte-identical to
				// the plain one below.
				cr := e.rb.call(tick, p, e.lanMs, service, opt.DeadlineMs)
				qr.Retries += cr.retries
				qr.Hedges += cr.hedges
				if cr.latencyMs > waveSlowest {
					waveSlowest = cr.latencyMs
				}
				if !cr.ok {
					// The partition never answered within budget: its
					// contribution is lost and its server did no accountable
					// work for this query.
					e.rb.lost()
					lost++
					continue
				}
				e.busyMs[p] += service
			} else {
				e.busyMs[p] += service
				if t := e.lanMs + service; t > waveSlowest {
					waveSlowest = t
				}
			}
			//dwrlint:allow statsmerge:FinalThreshold the broker seeds later waves from its own merged heap, not the partitions' final thresholds
			qr.PostingsDecoded += es.PostingsDecoded
			qr.ListsAccessed += es.ListsAccessed
			qr.PostingBytesRead += es.BytesRead
			qr.PostingBytesDecoded += es.BytesDecoded
			qr.BytesTransferred += resultBytes(len(evals[i].rs))
			merger.Add(evals[i].rs)
		}
		e.mu.Unlock()
		slowest += waveSlowest
		if shared {
			waveSize *= 2
		}
	}
	qr.ServersContacted = dispatched
	qr.Results = merger.Results()
	qr.LatencyMs = round1Max + slowest + e.lanMs // stats round + eval waves + reply
	if shared {
		e.mu.Lock()
		e.tsc.Merge(metrics.ThresholdCounters{
			Queries:             1,
			Waves:               qr.Waves,
			PartitionsEvaluated: dispatched,
			PartitionsSkipped:   qr.PartitionsSkipped,
			PostingsDecoded:     qr.PostingsDecoded,
			PostingBytesDecoded: qr.PostingBytesDecoded,
		})
		e.mu.Unlock()
	}
	if lost > 0 || (qr.Degraded && e.rb != nil && e.rb.policy.Mode == FailFast) {
		if e.rb.policy.Mode == FailFast {
			qr.Err = fmt.Errorf("%d of %d partitions unavailable: %w", lost, len(targets), ErrUnavailable)
			qr.Results = nil
		} else {
			qr.Degraded = true
		}
	}
	enforceDeadline(&qr, opt.DeadlineMs)
	if e.rcache != nil && !qr.Degraded && qr.Err == nil {
		// Degraded answers are partial; caching them would keep serving
		// the partial ranking after the servers recover.
		e.rcache.Put(ckey, qr)
	}
	e.noteOutcome(&qr)
	return qr
}

// noteOutcome tallies degraded/failed answers for EngineStats.
func (e *DocEngine) noteOutcome(qr *QueryResult) {
	if qr.Err == nil && !qr.Degraded {
		return
	}
	e.mu.Lock()
	if qr.Err != nil {
		e.failed++
	} else {
		e.degraded++
	}
	e.mu.Unlock()
}
