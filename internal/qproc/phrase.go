package qproc

import (
	"dwr/internal/conc"
	"dwr/internal/rank"
)

// Phrase evaluation across the two architectures (§5, Communication).
// Document-partitioned: each partition intersects positions locally and
// ships only its top-k — positions never cross the network. Pipelined
// term-partitioned: the candidate phrase-start positions travel with the
// accumulator between term servers, and their encoding (raw vs
// delta+varint compressed) decides the communication bill.

// QueryPhrase evaluates an exact-phrase query on the document-partitioned
// engine. Positions stay inside each partition; evaluation fans out over
// the broker's worker pool like Query.
func (e *DocEngine) QueryPhrase(terms []string, k int) QueryResult {
	if k <= 0 {
		k = 10
	}
	var qr QueryResult
	scorer := rank.NewScorer(rank.FromGlobal(e.global))
	e.mu.Lock()
	e.queries++
	targets := make([]int, 0, len(e.parts))
	for p := range e.parts {
		if e.downs[p] {
			qr.Degraded = true
			continue
		}
		targets = append(targets, p)
	}
	e.mu.Unlock()
	qr.ServersContacted = len(targets)

	evals := make([]partEval, len(targets))
	conc.Do(len(targets), e.workers, func(i int) {
		evals[i].rs, evals[i].es = rank.EvaluatePhrase(e.parts[targets[i]], scorer, terms, k)
	})
	lists := make([][]rank.Result, len(targets))
	var slowest float64
	e.mu.Lock()
	for i, p := range targets {
		es := evals[i].es
		service := e.cost.ServiceMs(es.PostingsDecoded)
		e.busyMs[p] += service
		if t := e.lanMs + service; t > slowest {
			slowest = t
		}
		//dwrlint:allow statsmerge:FinalThreshold phrase evaluation is exhaustive per partition; there is no threshold to feed forward
		qr.PostingsDecoded += es.PostingsDecoded
		qr.ListsAccessed += es.ListsAccessed
		qr.PostingBytesRead += es.BytesRead
		qr.PostingBytesDecoded += es.BytesDecoded
		qr.BytesTransferred += resultBytes(len(evals[i].rs))
		lists[i] = evals[i].rs
	}
	e.mu.Unlock()
	qr.Results = rank.MergeResults(k, lists...)
	qr.LatencyMs = slowest + e.lanMs
	qr.Rounds = 1
	return qr
}

// QueryPhrase evaluates an exact-phrase query through the term-
// partitioned pipeline. compressPositions selects the wire encoding of
// the travelling candidate positions: raw 4-byte integers, or the
// delta+varint encoding the paper recommends.
//
// Unlike Query, the phrase pipeline stays serial per query: each hop
// prunes its posting scan by the candidate set the previous hop shipped
// and aborts the route once the intersection empties, so hop h's work
// genuinely depends on hop h-1's output. Only the accounting is
// lock-guarded for concurrent callers.
func (e *TermEngine) QueryPhrase(terms []string, k int, compressPositions bool) QueryResult {
	if k <= 0 {
		k = 10
	}
	e.mu.Lock()
	e.queries++
	e.mu.Unlock()
	var qr QueryResult
	if len(terms) == 0 {
		return qr
	}
	route := e.tp.PartsOf(terms)
	qr.ServersContacted = len(route)
	qr.Rounds = len(route)
	if len(route) != len(uniqueParts(e.tp.Assign, terms)) {
		// Defensive: PartsOf already dedupes; keep the invariant obvious.
		panic("qproc: inconsistent phrase route")
	}

	// Candidate phrase-start positions travel server to server. The
	// intersection ∩ᵢ(positions(termᵢ)−i) is commutative, so slots are
	// processed grouped by owning server, in route order.
	var starts map[int][]int32
	latency := 0.0
	for _, s := range route {
		ix := e.servers[s]
		postings := 0
		var bytesRead int64
		for slot, t := range terms {
			if e.tp.Assign[t] != s {
				continue
			}
			it := ix.PostingsWithPositions(t)
			if it == nil {
				starts = map[int][]int32{}
				break
			}
			qr.ListsAccessed++
			bytesRead += int64(ix.PostingBytes(t))
			cur := make(map[int][]int32)
			for it.Next() {
				postings++
				p := it.Posting()
				ext := ix.ExtID(p.Doc)
				if starts != nil {
					if _, ok := starts[ext]; !ok {
						continue
					}
				}
				adj := make([]int32, 0, len(p.Pos))
				for _, pos := range p.Pos {
					if sp := pos - int32(slot); sp >= 0 {
						adj = append(adj, sp)
					}
				}
				if len(adj) > 0 {
					cur[ext] = adj
				}
			}
			if starts == nil {
				starts = cur
			} else {
				starts = intersectStartMaps(starts, cur)
			}
			if len(starts) == 0 {
				break
			}
		}
		service := e.cost.ServiceMs(postings) + e.cost.AccumulatorMs(len(starts))
		e.mu.Lock()
		e.busyMs[s] += service
		e.mu.Unlock()
		latency += e.lanMs + service
		qr.PostingsDecoded += postings
		qr.PostingBytesRead += bytesRead
		// Ship the accumulator: per doc an 8-byte header plus positions.
		var shipped int64
		for _, ss := range starts {
			shipped += 8
			if compressPositions {
				shipped += int64(rank.EncodedPositionsSize(ss))
			} else {
				shipped += int64(4 * len(ss))
			}
		}
		qr.BytesTransferred += shipped
		if len(starts) == 0 {
			break
		}
	}
	latency += e.lanMs

	// Final scoring at the last pipeline server.
	idf := 0.0
	for _, t := range dedupTerms(terms) {
		if v := e.scorer.IDF(t); v > idf {
			idf = v
		}
	}
	last := e.servers[route[len(route)-1]]
	rs := make([]rank.Result, 0, len(starts))
	for ext, ss := range starts {
		doc := last.InternalID(ext)
		if doc < 0 {
			continue
		}
		rs = append(rs, rank.Result{Doc: ext, Score: e.scorer.Term(int32(len(ss)), last.DocLen(doc), idf)})
	}
	rank.SortResults(rs)
	if len(rs) > k {
		rs = rs[:k]
	}
	qr.Results = rs
	qr.LatencyMs = latency
	return qr
}

// intersectStartMaps mirrors rank's sorted-list intersection for the
// pipelined accumulator.
func intersectStartMaps(a, b map[int][]int32) map[int][]int32 {
	out := make(map[int][]int32)
	for doc, as := range a {
		bs, ok := b[doc]
		if !ok {
			continue
		}
		var merged []int32
		i, j := 0, 0
		for i < len(as) && j < len(bs) {
			switch {
			case as[i] == bs[j]:
				merged = append(merged, as[i])
				i++
				j++
			case as[i] < bs[j]:
				i++
			default:
				j++
			}
		}
		if len(merged) > 0 {
			out[doc] = merged
		}
	}
	return out
}

func uniqueParts(assign map[string]int, terms []string) map[int]bool {
	out := make(map[int]bool)
	for _, t := range terms {
		if p, ok := assign[t]; ok {
			out[p] = true
		}
	}
	return out
}
