package qproc

import (
	"sync"
	"sync/atomic"
)

// defaultWorkers is the fan-out width newly constructed engines start
// with; 0 means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the broker fan-out width that newly
// constructed engines (DocEngine, TermEngine) start with: 1 forces the
// serial broker, 0 restores GOMAXPROCS. Existing engines are
// unaffected; use their SetWorkers method. Command-line tools expose
// this as a -workers flag so every experiment can be replayed serially
// or in parallel without code changes — results are identical either
// way, by the gather-point determinism contract (see internal/conc).
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers reports the current engine-construction default
// (0 = GOMAXPROCS).
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// Engine-construction cache defaults, the -cachecap/-cachettl/
// -cacheshards story for command-line tools: set once from flags, and
// every engine constructed afterwards starts with the configured
// caches. Both default to disabled, preserving the accounting of
// existing experiments exactly.
var (
	defaultCacheMu  sync.Mutex
	defaultRCConfig *ResultCacheConfig
	defaultPLBytes  atomic.Int64
)

// SetDefaultResultCache sets the result-cache configuration newly
// constructed engines start with; nil (the initial state) disables it.
// The config is copied; SDC static keys are workload-specific, so CLIs
// that want a warmed SDC should build the cache themselves (see
// internal/core).
func SetDefaultResultCache(cfg *ResultCacheConfig) {
	defaultCacheMu.Lock()
	defer defaultCacheMu.Unlock()
	if cfg == nil {
		defaultRCConfig = nil
		return
	}
	c := *cfg
	c.StaticKeys = append([]string(nil), cfg.StaticKeys...)
	defaultRCConfig = &c
}

// SetDefaultPostingsCacheBytes sets the per-server posting-list cache
// budget newly constructed engines start with (0 disables).
func SetDefaultPostingsCacheBytes(n int64) {
	if n < 0 {
		n = 0
	}
	defaultPLBytes.Store(n)
}

// applyDefaultCaches installs the configured default caches on a new
// engine via its setters.
func applyDefaultCaches(setRC func(*ResultCache), setPL func(int64)) {
	defaultCacheMu.Lock()
	cfg := defaultRCConfig
	defaultCacheMu.Unlock()
	if cfg != nil {
		setRC(NewResultCache(*cfg))
	}
	if n := defaultPLBytes.Load(); n > 0 {
		setPL(n)
	}
}
