package qproc

import (
	"sync"
	"sync/atomic"
)

// This file holds the deprecated package-level construction defaults.
// New code configures engines with functional options at construction
// (WithWorkers, WithResultCache, WithPostingsCache, WithFaultPolicy)
// and sets ambient CLI-wide defaults with SetDefaultOptions; these
// shims remain so existing callers keep compiling and behaving
// identically.

// defaultWorkers is the fan-out width newly constructed engines start
// with; 0 means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the broker fan-out width that newly
// constructed engines (DocEngine, TermEngine) start with: 1 forces the
// serial broker, 0 restores GOMAXPROCS. Existing engines are
// unaffected. Results are identical at any width, by the gather-point
// determinism contract (see internal/conc).
//
// Deprecated: use SetDefaultOptions(WithWorkers(n)) or pass
// WithWorkers(n) to the engine constructor.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers reports the current engine-construction default
// (0 = GOMAXPROCS).
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// Engine-construction cache defaults. Both default to disabled,
// preserving the accounting of existing experiments exactly.
var (
	defaultCacheMu  sync.Mutex
	defaultRCConfig *ResultCacheConfig
	defaultPLBytes  atomic.Int64
)

// SetDefaultResultCache sets the result-cache configuration newly
// constructed engines start with; nil (the initial state) disables it.
// The config is copied; SDC static keys are workload-specific, so CLIs
// that want a warmed SDC should build the cache themselves (see
// internal/core).
//
// Deprecated: use SetDefaultOptions(WithResultCache(cfg)) or pass
// WithResultCache(cfg) to the engine constructor.
func SetDefaultResultCache(cfg *ResultCacheConfig) {
	defaultCacheMu.Lock()
	defer defaultCacheMu.Unlock()
	if cfg == nil {
		defaultRCConfig = nil
		return
	}
	c := *cfg
	c.StaticKeys = append([]string(nil), cfg.StaticKeys...)
	defaultRCConfig = &c
}

// SetDefaultPostingsCacheBytes sets the per-server posting-list cache
// budget newly constructed engines start with (0 disables).
//
// Deprecated: use SetDefaultOptions(WithPostingsCache(n)) or pass
// WithPostingsCache(n) to the engine constructor.
func SetDefaultPostingsCacheBytes(n int64) {
	if n < 0 {
		n = 0
	}
	defaultPLBytes.Store(n)
}
