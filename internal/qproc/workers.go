package qproc

import "sync/atomic"

// defaultWorkers is the fan-out width newly constructed engines start
// with; 0 means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the broker fan-out width that newly
// constructed engines (DocEngine, TermEngine) start with: 1 forces the
// serial broker, 0 restores GOMAXPROCS. Existing engines are
// unaffected; use their SetWorkers method. Command-line tools expose
// this as a -workers flag so every experiment can be replayed serially
// or in parallel without code changes — results are identical either
// way, by the gather-point determinism contract (see internal/conc).
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers reports the current engine-construction default
// (0 = GOMAXPROCS).
func DefaultWorkers() int { return int(defaultWorkers.Load()) }
