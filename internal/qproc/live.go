package qproc

import (
	"fmt"
	"sort"
	"sync"

	"dwr/internal/conc"
	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/rank"
)

// LiveEngine is the document-partitioned broker for collections that
// are still being written: every partition is an index.SegmentStore
// whose segment manifest is atomically swapped by segment writers and
// background merges while queries are in flight. A query takes one
// immutable manifest snapshot per partition before scattering, so no
// request ever observes a half-swapped view — a document is either
// entirely visible in the snapshot or not there at all. Each store's
// OnChange hook bumps the broker result cache's generation, so cached
// answers never outlive the index state they were computed from.
//
// LiveEngine deliberately reuses the static engines' configuration
// surface (Option) and answer shape (QueryResult); it trades their
// richer machinery (global-statistics rounds, selection, fault policy)
// for freshness: every partition scores against its own snapshot's
// statistics, exactly like index.Dynamic does for a single partition.
type LiveEngine struct {
	cost     CostModel
	stores   []*index.SegmentStore
	workers  int
	rcache   *ResultCache
	mediator Mediator

	mu      sync.Mutex
	queries int
	busyMs  []float64
	scanned int64
	maxGen  []uint64 // highest manifest generation seen per partition
	sel     metrics.SelectionCounters
}

// NewLiveEngine builds a broker over the given per-partition segment
// stores. The stores may already be receiving writes; they keep
// receiving writes while the engine serves. Supported options:
// WithWorkers, WithResultCache / WithResultCacheInstance (the cache is
// wired to every store's OnChange hook), and the ambient defaults.
func NewLiveEngine(stores []*index.SegmentStore, options ...Option) (*LiveEngine, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("qproc: NewLiveEngine needs at least one segment store")
	}
	eo := resolveOptions(options)
	e := &LiveEngine{
		cost:     DefaultCostModel(),
		stores:   stores,
		workers:  eo.workers,
		rcache:   eo.resultCache(),
		mediator: eo.mediator,
		busyMs:   make([]float64, len(stores)),
		maxGen:   make([]uint64, len(stores)),
	}
	if e.rcache != nil {
		for _, s := range stores {
			s.OnChange(e.rcache.Invalidate)
		}
	}
	return e, nil
}

// LiveCacheKey is the result-cache key of an unmediated (full fan-out)
// LiveEngine query: the canonical term list plus k.
func LiveCacheKey(terms []string, k int) string {
	return fmt.Sprintf("live|k=%d|%s", k, NormalizeQueryKey(terms))
}

// liveMediatedCacheKey names the exact partition subset a mediated
// answer was computed from (the `sel=` rule: differently-selected
// evaluations must not collide).
func liveMediatedCacheKey(terms []string, k int, parts []int) string {
	return FederatedCacheKey("live|"+NormalizeQueryKey(terms), k, parts, false)
}

// Query evaluates terms over one manifest snapshot per partition and
// returns the merged top-k with resource accounting. Safe for
// concurrent callers and concurrent with writes to the stores. With a
// mediator configured (WithMediator) the scatter is restricted to the
// selected partitions; a full-fan-out decision shares the unmediated
// cache key, since its answer is identical by construction.
func (e *LiveEngine) Query(terms []string, k int) QueryResult {
	if k <= 0 {
		k = 10
	}

	// Mediation: pick the partition subset before the cache lookup, so
	// the key can name it. Stats freshness is the mediator's job (it
	// watches the stores' OnChange hooks, like the result cache does).
	targets := make([]int, len(e.stores))
	for i := range targets {
		targets[i] = i
	}
	full := true
	if e.mediator != nil {
		d := e.mediator.Decide(terms, targets)
		if !d.FullFanout {
			var sel []int
			for _, p := range d.Sites {
				if p >= 0 && p < len(e.stores) {
					sel = append(sel, p)
				}
			}
			if len(sel) > 0 {
				targets, full = sel, false
			}
		}
	}

	var ckey string
	if e.rcache != nil {
		if full {
			ckey = LiveCacheKey(terms, k)
		} else {
			ckey = liveMediatedCacheKey(terms, k, targets)
		}
		if hit, ok := e.rcache.Get(ckey); ok {
			qr := QueryResult{Results: hit.Results, FromCache: true, LatencyMs: e.cost.CacheHitMs}
			e.note(qr, nil, nil, nil, full, 0)
			return qr
		}
	}

	// Snapshot, then scatter. Taking all snapshots before evaluating
	// makes the answer a pure function of the captured manifests.
	mans := make([]*index.Manifest, len(targets))
	for i, p := range targets {
		mans[i] = e.stores[p].Manifest()
	}
	partRes := make([][]index.SearchResult, len(mans))
	partScanned := make([]int64, len(mans))
	conc.Do(len(mans), e.workers, func(i int) {
		partRes[i], partScanned[i] = mans[i].SearchScanned(terms, k)
	})

	// Serial gather: identical result no matter how the scatter was
	// scheduled.
	var merged []rank.Result
	for _, rs := range partRes {
		for _, r := range rs {
			merged = append(merged, rank.Result{Doc: r.Doc, Score: r.Score})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].Doc < merged[j].Doc
	})
	if len(merged) > k {
		merged = merged[:k]
	}

	qr := QueryResult{
		Results:           merged,
		ServersContacted:  len(mans),
		PartitionsSkipped: len(e.stores) - len(targets),
		Rounds:            1,
		Waves:             1,
	}
	var maxMs float64
	for _, n := range partScanned {
		qr.PostingsDecoded += int(n)
		ms := e.cost.ServiceMs(int(n))
		if ms > maxMs {
			maxMs = ms
		}
	}
	qr.BytesTransferred = int64(len(mans)) * resultBytes(k)
	qr.LatencyMs = maxMs
	e.note(qr, targets, mans, partScanned, full, len(e.stores)-len(targets))
	if e.rcache != nil {
		e.rcache.Put(ckey, qr)
	}
	return qr
}

// note records per-query accounting under the stats lock. targets maps
// the scatter slots back to partition indexes (nil for cache hits).
func (e *LiveEngine) note(qr QueryResult, targets []int, mans []*index.Manifest, scanned []int64, full bool, skipped int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries++
	for i := range scanned {
		e.busyMs[targets[i]] += e.cost.ServiceMs(int(scanned[i]))
		e.scanned += scanned[i]
	}
	for i := range mans {
		if g := mans[i].Gen(); g > e.maxGen[targets[i]] {
			e.maxGen[targets[i]] = g
		}
	}
	if e.mediator != nil && !qr.FromCache {
		e.sel.Queries++
		if full {
			e.sel.FullFanout++
		} else {
			e.sel.Mediated++
		}
		e.sel.SitesContacted += len(targets)
		e.sel.SitesSkipped += skipped
	}
}

// ObserveSelectionRecall feeds one Recall@k sample of a mediated answer
// against the full fan-out into the selection counters.
func (e *LiveEngine) ObserveSelectionRecall(r float64) {
	e.mu.Lock()
	e.sel.RecallSum += r
	e.sel.RecallSamples++
	e.mu.Unlock()
}

// QueryTopK implements Engine.
func (e *LiveEngine) QueryTopK(terms []string, k int) QueryResult { return e.Query(terms, k) }

// K implements Engine: the number of partitions (segment stores).
func (e *LiveEngine) K() int { return len(e.stores) }

// Stats implements Engine.
func (e *LiveEngine) Stats() EngineStats {
	e.mu.Lock()
	st := EngineStats{Queries: e.queries, Selection: e.sel}
	e.mu.Unlock()
	if e.rcache != nil {
		st.ResultCache = e.rcache.Stats()
	}
	return st
}

// Health implements Engine. Segment stores are in-process and cannot be
// down; a partition that has not received documents yet simply answers
// from an empty manifest.
func (e *LiveEngine) Health() Health { return Health{Units: len(e.stores)} }

// ResultCache returns the installed result cache (nil if none).
func (e *LiveEngine) ResultCache() *ResultCache { return e.rcache }

// BusyMs returns the accumulated virtual busy time per partition.
func (e *LiveEngine) BusyMs() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]float64(nil), e.busyMs...)
}

// Generations returns, per partition, the highest manifest generation
// any query has observed — operational visibility into how fresh the
// served view is.
func (e *LiveEngine) Generations() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]uint64(nil), e.maxGen...)
}

// NumDocs returns the total live documents across the current
// partition manifests (tombstoned documents excluded).
func (e *LiveEngine) NumDocs() int {
	n := 0
	for _, s := range e.stores {
		n += s.Manifest().NumDocs()
	}
	return n
}
