package qproc

import (
	"fmt"
	"sort"
	"sync"

	"dwr/internal/conc"
	"dwr/internal/index"
	"dwr/internal/rank"
)

// LiveEngine is the document-partitioned broker for collections that
// are still being written: every partition is an index.SegmentStore
// whose segment manifest is atomically swapped by segment writers and
// background merges while queries are in flight. A query takes one
// immutable manifest snapshot per partition before scattering, so no
// request ever observes a half-swapped view — a document is either
// entirely visible in the snapshot or not there at all. Each store's
// OnChange hook bumps the broker result cache's generation, so cached
// answers never outlive the index state they were computed from.
//
// LiveEngine deliberately reuses the static engines' configuration
// surface (Option) and answer shape (QueryResult); it trades their
// richer machinery (global-statistics rounds, selection, fault policy)
// for freshness: every partition scores against its own snapshot's
// statistics, exactly like index.Dynamic does for a single partition.
type LiveEngine struct {
	cost    CostModel
	stores  []*index.SegmentStore
	workers int
	rcache  *ResultCache

	mu      sync.Mutex
	queries int
	busyMs  []float64
	scanned int64
	maxGen  []uint64 // highest manifest generation seen per partition
}

// NewLiveEngine builds a broker over the given per-partition segment
// stores. The stores may already be receiving writes; they keep
// receiving writes while the engine serves. Supported options:
// WithWorkers, WithResultCache / WithResultCacheInstance (the cache is
// wired to every store's OnChange hook), and the ambient defaults.
func NewLiveEngine(stores []*index.SegmentStore, options ...Option) (*LiveEngine, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("qproc: NewLiveEngine needs at least one segment store")
	}
	eo := resolveOptions(options)
	e := &LiveEngine{
		cost:    DefaultCostModel(),
		stores:  stores,
		workers: eo.workers,
		rcache:  eo.resultCache(),
		busyMs:  make([]float64, len(stores)),
		maxGen:  make([]uint64, len(stores)),
	}
	if e.rcache != nil {
		for _, s := range stores {
			s.OnChange(e.rcache.Invalidate)
		}
	}
	return e, nil
}

// LiveCacheKey is the result-cache key of a LiveEngine query: the
// canonical term list plus k (LiveEngine has no per-query options that
// change the answer).
func LiveCacheKey(terms []string, k int) string {
	return fmt.Sprintf("live|k=%d|%s", k, NormalizeQueryKey(terms))
}

// Query evaluates terms over one manifest snapshot per partition and
// returns the merged top-k with resource accounting. Safe for
// concurrent callers and concurrent with writes to the stores.
func (e *LiveEngine) Query(terms []string, k int) QueryResult {
	if k <= 0 {
		k = 10
	}
	var ckey string
	if e.rcache != nil {
		ckey = LiveCacheKey(terms, k)
		if hit, ok := e.rcache.Get(ckey); ok {
			qr := QueryResult{Results: hit.Results, FromCache: true, LatencyMs: e.cost.CacheHitMs}
			e.note(qr, nil, nil)
			return qr
		}
	}

	// Snapshot, then scatter. Taking all snapshots before evaluating
	// makes the answer a pure function of the captured manifests.
	mans := make([]*index.Manifest, len(e.stores))
	for i, s := range e.stores {
		mans[i] = s.Manifest()
	}
	partRes := make([][]index.SearchResult, len(mans))
	partScanned := make([]int64, len(mans))
	conc.Do(len(mans), e.workers, func(i int) {
		partRes[i], partScanned[i] = mans[i].SearchScanned(terms, k)
	})

	// Serial gather: identical result no matter how the scatter was
	// scheduled.
	var merged []rank.Result
	for _, rs := range partRes {
		for _, r := range rs {
			merged = append(merged, rank.Result{Doc: r.Doc, Score: r.Score})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].Doc < merged[j].Doc
	})
	if len(merged) > k {
		merged = merged[:k]
	}

	qr := QueryResult{
		Results:          merged,
		ServersContacted: len(mans),
		Rounds:           1,
		Waves:            1,
	}
	var maxMs float64
	for _, n := range partScanned {
		qr.PostingsDecoded += int(n)
		ms := e.cost.ServiceMs(int(n))
		if ms > maxMs {
			maxMs = ms
		}
	}
	qr.BytesTransferred = int64(len(mans)) * resultBytes(k)
	qr.LatencyMs = maxMs
	e.note(qr, mans, partScanned)
	if e.rcache != nil {
		e.rcache.Put(ckey, qr)
	}
	return qr
}

// note records per-query accounting under the stats lock.
func (e *LiveEngine) note(qr QueryResult, mans []*index.Manifest, scanned []int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries++
	for i := range scanned {
		e.busyMs[i] += e.cost.ServiceMs(int(scanned[i]))
		e.scanned += scanned[i]
	}
	for i := range mans {
		if g := mans[i].Gen(); g > e.maxGen[i] {
			e.maxGen[i] = g
		}
	}
}

// QueryTopK implements Engine.
func (e *LiveEngine) QueryTopK(terms []string, k int) QueryResult { return e.Query(terms, k) }

// K implements Engine: the number of partitions (segment stores).
func (e *LiveEngine) K() int { return len(e.stores) }

// Stats implements Engine.
func (e *LiveEngine) Stats() EngineStats {
	e.mu.Lock()
	st := EngineStats{Queries: e.queries}
	e.mu.Unlock()
	if e.rcache != nil {
		st.ResultCache = e.rcache.Stats()
	}
	return st
}

// Health implements Engine. Segment stores are in-process and cannot be
// down; a partition that has not received documents yet simply answers
// from an empty manifest.
func (e *LiveEngine) Health() Health { return Health{Units: len(e.stores)} }

// ResultCache returns the installed result cache (nil if none).
func (e *LiveEngine) ResultCache() *ResultCache { return e.rcache }

// BusyMs returns the accumulated virtual busy time per partition.
func (e *LiveEngine) BusyMs() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]float64(nil), e.busyMs...)
}

// Generations returns, per partition, the highest manifest generation
// any query has observed — operational visibility into how fresh the
// served view is.
func (e *LiveEngine) Generations() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]uint64(nil), e.maxGen...)
}

// NumDocs returns the total live documents across the current
// partition manifests (tombstoned documents excluded).
func (e *LiveEngine) NumDocs() int {
	n := 0
	for _, s := range e.stores {
		n += s.Manifest().NumDocs()
	}
	return n
}
