package qproc

import "dwr/internal/metrics"

// Engine is the uniform query surface every qproc engine implements —
// document-partitioned (DocEngine), pipelined term-partitioned
// (TermEngine), and geographically distributed (MultiSite). Callers that
// only need "top-k for these terms, plus operational visibility" can
// hold any engine behind this interface; engine-specific capabilities
// (statistics modes, collection selection, routing policies) stay on the
// concrete types.
type Engine interface {
	// QueryTopK evaluates terms and returns the top-k answer with full
	// resource accounting. Engine-specific per-query knobs take their
	// configured defaults (WithDocQueryDefaults for DocEngine).
	QueryTopK(terms []string, k int) QueryResult
	// K returns the engine's unit count: partitions, term servers, or
	// sites.
	K() int
	// Stats returns cumulative operational counters.
	Stats() EngineStats
	// Health reports which units are currently unable to answer.
	Health() Health
}

// Interface conformance, checked at compile time.
var (
	_ Engine = (*DocEngine)(nil)
	_ Engine = (*TermEngine)(nil)
	_ Engine = (*MultiSite)(nil)
	_ Engine = (*LiveEngine)(nil)
)

// EngineStats is the uniform operational snapshot: query outcomes, the
// fault policy's counters, cache effectiveness, and the per-unit latency
// histograms the hedging threshold is derived from.
type EngineStats struct {
	Queries  int // queries accepted (including cache hits)
	Degraded int // answered partially (some units lost)
	Failed   int // refused entirely (fail-fast or total outage)
	// Faults are the robustness counters (zero value when no fault
	// options were configured).
	Faults metrics.FaultCounters
	// Threshold are the wave-scheduler counters of queries evaluated
	// with threshold sharing (zero value when never used).
	Threshold metrics.ThresholdCounters
	// Selection are the federated-mediation counters: site fan-out and
	// sampled selection quality (zero value when no mediator was
	// configured).
	Selection metrics.SelectionCounters
	// ResultCache reflects the broker-level result cache (zero value
	// when disabled).
	ResultCache CacheStats
	// Postings aggregates the per-server posting-list caches (zero value
	// when disabled).
	Postings PostingsCacheStats
	// Latency holds the per-unit latency histograms of robust calls (nil
	// when no fault options were configured).
	Latency *metrics.LatencyByPart
}

// Health reports unit liveness at the time of the call.
type Health struct {
	Units int   // total units (partitions / term servers / sites)
	Down  []int // units that cannot answer right now, ascending
}

// Live returns the number of units able to answer.
func (h Health) Live() int { return h.Units - len(h.Down) }

// Healthy reports whether every unit can answer.
func (h Health) Healthy() bool { return len(h.Down) == 0 }

// --- DocEngine ---

// QueryTopK implements Engine: one evaluation with the engine's default
// per-query options (WithDocQueryDefaults) and the given k.
func (e *DocEngine) QueryTopK(terms []string, k int) QueryResult {
	opt := e.topkOpts
	opt.K = k
	return e.Query(terms, opt)
}

// Stats implements Engine.
func (e *DocEngine) Stats() EngineStats {
	e.mu.Lock()
	st := EngineStats{Queries: e.queries, Degraded: e.degraded, Failed: e.failed, Threshold: e.tsc}
	if e.rb != nil {
		st.Faults = e.rb.snapshot()
		st.Latency = e.rb.hist
	}
	e.mu.Unlock()
	if e.rcache != nil {
		st.ResultCache = e.rcache.Stats()
	}
	st.Postings = e.PostingsCacheStats()
	return st
}

// Health implements Engine: partitions marked down (SetDown) plus
// partitions whose every replica the injector currently fails. The
// injector view is evaluated at the next query's tick, so Health answers
// "could the next query use this partition".
func (e *DocEngine) Health() Health {
	e.mu.Lock()
	h := Health{Units: len(e.parts)}
	down := make(map[int]bool)
	for p, d := range e.downs {
		if d {
			down[p] = true
		}
	}
	tick := int64(e.queries) + 1
	e.mu.Unlock()
	if e.rb != nil && e.rb.inj != nil {
		for _, p := range e.rb.inj.DownUnits(tick, len(e.parts), e.rb.policy.Replicas) {
			down[p] = true
		}
	}
	for p := 0; p < h.Units; p++ {
		if down[p] {
			h.Down = append(h.Down, p)
		}
	}
	return h
}

// --- TermEngine ---

// QueryTopK implements Engine.
func (e *TermEngine) QueryTopK(terms []string, k int) QueryResult {
	return e.Query(terms, k)
}

// Stats implements Engine.
func (e *TermEngine) Stats() EngineStats {
	e.mu.Lock()
	st := EngineStats{Queries: e.queries, Degraded: e.degraded, Failed: e.failed}
	if e.rb != nil {
		st.Faults = e.rb.snapshot()
		st.Latency = e.rb.hist
	}
	e.mu.Unlock()
	if e.rcache != nil {
		st.ResultCache = e.rcache.Stats()
	}
	st.Postings = e.PostingsCacheStats()
	return st
}

// Health implements Engine: term servers whose every replica the
// injector currently fails (TermEngine has no static down-marking).
func (e *TermEngine) Health() Health {
	h := Health{Units: len(e.servers)}
	e.mu.Lock()
	tick := int64(e.queries) + 1
	e.mu.Unlock()
	if e.rb != nil && e.rb.inj != nil {
		h.Down = e.rb.inj.DownUnits(tick, len(e.servers), e.rb.policy.Replicas)
	}
	return h
}

// --- MultiSite ---

// QueryTopK implements Engine: the query is submitted from HomeRegion at
// virtual hour Now, with the canonical cache key of the term list. Like
// Submit, it is meant for a single driving goroutine. With a mediator
// configured (WithMediator) the query takes the federated path —
// collection selection decides the site subset; without one the
// single-executor Submit path is byte-identical to the pre-mediator
// broker.
func (m *MultiSite) QueryTopK(terms []string, k int) QueryResult {
	if m.mediator != nil {
		r := m.QueryFederated(terms, NormalizeQueryKey(terms), m.HomeRegion, m.Now, k)
		return r.QueryResult
	}
	r := m.Submit(terms, NormalizeQueryKey(terms), m.HomeRegion, m.Now, k)
	return r.QueryResult
}

// K implements Engine: the number of sites.
func (m *MultiSite) K() int { return len(m.Sites) }

// Stats implements Engine: outcome counters aggregate over the site
// engines' answers plus the site-level fault path; cache stats cover the
// site engines' broker caches (the per-site WAN caches are
// cache.Cache instances without hit counters).
func (m *MultiSite) Stats() EngineStats {
	var st EngineStats
	st.Queries = int(m.ticks)
	st.Selection = m.sel
	if m.rb != nil {
		st.Faults = m.rb.snapshot()
		st.Latency = m.rb.hist
	}
	for _, s := range m.Sites {
		es := s.Engine.Stats()
		// Queries stays m.ticks: one multi-site query fans out to several
		// site engines, so summing per-site Queries would double-count.
		//dwrlint:allow statsmerge:Queries m.ticks is the authoritative query count; per-site Queries counts fan-out, not accepted queries
		st.Degraded += es.Degraded
		st.Failed += es.Failed
		st.Faults.Merge(es.Faults)
		st.Threshold.Merge(es.Threshold)
		st.Selection.Merge(es.Selection)
		st.ResultCache.Hits += es.ResultCache.Hits
		st.ResultCache.Misses += es.ResultCache.Misses
		st.ResultCache.StaleGen += es.ResultCache.StaleGen
		st.ResultCache.ExpiredTTL += es.ResultCache.ExpiredTTL
		st.Postings.Hits += es.Postings.Hits
		st.Postings.Misses += es.Postings.Misses
		st.Postings.UsedBytes += es.Postings.UsedBytes
	}
	return st
}

// Health implements Engine: sites inside an outage window at virtual
// hour Now, plus sites the injector currently fails entirely.
func (m *MultiSite) Health() Health {
	h := Health{Units: len(m.Sites)}
	down := make(map[int]bool)
	for _, s := range m.Sites {
		if !s.UpAt(m.Now) {
			down[s.ID] = true
		}
	}
	if m.rb != nil && m.rb.inj != nil {
		for _, s := range m.rb.inj.DownUnits(m.ticks+1, len(m.Sites), 1) {
			down[s] = true
		}
	}
	for s := 0; s < h.Units; s++ {
		if down[s] {
			h.Down = append(h.Down, s)
		}
	}
	return h
}
