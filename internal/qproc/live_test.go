package qproc

import (
	"sync"
	"testing"

	"dwr/internal/index"
)

// liveFixture builds a LiveEngine over nparts segment stores filled
// with docs round-robin through segment writers.
func liveFixture(t *testing.T, docs []index.Doc, nparts, segDocs int, options ...Option) (*LiveEngine, []*index.SegmentStore, []*index.SegmentWriter) {
	t.Helper()
	stores := make([]*index.SegmentStore, nparts)
	writers := make([]*index.SegmentWriter, nparts)
	for i := range stores {
		stores[i] = index.NewSegmentStore(index.DefaultOptions(), index.MergePolicy{Radix: 3})
		writers[i] = index.NewSegmentWriter(stores[i], segDocs)
	}
	for _, d := range docs {
		if err := writers[d.Ext%nparts].AddDocument(d.Ext, d.Terms); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range writers {
		if err := w.Cut(); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewLiveEngine(stores, options...)
	if err != nil {
		t.Fatal(err)
	}
	return eng, stores, writers
}

// TestLiveEngineMatchesManifestSearch pins the single-partition answer
// contract: the broker adds scatter, gather, and caching around
// Manifest.Search but must not change its ranking. (Across partitions
// LiveEngine scores with per-snapshot statistics, like index.Dynamic,
// so a global-statistics DocEngine is deliberately NOT the oracle.)
func TestLiveEngineMatchesManifestSearch(t *testing.T) {
	docs := corpus(71, 600, 200)
	live, stores, _ := liveFixture(t, docs, 1, 64)
	for _, q := range [][]string{{"w0001"}, {"w0002", "w0005"}, {"w0000", "w0001", "w0003"}} {
		a := live.Query(q, 10)
		b := stores[0].Manifest().Search(q, 10)
		if len(a.Results) != len(b) {
			t.Fatalf("query %v: broker returned %d results, manifest %d", q, len(a.Results), len(b))
		}
		for i := range a.Results {
			if a.Results[i].Doc != b[i].Doc || a.Results[i].Score != b[i].Score {
				t.Fatalf("query %v rank %d: broker (%d, %v), manifest (%d, %v)",
					q, i, a.Results[i].Doc, a.Results[i].Score, b[i].Doc, b[i].Score)
			}
		}
	}
}

// TestLiveEngineAnswerIndependentOfFanOut: the scatter schedule (serial
// vs parallel workers) must be invisible in the merged answer and in
// the work accounting.
func TestLiveEngineAnswerIndependentOfFanOut(t *testing.T) {
	docs := corpus(74, 800, 200)
	serial, _, _ := liveFixture(t, docs, 4, 64, WithWorkers(1))
	fanned, _, _ := liveFixture(t, docs, 4, 64, WithWorkers(4))
	for _, q := range [][]string{{"w0001"}, {"w0002", "w0005"}, {"w0000", "w0001", "w0003"}} {
		a, b := serial.Query(q, 10), fanned.Query(q, 10)
		if qrFingerprint(a) != qrFingerprint(b) {
			t.Fatalf("query %v: serial and fanned-out answers differ:\n%s\n%s",
				q, qrFingerprint(a), qrFingerprint(b))
		}
	}
}

// TestLiveEngineCacheInvalidatedBySwap verifies the OnChange wiring: a
// cached answer is served until any store swaps its manifest (new
// segment or tombstone), after which the cache generation has moved and
// the next query recomputes against the fresh snapshot.
func TestLiveEngineCacheInvalidatedBySwap(t *testing.T) {
	docs := corpus(72, 300, 150)
	eng, stores, writers := liveFixture(t, docs, 2, 32,
		WithResultCache(ResultCacheConfig{Capacity: 64}))
	q := []string{"w0001", "w0002"}

	first := eng.Query(q, 10)
	if first.FromCache {
		t.Fatal("first query cannot be a cache hit")
	}
	if again := eng.Query(q, 10); !again.FromCache {
		t.Fatal("identical repeat query missed the cache")
	}

	// A tombstone delete swaps a manifest → cached answers are stale.
	victim := first.Results[0].Doc
	if !stores[victim%2].Delete(victim) {
		t.Fatalf("Delete(%d) found nothing", victim)
	}
	after := eng.Query(q, 10)
	if after.FromCache {
		t.Fatal("cache served a pre-delete answer after a manifest swap")
	}
	for _, r := range after.Results {
		if r.Doc == victim {
			t.Fatalf("deleted doc %d still in the post-swap answer", victim)
		}
	}

	// Re-prime, then a writer seal must invalidate the same way.
	if qr := eng.Query(q, 10); !qr.FromCache {
		t.Fatal("repeat query after recompute missed the cache")
	}
	ext := 1_000_000
	for i := 0; i < 40; i++ { // enough adds to seal a 32-doc segment
		if err := writers[ext%2].AddDocument(ext, []string{"w0001", "w0002"}); err != nil {
			t.Fatal(err)
		}
		ext += 2
	}
	if qr := eng.Query(q, 10); qr.FromCache {
		t.Fatal("cache served a stale answer after a segment seal")
	}
}

// TestLiveEngineConcurrentQueriesDuringIngest runs broker queries
// against stores that are being written and merged concurrently
// (exercised under -race by CI). Every answer must be consistent:
// correctly ordered, duplicate-free, and drawn from the known corpus.
func TestLiveEngineConcurrentQueriesDuringIngest(t *testing.T) {
	docs := corpus(73, 1200, 150)
	nparts := 3
	stores := make([]*index.SegmentStore, nparts)
	writers := make([]*index.SegmentWriter, nparts)
	for i := range stores {
		stores[i] = index.NewSegmentStore(index.DefaultOptions(), index.MergePolicy{Radix: 3})
		writers[i] = index.NewSegmentWriter(stores[i], 32)
	}
	eng, err := NewLiveEngine(stores, WithResultCache(ResultCacheConfig{Capacity: 64}))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			queries := [][]string{{"w0000"}, {"w0001", "w0002"}, {"w0003"}}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qr := eng.Query(queries[(i+r)%len(queries)], 20)
				seen := map[int]bool{}
				for j, res := range qr.Results {
					if res.Doc < 0 || res.Doc >= len(docs) {
						t.Errorf("result doc %d outside the corpus", res.Doc)
						return
					}
					if seen[res.Doc] {
						t.Errorf("doc %d appears twice in one answer", res.Doc)
						return
					}
					seen[res.Doc] = true
					if j > 0 && qr.Results[j-1].Score < res.Score {
						t.Errorf("results out of score order at rank %d", j)
						return
					}
				}
			}
		}(r)
	}

	for _, d := range docs {
		if err := writers[d.Ext%nparts].AddDocument(d.Ext, d.Terms); err != nil {
			t.Error(err)
			break
		}
	}
	for _, w := range writers {
		if err := w.Cut(); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	if eng.NumDocs() != len(docs) {
		t.Fatalf("engine sees %d docs after ingest, want %d", eng.NumDocs(), len(docs))
	}
}
