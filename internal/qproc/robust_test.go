package qproc

import (
	"errors"
	"fmt"
	"testing"

	"dwr/internal/cluster"
	"dwr/internal/faultsim"
	"dwr/internal/index"
	"dwr/internal/partition"
)

// qrFingerprint serializes everything observable about a QueryResult so
// determinism tests can compare byte-for-byte.
func qrFingerprint(qr QueryResult) string {
	s := fmt.Sprintf("lat=%v sc=%d r=%d pd=%d la=%d pb=%d bt=%d fc=%v st=%v dg=%v rt=%d hg=%d err=%v |",
		qr.LatencyMs, qr.ServersContacted, qr.Rounds, qr.PostingsDecoded,
		qr.ListsAccessed, qr.PostingBytesRead, qr.BytesTransferred,
		qr.FromCache, qr.Stale, qr.Degraded, qr.Retries, qr.Hedges, qr.Err)
	for _, r := range qr.Results {
		s += fmt.Sprintf(" %d:%v", r.Doc, r.Score)
	}
	return s
}

func buildDocEngine(t *testing.T, docs []index.Doc, k int, options ...Option) *DocEngine {
	t.Helper()
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	e, err := NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, k), options...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// replay runs every query serially and returns the concatenated
// fingerprints plus the count of clean (non-degraded, non-failed)
// answers.
func replay(e Engine, queries [][]string) (string, int) {
	var fp string
	clean := 0
	for _, q := range queries {
		qr := e.QueryTopK(q, 10)
		fp += qrFingerprint(qr) + "\n"
		if !qr.Degraded && qr.Err == nil {
			clean++
		}
	}
	return fp, clean
}

// TestZeroFaultByteIdentity pins the regression contract: an engine
// carrying a fault policy and an injector that injects nothing answers
// byte-identically to a plain engine, at any worker count.
func TestZeroFaultByteIdentity(t *testing.T) {
	docs := corpus(3, 400, 300)
	queries := zipfQueries(7, 120, 300)

	plain := buildDocEngine(t, docs, 4, WithWorkers(1))
	want, _ := replay(plain, queries)

	for _, workers := range []int{1, 3, 8} {
		inj := faultsim.New(99) // installed but injecting nothing
		e := buildDocEngine(t, docs, 4,
			WithWorkers(workers),
			WithFaultPolicy(DefaultFaultPolicy()),
			WithInjector(inj))
		got, _ := replay(e, queries)
		if got != want {
			t.Fatalf("workers=%d: fault-capable engine diverged from plain engine with zero faults", workers)
		}
	}

	// Same contract for the term-partitioned pipeline.
	tp := partition.BinPackTerms(termVocab(docs), func(string) float64 { return 1 }, 4)
	tplain, err := NewTermEngine(index.DefaultOptions(), docs, tp, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	twant, _ := replay(tplain, queries)
	for _, workers := range []int{1, 8} {
		te, err := NewTermEngine(index.DefaultOptions(), docs, tp,
			WithWorkers(workers),
			WithFaultPolicy(DefaultFaultPolicy()),
			WithInjector(faultsim.New(99)))
		if err != nil {
			t.Fatal(err)
		}
		tgot, _ := replay(te, queries)
		if tgot != twant {
			t.Fatalf("term engine workers=%d diverged with zero faults", workers)
		}
	}
}

func termVocab(docs []index.Doc) []string {
	seen := make(map[string]bool)
	var out []string
	for _, d := range docs {
		for _, w := range d.Terms {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// TestFaultDeterminism pins the tentpole's reproducibility contract: a
// fixed injector seed produces identical results, latencies, and fault
// accounting across runs AND across worker counts.
func TestFaultDeterminism(t *testing.T) {
	docs := corpus(3, 400, 300)
	queries := zipfQueries(7, 150, 300)
	build := func(workers int) *DocEngine {
		inj := faultsim.New(42).
			Default(faultsim.Spec{FlakyP: 0.15, SlowP: 0.1, SlowMeanMs: 12}).
			Unit(1, faultsim.Spec{FlakyP: 0.4}).
			Window(faultsim.Window{Unit: 2, Replica: -1, From: 40, To: 60})
		return buildDocEngine(t, docs, 4,
			WithWorkers(workers),
			WithFaultPolicy(DefaultFaultPolicy()),
			WithInjector(inj))
	}
	ref, _ := replay(build(1), queries)
	for _, workers := range []int{1, 2, 8} {
		got, _ := replay(build(workers), queries)
		if got != ref {
			t.Fatalf("workers=%d: fault replay diverged from serial reference", workers)
		}
	}
	// Different seed must actually change something (the schedule is
	// live, not vacuously deterministic).
	other := buildDocEngine(t, docs, 4,
		WithWorkers(1),
		WithFaultPolicy(DefaultFaultPolicy()),
		WithInjector(faultsim.New(43).Default(faultsim.Spec{FlakyP: 0.15, SlowP: 0.1, SlowMeanMs: 12})))
	got, _ := replay(other, queries)
	if got == ref {
		t.Fatal("different fault seed produced an identical replay")
	}
}

// TestRetriesMaskFlakyPartitions pins the acceptance bar: 10% flaky
// partitions with replicas and retries must still serve >= 99% of
// queries non-degraded, reproducibly.
func TestRetriesMaskFlakyPartitions(t *testing.T) {
	docs := corpus(3, 400, 300)
	queries := zipfQueries(11, 400, 300)
	build := func() *DocEngine {
		return buildDocEngine(t, docs, 4,
			WithFaultPolicy(DefaultFaultPolicy()), // 2 replicas, 2 retries
			WithInjector(faultsim.New(7).Default(faultsim.Spec{FlakyP: 0.10})))
	}
	e := build()
	_, clean := replay(e, queries)
	if frac := float64(clean) / float64(len(queries)); frac < 0.99 {
		t.Fatalf("only %.1f%% clean answers under 10%% flakiness, want >= 99%%", 100*frac)
	}
	st := e.Stats()
	if st.Faults.FaultsSeen == 0 || st.Faults.Retries == 0 {
		t.Fatalf("flaky run recorded no faults/retries: %+v", st.Faults)
	}
	// Reproducible: a second identical engine sees identical counters.
	e2 := build()
	replay(e2, queries)
	if e2.Stats().Faults != st.Faults {
		t.Fatalf("fault counters not reproducible: %+v vs %+v", e2.Stats().Faults, st.Faults)
	}
	// Sanity-check the replication arithmetic the policy advertises.
	if p := DefaultFaultPolicy().PredictedAvailability(0.10); p < 0.99 {
		t.Fatalf("predicted availability %.4f below 0.99", p)
	}
}

// TestNoRetriesDegrade is the control for the above: the same fault
// schedule without retries/replicas must degrade noticeably.
func TestNoRetriesDegrade(t *testing.T) {
	docs := corpus(3, 400, 300)
	queries := zipfQueries(11, 400, 300)
	e := buildDocEngine(t, docs, 4,
		WithFaultPolicy(FaultPolicy{MaxRetries: 0, Replicas: 1}),
		WithInjector(faultsim.New(7).Default(faultsim.Spec{FlakyP: 0.10})))
	_, clean := replay(e, queries)
	if frac := float64(clean) / float64(len(queries)); frac > 0.90 {
		t.Fatalf("%.1f%% clean without retries — schedule too gentle to test against", 100*frac)
	}
}

// TestFailFastReturnsErrUnavailable pins the explicit degradation modes:
// best-effort flags Degraded, fail-fast refuses with a typed error.
func TestFailFastReturnsErrUnavailable(t *testing.T) {
	docs := corpus(3, 300, 200)
	inj := func() *faultsim.Injector {
		// Partition 2 is dead on every replica; retries cannot save it.
		return faultsim.New(1).Unit(2, faultsim.Spec{Crash: true})
	}
	best := buildDocEngine(t, docs, 4,
		WithFaultPolicy(FaultPolicy{MaxRetries: 2, Replicas: 2, Mode: BestEffort}),
		WithInjector(inj()))
	qr := best.QueryTopK([]string{"w0001"}, 10)
	if !qr.Degraded || qr.Err != nil {
		t.Fatalf("best-effort: Degraded=%v Err=%v", qr.Degraded, qr.Err)
	}
	if len(qr.Results) == 0 {
		t.Fatal("best-effort returned no results at all")
	}

	ff := buildDocEngine(t, docs, 4,
		WithFaultPolicy(FaultPolicy{MaxRetries: 2, Replicas: 2, Mode: FailFast}),
		WithInjector(inj()))
	qr = ff.QueryTopK([]string{"w0001"}, 10)
	if !errors.Is(qr.Err, ErrUnavailable) {
		t.Fatalf("fail-fast Err = %v, want ErrUnavailable", qr.Err)
	}
	if len(qr.Results) != 0 {
		t.Fatal("fail-fast returned partial results")
	}
	st := ff.Stats()
	if st.Failed == 0 {
		t.Fatalf("fail-fast engine recorded no failed queries: %+v", st)
	}
}

// TestDeadlineBudget: a tight per-query deadline turns a slow partition
// into a timeout, and the latency is capped at the budget.
func TestDeadlineBudget(t *testing.T) {
	docs := corpus(3, 300, 200)
	e := buildDocEngine(t, docs, 4,
		WithFaultPolicy(FaultPolicy{DeadlineMs: 4, MaxRetries: 3, Replicas: 2, AttemptTimeoutMs: 50}),
		WithInjector(faultsim.New(5).Unit(0, faultsim.Spec{Crash: true})))
	qr := e.QueryTopK([]string{"w0001"}, 10)
	if !qr.Degraded {
		t.Fatalf("crashed partition under a 4ms deadline not degraded: %+v", qr)
	}
	if qr.LatencyMs > 4+1 { // deadline + healthy partitions' margin
		t.Fatalf("latency %.2f blew through the 4ms deadline", qr.LatencyMs)
	}
	if e.Stats().Faults.Timeouts == 0 {
		t.Fatal("deadline run recorded no timeouts")
	}
}

// TestHedgingFiresOnStragglers: a partition that is slow (not failed)
// on its primary replica gets hedged requests once the latency histogram
// warms up, and hedges win when the backup replica is fast.
func TestHedgingFiresOnStragglers(t *testing.T) {
	docs := corpus(3, 300, 200)
	// Primary replica of partition 0 is always slow; replica 1 is clean.
	inj := faultsim.New(9).UnitReplica(0, 0, faultsim.Spec{SlowP: 1, SlowMeanMs: 40, SlowSigma: 0.1})
	e := buildDocEngine(t, docs, 4,
		WithFaultPolicy(FaultPolicy{MaxRetries: 1, Replicas: 2, HedgeQuantile: 0.9, HedgeMinMs: 2}),
		WithInjector(inj))
	queries := zipfQueries(13, 200, 200)
	for _, q := range queries {
		e.QueryTopK(q, 10)
	}
	st := e.Stats()
	if st.Faults.Hedges == 0 {
		t.Fatalf("no hedges fired against a persistent straggler: %+v", st.Faults)
	}
	if st.Faults.HedgeWins == 0 {
		t.Fatalf("hedges fired but never won against a 40ms straggler: %+v", st.Faults)
	}
}

// TestOutageWindowRecovers: a partition-wide outage window degrades
// queries inside the window and fully recovers after it closes.
func TestOutageWindowRecovers(t *testing.T) {
	docs := corpus(3, 300, 200)
	e := buildDocEngine(t, docs, 4,
		WithFaultPolicy(FaultPolicy{MaxRetries: 1, Replicas: 2}),
		WithInjector(faultsim.New(3).Window(faultsim.Window{Unit: 1, Replica: -1, From: 5, To: 10})))
	degradedIn, degradedOut := 0, 0
	for i := 1; i <= 20; i++ { // ticks 1..20
		qr := e.QueryTopK([]string{"w0001", "w0002"}, 10)
		if qr.Degraded {
			if i >= 5 && i < 10 {
				degradedIn++
			} else {
				degradedOut++
			}
		}
	}
	if degradedIn == 0 {
		t.Fatal("no degradation inside the outage window")
	}
	if degradedOut != 0 {
		t.Fatalf("%d degraded answers outside the outage window", degradedOut)
	}
}

// TestAmbientDefaultsMatchPerCallOptions pins the configuration
// surface: ambient defaults (SetDefaultOptions) reach constructors and
// behave identically to the same options passed per call.
func TestAmbientDefaultsMatchPerCallOptions(t *testing.T) {
	docs := corpus(3, 300, 200)
	queries := zipfQueries(17, 80, 200)
	cfg := ResultCacheConfig{Capacity: 64}

	viaOpts := buildDocEngine(t, docs, 4,
		WithWorkers(2), WithResultCache(cfg), WithPostingsCache(1<<16))
	a, _ := replay(viaOpts, queries)
	plain := buildDocEngine(t, docs, 4, WithWorkers(1))
	p, _ := replay(plain, queries)

	SetDefaultOptions(WithWorkers(2), WithResultCache(cfg), WithPostingsCache(1<<16))
	defer SetDefaultOptions()
	viaAmbient := buildDocEngine(t, docs, 4)
	c, _ := replay(viaAmbient, queries)
	if c != a {
		t.Fatal("ambient-default engine diverged from per-call options engine")
	}
	if viaAmbient.Workers() != 2 || viaAmbient.ResultCache() == nil {
		t.Fatal("ambient defaults not applied at construction")
	}

	// Per-call options override ambient defaults.
	viaOverride := buildDocEngine(t, docs, 4,
		WithWorkers(1), WithResultCacheInstance(nil), WithPostingsCache(0))
	if viaOverride.Workers() != 1 || viaOverride.ResultCache() != nil {
		t.Fatal("per-call options did not override ambient defaults")
	}
	d, _ := replay(viaOverride, queries)
	if d != p {
		t.Fatal("override engine diverged from the plain uncached engine")
	}
}

// TestErrAllSitesDownTyped pins the typed multi-site failure: with every
// site down, Submit fails with an errors.Is-inspectable ErrAllSitesDown.
func TestErrAllSitesDownTyped(t *testing.T) {
	docs := corpus(21, 120, 100)
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	m := NewMultiSite(cluster.NewNetwork(1, 3), RouteGeo)
	for s := 0; s < 3; s++ {
		e, err := NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, 2))
		if err != nil {
			t.Fatal(err)
		}
		m.Sites = append(m.Sites, NewSite(s, s, e, 16, 1000))
	}
	m.Sites[0].Outages = []cluster.Outage{{Start: 0, End: 100}}
	m.Sites[1].Outages = []cluster.Outage{{Start: 0, End: 100}}
	m.Sites[2].Outages = []cluster.Outage{{Start: 0, End: 100}}
	r := m.Submit([]string{"w0001"}, "w0001", 0, 1, 10)
	if !r.Failed {
		t.Fatal("query succeeded with every site down")
	}
	if !errors.Is(r.Err, ErrAllSitesDown) {
		t.Fatalf("Err = %v, want ErrAllSitesDown", r.Err)
	}

	// Engine-level total outage surfaces the same typed error.
	m2 := NewMultiSite(cluster.NewNetwork(1, 1), RouteGeo)
	e, err := NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, 2))
	if err != nil {
		t.Fatal(err)
	}
	m2.Sites = append(m2.Sites, NewSite(0, 0, e, 16, 1000))
	for p := 0; p < e.K(); p++ {
		e.SetDown(p, true)
	}
	r = m2.Submit([]string{"w0001"}, "w0001", 0, 1, 10)
	if !errors.Is(r.Err, ErrAllSitesDown) {
		t.Fatalf("engine-level outage Err = %v, want ErrAllSitesDown", r.Err)
	}
}

// TestMultiSiteFaultFailover: injected site-level crashes fail over to
// another up site instead of failing the query.
func TestMultiSiteFaultFailover(t *testing.T) {
	docs := corpus(21, 120, 100)
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	inj := faultsim.New(4).Unit(0, faultsim.Spec{Crash: true}) // site 0 dead
	m := NewMultiSite(cluster.NewNetwork(1, 3), RouteGeo,
		WithFaultPolicy(FaultPolicy{MaxRetries: 2, AttemptTimeoutMs: 30}),
		WithInjector(inj))
	for s := 0; s < 3; s++ {
		e, err := NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, 2))
		if err != nil {
			t.Fatal(err)
		}
		m.Sites = append(m.Sites, NewSite(s, s, e, 16, 1000))
	}
	r := m.Submit([]string{"w0001"}, "w0001", 0, 1, 10)
	if r.Failed || r.Err != nil {
		t.Fatalf("failover did not mask a single-site crash: %+v", r)
	}
	if r.Executor == 0 {
		t.Fatal("crashed site executed the query")
	}
	if r.Retries == 0 || m.Stats().Faults.Failovers == 0 {
		t.Fatalf("failover not accounted: retries=%d stats=%+v", r.Retries, m.Stats().Faults)
	}
	if r.LatencyMs < 30 {
		t.Fatalf("silent-crash detection cost missing from latency: %.2f", r.LatencyMs)
	}
}

// TestEngineInterfaceHealth exercises the uniform Engine surface across
// all three engine kinds.
func TestEngineInterfaceHealth(t *testing.T) {
	docs := corpus(3, 200, 150)
	var engines []Engine

	de := buildDocEngine(t, docs, 4,
		WithInjector(faultsim.New(2).Unit(1, faultsim.Spec{Crash: true})),
		WithFaultPolicy(FaultPolicy{Replicas: 1}))
	engines = append(engines, de)

	tp := partition.BinPackTerms(termVocab(docs), func(string) float64 { return 1 }, 3)
	te, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	engines = append(engines, te)

	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	m := NewMultiSite(cluster.NewNetwork(1, 2), RouteGeo)
	for s := 0; s < 2; s++ {
		e, err := NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, 2))
		if err != nil {
			t.Fatal(err)
		}
		m.Sites = append(m.Sites, NewSite(s, s, e, 16, 1000))
	}
	m.Now = 1
	engines = append(engines, m)

	for i, e := range engines {
		qr := e.QueryTopK([]string{"w0001"}, 5)
		if len(qr.Results) == 0 {
			t.Fatalf("engine %d: no results via QueryTopK", i)
		}
		if e.K() <= 0 {
			t.Fatalf("engine %d: K() = %d", i, e.K())
		}
		if st := e.Stats(); st.Queries == 0 {
			t.Fatalf("engine %d: Stats().Queries = 0 after a query", i)
		}
		h := e.Health()
		if h.Units != e.K() {
			t.Fatalf("engine %d: Health units %d != K %d", i, h.Units, e.K())
		}
	}

	// The DocEngine above has partition 1 crashed on its only replica:
	// Health must report it down.
	h := de.Health()
	if h.Healthy() || len(h.Down) != 1 || h.Down[0] != 1 {
		t.Fatalf("Health missed the crashed partition: %+v", h)
	}
	if h.Live() != 3 {
		t.Fatalf("Live() = %d, want 3", h.Live())
	}
}
