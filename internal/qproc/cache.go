package qproc

import (
	"fmt"
	"strings"
	"sync/atomic"

	"dwr/internal/cache"
)

// CachePolicy selects the replacement policy of a ResultCache.
type CachePolicy int

// Result-cache replacement policies (Section 5; Fagni et al. for SDC).
const (
	CacheLRU CachePolicy = iota
	CacheLFU
	CacheSDC
)

// String implements fmt.Stringer.
func (p CachePolicy) String() string {
	switch p {
	case CacheLFU:
		return "lfu"
	case CacheSDC:
		return "sdc"
	default:
		return "lru"
	}
}

// ParseCachePolicy parses a policy name as exposed on CLI flags.
func ParseCachePolicy(s string) (CachePolicy, error) {
	switch strings.ToLower(s) {
	case "lru":
		return CacheLRU, nil
	case "lfu":
		return CacheLFU, nil
	case "sdc":
		return CacheSDC, nil
	default:
		return CacheLRU, fmt.Errorf("qproc: unknown cache policy %q (want lru | lfu | sdc)", s)
	}
}

// ResultCacheConfig sizes the broker-level result cache.
type ResultCacheConfig struct {
	// Capacity is the total entry budget across all shards.
	Capacity int
	// Shards is the number of lock domains (<= 0 picks 8). More shards
	// means less contention between concurrent broker goroutines.
	Shards int
	// Policy selects replacement; CacheSDC additionally pins StaticKeys.
	Policy CachePolicy
	// StaticKeys is the SDC static set: full cache keys (see the
	// engines' CacheKey methods) warmed from the head of a query-log
	// sample. Ignored by LRU/LFU.
	StaticKeys []string
	// TTLQueries bounds entry age, measured in cache lookups (the
	// engines' virtual clock advances one tick per Query). <= 0 means
	// entries never expire by age.
	TTLQueries int
}

// ResultCache is the first level of the cache hierarchy in Section 5: a
// concurrency-safe cache of complete query results at the broker, in
// front of all partition fan-out. Entries expire by age (TTLQueries) and
// are invalidated wholesale — one atomic generation bump, no walk — when
// an index update or a topology change (SetDown) makes them suspect.
type ResultCache struct {
	c       *cache.Sharded[QueryResult]
	ttl     int64
	tick    atomic.Int64
	expired atomic.Int64
}

// NewResultCache builds a result cache from cfg (zero values defaulted:
// capacity 1024, 8 shards, LRU).
func NewResultCache(cfg ResultCacheConfig) *ResultCache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	var sc *cache.Sharded[QueryResult]
	switch cfg.Policy {
	case CacheLFU:
		sc = cache.NewShardedLFU[QueryResult](cfg.Shards, cfg.Capacity)
	case CacheSDC:
		dyn := cfg.Capacity - len(cfg.StaticKeys)
		if dyn < 1 {
			dyn = 1
		}
		sc = cache.NewShardedSDC[QueryResult](cfg.Shards, cfg.StaticKeys, dyn)
	default:
		sc = cache.NewShardedLRU[QueryResult](cfg.Shards, cfg.Capacity)
	}
	return &ResultCache{c: sc, ttl: int64(cfg.TTLQueries)}
}

// Get returns the cached result for key if present, generation-fresh,
// and within the TTL. Every call advances the cache's virtual clock one
// tick.
func (rc *ResultCache) Get(key string) (QueryResult, bool) {
	now := rc.tick.Add(1)
	e, ok := rc.c.Get(key)
	if !ok {
		return QueryResult{}, false
	}
	if rc.ttl > 0 && float64(now)-e.StoredAt > float64(rc.ttl) {
		rc.expired.Add(1)
		return QueryResult{}, false
	}
	return e.Value, true
}

// Put stores a result under the current generation and clock tick.
func (rc *ResultCache) Put(key string, qr QueryResult) {
	rc.c.Put(key, qr, float64(rc.tick.Load()))
}

// Invalidate lazily drops every cached entry (generation bump). Engines
// call this from dynamic-index OnChange hooks and on SetDown.
func (rc *ResultCache) Invalidate() { rc.c.Invalidate() }

// Generation exposes the current invalidation generation.
func (rc *ResultCache) Generation() uint64 { return rc.c.Generation() }

// Len returns the number of resident entries (including lazily
// invalidated ones not yet replaced).
func (rc *ResultCache) Len() int { return rc.c.Len() }

// CacheStats breaks down result-cache lookups.
type CacheStats struct {
	Hits       int // fresh entries served
	Misses     int // not present, stale, or expired
	StaleGen   int // subset of Misses: present but generation-invalidated
	ExpiredTTL int // subset of Misses: present and fresh-generation but past TTL
}

// HitRatio returns Hits / (Hits + Misses), 0 when idle.
func (s CacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns the accumulated lookup breakdown.
func (rc *ResultCache) Stats() CacheStats {
	h, m := rc.c.Stats()
	ex := int(rc.expired.Load())
	return CacheStats{
		Hits:       h - ex,
		Misses:     m + ex,
		StaleGen:   rc.c.StaleMisses(),
		ExpiredTTL: ex,
	}
}

// NormalizeQueryKey canonicalizes a term list for cache keying: terms
// are deduplicated to their first occurrence but NOT sorted. Sorting
// would let permutations share an entry, but evaluation accumulates
// floating-point scores in term order, so a permutation's results can
// differ in the last bits — and the cache must return byte-identical
// results to an uncached evaluation of the same term list. (Query-log
// keys are already sorted upstream, so in practice permutations rarely
// reach the engines.)
func NormalizeQueryKey(terms []string) string {
	var b strings.Builder
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t)
	}
	return b.String()
}

// DocCacheKey is the full result-cache key of a DocEngine query: the
// normalized terms plus every option that changes the answer. Engines
// with a Selector assume it is deterministic and fixed for the cache's
// lifetime (true of all selectors in this repo).
func DocCacheKey(terms []string, opt DocQueryOptions) string {
	sel := 0
	if opt.Selector != nil && opt.SelectN > 0 {
		sel = opt.SelectN
	}
	conj := 0
	if opt.Conjunctive {
		conj = 1
	}
	// Threshold sharing is rank-identical, but it changes which
	// partitions a degraded answer can be missing, so differently
	// scheduled evaluations must not collide in the cache.
	return fmt.Sprintf("%s|k=%d|st=%d|c=%d|sel=%d|pr=%d|ts=%d",
		NormalizeQueryKey(terms), opt.K, int(opt.Stats), conj, sel, int(opt.Pruning), int(opt.Threshold))
}

// TermCacheKey is the full result-cache key of a TermEngine query.
func TermCacheKey(terms []string, k int) string {
	return fmt.Sprintf("%s|k=%d", NormalizeQueryKey(terms), k)
}

// PostingsCacheStats aggregates the second cache level — the partition
// servers' posting-list caches — across an engine.
type PostingsCacheStats struct {
	Hits      int
	Misses    int
	UsedBytes int64
}

// HitRatio returns Hits / (Hits + Misses), 0 when idle.
func (s PostingsCacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}
