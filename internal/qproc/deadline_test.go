package qproc

import (
	"errors"
	"testing"

	"dwr/internal/faultsim"
	"dwr/internal/index"
	"dwr/internal/partition"
)

// TestDeadlineGenerousBudgetByteIdentity pins the serving contract: a
// budget no query can bust changes nothing, so a front-end propagating
// deadlines serves byte-identical answers to one that does not.
func TestDeadlineGenerousBudgetByteIdentity(t *testing.T) {
	docs := corpus(21, 400, 300)
	queries := zipfQueries(22, 80, 300)

	t.Run("doc", func(t *testing.T) {
		plain := buildDocEngine(t, docs, 4)
		budgeted := buildDocEngine(t, docs, 4)
		for _, q := range queries {
			want := qrFingerprint(plain.QueryTopK(q, 10))
			got := qrFingerprint(budgeted.QueryTopKWithin(q, 10, 1e9))
			if want != got {
				t.Fatalf("query %v diverged under generous budget:\n%s\nvs\n%s", q, want, got)
			}
		}
	})

	t.Run("term", func(t *testing.T) {
		central := centralIndex(docs)
		tp := partition.BinPackTerms(central.Terms(), func(t string) float64 {
			return float64(central.DF(t))
		}, 4)
		plain, err := NewTermEngine(index.DefaultOptions(), docs, tp)
		if err != nil {
			t.Fatal(err)
		}
		budgeted, err := NewTermEngine(index.DefaultOptions(), docs, tp)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want := qrFingerprint(plain.QueryTopK(q, 10))
			got := qrFingerprint(budgeted.QueryTopKWithin(q, 10, 1e9))
			if want != got {
				t.Fatalf("query %v diverged under generous budget:\n%s\nvs\n%s", q, want, got)
			}
		}
	})
}

// TestDeadlineTinyBudgetExceeded: a budget no query can meet yields a
// deadline failure with no results and latency capped at the budget.
func TestDeadlineTinyBudgetExceeded(t *testing.T) {
	docs := corpus(23, 300, 200)
	queries := zipfQueries(24, 40, 200)
	central := centralIndex(docs)
	tp := partition.BinPackTerms(central.Terms(), func(t string) float64 {
		return float64(central.DF(t))
	}, 4)
	te, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]DeadlineQuerier{
		"doc":  buildDocEngine(t, docs, 4),
		"term": te,
	}
	const budget = 1e-9
	for name, e := range engines {
		for _, q := range queries {
			qr := e.QueryTopKWithin(q, 10, budget)
			if !errors.Is(qr.Err, ErrDeadlineExceeded) {
				t.Fatalf("%s %v: err = %v, want ErrDeadlineExceeded", name, q, qr.Err)
			}
			if qr.Results != nil {
				t.Fatalf("%s %v: deadline failure carried %d results", name, q, len(qr.Results))
			}
			if qr.LatencyMs > budget {
				t.Fatalf("%s %v: latency %v exceeds the %v budget", name, q, qr.LatencyMs, budget)
			}
		}
	}
}

// TestDeadlineTightensFaultPolicy: an explicit per-call budget tighter
// than the engine's FaultPolicy.DeadlineMs wins; a looser one never
// relaxes the policy.
func TestDeadlineTightensFaultPolicy(t *testing.T) {
	docs := corpus(25, 400, 300)
	queries := zipfQueries(26, 60, 300)
	policy := FaultPolicy{Mode: BestEffort, DeadlineMs: 5, MaxRetries: 1, Replicas: 2}

	build := func() *DocEngine {
		return buildDocEngine(t, docs, 4,
			WithFaultPolicy(policy), WithInjector(faultsim.New(41)))
	}

	// Looser call budget: policy's 5 ms still governs, byte-identically.
	strict := build()
	loose := build()
	for _, q := range queries {
		want := qrFingerprint(strict.QueryTopK(q, 10))
		got := qrFingerprint(loose.QueryTopKWithin(q, 10, 1e9))
		if want != got {
			t.Fatalf("query %v: loose budget changed the answer:\n%s\nvs\n%s", q, want, got)
		}
	}

	// Tighter call budget: no answer may report more latency than it.
	tight := build()
	busted := 0
	for _, q := range queries {
		qr := tight.QueryTopKWithin(q, 10, 0.5)
		if qr.LatencyMs > 0.5 {
			t.Fatalf("query %v: latency %v exceeds the 0.5 ms call budget", q, qr.LatencyMs)
		}
		if errors.Is(qr.Err, ErrDeadlineExceeded) {
			busted++
		}
	}
	if busted == 0 {
		t.Fatal("0.5 ms budget busted no query; deadline not propagated")
	}
}

// TestDeadlineCacheInteraction: deadline failures are not cached, and a
// cache hit that would still arrive past the budget is refused too.
func TestDeadlineCacheInteraction(t *testing.T) {
	e := buildDocEngine(t, corpus(27, 300, 200), 4,
		WithResultCache(ResultCacheConfig{Capacity: 1024}))
	q := []string{"w0001", "w0002"}

	// Bust the budget; the failure must not poison the cache.
	qr := e.QueryTopKWithin(q, 10, 1e-9)
	if !errors.Is(qr.Err, ErrDeadlineExceeded) {
		t.Fatalf("tiny budget: err = %v", qr.Err)
	}
	qr = e.QueryTopK(q, 10)
	if qr.Err != nil || qr.FromCache {
		t.Fatalf("after busted query: err=%v fromCache=%v, want clean miss", qr.Err, qr.FromCache)
	}

	// Now cached: a generous budget serves the hit, a tiny one refuses it.
	qr = e.QueryTopKWithin(q, 10, 1e9)
	if qr.Err != nil || !qr.FromCache {
		t.Fatalf("generous budget on hit: err=%v fromCache=%v", qr.Err, qr.FromCache)
	}
	qr = e.QueryTopKWithin(q, 10, 1e-9)
	if !errors.Is(qr.Err, ErrDeadlineExceeded) {
		t.Fatalf("tiny budget on hit: err = %v, want ErrDeadlineExceeded", qr.Err)
	}
}

// TestTermEngineDeadlineTruncatesPipeline: when the budget dies mid-
// route, later hops are never contacted — the abandoned query reports
// fewer servers than the full evaluation.
func TestTermEngineDeadlineTruncatesPipeline(t *testing.T) {
	docs := corpus(29, 400, 300)
	central := centralIndex(docs)
	tp := partition.BinPackTerms(central.Terms(), func(t string) float64 {
		return float64(central.DF(t))
	}, 8)
	e, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		t.Fatal(err)
	}
	// A multi-term query routed across distinct partitions.
	var q []string
	for _, cand := range zipfQueries(30, 200, 300) {
		if len(cand) >= 3 {
			full := e.Query(cand, 10)
			if full.ServersContacted >= 2 {
				q = cand
				break
			}
		}
	}
	if q == nil {
		t.Skip("no multi-partition query found")
	}
	full := e.Query(q, 10)
	// Abandon after roughly the first hop.
	cut := e.QueryTopKWithin(q, 10, full.LatencyMs/float64(full.ServersContacted)/2)
	if !errors.Is(cut.Err, ErrDeadlineExceeded) {
		t.Fatalf("mid-route budget: err = %v", cut.Err)
	}
	if cut.ServersContacted >= full.ServersContacted {
		t.Fatalf("abandoned query still contacted %d of %d servers",
			cut.ServersContacted, full.ServersContacted)
	}
}
