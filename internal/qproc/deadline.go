package qproc

import (
	"errors"
	"fmt"
)

// ErrDeadlineExceeded is returned (via QueryResult.Err) when a query
// carried an explicit latency budget (DocQueryOptions.DeadlineMs or
// QueryTopKWithin) and the engine could not deliver the answer inside
// it. The caller — typically a serving front-end that promised its user
// a response time — gets no results and a latency capped at the budget:
// that is when it would have stopped waiting. Inspect with errors.Is.
var ErrDeadlineExceeded = errors.New("qproc: query deadline exceeded")

// DeadlineQuerier is the optional engine capability a serving front-end
// uses to propagate its per-request latency budget into the engine:
// like QueryTopK, but the evaluation is abandoned once deadlineMs of
// virtual time is spent (deadlineMs <= 0 means no budget). How deep the
// budget reaches depends on the engine: DocEngine threads it into every
// partition call's retry/hedge loop, TermEngine cuts the pipeline short
// at the hop that busts the budget, MultiSite checks the final answer.
type DeadlineQuerier interface {
	QueryTopKWithin(terms []string, k int, deadlineMs float64) QueryResult
}

// Every engine propagates deadlines, checked at compile time.
var (
	_ DeadlineQuerier = (*DocEngine)(nil)
	_ DeadlineQuerier = (*TermEngine)(nil)
	_ DeadlineQuerier = (*MultiSite)(nil)
)

// QueryTopKWithin implements DeadlineQuerier: QueryTopK with a per-call
// latency budget threaded into each partition call's retry/hedge loop
// (tightening any FaultPolicy.DeadlineMs) and enforced on the merged
// answer.
func (e *DocEngine) QueryTopKWithin(terms []string, k int, deadlineMs float64) QueryResult {
	opt := e.topkOpts
	opt.K = k
	opt.DeadlineMs = deadlineMs
	return e.Query(terms, opt)
}

// QueryTopKWithin implements DeadlineQuerier: the pipeline is abandoned
// at the first hop that would start after the budget is spent, and the
// remaining hops are never contacted.
func (e *TermEngine) QueryTopKWithin(terms []string, k int, deadlineMs float64) QueryResult {
	return e.query(terms, k, deadlineMs)
}

// QueryTopKWithin implements DeadlineQuerier. Site selection happens
// before the budget is known to be busted, so the check is on the final
// routed answer: an over-budget reply is dropped, not delivered late.
// Like QueryTopK it is meant for a single driving goroutine.
func (m *MultiSite) QueryTopKWithin(terms []string, k int, deadlineMs float64) QueryResult {
	r := m.Submit(terms, NormalizeQueryKey(terms), m.HomeRegion, m.Now, k)
	qr := r.QueryResult
	enforceDeadline(&qr, deadlineMs)
	return qr
}

// enforceDeadline converts an answer that arrived after its budget into
// a deadline failure: no results, latency capped at the budget (the
// moment the caller stopped waiting).
func enforceDeadline(qr *QueryResult, deadlineMs float64) {
	if deadlineMs <= 0 || qr.LatencyMs <= deadlineMs || qr.Err != nil {
		return
	}
	qr.Err = fmt.Errorf("answer needed %.2f ms of a %.2f ms budget: %w",
		qr.LatencyMs, deadlineMs, ErrDeadlineExceeded)
	qr.Results = nil
	qr.LatencyMs = deadlineMs
}
