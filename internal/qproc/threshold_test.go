package qproc

import (
	"reflect"
	"testing"

	"dwr/internal/faultsim"
	"dwr/internal/rank"
)

// TestDocEngineThresholdSharingEquivalence pins the tentpole guarantee
// end to end: a DocEngine running the bound-ordered wave schedule is
// bitwise rank-identical to single-wave exhaustive evaluation, at every
// broker width, with and without both cache levels, across pruning
// modes, stats modes, and k. Run under -race in CI.
func TestDocEngineThresholdSharingEquivalence(t *testing.T) {
	docs := corpus(51, 800, 1500)
	queries := zipfQueries(52, 60, 1500)
	parts := 8
	cases := []DocQueryOptions{
		{K: 10, Stats: GlobalPrecomputed},
		{K: 3, Stats: GlobalTwoRound},
		{K: 10, Stats: LocalOnly},
	}
	base := newDocEngine(t, docs, parts, WithWorkers(1))
	want := make([][][]rank.Result, len(cases))
	for ci, opt := range cases {
		want[ci] = make([][]rank.Result, len(queries))
		for qi, q := range queries {
			want[ci][qi] = base.Query(q, opt).Results
		}
	}
	for _, workers := range []int{1, 4, 16} {
		for _, cacheBytes := range []int64{0, 1 << 21} {
			for _, mode := range []rank.Pruning{rank.PruneMaxScore, rank.PruneBlockMax} {
				e := newDocEngine(t, docs, parts,
					WithWorkers(workers),
					WithResultCache(ResultCacheConfig{Capacity: 256}),
					WithPostingsCache(cacheBytes),
					WithPruning(mode),
					WithThresholdSharing(true))
				for pass := 0; pass < 2; pass++ { // second pass exercises the result cache
					for ci, opt := range cases {
						for qi, q := range queries {
							got := e.Query(q, opt)
							if !reflect.DeepEqual(want[ci][qi], got.Results) {
								t.Fatalf("workers=%d cache=%d mode=%d stats=%d k=%d pass=%d query %d %v:\nexhaustive %v\nshared     %v",
									workers, cacheBytes, mode, opt.Stats, opt.K, pass, qi, q, want[ci][qi], got.Results)
							}
						}
					}
				}
			}
		}
	}
}

// TestThresholdSharingSkipsAndSaves checks the point of the schedule:
// over a query batch the wave path skips partitions, decodes fewer
// posting bytes than the single-wave block-max baseline, and reports it
// all through QueryResult and EngineStats.Threshold.
func TestThresholdSharingSkipsAndSaves(t *testing.T) {
	docs := corpus(53, 1600, 1500)
	queries := zipfQueries(54, 150, 1500)
	parts := 8
	base := newDocEngine(t, docs, parts, WithPruning(rank.PruneBlockMax))
	ts := newDocEngine(t, docs, parts, WithPruning(rank.PruneBlockMax), WithThresholdSharing(true))
	var baseBytes, tsBytes int64
	var skipped, waves int
	for _, q := range queries {
		a := base.Query(q, DocQueryOptions{K: 10})
		b := ts.Query(q, DocQueryOptions{K: 10})
		sameRanking(t, a.Results, b.Results, "threshold sharing")
		if a.Waves != 1 {
			t.Fatalf("single-wave path reported %d waves", a.Waves)
		}
		if b.Waves < 1 {
			t.Fatalf("wave path reported %d waves", b.Waves)
		}
		if b.ServersContacted+b.PartitionsSkipped > parts {
			t.Fatalf("contacted %d + skipped %d exceeds %d partitions",
				b.ServersContacted, b.PartitionsSkipped, parts)
		}
		baseBytes += a.PostingBytesDecoded
		tsBytes += b.PostingBytesDecoded
		skipped += b.PartitionsSkipped
		waves += b.Waves
	}
	if tsBytes >= baseBytes {
		t.Fatalf("threshold sharing decoded %d bytes, single wave %d — no savings", tsBytes, baseBytes)
	}
	if skipped == 0 {
		t.Fatal("no partition was ever skipped")
	}
	st := ts.Stats().Threshold
	if st.Queries != len(queries) || st.Waves != waves ||
		st.PartitionsSkipped != skipped || st.PostingBytesDecoded != tsBytes {
		t.Fatalf("EngineStats.Threshold %+v inconsistent with per-query accounting (waves=%d skipped=%d bytes=%d)",
			st, waves, skipped, tsBytes)
	}
	if bs := base.Stats().Threshold; bs.Queries != 0 || bs.Waves != 0 {
		t.Fatalf("single-wave engine accumulated threshold counters: %+v", bs)
	}
	t.Logf("decoded bytes: single-wave %d, shared %d (%.1f%%); skipped %d/%d partition calls",
		baseBytes, tsBytes, 100*float64(tsBytes)/float64(baseBytes), skipped, len(queries)*parts)
}

// TestThresholdSharingOptionPlumbing: the per-query knob overrides the
// engine default in both directions, and the schedule is part of the
// result-cache key.
func TestThresholdSharingOptionPlumbing(t *testing.T) {
	docs := corpus(55, 400, 800)
	e := newDocEngine(t, docs, 4, WithThresholdSharing(true))
	q := []string{"w0003", "w0011"}
	def := e.Query(q, DocQueryOptions{K: 5})
	off := e.Query(q, DocQueryOptions{K: 5, Threshold: ThresholdSingleWave})
	sameRanking(t, def.Results, off.Results, "per-query single-wave override")
	if off.PartitionsSkipped != 0 || off.Waves != 1 {
		t.Fatalf("single-wave override still waved: %+v", off)
	}
	plain := newDocEngine(t, docs, 4)
	on := plain.Query(q, DocQueryOptions{K: 5, Threshold: ThresholdShared})
	sameRanking(t, def.Results, on.Results, "per-query shared override")
	if a, b := DocCacheKey(q, DocQueryOptions{K: 5}), DocCacheKey(q, DocQueryOptions{K: 5, Threshold: ThresholdShared}); a == b {
		t.Fatal("cache key ignores the threshold mode")
	}
}

// TestThresholdSharingUnderFaultsEquivalence: with the same injected
// fault schedule, the wave path returns the same (possibly degraded)
// answers as the single-wave path — partition skipping composes with
// retries, hedging, and loss — and two replays of the same configuration
// are byte-identical, with skipped partitions spending no retry budget.
func TestThresholdSharingUnderFaultsEquivalence(t *testing.T) {
	docs := corpus(57, 800, 1200)
	queries := zipfQueries(58, 120, 1200)
	parts := 8
	mk := func(shared bool) *DocEngine {
		return newDocEngine(t, docs, parts,
			WithWorkers(4),
			WithPruning(rank.PruneBlockMax),
			WithThresholdSharing(shared),
			WithFaultPolicy(FaultPolicy{MaxRetries: 2, Replicas: 2, Mode: BestEffort}),
			WithInjector(faultsim.New(42).Default(faultsim.Spec{FlakyP: 0.15, SlowP: 0.1, SlowMeanMs: 12})))
	}
	single, tsA, tsB := mk(false), mk(true), mk(true)
	for qi, q := range queries {
		s := single.Query(q, DocQueryOptions{K: 10})
		a := tsA.Query(q, DocQueryOptions{K: 10})
		b := tsB.Query(q, DocQueryOptions{K: 10})
		// Same tick and partition ⇒ same simulated fate, so every
		// dispatched partition fails or survives identically; skipped
		// partitions provably contribute nothing. Answers must agree.
		if !reflect.DeepEqual(s.Results, a.Results) {
			t.Fatalf("query %d %v: single-wave %v, shared %v", qi, q, s.Results, a.Results)
		}
		if !reflect.DeepEqual(a.Results, b.Results) || a.Retries != b.Retries ||
			a.PartitionsSkipped != b.PartitionsSkipped || a.Waves != b.Waves {
			t.Fatalf("query %d %v: replays diverged: %+v vs %+v", qi, q, a, b)
		}
		if a.Retries > s.Retries {
			t.Fatalf("query %d %v: wave path spent %d retries, single wave %d — skipped partitions charged retries",
				qi, q, a.Retries, s.Retries)
		}
	}
	fa, fb := tsA.Stats(), tsB.Stats()
	if fa.Faults != fb.Faults || !reflect.DeepEqual(fa.Threshold, fb.Threshold) {
		t.Fatalf("replayed fault/threshold counters diverged:\n%+v %+v\n%+v %+v",
			fa.Faults, fa.Threshold, fb.Faults, fb.Threshold)
	}
	if fs := single.Stats().Faults; fa.Faults.Retries > fs.Retries {
		t.Fatalf("wave path retried more than single wave: %+v vs %+v", fa.Faults, fs)
	}
}

// TestMultiSiteAggregatesDecodedBytes covers the aggregation bugfix:
// Submit must carry the executing site's PostingBytesDecoded (and
// ListsAccessed) into the site-level answer instead of dropping them.
func TestMultiSiteAggregatesDecodedBytes(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 0)
	r := m.Submit([]string{"w0001", "w0002"}, "w0001 w0002", 1, 0, 10)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.PostingBytesDecoded == 0 {
		t.Fatal("multi-site answer dropped PostingBytesDecoded")
	}
	if r.ListsAccessed == 0 {
		t.Fatal("multi-site answer dropped ListsAccessed")
	}
	if r.PostingBytesRead < r.PostingBytesDecoded {
		t.Fatalf("decoded %d bytes exceeds read %d", r.PostingBytesDecoded, r.PostingBytesRead)
	}
}
