package qproc

import "dwr/internal/rank"

// MergeTree merges per-partition top-k lists through a hierarchy of
// coordinators with the given fanout — Section 5's remedy when "the
// coordinator may become a bottleneck while merging the results from a
// great number of query processors". The result equals a flat merge
// (top-k merging is associative); the second return value is the
// largest number of result items any single coordinator had to merge,
// the bottleneck measure a hierarchy reduces from Σ|lists| to ≈fanout·k.
func MergeTree(k, fanout int, lists [][]rank.Result) ([]rank.Result, int) {
	if fanout < 2 {
		fanout = 2
	}
	maxMerged := 0
	level := lists
	for len(level) > 1 {
		var next [][]rank.Result
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			group := level[i:j]
			items := 0
			for _, l := range group {
				items += len(l)
			}
			if items > maxMerged {
				maxMerged = items
			}
			next = append(next, rank.MergeResults(k, group...))
		}
		level = next
	}
	if len(level) == 0 {
		return nil, 0
	}
	if len(lists) == 1 {
		maxMerged = len(lists[0])
		return rank.MergeResults(k, lists[0]), maxMerged
	}
	return level[0], maxMerged
}

// FlatMergeCost returns the number of items a single flat coordinator
// merges for the given lists.
func FlatMergeCost(lists [][]rank.Result) int {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	return n
}
