package qproc

import (
	"fmt"
	"testing"

	"dwr/internal/cluster"
	"dwr/internal/index"
	"dwr/internal/metrics"
	"dwr/internal/partition"
)

// newMultiSite builds 3 sites in regions 0..2, each a full replica over
// the same corpus.
func newMultiSite(t *testing.T, policy RoutingPolicy, cacheTTL float64) *MultiSite {
	t.Helper()
	docs := corpus(21, 300, 200)
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	m := &MultiSite{
		Net:              cluster.NewNetwork(1, 3),
		Policy:           policy,
		CacheTTL:         cacheTTL,
		OffloadThreshold: 0.7,
	}
	for s := 0; s < 3; s++ {
		dp := partition.RoundRobinDocs(ids, 4)
		e, err := NewDocEngine(index.DefaultOptions(), docs, dp)
		if err != nil {
			t.Fatal(err)
		}
		m.Sites = append(m.Sites, NewSite(s, s, e, 256, 1000))
	}
	return m
}

func TestGeoRoutingPrefersNearestSite(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 0)
	for region := 0; region < 3; region++ {
		r := m.Submit([]string{"w0001"}, "w0001", region, 1, 10)
		if r.Failed {
			t.Fatalf("region %d query failed", region)
		}
		if r.Executor != region {
			t.Fatalf("region %d executed at site %d", region, r.Executor)
		}
	}
}

func TestGeoBeatsRoundRobinLatency(t *testing.T) {
	geo := newMultiSite(t, RouteGeo, 0)
	rr := newMultiSite(t, RouteRoundRobin, 0)
	var geoSum, rrSum float64
	const n = 150
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("w%04d", i%50)
		// All clients in region 0: geo keeps execution local while
		// round-robin ships two thirds of the queries across the WAN.
		g := geo.Submit([]string{key}, key, 0, 1, 10)
		r := rr.Submit([]string{key}, key, 0, 1, 10)
		geoSum += g.LatencyMs
		rrSum += r.LatencyMs
	}
	if geoSum >= rrSum {
		t.Fatalf("geo mean latency %.2f not below round-robin %.2f", geoSum/n, rrSum/n)
	}
}

func TestCacheHitsServeFast(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 24)
	first := m.Submit([]string{"w0002"}, "w0002", 0, 1, 10)
	second := m.Submit([]string{"w0002"}, "w0002", 0, 2, 10)
	if first.FromCache {
		t.Fatal("first query hit an empty cache")
	}
	if !second.FromCache || second.Stale {
		t.Fatalf("repeat query not a fresh cache hit: %+v", second)
	}
	if second.LatencyMs >= first.LatencyMs {
		t.Fatalf("cache hit latency %.2f not below miss %.2f", second.LatencyMs, first.LatencyMs)
	}
	if len(second.Results) != len(first.Results) {
		t.Fatal("cached results differ in length")
	}
}

func TestCacheExpiresAfterTTL(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 2)
	m.Submit([]string{"w0002"}, "w0002", 0, 1, 10)
	late := m.Submit([]string{"w0002"}, "w0002", 0, 10, 10) // 9h later, TTL 2h
	if late.FromCache {
		t.Fatal("expired entry served as fresh")
	}
}

func TestStaleServingMasksTotalOutage(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 1)
	warm := m.Submit([]string{"w0003"}, "w0003", 0, 1, 10)
	if warm.Failed {
		t.Fatal("warmup failed")
	}
	// All sites' engines go down for hours 5..8, but the coordinator
	// process at site 0 stays reachable: model by outages on sites 1,2
	// and failing all processors of site 0's engine... simplest faithful
	// model: all execution sites down, coordinator up. Mark sites 1 and 2
	// fully out and site 0's engine processors down.
	m.Sites[1].Outages = []cluster.Outage{{Start: 5, End: 8}}
	m.Sites[2].Outages = []cluster.Outage{{Start: 5, End: 8}}
	for p := 0; p < m.Sites[0].Engine.K(); p++ {
		m.Sites[0].Engine.SetDown(p, true)
	}
	r := m.Submit([]string{"w0003"}, "w0003", 0, 6, 10)
	// The engine answers with zero live processors → empty results; the
	// coordinator falls back to the stale cached copy only on Failed.
	// With all processors down the engine returns an empty, degraded
	// answer rather than failing outright; both behaviours are
	// acceptable, but results must not be silently empty when a cached
	// copy exists.
	if !r.FromCache && len(r.Results) == 0 {
		t.Fatalf("total outage returned empty results despite cached answer: %+v", r)
	}
}

// TestStaleFallbackSetsStaleFlag pins the full stale-serving chain:
// a result cached at t=1 expires past the TTL, the fresh re-evaluation
// comes back empty because every query processor is down, and the
// coordinator then serves the expired copy — identical results, marked
// FromCache AND Stale, with Failed cleared. This is the deferred
// fallback in Submit, distinct from the fresh-hit path (Stale=false).
func TestStaleFallbackSetsStaleFlag(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 1) // TTL = 1 virtual hour
	warm := m.Submit([]string{"w0003"}, "w0003", 0, 1, 10)
	if warm.Failed || warm.FromCache || len(warm.Results) == 0 {
		t.Fatalf("warmup: %+v", warm)
	}
	// 9 hours later the entry is well past its TTL, and every processor
	// of every site's engine has failed: re-evaluation yields an empty
	// degraded answer.
	for _, s := range m.Sites {
		for p := 0; p < s.Engine.K(); p++ {
			s.Engine.SetDown(p, true)
		}
	}
	r := m.Submit([]string{"w0003"}, "w0003", 0, 10, 10)
	if r.Failed {
		t.Fatalf("stale fallback did not mask the outage: %+v", r)
	}
	if !r.FromCache || !r.Stale {
		t.Fatalf("fallback answer not flagged FromCache+Stale: FromCache=%v Stale=%v", r.FromCache, r.Stale)
	}
	if len(r.Results) != len(warm.Results) {
		t.Fatalf("stale answer has %d results, warm had %d", len(r.Results), len(warm.Results))
	}
	for i := range r.Results {
		if r.Results[i] != warm.Results[i] {
			t.Fatalf("stale answer diverged from the cached copy at rank %d", i)
		}
	}
	// Fresh-path sanity: a repeat within the TTL serves FromCache but
	// NOT Stale.
	m2 := newMultiSite(t, RouteGeo, 2)
	m2.Submit([]string{"w0005"}, "w0005", 0, 1, 10)
	fresh := m2.Submit([]string{"w0005"}, "w0005", 0, 1.5, 10)
	if !fresh.FromCache || fresh.Stale {
		t.Fatalf("fresh hit mis-flagged: FromCache=%v Stale=%v", fresh.FromCache, fresh.Stale)
	}
}

func TestFailoverToRemoteSite(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 0)
	m.Sites[0].Outages = []cluster.Outage{{Start: 0, End: 100}}
	r := m.Submit([]string{"w0004"}, "w0004", 0, 1, 10)
	if r.Failed {
		t.Fatal("query failed despite two live sites")
	}
	if r.Executor == 0 || r.Coordinator == 0 {
		t.Fatalf("down site used: coord=%d exec=%d", r.Coordinator, r.Executor)
	}
	if len(r.Results) == 0 {
		t.Fatal("failover returned no results")
	}
}

func TestAllSitesDownFails(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 0)
	for _, s := range m.Sites {
		s.Outages = []cluster.Outage{{Start: 0, End: 100}}
	}
	r := m.Submit([]string{"w0005"}, "w0005", 0, 1, 10)
	if !r.Failed {
		t.Fatal("query succeeded with every site down")
	}
}

func TestLoadAwareOffloadsPeaks(t *testing.T) {
	// Site 0 receives a burst far beyond its hourly capacity; load-aware
	// routing should divert the excess to sites 1 and 2 and keep queue
	// delays bounded compared to pure geo routing.
	run := func(policy RoutingPolicy) (execCounts [3]int, q99 float64) {
		m := newMultiSite(t, policy, 0)
		for _, s := range m.Sites {
			s.capacity = 200
		}
		var delays metrics.Sample
		for i := 0; i < 600; i++ {
			key := fmt.Sprintf("w%04d", i%97)
			r := m.Submit([]string{key}, key, 0, 1.5, 10) // all in hour 1
			if !r.Failed && r.Executor >= 0 {
				execCounts[r.Executor]++
				delays.Add(r.QueueMs)
			}
		}
		return execCounts, delays.Quantile(0.99)
	}
	geoCounts, geoQ99 := run(RouteGeo)
	loadCounts, loadQ99 := run(RouteLoadAware)
	if geoCounts[0] != 600 {
		t.Fatalf("geo routing spread the burst: %v", geoCounts)
	}
	if loadCounts[1] == 0 && loadCounts[2] == 0 {
		t.Fatalf("load-aware routing never offloaded: %v", loadCounts)
	}
	if loadQ99 >= geoQ99 {
		t.Fatalf("load-aware p99 queue %.2f not below geo %.2f", loadQ99, geoQ99)
	}
}

func TestIncrementalFirstBatchFaster(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 0)
	batches := m.QueryIncremental([]string{"w0001", "w0002"}, 0, 1, 10)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3 (one per site)", len(batches))
	}
	for i := 1; i < len(batches); i++ {
		if batches[i].AfterMs < batches[i-1].AfterMs {
			t.Fatal("batches not in arrival order")
		}
	}
	if batches[0].AfterMs >= batches[len(batches)-1].AfterMs {
		t.Fatal("first batch not earlier than last")
	}
	// The final batch must equal a direct full evaluation.
	direct := m.Sites[0].Engine.Query([]string{"w0001", "w0002"}, DocQueryOptions{K: 10, Stats: GlobalPrecomputed})
	sameRanking(t, direct.Results, batches[len(batches)-1].Results, "incremental final")
	// Early batches contain results (the user sees something early).
	if len(batches[0].Results) == 0 {
		t.Fatal("first incremental batch empty")
	}
}

func TestIncrementalSkipsDownSites(t *testing.T) {
	m := newMultiSite(t, RouteGeo, 0)
	m.Sites[1].Outages = []cluster.Outage{{Start: 0, End: 10}}
	batches := m.QueryIncremental([]string{"w0001"}, 0, 1, 10)
	if len(batches) != 2 {
		t.Fatalf("got %d batches with one site down, want 2", len(batches))
	}
	for _, b := range batches {
		if b.Site == 1 {
			t.Fatal("down site contributed a batch")
		}
	}
}

// TestMultiSiteStatsAggregatesSiteCounters pins the Stats() gather: the
// per-site engines' counter bundles (threshold-sharing waves, result
// cache hits/misses, degraded/failed outcomes) must sum into the
// multi-site EngineStats, and the broker-level selection counters must
// surface through it. The SelectionCounters fold was once dropped here
// entirely — any counter bundle a site engine reports and the gather
// ignores under-reports forever.
func TestMultiSiteStatsAggregatesSiteCounters(t *testing.T) {
	docs := corpus(21, 300, 200)
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	m := &MultiSite{Net: cluster.NewNetwork(1, 3), Policy: RouteGeo}
	for s := 0; s < 3; s++ {
		dp := partition.RoundRobinDocs(ids, 4)
		e, err := NewDocEngine(index.DefaultOptions(), docs, dp,
			WithResultCache(ResultCacheConfig{Capacity: 64}),
			WithThresholdSharing(true))
		if err != nil {
			t.Fatal(err)
		}
		m.Sites = append(m.Sites, NewSite(s, s, e, 256, 1000))
	}

	// Distinct per-site load: site i answers i+2 direct queries, so the
	// repeats hit each site's broker result cache a different number of
	// times and the per-site counters genuinely differ.
	for i, s := range m.Sites {
		for q := 0; q <= i+1; q++ {
			s.Engine.Query([]string{"w0001", "w0002"}, DocQueryOptions{K: 5})
		}
	}
	// Federated queries move the broker-level selection counters.
	const fed = 4
	for q := 0; q < fed; q++ {
		m.QueryFederated([]string{"w0003"}, "w0003", 0, 1, 5)
	}

	var want EngineStats
	for _, s := range m.Sites {
		es := s.Engine.Stats()
		want.Degraded += es.Degraded
		want.Failed += es.Failed
		want.Threshold.Merge(es.Threshold)
		want.Selection.Merge(es.Selection)
		want.ResultCache.Hits += es.ResultCache.Hits
		want.ResultCache.Misses += es.ResultCache.Misses
	}
	if want.ResultCache.Hits == 0 || want.ResultCache.Misses == 0 {
		t.Fatalf("per-site load produced no cache traffic to aggregate: %+v", want.ResultCache)
	}
	if want.Threshold.Queries == 0 || want.Threshold.Waves == 0 {
		t.Fatalf("per-site load produced no threshold counters to aggregate: %+v", want.Threshold)
	}

	st := m.Stats()
	if st.ResultCache.Hits != want.ResultCache.Hits || st.ResultCache.Misses != want.ResultCache.Misses {
		t.Errorf("result-cache counters not summed: got %+v, want %+v", st.ResultCache, want.ResultCache)
	}
	if st.Threshold != want.Threshold {
		t.Errorf("threshold counters not summed: got %+v, want %+v", st.Threshold, want.Threshold)
	}
	if st.Degraded != want.Degraded || st.Failed != want.Failed {
		t.Errorf("outcome counters not summed: got (%d,%d), want (%d,%d)",
			st.Degraded, st.Failed, want.Degraded, want.Failed)
	}
	// Broker-level selection counters pass through, merged with the
	// (currently zero-valued) per-site bundles.
	wantSel := m.sel
	wantSel.Merge(want.Selection)
	if st.Selection != wantSel {
		t.Errorf("selection counters not aggregated: got %+v, want %+v", st.Selection, wantSel)
	}
	if st.Selection.Queries != fed || st.Selection.FullFanout != fed {
		t.Errorf("federated queries not counted: %+v, want %d full-fanout queries", st.Selection, fed)
	}
	if st.Queries != fed {
		t.Errorf("Queries = %d, want the broker's own tick count %d (site fan-out must not double-count)", st.Queries, fed)
	}
}
