package qproc

import (
	"fmt"
	"strconv"
	"strings"

	"dwr/internal/conc"
	"dwr/internal/rank"
)

// Mediator decides which sites (or live partitions) a federated query
// touches — the collection-selection step of Section 5 put on the
// serving path. Implementations rank the reachable units with a
// selection.Selector over per-site collection statistics and cut the
// ranking at a budget; internal/mediator provides the standard one.
//
// Decide must be deterministic for fixed statistics: engines call it on
// the query path and cache answers under keys derived from the decision.
type Mediator interface {
	// Decide returns the subset of up (ascending unit IDs, all currently
	// reachable) that the query should contact. Engines intersect the
	// answer with up again defensively and fall back to full fan-out
	// when the decision is empty.
	Decide(terms []string, up []int) MediatorDecision
}

// MediatorDecision is the mediator's routing verdict for one query.
type MediatorDecision struct {
	// Sites is the unit subset to contact, ascending. Ignored when
	// FullFanout is set.
	Sites []int
	// FullFanout requests contacting every up unit: the mediator had no
	// statistics, the score mass was too flat to prune confidently, or
	// selection is disabled.
	FullFanout bool
	// Confidence is the mediator's self-assessed pruning confidence in
	// [0,1] (how concentrated the selection score mass was on the chosen
	// subset). Informational; the fallback decision is FullFanout.
	Confidence float64
}

// FederatedCacheKey is the per-region result-cache key of a federated
// query: the canonical term key, k, and the `sel=` component naming the
// exact site subset the answer was computed from. Encoding the subset
// keeps answers from differently-selected evaluations (stats refreshed,
// sites down) from colliding — the federated analogue of DocCacheKey's
// pr=/ts= rules.
func FederatedCacheKey(key string, k int, sites []int, full bool) string {
	var sel string
	if full {
		sel = "*"
	} else {
		var b strings.Builder
		for i, s := range sites {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(s))
		}
		sel = b.String()
	}
	return fmt.Sprintf("fed|k=%d|sel=%s|%s", k, sel, key)
}

// QueryFederated answers one query by scattering it from the nearest
// coordinator to a mediator-selected subset of the up sites, instead of
// Submit's single executor or QueryIncremental's full fan-out. With no
// mediator configured (or when the mediator declines) every up site is
// contacted, and the merged results are byte-identical to
// QueryIncremental's final batch.
//
// The fallback chain mirrors the robustness policy: sites inside outage
// windows never enter the selection; if every *selected* site is lost to
// injected faults, the query retries once as a full fan-out over the
// remaining up sites (attempt 1 of the fault schedule); the
// coordinator's stale cache entry rescues a query nothing could answer.
//
// Like Submit, QueryFederated is meant for a single driving goroutine
// (mediator.Federation wraps it for concurrent front-ends). The per-site
// evaluations fan out over Workers goroutines; the WAN latency draws and
// fault outcomes are consumed serially in site order at the gather, so
// the answer is deterministic at any width.
func (m *MultiSite) QueryFederated(terms []string, key string, region int, atHours float64, k int) (out SiteQueryResult) {
	out.Executor = -1
	m.ticks++
	tick := m.ticks

	coord := m.nearestUp(region, atHours)
	if coord < 0 {
		out.Failed = true
		out.Err = ErrAllSitesDown
		return out
	}
	out.Coordinator = coord
	c := m.Sites[coord]
	out.LatencyMs += m.Net.Latency(region, c.Region, 64)
	out.BytesTransferred += 64

	// Reachable sites, ascending by ID (Sites is append-ordered).
	var ups []*Site
	upIDs := make([]int, 0, len(m.Sites))
	for _, s := range m.Sites {
		if s.UpAt(atHours) {
			ups = append(ups, s)
			upIDs = append(upIDs, s.ID)
		}
	}

	// Collection selection. The decision is made before the cache lookup
	// because the cache key names the selected subset.
	targets := ups
	full := true
	if m.mediator != nil {
		d := m.mediator.Decide(terms, upIDs)
		out.Confidence = d.Confidence
		if !d.FullFanout {
			byID := make(map[int]*Site, len(ups))
			for _, s := range ups {
				byID[s.ID] = s
			}
			var sel []*Site
			for _, id := range d.Sites {
				if s, ok := byID[id]; ok {
					sel = append(sel, s)
				}
			}
			if len(sel) > 0 {
				targets, full = sel, false
			}
		}
	}
	out.FullFanout = full
	out.SitesContacted = len(targets)
	out.SitesSkipped = len(ups) - len(targets)
	m.sel.Queries++
	m.sel.SitesContacted += len(targets)
	m.sel.SitesSkipped += len(ups) - len(targets)
	if full {
		m.sel.FullFanout++
	} else {
		m.sel.Mediated++
	}

	targetIDs := make([]int, len(targets))
	for i, s := range targets {
		targetIDs[i] = s.ID
	}
	ckey := FederatedCacheKey(key, k, targetIDs, full)
	if m.CacheTTL > 0 {
		if e, ok := c.Cache.Get(ckey); ok {
			age := atHours - e.StoredAt
			if age <= m.CacheTTL {
				out.Results = e.Value
				out.FromCache = true
				out.LatencyMs += 0.2
				return out
			}
			// Stale entry: rescue the query if nothing below can answer
			// (the paper's "upon query processor failures, the system
			// returns cached results").
			defer func() {
				needFallback := out.Failed || (len(out.Results) == 0 && !out.FromCache)
				if needFallback && len(e.Value) > 0 {
					out.Results = e.Value
					out.FromCache = true
					out.Stale = true
					out.Failed = false
					out.Err = nil
				}
			}()
		}
	}

	rb := m.siteRB()
	lists, answered := m.scatterSites(&out, targets, terms, tick, 0, coord, k, rb)
	if answered == 0 && !full && len(ups) > len(targets) {
		// Every selected site was lost to faults: widen to a full
		// fan-out over all up sites (fault-schedule attempt 1).
		if rb != nil {
			rb.counters.Retries++
		}
		out.Retries++
		out.SitesContacted = len(ups)
		out.SitesSkipped = 0
		m.sel.SitesContacted += len(ups) - len(targets)
		m.sel.SitesSkipped -= len(ups) - len(targets)
		m.sel.FullFanout++
		m.sel.Mediated--
		out.FullFanout = true
		lists, answered = m.scatterSites(&out, ups, terms, tick, 1, coord, k, rb)
	}
	if answered == 0 {
		if rb != nil {
			rb.counters.Lost++
		}
		out.Failed = true
		out.Err = fmt.Errorf("no federated site answered: %w", ErrAllSitesDown)
		return out
	}
	if answered < out.SitesContacted {
		out.Degraded = true
	}
	out.Results = rank.MergeResultsDedup(k, lists...)
	if len(out.Results) == 0 && out.ServersContacted == 0 {
		// Every contacted replica had all partitions down.
		out.Err = fmt.Errorf("no live query processors at any federated site: %w", ErrAllSitesDown)
		return out
	}
	if m.CacheTTL > 0 && out.Err == nil && !out.Degraded {
		c.Cache.Put(ckey, out.Results, atHours)
	}
	return out
}

// scatterSites evaluates terms on every target site's engine in parallel
// and gathers serially in site order: fault outcomes and WAN latency
// draws (both stateful or schedule-keyed) are consumed in a fixed order,
// so results and accounting are identical at any Workers. It returns the
// per-site result lists of the sites that answered.
func (m *MultiSite) scatterSites(out *SiteQueryResult, targets []*Site, terms []string, tick int64, attempt, coord, k int, rb *robustness) (lists [][]rank.Result, answered int) {
	answers := make([]QueryResult, len(targets))
	conc.Do(len(targets), m.Workers, func(i int) {
		answers[i] = targets[i].Engine.Query(terms, DocQueryOptions{K: k, Stats: GlobalPrecomputed})
	})
	cRegion := m.Sites[coord].Region
	var maxMs float64
	for i, s := range targets {
		if rb != nil {
			fo := rb.outcome(tick, s.ID, 0, attempt)
			if fo.Err != nil {
				rb.counters.FaultsSeen++
				ms := fo.ExtraMs
				if fo.Silent {
					ms = rb.policy.AttemptTimeoutMs
				} else if s.ID != coord {
					ms += m.Net.Latency(cRegion, s.Region, 64)
					out.BytesTransferred += 64
				}
				if ms > maxMs {
					maxMs = ms
				}
				continue
			}
		}
		qr := answers[i]
		ms := qr.LatencyMs
		if s.ID != coord {
			// The WAN request and response messages are what mediation
			// saves; charge them to the byte ledger, not just latency.
			ms += m.Net.Latency(cRegion, s.Region, 128) +
				m.Net.Latency(s.Region, cRegion, int(resultBytes(len(qr.Results))))
			out.BytesTransferred += 128 + resultBytes(len(qr.Results))
		}
		if ms > maxMs {
			maxMs = ms
		}
		if qr.Err != nil || (qr.ServersContacted == 0 && len(qr.Results) == 0 && !qr.FromCache) {
			// The site's engine refused or had nothing live; it consumed
			// latency but contributes no results.
			if qr.Err != nil {
				out.Degraded = true
			}
			continue
		}
		lists = append(lists, qr.Results)
		answered++
		if qr.Rounds > out.Rounds {
			// The sites evaluate in parallel, so the scatter's round count
			// is the slowest site's, not the sum.
			out.Rounds = qr.Rounds
		}
		out.ServersContacted += qr.ServersContacted
		out.PostingsDecoded += qr.PostingsDecoded
		out.ListsAccessed += qr.ListsAccessed
		out.PostingBytesRead += qr.PostingBytesRead
		out.PostingBytesDecoded += qr.PostingBytesDecoded
		out.BytesTransferred += qr.BytesTransferred
		out.PartitionsSkipped += qr.PartitionsSkipped
		out.Waves += qr.Waves
		out.Retries += qr.Retries
		out.Hedges += qr.Hedges
		if qr.Degraded {
			out.Degraded = true
		}
	}
	out.LatencyMs += maxMs
	return lists, answered
}

// QueryExhaustiveResults evaluates terms on every up site's engine and
// returns the deduplicated merged top-k — the exhaustive reference a
// recall sample compares a mediated answer against. It bypasses the
// multi-site clock, caches, WAN model, and fault schedule entirely so a
// sampling caller does not perturb the deterministic replay of the main
// query stream (site-engine work counters do advance; results never
// depend on them).
func (m *MultiSite) QueryExhaustiveResults(terms []string, atHours float64, k int) []rank.Result {
	var lists [][]rank.Result
	for _, s := range m.Sites {
		if !s.UpAt(atHours) {
			continue
		}
		qr := s.Engine.Query(terms, DocQueryOptions{K: k, Stats: GlobalPrecomputed})
		if qr.Err == nil {
			lists = append(lists, qr.Results)
		}
	}
	return rank.MergeResultsDedup(k, lists...)
}

// ObserveSelectionRecall feeds one Recall@k measurement of a mediated
// answer against the exhaustive fan-out into the selection counters.
// Callers that sample quality (mediator.Federation, dwrbench -federate)
// use it so EngineStats.Selection reports measured — not asserted —
// result quality.
func (m *MultiSite) ObserveSelectionRecall(r float64) {
	m.sel.RecallSum += r
	m.sel.RecallSamples++
}
