package qproc

import (
	"errors"
	"math"

	"dwr/internal/faultsim"
	"dwr/internal/metrics"
	"dwr/internal/replication"
)

// ErrUnavailable is returned (via QueryResult.Err) by a fail-fast
// engine when a partition produced no usable answer within the fault
// policy's budget. Inspect with errors.Is.
var ErrUnavailable = errors.New("qproc: partition unavailable within fault-policy budget")

// DegradeMode selects what the broker does when a partition call fails
// for good — the explicit version of what used to be the implicit
// "Degraded flag" behavior.
type DegradeMode int

const (
	// BestEffort merges the partitions that answered and flags the
	// result Degraded — the paper's "the system might still be able to
	// answer queries without using all the sub-collections".
	BestEffort DegradeMode = iota
	// FailFast refuses partial answers: the first lost partition makes
	// the query return no results and QueryResult.Err = ErrUnavailable.
	FailFast
)

// String implements fmt.Stringer.
func (m DegradeMode) String() string {
	if m == FailFast {
		return "fail-fast"
	}
	return "best-effort"
}

// FaultPolicy is the query path's robustness policy: how partition and
// site calls behave under failures and stragglers. The zero value
// (normalized) means: no deadline, no retries beyond sane detection
// timeouts, one replica, no hedging, best-effort degradation — i.e.
// today's behavior plus explicit accounting.
type FaultPolicy struct {
	// DeadlineMs is the per-query latency budget. A partition call whose
	// cumulative attempts would exceed it is abandoned (counted as a
	// timeout). 0 = no deadline.
	DeadlineMs float64
	// MaxRetries bounds re-dispatches after a failed attempt. Retries
	// walk the replica failover order from internal/replication.
	MaxRetries int
	// BackoffMs is the base retry backoff: retry i waits
	// BackoffMs * 2^(i-1) before dispatching. 0 = immediate retries.
	BackoffMs float64
	// AttemptTimeoutMs is how long the broker waits for a reply before
	// declaring a silent (crashed / partitioned-away) server dead.
	// <= 0 picks 50 ms.
	AttemptTimeoutMs float64
	// Replicas is the replication degree of every partition (>= 1).
	// Retries and hedges are sent to the other replicas; replicas hold
	// identical indexes, so any of them returns the same answer.
	Replicas int
	// HedgeQuantile, when in (0, 1), fires a hedged (backup) request to
	// the next replica as soon as an attempt has been outstanding longer
	// than this quantile of the partition's observed call latencies; the
	// earlier answer wins. Needs Replicas >= 2.
	HedgeQuantile float64
	// HedgeMinMs floors the hedge threshold, so cold histograms and
	// ultra-fast partitions do not hedge every call (<= 0 picks 5 ms).
	HedgeMinMs float64
	// Mode selects fail-fast or best-effort degradation.
	Mode DegradeMode
}

// DefaultFaultPolicy returns the policy engines start from when an
// injector is installed without an explicit policy: two retries with
// 1 ms exponential backoff across two replicas, 50 ms failure
// detection, hedging at the partition p95 (floored at 5 ms), no global
// deadline, best-effort degradation.
func DefaultFaultPolicy() FaultPolicy {
	return FaultPolicy{
		MaxRetries:       2,
		BackoffMs:        1,
		AttemptTimeoutMs: 50,
		Replicas:         2,
		HedgeQuantile:    0.95,
		HedgeMinMs:       5,
		Mode:             BestEffort,
	}
}

// normalized fills the defaulted fields.
func (p FaultPolicy) normalized() FaultPolicy {
	if p.Replicas < 1 {
		p.Replicas = 1
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.AttemptTimeoutMs <= 0 {
		p.AttemptTimeoutMs = 50
	}
	if p.HedgeMinMs <= 0 {
		p.HedgeMinMs = 5
	}
	if p.HedgeQuantile < 0 || p.HedgeQuantile >= 1 {
		p.HedgeQuantile = 0
	}
	return p
}

// PredictedAvailability returns the probability a partition call
// succeeds within the retry budget when each attempt independently
// fails with probability perAttemptFail — the replication-arithmetic
// view (replication.Availability) of the policy's attempt budget.
func (p FaultPolicy) PredictedAvailability(perAttemptFail float64) float64 {
	return replication.Availability(1-perAttemptFail, p.normalized().MaxRetries+1)
}

// robustness is the per-engine runtime of the fault policy: the
// injector underneath, the replica failover selector, the per-partition
// latency histograms driving hedge thresholds, and the cumulative
// counters. Engines touch it only at their serial gather point (under
// the engine lock), so its evolution is deterministic for a fixed fault
// schedule at any worker count.
type robustness struct {
	policy   FaultPolicy
	inj      *faultsim.Injector
	sel      *replication.Selector
	hist     *metrics.LatencyByPart
	counters metrics.FaultCounters
	orderBuf []int
}

func newRobustness(p FaultPolicy, inj *faultsim.Injector, parts int) *robustness {
	p = p.normalized()
	return &robustness{
		policy: p,
		inj:    inj,
		sel:    replication.NewSelector(parts, p.Replicas, 0),
		hist:   metrics.NewLatencyByPart(parts, nil),
	}
}

// outcome consults the injector (success when none is installed).
func (rb *robustness) outcome(tick int64, part, replica, attempt int) faultsim.Outcome {
	if rb.inj == nil {
		return faultsim.Outcome{}
	}
	return rb.inj.Outcome(tick, part, replica, attempt)
}

// hedgeAttemptBase offsets hedge attempt IDs into their own stream so a
// hedge never replays its primary attempt's fault draw.
const hedgeAttemptBase = 1 << 16

// callResult is one partition call's simulated fate under the policy.
type callResult struct {
	ok        bool
	latencyMs float64 // dispatch-to-answer time, incl. retries/backoff/hedges
	retries   int
	hedges    int
	timedOut  bool
}

// call simulates one robust partition call: the real evaluation work
// costs serviceMs on whichever replica runs it (replicas are identical,
// so the answer is computed once by the caller); this function decides
// how many attempts, hedges, and milliseconds it took to get that
// answer back — or that it never came. Pure given the engine tick and
// the injector seed, so results are identical at any worker count.
//
// deadlineMs, when > 0, is a per-call budget from the query's own
// deadline (DocQueryOptions.DeadlineMs / QueryTopKWithin); it tightens
// the policy's DeadlineMs but never loosens it.
func (rb *robustness) call(tick int64, part int, lanMs, serviceMs, deadlineMs float64) callResult {
	p := rb.policy
	if deadlineMs > 0 && (p.DeadlineMs <= 0 || deadlineMs < p.DeadlineMs) {
		p.DeadlineMs = deadlineMs
	}
	order := rb.sel.Order(part, rb.orderBuf)
	rb.orderBuf = order

	// Hedge threshold: the partition's historical latency quantile,
	// floored; 0 disables. Computed before any attempt, from history
	// only, so concurrent-looking attempts cannot perturb it.
	var threshold float64
	if p.HedgeQuantile > 0 && p.Replicas > 1 {
		threshold = rb.hist.Quantile(part, p.HedgeQuantile)
		if threshold < p.HedgeMinMs {
			threshold = p.HedgeMinMs
		}
		if math.IsInf(threshold, 1) {
			threshold = 0
		}
	}

	var res callResult
	elapsed := 0.0
	for a := 0; a <= p.MaxRetries; a++ {
		if a > 0 {
			res.retries++
			rb.counters.Retries++
			elapsed += p.BackoffMs * float64(int(1)<<uint(a-1))
		}
		if p.DeadlineMs > 0 && elapsed >= p.DeadlineMs {
			rb.counters.Timeouts++
			res.timedOut = true
			res.latencyMs = p.DeadlineMs
			return res
		}
		rep := order[a%len(order)]
		out := rb.outcome(tick, part, rep, a)

		// When does this attempt resolve, relative to its dispatch?
		okAt := -1.0  // success arrival
		failAt := 0.0 // failure detection
		if out.Err == nil {
			okAt = lanMs + serviceMs + out.ExtraMs
		} else {
			rb.counters.FaultsSeen++
			if out.Silent {
				failAt = p.AttemptTimeoutMs
			} else {
				failAt = lanMs + out.ExtraMs
			}
		}

		// Hedge: fires if no answer (success or error reply) has arrived
		// by the threshold. A silently crashed primary therefore hedges
		// too — the broker cannot tell slow from dead.
		hedged := false
		hokAt, hfailAt := -1.0, 0.0
		hrep := rep
		respAt := okAt
		if okAt < 0 {
			respAt = failAt
		}
		if threshold > 0 && respAt > threshold {
			hedged = true
			res.hedges++
			rb.counters.Hedges++
			hrep = order[(a+1)%len(order)]
			hout := rb.outcome(tick, part, hrep, hedgeAttemptBase+a)
			if hout.Err == nil {
				hokAt = threshold + lanMs + serviceMs + hout.ExtraMs
			} else {
				rb.counters.FaultsSeen++
				if hout.Silent {
					hfailAt = threshold + p.AttemptTimeoutMs
				} else {
					hfailAt = threshold + lanMs + hout.ExtraMs
				}
			}
		}

		// Earliest success wins the attempt.
		win, winRep, viaHedge := -1.0, rep, false
		if okAt >= 0 {
			win, winRep = okAt, rep
		}
		if hokAt >= 0 && (win < 0 || hokAt < win) {
			win, winRep, viaHedge = hokAt, hrep, true
		}
		if win >= 0 {
			total := elapsed + win
			if p.DeadlineMs > 0 && total > p.DeadlineMs {
				rb.counters.Timeouts++
				res.timedOut = true
				res.latencyMs = p.DeadlineMs
				return res
			}
			if viaHedge {
				rb.counters.HedgeWins++
			}
			if winRep != order[0] {
				rb.counters.Failovers++
			}
			rb.sel.Report(part, rep, okAt >= 0)
			if hedged {
				rb.sel.Report(part, hrep, hokAt >= 0)
			}
			rb.hist.Add(part, win)
			res.ok = true
			res.latencyMs = total
			return res
		}

		// Both the attempt and its hedge failed: the broker moves on once
		// the slower failure signal lands.
		wait := failAt
		if hedged && hfailAt > wait {
			wait = hfailAt
		}
		elapsed += wait
		rb.sel.Report(part, rep, false)
		if hedged {
			rb.sel.Report(part, hrep, false)
		}
		if p.DeadlineMs > 0 && elapsed >= p.DeadlineMs {
			rb.counters.Timeouts++
			res.timedOut = true
			res.latencyMs = p.DeadlineMs
			return res
		}
	}
	// Retry budget exhausted.
	res.latencyMs = elapsed
	return res
}

// lost records a partition that contributed nothing.
func (rb *robustness) lost() { rb.counters.Lost++ }

// snapshot returns the cumulative counters.
func (rb *robustness) snapshot() metrics.FaultCounters { return rb.counters }
