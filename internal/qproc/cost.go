// Package qproc implements the distributed query processing module of
// Section 5: document-partitioned scatter-gather with a broker, the
// two-round global-statistics protocol, pipelined term-partitioned
// evaluation, collection selection, broker hierarchies, result caching
// with failure masking, multi-site routing (geographic, load-aware,
// topical, language), and incremental query processing.
//
// All engines run on virtual time and account per-server busy load, so
// the Figure 2 comparison and the Webber-style resource measurements
// (experiment C6) fall out of instrumented query replay.
package qproc

import "dwr/internal/rank"

// CostModel converts index work into virtual service milliseconds.
// It is deliberately simple — a fixed per-query overhead plus a
// per-posting decode cost — because the load-balance phenomena of
// Figure 2 come from which server does the decoding, not from the
// absolute constants.
type CostModel struct {
	FixedMs          float64 // per query-fragment overhead on a server
	PerPostingMs     float64
	PerAccumulatorMs float64 // per travelling-accumulator entry a pipeline server touches
	CacheHitMs       float64 // broker-local result-cache hit: a hash lookup, no fan-out
}

// DefaultCostModel returns 0.1 ms fixed + 2 µs per posting + 1 µs per
// accumulator entry; a result-cache hit answers in 0.2 ms flat.
func DefaultCostModel() CostModel {
	return CostModel{FixedMs: 0.1, PerPostingMs: 0.002, PerAccumulatorMs: 0.001, CacheHitMs: 0.2}
}

// ServiceMs returns the service time for decoding n postings.
func (c CostModel) ServiceMs(postings int) float64 {
	return c.FixedMs + float64(postings)*c.PerPostingMs
}

// AccumulatorMs returns the cost of receiving, merging, and forwarding a
// travelling accumulator of n entries — the per-hop CPU overhead that
// makes pipelined term-partitioned systems lose the throughput race even
// when their load is balanced (Webber et al.).
func (c CostModel) AccumulatorMs(n int) float64 {
	return float64(n) * c.PerAccumulatorMs
}

// QueryResult is the outcome of one distributed query evaluation.
type QueryResult struct {
	Results          []rank.Result
	LatencyMs        float64
	ServersContacted int
	Rounds           int   // network round trips the broker needed
	PostingsDecoded  int   // postings touched across all servers
	ListsAccessed    int   // posting-list fetches (disk accesses) across all servers
	PostingBytesRead int64 // encoded posting bytes accessed (disk cost)
	// PostingBytesDecoded is the encoded bytes actually decoded (blocks
	// touched); dynamic pruning lowers this below PostingBytesRead by
	// skipping non-competitive blocks.
	PostingBytesDecoded int64
	BytesTransferred    int64 // result/accumulator bytes moved between servers
	FromCache           bool
	Stale               bool // answered from cache beyond its freshness TTL
	Degraded            bool // some selected servers were down; partial answer
	// PartitionsSkipped counts live partitions the threshold-sharing
	// scheduler never contacted because their resident score upper bound
	// could not beat the broker's running k-th score (always 0 on the
	// single-wave path). Skipped is not lost: a skipped partition
	// provably holds no global top-k document.
	PartitionsSkipped int
	// Waves is the number of evaluation scatter waves the broker
	// dispatched: 1 for single-wave scatter-gather, possibly more under
	// threshold sharing, 0 for cache hits and all-down answers.
	Waves   int
	Retries int // partition-call retries the fault policy spent
	Hedges  int // hedged backup requests the fault policy fired
	// Err is set when the engine could not produce an acceptable answer:
	// ErrUnavailable under a fail-fast fault policy, ErrAllSitesDown when
	// a multi-site query found no reachable processor. Inspect with
	// errors.Is; nil for every served answer, including degraded ones.
	Err error
}

// resultBytes estimates the wire size of a result list (doc ID + score).
func resultBytes(n int) int64 { return int64(n) * 12 }
