package qproc

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"dwr/internal/index"
	"dwr/internal/partition"
)

// binPack4 builds a 4-server DF-balanced term partition over central's
// vocabulary.
func binPack4(central *index.Index) partition.TermPartition {
	return partition.BinPackTerms(central.Terms(), func(t string) float64 {
		return float64(central.DF(t))
	}, 4)
}

// TestPostingsCacheDeterminism is the acceptance gate for the second
// cache level: with the posting-list cache on, every query must return a
// QueryResult byte-identical (full struct, reflect.DeepEqual) to the
// uncached engine's, across worker counts, partition counts, statistics
// modes, and OR/AND evaluation — on both the cold (miss+populate) and
// warm (all-hit) passes. Run in CI under -race.
func TestPostingsCacheDeterminism(t *testing.T) {
	docs := corpus(41, 400, 250)
	queries := zipfQueries(42, 30, 250)
	for _, parts := range []int{1, 3, 8} {
		plain := newDocEngine(t, docs, parts, WithWorkers(1))
		for _, workers := range []int{1, 8} {
			cached := newDocEngine(t, docs, parts, WithPostingsCache(1<<20), WithWorkers(workers))
			for _, mode := range []StatsMode{GlobalTwoRound, GlobalPrecomputed, LocalOnly} {
				for _, conj := range []bool{false, true} {
					opt := DocQueryOptions{K: 10, Stats: mode, Conjunctive: conj}
					for pass := 0; pass < 2; pass++ { // cold, then warm
						for qi, q := range queries {
							want := plain.Query(q, opt)
							got := cached.Query(q, opt)
							if !reflect.DeepEqual(want, got) {
								t.Fatalf("parts=%d workers=%d mode=%d conj=%v pass=%d query %d %v:\nuncached %+v\ncached   %+v",
									parts, workers, mode, conj, pass, qi, q, want, got)
							}
						}
					}
				}
			}
			if st := cached.PostingsCacheStats(); st.Hits == 0 || st.Misses == 0 {
				t.Fatalf("parts=%d workers=%d: posting cache never exercised both paths: %+v", parts, workers, st)
			}
		}
	}
}

// TestTermEnginePostingsCacheDeterminism: same contract for the
// pipelined term-partitioned engine.
func TestTermEnginePostingsCacheDeterminism(t *testing.T) {
	docs := corpus(43, 300, 200)
	central := centralIndex(docs)
	tp := binPack4(central)
	plain, err := NewTermEngine(index.DefaultOptions(), docs, tp, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		cached, err := NewTermEngine(index.DefaultOptions(), docs, tp,
			WithPostingsCache(1<<20), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			for _, q := range zipfQueries(44, 30, 200) {
				want := plain.Query(q, 10)
				got := cached.Query(q, 10)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("workers=%d pass=%d query %v:\nuncached %+v\ncached   %+v", workers, pass, q, want, got)
				}
			}
		}
		if st := cached.PostingsCacheStats(); st.Hits == 0 {
			t.Fatalf("workers=%d: term-server posting cache never hit", workers)
		}
	}
}

// TestResultCacheHitPath: a repeat query answers from the broker cache
// with the identical ranking, the FromCache flag, the flat cache-hit
// latency, and zero backend work.
func TestResultCacheHitPath(t *testing.T) {
	docs := corpus(45, 300, 200)
	e := newDocEngine(t, docs, 4, WithResultCache(ResultCacheConfig{Capacity: 64, Shards: 4}))
	q := []string{"w0001", "w0003"}
	opt := DocQueryOptions{K: 10, Stats: GlobalTwoRound}
	first := e.Query(q, opt)
	if first.FromCache {
		t.Fatal("cold query reported FromCache")
	}
	second := e.Query(q, opt)
	if !second.FromCache {
		t.Fatal("repeat query missed the result cache")
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("cached ranking differs from computed ranking")
	}
	if second.LatencyMs != DefaultCostModel().CacheHitMs {
		t.Fatalf("hit latency %v, want CacheHitMs %v", second.LatencyMs, DefaultCostModel().CacheHitMs)
	}
	if second.PostingsDecoded != 0 || second.ServersContacted != 0 || second.Rounds != 0 || second.BytesTransferred != 0 {
		t.Fatalf("hit did backend work: %+v", second)
	}
	st := e.ResultCache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats %+v, want 1 hit 1 miss", st)
	}
	// Different K or mode must not share an entry.
	other := e.Query(q, DocQueryOptions{K: 5, Stats: GlobalTwoRound})
	if other.FromCache {
		t.Fatal("k=5 hit the k=10 entry")
	}
	if len(other.Results) > 5 {
		t.Fatalf("k=5 returned %d results", len(other.Results))
	}
}

// TestResultCacheDegradedNotCached: partial answers under failures never
// enter the cache, and SetDown invalidates what is already there.
func TestResultCacheDegradedNotCached(t *testing.T) {
	docs := corpus(46, 300, 200)
	e := newDocEngine(t, docs, 4, WithResultCache(ResultCacheConfig{Capacity: 64, Shards: 4}))
	q := []string{"w0002"}
	opt := DocQueryOptions{K: 10, Stats: GlobalPrecomputed}
	e.Query(q, opt) // cached, full answer
	e.SetDown(0, true)
	after := e.Query(q, opt)
	if after.FromCache {
		t.Fatal("SetDown did not invalidate the result cache")
	}
	if !after.Degraded {
		t.Fatal("expected a degraded answer with partition 0 down")
	}
	again := e.Query(q, opt)
	if again.FromCache {
		t.Fatal("degraded answer was cached")
	}
	e.SetDown(0, false)
	healed := e.Query(q, opt)
	if healed.FromCache || healed.Degraded {
		t.Fatalf("recovery must recompute a full answer: %+v", healed)
	}
	if st := e.ResultCache().Stats(); st.StaleGen == 0 {
		t.Fatalf("generation invalidation left no stale-miss trace: %+v", st)
	}
}

// TestResultCacheTTLExpiry: entries older than TTLQueries ticks of the
// cache's virtual clock are re-evaluated.
func TestResultCacheTTLExpiry(t *testing.T) {
	docs := corpus(47, 200, 150)
	e := newDocEngine(t, docs, 2, WithResultCache(ResultCacheConfig{Capacity: 64, Shards: 2, TTLQueries: 5}))
	q := []string{"w0001"}
	opt := DocQueryOptions{K: 10, Stats: GlobalPrecomputed}
	e.Query(q, opt)
	if !e.Query(q, opt).FromCache {
		t.Fatal("immediate repeat missed")
	}
	for i := 0; i < 10; i++ { // advance the clock past the TTL
		e.Query([]string{fmt.Sprintf("w%04d", 10+i)}, opt)
	}
	if e.Query(q, opt).FromCache {
		t.Fatal("entry served past its TTL")
	}
	if st := e.ResultCache().Stats(); st.ExpiredTTL == 0 {
		t.Fatalf("no TTL expiry recorded: %+v", st)
	}
}

// TestDynamicOnChangeInvalidatesResultCache wires the two new hooks
// together: a dynamic-index mutation bumps the result cache's
// generation, so the next lookup recomputes instead of serving a result
// from before the update.
func TestDynamicOnChangeInvalidatesResultCache(t *testing.T) {
	rc := NewResultCache(ResultCacheConfig{Capacity: 16, Shards: 2})
	d := index.NewDynamic(index.DefaultOptions(), 8, 3)
	d.OnChange(rc.Invalidate)
	rc.Put("q|k=10", QueryResult{LatencyMs: 1})
	if _, ok := rc.Get("q|k=10"); !ok {
		t.Fatal("warm entry missing")
	}
	if err := d.Add(1, []string{"fresh", "doc"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := rc.Get("q|k=10"); ok {
		t.Fatal("result cached before the index update survived it")
	}
	if rc.Stats().StaleGen != 1 {
		t.Fatalf("stats %+v, want 1 generation-stale miss", rc.Stats())
	}
}

// TestResultCacheSDCBeatsLRUOnEngine replays one Zipfian stream through
// two identically sized broker caches; the SDC cache, with its static
// section warmed from the head of a log sample, must out-hit pure LRU —
// the Fagni et al. result at the engine level.
func TestResultCacheSDCBeatsLRUOnEngine(t *testing.T) {
	docs := corpus(48, 300, 300)
	queries := zipfQueries(49, 6000, 300)
	opt := DocQueryOptions{K: 10, Stats: GlobalPrecomputed}

	// Warm the static set from the head (first third) of the stream.
	sample := queries[:2000]
	counts := make(map[string]int, len(sample))
	for _, q := range sample {
		counts[DocCacheKey(q, opt)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	const capTotal = 128
	static := keys
	if len(static) > capTotal/2 {
		static = static[:capTotal/2]
	}

	run := func(cfg ResultCacheConfig) CacheStats {
		e := newDocEngine(t, docs, 4, WithResultCache(cfg))
		for _, q := range queries {
			e.Query(q, opt)
		}
		return e.ResultCache().Stats()
	}
	lru := run(ResultCacheConfig{Capacity: capTotal, Shards: 4, Policy: CacheLRU})
	sdc := run(ResultCacheConfig{Capacity: capTotal, Shards: 4, Policy: CacheSDC, StaticKeys: static})
	if sdc.HitRatio() <= lru.HitRatio() {
		t.Fatalf("SDC hit ratio %.3f not above LRU %.3f", sdc.HitRatio(), lru.HitRatio())
	}
}

// TestConcurrentCachedQueries hammers a fully cache-enabled engine from
// many goroutines under -race: sharded result cache, posting caches, and
// interleaved invalidations.
func TestConcurrentCachedQueries(t *testing.T) {
	docs := corpus(50, 300, 200)
	e := newDocEngine(t, docs, 4,
		WithResultCache(ResultCacheConfig{Capacity: 256, Shards: 8, Policy: CacheLFU}),
		WithPostingsCache(1<<18))
	queries := zipfQueries(51, 40, 200)
	opt := DocQueryOptions{K: 10, Stats: GlobalPrecomputed}
	want := make([]QueryResult, len(queries))
	for i, q := range queries {
		want[i] = e.Query(q, opt)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				qi := (g + i) % len(queries)
				got := e.Query(queries[qi], opt)
				if !reflect.DeepEqual(got.Results, want[qi].Results) {
					t.Errorf("query %d: ranking changed under concurrency", qi)
					return
				}
				if g == 0 && i%50 == 49 {
					e.ResultCache().Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
	if st := e.ResultCache().Stats(); st.Hits == 0 {
		t.Fatal("result cache never hit under load")
	}
}

// TestTermEngineResultCache: the pipelined engine's broker cache serves
// repeats with identical rankings.
func TestTermEngineResultCache(t *testing.T) {
	docs := corpus(52, 200, 150)
	central := centralIndex(docs)
	e, err := NewTermEngine(index.DefaultOptions(), docs, binPack4(central),
		WithResultCache(ResultCacheConfig{Capacity: 32, Shards: 2}))
	if err != nil {
		t.Fatal(err)
	}
	q := []string{"w0002", "w0005"}
	first := e.Query(q, 10)
	second := e.Query(q, 10)
	if !second.FromCache {
		t.Fatal("repeat query missed")
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("cached ranking differs")
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	a := NormalizeQueryKey([]string{"b", "a", "b", "a"})
	if a != "b a" {
		t.Fatalf("dedup key = %q, want first-occurrence order", a)
	}
	opt := DocQueryOptions{K: 10}
	if DocCacheKey([]string{"a", "b"}, opt) == DocCacheKey([]string{"b", "a"}, opt) {
		t.Fatal("permutations must NOT share a key (float accumulation order differs)")
	}
	if DocCacheKey([]string{"a"}, DocQueryOptions{K: 10}) == DocCacheKey([]string{"a"}, DocQueryOptions{K: 20}) {
		t.Fatal("k must be part of the key")
	}
	if DocCacheKey([]string{"a"}, DocQueryOptions{K: 10}) == DocCacheKey([]string{"a"}, DocQueryOptions{K: 10, Conjunctive: true}) {
		t.Fatal("conjunctive flag must be part of the key")
	}
	if TermCacheKey([]string{"a"}, 10) == TermCacheKey([]string{"a"}, 20) {
		t.Fatal("k must be part of the term-engine key")
	}
}

func TestParseCachePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CachePolicy
	}{{"lru", CacheLRU}, {"LFU", CacheLFU}, {"sdc", CacheSDC}} {
		got, err := ParseCachePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseCachePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseCachePolicy("arc"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
