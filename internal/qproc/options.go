package qproc

import (
	"sync"

	"dwr/internal/faultsim"
	"dwr/internal/rank"
)

// Option configures an engine at construction. The same options apply
// to DocEngine, TermEngine, and MultiSite (options that do not apply to
// an engine kind are ignored): pass them to NewDocEngine /
// NewTermEngine / NewMultiSite after the positional arguments. This is
// the one configuration surface — engines are immutable once built,
// apart from topology changes (SetDown) and cache invalidation.
type Option func(*engineOptions)

// engineOptions is the resolved construction-time configuration.
type engineOptions struct {
	workers    int
	haveWork   bool
	rcCfg      *ResultCacheConfig
	rcInstance *ResultCache
	rcSet      bool // an option explicitly decided the result cache
	plBytes    int64
	plSet      bool
	policy     *FaultPolicy
	injector   *faultsim.Injector
	docDefault *DocQueryOptions
	pruning    rank.Pruning
	threshold  bool
	mediator   Mediator
}

// WithWorkers sets the engine's fan-out width: partition evaluations
// (and index construction) run on up to n goroutines. n = 1 is the
// serial broker, n <= 0 means GOMAXPROCS. Results and accounting are
// identical at any width.
func WithWorkers(n int) Option {
	return func(o *engineOptions) {
		if n < 0 {
			n = 0
		}
		o.workers = n
		o.haveWork = true
	}
}

// WithResultCache gives the engine a broker-level result cache built
// from cfg. Degraded or failed answers are never cached.
func WithResultCache(cfg ResultCacheConfig) Option {
	return func(o *engineOptions) {
		c := cfg
		c.StaticKeys = append([]string(nil), cfg.StaticKeys...)
		o.rcCfg = &c
		o.rcInstance = nil
		o.rcSet = true
	}
}

// WithResultCacheInstance installs a prebuilt (possibly pre-warmed)
// result cache; nil explicitly disables the result cache, overriding
// any ambient default.
func WithResultCacheInstance(rc *ResultCache) Option {
	return func(o *engineOptions) {
		o.rcInstance = rc
		o.rcCfg = nil
		o.rcSet = true
	}
}

// WithPostingsCache gives every partition/term server a posting-list
// cache of bytesPerServer bytes of decoded postings (<= 0 disables,
// overriding any ambient default). Cached and uncached evaluation
// return byte-identical results; only decode work is saved.
func WithPostingsCache(bytesPerServer int64) Option {
	return func(o *engineOptions) {
		if bytesPerServer < 0 {
			bytesPerServer = 0
		}
		o.plBytes = bytesPerServer
		o.plSet = true
	}
}

// WithPruning selects the engine's default top-k evaluation strategy
// for disjunctive queries: rank.PruneMaxScore or rank.PruneBlockMax
// enable dynamic pruning over the block-max posting metadata,
// rank.PruneNone (the default) evaluates exhaustively. Pruned and
// exhaustive evaluation are rank-identical (see rank.EvaluateTopK); only
// the decode work differs, so brokers, caches, fault policy, and
// deadline propagation compose unchanged. Per-query DocQueryOptions.
// Pruning overrides this default. Engines without a disjunctive
// document-at-a-time path (TermEngine) ignore it.
func WithPruning(mode rank.Pruning) Option {
	return func(o *engineOptions) { o.pruning = mode }
}

// WithThresholdSharing makes threshold sharing the DocEngine's default
// for disjunctive queries: instead of one scatter wave over all
// partitions at threshold 0, the broker orders partitions by their
// resident query score upper bound, evaluates them in growing waves,
// seeds every wave after the first with its running k-th merged score,
// and skips partitions whose upper bound proves they hold no global
// top-k document. Results are rank-identical to single-wave evaluation
// (see rank.EvaluateTopKSeededFrom for the safety argument); only the
// work — partitions contacted, blocks decoded — shrinks. Per-query
// DocQueryOptions.Threshold overrides the default; engines without a
// bound-ordered scatter (TermEngine, and MultiSite's site level) ignore
// the option, though MultiSite site engines configured with it use it
// for the per-site fan-out.
func WithThresholdSharing(on bool) Option {
	return func(o *engineOptions) { o.threshold = on }
}

// WithMediator puts a federated query mediator on the engine's serving
// path: MultiSite.QueryTopK takes the QueryFederated route (collection
// selection picks the site subset each query touches, with full fan-out
// as the confidence/fault fallback), and LiveEngine restricts its
// partition scatter to the mediator-selected segment stores. The
// mediator must be deterministic for fixed statistics; cache keys gain a
// `sel=` component naming the selected subset. Engines without a
// federated scatter (DocEngine, TermEngine) ignore the option. Passing
// nil disables mediation, overriding any ambient default.
func WithMediator(m Mediator) Option {
	return func(o *engineOptions) { o.mediator = m }
}

// WithFaultPolicy activates the robustness policy on the engine's
// partition/site calls: per-query deadline budgets, bounded retries
// with backoff across replicas, hedged backup requests, and the
// explicit fail-fast / best-effort degradation mode. Combine with
// WithInjector to exercise the policy under injected faults; without an
// injector the policy only engages on genuinely slow partitions (and an
// all-zero policy leaves results byte-identical to a plain engine).
func WithFaultPolicy(p FaultPolicy) Option {
	return func(o *engineOptions) {
		pp := p.normalized()
		o.policy = &pp
	}
}

// WithInjector wires a deterministic fault-injection layer (see
// internal/faultsim) under the engine's partition/site calls. If no
// FaultPolicy was configured, DefaultFaultPolicy() applies.
func WithInjector(in *faultsim.Injector) Option {
	return func(o *engineOptions) { o.injector = in }
}

// WithDocQueryDefaults sets the DocQueryOptions used when a DocEngine
// is driven through the uniform Engine interface (QueryTopK). The K
// field is overridden per call. Other engines ignore it.
func WithDocQueryDefaults(opt DocQueryOptions) Option {
	return func(o *engineOptions) {
		d := opt
		o.docDefault = &d
	}
}

// Ambient construction defaults: a single option list CLIs set once so
// every engine constructed afterwards (including deep inside
// experiments or core) starts from the same configuration.
var (
	defaultOptMu sync.Mutex
	defaultOpts  []Option
)

// SetDefaultOptions replaces the ambient default option list applied at
// the start of every engine construction (per-call options win).
// Command-line tools call this once from their flags; pass nothing to
// clear.
func SetDefaultOptions(opts ...Option) {
	defaultOptMu.Lock()
	defaultOpts = append([]Option(nil), opts...)
	defaultOptMu.Unlock()
}

// resolveOptions folds the ambient default options and the per-call
// options (per-call wins) into one resolved configuration.
func resolveOptions(opts []Option) engineOptions {
	var eo engineOptions
	defaultOptMu.Lock()
	ambient := defaultOpts
	defaultOptMu.Unlock()
	for _, o := range ambient {
		o(&eo)
	}
	for _, o := range opts {
		o(&eo)
	}
	return eo
}

// resultCache materializes the configured result cache (nil = none).
func (o *engineOptions) resultCache() *ResultCache {
	if o.rcInstance != nil {
		return o.rcInstance
	}
	if o.rcCfg != nil {
		return NewResultCache(*o.rcCfg)
	}
	return nil
}

// robust materializes the robustness runtime for an engine with k units
// (nil when no fault options were given).
func (o *engineOptions) robust(k int) *robustness {
	if o.policy == nil && o.injector == nil {
		return nil
	}
	p := DefaultFaultPolicy()
	if o.policy != nil {
		p = *o.policy
	}
	return newRobustness(p, o.injector, k)
}
