package qproc

import (
	"fmt"
	"sort"

	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/rank"
)

// TermEngine is a pipelined term-partitioned query processing cluster
// (Moffat, Webber, Zobel, Baeza-Yates): each server stores the complete
// posting lists of its term range over the whole collection; a query
// visits only the servers owning its terms, in a pipeline, each adding
// its terms' score contributions to a travelling accumulator set, and
// the last server extracts the top-k.
type TermEngine struct {
	cost    CostModel
	lanMs   float64
	tp      partition.TermPartition
	servers []*index.Index
	scorer  *rank.Scorer // term-partitioned servers know exact global stats
	busyMs  []float64
	queries int
}

// NewTermEngine builds per-server term-sliced indexes from docs under
// the given term partition. Every server's index carries the full
// document table (with true document lengths) but only its own terms'
// postings, matching the vertical slicing of Figure 1.
func NewTermEngine(opts index.Options, docs []index.Doc, tp partition.TermPartition) (*TermEngine, error) {
	if tp.K <= 0 {
		return nil, fmt.Errorf("qproc: term partition with no servers")
	}
	builders := make([]*index.Builder, tp.K)
	for i := range builders {
		builders[i] = index.NewBuilder(opts)
	}
	for _, d := range docs {
		for s := 0; s < tp.K; s++ {
			s := s
			builders[s].AddDocumentFiltered(d.Ext, d.Terms, func(t string) bool {
				return tp.Assign[t] == s
			})
		}
	}
	e := &TermEngine{
		cost:   DefaultCostModel(),
		lanMs:  0.3,
		tp:     tp,
		busyMs: make([]float64, tp.K),
	}
	var stats []index.Stats
	for _, b := range builders {
		ix := b.Build()
		e.servers = append(e.servers, ix)
		stats = append(stats, ix.LocalStats(nil))
	}
	merged := index.MergeStats(stats...)
	// Every server indexed every document, so doc counts were multiplied
	// K times by the merge; correct with any single server's view.
	merged.NumDocs = e.servers[0].NumDocs()
	merged.TotalLen = e.servers[0].TotalLen()
	e.scorer = rank.NewScorer(rank.FromGlobal(merged))
	return e, nil
}

// K returns the number of term servers.
func (e *TermEngine) K() int { return len(e.servers) }

// BusyMs returns accumulated per-server busy time — the right-hand side
// of Figure 2.
func (e *TermEngine) BusyMs() []float64 {
	return append([]float64(nil), e.busyMs...)
}

// ResetBusy clears the busy-load accounting.
func (e *TermEngine) ResetBusy() {
	for i := range e.busyMs {
		e.busyMs[i] = 0
	}
	e.queries = 0
}

// Query evaluates terms through the pipeline and returns the top-k.
func (e *TermEngine) Query(terms []string, k int) QueryResult {
	if k <= 0 {
		k = 10
	}
	e.queries++
	var qr QueryResult
	route := e.tp.PartsOf(terms)
	qr.ServersContacted = len(route)
	qr.Rounds = len(route) // pipeline hops
	if len(route) == 0 {
		return qr
	}

	// The accumulator travels server to server; doc ordinals are shared
	// because every server indexed the same document list.
	acc := make(map[int]float64)
	latency := 0.0
	for _, s := range route {
		ix := e.servers[s]
		postings := 0
		var bytesRead int64
		for _, t := range dedupTerms(terms) {
			if e.tp.Assign[t] != s {
				continue
			}
			it := ix.Postings(t)
			if it == nil {
				continue
			}
			bytesRead += int64(ix.PostingBytes(t))
			qr.ListsAccessed++
			idf := e.scorer.IDF(t)
			for it.Next() {
				postings++
				p := it.Posting()
				acc[ix.ExtID(p.Doc)] += e.scorer.Term(p.TF, ix.DocLen(p.Doc), idf)
			}
		}
		service := e.cost.ServiceMs(postings) + e.cost.AccumulatorMs(len(acc))
		e.busyMs[s] += service
		latency += e.lanMs + service
		qr.PostingsDecoded += postings
		qr.PostingBytesRead += bytesRead
		// The partially-resolved query (accumulator) moves to the next
		// server — the communication overhead Section 5 highlights.
		qr.BytesTransferred += resultBytes(len(acc))
	}
	latency += e.lanMs // final answer back to the broker

	rs := make([]rank.Result, 0, len(acc))
	for doc, score := range acc {
		rs = append(rs, rank.Result{Doc: doc, Score: score})
	}
	rank.SortResults(rs)
	if len(rs) > k {
		rs = rs[:k]
	}
	qr.Results = rs
	qr.LatencyMs = latency
	return qr
}

func dedupTerms(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}
