package qproc

import (
	"fmt"
	"sort"
	"sync"

	"dwr/internal/conc"
	"dwr/internal/index"
	"dwr/internal/partition"
	"dwr/internal/rank"
)

// TermEngine is a pipelined term-partitioned query processing cluster
// (Moffat, Webber, Zobel, Baeza-Yates): each server stores the complete
// posting lists of its term range over the whole collection; a query
// visits only the servers owning its terms, in a pipeline, each adding
// its terms' score contributions to a travelling accumulator set, and
// the last server extracts the top-k.
//
// Wall-clock execution fans the per-server posting scans out over a
// bounded worker pool: score contributions are additive, so each server
// computes its local delta map in parallel and the broker folds the
// deltas into the travelling accumulator in route order at the gather
// point. The simulated cost model still charges the pipeline shape —
// per-hop accumulator sizes, latency as the SUM of hop times — so the
// paper's comparison against scatter-gather is unchanged at any worker
// count.
type TermEngine struct {
	cost     CostModel
	lanMs    float64
	tp       partition.TermPartition
	servers  []*index.Index
	scorer   *rank.Scorer // term-partitioned servers know exact global stats
	workers  int
	mu       sync.Mutex
	busyMs   []float64
	queries  int
	degraded int
	failed   int
	// rcache caches complete results at the broker; pcaches cache
	// decoded posting lists per term server. Both nil by default.
	rcache  *ResultCache
	pcaches []*index.PostingsCache
	// rb is the robustness runtime; nil unless fault options were given.
	// A lost pipeline hop is bypassed: its terms' contributions are
	// missing from the accumulator, so the answer is Degraded.
	rb *robustness
}

// NewTermEngine builds per-server term-sliced indexes from docs under
// the given term partition; the K server indexes are constructed
// concurrently. Every server's index carries the full document table
// (with true document lengths) but only its own terms' postings,
// matching the vertical slicing of Figure 1. Configuration is by
// functional options (WithWorkers, WithResultCache, WithPostingsCache,
// WithFaultPolicy, WithInjector), applied on top of the ambient
// defaults (SetDefaultOptions).
func NewTermEngine(opts index.Options, docs []index.Doc, tp partition.TermPartition, options ...Option) (*TermEngine, error) {
	if tp.K <= 0 {
		return nil, fmt.Errorf("qproc: term partition with no servers")
	}
	eo := resolveOptions(options)
	builders := make([]*index.MemBuilder, tp.K)
	for i := range builders {
		builders[i] = index.NewBuilder(opts)
	}
	for _, d := range docs {
		for s := 0; s < tp.K; s++ {
			s := s
			builders[s].AddDocumentFiltered(d.Ext, d.Terms, func(t string) bool {
				return tp.Assign[t] == s
			})
		}
	}
	e := &TermEngine{
		cost:    DefaultCostModel(),
		lanMs:   0.3,
		tp:      tp,
		workers: eo.workers,
		busyMs:  make([]float64, tp.K),
	}
	e.servers = index.BuildAll(builders, e.workers)
	stats := make([]index.Stats, len(e.servers))
	conc.Do(len(e.servers), e.workers, func(i int) {
		stats[i] = e.servers[i].LocalStats(nil)
	})
	merged := index.MergeStats(stats...)
	// Every server indexed every document, so doc counts were multiplied
	// K times by the merge; correct with any single server's view.
	merged.NumDocs = e.servers[0].NumDocs()
	merged.TotalLen = e.servers[0].TotalLen()
	e.scorer = rank.NewScorer(rank.FromGlobal(merged))
	e.rcache = eo.resultCache()
	e.installPostingsCache(eo.plBytes)
	e.rb = eo.robust(tp.K)
	return e, nil
}

// K returns the number of term servers.
func (e *TermEngine) K() int { return len(e.servers) }

// Workers reports the configured fan-out width (0 = GOMAXPROCS).
func (e *TermEngine) Workers() int { return e.workers }

// ResultCache returns the installed result cache (nil if none).
func (e *TermEngine) ResultCache() *ResultCache { return e.rcache }

// installPostingsCache materializes the WithPostingsCache option.
func (e *TermEngine) installPostingsCache(bytesPerServer int64) {
	if bytesPerServer <= 0 {
		e.pcaches = nil
		return
	}
	e.pcaches = make([]*index.PostingsCache, len(e.servers))
	for i := range e.pcaches {
		e.pcaches[i] = index.NewPostingsCache(bytesPerServer)
	}
}

// PostingsCacheStats aggregates hit/miss/occupancy over the term
// servers' posting-list caches (zero value if disabled).
func (e *TermEngine) PostingsCacheStats() PostingsCacheStats {
	var out PostingsCacheStats
	for _, pc := range e.pcaches {
		h, m, b := pc.Stats()
		out.Hits += h
		out.Misses += m
		out.UsedBytes += b
	}
	return out
}

// BusyMs returns accumulated per-server busy time — the right-hand side
// of Figure 2.
func (e *TermEngine) BusyMs() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]float64(nil), e.busyMs...)
}

// ResetBusy clears the busy-load accounting.
func (e *TermEngine) ResetBusy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.busyMs {
		e.busyMs[i] = 0
	}
	e.queries = 0
}

// accEntry is one posting's score contribution, recorded in scan order
// so the gather can replay the exact addition sequence of the serial
// pipeline (floating-point addition is not associative; folding
// per-server sums first would change low-order bits).
type accEntry struct {
	doc   int // external document ID
	delta float64
}

// hopEval is one term server's locally computed contribution: the
// per-posting score deltas its terms add to the travelling accumulator,
// plus the resource counters the gather folds in route order.
type hopEval struct {
	entries      []accEntry
	postings     int
	lists        int
	bytesRead    int64
	bytesDecoded int64
}

// Query evaluates terms through the pipeline and returns the top-k.
func (e *TermEngine) Query(terms []string, k int) QueryResult {
	return e.query(terms, k, 0)
}

// query is Query with an optional latency budget (deadlineMs > 0): the
// pipeline is cut short at the first hop that would start after the
// budget is spent, and the answer is a deadline failure rather than a
// late delivery.
func (e *TermEngine) query(terms []string, k int, deadlineMs float64) QueryResult {
	if k <= 0 {
		k = 10
	}
	var ckey string
	if e.rcache != nil {
		ckey = TermCacheKey(terms, k)
		if hit, ok := e.rcache.Get(ckey); ok {
			qr := QueryResult{Results: hit.Results, FromCache: true, LatencyMs: e.cost.CacheHitMs}
			enforceDeadline(&qr, deadlineMs)
			return qr
		}
	}
	var qr QueryResult
	route := e.tp.PartsOf(terms)
	qr.ServersContacted = len(route)
	qr.Rounds = len(route) // pipeline hops
	if len(route) == 0 {
		e.mu.Lock()
		e.queries++
		e.mu.Unlock()
		return qr
	}

	// Scatter: every visited server scans its own terms' postings into a
	// private contribution list, preserving term-then-posting order.
	hops := make([]hopEval, len(route))
	conc.Do(len(route), e.workers, func(i int) {
		s := route[i]
		ix := e.servers[s]
		var cp *index.CachedPostings
		if e.pcaches != nil {
			cp = e.pcaches[s].Bind(ix)
		}
		h := &hops[i]
		var its index.Iterator
		for _, t := range dedupTerms(terms) {
			if e.tp.Assign[t] != s {
				continue
			}
			var it *index.Iterator
			if cp != nil {
				it = cp.PostingsInto(&its, t)
			} else {
				it = ix.PostingsInto(&its, t)
			}
			if it == nil {
				continue
			}
			h.bytesRead += int64(ix.PostingBytes(t))
			h.lists++
			idf := e.scorer.IDF(t)
			for it.Next() {
				h.postings++
				p := it.Posting()
				h.entries = append(h.entries, accEntry{
					doc:   ix.ExtID(p.Doc),
					delta: e.scorer.Term(p.TF, ix.DocLen(p.Doc), idf),
				})
			}
			h.bytesDecoded += it.BytesDecoded()
		}
	})

	// Gather: rebuild the travelling accumulator hop by hop, in route
	// order, charging each hop the accumulator size it would have seen —
	// the communication overhead Section 5 highlights. Doc ordinals are
	// shared because every server indexed the same document list.
	acc := make(map[int]float64)
	latency := 0.0
	lost := 0
	timedOut := false
	e.mu.Lock()
	e.queries++
	tick := int64(e.queries)
	for i, s := range route {
		h := &hops[i]
		if deadlineMs > 0 && latency >= deadlineMs {
			// Budget spent before this hop could start: the pipeline is
			// abandoned and the remaining servers are never contacted
			// (their scatter work above is wasted, as it would be on a
			// real cluster that cancels in-flight fragments late).
			timedOut = true
			qr.ServersContacted = i
			qr.Rounds = i
			break
		}
		if e.rb != nil {
			// The hop's service cost depends on the accumulator size the
			// server would forward, so compute it prospectively (without
			// folding) — on success the fold below produces exactly this
			// size, keeping the zero-fault path byte-identical.
			var added []int
			for _, en := range h.entries {
				if _, ok := acc[en.doc]; !ok {
					acc[en.doc] = 0
					added = append(added, en.doc)
				}
			}
			service := e.cost.ServiceMs(h.postings) + e.cost.AccumulatorMs(len(acc))
			remaining := 0.0
			if deadlineMs > 0 {
				remaining = deadlineMs - latency
			}
			cr := e.rb.call(tick, s, e.lanMs, service, remaining)
			qr.Retries += cr.retries
			qr.Hedges += cr.hedges
			latency += cr.latencyMs
			if !cr.ok {
				// Lost hop: the pipeline routes around the server, so its
				// terms' contributions are missing downstream. Undo the
				// prospective placeholder entries so they don't inflate
				// the accumulator.
				for _, d := range added {
					delete(acc, d)
				}
				e.rb.lost()
				lost++
				continue
			}
			for _, en := range h.entries {
				acc[en.doc] += en.delta
			}
			e.busyMs[s] += service
		} else {
			for _, en := range h.entries {
				acc[en.doc] += en.delta
			}
			service := e.cost.ServiceMs(h.postings) + e.cost.AccumulatorMs(len(acc))
			e.busyMs[s] += service
			latency += e.lanMs + service
		}
		qr.ListsAccessed += h.lists
		qr.PostingsDecoded += h.postings
		qr.PostingBytesRead += h.bytesRead
		qr.PostingBytesDecoded += h.bytesDecoded
		// The partially-resolved query (accumulator) moves to the next
		// server.
		qr.BytesTransferred += resultBytes(len(acc))
	}
	e.mu.Unlock()
	latency += e.lanMs // final answer back to the broker

	rs := make([]rank.Result, 0, len(acc))
	for doc, score := range acc {
		rs = append(rs, rank.Result{Doc: doc, Score: score})
	}
	rank.SortResults(rs)
	if len(rs) > k {
		rs = rs[:k]
	}
	qr.Results = rs
	qr.LatencyMs = latency
	if lost > 0 {
		if e.rb.policy.Mode == FailFast {
			qr.Err = fmt.Errorf("%d of %d pipeline hops unavailable: %w", lost, len(route), ErrUnavailable)
			qr.Results = nil
		} else {
			qr.Degraded = true
		}
	}
	if timedOut && qr.Err == nil {
		qr.Err = fmt.Errorf("pipeline abandoned mid-route: %w", ErrDeadlineExceeded)
		qr.Results = nil
		qr.LatencyMs = deadlineMs
	}
	enforceDeadline(&qr, deadlineMs)
	if e.rcache != nil && !qr.Degraded && qr.Err == nil {
		e.rcache.Put(ckey, qr)
	}
	if qr.Err != nil || qr.Degraded {
		e.mu.Lock()
		if qr.Err != nil {
			e.failed++
		} else {
			e.degraded++
		}
		e.mu.Unlock()
	}
	return qr
}

func dedupTerms(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}
