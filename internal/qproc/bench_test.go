package qproc

import (
	"testing"

	"dwr/internal/index"
	"dwr/internal/partition"
)

// Wall-clock benchmarks of the scatter-gather broker: the serial
// (workers=1) and parallel (workers=GOMAXPROCS) paths produce identical
// answers — see TestParallelBrokerMatchesSerial — so these measure pure
// execution-strategy cost. On a single core the parallel path should be
// within noise of serial (the worker pool runs inline below 2 workers of
// real parallelism); on a multi-core runner it approaches min(K, cores)×.

func benchEngine(b *testing.B, parts int, options ...Option) (*DocEngine, [][]string) {
	b.Helper()
	docs := corpus(31, 2000, 1000)
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	e, err := NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, parts), options...)
	if err != nil {
		b.Fatal(err)
	}
	return e, zipfQueries(32, 50, 1000)
}

func benchBrokerWorkers(b *testing.B, workers int, mode StatsMode) {
	e, queries := benchEngine(b, 8, WithWorkers(workers))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			e.Query(q, DocQueryOptions{K: 10, Stats: mode})
		}
	}
}

func BenchmarkBrokerSerial(b *testing.B)   { benchBrokerWorkers(b, 1, GlobalPrecomputed) }
func BenchmarkBrokerParallel(b *testing.B) { benchBrokerWorkers(b, 0, GlobalPrecomputed) }

func BenchmarkBrokerTwoRoundSerial(b *testing.B)   { benchBrokerWorkers(b, 1, GlobalTwoRound) }
func BenchmarkBrokerTwoRoundParallel(b *testing.B) { benchBrokerWorkers(b, 0, GlobalTwoRound) }

func benchTermEngineWorkers(b *testing.B, workers int) {
	docs := corpus(35, 1200, 600)
	central := centralIndex(docs)
	tp := partition.BinPackTerms(central.Terms(), func(t string) float64 {
		return float64(central.DF(t))
	}, 8)
	e, err := NewTermEngine(index.DefaultOptions(), docs, tp, WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	queries := zipfQueries(36, 50, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			e.Query(q, 10)
		}
	}
}

func BenchmarkTermPipelineSerial(b *testing.B)   { benchTermEngineWorkers(b, 1) }
func BenchmarkTermPipelineParallel(b *testing.B) { benchTermEngineWorkers(b, 0) }

func benchConstruction(b *testing.B, workers int) {
	docs := corpus(37, 2000, 800)
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	dp := partition.RoundRobinDocs(ids, 8)
	SetDefaultOptions(WithWorkers(workers))
	defer SetDefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDocEngine(index.DefaultOptions(), docs, dp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineConstructionSerial(b *testing.B)   { benchConstruction(b, 1) }
func BenchmarkEngineConstructionParallel(b *testing.B) { benchConstruction(b, 0) }

// Cache-hierarchy benchmarks. The acceptance pair is
// BenchmarkResultCacheHitZipf vs BenchmarkResultCacheColdZipf: the same
// Zipfian stream against the same engine, warmed broker cache vs no
// cache — the hit path must be at least ~5× faster per stream pass.

func benchResultCache(b *testing.B, cached bool) {
	var opts []Option
	if cached {
		opts = append(opts, WithResultCache(ResultCacheConfig{Capacity: 4096, Shards: 8, Policy: CacheLFU}))
	}
	e, queries := benchEngine(b, 8, opts...)
	opt := DocQueryOptions{K: 10, Stats: GlobalPrecomputed}
	if cached {
		for _, q := range queries { // warm: every distinct query cached
			e.Query(q, opt)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			e.Query(q, opt)
		}
	}
	b.StopTimer()
	if cached {
		b.ReportMetric(e.ResultCache().Stats().HitRatio(), "hit-ratio")
	}
}

func BenchmarkResultCacheHitZipf(b *testing.B)  { benchResultCache(b, true) }
func BenchmarkResultCacheColdZipf(b *testing.B) { benchResultCache(b, false) }

// benchCachePolicy replays a long Zipf stream (many distinct queries,
// small cache) and reports the achieved hit ratio — run LRU and SDC
// side by side to reproduce the Fagni et al. ordering at the broker.
func benchCachePolicy(b *testing.B, policy CachePolicy) {
	stream := zipfQueries(33, 3000, 1000)
	opt := DocQueryOptions{K: 10, Stats: GlobalPrecomputed}
	var static []string
	if policy == CacheSDC {
		counts := make(map[string]int)
		for _, q := range stream[:1000] {
			counts[DocCacheKey(q, opt)]++
		}
		for k, c := range counts {
			if c >= 3 { // popularity head of the sample
				static = append(static, k)
			}
		}
		if len(static) > 64 {
			static = static[:64]
		}
	}
	e, _ := benchEngine(b, 8, WithResultCache(ResultCacheConfig{
		Capacity: 128, Shards: 8, Policy: policy, StaticKeys: static}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration replays the identical stream against a
		// generation-fresh cache, so the cumulative hit ratio equals the
		// per-iteration one.
		e.ResultCache().Invalidate()
		for _, q := range stream {
			e.Query(q, opt)
		}
	}
	b.ReportMetric(e.ResultCache().Stats().HitRatio(), "hit-ratio")
}

func BenchmarkResultCacheLRUHitRatio(b *testing.B) { benchCachePolicy(b, CacheLRU) }
func BenchmarkResultCacheSDCHitRatio(b *testing.B) { benchCachePolicy(b, CacheSDC) }

// Posting-list cache: decode-vs-binary-search on the partition servers,
// result cache off so every query pays the evaluation path.
func benchPostingsCache(b *testing.B, bytes int64) {
	e, queries := benchEngine(b, 8, WithPostingsCache(bytes))
	opt := DocQueryOptions{K: 10, Stats: GlobalPrecomputed}
	for _, q := range queries { // warm the decoded-postings cache
		e.Query(q, opt)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			e.Query(q, opt)
		}
	}
	b.StopTimer()
	if bytes > 0 {
		b.ReportMetric(e.PostingsCacheStats().HitRatio(), "hit-ratio")
	}
}

func BenchmarkPostingsCacheWarm(b *testing.B) { benchPostingsCache(b, 8<<20) }
func BenchmarkPostingsCacheOff(b *testing.B)  { benchPostingsCache(b, 0) }
