package qproc

import (
	"testing"

	"dwr/internal/index"
	"dwr/internal/partition"
)

// Wall-clock benchmarks of the scatter-gather broker: the serial
// (workers=1) and parallel (workers=GOMAXPROCS) paths produce identical
// answers — see TestParallelBrokerMatchesSerial — so these measure pure
// execution-strategy cost. On a single core the parallel path should be
// within noise of serial (the worker pool runs inline below 2 workers of
// real parallelism); on a multi-core runner it approaches min(K, cores)×.

func benchEngine(b *testing.B, parts int) (*DocEngine, [][]string) {
	b.Helper()
	docs := corpus(31, 2000, 1000)
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	e, err := NewDocEngine(index.DefaultOptions(), docs, partition.RoundRobinDocs(ids, parts))
	if err != nil {
		b.Fatal(err)
	}
	return e, zipfQueries(32, 50, 1000)
}

func benchBrokerWorkers(b *testing.B, workers int, mode StatsMode) {
	e, queries := benchEngine(b, 8)
	e.SetWorkers(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			e.Query(q, DocQueryOptions{K: 10, Stats: mode})
		}
	}
}

func BenchmarkBrokerSerial(b *testing.B)   { benchBrokerWorkers(b, 1, GlobalPrecomputed) }
func BenchmarkBrokerParallel(b *testing.B) { benchBrokerWorkers(b, 0, GlobalPrecomputed) }

func BenchmarkBrokerTwoRoundSerial(b *testing.B)   { benchBrokerWorkers(b, 1, GlobalTwoRound) }
func BenchmarkBrokerTwoRoundParallel(b *testing.B) { benchBrokerWorkers(b, 0, GlobalTwoRound) }

func benchTermEngineWorkers(b *testing.B, workers int) {
	docs := corpus(35, 1200, 600)
	central := centralIndex(docs)
	tp := partition.BinPackTerms(central.Terms(), func(t string) float64 {
		return float64(central.DF(t))
	}, 8)
	e, err := NewTermEngine(index.DefaultOptions(), docs, tp)
	if err != nil {
		b.Fatal(err)
	}
	e.SetWorkers(workers)
	queries := zipfQueries(36, 50, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			e.Query(q, 10)
		}
	}
}

func BenchmarkTermPipelineSerial(b *testing.B)   { benchTermEngineWorkers(b, 1) }
func BenchmarkTermPipelineParallel(b *testing.B) { benchTermEngineWorkers(b, 0) }

func benchConstruction(b *testing.B, workers int) {
	docs := corpus(37, 2000, 800)
	ids := make([]int, len(docs))
	for i, d := range docs {
		ids[i] = d.Ext
	}
	dp := partition.RoundRobinDocs(ids, 8)
	SetDefaultWorkers(workers)
	defer SetDefaultWorkers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDocEngine(index.DefaultOptions(), docs, dp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineConstructionSerial(b *testing.B)   { benchConstruction(b, 1) }
func BenchmarkEngineConstructionParallel(b *testing.B) { benchConstruction(b, 0) }
