package qproc

import (
	"errors"
	"fmt"
	"math"

	"dwr/internal/cache"
	"dwr/internal/cluster"
	"dwr/internal/conc"
	"dwr/internal/faultsim"
	"dwr/internal/metrics"
	"dwr/internal/rank"
)

// ErrAllSitesDown is returned (via SiteQueryResult.Err) when a
// multi-site query finds no reachable processor anywhere: no coordinator
// up, no executor up, or the executing engine had every partition down.
// Inspect with errors.Is; a stale-cache rescue clears it.
var ErrAllSitesDown = errors.New("qproc: all sites down")

// Site is one geographic installation (Figure 3): a coordinator, a
// result cache, and a full query-processing replica, subject to the
// outage process of its cluster.Site.
type Site struct {
	ID      int
	Region  int
	Engine  *DocEngine
	Cache   cache.Cache[[]rank.Result]
	Outages []cluster.Outage // hours; empty = always up

	// Selfish marks a site in an OPEN system (paper §5, Interaction):
	// it serves queries forwarded by other sites' coordinators at lower
	// priority, adding ForeignPenaltyMs of queueing. Federated systems
	// leave this false everywhere.
	Selfish          bool
	ForeignPenaltyMs float64

	// hourLoad tracks queries executed in the current wall-clock hour,
	// the signal load-aware routing uses.
	hourLoad int
	loadHour int
	capacity int // queries/hour before queueing delays kick in
}

// NewSite creates a site with the given engine, an LRU result cache of
// cacheCap entries, and an hourly capacity for the load model.
func NewSite(id, region int, engine *DocEngine, cacheCap, hourlyCapacity int) *Site {
	return &Site{
		ID:       id,
		Region:   region,
		Engine:   engine,
		Cache:    cache.NewLRU[[]rank.Result](cacheCap),
		capacity: hourlyCapacity,
	}
}

// UpAt reports whether the site is reachable at virtual hour t.
func (s *Site) UpAt(t float64) bool { return cluster.UpAt(s.Outages, t) }

// load returns the site's load counter for hour h, resetting on rollover.
func (s *Site) load(h int) int {
	if h != s.loadHour {
		s.loadHour = h
		s.hourLoad = 0
	}
	return s.hourLoad
}

// queueDelayMs models congestion: as the hour's load approaches
// capacity, waiting grows like rho/(1-rho); beyond capacity it is capped
// at a large penalty.
func (s *Site) queueDelayMs(h int) float64 {
	if s.capacity <= 0 {
		return 0
	}
	rho := float64(s.load(h)) / float64(s.capacity)
	if rho >= 0.99 {
		rho = 0.99
	}
	return 5 * rho / (1 - rho)
}

// RoutingPolicy decides which site executes a query.
type RoutingPolicy int

// Routing policies of Section 5 (Partitioning/External factors).
const (
	// RouteGeo sends the query to the nearest up site (DNS-style
	// geographic routing).
	RouteGeo RoutingPolicy = iota
	// RouteLoadAware starts from the nearest site but offloads to the
	// least-loaded site when the nearest is congested — exploiting the
	// hourly fluctuation of regional query volume.
	RouteLoadAware
	// RouteRoundRobin ignores geography entirely (baseline).
	RouteRoundRobin
)

// MultiSite is the Figure 3 system: multiple sites, each a full replica,
// a WAN between them, per-site caches, and a routing policy.
type MultiSite struct {
	Net      *cluster.Network
	Sites    []*Site
	Policy   RoutingPolicy
	CacheTTL float64 // hours a cached result stays fresh; 0 = no caching
	// OffloadThreshold is the utilization of the nearest site above
	// which load-aware routing diverts the query (e.g. 0.7).
	OffloadThreshold float64
	// Workers bounds the fan-out of QueryIncremental's per-site
	// evaluations (0 = GOMAXPROCS, 1 = serial). Results are identical
	// at any width: site engines are independent, and the stateful WAN
	// latency model is only consulted serially at the gather point.
	Workers int
	// Now and HomeRegion are the virtual hour and origin region
	// QueryTopK (the uniform Engine surface) submits from; drivers that
	// model time and geography explicitly use Submit directly.
	Now        float64
	HomeRegion int

	rrNext int

	// Site-level fault handling (set via NewMultiSite options): the
	// injector's units are site IDs, and failed attempts walk the other
	// up sites nearest the coordinator. rb is built lazily at the first
	// Submit so sites may be appended after construction; ticks is the
	// fault-schedule clock (Submit is single-caller, like rrNext).
	faultPolicy *FaultPolicy
	injector    *faultsim.Injector
	rb          *robustness
	ticks       int64

	// mediator, when configured (WithMediator), makes QueryTopK take the
	// federated path: collection selection decides the site subset each
	// query touches. sel accumulates the fan-out/quality counters at the
	// serial gather (single-caller, like ticks).
	mediator Mediator
	sel      metrics.SelectionCounters
}

// NewMultiSite builds an empty multi-site system over net with the given
// routing policy; append Sites afterwards. Options configure the
// site-level fault path (WithFaultPolicy, WithInjector) and the
// QueryIncremental fan-out (WithWorkers); engine/cache options are
// per-site and ignored here.
func NewMultiSite(net *cluster.Network, routing RoutingPolicy, options ...Option) *MultiSite {
	eo := resolveOptions(options)
	m := &MultiSite{
		Net:         net,
		Policy:      routing,
		Workers:     eo.workers,
		faultPolicy: eo.policy,
		injector:    eo.injector,
		mediator:    eo.mediator,
	}
	return m
}

// siteRB lazily materializes the site-level robustness runtime once the
// site count is known (nil when no fault options were given).
func (m *MultiSite) siteRB() *robustness {
	if m.rb == nil && (m.faultPolicy != nil || m.injector != nil) && len(m.Sites) > 0 {
		p := DefaultFaultPolicy()
		if m.faultPolicy != nil {
			p = *m.faultPolicy
		}
		m.rb = newRobustness(p, m.injector, len(m.Sites))
	}
	return m.rb
}

// SiteQueryResult is a query outcome at the multi-site level.
type SiteQueryResult struct {
	QueryResult
	Coordinator int     // site that received the query
	Executor    int     // site that evaluated it (-1 for cache hits/failures)
	QueueMs     float64 // congestion delay at the executor
	Failed      bool    // no site reachable and no cached answer

	// Federated fan-out accounting (QueryFederated; zero on Submit's
	// single-executor path): how many sites the query was dispatched to
	// versus up sites the mediator pruned, whether the query ended up a
	// full fan-out, and the mediator's pruning confidence — riding on
	// the result the way Waves/PartitionsSkipped do on QueryResult.
	SitesContacted int
	SitesSkipped   int
	FullFanout     bool
	Confidence     float64
}

// Submit routes one query: terms, origin region, arrival in virtual
// hours. The nearest up site coordinates; the answer may come from its
// cache (fresh, or stale if every replica is down), or from the
// executing site chosen by the routing policy.
// The result is a named return so the deferred stale-cache fallback can
// rewrite it after the main path has decided to fail.
func (m *MultiSite) Submit(terms []string, key string, region int, atHours float64, k int) (out SiteQueryResult) {
	out.Executor = -1
	m.ticks++
	tick := m.ticks

	coord := m.nearestUp(region, atHours)
	if coord < 0 {
		// No coordinator reachable at all.
		out.Failed = true
		out.Err = ErrAllSitesDown
		return out
	}
	out.Coordinator = coord
	c := m.Sites[coord]
	// Client ↔ coordinator hop.
	out.LatencyMs += m.Net.Latency(region, c.Region, 64)

	// Cache lookup at the coordinator.
	if m.CacheTTL > 0 {
		if e, ok := c.Cache.Get(key); ok {
			age := atHours - e.StoredAt
			if age <= m.CacheTTL {
				out.Results = e.Value
				out.FromCache = true
				out.LatencyMs += 0.2
				return out
			}
			// Stale: keep as a fallback if execution fails below or
			// every query processor is gone (empty degraded answer) —
			// the paper's "upon query processor failures, the system
			// returns cached results".
			defer func() {
				needFallback := out.Failed || (len(out.Results) == 0 && !out.FromCache)
				if needFallback && len(e.Value) > 0 {
					out.Results = e.Value
					out.FromCache = true
					out.Stale = true
					out.Failed = false
					out.Err = nil
				}
			}()
		}
	}

	exec := m.chooseExecutor(coord, atHours)
	if exec < 0 {
		out.Failed = true
		out.Err = ErrAllSitesDown
		return out
	}
	if rb := m.siteRB(); rb != nil {
		// Site-level robustness: the chosen executor may be crashed,
		// flaky, or inside an outage window per the injector; failed
		// attempts retry against the next-nearest up site. Failure
		// detection costs AttemptTimeoutMs when the site died silently,
		// or a WAN round trip when it answered with an error.
		tried := make(map[int]bool)
		first, cur, ok := exec, exec, false
		for a := 0; a <= rb.policy.MaxRetries; a++ {
			if a > 0 {
				rb.counters.Retries++
				out.Retries++
				out.LatencyMs += rb.policy.BackoffMs * float64(int(1)<<uint(a-1))
			}
			fo := rb.outcome(tick, cur, 0, a)
			if fo.Err == nil {
				out.LatencyMs += fo.ExtraMs
				ok = true
				break
			}
			rb.counters.FaultsSeen++
			tried[cur] = true
			if fo.Silent {
				out.LatencyMs += rb.policy.AttemptTimeoutMs
			} else {
				out.LatencyMs += m.Net.Latency(m.Sites[coord].Region, m.Sites[cur].Region, 64) + fo.ExtraMs
			}
			next, bestDist := -1, math.MaxInt32
			for _, s := range m.Sites {
				if tried[s.ID] || !s.UpAt(atHours) {
					continue
				}
				d := s.Region - m.Sites[coord].Region
				if d < 0 {
					d = -d
				}
				if d < bestDist || (d == bestDist && (next < 0 || s.ID < next)) {
					next, bestDist = s.ID, d
				}
			}
			if next < 0 {
				break
			}
			cur = next
		}
		if !ok {
			rb.counters.Lost++
			out.Failed = true
			out.Err = fmt.Errorf("no site answered within the fault budget: %w", ErrAllSitesDown)
			return out
		}
		if cur != first {
			rb.counters.Failovers++
		}
		exec = cur
	}
	out.Executor = exec
	x := m.Sites[exec]
	h := int(atHours)
	out.QueueMs = x.queueDelayMs(h)
	if exec != coord && x.Selfish {
		// Open system: the remote site re-prioritizes its own traffic
		// ahead of the forwarded query.
		out.QueueMs += x.ForeignPenaltyMs
	}
	x.hourLoad++

	if exec != coord {
		out.LatencyMs += m.Net.Latency(c.Region, x.Region, 128)
	}
	qr := x.Engine.Query(terms, DocQueryOptions{K: k, Stats: GlobalPrecomputed})
	out.Results = qr.Results
	out.ServersContacted = qr.ServersContacted
	out.Rounds = qr.Rounds
	out.PostingsDecoded = qr.PostingsDecoded
	out.ListsAccessed = qr.ListsAccessed
	out.PostingBytesRead = qr.PostingBytesRead
	out.PostingBytesDecoded = qr.PostingBytesDecoded
	out.BytesTransferred = qr.BytesTransferred
	out.Degraded = qr.Degraded
	out.PartitionsSkipped = qr.PartitionsSkipped
	out.Waves = qr.Waves
	out.Retries += qr.Retries
	out.Hedges += qr.Hedges
	out.LatencyMs += qr.LatencyMs + out.QueueMs
	if exec != coord {
		out.LatencyMs += m.Net.Latency(x.Region, c.Region, int(resultBytes(len(qr.Results))))
	}
	switch {
	case qr.Err != nil:
		// The engine's fault policy refused the answer (fail-fast).
		out.Err = qr.Err
	case qr.ServersContacted == 0 && len(qr.Results) == 0 && !qr.FromCache:
		// Every partition of the executing replica is down: nothing
		// anywhere could answer. The deferred stale fallback may still
		// rescue this.
		out.Err = fmt.Errorf("site %d has no live query processors: %w", exec, ErrAllSitesDown)
	}
	if m.CacheTTL > 0 && out.Err == nil && !qr.Degraded {
		// Degraded or refused answers are never cached: a partial result
		// stored here would keep serving after the processors recover,
		// and would clobber a fresher complete entry used for stale
		// fallback.
		c.Cache.Put(key, qr.Results, atHours)
	}
	return out
}

// nearestUp returns the up site with the smallest region distance to
// region, or -1.
func (m *MultiSite) nearestUp(region int, at float64) int {
	best, bestDist := -1, math.MaxInt32
	for _, s := range m.Sites {
		if !s.UpAt(at) {
			continue
		}
		d := s.Region - region
		if d < 0 {
			d = -d
		}
		if d < bestDist || (d == bestDist && best >= 0 && s.ID < best) {
			best, bestDist = s.ID, d
		}
	}
	return best
}

// chooseExecutor applies the routing policy starting from the
// coordinator site.
func (m *MultiSite) chooseExecutor(coord int, at float64) int {
	h := int(at)
	switch m.Policy {
	case RouteLoadAware:
		c := m.Sites[coord]
		if c.capacity > 0 && float64(c.load(h)) >= m.OffloadThreshold*float64(c.capacity) {
			// Divert to the least-loaded up site.
			best, bestLoad := -1, math.MaxInt32
			for _, s := range m.Sites {
				if !s.UpAt(at) {
					continue
				}
				if l := s.load(h); l < bestLoad {
					best, bestLoad = s.ID, l
				}
			}
			if best >= 0 {
				return best
			}
		}
		if c.UpAt(at) {
			return coord
		}
	case RouteRoundRobin:
		for try := 0; try < len(m.Sites); try++ {
			s := m.Sites[m.rrNext%len(m.Sites)]
			m.rrNext++
			if s.UpAt(at) {
				return s.ID
			}
		}
		return -1
	default: // RouteGeo
		if m.Sites[coord].UpAt(at) {
			return coord
		}
	}
	// Coordinator down mid-decision: any up site.
	for _, s := range m.Sites {
		if s.UpAt(at) {
			return s.ID
		}
	}
	return -1
}

// IncrementalBatch is one instalment of an incremental answer: the
// cumulative merged top-k available after AfterMs.
type IncrementalBatch struct {
	AfterMs float64
	Site    int
	Results []rank.Result
}

// QueryIncremental implements Section 5's incremental query processing:
// every up site evaluates the query; results stream back in order of
// site latency, and each batch is the merged top-k so far. The first
// batch arrives at the fastest site's latency rather than the slowest's.
//
// The per-site evaluations fan out over a worker pool (sites are full
// replicas with independent engines); the WAN latency draws — which
// consume the network model's RNG — happen serially in site order at
// the gather, so the batch timeline is deterministic at any Workers.
func (m *MultiSite) QueryIncremental(terms []string, region int, atHours float64, k int) []IncrementalBatch {
	type arrival struct {
		site int
		ms   float64
		res  []rank.Result
	}
	var ups []*Site
	for _, s := range m.Sites {
		if s.UpAt(atHours) {
			ups = append(ups, s)
		}
	}
	answers := make([]QueryResult, len(ups))
	conc.Do(len(ups), m.Workers, func(i int) {
		answers[i] = ups[i].Engine.Query(terms, DocQueryOptions{K: k, Stats: GlobalPrecomputed})
	})
	arrivals := make([]arrival, 0, len(ups))
	for i, s := range ups {
		qr := answers[i]
		ms := m.Net.Latency(region, s.Region, 64) + qr.LatencyMs +
			m.Net.Latency(s.Region, region, int(resultBytes(len(qr.Results))))
		arrivals = append(arrivals, arrival{site: s.ID, ms: ms, res: qr.Results})
	}
	// Sort by arrival time.
	for i := 1; i < len(arrivals); i++ {
		for j := i; j > 0 && arrivals[j].ms < arrivals[j-1].ms; j-- {
			arrivals[j], arrivals[j-1] = arrivals[j-1], arrivals[j]
		}
	}
	var out []IncrementalBatch
	var lists [][]rank.Result
	for _, a := range arrivals {
		lists = append(lists, a.res)
		out = append(out, IncrementalBatch{
			AfterMs: a.ms,
			Site:    a.site,
			// Sites are replicas: the same document can arrive from
			// several of them, so merge with deduplication.
			Results: rank.MergeResultsDedup(k, lists...),
		})
	}
	return out
}
