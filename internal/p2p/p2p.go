// Package p2p implements the peer-to-peer architecture Section 5
// classifies against client/server systems: a structured overlay (in the
// Chord style underlying the pSearch system the paper cites) in which
// every participant is both client and server. Keys (terms) map to the
// peer owning their arc of the identifier ring; lookups route greedily
// through finger tables in O(log n) hops; peers joining and leaving move
// only neighbouring arcs.
//
// The paper's quantitative point — "the total amount of resources
// available for processing queries increases with the number of
// clients, assuming that free-riding is not prevalent" — is exercised by
// experiment C19 on top of this overlay.
package p2p

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// hashID maps a name or key to a ring position.
func hashID(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	// splitmix-style finalizer for spread (FNV clusters on similar names).
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// fingerBits is the number of finger-table entries per peer (the ring is
// 64-bit).
const fingerBits = 64

// Peer is one overlay participant.
type Peer struct {
	Name string
	ID   uint64
	// fingers[i] is the index (into the overlay's sorted peer slice) of
	// successor(ID + 2^i).
	fingers [fingerBits]int
}

// Overlay is a structured P2P overlay with stabilized finger tables.
type Overlay struct {
	peers []*Peer // sorted by ID
}

// New builds an overlay over the given peer names.
func New(names []string) *Overlay {
	o := &Overlay{}
	for _, n := range names {
		o.peers = append(o.peers, &Peer{Name: n, ID: hashID(n)})
	}
	sort.Slice(o.peers, func(i, j int) bool { return o.peers[i].ID < o.peers[j].ID })
	o.rebuildFingers()
	return o
}

// Size returns the number of peers.
func (o *Overlay) Size() int { return len(o.peers) }

// Peers returns the peer names in ring order.
func (o *Overlay) Peers() []string {
	out := make([]string, len(o.peers))
	for i, p := range o.peers {
		out[i] = p.Name
	}
	return out
}

// successorIdx returns the index of the first peer with ID ≥ id
// (wrapping).
func (o *Overlay) successorIdx(id uint64) int {
	i := sort.Search(len(o.peers), func(i int) bool { return o.peers[i].ID >= id })
	if i == len(o.peers) {
		return 0
	}
	return i
}

// rebuildFingers recomputes every peer's finger table; called after
// membership changes (a real deployment stabilizes incrementally, but
// the routing behaviour is identical).
func (o *Overlay) rebuildFingers() {
	for _, p := range o.peers {
		for b := 0; b < fingerBits; b++ {
			target := p.ID + (uint64(1) << uint(b)) // wraps mod 2^64 naturally
			p.fingers[b] = o.successorIdx(target)
		}
	}
}

// OwnerOf returns the index of the peer owning key's arc.
func (o *Overlay) OwnerOf(key string) int {
	if len(o.peers) == 0 {
		return -1
	}
	return o.successorIdx(hashID(key))
}

// inArc reports whether x lies in the half-open ring arc (from, to].
func inArc(x, from, to uint64) bool {
	if from < to {
		return x > from && x <= to
	}
	return x > from || x <= to
}

// Route performs a lookup for key starting at peer index start,
// returning the owner index and the number of overlay hops taken.
// Routing is the classic greedy rule: jump to the closest preceding
// finger of the key until the successor arc is reached.
func (o *Overlay) Route(start int, key string) (owner, hops int) {
	if len(o.peers) == 0 {
		return -1, 0
	}
	target := hashID(key)
	ownerIdx := o.successorIdx(target)
	cur := start
	for cur != ownerIdx {
		p := o.peers[cur]
		succ := (cur + 1) % len(o.peers)
		if inArc(target, p.ID, o.peers[succ].ID) {
			// The successor owns the key.
			cur = succ
			hops++
			break
		}
		// Closest preceding finger: scan from the top.
		next := succ
		for b := fingerBits - 1; b >= 0; b-- {
			f := p.fingers[b]
			if f == cur {
				continue
			}
			if inArc(o.peers[f].ID, p.ID, target) {
				next = f
				break
			}
		}
		if next == cur {
			next = succ
		}
		cur = next
		hops++
		if hops > len(o.peers) {
			// Routing must terminate well before visiting every peer; a
			// full lap indicates a finger-table bug.
			panic(fmt.Sprintf("p2p: routing for %q did not converge", key))
		}
	}
	return cur, hops
}

// Join adds a peer; only the new peer's arc changes ownership.
func (o *Overlay) Join(name string) {
	p := &Peer{Name: name, ID: hashID(name)}
	i := sort.Search(len(o.peers), func(i int) bool { return o.peers[i].ID >= p.ID })
	o.peers = append(o.peers, nil)
	copy(o.peers[i+1:], o.peers[i:])
	o.peers[i] = p
	o.rebuildFingers()
}

// Leave removes a peer; its arc is absorbed by its successor.
func (o *Overlay) Leave(name string) {
	for i, p := range o.peers {
		if p.Name == name {
			o.peers = append(o.peers[:i], o.peers[i+1:]...)
			o.rebuildFingers()
			return
		}
	}
}

// CapacityModel captures the paper's client/server vs peer-to-peer
// resource argument: servers (or contributing peers) each sustain
// ServeQPS; every client (or peer) offers DemandQPS of queries.
type CapacityModel struct {
	ServeQPS  float64 // capacity one server/contributing peer adds
	DemandQPS float64 // load one client/peer generates
}

// ClientServerSupportable returns the maximum number of clients a fixed
// pool of servers sustains: capacity is constant in the client count.
func (m CapacityModel) ClientServerSupportable(servers int) float64 {
	if m.DemandQPS <= 0 {
		return 0
	}
	return float64(servers) * m.ServeQPS / m.DemandQPS
}

// P2PUtilization returns offered-load / capacity for n peers of which
// freeRiding fraction contribute no serving capacity but still issue
// queries. Values < 1 mean the system keeps up at any scale; the paper's
// caveat "assuming that free-riding is not prevalent" is the divergence
// of this ratio as freeRiding → 1.
func (m CapacityModel) P2PUtilization(n int, freeRiding float64) float64 {
	serving := float64(n) * (1 - freeRiding) * m.ServeQPS
	if serving <= 0 {
		return -1 // no capacity at all
	}
	return float64(n) * m.DemandQPS / serving
}
