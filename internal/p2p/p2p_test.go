package p2p

import (
	"fmt"
	"math"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("peer-%04d", i)
	}
	return out
}

func TestRouteReachesOwner(t *testing.T) {
	o := New(names(100))
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("term%d", i)
		owner := o.OwnerOf(key)
		got, hops := o.Route(i%o.Size(), key)
		if got != owner {
			t.Fatalf("key %q routed to peer %d, owner is %d", key, got, owner)
		}
		if hops < 0 || hops > o.Size() {
			t.Fatalf("key %q took %d hops", key, hops)
		}
	}
}

func TestRouteFromOwnerIsZeroHops(t *testing.T) {
	o := New(names(50))
	key := "somekey"
	owner := o.OwnerOf(key)
	if _, hops := o.Route(owner, key); hops != 0 {
		t.Fatalf("routing from the owner took %d hops", hops)
	}
}

func TestRouteLogarithmicHops(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		o := New(names(n))
		total := 0
		const lookups = 500
		for i := 0; i < lookups; i++ {
			_, hops := o.Route(i%n, fmt.Sprintf("key%d", i))
			total += hops
		}
		mean := float64(total) / lookups
		limit := 2 * math.Log2(float64(n))
		if mean > limit {
			t.Fatalf("n=%d: mean hops %.1f exceeds 2·log2(n)=%.1f", n, mean, limit)
		}
		if mean < 1 {
			t.Fatalf("n=%d: mean hops %.2f implausibly low", n, mean)
		}
	}
}

func TestJoinLeaveOwnership(t *testing.T) {
	o := New(names(30))
	keys := make([]string, 500)
	before := make([]int, len(keys))
	beforeNames := make([]string, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		before[i] = o.OwnerOf(keys[i])
		beforeNames[i] = o.Peers()[before[i]]
	}
	o.Join("newcomer")
	moved := 0
	for i, k := range keys {
		ownerName := o.Peers()[o.OwnerOf(k)]
		if ownerName != beforeNames[i] {
			moved++
			if ownerName != "newcomer" {
				t.Fatalf("key %q moved to %q, not the joining peer", k, ownerName)
			}
		}
	}
	if moved == 0 {
		t.Fatal("join moved no keys at all (possible, but suspicious for 500 keys over 30 peers)")
	}
	if frac := float64(moved) / float64(len(keys)); frac > 0.25 {
		t.Fatalf("join moved %.0f%% of keys; should be ≈1/31", frac*100)
	}
	// Leaving restores the original ownership exactly.
	o.Leave("newcomer")
	for i, k := range keys {
		if got := o.Peers()[o.OwnerOf(k)]; got != beforeNames[i] {
			t.Fatalf("after leave, key %q owned by %q, want %q", k, got, beforeNames[i])
		}
	}
}

func TestRoutingAfterChurn(t *testing.T) {
	o := New(names(60))
	o.Leave("peer-0010")
	o.Leave("peer-0030")
	o.Join("late-a")
	o.Join("late-b")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("churnkey%d", i)
		owner := o.OwnerOf(key)
		if got, _ := o.Route(i%o.Size(), key); got != owner {
			t.Fatalf("post-churn routing wrong for %q", key)
		}
	}
}

func TestCapacityModel(t *testing.T) {
	m := CapacityModel{ServeQPS: 100, DemandQPS: 5}
	// Client/server: 16 servers support 320 clients, independent of n.
	if got := m.ClientServerSupportable(16); got != 320 {
		t.Fatalf("client/server supportable = %v, want 320", got)
	}
	// P2P: utilization is constant in n and < 1 without free-riding.
	u100 := m.P2PUtilization(100, 0)
	u10000 := m.P2PUtilization(10000, 0)
	if math.Abs(u100-u10000) > 1e-12 {
		t.Fatalf("P2P utilization varies with n: %v vs %v", u100, u10000)
	}
	if u100 >= 1 {
		t.Fatalf("P2P utilization %v ≥ 1 without free-riding", u100)
	}
	// Free-riding degrades capacity; past 1 - demand/serve it diverges.
	if m.P2PUtilization(100, 0.5) <= u100 {
		t.Fatal("free-riding did not raise utilization")
	}
	if u := m.P2PUtilization(100, 0.99); u < 1 {
		t.Fatalf("99%% free-riding still sustainable (%v); model broken", u)
	}
	if u := m.P2PUtilization(100, 1); u != -1 {
		t.Fatalf("total free-riding should report no capacity, got %v", u)
	}
}

func TestEmptyOverlay(t *testing.T) {
	o := New(nil)
	if o.OwnerOf("x") != -1 {
		t.Fatal("empty overlay returned an owner")
	}
	if owner, hops := o.Route(0, "x"); owner != -1 || hops != 0 {
		t.Fatal("empty overlay routed")
	}
}
