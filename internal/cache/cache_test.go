package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"dwr/internal/randx"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU[int](2)
	c.Put("a", 1, 0)
	c.Put("b", 2, 1)
	if e, ok := c.Get("a"); !ok || e.Value != 1 || e.StoredAt != 0 {
		t.Fatalf("Get(a) = %+v, %v", e, ok)
	}
	c.Put("c", 3, 2) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	h, m := c.Stats()
	if h != 3 || m != 1 {
		t.Fatalf("stats = %d/%d, want 3 hits 1 miss", h, m)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU[int](2)
	c.Put("a", 1, 0)
	c.Put("a", 9, 5)
	if c.Len() != 1 {
		t.Fatalf("len = %d after double put", c.Len())
	}
	if e, _ := c.Get("a"); e.Value != 9 || e.StoredAt != 5 {
		t.Fatalf("updated entry = %+v", e)
	}
}

func TestLRUCapacityOne(t *testing.T) {
	c := NewLRU[string](1)
	c.Put("x", "1", 0)
	c.Put("y", "2", 0)
	if _, ok := c.Get("x"); ok {
		t.Fatal("x survived in capacity-1 cache")
	}
	if e, ok := c.Get("y"); !ok || e.Value != "2" {
		t.Fatal("y missing")
	}
}

func TestLFUKeepsFrequent(t *testing.T) {
	c := NewLFU[int](2)
	c.Put("hot", 1, 0)
	for i := 0; i < 5; i++ {
		c.Get("hot")
	}
	c.Put("warm", 2, 0)
	c.Put("cold", 3, 0) // must evict warm (freq 1), not hot (freq 6)
	if _, ok := c.Get("hot"); !ok {
		t.Fatal("hot evicted despite high frequency")
	}
	if _, ok := c.Get("warm"); ok {
		t.Fatal("warm should have been evicted")
	}
}

func TestLFUTiebreakLRU(t *testing.T) {
	c := NewLFU[int](2)
	c.Put("a", 1, 0)
	c.Put("b", 2, 0)
	// Both freq 1; a is older in usage: touch b... actually both freq 1,
	// eviction should take the least recently used: a.
	c.Get("b")       // b now freq 2
	c.Put("c", 3, 0) // evicts a (minFreq 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should survive")
	}
}

// TestLFUMinFreqWalk pins the eviction scan directly: after the hottest
// key empties its frequency bucket via bump, and after evictions empty
// the minimum bucket, the walk must still find the true minimum-
// frequency victim, and the buckets map must not accumulate one dead
// list per frequency ever reached.
func TestLFUMinFreqWalk(t *testing.T) {
	c := NewLFU[int](3)
	c.Put("hot", 1, 0)
	c.Put("mid", 2, 0)
	c.Put("cold", 3, 0)
	// Climb hot far up the frequency ladder; each bump empties and
	// recreates a single-node bucket.
	for i := 0; i < 1000; i++ {
		c.Get("hot")
	}
	c.Get("mid") // mid freq 2; cold stays the unique freq-1 node
	if got := len(c.buckets); got > 3 {
		t.Fatalf("buckets map holds %d lists for 3 live frequencies; empty buckets leak", got)
	}
	c.Put("new1", 4, 0) // must evict cold (freq 1), not mid or hot
	if _, ok := c.m["cold"]; ok {
		t.Fatal("eviction skipped the minimum-frequency key")
	}
	if _, ok := c.m["mid"]; !ok {
		t.Fatal("mid evicted despite higher frequency")
	}
	// new1 (freq 1) now alone in bucket 1; evicting it empties the
	// minFreq bucket. The NEXT eviction must re-walk from the emptied
	// bucket to mid's bucket without getting stuck or picking hot.
	c.Put("new2", 5, 0) // evicts new1, bucket 1 empties
	if _, ok := c.m["new1"]; ok {
		t.Fatal("new1 should have been evicted")
	}
	c.Get("new2") // freq 2: bucket 1 empties again via bump
	c.Put("new3", 6, 0)
	// new3 needed a slot; the minimum frequency was 2 (mid and new2) and
	// mid is its least recently used node.
	if _, ok := c.m["mid"]; ok {
		t.Fatal("mid should be the LRU victim of the minimum frequency")
	}
	if _, ok := c.m["new2"]; !ok {
		t.Fatal("new2 evicted despite a more recent bump than mid")
	}
	if _, ok := c.m["hot"]; !ok {
		t.Fatal("hot evicted despite being the most frequent key")
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

// TestLFUDifferential compares the bucketed LFU against a brute-force
// reference (O(n) min-scan with a logical recency clock) over random
// operation streams — the regression net for the minFreq bookkeeping.
func TestLFUDifferential(t *testing.T) {
	type refEntry struct {
		val   int
		freq  int
		touch int64
	}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capn := 1 + rng.Intn(5)
		c := NewLFU[int](capn)
		ref := make(map[string]*refEntry)
		clock := int64(0)
		refPut := func(k string, v int) {
			clock++
			if e, ok := ref[k]; ok {
				e.val, e.freq, e.touch = v, e.freq+1, clock
				return
			}
			if len(ref) >= capn {
				var victim string
				bestF, bestT := int(^uint(0)>>1), int64(^uint64(0)>>1)
				for key, e := range ref {
					if e.freq < bestF || (e.freq == bestF && e.touch < bestT) {
						victim, bestF, bestT = key, e.freq, e.touch
					}
				}
				delete(ref, victim)
			}
			ref[k] = &refEntry{val: v, freq: 1, touch: clock}
		}
		refGet := func(k string) (int, bool) {
			e, ok := ref[k]
			if !ok {
				return 0, false
			}
			clock++
			e.freq++
			e.touch = clock
			return e.val, true
		}
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("k%d", rng.Intn(8))
			if rng.Intn(2) == 0 {
				wantV, wantOK := refGet(k)
				e, ok := c.Get(k)
				if ok != wantOK || (ok && e.Value != wantV) {
					t.Fatalf("seed=%d op=%d Get(%s) = (%v,%v), reference (%v,%v)",
						seed, op, k, e.Value, ok, wantV, wantOK)
				}
			} else {
				v := rng.Intn(1000)
				c.Put(k, v, float64(op))
				refPut(k, v)
			}
			if c.Len() != len(ref) {
				t.Fatalf("seed=%d op=%d: len %d, reference %d", seed, op, c.Len(), len(ref))
			}
		}
	}
}

func TestSDCStaticNeverEvicted(t *testing.T) {
	c := NewSDC[int]([]string{"top1", "top2"}, 2)
	c.Put("top1", 1, 0)
	c.Put("top2", 2, 0)
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("dyn%d", i), i, 0)
	}
	if _, ok := c.Get("top1"); !ok {
		t.Fatal("static entry evicted by dynamic churn")
	}
	if _, ok := c.Get("top2"); !ok {
		t.Fatal("static entry evicted by dynamic churn")
	}
	if c.Len() > 4 {
		t.Fatalf("len = %d, want ≤ 4", c.Len())
	}
}

func TestSDCBeatsLRUOnZipf(t *testing.T) {
	// The Fagni et al. result in miniature: a Zipf query stream with a
	// stable head. SDC (static = head, dynamic = LRU) must beat pure LRU
	// of the same total capacity.
	rng := rand.New(rand.NewSource(1))
	z := randx.NewZipf(5000, 1.0)
	const capTotal = 200
	staticKeys := make([]string, capTotal/2)
	for i := range staticKeys {
		staticKeys[i] = fmt.Sprintf("q%d", i) // true popularity head
	}
	lru := NewLRU[int](capTotal)
	sdc := NewSDC[int](staticKeys, capTotal/2)
	run := func(c Cache[int]) float64 {
		for i := 0; i < 100000; i++ {
			key := fmt.Sprintf("q%d", z.Draw(rng))
			if _, ok := c.Get(key); !ok {
				c.Put(key, 1, float64(i))
			}
		}
		return HitRatio(c)
	}
	lruRatio := run(lru)
	sdcRatio := run(sdc)
	if sdcRatio <= lruRatio {
		t.Fatalf("SDC hit ratio %.3f not above LRU %.3f on Zipf stream", sdcRatio, lruRatio)
	}
}

func TestHitRatioEmpty(t *testing.T) {
	if HitRatio[int](NewLRU[int](4)) != 0 {
		t.Fatal("empty cache hit ratio not 0")
	}
}

func TestStoredAtSupportsStaleness(t *testing.T) {
	c := NewLRU[int](4)
	c.Put("k", 7, 100)
	e, ok := c.Get("k")
	if !ok {
		t.Fatal("missing entry")
	}
	ttl := 50.0
	now := 180.0
	if fresh := now-e.StoredAt <= ttl; fresh {
		t.Fatal("entry should be stale at t=180 with ttl=50")
	}
	// A failure-masking coordinator can still read the stale value.
	if e.Value != 7 {
		t.Fatal("stale value lost")
	}
}

func TestCachesImplementInterface(t *testing.T) {
	var _ Cache[int] = NewLRU[int](1)
	var _ Cache[int] = NewLFU[int](1)
	var _ Cache[int] = NewSDC[int](nil, 1)
}
