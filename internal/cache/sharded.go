package cache

import (
	"sync"
	"sync/atomic"
)

// Stamped pairs a cached value with the Sharded generation it was stored
// under. Sharded wraps its shards' element type in Stamped so that
// invalidation is a single atomic counter bump: entries written under an
// older generation are treated as misses and lazily overwritten, with no
// walk over the shards.
type Stamped[V any] struct {
	Value V
	Gen   uint64
}

// shard is one lock domain of a Sharded cache. Hit/miss/stale counters
// live per shard, under the same mutex as the underlying cache, so the
// hot path takes exactly one lock and Stats aggregates lazily.
type shard[V any] struct {
	mu           sync.Mutex
	c            Cache[Stamped[V]]
	hits, misses int
	stale        int
}

// Sharded is a concurrency-safe wrapper over any Cache[V]: keys are
// hash-routed to one of N independently locked shards, so concurrent
// brokers contend only when their queries land on the same shard. It
// implements Cache[V] itself and adds generation-based invalidation
// (Invalidate), the hook the dynamic index uses to drop every cached
// result after an update without stopping the world.
type Sharded[V any] struct {
	shards []shard[V]
	gen    atomic.Uint64
}

// NewSharded creates a sharded cache with n shards (≥1); factory builds
// shard i's underlying cache (typically with 1/n of the total capacity).
// The factory's caches must not be shared between shards or touched by
// the caller afterwards.
func NewSharded[V any](n int, factory func(shard int) Cache[Stamped[V]]) *Sharded[V] {
	if n < 1 {
		n = 1
	}
	s := &Sharded[V]{shards: make([]shard[V], n)}
	for i := range s.shards {
		s.shards[i].c = factory(i)
	}
	return s
}

// NewShardedLRU returns a Sharded over LRU shards with a total capacity
// split evenly across n shards.
func NewShardedLRU[V any](n, capacity int) *Sharded[V] {
	return NewSharded[V](n, func(int) Cache[Stamped[V]] {
		return NewLRU[Stamped[V]](shardCap(capacity, n))
	})
}

// NewShardedLFU returns a Sharded over LFU shards with a total capacity
// split evenly across n shards.
func NewShardedLFU[V any](n, capacity int) *Sharded[V] {
	return NewSharded[V](n, func(int) Cache[Stamped[V]] {
		return NewLFU[Stamped[V]](shardCap(capacity, n))
	})
}

// NewShardedSDC returns a Sharded over SDC shards: each static key gets
// its permanent slot on the shard its hash routes to, and the dynamic
// LRU capacity is split evenly. Total capacity = len(staticKeys) +
// dynamicCapacity, as with NewSDC.
func NewShardedSDC[V any](n int, staticKeys []string, dynamicCapacity int) *Sharded[V] {
	if n < 1 {
		n = 1
	}
	perShard := make([][]string, n)
	for _, k := range staticKeys {
		i := shardOf(k, n)
		perShard[i] = append(perShard[i], k)
	}
	return NewSharded[V](n, func(i int) Cache[Stamped[V]] {
		return NewSDC[Stamped[V]](perShard[i], shardCap(dynamicCapacity, n))
	})
}

// shardCap splits a total capacity across n shards, rounding up so the
// aggregate never falls below the requested total.
func shardCap(total, n int) int {
	c := (total + n - 1) / n
	if c < 1 {
		c = 1
	}
	return c
}

// shardOf routes a key to a shard with FNV-1a.
func shardOf(key string, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// Get implements Cache. An entry stored under an older generation is
// reported as a miss (and counted as stale); it stays in the shard until
// replacement evicts it or a Put overwrites it — invalidation is lazy.
func (s *Sharded[V]) Get(key string) (Entry[V], bool) {
	sh := &s.shards[shardOf(key, len(s.shards))]
	gen := s.gen.Load()
	sh.mu.Lock()
	e, ok := sh.c.Get(key)
	if ok && e.Value.Gen != gen {
		sh.stale++
		ok = false
	}
	if ok {
		sh.hits++
	} else {
		sh.misses++
	}
	sh.mu.Unlock()
	if !ok {
		var zero Entry[V]
		return zero, false
	}
	return Entry[V]{Value: e.Value.Value, StoredAt: e.StoredAt}, true
}

// Put implements Cache, stamping the entry with the current generation.
func (s *Sharded[V]) Put(key string, value V, now float64) {
	sh := &s.shards[shardOf(key, len(s.shards))]
	gen := s.gen.Load()
	sh.mu.Lock()
	sh.c.Put(key, Stamped[V]{Value: value, Gen: gen}, now)
	sh.mu.Unlock()
}

// Len implements Cache: total entries across shards, including
// not-yet-replaced stale ones.
func (s *Sharded[V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.c.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats implements Cache: hits and misses aggregated across shards.
// Stale lookups count as misses (see StaleMisses for the breakdown).
func (s *Sharded[V]) Stats() (hits, misses int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}

// StaleMisses returns how many lookups found an entry from an older
// generation — misses that a fresh Put will convert back into hits.
func (s *Sharded[V]) StaleMisses() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.stale
		sh.mu.Unlock()
	}
	return n
}

// Invalidate bumps the generation counter: every entry stored before the
// call is lazily treated as a miss from now on. O(1), safe to call from
// index-update hooks while readers are in flight.
func (s *Sharded[V]) Invalidate() { s.gen.Add(1) }

// Generation returns the current generation counter.
func (s *Sharded[V]) Generation() uint64 { return s.gen.Load() }

// Shards returns the number of shards.
func (s *Sharded[V]) Shards() int { return len(s.shards) }
