package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedBasics(t *testing.T) {
	s := NewShardedLRU[int](4, 64)
	if s.Shards() != 4 {
		t.Fatalf("shards = %d", s.Shards())
	}
	s.Put("a", 1, 10)
	s.Put("b", 2, 11)
	if e, ok := s.Get("a"); !ok || e.Value != 1 || e.StoredAt != 10 {
		t.Fatalf("Get(a) = %+v, %v", e, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("phantom hit")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	h, m := s.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", h, m)
	}
}

func TestShardedRoutingIsStable(t *testing.T) {
	// The same key must always land on the same shard: with per-shard
	// capacity 1, distinct keys on distinct shards must all survive.
	s := NewShardedLRU[int](8, 8)
	byShard := make(map[int]string)
	for i := 0; i < 200 && len(byShard) < 8; i++ {
		k := fmt.Sprintf("key%d", i)
		sh := shardOf(k, 8)
		if _, taken := byShard[sh]; !taken {
			byShard[sh] = k
			s.Put(k, i, 0)
		}
	}
	if len(byShard) < 4 {
		t.Fatalf("FNV routed 200 keys onto only %d of 8 shards", len(byShard))
	}
	for _, k := range byShard {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("key %s lost despite exclusive shard slot", k)
		}
	}
}

func TestShardedGenerationInvalidation(t *testing.T) {
	s := NewShardedLRU[int](2, 16)
	s.Put("q", 7, 0)
	if _, ok := s.Get("q"); !ok {
		t.Fatal("fresh entry missing")
	}
	s.Invalidate()
	if _, ok := s.Get("q"); ok {
		t.Fatal("stale-generation entry served as a hit")
	}
	if s.StaleMisses() != 1 {
		t.Fatalf("stale misses = %d, want 1", s.StaleMisses())
	}
	// A new Put under the current generation makes the key live again.
	s.Put("q", 8, 1)
	if e, ok := s.Get("q"); !ok || e.Value != 8 {
		t.Fatalf("re-put after invalidation = %+v, %v", e, ok)
	}
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
}

func TestShardedSDCStaticRouting(t *testing.T) {
	statics := []string{"s0", "s1", "s2", "s3", "s4", "s5"}
	s := NewShardedSDC[int](4, statics, 8)
	for i, k := range statics {
		s.Put(k, i, 0)
	}
	// Churn the dynamic sections hard; static slots must survive on
	// whichever shard their hash routed them to.
	for i := 0; i < 500; i++ {
		s.Put(fmt.Sprintf("dyn%d", i), i, 0)
	}
	for i, k := range statics {
		if e, ok := s.Get(k); !ok || e.Value != i {
			t.Fatalf("static key %s lost under dynamic churn", k)
		}
	}
}

func TestShardedAggregatedStats(t *testing.T) {
	s := NewShardedLFU[int](4, 32)
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%d", i), i, 0)
	}
	hits, misses := 0, 0
	for i := 0; i < 40; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); ok {
			hits++
		} else {
			misses++
		}
	}
	gh, gm := s.Stats()
	if gh != hits || gm != misses {
		t.Fatalf("aggregated stats %d/%d, observed %d/%d", gh, gm, hits, misses)
	}
	if r := HitRatio[int](s); r <= 0 || r >= 1 {
		t.Fatalf("hit ratio %v out of range", r)
	}
}

// TestShardedConcurrent exercises the per-shard locking under -race:
// many goroutines hammering overlapping key ranges with interleaved
// invalidations must neither race nor lose the cache invariants.
func TestShardedConcurrent(t *testing.T) {
	s := NewShardedLRU[string](8, 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("q%d", (g*31+i)%100)
				if e, ok := s.Get(k); ok {
					if e.Value == "" {
						t.Errorf("empty cached value for %s", k)
						return
					}
					continue
				}
				s.Put(k, "result:"+k, float64(i))
				if i%500 == 0 && g == 0 {
					s.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
	// Every surviving fresh entry must still map key -> result:key.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("q%d", i)
		if e, ok := s.Get(k); ok && e.Value != "result:"+k {
			t.Fatalf("corrupted entry %s -> %s", k, e.Value)
		}
	}
}

func TestShardedImplementsCache(t *testing.T) {
	var _ Cache[int] = NewShardedLRU[int](4, 16)
	var _ Cache[int] = NewShardedLFU[int](4, 16)
	var _ Cache[int] = NewShardedSDC[int](4, []string{"a"}, 16)
	var _ Cache[[]byte] = NewSharded[[]byte](3, func(int) Cache[Stamped[[]byte]] {
		return NewLRU[Stamped[[]byte]](4)
	})
}
