package cache

import (
	"fmt"
	"testing"
)

func byteCost(v []byte) int64 { return int64(len(v)) }

func TestSizedLFUBudgetEnforced(t *testing.T) {
	c := NewSizedLFU[[]byte](100, byteCost)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("t%d", i), make([]byte, 10), 0)
	}
	if c.UsedCost() > c.Budget() {
		t.Fatalf("used %d exceeds budget %d", c.UsedCost(), c.Budget())
	}
	if c.Len() != 10 {
		t.Fatalf("len = %d, want 10 entries of cost 10 under budget 100", c.Len())
	}
}

func TestSizedLFUOversizedNotAdmitted(t *testing.T) {
	c := NewSizedLFU[[]byte](64, byteCost)
	c.Put("small", make([]byte, 16), 0)
	c.Put("huge", make([]byte, 65), 0)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry admitted")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized insert evicted an existing entry despite non-admission")
	}
	if c.UsedCost() != 16 {
		t.Fatalf("used = %d, want 16", c.UsedCost())
	}
}

func TestSizedLFUEvictsMinFrequencyByBytes(t *testing.T) {
	c := NewSizedLFU[[]byte](100, byteCost)
	c.Put("hot", make([]byte, 40), 0)
	c.Put("cold1", make([]byte, 30), 0)
	c.Put("cold2", make([]byte, 30), 0)
	for i := 0; i < 5; i++ {
		c.Get("hot")
	}
	// 50 new bytes need both cold entries (freq 1) gone; hot (freq 6)
	// must survive even though evicting it alone would free enough.
	c.Put("new", make([]byte, 50), 0)
	if _, ok := c.m["hot"]; !ok {
		t.Fatal("hot evicted despite high frequency")
	}
	if _, ok := c.m["cold1"]; ok {
		t.Fatal("cold1 should have been evicted")
	}
	if _, ok := c.m["cold2"]; ok {
		t.Fatal("cold2 should have been evicted")
	}
	if c.UsedCost() != 90 {
		t.Fatalf("used = %d, want 90", c.UsedCost())
	}
}

func TestSizedLFUUpdateGrowsAndShrinks(t *testing.T) {
	c := NewSizedLFU[[]byte](100, byteCost)
	c.Put("a", make([]byte, 30), 0)
	c.Put("b", make([]byte, 30), 0)
	// Grow a in place past what fits alongside b: b (freq 1, older
	// recency than the just-bumped a) must be shed.
	c.Get("a")
	c.Put("a", make([]byte, 90), 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("updated entry lost")
	}
	if _, ok := c.m["b"]; ok {
		t.Fatal("b should have been evicted to fit a's growth")
	}
	if c.UsedCost() != 90 {
		t.Fatalf("used = %d, want 90", c.UsedCost())
	}
	// Shrink back; b-sized entries fit again.
	c.Put("a", make([]byte, 10), 2)
	c.Put("b", make([]byte, 80), 2)
	if c.UsedCost() != 90 || c.Len() != 2 {
		t.Fatalf("used = %d len = %d after shrink", c.UsedCost(), c.Len())
	}
}

func TestSizedLFUMinFreqWalkAfterChurn(t *testing.T) {
	c := NewSizedLFU[[]byte](30, byteCost)
	c.Put("hot", make([]byte, 10), 0)
	for i := 0; i < 100; i++ {
		c.Get("hot") // climbs the ladder, emptying bucket after bucket
	}
	if len(c.buckets) > 1 {
		t.Fatalf("buckets map holds %d lists for 1 live frequency", len(c.buckets))
	}
	c.Put("x", make([]byte, 10), 0)
	c.Put("y", make([]byte, 10), 0)
	c.Put("z", make([]byte, 20), 0) // evicts x and y (freq 1), not hot
	if _, ok := c.m["hot"]; !ok {
		t.Fatal("hot evicted despite frequency 101")
	}
	if c.UsedCost() != 30 {
		t.Fatalf("used = %d, want 30", c.UsedCost())
	}
}

func TestSizedLFUStats(t *testing.T) {
	c := NewSizedLFU[[]byte](10, byteCost)
	c.Put("k", make([]byte, 4), 0)
	c.Get("k")
	c.Get("nope")
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d/%d", h, m)
	}
	var _ Cache[[]byte] = c
}
