// Package cache implements the result caches of Section 5: LRU and LFU
// baselines, the static-dynamic cache (SDC) of Fagni et al. that the
// paper's authors proposed for query results, and timestamped entries so
// a coordinator can serve stale results while query processors are down
// — the paper's "upon query processor failures, the system returns
// cached results".
package cache

// Entry is a cached value with the virtual time it was stored at, so
// callers can distinguish fresh from stale answers.
type Entry[V any] struct {
	Value    V
	StoredAt float64
}

// Cache is a fixed-capacity key-value cache of query results.
type Cache[V any] interface {
	// Get returns the entry for key, if cached. It may update the
	// replacement state.
	Get(key string) (Entry[V], bool)
	// Put stores an entry for key at virtual time now.
	Put(key string, value V, now float64)
	// Len returns the number of cached entries.
	Len() int
	// Stats returns accumulated hits and misses.
	Stats() (hits, misses int)
}

// lruNode is a doubly-linked list node; we implement the list inline to
// keep per-entry overhead and allocation behaviour explicit.
type lruNode[V any] struct {
	key        string
	entry      Entry[V]
	prev, next *lruNode[V]
}

// LRU is a least-recently-used cache.
type LRU[V any] struct {
	cap          int
	m            map[string]*lruNode[V]
	head, tail   *lruNode[V] // head = most recent
	hits, misses int
}

// NewLRU creates an LRU cache with the given capacity (≥1).
func NewLRU[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[V]{cap: capacity, m: make(map[string]*lruNode[V], capacity)}
}

// Get implements Cache.
func (c *LRU[V]) Get(key string) (Entry[V], bool) {
	n, ok := c.m[key]
	if !ok {
		c.misses++
		var zero Entry[V]
		return zero, false
	}
	c.hits++
	c.moveToFront(n)
	return n.entry, true
}

// Put implements Cache.
func (c *LRU[V]) Put(key string, value V, now float64) {
	if n, ok := c.m[key]; ok {
		n.entry = Entry[V]{Value: value, StoredAt: now}
		c.moveToFront(n)
		return
	}
	if len(c.m) >= c.cap {
		c.evict(c.tail)
	}
	n := &lruNode[V]{key: key, entry: Entry[V]{Value: value, StoredAt: now}}
	c.m[key] = n
	c.pushFront(n)
}

// Len implements Cache.
func (c *LRU[V]) Len() int { return len(c.m) }

// Stats implements Cache.
func (c *LRU[V]) Stats() (int, int) { return c.hits, c.misses }

func (c *LRU[V]) pushFront(n *lruNode[V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU[V]) unlink(n *lruNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU[V]) moveToFront(n *lruNode[V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *LRU[V]) evict(n *lruNode[V]) {
	if n == nil {
		return
	}
	c.unlink(n)
	delete(c.m, n.key)
}

// LFU is a least-frequently-used cache with LRU tiebreak, implemented
// with frequency buckets for O(1) operations.
type LFU[V any] struct {
	cap          int
	m            map[string]*lfuNode[V]
	buckets      map[int]*lfuList[V] // freq -> nodes at that freq
	minFreq      int
	hits, misses int
}

type lfuNode[V any] struct {
	key        string
	entry      Entry[V]
	freq       int
	prev, next *lfuNode[V]
}

type lfuList[V any] struct {
	head, tail *lfuNode[V]
}

func (l *lfuList[V]) pushFront(n *lfuNode[V]) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *lfuList[V]) unlink(n *lfuNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *lfuList[V]) empty() bool { return l.head == nil }

// NewLFU creates an LFU cache with the given capacity (≥1).
func NewLFU[V any](capacity int) *LFU[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LFU[V]{cap: capacity, m: make(map[string]*lfuNode[V], capacity), buckets: make(map[int]*lfuList[V])}
}

// Get implements Cache.
func (c *LFU[V]) Get(key string) (Entry[V], bool) {
	n, ok := c.m[key]
	if !ok {
		c.misses++
		var zero Entry[V]
		return zero, false
	}
	c.hits++
	c.bump(n)
	return n.entry, true
}

// Put implements Cache.
func (c *LFU[V]) Put(key string, value V, now float64) {
	if n, ok := c.m[key]; ok {
		n.entry = Entry[V]{Value: value, StoredAt: now}
		c.bump(n)
		return
	}
	if len(c.m) >= c.cap {
		c.evictOne()
	}
	n := &lfuNode[V]{key: key, entry: Entry[V]{Value: value, StoredAt: now}, freq: 1}
	c.m[key] = n
	c.bucket(1).pushFront(n)
	c.minFreq = 1
}

// evictOne removes the least recently used node of the minimum frequency.
// minFreq may lag behind the true minimum (an eviction or bump emptied
// its bucket), so the scan walks upward; emptied buckets are deleted so
// the walk — and the buckets map — stay bounded by the number of live
// frequencies rather than every frequency ever reached.
func (c *LFU[V]) evictOne() {
	l := c.buckets[c.minFreq]
	for l == nil || l.empty() {
		delete(c.buckets, c.minFreq)
		c.minFreq++
		l = c.buckets[c.minFreq]
	}
	victim := l.tail
	l.unlink(victim)
	if l.empty() {
		// Reset the scan: the next eviction must not start from a bucket
		// that no longer exists, and the empty list must not leak.
		delete(c.buckets, c.minFreq)
		c.minFreq++
	}
	delete(c.m, victim.key)
}

func (c *LFU[V]) bucket(f int) *lfuList[V] {
	l, ok := c.buckets[f]
	if !ok {
		l = &lfuList[V]{}
		c.buckets[f] = l
	}
	return l
}

func (c *LFU[V]) bump(n *lfuNode[V]) {
	l := c.buckets[n.freq]
	l.unlink(n)
	if l.empty() {
		// Drop the emptied bucket; a hot key climbing the frequency
		// ladder must not leave one dead list per step behind it.
		delete(c.buckets, n.freq)
		if c.minFreq == n.freq {
			c.minFreq = n.freq + 1
		}
	}
	n.freq++
	c.bucket(n.freq).pushFront(n)
}

// Len implements Cache.
func (c *LFU[V]) Len() int { return len(c.m) }

// Stats implements Cache.
func (c *LFU[V]) Stats() (int, int) { return c.hits, c.misses }

// SDC is the static-dynamic cache: a read-only static section holding
// the historically most popular queries plus an LRU dynamic section for
// the rest. Fagni et al. showed this mix beats pure LRU/LFU on search
// logs because the popularity head is stable while the tail is bursty.
type SDC[V any] struct {
	static       map[string]Entry[V]
	staticKeys   map[string]bool
	dynamic      *LRU[V]
	hits, misses int
}

// NewSDC creates an SDC cache: staticKeys get permanent slots (filled on
// first Put), and the remaining capacity is a dynamic LRU. Total
// capacity = len(staticKeys) + dynamicCapacity.
func NewSDC[V any](staticKeys []string, dynamicCapacity int) *SDC[V] {
	sk := make(map[string]bool, len(staticKeys))
	for _, k := range staticKeys {
		sk[k] = true
	}
	return &SDC[V]{
		static:     make(map[string]Entry[V], len(sk)),
		staticKeys: sk,
		dynamic:    NewLRU[V](dynamicCapacity),
	}
}

// Get implements Cache.
func (c *SDC[V]) Get(key string) (Entry[V], bool) {
	if e, ok := c.static[key]; ok {
		c.hits++
		return e, true
	}
	if c.staticKeys[key] {
		// A static slot not yet filled: miss, but do not consult dynamic.
		c.misses++
		var zero Entry[V]
		return zero, false
	}
	e, ok := c.dynamic.Get(key)
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// Put implements Cache.
func (c *SDC[V]) Put(key string, value V, now float64) {
	if c.staticKeys[key] {
		c.static[key] = Entry[V]{Value: value, StoredAt: now}
		return
	}
	c.dynamic.Put(key, value, now)
}

// Len implements Cache.
func (c *SDC[V]) Len() int { return len(c.static) + c.dynamic.Len() }

// Stats implements Cache. SDC tracks its own hit/miss counters so the
// dynamic section's internal counters are not double-reported.
func (c *SDC[V]) Stats() (int, int) { return c.hits, c.misses }

// HitRatio is a convenience over any cache's stats.
func HitRatio[V any](c Cache[V]) float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
