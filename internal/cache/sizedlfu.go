package cache

// SizedLFU is an LFU cache bounded by the total *cost* of its entries
// (e.g. bytes of decoded postings) instead of an entry count — the right
// shape for posting-list caches, where one stop-word list can weigh as
// much as ten thousand tail terms. Eviction takes the least recently
// used entry of the minimum frequency, repeatedly, until the new entry
// fits. Entries costlier than the whole budget are simply not admitted
// (caching them would flush everything for a certain re-eviction).
type SizedLFU[V any] struct {
	budget  int64
	used    int64
	cost    func(V) int64
	m       map[string]*sizedNode[V]
	buckets map[int]*sizedList[V]
	minFreq int
	hits    int
	misses  int
}

type sizedNode[V any] struct {
	key        string
	entry      Entry[V]
	cost       int64
	freq       int
	prev, next *sizedNode[V]
}

type sizedList[V any] struct {
	head, tail *sizedNode[V]
}

func (l *sizedList[V]) pushFront(n *sizedNode[V]) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *sizedList[V]) unlink(n *sizedNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *sizedList[V]) empty() bool { return l.head == nil }

// NewSizedLFU creates a cost-bounded LFU: the sum of cost(value) over
// cached entries never exceeds budget. cost must be positive and stable
// for a given value.
func NewSizedLFU[V any](budget int64, cost func(V) int64) *SizedLFU[V] {
	if budget < 1 {
		budget = 1
	}
	return &SizedLFU[V]{
		budget:  budget,
		cost:    cost,
		m:       make(map[string]*sizedNode[V]),
		buckets: make(map[int]*sizedList[V]),
	}
}

// Get implements Cache.
func (c *SizedLFU[V]) Get(key string) (Entry[V], bool) {
	n, ok := c.m[key]
	if !ok {
		c.misses++
		var zero Entry[V]
		return zero, false
	}
	c.hits++
	c.bump(n)
	return n.entry, true
}

// Put implements Cache. Oversized values (cost > budget) are ignored.
func (c *SizedLFU[V]) Put(key string, value V, now float64) {
	cost := c.cost(value)
	if cost < 0 {
		cost = 0
	}
	if n, ok := c.m[key]; ok {
		c.used += cost - n.cost
		n.entry = Entry[V]{Value: value, StoredAt: now}
		n.cost = cost
		c.bump(n)
		// An in-place update can grow past the budget; shed min-freq
		// entries until it fits again. The updated entry itself is a
		// candidate — if it alone busts the budget it goes too, the
		// same non-admission rule as the insert path.
		for c.used > c.budget && len(c.m) > 0 {
			c.evictOne()
		}
		return
	}
	if cost > c.budget {
		return
	}
	for c.used+cost > c.budget && len(c.m) > 0 {
		c.evictOne()
	}
	n := &sizedNode[V]{key: key, entry: Entry[V]{Value: value, StoredAt: now}, cost: cost, freq: 1}
	c.m[key] = n
	c.used += cost
	c.bucketFor(1).pushFront(n)
	c.minFreq = 1
}

// evictOne removes the least recently used node of the minimum
// frequency, walking minFreq upward over emptied buckets exactly as the
// LFU walk does (and deleting them, so the walk stays bounded).
func (c *SizedLFU[V]) evictOne() {
	l := c.buckets[c.minFreq]
	for l == nil || l.empty() {
		delete(c.buckets, c.minFreq)
		c.minFreq++
		l = c.buckets[c.minFreq]
	}
	c.remove(l.tail)
}

func (c *SizedLFU[V]) remove(n *sizedNode[V]) {
	l := c.buckets[n.freq]
	l.unlink(n)
	if l.empty() {
		delete(c.buckets, n.freq)
		if c.minFreq == n.freq {
			c.minFreq = n.freq + 1
		}
	}
	c.used -= n.cost
	delete(c.m, n.key)
}

func (c *SizedLFU[V]) bucketFor(f int) *sizedList[V] {
	l, ok := c.buckets[f]
	if !ok {
		l = &sizedList[V]{}
		c.buckets[f] = l
	}
	return l
}

func (c *SizedLFU[V]) bump(n *sizedNode[V]) {
	l := c.buckets[n.freq]
	l.unlink(n)
	if l.empty() {
		delete(c.buckets, n.freq)
		if c.minFreq == n.freq {
			c.minFreq = n.freq + 1
		}
	}
	n.freq++
	c.bucketFor(n.freq).pushFront(n)
}

// Len implements Cache.
func (c *SizedLFU[V]) Len() int { return len(c.m) }

// Stats implements Cache.
func (c *SizedLFU[V]) Stats() (int, int) { return c.hits, c.misses }

// UsedCost returns the summed cost of the cached entries.
func (c *SizedLFU[V]) UsedCost() int64 { return c.used }

// Budget returns the configured cost bound.
func (c *SizedLFU[V]) Budget() int64 { return c.budget }
